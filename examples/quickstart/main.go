// Quickstart: compose a three-streamlet adaptation stream from an MCL
// script, push messages through it, and watch the text compressor shrink
// them. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mobigate"
)

// The composition: a cache entity in front of a generic text compressor.
// The script is ordinary MCL (thesis chapter 4): streamlet definitions give
// typed ports and a library binding; the stream wires instances together.
const script = `
streamlet cache {
	port { in pi : text; out po : text; }
	attribute { type = STATEFUL; library = "general/cache"; }
}
streamlet compressor {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream quickstart {
	streamlet k = new-streamlet (cache);
	streamlet c = new-streamlet (compressor);
	connect (k.po, c.pi);
}
`

func main() {
	gw := mobigate.NewGateway(mobigate.GatewayOptions{
		ErrorHandler: func(err error) { log.Printf("stream error: %v", err) },
	})
	defer gw.Close()

	if err := gw.LoadScript(script); err != nil {
		log.Fatal(err)
	}
	st, err := gw.Deploy("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// The stream's entry is the cache's unfed input; its exit is the
	// compressor's unconnected output.
	in, err := st.OpenInlet(mobigate.Port("k", "pi"), 0)
	if err != nil {
		log.Fatal(err)
	}
	out, err := st.OpenOutlet(mobigate.Port("c", "po"))
	if err != nil {
		log.Fatal(err)
	}

	text, _ := mobigate.ParseMediaType("text/plain")
	bodies := []string{
		"MobiGATE adapts data flows over wireless networks.",
		"Streamlets are transport service entities composed by MCL.",
		"MobiGATE adapts data flows over wireless networks.", // repeat → cache hit
	}
	for i, body := range bodies {
		payload := []byte(body)
		// Pad so compression has something to chew on.
		for len(payload) < 2048 {
			payload = append(payload, []byte(" "+body)...)
		}
		if err := in.Send(mobigate.NewMessage(text, payload)); err != nil {
			log.Fatal(err)
		}
		m, err := out.Receive(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("message %d: %5d B -> %4d B  cache=%s  peers=%v\n",
			i+1, len(payload), m.Len(), m.Header("X-Cache"), m.Peers())
	}
	fmt.Printf("stream %s processed %d streamlet executions\n", st.Name(), st.Processed())
}
