// Distillation: the thesis's running example (Figures 4-6/4-7/4-8) — a
// datatype-specific distillation application in the style of UC Berkeley's
// TranSend. Incoming messages are divided by semantic type: images are
// down-sampled; PostScript documents are converted to rich text and
// compressed; everything merges into a multipart flow.
//
// The program then raises the LOW_GRAYS hardware event, which reconfigures
// the image branch through the map-to-16-grays streamlet, and LOW_ENERGY,
// which appends the power-saving entity — both exactly as written in the
// stream's when-blocks.
//
// Run with:
//
//	go run ./examples/distillation
package main

import (
	"fmt"
	"log"
	"time"

	"mobigate"
	"mobigate/internal/event"
	"mobigate/internal/services"
)

const script = `
// Streamlet descriptions (Figure 4-7).
streamlet switch {
	port { in pi : */*; out po1 : image/*; out po2 : application/postscript; }
	attribute { type = STATELESS; library = "general/switch";
	            description = "Divide incoming messages by semantic type"; }
}
streamlet img_down_sample {
	port { in pi : image/*; out po : image/*; }
	attribute { type = STATELESS; library = "image/downsample"; }
}
streamlet map_to_16_grays {
	port { in pi : image/*; out po : image/*; }
	attribute { type = STATELESS; library = "image/gray16"; }
}
streamlet powerSaving {
	port { in pi : multipart/mixed; out po : multipart/mixed; }
	attribute { type = STATEFUL; library = "system/powersave"; }
}
streamlet postscript2text {
	port { in pi : application/postscript; out po : text/richtext; }
	attribute { type = STATELESS; library = "text/ps2text"; }
}
streamlet text_compress {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
streamlet merge {
	port { in pi1 : image/*; in pi2 : text; out po : multipart/mixed; }
	attribute { type = STATEFUL; library = "general/merge"; }
}
channel largeBufferChan {
	port { in cin : image/*; out cout : image/*; }
	attribute { type = ASYNC; category = BK; buffer = 1024; }
}

// Stream description (Figure 4-8).
main stream streamApp {
	streamlet s1 = new-streamlet (switch);
	streamlet s2 = new-streamlet (img_down_sample);
	streamlet s3 = new-streamlet (map_to_16_grays);
	streamlet s4 = new-streamlet (powerSaving);
	streamlet s5 = new-streamlet (postscript2text);
	streamlet s6 = new-streamlet (text_compress);
	streamlet s7 = new-streamlet (merge);

	channel c1, c2, c3 = new-channel (largeBufferChan);

	connect (s1.po1, s2.pi, c1);
	connect (s1.po2, s5.pi);
	connect (s2.po, s7.pi1, c2);
	connect (s5.po, s6.pi);
	connect (s6.po, s7.pi2);

	when (LOW_ENERGY) {
		connect (s7.po, s4.pi);
	}
	when (LOW_GRAYS) {
		disconnect (s2.po, s7.pi1);
		connect (s2.po, s3.pi, c2);
		connect (s3.po, s7.pi1, c3);
	}
}
`

func main() {
	gw := mobigate.NewGateway(mobigate.GatewayOptions{
		ErrorHandler: func(err error) { log.Printf("stream error: %v", err) },
	})
	defer gw.Close()
	if err := gw.LoadScript(script); err != nil {
		log.Fatal(err)
	}
	st, err := gw.Deploy("streamApp")
	if err != nil {
		log.Fatal(err)
	}

	in, err := st.OpenInlet(mobigate.Port("s1", "pi"), 0)
	if err != nil {
		log.Fatal(err)
	}
	out, err := st.OpenOutlet(mobigate.Port("s7", "po"))
	if err != nil {
		log.Fatal(err)
	}

	push := func(label string, m *mobigate.Message) {
		before := m.Len()
		if err := in.Send(m); err != nil {
			log.Fatal(err)
		}
		got, err := out.Receive(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %7d B -> %6d B  type=%s source=%s\n",
			label, before, got.Len(), got.Header("X-Original-Type"), got.Header("X-Part-Source"))
	}

	fmt.Println("initial configuration (full-color down-sampling):")
	push("image 128x128", services.GenImageMessage(128, 128, 1))
	push("postscript 8KB", services.GenPostScriptMessage(8192, 2))

	fmt.Println("\nraising LOW_GRAYS: images now map to 16 gray levels:")
	if err := gw.Raise(event.LOW_GRAYS, ""); err != nil {
		log.Fatal(err)
	}
	awaitReconfig(st, 1)
	push("image 128x128", services.GenImageMessage(128, 128, 3))

	fmt.Println("\nraising LOW_ENERGY: power-saving entity batches the output:")
	if err := gw.Raise(event.LOW_ENERGY, ""); err != nil {
		log.Fatal(err)
	}
	awaitReconfig(st, 2)
	// The power saver now sits behind the merge; it holds messages until a
	// burst accumulates, so read the batched output from its port.
	psOut, err := st.OpenOutlet(mobigate.Port("s4", "po"))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := in.Send(services.GenImageMessage(64, 64, int64(10+i))); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		m, err := psOut.Receive(5 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  burst message %d: %6d B  burst=%s\n", i+1, m.Len(), m.Header("X-Burst"))
	}
	fmt.Printf("\ntotal streamlet executions: %d, reconfigurations: %d\n",
		st.Processed(), st.Reconfigurations())
}

func awaitReconfig(st *mobigate.Stream, want uint64) {
	deadline := time.Now().Add(2 * time.Second)
	for st.Reconfigurations() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Reconfigurations() < want {
		log.Fatalf("reconfiguration %d never arrived", want)
	}
}
