// Webaccel: the §7.5 case study end to end — the web-acceleration stream
// runs over an emulated wireless link whose bandwidth drops mid-session.
// The bandwidth monitor raises LOW_BANDWIDTH through the event system, the
// stream's when-block inserts the Text Compressor, and the client-side
// MobiGATE transparently reverses the compression.
//
// Run with:
//
//	go run ./examples/webaccel
package main

import (
	"fmt"
	"log"
	"time"

	"mobigate"
	"mobigate/internal/experiments"
	"mobigate/internal/netem"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

func main() {
	// A real-time emulated wireless link: 1 Mb/s, 5 ms one-way delay.
	link := netem.MustNew(netem.Config{
		BandwidthBps: 1_000_000,
		Delay:        5 * time.Millisecond,
		Mode:         netem.RealTime,
		NoAck:        true,
	})
	defer link.Close()

	comm := &services.Communicator{SinkTo: link}
	gw := mobigate.NewGateway(mobigate.GatewayOptions{
		ErrorHandler: func(err error) { log.Printf("stream error: %v", err) },
		ExtraServices: func(dir *mobigate.Directory) {
			dir.Register("net/communicator", func() streamlet.Processor { return comm })
		},
	})
	defer gw.Close()
	if err := gw.LoadScript(experiments.WebAccelScript); err != nil {
		log.Fatal(err)
	}
	st, err := gw.Deploy("webaccel")
	if err != nil {
		log.Fatal(err)
	}
	in, err := st.OpenInlet(mobigate.Port("sw", "pi"), 1<<22)
	if err != nil {
		log.Fatal(err)
	}

	// Context awareness: crossing the 100 Kb/s threshold raises
	// LOW_BANDWIDTH / HIGH_BANDWIDTH into the gateway's event system.
	netem.WatchBandwidth(link, gw.Events(), experiments.CompressorThresholdBps, "")

	// The mobile client on the far side of the link.
	received := make(chan *mobigate.Message, 256)
	mc := mobigate.NewClient(mobigate.ClientOptions{}, nil)

	send := func(n int, seed int64) {
		for _, m := range services.MixedWorkload(n, 0.5, seed) {
			if err := in.Send(m); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			d, err := link.Receive(30 * time.Second)
			if err != nil {
				log.Fatal(err)
			}
			out, err := mc.Process(d.Msg)
			if err != nil {
				log.Fatal(err)
			}
			received <- out
		}
	}

	report := func(phase string, n int, elapsed time.Duration) {
		var bytes int64
		for i := 0; i < n; i++ {
			m := <-received
			bytes += int64(m.Len())
		}
		sent, _ := link.Stats()
		fmt.Printf("%-28s %2d messages, %7d B delivered to app, %8d B on the wire, %v\n",
			phase, n, bytes, sent, elapsed.Round(time.Millisecond))
	}

	fmt.Printf("link at %d Kb/s (above threshold: no compressor)\n", link.Bandwidth()/1000)
	t0 := time.Now()
	send(6, 1)
	report("phase 1 (1 Mb/s):", 6, time.Since(t0))

	fmt.Printf("\nsignal fades: link drops to 60 Kb/s -> LOW_BANDWIDTH raised\n")
	if err := link.SetBandwidth(60_000); err != nil {
		log.Fatal(err)
	}
	waitForReconfig(st, 1)
	fmt.Printf("stream reconfigured (%d so far); text now flows through the compressor\n",
		st.Reconfigurations())
	t1 := time.Now()
	send(6, 2)
	report("phase 2 (60 Kb/s + TC):", 6, time.Since(t1))

	fmt.Printf("\nsignal recovers: link back to 1 Mb/s -> HIGH_BANDWIDTH raised\n")
	if err := link.SetBandwidth(1_000_000); err != nil {
		log.Fatal(err)
	}
	waitForReconfig(st, 2)
	t2 := time.Now()
	send(6, 3)
	report("phase 3 (restored):", 6, time.Since(t2))

	sent, errs := comm.Stats()
	fmt.Printf("\ncommunicator sent %d messages (%d errors); client reverse-processed %d\n",
		sent, errs, countStats(mc))
}

func waitForReconfig(st *mobigate.Stream, want uint64) {
	deadline := time.Now().Add(5 * time.Second)
	for st.Reconfigurations() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Reconfigurations() < want {
		log.Fatalf("reconfiguration %d never arrived", want)
	}
}

func countStats(mc *mobigate.Client) uint64 {
	processed, _ := mc.Stats()
	return processed
}
