// Handoff: the §8.2.1 wireless-handoff mechanism — a session starts on a
// fast WaveLAN-like network, receives a vertical-handoff notification for a
// slow GPRS-like network, and the gateway migrates: in-flight messages are
// replayed onto the new link (nothing is lost), HANDOFF and LOW_BANDWIDTH
// are raised, and the stream reconfigures its composition for the new
// conditions. A second handoff returns to the fast network.
//
// Run with:
//
//	go run ./examples/handoff
package main

import (
	"fmt"
	"log"
	"time"

	"mobigate"
	"mobigate/internal/experiments"
	"mobigate/internal/handoff"
	"mobigate/internal/netem"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

func main() {
	initial := netem.MustNew(netem.Config{BandwidthBps: 2_000_000, Delay: 2 * time.Millisecond})

	var session *handoff.Manager
	gw := mobigate.NewGateway(mobigate.GatewayOptions{
		ErrorHandler: func(err error) { log.Printf("stream error: %v", err) },
		ExtraServices: func(dir *mobigate.Directory) {
			dir.Register("net/communicator", func() streamlet.Processor {
				return &services.Communicator{SinkTo: services.SinkFunc(func(m *mobigate.Message) error {
					return session.SendMessage(m)
				})}
			})
		},
	})
	defer gw.Close()

	session = handoff.NewManager(initial, "wavelan", netem.Virtual, gw.Events(),
		experiments.CompressorThresholdBps, "")

	if err := gw.LoadScript(experiments.WebAccelScript); err != nil {
		log.Fatal(err)
	}
	st, err := gw.Deploy("webaccel")
	if err != nil {
		log.Fatal(err)
	}
	in, err := st.OpenInlet(mobigate.Port("sw", "pi"), 1<<22)
	if err != nil {
		log.Fatal(err)
	}

	mc := mobigate.NewClient(mobigate.ClientOptions{}, nil)
	pump := func(n int, seed int64) {
		for _, m := range services.MixedWorkload(n, 0.5, seed) {
			if err := in.Send(m); err != nil {
				log.Fatal(err)
			}
		}
	}
	drain := func(n int) int64 {
		var bytes int64
		for i := 0; i < n; i++ {
			d, err := session.Receive(10 * time.Second)
			if err != nil {
				log.Fatal(err)
			}
			out, err := mc.Process(d.Msg)
			if err != nil {
				log.Fatal(err)
			}
			bytes += int64(out.Len())
		}
		return bytes
	}

	_, network := session.Current()
	fmt.Printf("session on %s at %d Kb/s\n", network, linkBandwidth(session)/1000)
	pump(6, 1)
	fmt.Printf("  delivered %d bytes to the application\n", drain(6))

	// Leave 4 messages in flight on the old link, then hand off.
	pump(4, 2)
	time.Sleep(50 * time.Millisecond) // let them cross onto the old link
	fmt.Println("\nvertical handoff notification: gprs, 50 Kb/s, 100 ms")
	if _, err := session.Handoff(handoff.Notification{
		NetworkID:    "gprs",
		BandwidthBps: 50_000,
		Delay:        100 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}
	waitForReconfig(st, 1)
	handoffs, replayed := session.Stats()
	_, network = session.Current()
	fmt.Printf("  now on %s; %d handoff(s), %d in-flight messages replayed without loss\n",
		network, handoffs, replayed)
	fmt.Printf("  stream reconfigured (%d): text branch now compressed\n", st.Reconfigurations())
	fmt.Printf("  delivered %d bytes (incl. the replayed backlog)\n", drain(4))

	pump(6, 3)
	fmt.Printf("  delivered %d more bytes over gprs\n", drain(6))

	fmt.Println("\nvertical handoff notification: wavelan, 2 Mb/s, 2 ms")
	if _, err := session.Handoff(handoff.Notification{
		NetworkID:    "wavelan",
		BandwidthBps: 2_000_000,
		Delay:        2 * time.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}
	waitForReconfig(st, 2)
	fmt.Printf("  stream reconfigured (%d): compressor removed\n", st.Reconfigurations())
	pump(6, 4)
	fmt.Printf("  delivered %d bytes back on wavelan\n", drain(6))
}

func linkBandwidth(s *handoff.Manager) int64 {
	l, _ := s.Current()
	return l.Bandwidth()
}

func waitForReconfig(st *mobigate.Stream, want uint64) {
	deadline := time.Now().Add(5 * time.Second)
	for st.Reconfigurations() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Reconfigurations() < want {
		log.Fatalf("reconfiguration %d never arrived", want)
	}
}
