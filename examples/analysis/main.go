// Analysis: the chapter-5 semantic model at work. Three MCL descriptions
// are checked — the §5.3 feedback-loop example, an open-circuit
// composition, and a security chain violating the encryption-before-
// compression preorder — and one clean description passes.
//
// Run with:
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"mobigate"
	"mobigate/internal/semantics"
)

const defs = `
streamlet filter { port { in pi : text; out po : text; } attribute { library = "general/cache"; } }
streamlet encrypt { port { in pi : text; out po : text; } attribute { library = "crypto/encrypt"; } }
streamlet compress { port { in pi : text; out po : text; } attribute { library = "text/compress"; } }
`

// The §5.3 case example: s1 -> s2 -> s3 -> s1 is a feedback loop.
const loopStream = defs + `
stream loopy {
	streamlet s1 = new-streamlet (filter);
	streamlet s2 = new-streamlet (filter);
	streamlet s3 = new-streamlet (filter);
	connect (s1.po, s2.pi);
	connect (s2.po, s3.pi);
	connect (s3.po, s1.pi);
}
`

// An open circuit: s2's output is not connected and not a designated exit,
// so messages reaching it would be lost (§5.2.2).
const openStream = defs + `
stream leaky {
	streamlet s1 = new-streamlet (filter);
	streamlet s2 = new-streamlet (filter);
	streamlet s3 = new-streamlet (filter);
	streamlet s4 = new-streamlet (filter);
	connect (s1.po, s2.pi);
	connect (s2.po, s3.pi);
}
`

// Compression before encryption violates the §5.2.5 preorder (the thesis
// requires the encryption entity deployed before the compression entity).
const preorderStream = defs + `
stream sec {
	streamlet c = new-streamlet (compress);
	streamlet e = new-streamlet (encrypt);
	connect (c.po, e.pi);
}
`

// The corrected chain passes every analysis.
const cleanStream = defs + `
stream secOK {
	streamlet e = new-streamlet (encrypt);
	streamlet c = new-streamlet (compress);
	connect (e.po, c.pi);
}
`

func main() {
	secRules := semantics.Rules{
		Preorders: []semantics.Preorder{{Before: "encrypt", After: "compress"}},
	}

	check("feedback loop (§5.3)", loopStream, "loopy", semantics.Rules{})
	// Only s3.po is a sanctioned exit; s4's dangling ports are the defect.
	check("open circuit (§5.2.2)", openStream, "leaky",
		semantics.Rules{AllowedOpenPorts: []string{"s3.po"}})
	check("preorder violation (§5.2.5)", preorderStream, "sec", withExits(secRules, "e.po"))
	check("corrected chain", cleanStream, "secOK", withExits(secRules, "c.po"))

	// Mutual exclusion and dependency rules work the same way:
	excl := semantics.Rules{Exclusions: map[string][]string{"encrypt": {"compress"}}}
	check("mutual exclusion (§5.2.3)", cleanStream, "secOK", withExits(excl, "c.po"))
}

func withExits(r semantics.Rules, exits ...string) semantics.Rules {
	r.AllowedOpenPorts = append(append([]string(nil), r.AllowedOpenPorts...), exits...)
	return r
}

func check(label, src, stream string, rules semantics.Rules) {
	fmt.Printf("== %s ==\n", label)
	cfg, err := mobigate.CompileMCL(src)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	sc := cfg.Stream(stream)
	if sc == nil {
		log.Fatalf("%s: unknown stream %q", label, stream)
	}
	rep := semantics.Analyze(sc, rules)
	if rep.OK() {
		fmt.Println("  consistent: no violations")
	}
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION %s\n", v)
	}
	fmt.Println()
}
