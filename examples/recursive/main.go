// Recursive: recursive composition (§4.4.2, Figure 4-9) through the public
// API. An inner stream — sign then compress — is wrapped as a composite
// streamlet by declaring a streamlet with the same name, and reused inside
// an outer stream behind a cache. From the outer stream's point of view the
// whole security pipeline is a single black box.
//
// Run with:
//
//	go run ./examples/recursive
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"mobigate"
)

const script = `
streamlet signer {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "integrity/sign"; }
}
streamlet compressor {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
streamlet cache {
	port { in pi : text; out po : text; }
	attribute { type = STATEFUL; library = "general/cache"; }
}

// The inner composition: authenticate, then shrink.
stream securePipe {
	streamlet a = new-streamlet (signer);
	streamlet b = new-streamlet (compressor);
	connect (a.po, b.pi);
}

// The Figure 4-9 idiom: a streamlet declaration with the stream's name
// turns securePipe into a composite streamlet with ports pi and po.
streamlet securePipe {
	port { in pi : text; out po : text; }
	attribute { type = STATEFUL; library = "mcl:securePipe"; }
}

main stream outerFlow {
	streamlet k = new-streamlet (cache);
	streamlet p = new-streamlet (securePipe);
	connect (k.po, p.pi);
}
`

func main() {
	gw := mobigate.NewGateway(mobigate.GatewayOptions{
		ErrorHandler: func(err error) { log.Printf("stream error: %v", err) },
	})
	defer gw.Close()
	if err := gw.LoadScript(script); err != nil {
		log.Fatal(err)
	}
	st, err := gw.Deploy("outerFlow")
	if err != nil {
		log.Fatal(err)
	}

	in, err := st.OpenInlet(mobigate.Port("k", "pi"), 0)
	if err != nil {
		log.Fatal(err)
	}
	// The composite's exit is the inner compressor's output.
	inner := st.Inner("p")
	out, err := inner.OpenOutlet(mobigate.Port("b", "po"))
	if err != nil {
		log.Fatal(err)
	}

	mc := mobigate.NewClient(mobigate.ClientOptions{}, nil)
	text, _ := mobigate.ParseMediaType("text/plain")

	body := []byte(strings.Repeat("recursive composition promotes modularization and re-usability. ", 40))
	if err := in.Send(mobigate.NewMessage(text, append([]byte(nil), body...))); err != nil {
		log.Fatal(err)
	}
	m, err := out.Receive(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("through cache -> [securePipe: sign -> compress]: %d B -> %d B\n", len(body), m.Len())
	fmt.Printf("reverse peers recorded for the client: %v\n", m.Peers())

	restored, err := mc.Process(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("client verified + decompressed intact:", bytes.Equal(restored.Body(), body))

	snap := st.StatsSnapshot()
	for _, i := range snap.Instances {
		fmt.Printf("  instance %-4s composite=%-5v processed=%d\n", i.ID, i.Composite, i.Processed)
	}
}
