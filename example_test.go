package mobigate_test

import (
	"fmt"
	"log"
	"time"

	"mobigate"
)

// ExampleGateway shows the complete server-side flow: compile an MCL
// script, deploy the stream, push a message through the adaptation
// pipeline, and reverse it on the client.
func Example() {
	const script = `
streamlet compressor {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream pipeline {
	streamlet c = new-streamlet (compressor);
}`

	gw := mobigate.NewGateway(mobigate.GatewayOptions{})
	defer gw.Close()
	if err := gw.LoadScript(script); err != nil {
		log.Fatal(err)
	}
	st, err := gw.Deploy("pipeline")
	if err != nil {
		log.Fatal(err)
	}
	in, _ := st.OpenInlet(mobigate.Port("c", "pi"), 0)
	out, _ := st.OpenOutlet(mobigate.Port("c", "po"))

	text, _ := mobigate.ParseMediaType("text/plain")
	body := make([]byte, 0, 4096)
	for len(body) < 4096 {
		body = append(body, []byte("mobile gateway proxy ")...)
	}
	_ = in.Send(mobigate.NewMessage(text, body))
	m, err := out.Receive(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	compressedLen := m.Len() // capture before the client restores in place

	mc := mobigate.NewClient(mobigate.ClientOptions{}, nil)
	restored, err := mc.Process(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compressed smaller:", compressedLen < len(body))
	fmt.Println("restored intact:", string(restored.Body()) == string(body))
	// Output:
	// compressed smaller: true
	// restored intact: true
}

// ExampleCompileMCL demonstrates compile-time type checking: the source
// port's media type must equal or specialize the sink's.
func ExampleCompileMCL() {
	const bad = `
streamlet src { port { out po : text/plain; } attribute { library = "x"; } }
streamlet sink { port { in pi : image/gif; } attribute { library = "x"; } }
stream s {
	streamlet a = new-streamlet (src);
	streamlet b = new-streamlet (sink);
	connect (a.po, b.pi);
}`
	_, err := mobigate.CompileMCL(bad)
	fmt.Println("compile failed:", err != nil)
	// Output:
	// compile failed: true
}

// ExampleAnalyzeStream runs the chapter-5 semantic analyses and catches the
// thesis's §5.3 feedback-loop example.
func ExampleAnalyzeStream() {
	const loop = `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream loopy {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	streamlet s3 = new-streamlet (f);
	connect (s1.po, s2.pi);
	connect (s2.po, s3.pi);
	connect (s3.po, s1.pi);
}`
	cfg, err := mobigate.CompileMCL(loop)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mobigate.AnalyzeStream(cfg, "loopy", mobigate.AnalysisRules{})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range rep.Violations {
		fmt.Println(v.Kind, v.Detail)
	}
	// Output:
	// feedback-loop cycle s1 -> s2 -> s3 -> s1
}
