module mobigate

go 1.23
