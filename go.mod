module mobigate

go 1.22
