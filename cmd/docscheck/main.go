// Command docscheck lints the repository documentation so the pages and
// the code cannot drift apart silently:
//
//   - every docs/*.md page must be linked from README.md;
//   - every relative markdown link (README.md, docs/*.md, EXPERIMENTS.md,
//     ROADMAP.md) must resolve to an existing file;
//   - every fenced “mcl“ block must parse with the real MCL parser
//     (blocks whose first line is the comment "// fragment" are instead
//     checked word-by-word against the attribute and policy-signal
//     vocabulary);
//   - every -flag mentioned on a “sh“/“console“ command line for one
//     of the cmd/* tools must exist in that tool's flag set, read from its
//     source;
//   - mobibench's experimentsTable and its package comment's `-exp` list
//     must enumerate exactly the same modes (plus the implicit `all`);
//   - the metric catalog (internal/obs/catalog.go) and the metric tables
//     in docs/OBSERVABILITY.md must list exactly the same series names,
//     in both directions.
//
// Run from the repository root (make docs-check does). Exits nonzero on
// any finding.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"mobigate/internal/mcl"
)

func main() {
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	pages, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil || len(pages) == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: no docs/*.md found (run from the repository root)")
		os.Exit(1)
	}
	sort.Strings(pages)

	readme, err := os.ReadFile("README.md")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	for _, page := range pages {
		if !strings.Contains(string(readme), filepath.ToSlash(page)) {
			report("README.md: does not link %s", page)
		}
	}

	flags, err := loadCmdFlags()
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}

	checkMobibenchModes(report)
	checkMetricCatalog(report)

	files := append([]string{"README.md", "EXPERIMENTS.md", "ROADMAP.md"}, pages...)
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			if path == "EXPERIMENTS.md" || path == "ROADMAP.md" {
				continue // optional pages
			}
			report("%s: %v", path, err)
			continue
		}
		checkFile(path, string(data), flags, report)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d pages clean\n", len(files))
}

var (
	linkRe  = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	fenceRe = regexp.MustCompile("(?ms)^```([a-z]*)\n(.*?)^```")
	flagRe  = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Float64|Duration)\(\s*"([^"]+)"`)
)

// loadCmdFlags reads each cmd/<tool>/main.go and extracts its flag names,
// keyed by tool name.
func loadCmdFlags() (map[string]map[string]bool, error) {
	tools, err := filepath.Glob(filepath.Join("cmd", "*", "main.go"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]bool)
	for _, mainGo := range tools {
		tool := filepath.Base(filepath.Dir(mainGo))
		src, err := os.ReadFile(mainGo)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool)
		for _, m := range flagRe.FindAllStringSubmatch(string(src), -1) {
			set[m[1]] = true
		}
		out[tool] = set
	}
	return out, nil
}

func checkFile(path, data string, flags map[string]map[string]bool, report func(string, ...any)) {
	// Relative links must resolve. Fenced blocks are cut out first so code
	// that happens to contain ](...) is not treated as a link.
	prose := fenceRe.ReplaceAllString(data, "")
	for _, m := range linkRe.FindAllStringSubmatch(prose, -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			report("%s: broken link %q (%s does not exist)", path, m[1], resolved)
		}
	}

	for _, m := range fenceRe.FindAllStringSubmatch(data, -1) {
		lang, body := m[1], m[2]
		switch lang {
		case "mcl":
			checkMCLBlock(path, body, report)
		case "sh", "console", "bash":
			checkShellBlock(path, body, flags, report)
		}
	}
}

// mclAttrWords is the attribute/keyword vocabulary fragments are checked
// against: a word used in `name = value` or `when (name ...)` position must
// be one of these or a known policy signal.
var mclAttrWords = map[string]bool{
	"type": true, "library": true, "workers": true, "batch": true,
	"cacheable": true, "pooling": true, "param": true, "sustain": true,
	"cooldown": true, "insert": true, "remove": true, "between": true,
	"and": true,
}

func checkMCLBlock(path, body string, report func(string, ...any)) {
	first := strings.TrimSpace(strings.SplitN(body, "\n", 2)[0])
	if strings.HasPrefix(first, "//") && strings.Contains(first, "fragment") {
		// Grammar fragments cannot parse alone; verify their vocabulary.
		condRe := regexp.MustCompile(`when\s*\(\s*([a-z_]+)\s*[<>]`)
		for _, c := range condRe.FindAllStringSubmatch(body, -1) {
			if !mcl.KnownPolicySignal(c[1]) {
				report("%s: mcl fragment uses unknown policy signal %q (known: %s)",
					path, c[1], strings.Join(mcl.PolicySignals(), ", "))
			}
		}
		attrRe := regexp.MustCompile(`(?m)^\s*([a-z_]+)\s*=`)
		for _, a := range attrRe.FindAllStringSubmatch(body, -1) {
			if !mclAttrWords[a[1]] {
				report("%s: mcl fragment uses unknown attribute %q", path, a[1])
			}
		}
		return
	}
	if _, err := mcl.Parse(body); err != nil {
		report("%s: mcl block does not parse: %v", path, err)
	}
}

var (
	expTableRe = regexp.MustCompile(`(?m)^\s*\{"([a-z0-9.]+)",\s*"`)
	expDocRe   = regexp.MustCompile(`(?m)^//\s+mobibench -exp ([a-z0-9.]+)`)
)

// checkMobibenchModes keeps mobibench's -exp surface honest: the
// experimentsTable (which drives dispatch and the usage text) and the
// package comment's mode list must enumerate the same set, so a new
// experiment cannot land without showing up in the tool's own help.
func checkMobibenchModes(report func(string, ...any)) {
	const mainGo = "cmd/mobibench/main.go"
	src, err := os.ReadFile(mainGo)
	if err != nil {
		report("%s: %v", mainGo, err)
		return
	}
	table := map[string]bool{"all": true} // `all` is implicit in the table
	for _, m := range expTableRe.FindAllStringSubmatch(string(src), -1) {
		table[m[1]] = true
	}
	if len(table) < 2 {
		report("%s: experimentsTable not found (docscheck expects it)", mainGo)
		return
	}
	doc := map[string]bool{}
	for _, m := range expDocRe.FindAllStringSubmatch(string(src), -1) {
		doc[m[1]] = true
	}
	for mode := range table {
		if !doc[mode] {
			report("%s: experimentsTable mode %q missing from the package comment's -exp list", mainGo, mode)
		}
	}
	for mode := range doc {
		if !table[mode] {
			report("%s: package comment lists -exp %q, which is not in experimentsTable", mainGo, mode)
		}
	}
}

var (
	catalogNameRe = regexp.MustCompile(`= "((?:mobigate|go)_[a-z0-9_]+)"`)
	docMetricRe   = regexp.MustCompile("(?m)^\\| `((?:mobigate|go)_[a-z0-9_]+)` \\| (?:counter|gauge|summary) \\|")
)

// checkMetricCatalog keeps the observability page's metric tables and the
// registered catalog in lockstep, both directions: a metric added to
// internal/obs/catalog.go must gain a table row in docs/OBSERVABILITY.md,
// and a documented series must still exist in the catalog.
func checkMetricCatalog(report func(string, ...any)) {
	const (
		catalogGo = "internal/obs/catalog.go"
		docsPage  = "docs/OBSERVABILITY.md"
	)
	src, err := os.ReadFile(catalogGo)
	if err != nil {
		report("%s: %v", catalogGo, err)
		return
	}
	doc, err := os.ReadFile(docsPage)
	if err != nil {
		report("%s: %v", docsPage, err)
		return
	}
	catalog := map[string]bool{}
	for _, m := range catalogNameRe.FindAllStringSubmatch(string(src), -1) {
		catalog[m[1]] = true
	}
	if len(catalog) == 0 {
		report("%s: no metric name constants found (docscheck expects them)", catalogGo)
		return
	}
	documented := map[string]bool{}
	for _, m := range docMetricRe.FindAllStringSubmatch(string(doc), -1) {
		if documented[m[1]] {
			report("%s: metric %s documented twice", docsPage, m[1])
		}
		documented[m[1]] = true
	}
	var missing, orphaned []string
	for name := range catalog {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !catalog[name] {
			orphaned = append(orphaned, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(orphaned)
	for _, name := range missing {
		report("%s: catalog metric %s has no table row in %s", catalogGo, name, docsPage)
	}
	for _, name := range orphaned {
		report("%s: documents metric %s, which is not in %s", docsPage, name, catalogGo)
	}
}

func checkShellBlock(path, body string, flags map[string]map[string]bool, report func(string, ...any)) {
	for _, line := range strings.Split(body, "\n") {
		words := strings.Fields(line)
		var set map[string]bool
		toolName := ""
		for _, w := range words {
			// A word naming a cmd/* tool ("mobibench", "./cmd/mobibench",
			// "./bin/mclc") selects its flag set for the rest of the line.
			base := w[strings.LastIndexByte(w, '/')+1:]
			if s, ok := flags[base]; ok {
				set, toolName = s, base
				continue
			}
			if set == nil || !strings.HasPrefix(w, "-") || w == "-" || strings.HasPrefix(w, "--") {
				continue
			}
			name := strings.TrimPrefix(w, "-")
			if i := strings.IndexByte(name, '='); i >= 0 {
				name = name[:i]
			}
			if name != "" && !set[name] {
				report("%s: %s has no flag -%s (line: %q)", path, toolName, name, strings.TrimSpace(line))
			}
		}
	}
}
