package main

import (
	"strings"
	"testing"

	"mobigate/internal/obs"
)

// TestReadSSE: frames split on blank lines, data concatenated, EOF clean.
func TestReadSSE(t *testing.T) {
	stream := "event: full\ndata: {\"a\":1}\n\n" +
		": comment-ish noise line\n" +
		"event: delta\ndata: {\"b\":2}\n\n" +
		"data: {\"tail\":3}\n" // no trailing blank line: not dispatched
	var got []string
	err := readSSE(strings.NewReader(stream), func(event, data string) error {
		got = append(got, event+"|"+data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`full|{"a":1}`, `delta|{"b":2}`}
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events %v, want %v", got, want)
		}
	}
}

// TestReadSSEHandlerError: a handler error stops the stream and propagates.
func TestReadSSEHandlerError(t *testing.T) {
	stream := "event: full\ndata: x\n\nevent: delta\ndata: y\n\n"
	calls := 0
	err := readSSE(strings.NewReader(stream), func(event, data string) error {
		calls++
		return errDone
	})
	if err != errDone || calls != 1 {
		t.Fatalf("err=%v calls=%d, want errDone after 1 call", err, calls)
	}
}

// TestModelApply: full frames replace the series map, deltas merge into it.
func TestModelApply(t *testing.T) {
	m := newModel()
	m.apply("full", frame{Series: map[string]float64{"a": 1, "b": 2}})
	m.apply("delta", frame{Series: map[string]float64{"b": 5, "c": 3}})
	if m.series["a"] != 1 || m.series["b"] != 5 || m.series["c"] != 3 {
		t.Fatalf("after delta merge: %v", m.series)
	}
	if m.frames != 2 {
		t.Fatalf("frames = %d", m.frames)
	}
	// A later full frame drops series the server no longer reports.
	m.apply("full", frame{Series: map[string]float64{"a": 9}})
	if len(m.series) != 1 || m.series["a"] != 9 {
		t.Fatalf("full frame did not replace series: %v", m.series)
	}
}

// TestRender: the dashboard surfaces health verdict, featured gauges,
// components, sampled sessions, and heavy hitters from the model.
func TestRender(t *testing.T) {
	m := newModel()
	m.apply("full", frame{
		Series: map[string]float64{
			"mobigate_session_live": 42,
			"go_heap_bytes":         2048,
		},
		Health: obs.HealthSnapshot{
			Healthy: false,
			Components: []obs.ComponentHealth{
				{Name: "queues", Healthy: false, Reason: "queue drops"},
				{Name: "link", Healthy: true},
			},
			Transitions: 3,
		},
		Sessions: obs.SessionStatsSnapshot{
			SampleRate: 64,
			Sampled:    1,
			SlotCap:    1024,
			Samples: []obs.SessionSLOSample{
				{ID: "sess-7", Count: 10, P50Ns: 1_000_000, P95Ns: 2_000_000,
					P99Ns: 3_000_000, Violations: 2, InViolation: true},
			},
			TopBytes: []obs.HeavyHitter{{ID: "sess-9", Bytes: 4096, Msgs: 4}},
			TopSheds: []obs.HeavyHitter{{ID: "sess-9", Sheds: 6}},
		},
	})
	var sb strings.Builder
	render(&sb, m, 10, false)
	out := sb.String()
	for _, want := range []string{
		"health: DEGRADED",
		"transitions: 3",
		"sessions live", "42",
		"heap bytes", "2.0 KiB",
		"queues", "DEGRADED: queue drops",
		"sampled sessions (1/64, 1 of 1024 slots",
		"sess-7", "(over budget)",
		"top by bytes", "4.0 KiB in 4 msgs",
		"top by sheds", "6 sheds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatal("ansi escapes emitted with ansi=false")
	}
}

// TestRenderTopKClamp: -n bounds every list.
func TestRenderTopKClamp(t *testing.T) {
	m := newModel()
	var samples []obs.SessionSLOSample
	var hh []obs.HeavyHitter
	for i := 0; i < 5; i++ {
		samples = append(samples, obs.SessionSLOSample{
			ID: "s-" + string(rune('a'+i)), Count: 1, P99Ns: int64(i)})
		hh = append(hh, obs.HeavyHitter{ID: "h-" + string(rune('a'+i)), Bytes: int64(i + 1)})
	}
	m.apply("full", frame{Sessions: obs.SessionStatsSnapshot{
		SampleRate: 64, Samples: samples, TopBytes: hh,
	}})
	var sb strings.Builder
	render(&sb, m, 2, false)
	out := sb.String()
	if got := strings.Count(out, "s-"); got != 2 {
		t.Fatalf("rendered %d samples, want 2:\n%s", got, out)
	}
	if got := strings.Count(out, "h-"); got != 2 {
		t.Fatalf("rendered %d heavy hitters, want 2:\n%s", got, out)
	}
}

func TestBytesHuman(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
	}
	for _, c := range cases {
		if got := bytesHuman(c.in); got != c.want {
			t.Fatalf("bytesHuman(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
