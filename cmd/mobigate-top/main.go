// Command mobigate-top is a live terminal console for a running gateway:
// it subscribes to the front-end's /watch server-sent-events stream and
// redraws a compact dashboard — health verdict, key gauges, sampled
// per-session SLOs, and the heavy-hitter top-K — on every frame.
//
//	mobigate-top -addr localhost:7701             # follow, 1s frames
//	mobigate-top -interval 250ms                  # faster refresh
//	mobigate-top -once                            # one frame, no ANSI
//	mobigate-top -n 5                             # top-5 heavy hitters
//
// The consumer side of the /watch contract: the first event is a "full"
// frame carrying every registry series; every later "delta" frame carries
// only the series that changed, so the console merges deltas into its
// model instead of re-reading the world.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mobigate/internal/obs"
)

// frame mirrors the server's /watch event payload.
type frame struct {
	TsNs     int64                    `json:"tsNs"`
	Series   map[string]float64       `json:"series"`
	Health   obs.HealthSnapshot       `json:"health"`
	Sessions obs.SessionStatsSnapshot `json:"sessions"`
}

// model is the merged console state across frames.
type model struct {
	series   map[string]float64
	health   obs.HealthSnapshot
	sessions obs.SessionStatsSnapshot
	frames   int
}

func newModel() *model { return &model{series: make(map[string]float64)} }

// apply merges one frame ("full" replaces the series map, "delta" merges).
func (m *model) apply(event string, f frame) {
	if event == "full" {
		m.series = make(map[string]float64, len(f.Series))
	}
	for k, v := range f.Series {
		m.series[k] = v
	}
	m.health = f.Health
	m.sessions = f.Sessions
	m.frames++
}

// readSSE consumes a server-sent-events stream, invoking handle per event
// with the event name and the concatenated data payload. It returns on
// stream end or the first handle error.
func readSSE(r io.Reader, handle func(event, data string) error) error {
	br := bufio.NewReader(r)
	event := ""
	var data strings.Builder
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			line = strings.TrimRight(line, "\r\n")
			switch {
			case line == "":
				if data.Len() > 0 {
					if herr := handle(event, data.String()); herr != nil {
						return herr
					}
				}
				event = ""
				data.Reset()
			case strings.HasPrefix(line, "event:"):
				event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
			case strings.HasPrefix(line, "data:"):
				data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
			}
		}
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// featuredSeries are the gauges the dashboard always shows, in order.
var featuredSeries = []struct{ name, label string }{
	{"mobigate_session_live", "sessions live"},
	{"mobigate_session_draining", "sessions draining"},
	{"mobigate_session_queued_bytes", "session queued bytes"},
	{"mobigate_session_load_shed_total", "load sheds"},
	{"mobigate_session_quota_shed_total", "quota sheds"},
	{"mobigate_session_admission_shed_total", "admission sheds"},
	{"mobigate_session_slo_violations_total", "session SLO violations"},
	{"mobigate_slo_violations_total", "plane SLO violations"},
	{"go_heap_bytes", "heap bytes"},
	{"go_goroutines", "goroutines"},
	{"go_gc_pause_p99_seconds", "GC pause p99 (s)"},
	{"mobigate_watch_clients", "watch clients"},
}

// render draws the dashboard. With ansi, the screen is cleared and the
// cursor homed first so successive frames redraw in place.
func render(w io.Writer, m *model, k int, ansi bool) {
	if ansi {
		fmt.Fprint(w, "\x1b[2J\x1b[H")
	}
	verdict := "HEALTHY"
	if !m.health.Healthy {
		verdict = "DEGRADED"
	}
	fmt.Fprintf(w, "mobigate-top  frame %d  health: %s  transitions: %d\n\n",
		m.frames, verdict, m.health.Transitions)

	for _, f := range featuredSeries {
		if v, ok := m.series[f.name]; ok {
			fmt.Fprintf(w, "  %-24s %s\n", f.label, formatValue(f.name, v))
		}
	}

	fmt.Fprint(w, "\ncomponents:\n")
	for _, c := range m.health.Components {
		state := "ok"
		if !c.Healthy {
			state = "DEGRADED: " + c.Reason
		}
		fmt.Fprintf(w, "  %-12s %s\n", c.Name, state)
	}

	s := &m.sessions
	fmt.Fprintf(w, "\nsampled sessions (1/%d, %d of %d slots, overflow %d):\n",
		s.SampleRate, s.Sampled, s.SlotCap, s.Overflow)
	samples := append([]obs.SessionSLOSample(nil), s.Samples...)
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].P99Ns != samples[j].P99Ns {
			return samples[i].P99Ns > samples[j].P99Ns
		}
		return samples[i].ID < samples[j].ID
	})
	if len(samples) > k {
		samples = samples[:k]
	}
	for _, sm := range samples {
		note := ""
		if sm.Stale {
			note = "  (stale)"
		} else if sm.InViolation {
			note = "  (over budget)"
		}
		fmt.Fprintf(w, "  %-20s n=%-6d p50=%-10s p95=%-10s p99=%-10s viol=%d%s\n",
			sm.ID, sm.Count, duration(sm.P50Ns), duration(sm.P95Ns), duration(sm.P99Ns),
			sm.Violations, note)
	}

	printHH := func(title string, hh []obs.HeavyHitter, val func(obs.HeavyHitter) string) {
		if len(hh) == 0 {
			return
		}
		if len(hh) > k {
			hh = hh[:k]
		}
		fmt.Fprintf(w, "\ntop by %s:\n", title)
		for _, h := range hh {
			fmt.Fprintf(w, "  %-20s %s\n", h.ID, val(h))
		}
	}
	printHH("bytes", s.TopBytes, func(h obs.HeavyHitter) string {
		return fmt.Sprintf("%s in %d msgs", bytesHuman(h.Bytes), h.Msgs)
	})
	printHH("sheds", s.TopSheds, func(h obs.HeavyHitter) string {
		return fmt.Sprintf("%d sheds", h.Sheds)
	})
	printHH("SLO violations", s.TopViolations, func(h obs.HeavyHitter) string {
		return fmt.Sprintf("%d violations", h.Violations)
	})
}

func formatValue(name string, v float64) string {
	switch {
	case strings.HasSuffix(name, "_bytes"):
		return bytesHuman(int64(v))
	case strings.HasSuffix(name, "_seconds"):
		return duration(int64(v * 1e9))
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func duration(ns int64) string {
	return time.Duration(ns).Truncate(time.Microsecond).String()
}

func bytesHuman(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

func main() {
	addr := flag.String("addr", "localhost:7701", "gateway metrics address (host:port)")
	interval := flag.Duration("interval", time.Second, "frame interval requested from /watch")
	once := flag.Bool("once", false, "print one full frame and exit (no ANSI redraw)")
	topK := flag.Int("n", 10, "entries per top list")
	flag.Parse()

	url := fmt.Sprintf("http://%s/watch?interval=%s", *addr, interval.String())
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobigate-top: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "mobigate-top: %s returned %s\n", url, resp.Status)
		os.Exit(1)
	}

	m := newModel()
	err = readSSE(resp.Body, func(event, data string) error {
		var f frame
		if jerr := json.Unmarshal([]byte(data), &f); jerr != nil {
			return fmt.Errorf("bad frame: %w", jerr)
		}
		m.apply(event, f)
		render(os.Stdout, m, *topK, !*once)
		if *once {
			return errDone
		}
		return nil
	})
	if err != nil && err != errDone {
		fmt.Fprintf(os.Stderr, "mobigate-top: %v\n", err)
		os.Exit(1)
	}
}

var errDone = fmt.Errorf("done")
