// Command mclc is the MCL compiler and static analyzer: it compiles
// MobiGATE Coordination Language scripts, reports compile-time type errors,
// and runs the chapter-5 semantic analyses (feedback loops, open circuits,
// mutual exclusion, dependency, preorder) on every stream.
//
// Usage:
//
//	mclc [-q] [-no-analyze] script.mcl...
//
// Exit status is 0 when every script compiles and passes analysis, 1 on
// compile errors, 2 on analysis violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mobigate/internal/mcl"
	"mobigate/internal/semantics"
)

var (
	quiet     = flag.Bool("q", false, "only print errors and violations")
	noAnalyze = flag.Bool("no-analyze", false, "skip the semantic analyses")
	dot       = flag.Bool("dot", false, "emit each stream's topology as GraphViz dot")
	unit      = flag.Bool("unit", false, "compile all scripts together as one unit (library + app)")
	rulesPath = flag.String("rules", "", "rules file with exclude/depend/preorder/allow-open directives")
	format    = flag.Bool("fmt", false, "print each script reformatted in canonical MCL instead of analyzing")
)

// loadRules reads the -rules file (empty Rules when the flag is unset).
func loadRules() (semantics.Rules, error) {
	if *rulesPath == "" {
		return semantics.Rules{}, nil
	}
	src, err := os.ReadFile(*rulesPath)
	if err != nil {
		return semantics.Rules{}, err
	}
	return semantics.ParseRules(string(src))
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mclc [-q] [-no-analyze] [-dot] [-unit] script.mcl...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(1)
	}
	if *format {
		os.Exit(formatFiles(flag.Args()))
	}
	if *unit {
		os.Exit(compileUnit(flag.Args()))
	}
	status := 0
	for _, path := range flag.Args() {
		if s := compileOne(path); s > status {
			status = s
		}
	}
	os.Exit(status)
}

// compileUnit compiles every script as a single compilation unit, so an
// application file can use streamlet definitions from library files.
func compileUnit(paths []string) int {
	sources := make(map[string]string, len(paths))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mclc: %v\n", err)
			return 1
		}
		sources[path] = string(src)
	}
	cfg, err := mcl.CompileSources(sources, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	label := strings.Join(paths, "+")
	if !*quiet {
		printSummary(label, cfg)
	}
	if *noAnalyze {
		return 0
	}
	return analyzeAll(label, cfg)
}

func compileOne(path string) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mclc: %v\n", err)
		return 1
	}
	cfg, err := mcl.Compile(string(src), nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	if !*quiet {
		printSummary(path, cfg)
	}
	if *dot {
		names := make([]string, 0, len(cfg.Streams))
		for name := range cfg.Streams {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Print(semantics.BuildGraph(cfg.Streams[name]).DOT(name))
		}
	}
	if *noAnalyze {
		return 0
	}
	return analyzeAll(path, cfg)
}

func analyzeAll(label string, cfg *mcl.Config) int {
	extra, err := loadRules()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mclc: %v\n", err)
		return 1
	}
	status := 0
	names := make([]string, 0, len(cfg.Streams))
	for name := range cfg.Streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc := cfg.Streams[name]
		rules := semantics.Rules{AllowedOpenPorts: semantics.OpenPorts(sc)}.Merge(extra)
		rep := semantics.Analyze(sc, rules)
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "%s: stream %s: %s\n", label, name, v)
			status = 2
		}
	}
	return status
}

// formatFiles prints each script in canonical form (mcl.Format).
func formatFiles(paths []string) int {
	status := 0
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mclc: %v\n", err)
			status = 1
			continue
		}
		f, err := mcl.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			status = 1
			continue
		}
		fmt.Print(mcl.Format(f))
	}
	return status
}

func printSummary(path string, cfg *mcl.Config) {
	fmt.Printf("%s: %d streamlet defs, %d channel defs, %d streams",
		path, len(cfg.File.Streamlets), len(cfg.File.Channels), len(cfg.Streams))
	if cfg.Main != "" {
		fmt.Printf(" (main: %s)", cfg.Main)
	}
	fmt.Println()
	names := make([]string, 0, len(cfg.Streams))
	for name := range cfg.Streams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sc := cfg.Streams[name]
		fmt.Printf("  stream %s: %d instances, %d channels, %d connections, %d reactions\n",
			name, len(sc.Instances), len(sc.Channels), len(sc.Connections), len(sc.Whens))
		for _, conn := range sc.Connections {
			ch := conn.Channel
			if ch == "" {
				ch = "(default)"
			}
			fmt.Printf("    %s -> %s via %s\n", conn.From, conn.To, ch)
		}
		for _, w := range sc.Whens {
			fmt.Printf("    when %s: %d actions\n", w.Event, len(w.Actions))
		}
	}
}
