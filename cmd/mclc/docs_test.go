package main

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"mobigate/internal/mcl"
	"mobigate/internal/semantics"
)

var docFenceRe = regexp.MustCompile("(?ms)^```mcl\n(.*?)^```")

// TestDocsExamplesCompile holds the language reference to the compiler:
// every fenced mcl block in docs/MCL.md must at least parse, and complete
// scripts (those declaring a stream) must compile. Blocks opening with a
// "// fragment" comment are exempt — they illustrate grammar productions
// that cannot stand alone.
func TestDocsExamplesCompile(t *testing.T) {
	data, err := os.ReadFile("../../docs/MCL.md")
	if err != nil {
		t.Fatal(err)
	}
	blocks := docFenceRe.FindAllStringSubmatch(string(data), -1)
	if len(blocks) == 0 {
		t.Fatal("docs/MCL.md has no fenced mcl blocks")
	}
	complete := 0
	for i, m := range blocks {
		body := m[1]
		first := strings.TrimSpace(strings.SplitN(body, "\n", 2)[0])
		if strings.HasPrefix(first, "//") && strings.Contains(first, "fragment") {
			continue
		}
		f, err := mcl.Parse(body)
		if err != nil {
			t.Errorf("docs/MCL.md block %d does not parse: %v\n%s", i+1, err, body)
			continue
		}
		if len(f.Streams) == 0 {
			continue // definition-only illustration
		}
		cfg, err := mcl.Compile(body, nil)
		if err != nil {
			t.Errorf("docs/MCL.md block %d does not compile: %v\n%s", i+1, err, body)
			continue
		}
		complete++
		for name := range cfg.Streams {
			rep := semantics.Analyze(cfg.Stream(name), semantics.Rules{})
			for _, v := range rep.Violations {
				// Doc examples legitimately end in an open outlet; every
				// other analysis must hold.
				if v.Kind == "open-circuit" {
					continue
				}
				t.Errorf("docs/MCL.md block %d stream %s: %v", i+1, name, v)
			}
		}
	}
	if complete == 0 {
		t.Error("docs/MCL.md has no complete (compiling) example script")
	}
}
