package main

import (
	"os"
	"path/filepath"
	"testing"
)

func repoPath(t *testing.T, rel string) string {
	t.Helper()
	p := filepath.Join("..", "..", rel)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("missing %s: %v", rel, err)
	}
	return p
}

func TestCompileOneGoodScripts(t *testing.T) {
	*quiet = true
	for _, f := range []string{"testdata/distillation.mcl", "testdata/webaccel.mcl"} {
		if status := compileOne(repoPath(t, f)); status != 0 {
			t.Errorf("%s: status %d", f, status)
		}
	}
}

func TestCompileOneLoopScript(t *testing.T) {
	*quiet = true
	if status := compileOne(repoPath(t, "testdata/broken-loop.mcl")); status != 2 {
		t.Errorf("loop script status = %d, want 2", status)
	}
}

func TestCompileOneSyntaxError(t *testing.T) {
	*quiet = true
	tmp := filepath.Join(t.TempDir(), "bad.mcl")
	if err := os.WriteFile(tmp, []byte("stream { oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status := compileOne(tmp); status != 1 {
		t.Errorf("syntax error status = %d, want 1", status)
	}
	if status := compileOne(filepath.Join(t.TempDir(), "missing.mcl")); status != 1 {
		t.Error("missing file not an error")
	}
}

func TestCompileOneVerboseSummary(t *testing.T) {
	*quiet = false
	defer func() { *quiet = true }()
	if status := compileOne(repoPath(t, "testdata/distillation.mcl")); status != 0 {
		t.Errorf("status = %d", status)
	}
}

func TestNoAnalyzeSkipsViolations(t *testing.T) {
	*quiet = true
	*noAnalyze = true
	defer func() { *noAnalyze = false }()
	if status := compileOne(repoPath(t, "testdata/broken-loop.mcl")); status != 0 {
		t.Errorf("-no-analyze status = %d, want 0", status)
	}
}

func TestCompileUnit(t *testing.T) {
	*quiet = true
	paths := []string{
		repoPath(t, "testdata/stdlib.mcl"),
		repoPath(t, "testdata/secureapp.mcl"),
	}
	if status := compileUnit(paths); status != 0 {
		t.Errorf("unit compile status = %d", status)
	}
	// The app alone fails (missing library definitions).
	if status := compileOne(paths[1]); status != 1 {
		t.Errorf("lone app status = %d, want 1", status)
	}
	if status := compileUnit([]string{filepath.Join(t.TempDir(), "missing.mcl")}); status != 1 {
		t.Error("missing file in unit not an error")
	}
}

func TestRulesFlagDrivesAnalysis(t *testing.T) {
	*quiet = true
	*rulesPath = repoPath(t, "testdata/policy.rules")
	defer func() { *rulesPath = "" }()
	// secureapp wires sign before compress: policy satisfied.
	if status := compileUnit([]string{
		repoPath(t, "testdata/stdlib.mcl"),
		repoPath(t, "testdata/secureapp.mcl"),
	}); status != 0 {
		t.Errorf("policy-satisfying unit status = %d", status)
	}
	// A reversed order violates the preorder.
	tmp := filepath.Join(t.TempDir(), "reversed.mcl")
	src := `
main stream reversedApp {
	streamlet c = new-streamlet (libCompress);
	streamlet s = new-streamlet (libSign);
	connect (c.po, s.pi);
}
`
	if err := os.WriteFile(tmp, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if status := compileUnit([]string{repoPath(t, "testdata/stdlib.mcl"), tmp}); status != 2 {
		t.Errorf("policy-violating unit status = %d, want 2", status)
	}
	// Missing rules file is an error.
	*rulesPath = filepath.Join(t.TempDir(), "none.rules")
	if status := compileOne(repoPath(t, "testdata/webaccel.mcl")); status != 1 {
		t.Errorf("missing rules file status = %d", status)
	}
}

func TestFormatFiles(t *testing.T) {
	if status := formatFiles([]string{repoPath(t, "testdata/webaccel.mcl")}); status != 0 {
		t.Errorf("format status = %d", status)
	}
	tmp := filepath.Join(t.TempDir(), "bad.mcl")
	_ = os.WriteFile(tmp, []byte("not mcl"), 0o644)
	if status := formatFiles([]string{tmp}); status != 1 {
		t.Errorf("format of bad file = %d", status)
	}
	if status := formatFiles([]string{filepath.Join(t.TempDir(), "gone.mcl")}); status != 1 {
		t.Error("missing file formatted")
	}
}
