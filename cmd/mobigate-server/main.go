// Command mobigate-server runs a MobiGATE gateway: it compiles an MCL
// script, deploys its streams on demand, and serves adapted flows to
// MobiGATE clients over TCP. The origin data flow is a synthetic mixed
// image/text workload (a stand-in for the web origin of the thesis's §7.5
// testbed).
//
// Usage:
//
//	mobigate-server -script app.mcl [-listen :7700] [-messages 50]
//	                [-image-ratio 0.5] [-strict] [-metrics :7701]
//
// Clients connect, send a request message whose X-Request-Stream header
// names the stream to deploy, and receive the adapted flow in MIME wire
// format. Typing an event name (e.g. LOW_BANDWIDTH) on stdin raises it;
// typing RELOAD (or sending SIGHUP) recompiles the script file and
// hot-swaps every deployed stream's when-blocks and when-policies without
// interrupting sessions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobigate"
	"mobigate/internal/event"
	"mobigate/internal/mime"
	"mobigate/internal/obs"
	"mobigate/internal/server"
	"mobigate/internal/services"
)

var (
	scriptPath  = flag.String("script", "", "MCL script to load (required)")
	listenAddr  = flag.String("listen", ":7700", "TCP listen address")
	messages    = flag.Int("messages", 50, "origin messages per client session")
	imageRatio  = flag.Float64("image-ratio", 0.5, "fraction of image messages in the origin flow")
	seed        = flag.Int64("seed", 2004, "workload seed")
	strict      = flag.Bool("strict", false, "reject deployment on any semantic violation")
	metricsAddr = flag.String("metrics", ":7701", "observability HTTP address (/metrics, /trace); empty disables")
	debug       = flag.Bool("debug", false, "mount the debug surface (/debug/flight, /debug/pprof) on the metrics address")
	spans       = flag.Bool("spans", false, "enable end-to-end span tracing (deep diagnosis; adds per-message overhead)")
	adaptEvery  = flag.Duration("adapt-interval", time.Second, "when-policy autopilot evaluation interval; 0 disables the autopilot")
	sharedSess  = flag.Int("shared-sessions", 0, "shared-plane session mode: multiplex client connections onto a pool of N instances per stream instead of deploying one chain per connection; 0 keeps the per-connection model")
	sessSweep   = flag.Duration("session-sweep", 30*time.Second, "idle-reaper interval in shared-session mode: sessions quiet for longer than this demote from Active to Idle; 0 disables the sweeper")
)

// reloadScript recompiles the script file and hot-swaps the gateway's
// when-blocks and when-policies (topology of deployed streams is kept).
func reloadScript(gw *mobigate.Gateway) {
	src, err := os.ReadFile(*scriptPath)
	if err != nil {
		log.Printf("reload: %v", err)
		return
	}
	if err := gw.ReloadScript(string(src)); err != nil {
		log.Printf("reload: %v", err)
		return
	}
	log.Printf("reloaded %s: when-blocks and policies swapped on %d deployed streams",
		*scriptPath, len(gw.Deployed()))
}

func main() {
	flag.Parse()
	if *scriptPath == "" {
		flag.Usage()
		os.Exit(1)
	}
	if *spans {
		obs.SetSpansEnabled(true)
	}
	src, err := os.ReadFile(*scriptPath)
	if err != nil {
		log.Fatalf("mobigate-server: %v", err)
	}

	gw := mobigate.NewGateway(mobigate.GatewayOptions{
		Strict:       *strict,
		ErrorHandler: func(err error) { log.Printf("stream error: %v", err) },
	})
	defer gw.Close()
	if err := gw.LoadScript(string(src)); err != nil {
		log.Fatalf("mobigate-server: %v", err)
	}
	if *adaptEvery > 0 {
		// The autopilot evaluates when-policies against the metric-backed
		// signals (SLO violations, faults, worker and queue gauges); streams
		// attach as they deploy. Over the TCP frontend there is no emulated
		// link, so the bandwidth signal reads zero.
		eng := mobigate.NewAdaptEngine(mobigate.AdaptConfig{
			Events:   gw.Events(),
			Interval: *adaptEvery,
			OnError:  func(err error) { log.Printf("autopilot: %v", err) },
		})
		gw.SetAutopilot(eng)
		eng.Start()
		defer eng.Close()
	}
	cfg := gw.Config()
	log.Printf("loaded %s: %d streams (main %q)", *scriptPath, len(cfg.Streams), cfg.Main)
	for name := range cfg.Streams {
		if rep := gw.Report(name); rep != nil && !rep.OK() {
			for _, v := range rep.Violations {
				log.Printf("analysis: stream %s: %s", name, v)
			}
		}
	}

	source := func(req *mime.Message) <-chan *mime.Message {
		ch := make(chan *mime.Message)
		go func() {
			defer close(ch)
			for _, m := range services.MixedWorkload(*messages, *imageRatio, *seed) {
				ch <- m
			}
		}()
		return ch
	}
	fe := mobigate.NewFrontend(gw, source)
	if *sharedSess > 0 {
		fe.EnableSharedSessions(server.SessionGatewayConfig{Instances: *sharedSess})
		log.Printf("shared-plane session mode: %d instances per stream", *sharedSess)
		if *sessSweep > 0 {
			// The idle reaper: demote sessions quiet past the interval so
			// operators (and the health model) can tell a full table from a
			// busy one. Demotion is bookkeeping — the next post promotes the
			// session back to Active.
			defer fe.StartSessionSweeper(*sessSweep, *sessSweep)()
			log.Printf("session idle-reaper: sweep every %v", *sessSweep)
		}
	}
	addr, err := fe.Listen(*listenAddr)
	if err != nil {
		log.Fatalf("mobigate-server: %v", err)
	}
	defer fe.Close()
	log.Printf("listening on %s; sessions serve %d origin messages each", addr, *messages)
	if *metricsAddr != "" {
		serve := fe.ServeMetrics
		if *debug {
			serve = fe.ServeMetricsDebug
		}
		maddr, err := serve(*metricsAddr)
		if err != nil {
			log.Fatalf("mobigate-server: metrics endpoint: %v", err)
		}
		// The /watch feed and the health model draw on the go_* runtime
		// series, so the collector runs whenever the endpoint does.
		obs.Runtime().Start(5 * time.Second)
		defer obs.Runtime().Close()
		// Health transitions fan out as context events, so MCL when-blocks
		// (on HEALTH_DEGRADED/HEALTH_RECOVERED) react alongside the
		// health_degraded policy signal.
		obs.Health().SetOnTransition(func(name string, healthy bool, reason string) {
			id := event.HEALTH_DEGRADED
			if healthy {
				id = event.HEALTH_RECOVERED
			}
			gw.Events().Post(event.ContextEvent{EventID: id, Category: event.ExecutionFault})
		})
		defer obs.Health().SetOnTransition(nil)
		// Evaluate the model on a timer too: /healthz and /watch each
		// evaluate per request, but the health_degraded policy signal and
		// the transition events must stay live with no scraper attached.
		healthTick := time.NewTicker(5 * time.Second)
		defer healthTick.Stop()
		go func() {
			for range healthTick.C {
				obs.Health().Eval()
			}
		}()
		log.Printf("observability on http://%s/metrics (also /metrics.json, /trace, /streams, /slo, /sessions, /healthz, /watch)", maddr)
		log.Printf("live console: mobigate-top -addr %s", maddr)
		if *debug {
			log.Printf("debug surface on http://%s/debug/flight and /debug/pprof", maddr)
		}
	}
	log.Printf("type an event name (e.g. LOW_BANDWIDTH) + enter to raise it, RELOAD to re-read the script; ctrl-D to quit")

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			reloadScript(gw)
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		ev := strings.ToUpper(strings.TrimSpace(sc.Text()))
		switch ev {
		case "":
			continue
		case "RELOAD":
			reloadScript(gw)
			continue
		case "STATS":
			for _, alias := range gw.Deployed() {
				fmt.Print(gw.Stream(alias).StatsSnapshot())
			}
			continue
		}
		if err := gw.Raise(ev, ""); err != nil {
			log.Printf("raise %s: %v", ev, err)
			continue
		}
		fmt.Printf("raised %s to %d deployed streams\n", ev, len(gw.Deployed()))
	}
}
