// Command benchdiff turns `go test -bench` output into a committed JSON
// baseline and gates later runs against it. It exists so the coordination
// plane's performance claims (EXPERIMENTS.md, PR-level acceptance criteria)
// are checked by tooling rather than eyeballed:
//
//	go test -run '^$' -bench Queue -benchmem . | benchdiff -save BENCH.json
//	go test -run '^$' -bench Queue -benchmem . | benchdiff -baseline BENCH.json
//
// Compare mode exits non-zero when any benchmark present in both runs got
// slower (ns/op) by more than -threshold (default 25%), or started
// allocating where the baseline recorded zero allocs/op. Feed both modes
// `go test -count=N` output: -save keeps each benchmark's median run (the
// typical cost) while -baseline keeps the minimum (the least-disturbed
// run), which keeps the threshold gate meaningful on busy or single-core
// machines where single-shot numbers swing wildly. The -zeroalloc
// flag additionally requires every *current* benchmark matching its regex
// to report 0 allocs/op — baseline or not — which is how brand-new
// benchmarks (no committed history yet) are still held to an
// allocation-free contract.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the serialized form: benchmark name → unit → value.
type Baseline struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// reduceMode picks which run survives when a benchmark appears several
// times in the input (`go test -count=N`).
type reduceMode int

const (
	// reduceMin keeps the run with the lowest ns/op — the run least
	// disturbed by the scheduler. The compare side uses it: the best of N
	// attempts is the fairest measure of what the code can do.
	reduceMin reduceMode = iota
	// reduceMedian keeps the run with the median ns/op. The save side uses
	// it: a baseline records the *typical* cost, so a later compare whose
	// best-of-N is noisy still fits under typical × (1 + threshold). A
	// min-vs-min gate flakes on busy or single-core machines whenever the
	// baseline's minimum happened to be lucky.
	reduceMedian
)

// parseBench reads `go test -bench` output, collects every metric pair
// (value unit) per benchmark, and reduces repeated runs per mode. The
// trailing -<GOMAXPROCS> suffix is stripped so baselines transfer across
// machines with different core counts.
func parseBench(r io.Reader, mode reduceMode) (*Baseline, error) {
	runs := map[string][]map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable output visible
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := map[string]float64{}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			runs[name] = append(runs[name], metrics)
		}
	}
	b := &Baseline{Benchmarks: map[string]map[string]float64{}}
	for name, rr := range runs {
		sort.Slice(rr, func(i, j int) bool { return rr[i]["ns/op"] < rr[j]["ns/op"] })
		switch mode {
		case reduceMedian:
			b.Benchmarks[name] = rr[len(rr)/2]
		default:
			b.Benchmarks[name] = rr[0]
		}
	}
	return b, sc.Err()
}

func load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func save(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compare prints a per-benchmark delta table and returns the names that
// regressed: ns/op beyond the threshold, or fresh allocations where the
// baseline was allocation-free.
func compare(base, cur *Baseline, threshold float64) []string {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var regressed []string
	fmt.Printf("\n%-72s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "delta")
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		bns, bok := b["ns/op"]
		cns, cok := c["ns/op"]
		if !bok || !cok || bns == 0 {
			continue
		}
		delta := (cns - bns) / bns
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed = append(regressed, name)
		}
		fmt.Printf("%-72s %14.1f %14.1f %+7.1f%%%s\n", name, bns, cns, delta*100, mark)
		if ba, ok := b["allocs/op"]; ok && ba == 0 {
			if ca := c["allocs/op"]; ca > 0 {
				fmt.Printf("%-72s was allocation-free, now %.0f allocs/op  REGRESSION\n", name, ca)
				regressed = append(regressed, name)
			}
		}
	}
	return regressed
}

// checkZeroAlloc returns every current benchmark matching re that reports a
// nonzero allocs/op. Unlike compare, it does not need the benchmark in the
// baseline: a freshly added benchmark is checked on its first run.
func checkZeroAlloc(cur *Baseline, re *regexp.Regexp) []string {
	var failed []string
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		if allocs, ok := cur.Benchmarks[name]["allocs/op"]; ok && allocs > 0 {
			fmt.Printf("%-72s must be allocation-free, reports %.0f allocs/op  REGRESSION\n", name, allocs)
			failed = append(failed, name)
		}
	}
	return failed
}

func main() {
	savePath := flag.String("save", "", "write parsed results to this JSON file")
	basePath := flag.String("baseline", "", "compare parsed results against this JSON baseline")
	threshold := flag.Float64("threshold", 0.25, "allowed ns/op growth before a benchmark counts as regressed")
	zeroAlloc := flag.String("zeroalloc", "", "regex of benchmarks that must report 0 allocs/op (checked against the current run, baseline or not)")
	flag.Parse()

	if (*savePath == "") == (*basePath == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -save or -baseline is required")
		os.Exit(2)
	}

	mode := reduceMin // compare: the best of N runs speaks for the code
	if *savePath != "" {
		mode = reduceMedian // save: the baseline records the typical run
	}
	cur, err := parseBench(os.Stdin, mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *savePath != "" {
		if err := save(*savePath, cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		fmt.Printf("\nbenchdiff: saved %d benchmarks to %s\n", len(cur.Benchmarks), *savePath)
		return
	}

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	regressed := compare(base, cur, *threshold)
	if *zeroAlloc != "" {
		re, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: -zeroalloc:", err)
			os.Exit(2)
		}
		regressed = append(regressed, checkZeroAlloc(cur, re)...)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d benchmark(s) regressed beyond %.0f%%: %s\n",
			len(regressed), *threshold*100, strings.Join(regressed, ", "))
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no regressions beyond %.0f%% across %d shared benchmarks\n",
		*threshold*100, len(cur.Benchmarks))
}
