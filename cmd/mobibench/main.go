// Command mobibench regenerates the thesis's Chapter 7 evaluation as
// printed series, one table per figure:
//
//	mobibench -exp fig7.2   # streamlet overhead vs chain length
//	mobibench -exp fig7.3   # passing by reference vs by value
//	mobibench -exp fig7.6   # reconfiguration time vs insertions
//	mobibench -exp eq7.1    # reconfiguration time decomposition
//	mobibench -exp fig7.7   # end-to-end throughput sweep
//	mobibench -exp hops     # per-hop time composition (§7.3 breakdown)
//	mobibench -exp faults   # fault-injection survival (supervision subsystem)
//	mobibench -exp spans    # end-to-end span trees across the link
//	mobibench -exp parallel # workers fan-out scaling + transcode cache sweep
//	mobibench -exp adapt    # autopilot when-policies vs static compositions
//	mobibench -exp batch    # batched-handoff sweep (delivery + FIFO asserted)
//	mobibench -exp sessions # multi-session shared-plane scale (conservation + admission)
//	mobibench -exp health   # health model: degrade under overload, policy reacts, recover
//	mobibench -exp fusion   # chain fusion: fused vs per-hop equivalence + mid-run insert
//	mobibench -exp all      # everything
//
// The list above, the -exp dispatch, and the usage text all come from the
// experimentsTable in this file; docscheck verifies this comment and the
// table agree.
//
// -spans additionally runs the span-trace experiment after the hops
// breakdown and asserts the reconstructed trees (the make obs-smoke gate).
//
// Shapes, not absolute numbers, are the comparison target: the 2004 Java
// testbed measured ~12 ms per streamlet; this runtime measures microseconds
// (see EXPERIMENTS.md, which records both).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mobigate/internal/experiments"
)

// experimentsTable is the single source of truth for -exp modes: the
// dispatch, the usage text, and the package comment's list are all derived
// from or checked against it (the last by docscheck). `all` is implicit
// and runs every row except spans, which stays opt-in via -spans because
// it flips the global span toggle.
var experimentsTable = []struct {
	name string
	desc string
	run  func()
}{
	{"fig7.2", "streamlet overhead vs chain length", runFig72},
	{"fig7.3", "passing by reference vs by value", runFig73},
	{"fig7.6", "reconfiguration time vs insertions", runFig76},
	{"eq7.1", "reconfiguration time decomposition", runEq71},
	{"fig7.7", "end-to-end throughput sweep", runFig77},
	{"hops", "per-hop time composition (§7.3 breakdown)", runHops},
	{"faults", "fault-injection survival (supervision subsystem)", runFaults},
	{"spans", "end-to-end span trees across the link", runSpans},
	{"parallel", "workers fan-out scaling + transcode cache sweep", runParallel},
	{"adapt", "autopilot when-policies vs static compositions", runAdapt},
	{"batch", "batched-handoff sweep (delivery + FIFO asserted)", runBatch},
	{"sessions", "multi-session shared-plane scale (conservation + admission)", runSessions},
	{"health", "health model: degrade under overload, policy reacts, recover", runHealth},
	{"fusion", "chain fusion: fused vs per-hop equivalence + mid-run insert", runFusion},
}

// experimentList renders the table for the usage text and the unknown-mode
// error.
func experimentList() string {
	var b strings.Builder
	for _, e := range experimentsTable {
		fmt.Fprintf(&b, "  %-9s %s\n", e.name, e.desc)
	}
	b.WriteString("  all       everything above except spans (add -spans to include it)\n")
	return b.String()
}

var (
	exp       = flag.String("exp", "all", "experiment to run (or \"all\"); run with -exp help for the list")
	spans     = flag.Bool("spans", false, "enable span tracing: run the end-to-end trace-tree experiment after hops and assert the reconstruction")
	messages  = flag.Int("messages", 60, "messages per fig7.7 point")
	samples   = flag.Int("samples", 50, "messages per latency sample (fig7.2/7.3)")
	loss      = flag.Float64("loss", 0, "link loss rate for fig7.7 (0..1)")
	bandwidth = flag.Int64("bandwidth", 100_000, "link bandwidth for the hops breakdown (bits/s)")
	sessions  = flag.Int("sessions", 100_000, "concurrent session population for -exp sessions")
	cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
	memprof   = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file (go tool pprof)")
)

// startProfiles arms the pprof outputs and returns the shutdown hook main
// defers: CPU sampling covers every selected experiment; the heap profile
// is a single post-run snapshot taken after a GC so live retention, not
// transient garbage, is what the profile shows.
func startProfiles() func() {
	var cpu *os.File
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		cpu = f
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if *memprof != "" {
			f, err := os.Create(*memprof)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			f.Close()
		}
	}
}

func main() {
	flag.Parse()
	defer startProfiles()()
	switch *exp {
	case "all":
		for _, e := range experimentsTable {
			if e.name == "spans" {
				continue // opt-in via -spans below
			}
			e.run()
		}
		if *spans {
			runSpans()
		}
		return
	case "help", "list":
		fmt.Print("experiments:\n" + experimentList())
		return
	}
	for _, e := range experimentsTable {
		if e.name != *exp {
			continue
		}
		e.run()
		if e.name == "hops" && *spans {
			runSpans()
		}
		return
	}
	fmt.Fprintf(os.Stderr, "mobibench: unknown experiment %q; available:\n%s", *exp, experimentList())
	os.Exit(1)
}

func runFig72() {
	fmt.Println("=== Figure 7-2: streamlet overhead (10 KB messages) ===")
	fmt.Println("streamlets  per-message     per-streamlet")
	rows, err := experiments.Fig72([]int{1, 5, 10, 15, 20, 25, 30}, 10*1024, *samples)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%10d  %12v  %14v\n", r.Streamlets, r.PerMessage.Round(time.Microsecond), r.PerStreamlet.Round(time.Microsecond))
	}
	fmt.Println()
}

func runFig73() {
	fmt.Println("=== Figure 7-3: passing by reference vs passing by value (30 redirectors) ===")
	fmt.Println("  size(KB)  by-reference      by-value     ratio")
	sizes := []int{10 << 10, 50 << 10, 100 << 10, 200 << 10, 400 << 10, 700 << 10, 1000 << 10}
	rows, err := experiments.Fig73(sizes, 30, *samples)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		ratio := float64(r.ByValue) / float64(r.ByReference)
		fmt.Printf("%10d  %12v  %12v  %7.2fx\n",
			r.MessageBytes>>10,
			r.ByReference.Round(time.Microsecond),
			r.ByValue.Round(time.Microsecond), ratio)
	}
	fmt.Println()
}

func runFig76() {
	fmt.Println("=== Figure 7-6: reconfiguration overhead ===")
	fmt.Println(" inserted        total     per-insert")
	rows, err := experiments.Fig76([]int{1, 5, 10, 20, 50, 100})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%9d  %11v  %13v\n",
			r.Inserted, r.Total.Round(time.Microsecond),
			(r.Total / time.Duration(r.Inserted)).Round(time.Microsecond))
	}
	fmt.Println()
}

func runEq71() {
	fmt.Println("=== Equation 7-1: T = Σ suspend + n·channel + Σ activate ===")
	fmt.Println(" inserted      suspend     channels     activate")
	rows, err := experiments.Eq71([]int{1, 10, 50})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%9d  %11v  %11v  %11v\n", r.Inserted,
			r.Suspend.Round(time.Microsecond),
			r.Channels.Round(time.Microsecond),
			r.Activate.Round(time.Microsecond))
	}
	fmt.Println()
}

func runFig77() {
	fmt.Println("=== Figure 7-7: end-to-end throughput (Kb/s of original information) ===")
	fmt.Println("Columns: without MobiGATE | with MobiGATE (this hardware) | with MobiGATE")
	fmt.Println("(2004-calibrated 12 ms/streamlet overhead). TC = Text Compressor inserted.")
	cfg := experiments.DefaultFig77Config()
	cfg.Messages = *messages
	cfg.LossRate = *loss
	if *loss > 0 {
		fmt.Printf("(link loss rate %.0f%%)\n", *loss*100)
	}
	rows, err := experiments.Fig77(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var lastDelay time.Duration = -1
	for _, r := range rows {
		if r.Delay != lastDelay {
			fmt.Printf("\n-- transmission delay %v --\n", r.Delay)
			fmt.Println(" bw(Kb/s)    without       with   with-2004   reduction")
			lastDelay = r.Delay
		}
		tc := " "
		if r.Reconfigured {
			tc = "TC"
		}
		fmt.Printf("%9d  %9.1f  %9.1f  %10.1f  %8.2fx %s\n",
			r.BandwidthBps/1000,
			r.WithoutBps/1000, r.WithBps/1000, r.WithCalibratedBps/1000,
			r.ReductionRatio, tc)
	}
	fmt.Println()
}

func runFaults() {
	fmt.Println("=== Fault-injection survival: panics, a stall, and a blackout ===")
	r, err := experiments.Faults(experiments.DefaultFaultsConfig())
	if err != nil {
		fmt.Print(r)
		log.Fatal(err)
	}
	fmt.Print(r)
	fmt.Println()
}

func runHops() {
	fmt.Println("=== Per-hop time composition (§7.3): queue wait vs process vs transmit ===")
	cfg := experiments.DefaultHopsConfig()
	cfg.Messages = *messages
	cfg.LossRate = *loss
	cfg.BandwidthBps = *bandwidth
	b, err := experiments.Hops(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(b)
	fmt.Println()
}

// runParallel runs the order-preserving parallel-execution experiment:
// workers-scaling curves for the CPU-bound transcoders with exact-delivery
// and FIFO assertions, and the content-addressed transcode-cache sweep
// whose warm pass must execute zero transforms. make parallel-smoke relies
// on the non-zero exit when any invariant breaks.
func runParallel() {
	fmt.Println("=== Parallel execution plane: workers fan-out + transcode cache ===")
	res, err := experiments.Parallel(experiments.DefaultParallelConfig())
	if res != nil {
		fmt.Print(res)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// runSpans runs the end-to-end span-trace experiment and asserts the
// reconstruction: at least one message must yield a single connected tree
// that covers the server chain, the link transfer, and a client peer
// streamlet, with the span union within 5% of the measured response time,
// and the flight recorder must have journaled the run. make obs-smoke
// relies on the non-zero exit when any of these fail.
// runAdapt runs the adaptation-autopilot comparison: the same workload over
// a high → low → high bandwidth schedule through never-compress,
// always-compress, and the policy-driven autopilot. The experiment asserts
// that the autopilot strictly beats both statics on goodput with zero
// message loss, fires exactly once per threshold crossing, and emits the
// full observability triple per firing. make adapt-smoke relies on the
// non-zero exit when any of these fail.
func runAdapt() {
	fmt.Println("=== Adaptation autopilot: when-policies vs static compositions ===")
	res, err := experiments.Adapt(experiments.DefaultAdaptConfig())
	if res != nil {
		fmt.Print(res)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// runBatch runs the batched-handoff sweep: the same redirector chain at
// batch = 1, 8, 32, 64 with exact-delivery and zero-reorder assertions at
// every point. make batch-smoke relies on the non-zero exit when either
// invariant breaks; throughput is reported, not gated.
func runBatch() {
	fmt.Println("=== Batched handoff: []*Message pumps across batch sizes ===")
	res, err := experiments.Batch(experiments.DefaultBatchConfig())
	if res != nil {
		fmt.Print(res)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// runSessions runs the multi-session scale experiment: a shared-plane
// session table carrying -sessions concurrent logical sessions through
// traffic, churn/handoff rounds, and a deliberate admission overload. The
// experiment asserts end-to-end message conservation, bounded per-session
// heap growth, and non-zero admission shedding; make sessions-smoke relies
// on the non-zero exit when any of these fail.
func runSessions() {
	fmt.Printf("=== Multi-session gateway: %d sessions over shared planes ===\n", *sessions)
	cfg := experiments.DefaultSessionsConfig()
	cfg.Sessions = *sessions
	res, err := experiments.Sessions(cfg)
	fmt.Print(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// runHealth runs the component-health experiment: a shared plane driven
// into load shedding, asserting the health model degrades (503 /healthz,
// HEALTH_DEGRADED flight entry and context event), a when-policy on the
// health_degraded signal fires, and the model recovers after the drain;
// make health-smoke relies on the non-zero exit when any assert fails.
func runHealth() {
	fmt.Println("=== Component health: overload -> degrade -> adapt -> recover ===")
	res, err := experiments.Health(experiments.DefaultHealthConfig())
	fmt.Print(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

// runFusion runs the chain-fusion experiment: the same stateless chain per-
// hop and fused must produce byte-identical output with exact conservation,
// zero reorders, and a faster fused run, and a mid-run Insert into the
// fused segment must de-fuse, apply, and re-fuse with zero loss and the
// defuse/fuse flight-recorder pair journaled. make fusion-smoke relies on
// the non-zero exit when any invariant breaks.
func runFusion() {
	fmt.Println("=== Chain fusion: direct-call fused hops vs per-hop queues ===")
	res, err := experiments.Fusion(experiments.DefaultFusionConfig())
	if res != nil {
		fmt.Print(res)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func runSpans() {
	fmt.Println("=== End-to-end span traces: server chain, link, client peers ===")
	res, err := experiments.TraceTree(experiments.DefaultTraceTreeConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Println()

	complete := 0
	for _, m := range res.Messages {
		if m.Connected && m.ClientSpans > 0 && strings.Contains(m.Tree, "link:") && m.Covered(0.05) {
			complete++
		}
	}
	if complete == 0 {
		log.Fatal("span smoke: no message produced a connected tree covering " +
			"server chain, link, and client peer with the union within 5% of wall time")
	}
	if res.FlightEvents == 0 {
		log.Fatal("span smoke: flight recorder journaled no events")
	}
	fmt.Printf("span smoke: %d/%d messages fully reconstructed end to end\n\n", complete, len(res.Messages))
}
