// Command mobigate-client is a thin MobiGATE client: it connects to a
// gateway, requests a stream deployment, reverse-processes the adapted flow
// through its peer streamlets (decompression, decryption), and prints a
// summary of what arrived.
//
// Usage:
//
//	mobigate-client -connect host:7700 -stream webflow [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"mobigate"
	"mobigate/internal/server"
)

var (
	connectAddr = flag.String("connect", "127.0.0.1:7700", "gateway address")
	streamName  = flag.String("stream", "", "stream to request (required)")
	verbose     = flag.Bool("v", false, "print every received message")
)

func main() {
	flag.Parse()
	if *streamName == "" {
		flag.Usage()
		os.Exit(1)
	}
	conn, err := net.Dial("tcp", *connectAddr)
	if err != nil {
		log.Fatalf("mobigate-client: %v", err)
	}
	defer conn.Close()

	req := mobigate.NewMessage(mustType("*/*"), nil)
	req.SetHeader(server.HeaderRequestStream, *streamName)
	if _, err := req.WriteToV(conn); err != nil {
		log.Fatalf("mobigate-client: sending request: %v", err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}

	var mu sync.Mutex
	var count int
	var bytes int64
	start := time.Now()
	mc := mobigate.NewClient(mobigate.ClientOptions{
		Ordered:      true, // restore gateway delivery order
		ErrorHandler: func(err error) { log.Printf("message error: %v", err) },
	}, func(m *mobigate.Message) {
		mu.Lock()
		count++
		bytes += int64(m.Len())
		mu.Unlock()
		if *verbose {
			fmt.Printf("  %-24s %8d B  session=%s\n",
				m.Header("Content-Type"), m.Len(), m.Session())
		}
	})
	if err := mc.ServeConn(conn); err != nil {
		log.Fatalf("mobigate-client: %v", err)
	}
	elapsed := time.Since(start)
	processed, failed := mc.Stats()
	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("received %d messages (%d bytes of application data) in %v\n", count, bytes, elapsed.Round(time.Millisecond))
	fmt.Printf("reverse-processed %d, failed %d\n", processed, failed)
}

func mustType(s string) mobigate.MediaType {
	t, err := mobigate.ParseMediaType(s)
	if err != nil {
		panic(err)
	}
	return t
}
