package mobigate

import (
	"strings"
	"testing"
	"time"

	"mobigate/internal/services"
)

const facadeScript = `
streamlet compressor {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
streamlet cache {
	port { in pi : text; out po : text; }
	attribute { type = STATEFUL; library = "general/cache"; }
}
main stream pipeline {
	streamlet k = new-streamlet (cache);
	streamlet c = new-streamlet (compressor);
	connect (k.po, c.pi);
}
`

func TestGatewayDeployAndFlow(t *testing.T) {
	gw := NewGateway(GatewayOptions{})
	defer gw.Close()
	if err := gw.LoadScript(facadeScript); err != nil {
		t.Fatal(err)
	}
	st, err := gw.Deploy("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(Port("k", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(Port("c", "po"))
	if err != nil {
		t.Fatal(err)
	}
	text, err := ParseMediaType("text/plain")
	if err != nil {
		t.Fatal(err)
	}
	body := services.GenText(4096, 1)
	if err := in.Send(NewMessage(text, body)); err != nil {
		t.Fatal(err)
	}
	m, err := out.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() >= len(body) {
		t.Errorf("compression did not shrink: %d -> %d", len(body), m.Len())
	}

	// The client facade reverses it.
	mc := NewClient(ClientOptions{}, nil)
	back, err := mc.Process(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(back.Body()) != string(body) {
		t.Error("client did not restore original body")
	}
}

func TestGatewayExtraServices(t *testing.T) {
	called := false
	gw := NewGateway(GatewayOptions{
		ExtraServices: func(dir *Directory) {
			called = true
			dir.Register("custom/echo", func() Processor {
				return ProcessorFunc(func(in Input) ([]Emission, error) {
					return []Emission{{Msg: in.Msg}}, nil
				})
			})
		},
	})
	defer gw.Close()
	if !called {
		t.Fatal("ExtraServices not invoked")
	}
	if _, err := gw.Directory().Lookup("custom/echo"); err != nil {
		t.Error(err)
	}
}

func TestCompileAndAnalyzeFacade(t *testing.T) {
	cfg, err := CompileMCL(facadeScript)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeStream(cfg, "pipeline", AnalysisRules{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("violations: %v", rep.Violations)
	}
	if _, err := AnalyzeStream(cfg, "ghost", AnalysisRules{}); err == nil {
		t.Error("unknown stream analyzed")
	} else if !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error = %v", err)
	}
	if _, err := CompileMCL("not a script"); err == nil {
		t.Error("garbage compiled")
	}
}

func TestCompileMCLWithRegistry(t *testing.T) {
	src := `
streamlet a { port { out po : application/x-note; } attribute { library = "x"; } }
streamlet b { port { in pi : text/plain; } attribute { library = "x"; } }
stream s {
	streamlet p = new-streamlet (a);
	streamlet q = new-streamlet (b);
	connect (p.po, q.pi);
}
`
	if _, err := CompileMCL(src); err == nil {
		t.Fatal("incompatible connect accepted without registry edge")
	}
	custom := newRegistryWithNoteEdge(t)
	if _, err := CompileMCLWith(src, custom); err != nil {
		t.Errorf("registry edge ignored: %v", err)
	}
}

func newRegistryWithNoteEdge(t *testing.T) *TypeRegistry {
	t.Helper()
	reg := NewTypeRegistry()
	note, _ := ParseMediaType("application/x-note")
	plain, _ := ParseMediaType("text/plain")
	if err := reg.AddSubtype(note, plain); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestPortHelper(t *testing.T) {
	p := Port("sw", "pi")
	if p.Inst != "sw" || p.Port != "pi" || p.String() != "sw.pi" {
		t.Errorf("Port = %+v", p)
	}
}
