// Benchmarks regenerating the thesis's evaluation (Chapter 7), one bench
// per figure, plus ablation benches for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// The printed series correspond to the paper's figures; see EXPERIMENTS.md
// for the paper-vs-measured comparison.
package mobigate

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"mobigate/internal/cache"
	"mobigate/internal/event"
	"mobigate/internal/experiments"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
	"mobigate/internal/server"
	"mobigate/internal/services"
	"mobigate/internal/session"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// chainBench pushes b.N messages of msgSize bytes through k redirectors,
// reporting per-message latency (the Figure 7-2 quantity).
func chainBench(b *testing.B, k, msgSize int, mode msgpool.Mode) {
	b.Helper()
	pool := msgpool.New(mode)
	st := stream.New("bench", pool, nil)
	prev := ""
	for i := 0; i < k; i++ {
		id := fmt.Sprintf("r%d", i)
		if _, err := st.AddStreamlet(id, nil, services.Redirector{}); err != nil {
			b.Fatal(err)
		}
		if prev != "" {
			if err := st.Connect(Port(prev, "po"), Port(id, "pi"), nil); err != nil {
				b.Fatal(err)
			}
		}
		prev = id
	}
	in, err := st.OpenInlet(Port("r0", "pi"), 1<<24)
	if err != nil {
		b.Fatal(err)
	}
	out, err := st.OpenOutlet(Port(prev, "po"))
	if err != nil {
		b.Fatal(err)
	}
	st.Start()
	defer st.End()

	body := services.GenText(msgSize, 1)
	b.SetBytes(int64(msgSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMessage(services.TypePlainText, body)
		if err := in.Send(m); err != nil {
			b.Fatal(err)
		}
		if _, err := out.Receive(30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perStreamlet := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(k)
	b.ReportMetric(perStreamlet, "ns/streamlet")
}

// BenchmarkFig72StreamletOverhead regenerates Figure 7-2: per-message delay
// versus the number of chained redirector streamlets (10 KB messages).
func BenchmarkFig72StreamletOverhead(b *testing.B) {
	for _, k := range []int{1, 5, 10, 15, 20, 25, 30} {
		b.Run(fmt.Sprintf("streamlets=%d", k), func(b *testing.B) {
			chainBench(b, k, 10*1024, msgpool.ByReference)
		})
	}
}

// BenchmarkFig73PassByReference / BenchmarkFig73PassByValue regenerate
// Figure 7-3: 30 redirectors, message sizes 10 KB … 1000 KB, under the two
// buffer-management schemes.
func BenchmarkFig73PassByReference(b *testing.B) {
	for _, size := range []int{10 << 10, 50 << 10, 100 << 10, 200 << 10, 400 << 10, 700 << 10, 1000 << 10} {
		b.Run(fmt.Sprintf("size=%dKB", size>>10), func(b *testing.B) {
			chainBench(b, 30, size, msgpool.ByReference)
		})
	}
}

func BenchmarkFig73PassByValue(b *testing.B) {
	for _, size := range []int{10 << 10, 50 << 10, 100 << 10, 200 << 10, 400 << 10, 700 << 10, 1000 << 10} {
		b.Run(fmt.Sprintf("size=%dKB", size>>10), func(b *testing.B) {
			chainBench(b, 30, size, msgpool.ByValue)
		})
	}
}

// BenchmarkFig76Reconfiguration regenerates Figure 7-6: the time to insert
// n redirector streamlets into a running stream (the ReconfigExp reaction).
func BenchmarkFig76Reconfiguration(b *testing.B) {
	for _, n := range []int{1, 5, 10, 20, 50, 100} {
		b.Run(fmt.Sprintf("inserted=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				pool := msgpool.New(msgpool.ByReference)
				st := stream.New("reconf", pool, nil)
				if _, err := st.AddStreamlet("a", nil, services.Redirector{}); err != nil {
					b.Fatal(err)
				}
				if _, err := st.AddStreamlet("z", nil, services.Redirector{}); err != nil {
					b.Fatal(err)
				}
				if err := st.Connect(Port("a", "po"), Port("z", "pi"), nil); err != nil {
					b.Fatal(err)
				}
				ids := make([]string, n)
				for j := 0; j < n; j++ {
					ids[j] = fmt.Sprintf("ins%d", j)
					if _, err := st.AddStreamlet(ids[j], nil, services.Redirector{}); err != nil {
						b.Fatal(err)
					}
				}
				st.Start()
				prev := "a"
				b.StartTimer()
				for j := 0; j < n; j++ {
					if err := st.Insert(prev, "z", ids[j], "pi", "po"); err != nil {
						b.Fatal(err)
					}
					prev = ids[j]
				}
				b.StopTimer()
				st.End()
				b.StartTimer()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/insert")
		})
	}
}

// BenchmarkEq71Decomposition reports the suspend / channel / activate terms
// of the reconfiguration-time equation.
func BenchmarkEq71Decomposition(b *testing.B) {
	var agg stream.ReconfigTiming
	runs := 0
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Eq71([]int{10})
		if err != nil {
			b.Fatal(err)
		}
		agg.Suspend += rows[0].Suspend
		agg.Channels += rows[0].Channels
		agg.Activate += rows[0].Activate
		runs++
	}
	b.ReportMetric(float64(agg.Suspend.Nanoseconds())/float64(runs), "ns/suspend10")
	b.ReportMetric(float64(agg.Channels.Nanoseconds())/float64(runs), "ns/channels10")
	b.ReportMetric(float64(agg.Activate.Nanoseconds())/float64(runs), "ns/activate10")
}

// BenchmarkFig77EndToEnd regenerates Figure 7-7: end-to-end information
// throughput with and without MobiGATE over the emulated wireless link.
// Reported metrics are in Kb/s of original information delivered.
func BenchmarkFig77EndToEnd(b *testing.B) {
	for _, bw := range []int64{20_000, 100_000, 500_000, 2_000_000} {
		b.Run(fmt.Sprintf("bw=%dKbps", bw/1000), func(b *testing.B) {
			cfg := experiments.Fig77Config{
				BandwidthsBps: []int64{bw},
				Delays:        []time.Duration{time.Millisecond},
				Messages:      30,
				ImageRatio:    0.5,
				Seed:          2004,
			}
			var with, without, calibrated float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig77(cfg)
				if err != nil {
					b.Fatal(err)
				}
				with = rows[0].WithBps
				without = rows[0].WithoutBps
				calibrated = rows[0].WithCalibratedBps
			}
			b.ReportMetric(with/1000, "Kbps-with")
			b.ReportMetric(without/1000, "Kbps-without")
			b.ReportMetric(calibrated/1000, "Kbps-with-2004hw")
		})
	}
}

// --- Ablation benches -----------------------------------------------------

// BenchmarkAblationStreamletPooling compares stateless-processor pooling
// against per-request construction (§3.3.4's design choice).
func BenchmarkAblationStreamletPooling(b *testing.B) {
	decl := &mcl.StreamletDecl{Name: "c", Kind: mcl.Stateless, Library: services.LibTextCompress}
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "fresh"
		}
		b.Run(name, func(b *testing.B) {
			dir := streamlet.NewDirectory()
			services.RegisterAll(dir)
			m := server.NewStreamletManager(dir)
			m.DisablePooling = !pooled
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := m.Acquire(decl)
				if err != nil {
					b.Fatal(err)
				}
				m.Release(decl, p)
			}
		})
	}
}

// BenchmarkAblationChannelModes compares synchronous rendezvous channels
// against asynchronous buffered ones (§4.2.2's channel Type attribute).
func BenchmarkAblationChannelModes(b *testing.B) {
	for _, mode := range []mcl.ChannelMode{mcl.Async, mcl.Sync} {
		b.Run(mode.String(), func(b *testing.B) {
			q := queue.New("ab", queue.Options{Mode: mode, CapacityBytes: 1 << 20})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					if _, ok := q.Fetch(nil); !ok {
						return
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := q.Post("m", 64, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			q.Close()
			<-done
		})
	}
}

// BenchmarkAblationEventFiltering compares multicast with category
// subscription filtering against flooding every application (§6.4's
// subscription design).
func BenchmarkAblationEventFiltering(b *testing.B) {
	const apps = 64
	makeApps := func(m *event.Manager, subscribeAll bool) {
		for i := 0; i < apps; i++ {
			app := benchSubscriber(fmt.Sprintf("app%d", i))
			if subscribeAll {
				for c := event.Category(0); c < event.CategoryCount; c++ {
					m.Subscribe(c, app)
				}
			} else {
				m.Subscribe(event.Category(i%int(event.CategoryCount)), app)
			}
		}
	}
	evt := event.ContextEvent{EventID: event.LOW_BANDWIDTH, Category: event.NetworkVariation}
	b.Run("filtered", func(b *testing.B) {
		m := event.NewManager(nil)
		defer m.Close()
		makeApps(m, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Multicast(evt)
		}
	})
	b.Run("flooded", func(b *testing.B) {
		m := event.NewManager(nil)
		defer m.Close()
		makeApps(m, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Multicast(evt)
		}
	})
}

type benchSubscriber string

func (s benchSubscriber) SubscriberName() string     { return string(s) }
func (s benchSubscriber) OnEvent(event.ContextEvent) {}

// BenchmarkMCLCompile measures full front-end cost (lex, parse, compile,
// type-check) on the web-acceleration script.
func BenchmarkMCLCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompileMCL(experiments.WebAccelScript); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemanticAnalysis measures the chapter-5 analyses on the compiled
// web-acceleration stream.
func BenchmarkSemanticAnalysis(b *testing.B) {
	cfg, err := CompileMCL(experiments.WebAccelScript)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := AnalyzeStream(cfg, "webaccel", AnalysisRules{})
		if err != nil || !rep.OK() {
			b.Fatalf("%v %v", err, rep)
		}
	}
}

// --- Micro-benchmarks on the substrates ------------------------------------

// BenchmarkMIMEWireCodec measures the wire encode+decode round trip the
// Communicator and Message Distributor pay per message.
func BenchmarkMIMEWireCodec(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("size=%dKB", size>>10), func(b *testing.B) {
			m := NewMessage(services.TypePlainText, services.GenText(size, 1))
			m.SetSession("sess-bench")
			m.PushPeer("text/decompress")
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wire := m.Encode()
				if _, err := mime.Decode(wire); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpanOverhead measures what end-to-end span tracing costs on the
// Figure 7-2 chain (10 redirectors, 10 KB messages): the off case is the
// production hot path (header parse short-circuits on the enabled flag),
// the on case pays the full per-hop span recording.
func BenchmarkSpanOverhead(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "spans=off"
		if on {
			name = "spans=on"
		}
		b.Run(name, func(b *testing.B) {
			was := obs.SpansEnabled()
			obs.SetSpansEnabled(on)
			defer obs.SetSpansEnabled(was)
			chainBench(b, 10, 10*1024, msgpool.ByReference)
		})
	}
}

// BenchmarkQueuePostFetch measures one post+fetch+ack cycle through a
// MessageQueue.
func BenchmarkQueuePostFetch(b *testing.B) {
	q := queue.New("bench", queue.Options{CapacityBytes: 1 << 24})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Post("m", 64, nil); err != nil {
			b.Fatal(err)
		}
		if _, ok := q.TryFetch(); !ok {
			b.Fatal("fetch failed")
		}
		q.Ack()
	}
}

// BenchmarkPoolForward compares the per-hop cost of the two buffer
// management schemes in isolation (the mechanism under Figure 7-3).
func BenchmarkPoolForward(b *testing.B) {
	for _, mode := range []msgpool.Mode{msgpool.ByReference, msgpool.ByValue} {
		b.Run(mode.String(), func(b *testing.B) {
			pool := msgpool.New(mode)
			m := NewMessage(services.TypePlainText, services.GenText(64<<10, 1))
			id := pool.Put(m)
			b.SetBytes(64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fid, err := pool.Forward(id)
				if err != nil {
					b.Fatal(err)
				}
				if fid != id {
					pool.Remove(fid)
				}
			}
		})
	}
}

// BenchmarkServiceStreamlets measures the standalone cost of each standard
// service on representative payloads.
func BenchmarkServiceStreamlets(b *testing.B) {
	img := services.GenImageMessage(64, 64, 1)
	txt := services.GenTextMessage(8<<10, 1)
	cases := []struct {
		name string
		proc streamlet.Processor
		msg  func() *mime.Message
	}{
		{"downsample", &services.DownSampler{}, func() *mime.Message { return img.Clone() }},
		{"gray16", services.Gray16Mapper{}, func() *mime.Message { return img.Clone() }},
		{"gif2jpeg", &services.Transcoder{}, func() *mime.Message { return img.Clone() }},
		{"compress", &services.Compressor{}, func() *mime.Message { return txt.Clone() }},
		{"redirector", services.Redirector{}, func() *mime.Message { return txt.Clone() }},
		{"sign", &services.Signer{}, func() *mime.Message { return txt.Clone() }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			// Fresh inputs are prepared in batches outside the timer: one
			// StopTimer/StartTimer pair per chunk instead of per iteration,
			// so the timer toggling cannot skew the per-transform ns/op
			// benchdiff tracks.
			const chunk = 256
			msgs := make([]*mime.Message, chunk)
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := chunk
				if rem := b.N - done; rem < n {
					n = rem
				}
				b.StopTimer()
				for i := 0; i < n; i++ {
					msgs[i] = c.msg()
				}
				b.StartTimer()
				for i := 0; i < n; i++ {
					if _, err := c.proc.Process(streamlet.Input{Port: "pi", Msg: msgs[i]}); err != nil {
						b.Fatal(err)
					}
				}
				done += n
			}
		})
	}
}

// BenchmarkParallelChain measures end-to-end throughput of one gif2jpeg
// streamlet at increasing fan-out widths, order preserved by the
// resequencer. On a single-core machine the widths tie (the resequencer's
// overhead is what benchdiff then tracks); with cores to spare the wider
// rows pull ahead.
func BenchmarkParallelChain(b *testing.B) {
	img := services.GenImageMessage(64, 64, 1)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := msgpool.New(msgpool.ByReference)
			st := stream.New("par", pool, nil)
			if _, err := st.AddStreamlet("t", nil, &services.Transcoder{}); err != nil {
				b.Fatal(err)
			}
			if err := st.Streamlet("t").SetWorkers(w); err != nil {
				b.Fatal(err)
			}
			in, err := st.OpenInlet(Port("t", "pi"), 1<<24)
			if err != nil {
				b.Fatal(err)
			}
			out, err := st.OpenOutlet(Port("t", "po"))
			if err != nil {
				b.Fatal(err)
			}
			st.Start()
			defer st.End()
			b.ResetTimer()
			go func() {
				for i := 0; i < b.N; i++ {
					if err := in.Send(img.Clone()); err != nil {
						return
					}
				}
			}()
			for i := 0; i < b.N; i++ {
				if _, err := out.Receive(30 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTranscodeCache compares the raw gif2jpeg transform against a
// content-addressed cache hit replaying the memoized result.
func BenchmarkTranscodeCache(b *testing.B) {
	img := services.GenImageMessage(64, 64, 1)
	hit := cache.Wrap(&services.Transcoder{}, cache.New(0))
	if _, err := hit.Process(streamlet.Input{Port: "pi", Msg: img.Clone()}); err != nil {
		b.Fatal(err) // warm the single entry the hit case replays
	}
	cases := []struct {
		name string
		proc streamlet.Processor
	}{
		{"off", &services.Transcoder{}},
		{"hit", hit},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			const chunk = 256
			msgs := make([]*mime.Message, chunk)
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := chunk
				if rem := b.N - done; rem < n {
					n = rem
				}
				b.StopTimer()
				for i := 0; i < n; i++ {
					msgs[i] = img.Clone()
				}
				b.StartTimer()
				for i := 0; i < n; i++ {
					if _, err := c.proc.Process(streamlet.Input{Port: "pi", Msg: msgs[i]}); err != nil {
						b.Fatal(err)
					}
				}
				done += n
			}
		})
	}
}

// BenchmarkAblationDropPolicy compares the §6.7 wait-then-drop postMessage
// against indefinite blocking when a fast producer outruns a slow consumer.
func BenchmarkAblationDropPolicy(b *testing.B) {
	cases := []struct {
		name    string
		timeout time.Duration
	}{
		{"wait-then-drop", 2 * time.Millisecond},
		{"block", -1},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			q := queue.New("drop", queue.Options{CapacityBytes: 4 << 10, DropTimeout: c.timeout})
			done := make(chan struct{})
			go func() { // slow consumer: 10µs per message
				defer close(done)
				for {
					if _, ok := q.Fetch(nil); !ok {
						return
					}
					time.Sleep(10 * time.Microsecond)
				}
			}()
			dropped := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := q.Post("m", 1024, nil); err == queue.ErrDropped {
					dropped++
				} else if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			q.Close()
			<-done
			b.ReportMetric(float64(dropped)/float64(b.N)*100, "%dropped")
		})
	}
}

// --- Batched data plane -----------------------------------------------------

// BenchmarkQueuePostFetchBatch measures the batched queue operations at
// several batch widths. The loop advances b.N by the batch size, so ns/op
// is per *message* — directly comparable to BenchmarkQueuePostFetch, whose
// lock acquisition and broadcast the batch amortizes. The PR2 acceptance
// gate requires >= 2x at batch 32.
func BenchmarkQueuePostFetchBatch(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			q := queue.New("bench", queue.Options{CapacityBytes: 1 << 24})
			entries := make([]queue.Entry, n)
			for i := range entries {
				entries[i] = queue.Entry{MsgID: "m", Size: 64}
			}
			dst := make([]queue.Item, n)
			b.ResetTimer()
			for i := 0; i < b.N; i += n {
				if _, _, err := q.PostN(entries, nil); err != nil {
					b.Fatal(err)
				}
				if got := q.TryFetchN(dst); got != n {
					b.Fatalf("TryFetchN = %d, want %d", got, n)
				}
				q.AckN(n)
			}
		})
	}
}

// BenchmarkMIMEWriteToV compares serializing a contiguous body through
// WriteTo against a three-segment chained body through the vectored
// WriteToV (64 KB payload either way). The chained row must stay in the
// same cost class — the chain's point is avoiding the transform-side copy,
// not adding encode-side cost — and must stay allocation-free (gated by
// benchdiff -zeroalloc).
func BenchmarkMIMEWriteToV(b *testing.B) {
	const size = 64 << 10
	b.Run("contiguous", func(b *testing.B) {
		m := NewMessage(services.TypePlainText, services.GenText(size, 1))
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.WriteTo(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chained", func(b *testing.B) {
		m := NewMessage(services.TypePlainText, services.GenText(size-2048, 1))
		m.AppendBody(services.GenText(1024, 2))
		m.AppendBody(services.GenText(1024, 3))
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.WriteToV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBatchChain measures end-to-end throughput of a five-redirector
// chain at increasing handoff batch sizes. The inlet is fed from a
// goroutine so queues actually accumulate — a send-one-wait-one loop would
// never give the batched pump more than one item to drain.
func BenchmarkBatchChain(b *testing.B) {
	const k = 5
	obs.SetTracingEnabled(false)
	defer obs.SetTracingEnabled(true)
	body := services.GenText(10*1024, 1)
	for _, n := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			pool := msgpool.New(msgpool.ByReference)
			st := stream.New("bchain", pool, nil)
			prev := ""
			for i := 0; i < k; i++ {
				id := fmt.Sprintf("r%d", i)
				if _, err := st.AddStreamlet(id, nil, services.Redirector{}); err != nil {
					b.Fatal(err)
				}
				if err := st.Streamlet(id).SetBatch(n); err != nil {
					b.Fatal(err)
				}
				if prev != "" {
					if err := st.Connect(Port(prev, "po"), Port(id, "pi"), nil); err != nil {
						b.Fatal(err)
					}
				}
				prev = id
			}
			in, err := st.OpenInlet(Port("r0", "pi"), 1<<24)
			if err != nil {
				b.Fatal(err)
			}
			out, err := st.OpenOutlet(Port(prev, "po"))
			if err != nil {
				b.Fatal(err)
			}
			st.Start()
			defer st.End()
			b.SetBytes(10 * 1024)
			b.ResetTimer()
			go func() {
				for i := 0; i < b.N; i++ {
					if err := in.Send(NewMessage(services.TypePlainText, body)); err != nil {
						return
					}
				}
			}()
			for i := 0; i < b.N; i++ {
				if _, err := out.Receive(30 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSessionChurn measures the session layer's two costs: the
// control-plane churn (connect + disconnect of a fresh session against a
// populated sharded table) and the steady-state data hot path (quota
// admit, shared-plane post, fetch, release). The hot path must stay
// allocation-free — session accounting is atomics only, so multiplexing
// thousands of sessions onto one plane adds no per-message allocation —
// and is gated by benchdiff -zeroalloc.
func BenchmarkSessionChurn(b *testing.B) {
	newSessionPlane := func(b *testing.B) (*session.Table, *queue.Queue) {
		b.Helper()
		q := queue.New("bench-sess", queue.Options{CapacityBytes: 1 << 24})
		tbl, err := session.NewTable(session.Config{}, session.NewPlane("bench-sess", q))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(tbl.Close)
		return tbl, q
	}
	b.Run("connect-disconnect", func(b *testing.B) {
		tbl, _ := newSessionPlane(b)
		// A resident population so connect hashes into non-empty shards.
		for i := 0; i < 1024; i++ {
			if _, err := tbl.Connect(fmt.Sprintf("resident-%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		ids := make([]string, b.N)
		for i := range ids {
			ids[i] = fmt.Sprintf("churn-%d", i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tbl.Connect(ids[i]); err != nil {
				b.Fatal(err)
			}
			tbl.Disconnect(ids[i])
		}
	})
	b.Run("post-release", func(b *testing.B) {
		tbl, q := newSessionPlane(b)
		s, err := tbl.Connect("hot")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Post("m", 64, nil); err != nil {
				b.Fatal(err)
			}
			if _, ok := q.TryFetch(); !ok {
				b.Fatal("fetch failed")
			}
			q.Ack()
			s.Release(64, 0)
		}
	})
}

// BenchmarkSessionSLOSample is the observability hot-path gate: the
// post → fetch → release cycle of a *sampled* session — the one that also
// feeds its latency into the per-session quantile ring and checks the SLO
// budget — must stay as allocation-free as the unsampled path. Gated by
// benchdiff -zeroalloc.
func BenchmarkSessionSLOSample(b *testing.B) {
	q := queue.New("bench-slo", queue.Options{CapacityBytes: 1 << 24})
	tbl, err := session.NewTable(
		session.Config{SLOBudget: time.Millisecond},
		session.NewPlane("bench-slo", q))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(tbl.Close)
	// The sampler picks ~1/64 ids deterministically; walk candidates until
	// one is selected.
	var s *session.Session
	for i := 0; s == nil; i++ {
		c, err := tbl.Connect(fmt.Sprintf("slo-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if c.Sampled() {
			s = c
		} else {
			tbl.Disconnect(c.ID())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Post("m", 64, nil); err != nil {
			b.Fatal(err)
		}
		if _, ok := q.TryFetch(); !ok {
			b.Fatal("fetch failed")
		}
		q.Ack()
		s.Release(64, 50_000) // 50µs: inside the budget, still observed
	}
}

// fusedBenchDecl is the eligibility ticket for the fusion benches: only
// declared-STATELESS instances fuse.
func fusedBenchDecl() *mcl.StreamletDecl { return &mcl.StreamletDecl{Kind: mcl.Stateless} }

// fixedEmit is an allocation-free pass-through: the emission slice is
// preallocated so the steady-state fused loop performs zero allocations.
type fixedEmit struct{ out [1]streamlet.Emission }

func (p *fixedEmit) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	p.out[0] = streamlet.Emission{Msg: in.Msg}
	return p.out[:], nil
}

// BenchmarkFusedChain measures streamlet chain fusion on the worst case
// for per-hop overhead: a five-stage stateless chain at batch = 1, where
// every message otherwise pays four queue handoffs, four pool forwards and
// four pump wakeups. "unfused" and "fused" are the end-to-end pair the ≥2×
// fusion win is read from; "steady-state" recirculates one pooled message
// through the fused segment and must stay at 0 allocs/op (gated by
// benchdiff -zeroalloc).
func BenchmarkFusedChain(b *testing.B) {
	const k = 5
	obs.SetTracingEnabled(false)
	defer obs.SetTracingEnabled(true)
	body := services.GenText(10*1024, 1)

	// exitCap > 0 binds a raw exit queue of that capacity instead of an
	// Outlet: the steady-state recirculation window must never fill the
	// exit (a capacity-parked pump would charge wake-signal regeneration
	// to every bench-side dequeue).
	build := func(b *testing.B, fuse bool, exitCap int) (*stream.Stream, *stream.Inlet, *stream.Outlet) {
		b.Helper()
		st := stream.New("fzchain", msgpool.New(msgpool.ByReference), nil)
		prev := ""
		for i := 0; i < k; i++ {
			id := fmt.Sprintf("f%d", i)
			if _, err := st.AddStreamlet(id, fusedBenchDecl(), &fixedEmit{}); err != nil {
				b.Fatal(err)
			}
			if prev != "" {
				if err := st.Connect(Port(prev, "po"), Port(id, "pi"), nil); err != nil {
					b.Fatal(err)
				}
			}
			prev = id
		}
		in, err := st.OpenInlet(Port("f0", "pi"), 1<<24)
		if err != nil {
			b.Fatal(err)
		}
		var out *stream.Outlet
		if exitCap > 0 {
			xq := queue.New("fz-exit", queue.Options{CapacityBytes: exitCap})
			if err := st.BindOutRef(Port(prev, "po"), xq); err != nil {
				b.Fatal(err)
			}
		} else {
			if out, err = st.OpenOutlet(Port(prev, "po")); err != nil {
				b.Fatal(err)
			}
		}
		if !fuse {
			if err := st.SetFusion(false); err != nil {
				b.Fatal(err)
			}
		}
		st.Start()
		b.Cleanup(st.End)
		if got := len(st.FusedSegments()) > 0; got != fuse {
			b.Fatalf("fused=%v, want %v", got, fuse)
		}
		return st, in, out
	}

	endToEnd := func(fuse bool) func(b *testing.B) {
		return func(b *testing.B) {
			_, in, out := build(b, fuse, 0)
			b.SetBytes(10 * 1024)
			b.ResetTimer()
			go func() {
				for i := 0; i < b.N; i++ {
					if err := in.Send(NewMessage(services.TypePlainText, body)); err != nil {
						return
					}
				}
			}()
			for i := 0; i < b.N; i++ {
				if _, err := out.Receive(30 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("unfused", endToEnd(false))
	b.Run("fused", endToEnd(true))

	b.Run("steady-state", func(b *testing.B) {
		st, _, _ := build(b, true, 1<<24)
		// Recirculate a window of pooled messages: the exit flush hands each
		// by-reference pool entry back intact, so re-posting the fetched id
		// exercises the entire fused hop — fetch, five Process calls, sink
		// flush, ack — with no per-iteration message creation. The bench
		// side drains and refills in whole batches (TryFetchN + PostN into
		// an oversized raw exit queue) so queue parking stays off the
		// per-message path: on a single-CPU box the pump drains the window
		// within one scheduling quantum and parks, and a message-at-a-time
		// refill would then pay the wake-signal regeneration — an artifact
		// of the ping-pong harness, not of the fused path — on every Post.
		// Batched, that cost amortizes to one wake per window. (Outlet
		// Receive would remove the pool entry; fetch the exit raw.)
		hq := st.Streamlet("f0").Ins()["pi"]
		xq := st.Streamlet("f4").Outs()["po"]
		const window = 64
		for i := 0; i < window; i++ {
			id := st.Pool().Put(NewMessage(services.TypePlainText, body))
			if err := hq.Post(id, len(body), nil); err != nil {
				b.Fatal(err)
			}
		}
		items := make([]queue.Item, window)
		ents := make([]queue.Entry, window)
		b.ResetTimer()
		b.ReportAllocs()
		for done := 0; done < b.N; {
			n := xq.TryFetchN(items)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			xq.AckN(n)
			for i := 0; i < n; i++ {
				ents[i] = queue.Entry{MsgID: items[i].MsgID, Size: len(body)}
			}
			if _, _, err := hq.PostN(ents[:n], nil); err != nil {
				b.Fatal(err)
			}
			done += n
		}
	})
}
