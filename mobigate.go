// Package mobigate is the public facade of the MobiGATE reproduction: a
// mobile gateway proxy for the active deployment of transport entities
// (Chan & Zheng, ICPP 2004 / HK PolyU MPhil thesis 2005).
//
// MobiGATE adapts data flows crossing a wireless link by composing
// streamlets — small transport service entities such as image
// down-sampling, text compression or caching — into streams, with the
// composition described in the MobiGATE Coordination Language (MCL) and
// kept completely separate from the streamlets' computation code
// (separation of concerns). Streams reconfigure at runtime in reaction to
// context events such as LOW_BANDWIDTH or LOW_ENERGY.
//
// The typical server-side flow:
//
//	gw := mobigate.NewGateway(mobigate.GatewayOptions{})
//	if err := gw.LoadScript(script); err != nil { ... }
//	st, err := gw.Deploy("myStream")
//	in, _ := st.OpenInlet(mobigate.Port("sw", "pi"), 0)
//	out, _ := st.OpenOutlet(mobigate.Port("mg", "po"))
//
// and on the mobile client:
//
//	mc := mobigate.NewClient(mobigate.ClientOptions{}, func(m *mobigate.Message) { ... })
//	mc.ServeConn(conn)
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping from thesis sections to packages.
package mobigate

import (
	"mobigate/internal/adapt"
	"mobigate/internal/client"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/semantics"
	"mobigate/internal/server"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// Re-exported core types. These aliases make the public API self-contained
// while the implementation lives in internal packages.
type (
	// Message is a MIME-formatted message flowing through the system.
	Message = mime.Message
	// MediaType is a MIME media type; port and message types form a
	// lattice rooted at "*/*".
	MediaType = mime.MediaType
	// TypeRegistry extends the media-type lattice with subtype edges.
	TypeRegistry = mime.Registry

	// Config is a compiled MCL script: the configuration tables the
	// Coordination Manager executes.
	Config = mcl.Config
	// PortRef references an instance port ("inst.port") in a composition.
	PortRef = mcl.PortRef

	// Stream is a running composition of streamlets.
	Stream = stream.Stream
	// Inlet injects application messages into a stream entry port.
	Inlet = stream.Inlet
	// Outlet receives messages from a stream exit port.
	Outlet = stream.Outlet

	// Processor is the computational content of a streamlet.
	Processor = streamlet.Processor
	// ProcessorFunc adapts a function to Processor.
	ProcessorFunc = streamlet.ProcessorFunc
	// Input is a message arriving at a processor on a named port.
	Input = streamlet.Input
	// Emission is a message a processor sends to a named output port.
	Emission = streamlet.Emission
	// Directory advertises streamlet implementations by library name.
	Directory = streamlet.Directory

	// ContextEvent is an unparameterized context event.
	ContextEvent = event.ContextEvent
	// EventManager subscribes streams to event categories and multicasts.
	EventManager = event.Manager

	// AnalysisReport is the outcome of the MCL semantic analyses.
	AnalysisReport = semantics.Report
	// AnalysisRules carries repel/depend/preorder relations to verify.
	AnalysisRules = semantics.Rules

	// AdaptEngine is the adaptation autopilot evaluating MCL when-policies
	// against sampled context readings.
	AdaptEngine = adapt.Engine
	// AdaptConfig parameterizes an AdaptEngine.
	AdaptConfig = adapt.Config
	// AdaptReading is one sampled signal snapshot for the autopilot.
	AdaptReading = adapt.Reading

	// Gateway is the MobiGATE server.
	Gateway = server.Server
	// GatewayFrontend is the TCP face of a gateway.
	GatewayFrontend = server.Frontend
	// Client is the thin MobiGATE client.
	Client = client.Client
	// ClientOptions configure a Client.
	ClientOptions = client.Options
)

// GatewayOptions configure NewGateway.
type GatewayOptions struct {
	// Strict makes Deploy fail on any semantic-analysis violation, not
	// just feedback loops.
	Strict bool
	// Rules are application-level relations for the analyzer.
	Rules AnalysisRules
	// ErrorHandler receives asynchronous stream errors.
	ErrorHandler func(error)
	// ExtraServices registers additional libraries into the directory
	// after the standard services.
	ExtraServices func(*Directory)
}

// NewGateway creates a MobiGATE server with the standard service streamlets
// (switch, down-sample, gray16, gif2jpeg, ps2text, compressor, merge,
// cache, power-saving, redirector, crypto) pre-registered.
func NewGateway(opts GatewayOptions) *Gateway {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	if opts.ExtraServices != nil {
		opts.ExtraServices(dir)
	}
	return server.New(server.Options{
		Directory:    dir,
		Strict:       opts.Strict,
		Rules:        opts.Rules,
		ErrorHandler: opts.ErrorHandler,
	})
}

// NewAdaptEngine creates an adaptation autopilot. Attach it to a gateway
// with Gateway.SetAutopilot so deployed streams' when-policies are
// evaluated; call Start for background evaluation at cfg.Interval.
func NewAdaptEngine(cfg AdaptConfig) *AdaptEngine { return adapt.New(cfg) }

// NewClient creates a MobiGATE client with the standard peer streamlets
// (decompressor, decryptor) pre-registered; handler receives every
// application-ready message.
func NewClient(opts ClientOptions, handler func(*Message)) *Client {
	if opts.Peers == nil {
		opts.Peers = streamlet.NewDirectory()
		services.RegisterClientPeers(opts.Peers)
	}
	return client.New(opts, handler)
}

// NewFrontend attaches a TCP front-end to a gateway; source produces the
// origin data flow for each client session.
func NewFrontend(gw *Gateway, source server.Source) *GatewayFrontend {
	return server.NewFrontend(gw, source)
}

// Port builds a PortRef.
func Port(inst, port string) PortRef { return PortRef{Inst: inst, Port: port} }

// CompileMCL compiles an MCL script against the default type registry.
func CompileMCL(src string) (*Config, error) { return mcl.Compile(src, nil) }

// CompileMCLWith compiles an MCL script against a custom type registry.
func CompileMCLWith(src string, reg *TypeRegistry) (*Config, error) {
	return mcl.Compile(src, reg)
}

// AnalyzeStream runs the chapter-5 semantic analyses (feedback loops, open
// circuits, mutual exclusion, dependency, preorder) on one compiled stream.
// The stream's derived external ports are treated as sanctioned open ends.
func AnalyzeStream(cfg *Config, name string, rules AnalysisRules) (*AnalysisReport, error) {
	sc := cfg.Stream(name)
	if sc == nil {
		return nil, errUnknownStream(name)
	}
	rules.AllowedOpenPorts = append(append([]string(nil), rules.AllowedOpenPorts...),
		semantics.OpenPorts(sc)...)
	return semantics.Analyze(sc, rules), nil
}

type unknownStreamError string

func (e unknownStreamError) Error() string { return "mobigate: unknown stream " + string(e) }

func errUnknownStream(name string) error { return unknownStreamError(name) }

// NewMessage creates a message of the given media type; the body slice is
// retained.
func NewMessage(t MediaType, body []byte) *Message { return mime.NewMessage(t, body) }

// ParseMediaType parses a media-type expression such as "text/richtext".
func ParseMediaType(s string) (MediaType, error) { return mime.ParseMediaType(s) }

// NewTypeRegistry returns an empty extensible type registry; the structural
// wildcard and family rules always apply.
func NewTypeRegistry() *TypeRegistry { return mime.NewRegistry() }
