# MobiGATE build targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench vet fmt check examples experiments clean

all: build test

build:
	$(GO) build ./...

# The default test flow vets first: go vet failures are bugs here, not style.
test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: build, vet, tests, and the race detector.
check: build test race

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Smoke-run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/distillation
	$(GO) run ./examples/analysis
	$(GO) run ./examples/webaccel
	$(GO) run ./examples/handoff
	$(GO) run ./examples/recursive

# Regenerate every figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/mobibench -exp all

clean:
	$(GO) clean ./...
