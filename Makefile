# MobiGATE build targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench bench-baseline bench-compare bench-smoke fault-smoke obs-smoke parallel-smoke adapt-smoke batch-smoke sessions-smoke health-smoke fusion-smoke docs-check vet fmt check examples experiments clean

all: build test

build:
	$(GO) build ./...

# The default test flow vets first: go vet failures are bugs here, not style.
test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: build, vet, tests, the race detector, a quick
# hot-path benchmark smoke (catches gross regressions without a full run),
# the fault-injection survival scenario, the end-to-end span smoke, the
# parallel-execution smoke, the adaptation-autopilot smoke, the
# batched-handoff smoke, the multi-session scale smoke, the health-model
# smoke, the chain-fusion smoke, and the documentation linter.
check: build test race bench-smoke fault-smoke obs-smoke parallel-smoke adapt-smoke batch-smoke sessions-smoke health-smoke fusion-smoke docs-check

bench:
	$(GO) test -bench=. -benchmem ./...

# The gated benchmarks: forward-path queue cost (single and batched),
# Figure 7-2 streamlet overhead, both Figure 7-3 buffer-management modes,
# the span-tracing overhead pair (off = production hot path, on =
# diagnosis), the per-service transform costs, the parallel fan-out chain,
# the transcode cache, the batched chain sweep, the vectored encode, the
# session layer (connect/disconnect churn + post/release hot path), and the
# sampled-session SLO observation path, and the fused-vs-unfused stateless
# chain pair.
GATED_BENCH = 'QueuePostFetch|Fig72StreamletOverhead|Fig73Pass|SpanOverhead|ServiceStreamlets|ParallelChain|TranscodeCache|BatchChain|MIMEWriteToV|SessionChurn|SessionSLOSample|FusedChain'
BENCH_FILE  = BENCH_PR2.json
# Hot paths that must stay allocation-free even on their first benchmarked
# run (no baseline entry needed): the batched queue ops, both encode
# paths, the session admit/post/release hot path, the same path on a
# sampled session feeding per-session SLO quantiles, and the fused-segment
# recirculation loop.
ZEROALLOC_BENCH = 'QueuePostFetchBatch|MIMEWriteToV|SessionChurn/post-release|SessionSLOSample|FusedChain/steady-state'

# Record the committed baseline the regression gate compares against.
# -count=5 gives benchdiff repeated runs: -save keeps the median (typical
# cost), compare keeps the minimum — see cmd/benchdiff; this is what makes
# the 25% gate usable on busy single-core machines.
bench-baseline:
	$(GO) test -run '^$$' -bench $(GATED_BENCH) -benchmem -count=5 . | $(GO) run ./cmd/benchdiff -save $(BENCH_FILE)

# Re-run the gated benchmarks and fail on ns/op regressions, fresh
# allocations on benchmarks the baseline records as allocation-free, or any
# allocation at all on the $(ZEROALLOC_BENCH) hot paths.
bench-compare:
	$(GO) test -run '^$$' -bench $(GATED_BENCH) -benchmem -count=5 . | $(GO) run ./cmd/benchdiff -baseline $(BENCH_FILE) -zeroalloc $(ZEROALLOC_BENCH)

bench-smoke:
	$(GO) test -run '^$$' -bench QueuePostFetch -benchtime 100x -benchmem .

# Fault-injection survival: a live session must absorb injected panics, a
# stall, and a link blackout with zero message loss (exits nonzero if not).
fault-smoke:
	$(GO) run ./cmd/mobibench -exp faults

# Parallel-execution smoke: workers fan-out must deliver every message in
# FIFO order at every width, keep the resequencer's parked depth within its
# workers-1 bound, speed up >= 2x at 4 workers when >= 4 cores are
# available, and the transcode cache's warm pass must run zero transforms
# (exits nonzero if not).
parallel-smoke:
	$(GO) run ./cmd/mobibench -exp parallel

# Adaptation-autopilot smoke: the when-policy engine must strictly beat
# both static compositions on goodput with zero message loss, fire exactly
# once per bandwidth-threshold crossing, and emit an ADAPTATION event, an
# adapt_actions_total increment, and a flight-recorder entry per firing
# (exits nonzero if not).
adapt-smoke:
	$(GO) run ./cmd/mobibench -exp adapt

# Batched-handoff smoke: the same redirector chain swept across handoff
# batch sizes {1, 8, 32, 64} must deliver every message sent, in FIFO
# order, at every point (exits nonzero if not).
batch-smoke:
	$(GO) run ./cmd/mobibench -exp batch

# Multi-session scale smoke: a 10k-session shared-plane table must survive
# traffic, churn/handoff rounds, and an admission overload with exact
# message conservation, bounded per-session heap growth, and every
# past-capacity connect shed and counted (exits nonzero if not). The full
# 100k-session run is `mobibench -exp sessions` with the default -sessions.
sessions-smoke:
	$(GO) run ./cmd/mobibench -exp sessions -sessions 10000

# Health-model smoke: overload a tiny shared plane until load shedding
# degrades /healthz to 503, require the MCL when-policy on health_degraded
# to fire, then drain and require recovery to 200 with both edges in the
# flight recorder and on the event plane (exits nonzero if not).
health-smoke:
	$(GO) run ./cmd/mobibench -exp health

# Chain-fusion smoke: a stateless chain run fused and unfused must deliver
# byte-identical output with exact conservation and zero reorders, the
# fused run must be faster, and a mid-run Insert must de-fuse the segment,
# apply, and re-fuse with zero loss, leaving defuse/fuse flight-recorder
# entries (exits nonzero if not).
fusion-smoke:
	$(GO) run ./cmd/mobibench -exp fusion

# Documentation linter: every docs/*.md page must be linked from README.md,
# every relative markdown link must resolve, and fenced MCL / CLI examples
# must reference real grammar keywords, policy signals, and command flags
# (exits nonzero if not).
docs-check:
	$(GO) run ./cmd/docscheck

# End-to-end observability smoke: run the hops breakdown with span tracing
# on and require at least one message's reconstructed trace tree to cover
# the server chain, the link transfer, and a client peer streamlet, with
# per-hop durations summing to the measured response time (±5%), plus a
# non-empty flight-recorder journal (exits nonzero if not).
obs-smoke:
	$(GO) run ./cmd/mobibench -exp hops -spans

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Smoke-run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/distillation
	$(GO) run ./examples/analysis
	$(GO) run ./examples/webaccel
	$(GO) run ./examples/handoff
	$(GO) run ./examples/recursive

# Regenerate every figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/mobibench -exp all

clean:
	$(GO) clean ./...
