package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestTraceTreeReconstruction is the in-repo form of the obs-smoke gate:
// every trace must be a single connected tree whose span union matches the
// measured wall time within 5%, at least one message must cover server
// chain, link transfer and a client peer streamlet, the skewed client clock
// must align, and the flight recorder must have journaled the run.
func TestTraceTreeReconstruction(t *testing.T) {
	cfg := DefaultTraceTreeConfig()
	cfg.Budget = 2 * time.Millisecond // exercise the SLO path too
	res, err := TraceTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Messages) != cfg.Messages {
		t.Fatalf("reconstructed %d messages, want %d", len(res.Messages), cfg.Messages)
	}

	complete := 0
	for i, m := range res.Messages {
		if m.TraceID == 0 {
			t.Errorf("message %d: no trace ID on the delivered message", i)
		}
		if !m.Connected {
			t.Errorf("message %d: span tree not connected:\n%s", i, m.Tree)
		}
		if !m.Covered(0.05) {
			t.Errorf("message %d: union %v vs wall %v outside 5%%",
				i, time.Duration(m.UnionNs), time.Duration(m.WallNs))
		}
		if !strings.Contains(m.Tree, "link:") {
			t.Errorf("message %d: tree has no link span:\n%s", i, m.Tree)
		}
		if m.ClientSpans > 0 {
			complete++
		}
	}
	if complete == 0 {
		t.Error("no message's tree reached a client peer streamlet")
	}
	if res.BatchSpans == 0 {
		t.Error("client shipped no span batch")
	}
	// The handshake must cancel the configured skew (client runs 3s behind,
	// so the offset is ≈ +3s; allow generous scheduling slop).
	wantOffset := -int64(cfg.ClockSkew)
	if diff := res.ClockOffsetNs - wantOffset; diff < -int64(50*time.Millisecond) || diff > int64(50*time.Millisecond) {
		t.Errorf("clock offset %v does not cancel skew %v", time.Duration(res.ClockOffsetNs), cfg.ClockSkew)
	}
	if res.FlightEvents == 0 {
		t.Error("flight recorder journaled nothing")
	}
	if res.SLO.BudgetNs != int64(cfg.Budget) || res.SLO.Count == 0 {
		t.Errorf("SLO snapshot = %+v, want tracked chain with samples", res.SLO)
	}
}
