package experiments

import (
	"testing"
	"time"
)

// TestHealth runs the health experiment at reduced scale: the function
// itself asserts the full loop — overload degrades /healthz to 503, the
// MCL when-policy fires on the health_degraded signal, draining recovers
// the model, and the flight recorder plus event plane carry both edges.
func TestHealth(t *testing.T) {
	cfg := DefaultHealthConfig()
	cfg.Sessions = 128
	cfg.Timeout = 20 * time.Second
	res, err := Health(cfg)
	if err != nil {
		t.Fatalf("Health: %v\n%s", err, res)
	}
	if res.PolicyActions < 1 {
		t.Fatalf("policy never fired: %+v", res)
	}
	if res.HealthEvents < 2 {
		t.Fatalf("expected degrade+recover events, got %d", res.HealthEvents)
	}
}
