package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"mobigate/internal/adapt"
	"mobigate/internal/client"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/netem"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// AdaptScript is the autopilot demonstration application: a relay feeding
// the communicator, with two when-policies that bracket the §7.5 compressor
// threshold. Below it the Text Compressor is spliced in; at or above it the
// compressor is removed — the same LOW_BANDWIDTH/HIGH_BANDWIDTH adaptation
// as WebAccelScript, but decided by the policy engine from sampled link
// bandwidth instead of hand-raised events.
const AdaptScript = `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet text_compress {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
streamlet communicator {
	port { in pi : */*; }
	attribute { type = STATEFUL; library = "net/communicator"; }
}
main stream adaptive {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (communicator);
	connect (hd.po, cm.pi);

	when (bandwidth < 100000) -> insert text_compress between hd and cm;
	when (bandwidth >= 100000) -> remove text_compress;
}
`

// adaptStaticCompressScript is the always-compress static composition: the
// same pipeline with the compressor permanently in the path and no
// policies.
const adaptStaticCompressScript = `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet text_compress {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
streamlet communicator {
	port { in pi : */*; }
	attribute { type = STATEFUL; library = "net/communicator"; }
}
main stream adaptive {
	streamlet hd = new-streamlet (relay);
	streamlet tc = new-streamlet (text_compress);
	streamlet cm = new-streamlet (communicator);
	connect (hd.po, tc.pi);
	connect (tc.po, cm.pi);
}
`

// AdaptPhase is one bandwidth regime of the experiment's schedule.
type AdaptPhase struct {
	BandwidthBps int64
	Messages     int
}

// AdaptConfig parameterizes the autopilot-vs-statics comparison.
type AdaptConfig struct {
	// Phases is the bandwidth schedule; each phase carries Messages
	// messages at BandwidthBps.
	Phases []AdaptPhase
	// MessageBytes is the text payload size per message.
	MessageBytes int
	Seed         int64
}

// DefaultAdaptConfig is a high → low → high schedule around the 100 Kb/s
// compressor threshold. The high phases sit well above the break-even
// bandwidth where the compressor's 12 ms hop overhead exceeds its transfer
// saving, so always-compress loses there; the 32 Kb/s phase is where
// never-compress loses ~1.5 s per message.
func DefaultAdaptConfig() AdaptConfig {
	return AdaptConfig{
		Phases: []AdaptPhase{
			{BandwidthBps: 12_000_000, Messages: 20},
			{BandwidthBps: 32_000, Messages: 20},
			{BandwidthBps: 12_000_000, Messages: 20},
		},
		MessageBytes: 8 << 10,
		Seed:         2004,
	}
}

// AdaptRow is one composition's end-to-end outcome.
type AdaptRow struct {
	Name string
	// Delivered counts messages that fully crossed the link and were
	// reverse-processed by the client.
	Delivered int
	Dropped   uint64
	// SentBytes is the wire volume after adaptation.
	SentBytes int64
	// Invocations counts streamlet executions on the gateway (each costs
	// PaperOverheadPerStreamlet in the calibrated total).
	Invocations uint64
	// TransferTime is the virtual link occupancy.
	TransferTime time.Duration
	// TotalTime = TransferTime + Invocations × PaperOverheadPerStreamlet:
	// the delivered-bytes-over-latency denominator.
	TotalTime time.Duration
	// GoodputBps is original information bits over TotalTime.
	GoodputBps float64
	// Adaptations / AdaptEvents / FlightEntries / Suppressed are the
	// autopilot's observability quadruple (zero for static rows).
	Adaptations   uint64
	AdaptEvents   uint64
	FlightEntries int
	Suppressed    uint64
}

// AdaptResult is the full comparison.
type AdaptResult struct {
	OrigBytes int64
	Messages  int
	Rows      []AdaptRow
}

// String renders the comparison table.
func (r *AdaptResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %8s %12s %12s %12s %7s %6s\n",
		"composition", "delivered", "dropped", "wire-bytes", "total-time", "goodput", "adapts", "suppr")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %9d %8d %12d %12v %9.1f kb/s %7d %6d\n",
			row.Name, row.Delivered, row.Dropped, row.SentBytes,
			row.TotalTime.Round(time.Millisecond), row.GoodputBps/1e3,
			row.Adaptations, row.Suppressed)
	}
	return b.String()
}

// Row returns a named row (nil when absent).
func (r *AdaptResult) Row(name string) *AdaptRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// adaptProbe counts ADAPTATION context events delivered by the event
// manager. ADAPTATION events are source-directed at the adapted stream, so
// the probe subscribes under the stream's name to receive them.
type adaptProbe struct {
	name string
	n    atomic.Uint64
}

func (p *adaptProbe) SubscriberName() string { return p.name }
func (p *adaptProbe) OnEvent(ev event.ContextEvent) {
	if ev.EventID == event.ADAPTATION {
		p.n.Add(1)
	}
}

// expectedAdaptations walks the schedule and counts threshold crossings:
// the composition starts uncompressed, so each phase whose side of the
// threshold differs from the previous state is one firing.
func expectedAdaptations(cfg AdaptConfig) uint64 {
	var n uint64
	low := false // initial composition has no compressor
	for _, ph := range cfg.Phases {
		phaseLow := ph.BandwidthBps < CompressorThresholdBps
		if phaseLow != low {
			n++
			low = phaseLow
		}
	}
	return n
}

// Adapt runs the autopilot comparison: the same workload over the same
// bandwidth schedule through three compositions — never-compress,
// always-compress, and the policy-driven autopilot — and verifies that the
// autopilot strictly beats both statics on goodput with zero message loss,
// that it fired exactly once per threshold crossing (hysteresis: no
// oscillation), and that every firing is observable as an ADAPTATION
// event, an adapt_actions_total increment and a flight-recorder entry.
func Adapt(cfg AdaptConfig) (*AdaptResult, error) {
	if len(cfg.Phases) == 0 {
		cfg = DefaultAdaptConfig()
	}
	total := 0
	for _, ph := range cfg.Phases {
		if ph.BandwidthBps <= 0 || ph.Messages <= 0 {
			return nil, fmt.Errorf("adapt: bad phase %+v", ph)
		}
		total += ph.Messages
	}

	res := &AdaptResult{Messages: total}
	runs := []struct {
		name     string
		script   string
		adaptive bool
	}{
		{"static-plain", AdaptScript, false},
		{"static-compress", adaptStaticCompressScript, false},
		{"autopilot", AdaptScript, true},
	}
	for _, run := range runs {
		row, orig, err := adaptRun(cfg, run.name, run.script, run.adaptive)
		if err != nil {
			return nil, fmt.Errorf("adapt: %s: %w", run.name, err)
		}
		res.OrigBytes = orig
		res.Rows = append(res.Rows, row)
	}

	// Zero loss everywhere: every composition must deliver the full
	// workload bit-for-bit (the client reverse-processing inside adaptRun
	// already verified payload integrity).
	for _, row := range res.Rows {
		if row.Delivered != total || row.Dropped != 0 {
			return res, fmt.Errorf("adapt: %s lost messages: delivered %d/%d, dropped %d",
				row.Name, row.Delivered, total, row.Dropped)
		}
	}

	auto := res.Row("autopilot")
	want := expectedAdaptations(cfg)
	if auto.Adaptations != want {
		return res, fmt.Errorf("adapt: autopilot fired %d times, want exactly %d (one per threshold crossing — oscillation or a missed transition)",
			auto.Adaptations, want)
	}
	if auto.AdaptEvents != want {
		return res, fmt.Errorf("adapt: %d ADAPTATION events for %d adaptations", auto.AdaptEvents, want)
	}
	if auto.FlightEntries != int(want) {
		return res, fmt.Errorf("adapt: %d flight-recorder adapt entries for %d adaptations", auto.FlightEntries, want)
	}
	if auto.Suppressed == 0 {
		return res, fmt.Errorf("adapt: expected suppressed firings (the remove rule is inapplicable during the initial high phase)")
	}
	for _, row := range res.Rows {
		if row.Name != "autopilot" && auto.GoodputBps <= row.GoodputBps {
			return res, fmt.Errorf("adapt: autopilot goodput %.0f b/s does not beat %s %.0f b/s",
				auto.GoodputBps, row.Name, row.GoodputBps)
		}
	}
	return res, nil
}

// adaptRun pushes the workload through one composition over the bandwidth
// schedule and measures its goodput. When adaptive is set, a policy engine
// is attached to the stream and ticked once per message, sampling the link
// like the production background ticker would.
func adaptRun(cfg AdaptConfig, name, script string, adaptive bool) (AdaptRow, int64, error) {
	row := AdaptRow{Name: name}

	link := netem.MustNew(netem.Config{BandwidthBps: cfg.Phases[0].BandwidthBps, Seed: cfg.Seed})
	defer link.Close()
	comm := &services.Communicator{SinkTo: link}
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	dir.Register("net/communicator", func() streamlet.Processor { return comm })

	compiled, err := mcl.Compile(script, nil)
	if err != nil {
		return row, 0, err
	}
	st, err := stream.FromConfig(compiled, "adaptive", nil, dir)
	if err != nil {
		return row, 0, err
	}
	defer st.End()
	inlet, err := st.OpenInlet(mcl.PortRef{Inst: "hd", Port: "pi"}, 1<<24)
	if err != nil {
		return row, 0, err
	}
	st.Start()

	suppressedBefore := obs.DefaultCounter(obs.MAdaptSuppressedTotal).Value()
	flightSeqBefore := obs.Flight().Events()
	var eng *adapt.Engine
	var probe *adaptProbe
	if adaptive {
		em := event.NewManager(nil)
		defer em.Close()
		probe = &adaptProbe{name: st.Name()}
		em.Subscribe(event.Adaptation, probe)
		eng = adapt.New(adapt.Config{Link: link, Events: em})
		eng.Attach("adaptive", st, compiled.Stream("adaptive").Policies)
	}

	var origBytes int64
	curBw := cfg.Phases[0].BandwidthBps
	sentSoFar := 0
	for _, ph := range cfg.Phases {
		if ph.BandwidthBps != curBw {
			if err := link.SetBandwidth(ph.BandwidthBps); err != nil {
				return row, 0, err
			}
			curBw = ph.BandwidthBps
		}
		for i := 0; i < ph.Messages; i++ {
			m := services.GenTextMessage(cfg.MessageBytes, cfg.Seed+int64(sentSoFar))
			origBytes += netem.WireBytes(m)
			if eng != nil {
				eng.Tick()
			}
			if err := inlet.Send(m); err != nil {
				return row, 0, err
			}
			sentSoFar++
			// Serialize: the next message (and the next engine tick) waits
			// until this one is on the link, so a firing policy's drain sees
			// a quiesced pipeline and the reading that fired it is the one
			// the message experienced.
			deadline := time.Now().Add(30 * time.Second)
			for {
				sent, errs := comm.Stats()
				if sent+errs+st.Dropped() >= uint64(sentSoFar) {
					break
				}
				if time.Now().After(deadline) {
					return row, 0, fmt.Errorf("pipeline stalled at message %d", sentSoFar)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}

	sent, errs := comm.Stats()
	if errs > 0 {
		return row, 0, fmt.Errorf("%d communicator send errors", errs)
	}
	row.Dropped = st.Dropped()

	// Client-side reverse processing proves bit-exact delivery: every
	// message that crossed the link decompresses (when compressed) back to
	// its original payload size.
	peers := streamlet.NewDirectory()
	services.RegisterClientPeers(peers)
	mc := client.New(client.Options{Peers: peers}, nil)
	var payloadBytes int
	for i := 0; i < int(sent); i++ {
		d, err := link.Receive(time.Second)
		if err != nil {
			return row, 0, fmt.Errorf("after %d deliveries: %w", row.Delivered, err)
		}
		out, err := mc.Process(d.Msg)
		if err != nil {
			return row, 0, err
		}
		payloadBytes += len(out.Body())
		row.Delivered++
	}
	if want := row.Delivered * cfg.MessageBytes; payloadBytes != want {
		return row, 0, fmt.Errorf("payload integrity: %d bytes after client processing, want %d", payloadBytes, want)
	}

	row.SentBytes, _ = link.Stats()
	row.Invocations = st.Processed()
	row.TransferTime = link.Elapsed()
	row.TotalTime = row.TransferTime + time.Duration(row.Invocations)*PaperOverheadPerStreamlet
	row.GoodputBps = float64(origBytes*8) / row.TotalTime.Seconds()

	if eng != nil {
		row.Adaptations = eng.Actions()
		row.Suppressed = obs.DefaultCounter(obs.MAdaptSuppressedTotal).Value() - suppressedBefore
		// Event dispatch is asynchronous; give the manager a moment.
		deadline := time.Now().Add(2 * time.Second)
		for probe.n.Load() < row.Adaptations && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		row.AdaptEvents = probe.n.Load()
		for _, e := range obs.Flight().Snapshot(0).Events {
			if e.Code == obs.FlightAdapt && e.Seq > flightSeqBefore &&
				strings.HasPrefix(e.Subject, "adaptive/") {
				row.FlightEntries++
			}
		}
	}
	return row, origBytes, nil
}
