package experiments

import "testing"

// TestBatchSweep runs a scaled-down sweep and checks the smoke gate's
// invariants plus the amortization evidence the table reports.
func TestBatchSweep(t *testing.T) {
	cfg := DefaultBatchConfig()
	cfg.Messages = 120
	cfg.Batches = []int{1, 8, 32}
	res, err := Batch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Batches) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Batches))
	}
	for _, row := range res.Rows {
		if row.Sent != cfg.Messages || row.Delivered != cfg.Messages {
			t.Errorf("batch=%d: sent %d delivered %d, want %d each",
				row.Batch, row.Sent, row.Delivered, cfg.Messages)
		}
		if row.Reorders != 0 {
			t.Errorf("batch=%d: %d reorders", row.Batch, row.Reorders)
		}
	}
	if res.Rows[0].Flushes != 0 {
		t.Errorf("batch=1 recorded %d PostN flushes, want 0 (classic Post path)", res.Rows[0].Flushes)
	}
	if res.Rows[1].Flushes == 0 {
		t.Error("batch=8 recorded no PostN flushes; the batched pump is not engaged")
	}
}
