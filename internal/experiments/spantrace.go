package experiments

import (
	"fmt"
	"strings"
	"time"

	"mobigate/internal/client"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/netem"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// TraceTreeConfig parameterizes the end-to-end span-trace run: the webaccel
// chain over a real-time link with span tracing on, each message followed
// from Inlet.Send through the server streamlets, the wireless transfer and
// the client peer reversals, and its span tree reconstructed on the server.
type TraceTreeConfig struct {
	BandwidthBps int64
	Delay        time.Duration
	Messages     int
	ImageRatio   float64
	Seed         int64
	// ClockSkew offsets the emulated client device's monotonic clock, so
	// the run exercises the alignment handshake rather than relying on the
	// in-process clocks agreeing by construction.
	ClockSkew time.Duration
	// Budget, when positive, configures the stream's end-to-end latency
	// budget in the SLO tracker; terminal hops feed it and the /slo
	// snapshot appears in the result.
	Budget time.Duration
}

// DefaultTraceTreeConfig runs a handful of messages over a fast real-time
// link (so the wall clock, not the emulation, dominates nothing) with a
// deliberately skewed client clock.
func DefaultTraceTreeConfig() TraceTreeConfig {
	return TraceTreeConfig{
		BandwidthBps: 4_000_000,
		Delay:        500 * time.Microsecond,
		Messages:     6,
		ImageRatio:   0.5,
		Seed:         2004,
		ClockSkew:    -3 * time.Second,
		Budget:       0,
	}
}

// TraceTreeMsg is the reconstructed end-to-end record of one message.
type TraceTreeMsg struct {
	TraceID uint64
	// WallNs is the independently measured response time: Inlet.Send call
	// to client reverse-processing complete, on the server clock.
	WallNs int64
	// UnionNs is the total time covered by the union of the trace's span
	// intervals — the per-hop durations with overlaps counted once.
	UnionNs int64
	// Spans is how many spans the trace retained.
	Spans int
	// Connected reports whether the spans form one fully-connected tree.
	Connected bool
	// ClientSpans counts the spans recorded on the client site.
	ClientSpans int
	// Tree is the rendered tree (FormatSpanTree).
	Tree string
}

// Covered reports whether the span union accounts for the measured wall
// time within the given fraction (0.05 = ±5%).
func (m TraceTreeMsg) Covered(frac float64) bool {
	if m.WallNs <= 0 {
		return false
	}
	diff := m.WallNs - m.UnionNs
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= frac*float64(m.WallNs)
}

// TraceTreeResult is the outcome of one TraceTree run.
type TraceTreeResult struct {
	SessionID string
	Messages  []TraceTreeMsg
	// ClockOffsetNs is the measured client→server clock offset from the
	// alignment handshake (≈ -ClockSkew).
	ClockOffsetNs int64
	// BatchSpans is how many client spans were shipped back and merged.
	BatchSpans int
	// FlightEvents is the flight-recorder journal length at the end of the
	// run (Snapshot total, pre-truncation).
	FlightEvents int
	// SLO is the chain's budget snapshot (zero value when no budget set).
	SLO obs.SLOSnapshot
}

// TraceTree runs the end-to-end span-tracing demonstration: span tracing is
// enabled, the webaccel stream (compressor branch engaged, so text messages
// carry a client peer) sends each workload message over a real-time link, a
// thin client with its own skewed clock reverse-processes it, the client's
// span batch ships back over the control channel, and the server merges it
// and reconstructs one tree per message.
func TraceTree(cfg TraceTreeConfig) (TraceTreeResult, error) {
	var out TraceTreeResult
	if cfg.Messages <= 0 {
		cfg.Messages = DefaultTraceTreeConfig().Messages
	}

	wasOn := obs.SpansEnabled()
	obs.SetSpansEnabled(true)
	defer obs.SetSpansEnabled(wasOn)

	link := netem.MustNew(netem.Config{
		BandwidthBps: cfg.BandwidthBps,
		Delay:        cfg.Delay,
		Mode:         netem.RealTime,
	})
	defer link.Close()
	comm := &services.Communicator{SinkTo: link}
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	dir.Register("net/communicator", func() streamlet.Processor { return comm })

	compiled, err := mcl.Compile(WebAccelScript, nil)
	if err != nil {
		return out, err
	}
	st, err := stream.FromConfig(compiled, "webaccel", nil, dir)
	if err != nil {
		return out, err
	}
	defer st.End()
	inlet, err := st.OpenInlet(mcl.PortRef{Inst: "sw", Port: "pi"}, 1<<24)
	if err != nil {
		return out, err
	}
	st.Start()
	out.SessionID = st.SessionID()
	if cfg.Budget > 0 {
		st.SetLatencyBudget(cfg.Budget)
	}
	// Engage the compressor branch so text messages push a peer the client
	// must reverse — the tree then spans both sides of the link.
	st.OnEvent(event.ContextEvent{EventID: event.LOW_BANDWIDTH, Category: event.NetworkVariation})

	// The thin client runs in its own clock domain; the skew is deliberate
	// so only the alignment handshake can make the merged stamps coherent.
	skew := int64(cfg.ClockSkew)
	clientClock := func() int64 { return obs.MonoNow() + skew }
	clientCol := obs.NewSpanCollector(0, clientClock, obs.SiteClient)
	peers := streamlet.NewDirectory()
	services.RegisterClientPeers(peers)
	cl := client.New(client.Options{Peers: peers, Spans: clientCol}, nil)

	// One message at a time: the wall measurement brackets the full
	// traversal, send to client-done, with nothing else in flight.
	traceIDs := make([]uint64, 0, cfg.Messages)
	walls := make([]int64, 0, cfg.Messages)
	for _, m := range services.MixedWorkload(cfg.Messages, cfg.ImageRatio, cfg.Seed) {
		wall0 := obs.MonoNow()
		if err := inlet.Send(m); err != nil {
			return out, err
		}
		d, err := link.Receive(10 * time.Second)
		if err != nil {
			return out, err
		}
		sctx := obs.ParseSpanContext(d.Msg.Header(mime.HeaderSpanContext))
		if _, err := cl.Process(d.Msg); err != nil {
			return out, err
		}
		walls = append(walls, obs.MonoNow()-wall0)
		traceIDs = append(traceIDs, sctx.TraceID)
	}

	// Clock-alignment handshake, then the client's span batch ships back
	// over the control channel (the wire codec round-trip stands in for it)
	// and merges into the server collector rebased onto the server clock.
	out.ClockOffsetNs = obs.AlignClocks(obs.MonoNow, clientClock)
	batch := obs.DecodeSpanBatch(obs.EncodeSpanBatch(clientCol.Drain()))
	out.BatchSpans = len(batch)
	obs.Spans().MergeBatch(batch, out.ClockOffsetNs)

	for i, tid := range traceIDs {
		spans := obs.Spans().Trace(tid)
		clientSpans := 0
		for _, sp := range spans {
			if sp.Site == obs.SiteClient {
				clientSpans++
			}
		}
		out.Messages = append(out.Messages, TraceTreeMsg{
			TraceID:     tid,
			WallNs:      walls[i],
			UnionNs:     obs.SpanUnionNs(spans),
			Spans:       len(spans),
			Connected:   obs.SpanTreeConnected(spans),
			ClientSpans: clientSpans,
			Tree:        obs.FormatSpanTree(obs.BuildSpanTree(spans)),
		})
	}
	out.FlightEvents = obs.Flight().Snapshot(0).Total
	if cfg.Budget > 0 {
		if s, ok := obs.SLO().Snapshot(out.SessionID); ok {
			out.SLO = s
		}
	}
	return out, nil
}

// String renders the result: one tree per message with the wall/union
// comparison, then the run-level merge and flight summary.
func (r TraceTreeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "end-to-end span traces, session %s (%d messages; client clock offset %v)\n",
		r.SessionID, len(r.Messages), time.Duration(r.ClockOffsetNs).Round(time.Microsecond))
	for i, m := range r.Messages {
		fmt.Fprintf(&b, "message %d: trace %x, %d spans (%d client), connected=%v, wall=%v union=%v\n",
			i, m.TraceID, m.Spans, m.ClientSpans, m.Connected,
			time.Duration(m.WallNs).Round(time.Microsecond),
			time.Duration(m.UnionNs).Round(time.Microsecond))
		for _, line := range strings.Split(strings.TrimRight(m.Tree, "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "client batch: %d spans merged; flight journal: %d events\n", r.BatchSpans, r.FlightEvents)
	if r.SLO.BudgetNs > 0 {
		fmt.Fprintf(&b, "slo: budget=%v count=%d p50=%v p95=%v p99=%v violations=%d\n",
			time.Duration(r.SLO.BudgetNs), r.SLO.Count,
			time.Duration(r.SLO.P50Ns).Round(time.Microsecond),
			time.Duration(r.SLO.P95Ns).Round(time.Microsecond),
			time.Duration(r.SLO.P99Ns).Round(time.Microsecond),
			r.SLO.Violations)
	}
	return b.String()
}
