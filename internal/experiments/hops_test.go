package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestHopsBreakdown(t *testing.T) {
	cfg := HopsConfig{
		BandwidthBps: 200_000,
		Delay:        time.Millisecond,
		Messages:     20,
		ImageRatio:   0.5,
		Seed:         7,
	}
	b, err := Hops(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Delivered == 0 {
		t.Fatal("no messages delivered")
	}
	if b.Reconfigured {
		t.Error("compressor engaged above the threshold")
	}
	rows := map[string]HopRow{}
	for _, r := range b.Rows {
		rows[r.Streamlet] = r
	}
	// Every message passes the switch, the merger and the communicator.
	for _, id := range []string{"sw", "mg", "cm"} {
		r, ok := rows[id]
		if !ok {
			t.Fatalf("no hop row for %s in %+v", id, b.Rows)
		}
		if r.Messages != cfg.Messages {
			t.Errorf("%s saw %d messages, want %d", id, r.Messages, cfg.Messages)
		}
		if r.BytesIn == 0 {
			t.Errorf("%s recorded no input bytes", id)
		}
	}
	// The communicator is a terminal sink: nothing leaves it downstream.
	if rows["cm"].BytesOut != 0 {
		t.Errorf("cm bytesOut = %d, want 0", rows["cm"].BytesOut)
	}
	// Images take the downsample branch; ~half the workload.
	if r, ok := rows["ds"]; !ok || r.Messages == 0 || r.Messages >= cfg.Messages {
		t.Errorf("ds row = %+v, want a strict subset of the workload", r)
	}
	if b.AvgTransmit <= 0 {
		t.Error("no modelled transmit time")
	}
	out := b.String()
	for _, want := range []string{"streamlet", "avgQueueWait", "avgProcess", "link"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestHopsLowBandwidthEngagesCompressor(t *testing.T) {
	cfg := HopsConfig{
		BandwidthBps: 50_000,
		Delay:        time.Millisecond,
		Messages:     10,
		ImageRatio:   0.0, // all text, so every message crosses tc
		Seed:         7,
	}
	b, err := Hops(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reconfigured {
		t.Fatal("compressor not engaged below the threshold")
	}
	for _, r := range b.Rows {
		if r.Streamlet == "tc" {
			if r.Messages == 0 {
				t.Error("tc row has no messages")
			}
			return
		}
	}
	t.Fatalf("no tc hop row after reconfiguration: %+v", b.Rows)
}
