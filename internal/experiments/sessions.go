package experiments

// The multi-session scale experiment behind `mobibench -exp sessions` and
// `make sessions-smoke`: it stands up a shared-plane session table, connects
// a large population of logical sessions (100k at full scale), runs traffic
// rounds interleaved with disconnect/reconnect churn and cross-plane
// handoffs, then deliberately overloads the admission controller. The
// asserts are the session layer's whole contract at once:
//
//   - conservation: every post attempt ends as exactly one delivery or one
//     counted shed, table-wide, at quiescence;
//   - bounded memory: live-heap growth stays under a per-session budget
//     (sessions are accounting, not buffers);
//   - admission: connects past MaxSessions are refused and counted, never
//     silently absorbed.

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobigate/internal/queue"
	"mobigate/internal/session"
)

// SessionsConfig parameterizes the experiment.
type SessionsConfig struct {
	// Sessions is the concurrent session population (the scale target).
	Sessions int
	// Planes is the shared-plane pool size the population is spread over.
	Planes int
	// Rounds is how many traffic+churn rounds to run.
	Rounds int
	// ChurnFraction is the share of sessions disconnected and reconnected
	// (under a new incarnation id, usually landing on a different plane —
	// the handoff) each round.
	ChurnFraction float64
	// Senders is the posting-goroutine count per round.
	Senders int
	// MessagesPerSender is how many messages each sender posts per round.
	MessagesPerSender int
	// MessageBytes is the accounted size per message.
	MessageBytes int
	// OverloadConnects is how many connects past MaxSessions the overload
	// phase attempts; all must be shed by admission.
	OverloadConnects int
	// HeapBytesPerSession is the live-heap growth budget per session.
	HeapBytesPerSession float64
	// Timeout bounds every drain wait.
	Timeout time.Duration
}

// DefaultSessionsConfig returns the full-scale (100k-session) run.
func DefaultSessionsConfig() SessionsConfig {
	return SessionsConfig{
		Sessions:            100_000,
		Planes:              4,
		Rounds:              3,
		ChurnFraction:       0.10,
		Senders:             4,
		MessagesPerSender:   2_000,
		MessageBytes:        512,
		OverloadConnects:    64,
		HeapBytesPerSession: 2048,
		Timeout:             60 * time.Second,
	}
}

// SessionsResult is everything the experiment measured and asserted.
type SessionsResult struct {
	Sessions       int
	Planes         int
	PeakLive       int
	HeapPerSession float64
	Handoffs       int
	Attempts       uint64
	Stats          session.Stats
	Elapsed        time.Duration
}

// String renders the result.
func (r SessionsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions: %d concurrent over %d shared planes (%v)\n",
		r.Sessions, r.Planes, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  peak live          %d\n", r.PeakLive)
	fmt.Fprintf(&b, "  heap/session       %.0f B (budget %s)\n", r.HeapPerSession, "bounded")
	fmt.Fprintf(&b, "  handoffs           %d (churned across planes)\n", r.Handoffs)
	fmt.Fprintf(&b, "  post attempts      %d\n", r.Attempts)
	fmt.Fprintf(&b, "  posted/delivered   %d/%d\n", r.Stats.Posted, r.Stats.Delivered)
	fmt.Fprintf(&b, "  shed load/quota    %d/%d\n", r.Stats.LoadShed, r.Stats.QuotaShed)
	fmt.Fprintf(&b, "  shed admission     %d (overload phase)\n", r.Stats.AdmissionShed)
	fmt.Fprintf(&b, "  connects/disc.     %d/%d\n", r.Stats.Connects, r.Stats.Disconnects)
	return b.String()
}

// liveHeap forces a quiescent heap measurement.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Sessions runs the experiment and returns an error on any violated assert.
func Sessions(cfg SessionsConfig) (SessionsResult, error) {
	start := time.Now()
	var res SessionsResult
	res.Sessions = cfg.Sessions
	res.Planes = cfg.Planes

	heap0 := liveHeap()

	planes := make([]*session.Plane, cfg.Planes)
	for i := range planes {
		planes[i] = session.NewPlane(fmt.Sprintf("sessions-plane-%d", i),
			queue.New(fmt.Sprintf("sessions-q-%d", i), queue.Options{CapacityBytes: 1 << 24}))
	}
	tbl, err := session.NewTable(session.Config{
		MaxSessions: int64(cfg.Sessions),
		Shards:      1024,
	}, planes...)
	if err != nil {
		return res, err
	}
	defer tbl.Close()

	// The route slice plays the gateway's role: it maps a message's session
	// index back to the session that admitted it, surviving churn because
	// each round swaps the pointer only after the old incarnation drained.
	routes := make([]*session.Session, cfg.Sessions)
	var routeMu sync.RWMutex

	// Ramp: connect the whole population.
	for i := range routes {
		s, err := tbl.Connect("sess-" + strconv.Itoa(i))
		if err != nil {
			return res, fmt.Errorf("sessions: ramp connect %d: %w", i, err)
		}
		routes[i] = s
	}
	res.PeakLive = tbl.Len()
	if res.PeakLive != cfg.Sessions {
		return res, fmt.Errorf("sessions: peak live %d, want %d", res.PeakLive, cfg.Sessions)
	}

	// Steady-state memory: the whole population is connected and quiet.
	res.HeapPerSession = float64(liveHeap()-heap0) / float64(cfg.Sessions)
	if res.HeapPerSession > cfg.HeapBytesPerSession {
		return res, fmt.Errorf("sessions: %.0f heap bytes/session exceeds the %.0f budget",
			res.HeapPerSession, cfg.HeapBytesPerSession)
	}

	// Pumps: one consumer per plane releasing reservations as the shared
	// chains would, routing by the session index encoded in the message id.
	stop := make(chan struct{})
	var pumps sync.WaitGroup
	for _, p := range planes {
		pumps.Add(1)
		go func(q *queue.Queue) {
			defer pumps.Done()
			buf := make([]queue.Item, 256)
			for {
				n := q.FetchN(buf, stop)
				if n == 0 {
					select {
					case <-stop:
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				for _, it := range buf[:n] {
					idx, _ := strconv.Atoi(it.MsgID[:strings.IndexByte(it.MsgID, '/')])
					routeMu.RLock()
					routes[idx].Release(it.Size, 0)
					routeMu.RUnlock()
				}
			}
		}(p.Queue())
	}
	defer func() { close(stop); pumps.Wait() }()

	// drained waits until every post attempt has been accounted end to end.
	drained := func(attempts uint64) error {
		deadline := time.Now().Add(cfg.Timeout)
		for {
			st := tbl.Stats()
			if st.Delivered+st.LoadShed+st.QuotaShed == attempts && st.Posted == st.Delivered {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("sessions: drain stalled: attempts=%d %+v", attempts, st)
			}
			runtime.Gosched()
		}
	}

	// accounted counts only attempts that ended in a posted message or a
	// counted shed, so an unexpected post error (which is itself a test
	// failure) cannot wedge the drain wait.
	var accounted atomic.Uint64
	for round := 0; round < cfg.Rounds; round++ {
		// Traffic burst: senders spray the population round-robin.
		var senders sync.WaitGroup
		sendErr := make(chan error, cfg.Senders)
		for k := 0; k < cfg.Senders; k++ {
			senders.Add(1)
			go func(k, round int) {
				defer senders.Done()
				for m := 0; m < cfg.MessagesPerSender; m++ {
					idx := (k + m*cfg.Senders) % cfg.Sessions
					routeMu.RLock()
					s := routes[idx]
					routeMu.RUnlock()
					id := strconv.Itoa(idx) + "/" + strconv.Itoa(round) + "-" + strconv.Itoa(m)
					err := s.Post(id, cfg.MessageBytes, stop)
					if err != nil && err != session.ErrQuota && err != session.ErrShed {
						sendErr <- fmt.Errorf("sessions: round %d post %s: %w", round, id, err)
						return
					}
					accounted.Add(1)
				}
			}(k, round)
		}
		senders.Wait()
		select {
		case err := <-sendErr:
			return res, err
		default:
		}
		if err := drained(accounted.Load()); err != nil {
			return res, err
		}

		// Churn + handoff: a slice of the population disconnects and
		// reconnects under a new incarnation id, which re-hashes it — most
		// land on a different plane, which is the handoff.
		churn := int(float64(cfg.Sessions) * cfg.ChurnFraction)
		for c := 0; c < churn; c++ {
			idx := (round*churn + c) % cfg.Sessions
			routeMu.RLock()
			old := routes[idx]
			routeMu.RUnlock()
			tbl.Disconnect(old.ID())
			s, err := tbl.Connect(old.ID() + "#" + strconv.Itoa(round))
			if err != nil {
				return res, fmt.Errorf("sessions: churn reconnect %d: %w", idx, err)
			}
			if s.Plane() != old.Plane() {
				res.Handoffs++
			}
			routeMu.Lock()
			routes[idx] = s
			routeMu.Unlock()
		}
		if tbl.Len() != cfg.Sessions {
			return res, fmt.Errorf("sessions: round %d live %d, want %d", round, tbl.Len(), cfg.Sessions)
		}
	}
	res.Attempts = accounted.Load()
	if cfg.Rounds > 0 && cfg.ChurnFraction > 0 && res.Handoffs == 0 {
		return res, fmt.Errorf("sessions: churn never crossed planes")
	}

	// Overload: the table is at MaxSessions, so every extra connect must be
	// refused by the admission controller — and counted.
	for c := 0; c < cfg.OverloadConnects; c++ {
		if _, err := tbl.Connect("overload-" + strconv.Itoa(c)); err != session.ErrAdmission {
			return res, fmt.Errorf("sessions: overload connect %d: got %v, want ErrAdmission", c, err)
		}
	}

	// Teardown: the whole population disconnects; nothing is in flight, so
	// the table must empty without any draining stragglers.
	routeMu.RLock()
	for _, s := range routes {
		tbl.Disconnect(s.ID())
	}
	routeMu.RUnlock()
	res.Stats = tbl.Stats()
	res.Elapsed = time.Since(start)

	if res.Stats.Live != 0 || res.Stats.Draining != 0 {
		return res, fmt.Errorf("sessions: teardown left live=%d draining=%d",
			res.Stats.Live, res.Stats.Draining)
	}
	if res.Stats.Posted != res.Stats.Delivered {
		return res, fmt.Errorf("sessions: conservation: posted %d != delivered %d",
			res.Stats.Posted, res.Stats.Delivered)
	}
	if got := res.Stats.Delivered + res.Stats.LoadShed + res.Stats.QuotaShed; got != res.Attempts {
		return res, fmt.Errorf("sessions: conservation: delivered+shed %d != attempts %d", got, res.Attempts)
	}
	if int(res.Stats.AdmissionShed) < cfg.OverloadConnects {
		return res, fmt.Errorf("sessions: admission shed %d < overload %d",
			res.Stats.AdmissionShed, cfg.OverloadConnects)
	}
	return res, nil
}
