package experiments

import (
	"fmt"
	"sync"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/fault"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/netem"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// FaultsConfig parameterizes the fault-injection survival run: a live
// session (head → flaky → communicator → emulated link) that takes
// processor panics, one stall, and one link blackout while the supervision
// subsystem keeps every message flowing.
type FaultsConfig struct {
	// Messages is the workload size.
	Messages int
	// PanicAt lists injector call indexes that panic.
	PanicAt []uint64
	// StallAt is the injector call index that stalls; StallFor is how long
	// the stall sleeps (it must exceed ProcessTimeout to be detected).
	StallAt  uint64
	StallFor time.Duration
	// ProcessTimeout is the supervised per-message deadline.
	ProcessTimeout time.Duration
	// BlackoutAfter is how many deliveries to wait before taking the link
	// down for BlackoutFor.
	BlackoutAfter int
	BlackoutFor   time.Duration
	// BandwidthBps configures the emulated link.
	BandwidthBps int64
	Seed         int64
}

// DefaultFaultsConfig injects three panics, one stall, and one 50ms
// blackout into a 120-message session.
func DefaultFaultsConfig() FaultsConfig {
	return FaultsConfig{
		Messages:       120,
		PanicAt:        []uint64{5, 12, 19},
		StallAt:        30,
		StallFor:       60 * time.Millisecond,
		ProcessTimeout: 15 * time.Millisecond,
		BlackoutAfter:  60,
		BlackoutFor:    50 * time.Millisecond,
		BandwidthBps:   2_000_000,
		Seed:           2004,
	}
}

// FaultsResult reports what was injected, what the supervisor recovered,
// and whether the session conserved its messages.
type FaultsResult struct {
	SessionID       string
	Sent, Delivered int
	// Lost is Sent - Delivered (must be zero: every fault here is
	// recoverable by retry, and the blackout only parks traffic).
	Lost int
	// Duplicates counts messages delivered more than once.
	Duplicates int

	// Injected faults, from the injector's own accounting.
	InjPanics, InjStalls uint64
	// Recovered faults, from the streamlet supervisor.
	Recovered streamlet.FaultStats
	// Events is the count of each ExecutionFault / link event delivered
	// through the event manager.
	Events map[string]int
	// BlackoutDown is how long the link reported being down.
	BlackoutDown time.Duration
}

// eventCollector counts deliveries per event id; its name matches the
// stream so source-directed fault events reach it.
type eventCollector struct {
	name   string
	mu     sync.Mutex
	counts map[string]int
}

func (c *eventCollector) SubscriberName() string { return c.name }

func (c *eventCollector) OnEvent(evt event.ContextEvent) {
	c.mu.Lock()
	c.counts[evt.EventID]++
	c.mu.Unlock()
}

// Faults runs the fault-injection survival scenario: the supervised
// pipeline absorbs panics and a stall via the retry policy (transient
// faults injected by call index run clean on re-execution), and the
// blackout exercises the link's store-and-forward blocking. The run fails
// if any message is lost or duplicated, or if fewer faults fired than
// configured — an injector that never fires proves nothing.
func Faults(cfg FaultsConfig) (FaultsResult, error) {
	out := FaultsResult{Events: make(map[string]int)}

	link := netem.MustNew(netem.Config{BandwidthBps: cfg.BandwidthBps, Delay: 100 * time.Microsecond})
	defer link.Close()

	mgr := event.NewManager(nil)
	netem.WatchOutages(link, mgr, "faults")

	st := stream.New("faults", nil, nil)
	defer st.End()
	st.SetEventSink(mgr)
	collector := &eventCollector{name: st.Name(), counts: out.Events}
	mgr.Subscribe(event.ExecutionFault, collector)
	mgr.Subscribe(event.NetworkVariation, collector)

	forward := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})
	inj := fault.NewInjector(cfg.Seed,
		fault.Spec{Kind: fault.KindPanic, At: cfg.PanicAt},
		fault.Spec{Kind: fault.KindStall, At: []uint64{cfg.StallAt}, Stall: cfg.StallFor},
	)
	comm := &services.Communicator{SinkTo: link}

	if _, err := st.AddStreamlet("head", nil, forward); err != nil {
		return out, err
	}
	if _, err := st.AddStreamlet("flaky", nil, inj.Wrap(forward)); err != nil {
		return out, err
	}
	if _, err := st.AddStreamlet("comm", nil, comm); err != nil {
		return out, err
	}
	if err := st.Connect(pr("head", "po"), pr("flaky", "pi"), nil); err != nil {
		return out, err
	}
	if err := st.Connect(pr("flaky", "po"), pr("comm", "pi"), nil); err != nil {
		return out, err
	}
	if err := st.Supervise("flaky", stream.SupervisionConfig{
		Supervision: streamlet.Supervision{
			Policy:         streamlet.PolicyRetry,
			ProcessTimeout: cfg.ProcessTimeout,
		},
	}); err != nil {
		return out, err
	}
	inlet, err := st.OpenInlet(pr("head", "pi"), 1<<24)
	if err != nil {
		return out, err
	}
	st.Start()
	out.SessionID = st.SessionID()

	// Sender: unique bodies so conservation is checked per message.
	go func() {
		for i := 0; i < cfg.Messages; i++ {
			m := mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("m-%04d", i)))
			if inlet.Send(m) != nil {
				return
			}
		}
	}()
	out.Sent = cfg.Messages

	// Receiver: drain the link, injecting the blackout mid-run. During the
	// blackout senders park inside the link, so delivery resumes afterwards
	// with nothing lost.
	seen := make(map[string]int, cfg.Messages)
	blackedOut := false
	for received := 0; received < cfg.Messages; received++ {
		if !blackedOut && received >= cfg.BlackoutAfter {
			blackedOut = true
			t0 := time.Now()
			fault.Blackout(link, cfg.BlackoutFor)
			out.BlackoutDown = time.Since(t0)
		}
		d, err := link.Receive(10 * time.Second)
		if err != nil {
			out.Delivered = received
			out.Lost = out.Sent - received
			return out, fmt.Errorf("after %d deliveries: %w", received, err)
		}
		seen[string(d.Msg.Body())]++
	}
	out.Delivered = len(seen)
	for _, n := range seen {
		if n > 1 {
			out.Duplicates += n - 1
		}
	}
	out.Lost = out.Sent - out.Delivered

	out.InjPanics, _, out.InjStalls = inj.Injected()
	out.Recovered = st.Streamlet("flaky").Faults()

	// Close flushes the asynchronous dispatcher, so every raised event has
	// been counted when it returns.
	mgr.Close()

	if out.Lost != 0 || out.Duplicates != 0 {
		return out, fmt.Errorf("conservation violated: %d lost, %d duplicated", out.Lost, out.Duplicates)
	}
	if want := uint64(len(cfg.PanicAt)); out.Recovered.Panics < want {
		return out, fmt.Errorf("recovered %d panics, want >= %d", out.Recovered.Panics, want)
	}
	if out.Recovered.Stalls < 1 {
		return out, fmt.Errorf("recovered %d stalls, want >= 1", out.Recovered.Stalls)
	}
	if out.Events[event.LINK_BLACKOUT] < 1 || out.Events[event.LINK_RESTORED] < 1 {
		return out, fmt.Errorf("blackout events not observed: %v", out.Events)
	}
	if out.Events[event.STREAMLET_PANIC] < len(cfg.PanicAt) || out.Events[event.STREAMLET_STALL] < 1 {
		return out, fmt.Errorf("fault events not observed: %v", out.Events)
	}
	return out, nil
}

// pr builds a port reference.
func pr(inst, port string) mcl.PortRef { return mcl.PortRef{Inst: inst, Port: port} }

// String renders the survival report.
func (r FaultsResult) String() string {
	s := fmt.Sprintf("fault-injection survival, session %s\n", r.SessionID)
	s += fmt.Sprintf("  messages: sent=%d delivered=%d lost=%d duplicated=%d\n",
		r.Sent, r.Delivered, r.Lost, r.Duplicates)
	s += fmt.Sprintf("  injected: panics=%d stalls=%d blackout=%v\n",
		r.InjPanics, r.InjStalls, r.BlackoutDown.Round(time.Millisecond))
	s += fmt.Sprintf("  recovered: panics=%d stalls=%d retries=%d dropped=%d bypassed=%d\n",
		r.Recovered.Panics, r.Recovered.Stalls, r.Recovered.Retries,
		r.Recovered.Dropped, r.Recovered.Bypassed)
	s += "  events:"
	for _, id := range []string{event.STREAMLET_PANIC, event.STREAMLET_STALL, event.STREAMLET_ERROR,
		event.LINK_BLACKOUT, event.LINK_RESTORED} {
		if n := r.Events[id]; n > 0 {
			s += fmt.Sprintf(" %s=%d", id, n)
		}
	}
	s += "\n"
	return s
}

// metricValue reads a counter from the default registry (helper for tests
// asserting /metrics visibility of fault counters).
func metricValue(name string) uint64 { return obs.DefaultCounter(name).Value() }
