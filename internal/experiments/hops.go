package experiments

import (
	"fmt"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/netem"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// HopsConfig parameterizes the per-hop time-composition run (§7.3): one
// webaccel session over an emulated link, decomposed hop by hop from the
// coordination plane's trace records.
type HopsConfig struct {
	BandwidthBps int64
	Delay        time.Duration
	LossRate     float64
	Messages     int
	ImageRatio   float64
	Seed         int64
}

// DefaultHopsConfig runs the breakdown at 100 Kb/s so the compressor branch
// is on the edge of engaging (use a lower bandwidth to see the tc hop).
func DefaultHopsConfig() HopsConfig {
	return HopsConfig{
		BandwidthBps: 100_000,
		Delay:        time.Millisecond,
		Messages:     60,
		ImageRatio:   0.5,
		Seed:         2004,
	}
}

// HopRow aggregates the trace records of one streamlet across every message
// that visited it.
type HopRow struct {
	// Streamlet is the composition-variable id from the MCL script.
	Streamlet string
	// Messages is how many messages recorded a hop at this streamlet.
	Messages int
	// AvgQueueWait is the mean time spent queued before the streamlet
	// fetched the message.
	AvgQueueWait time.Duration
	// AvgProcess is the mean Processor execution time.
	AvgProcess time.Duration
	// BytesIn and BytesOut total the message bodies entering and leaving
	// the streamlet, showing where the flow shrinks.
	BytesIn, BytesOut int64
}

// HopBreakdown is the §7.3-style decomposition of where a session's time
// goes: queue waits and processing per streamlet, plus the modelled
// transmission cost of the emulated link.
type HopBreakdown struct {
	SessionID string
	// Messages that reached the communicator and crossed the link.
	Delivered int
	Rows      []HopRow
	// AvgTransmit is the mean per-message modelled transfer time.
	AvgTransmit time.Duration
	// Reconfigured reports whether the compressor branch was active.
	Reconfigured bool
}

// Hops runs one webaccel session over a virtual link with tracing on and
// aggregates the coordination plane's per-hop trace records into a time
// breakdown. No Processor code is involved in the measurement: every number
// comes from the trace chain the streamlet runtime appends.
func Hops(cfg HopsConfig) (HopBreakdown, error) {
	var out HopBreakdown

	link := netem.MustNew(netem.Config{BandwidthBps: cfg.BandwidthBps, Delay: cfg.Delay, LossRate: cfg.LossRate})
	defer link.Close()
	comm := &services.Communicator{SinkTo: link}
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	dir.Register("net/communicator", func() streamlet.Processor { return comm })

	compiled, err := mcl.Compile(WebAccelScript, nil)
	if err != nil {
		return out, err
	}
	st, err := stream.FromConfig(compiled, "webaccel", nil, dir)
	if err != nil {
		return out, err
	}
	defer st.End()
	inlet, err := st.OpenInlet(mcl.PortRef{Inst: "sw", Port: "pi"}, 1<<24)
	if err != nil {
		return out, err
	}
	st.Start()
	out.SessionID = st.SessionID()

	if cfg.BandwidthBps < CompressorThresholdBps {
		st.OnEvent(event.ContextEvent{EventID: event.LOW_BANDWIDTH, Category: event.NetworkVariation})
		out.Reconfigured = true
	}

	for _, m := range services.MixedWorkload(cfg.Messages, cfg.ImageRatio, cfg.Seed) {
		if err := inlet.Send(m); err != nil {
			return out, err
		}
	}
	deadline := time.Now().Add(time.Minute)
	var delivered uint64
	for {
		sent, errs := comm.Stats()
		delivered = sent
		if sent+errs+st.Dropped() >= uint64(cfg.Messages) {
			break
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("pipeline stalled: %d/%d messages", sent, cfg.Messages)
		}
		time.Sleep(100 * time.Microsecond)
	}
	out.Delivered = int(delivered)
	if delivered > 0 {
		out.AvgTransmit = link.Elapsed() / time.Duration(delivered)
	}

	// Fold the session's trace chains into per-streamlet aggregates, keeping
	// first-appearance order so the table reads in pipeline order.
	type acc struct {
		n                 int
		wait, process     time.Duration
		bytesIn, bytesOut int64
	}
	accs := map[string]*acc{}
	var order []string
	for _, rec := range obs.Traces().Session(out.SessionID) {
		for _, h := range rec.Hops {
			a := accs[h.Streamlet]
			if a == nil {
				a = &acc{}
				accs[h.Streamlet] = a
				order = append(order, h.Streamlet)
			}
			a.n++
			a.wait += h.QueueWait
			a.process += h.Process
			a.bytesIn += int64(h.BytesIn)
			a.bytesOut += int64(h.BytesOut)
		}
	}
	for _, id := range order {
		a := accs[id]
		out.Rows = append(out.Rows, HopRow{
			Streamlet:    id,
			Messages:     a.n,
			AvgQueueWait: a.wait / time.Duration(a.n),
			AvgProcess:   a.process / time.Duration(a.n),
			BytesIn:      a.bytesIn,
			BytesOut:     a.bytesOut,
		})
	}
	return out, nil
}

// String renders the breakdown as the §7.3 time-composition table.
func (b HopBreakdown) String() string {
	s := fmt.Sprintf("per-hop breakdown, session %s (%d delivered, compressor=%v)\n",
		b.SessionID, b.Delivered, b.Reconfigured)
	s += fmt.Sprintf("  %-12s %8s %14s %14s %12s %12s\n",
		"streamlet", "msgs", "avgQueueWait", "avgProcess", "bytesIn", "bytesOut")
	for _, r := range b.Rows {
		s += fmt.Sprintf("  %-12s %8d %14v %14v %12d %12d\n",
			r.Streamlet, r.Messages,
			r.AvgQueueWait.Round(time.Microsecond), r.AvgProcess.Round(time.Microsecond),
			r.BytesIn, r.BytesOut)
	}
	s += fmt.Sprintf("  %-12s %8d %14s %14v\n", "link", b.Delivered, "-", b.AvgTransmit.Round(time.Microsecond))
	return s
}
