package experiments

import (
	"testing"
	"time"

	"mobigate/internal/obs"
)

// TestFaultsSurvival runs a compact fault-injection scenario end to end:
// the supervised pipeline must conserve every message through panics, a
// stall, and a blackout, and the fault counters must be visible on the
// default metrics registry (what /metrics serves).
func TestFaultsSurvival(t *testing.T) {
	injBefore := metricValue(obs.MFaultInjectedTotal)
	panicsBefore := metricValue(obs.MFaultPanicsTotal)
	retriesBefore := metricValue(obs.MFaultRetriesTotal)

	cfg := FaultsConfig{
		Messages:       40,
		PanicAt:        []uint64{3, 9},
		StallAt:        14,
		StallFor:       40 * time.Millisecond,
		ProcessTimeout: 10 * time.Millisecond,
		BlackoutAfter:  20,
		BlackoutFor:    20 * time.Millisecond,
		BandwidthBps:   4_000_000,
		Seed:           7,
	}
	res, err := Faults(cfg)
	if err != nil {
		t.Fatalf("faults scenario failed: %v\n%s", err, res)
	}
	if res.Lost != 0 || res.Duplicates != 0 {
		t.Fatalf("conservation: %d lost, %d duplicated", res.Lost, res.Duplicates)
	}
	if res.InjPanics != 2 || res.InjStalls != 1 {
		t.Errorf("injected (panics, stalls) = (%d, %d), want (2, 1)", res.InjPanics, res.InjStalls)
	}
	if res.BlackoutDown < cfg.BlackoutFor {
		t.Errorf("blackout lasted %v, want >= %v", res.BlackoutDown, cfg.BlackoutFor)
	}

	// The run must leave its footprint on the shared registry: injections,
	// recovered panics, and retries all advanced.
	if got := metricValue(obs.MFaultInjectedTotal); got < injBefore+3 {
		t.Errorf("%s advanced by %d, want >= 3", obs.MFaultInjectedTotal, got-injBefore)
	}
	if got := metricValue(obs.MFaultPanicsTotal); got < panicsBefore+2 {
		t.Errorf("%s advanced by %d, want >= 2", obs.MFaultPanicsTotal, got-panicsBefore)
	}
	if got := metricValue(obs.MFaultRetriesTotal); got == retriesBefore {
		t.Errorf("%s did not advance", obs.MFaultRetriesTotal)
	}
}
