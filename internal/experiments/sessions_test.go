package experiments

import "testing"

// TestSessionsExperiment runs a scaled-down population with every phase
// (ramp, traffic, churn/handoff, overload, teardown) and relies on the
// experiment's internal asserts: conservation, bounded heap, admission.
func TestSessionsExperiment(t *testing.T) {
	cfg := DefaultSessionsConfig()
	cfg.Sessions = 2_000
	cfg.Rounds = 2
	cfg.Senders = 4
	cfg.MessagesPerSender = 500
	cfg.OverloadConnects = 8
	res, err := Sessions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakLive != cfg.Sessions {
		t.Fatalf("peak live %d, want %d", res.PeakLive, cfg.Sessions)
	}
	if res.Handoffs == 0 {
		t.Fatal("no cross-plane handoffs despite churn")
	}
	if res.Stats.AdmissionShed == 0 {
		t.Fatal("overload phase shed nothing")
	}
	t.Logf("\n%s", res)
}
