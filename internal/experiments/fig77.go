package experiments

import (
	"fmt"
	"time"

	"mobigate/internal/client"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/netem"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// WebAccelScript is the §7.5 web-acceleration application in MCL: incoming
// messages are divided by semantic type; images are down-sampled and
// transcoded; everything is merged and handed to the communicator for
// transmission. When the bandwidth falls below the threshold the text
// branch is rerouted through the Text Compressor (the LOW_BANDWIDTH
// reaction), and restored when bandwidth recovers.
const WebAccelScript = `
streamlet switch {
	port { in pi : */*; out po1 : image/*; out po2 : text/*; }
	attribute { type = STATELESS; library = "general/switch"; }
}
streamlet img_down_sample {
	port { in pi : image/*; out po : image/*; }
	attribute { type = STATELESS; library = "image/downsample"; }
}
streamlet gif2jpeg {
	port { in pi : image/*; out po : image/*; }
	attribute { type = STATELESS; library = "image/gif2jpeg"; }
}
streamlet text_compress {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
streamlet merge {
	port { in pi1 : image/*; in pi2 : text; out po : multipart/mixed; }
	attribute { type = STATEFUL; library = "general/merge"; }
}
streamlet communicator {
	port { in pi : */*; }
	attribute { type = STATEFUL; library = "net/communicator"; }
}
main stream webaccel {
	streamlet sw = new-streamlet (switch);
	streamlet ds = new-streamlet (img_down_sample);
	streamlet tj = new-streamlet (gif2jpeg);
	streamlet tc = new-streamlet (text_compress);
	streamlet mg = new-streamlet (merge);
	streamlet cm = new-streamlet (communicator);

	connect (sw.po1, ds.pi);
	connect (ds.po, tj.pi);
	connect (tj.po, mg.pi1);
	connect (sw.po2, mg.pi2);
	connect (mg.po, cm.pi);

	when (LOW_BANDWIDTH) {
		disconnect (sw.po2, mg.pi2);
		connect (sw.po2, tc.pi);
		connect (tc.po, mg.pi2);
	}
	when (HIGH_BANDWIDTH) {
		disconnect (sw.po2, tc.pi);
		disconnect (tc.po, mg.pi2);
		connect (sw.po2, mg.pi2);
	}
}
`

// CompressorThresholdBps is the bandwidth below which the Text Compressor
// is inserted (§7.5: 100 Kb/s).
const CompressorThresholdBps = 100_000

// PaperOverheadPerStreamlet is the per-streamlet processing overhead the
// thesis measured on its 2004 Java testbed (~12 ms, §7.2), used for the
// calibrated throughput column that reproduces the paper's convergence at
// high bandwidth.
const PaperOverheadPerStreamlet = 12 * time.Millisecond

// Fig77Config parameterizes the end-to-end sweep.
type Fig77Config struct {
	BandwidthsBps []int64
	Delays        []time.Duration
	// LossRate models link-layer retransmission overhead on both schemes.
	LossRate   float64
	Messages   int
	ImageRatio float64
	Seed       int64
}

// DefaultFig77Config mirrors the paper's sweep: 20 Kb/s … 2 Mb/s crossed
// with <1 ms, 50 ms and 100 ms delays.
func DefaultFig77Config() Fig77Config {
	return Fig77Config{
		BandwidthsBps: []int64{20_000, 50_000, 100_000, 200_000, 500_000, 750_000, 1_000_000, 2_000_000},
		Delays:        []time.Duration{time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond},
		Messages:      60,
		ImageRatio:    0.5,
		Seed:          2004,
	}
}

// Fig77Row is one point of Figure 7-7.
type Fig77Row struct {
	BandwidthBps int64
	Delay        time.Duration
	// WithoutBps is the information throughput of direct transfer (T1).
	WithoutBps float64
	// WithBps is the information throughput through MobiGATE on this
	// hardware (T2 with measured overhead).
	WithBps float64
	// WithCalibratedBps substitutes the thesis's 12 ms/streamlet overhead
	// for the measured one, reproducing the paper's high-bandwidth
	// convergence on 2004-era compute.
	WithCalibratedBps float64
	// Reconfigured reports whether the Text Compressor branch was active.
	Reconfigured bool
	// ReductionRatio is originalBytes / transmittedBytes.
	ReductionRatio float64
	// ServerInvocations counts streamlet executions on the gateway.
	ServerInvocations uint64
	// Dropped counts messages lost to full queues under burst load.
	Dropped uint64
}

// Fig77 runs the end-to-end throughput comparison over the emulated
// wireless link for every bandwidth × delay combination.
func Fig77(cfg Fig77Config) ([]Fig77Row, error) {
	var rows []Fig77Row
	for _, delay := range cfg.Delays {
		for _, bw := range cfg.BandwidthsBps {
			row, err := fig77Point(cfg, bw, delay)
			if err != nil {
				return nil, fmt.Errorf("fig7.7 bw=%d delay=%v: %w", bw, delay, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func fig77Point(cfg Fig77Config, bw int64, delay time.Duration) (Fig77Row, error) {
	row := Fig77Row{BandwidthBps: bw, Delay: delay}

	workload := services.MixedWorkload(cfg.Messages, cfg.ImageRatio, cfg.Seed)
	var origBytes int64
	for _, m := range workload {
		origBytes += netem.WireBytes(m)
	}

	// Baseline T1: direct transfer of the unadapted flow.
	direct := netem.MustNew(netem.Config{BandwidthBps: bw, Delay: delay, LossRate: cfg.LossRate})
	for _, m := range services.MixedWorkload(cfg.Messages, cfg.ImageRatio, cfg.Seed) {
		if err := direct.Send(m); err != nil {
			return row, err
		}
	}
	t1 := direct.Elapsed()
	direct.Close()
	row.WithoutBps = float64(origBytes*8) / t1.Seconds()

	// MobiGATE path: deploy the web-acceleration stream over a fresh link.
	link := netem.MustNew(netem.Config{BandwidthBps: bw, Delay: delay, LossRate: cfg.LossRate})
	defer link.Close()
	comm := &services.Communicator{SinkTo: link}
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	dir.Register("net/communicator", func() streamlet.Processor { return comm })

	compiled, err := mcl.Compile(WebAccelScript, nil)
	if err != nil {
		return row, err
	}
	st, err := stream.FromConfig(compiled, "webaccel", nil, dir)
	if err != nil {
		return row, err
	}
	defer st.End()
	inlet, err := st.OpenInlet(mcl.PortRef{Inst: "sw", Port: "pi"}, 1<<24)
	if err != nil {
		return row, err
	}
	st.Start()

	// Context awareness: the bandwidth monitor raises LOW_BANDWIDTH through
	// the event system and the stream's when-block inserts the compressor.
	if bw < CompressorThresholdBps {
		st.OnEvent(event.ContextEvent{EventID: event.LOW_BANDWIDTH, Category: event.NetworkVariation})
		row.Reconfigured = true
	}

	procStart := time.Now()
	for _, m := range services.MixedWorkload(cfg.Messages, cfg.ImageRatio, cfg.Seed) {
		if err := inlet.Send(m); err != nil {
			return row, err
		}
	}
	// Wait for every message to be accounted for: pushed onto the link by
	// the communicator, or dropped by a full queue along the way (§6.7's
	// wait-then-drop policy is part of the system under test).
	deadline := time.Now().Add(time.Minute)
	var delivered uint64
	for {
		sent, errs := comm.Stats()
		delivered = sent
		if sent+errs+st.Dropped() >= uint64(cfg.Messages) {
			break
		}
		if time.Now().After(deadline) {
			return row, fmt.Errorf("pipeline stalled: %d/%d messages", sent, cfg.Messages)
		}
		time.Sleep(100 * time.Microsecond)
	}
	serverWall := time.Since(procStart)
	row.ServerInvocations = st.Processed()
	row.Dropped = uint64(cfg.Messages) - delivered

	// Client-side reverse processing of everything that crossed the link.
	peers := streamlet.NewDirectory()
	services.RegisterClientPeers(peers)
	mc := client.New(client.Options{Peers: peers}, nil)
	clientStart := time.Now()
	received := 0
	for received < int(delivered) {
		d, err := link.Receive(time.Second)
		if err != nil {
			return row, fmt.Errorf("after %d deliveries: %w", received, err)
		}
		if _, err := mc.Process(d.Msg); err != nil {
			return row, err
		}
		received++
	}
	clientWall := time.Since(clientStart)

	sentBytes, _ := link.Stats()
	row.ReductionRatio = float64(origBytes) / float64(sentBytes)

	// Equation 7-2: T2 = Size_reduced/Band + T_overhead; the virtual link
	// clock supplies the transfer term, the measured walls the overhead.
	overheadMeasured := serverWall + clientWall
	t2 := link.Elapsed() + overheadMeasured
	row.WithBps = float64(origBytes*8) / t2.Seconds()

	// Calibrated column: replace the measured per-streamlet cost with the
	// thesis's 12 ms to model 2004-era proxy hardware.
	calibratedOverhead := time.Duration(row.ServerInvocations) * PaperOverheadPerStreamlet
	t2cal := link.Elapsed() + calibratedOverhead
	row.WithCalibratedBps = float64(origBytes*8) / t2cal.Seconds()
	return row, nil
}
