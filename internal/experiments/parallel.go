package experiments

// The parallel-execution experiment behind `mobibench -exp parallel` and
// `make parallel-smoke`: a throughput scaling curve (workers × CPU-bound
// transform chains) with exact-delivery and FIFO assertions, plus a
// content-addressed transcode-cache sweep whose hit path is counter-
// asserted to perform zero transform calls.

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mobigate/internal/cache"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// parSeqHeader carries the send-order stamp the receiver checks FIFO with.
const parSeqHeader = "X-Par-Seq"

// ParallelConfig parameterizes the experiment.
type ParallelConfig struct {
	// Workers are the fan-out widths of the scaling curve.
	Workers []int
	// Messages is how many messages each point pushes through the chain.
	Messages int
	// ImageSide is the square test-image edge (gif2jpeg chain input).
	ImageSide int
	// TextBytes is the text payload size (compress chain input).
	TextBytes int
	// Distinct is how many distinct bodies the cache sweep cycles through.
	Distinct int
	// Seed makes the generated workload reproducible.
	Seed int64
	// ReceiveTimeout bounds each outlet receive.
	ReceiveTimeout time.Duration
}

// DefaultParallelConfig returns the configuration the smoke gate runs.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{
		Workers:        []int{1, 2, 4, 8},
		Messages:       300,
		ImageSide:      64,
		TextBytes:      32 << 10,
		Distinct:       8,
		Seed:           7,
		ReceiveTimeout: 10 * time.Second,
	}
}

// ParallelRow is one point of the workers-scaling curve.
type ParallelRow struct {
	Service    string
	Workers    int
	Elapsed    time.Duration
	MsgsPerSec float64
	Sent       int
	Delivered  int
	Reorders   int
	// ReseqPeak is the resequencer's high-water pending depth (bounded by
	// workers-1 by construction; 0 in serial mode).
	ReseqPeak int64
	// Speedup is MsgsPerSec relative to the service's 1-worker row.
	Speedup float64
}

// CacheRow is one pass of the cache sweep.
type CacheRow struct {
	Label          string
	Messages       int
	HitRatio       float64
	MsgsPerSec     float64
	TransformCalls uint64 // transform executions during this pass
}

// ParallelResult is everything the experiment measured.
type ParallelResult struct {
	Cores     int
	Rows      []ParallelRow
	CacheRows []CacheRow
}

// String renders the result tables.
func (r *ParallelResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cores available: %d\n", r.Cores)
	if r.Cores < 4 {
		b.WriteString("(fewer than 4 cores: fan-out cannot speed up CPU-bound work here;\n" +
			" delivery and FIFO are still asserted, the speedup gate is skipped)\n")
	}
	b.WriteString("\n service    workers   msgs/s   speedup   sent  delivered  reorders  reseq-peak\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8s  %8d  %7.0f  %7.2fx  %5d  %9d  %8d  %10d\n",
			row.Service, row.Workers, row.MsgsPerSec, row.Speedup,
			row.Sent, row.Delivered, row.Reorders, row.ReseqPeak)
	}
	if len(r.CacheRows) > 0 {
		b.WriteString("\n cache pass      msgs   hit-ratio   msgs/s   transform-calls\n")
		for _, cr := range r.CacheRows {
			fmt.Fprintf(&b, "%11s  %6d  %9.2f  %7.0f  %15d\n",
				cr.Label, cr.Messages, cr.HitRatio, cr.MsgsPerSec, cr.TransformCalls)
		}
	}
	return b.String()
}

// chainProc builds the transform under test.
func chainProc(service string) (streamlet.Processor, error) {
	switch service {
	case "gif2jpeg":
		return &services.Transcoder{}, nil
	case "compress":
		return &services.Compressor{}, nil
	}
	return nil, fmt.Errorf("parallel: unknown service %q", service)
}

func chainInput(service string, cfg ParallelConfig, seed int64) *mime.Message {
	if service == "gif2jpeg" {
		return services.GenImageMessage(cfg.ImageSide, cfg.ImageSide, seed)
	}
	return services.GenTextMessage(cfg.TextBytes, seed)
}

// runParallelChain pushes cfg.Messages through inlet → service → outlet
// with the given fan-out width and checks conservation and FIFO. proc is
// the processor to deploy (possibly memo-wrapped); msgs are the payload
// templates cycled over (cloned per send).
func runParallelChain(service string, workers int, proc streamlet.Processor, msgs []*mime.Message, cfg ParallelConfig) (ParallelRow, error) {
	row := ParallelRow{Service: service, Workers: workers}
	pool := msgpool.New(msgpool.ByReference)
	st := stream.New(fmt.Sprintf("par-%s-%d", service, workers), pool, nil)
	if _, err := st.AddStreamlet("t", nil, proc); err != nil {
		return row, err
	}
	if err := st.Streamlet("t").SetWorkers(workers); err != nil {
		return row, err
	}
	in, err := st.OpenInlet(mcl.PortRef{Inst: "t", Port: "pi"}, 1<<24)
	if err != nil {
		return row, err
	}
	out, err := st.OpenOutlet(mcl.PortRef{Inst: "t", Port: "po"})
	if err != nil {
		return row, err
	}
	st.Start()
	defer st.End()

	sendErr := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < cfg.Messages; i++ {
			m := msgs[i%len(msgs)].Clone()
			m.SetHeader(parSeqHeader, strconv.Itoa(i))
			if err := in.Send(m); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		sendErr <- nil
	}()

	last := -1
	for i := 0; i < cfg.Messages; i++ {
		m, err := out.Receive(cfg.ReceiveTimeout)
		if err != nil {
			return row, fmt.Errorf("%s workers=%d: delivered %d of %d: %w",
				service, workers, row.Delivered, cfg.Messages, err)
		}
		row.Delivered++
		seq, err := strconv.Atoi(m.Header(parSeqHeader))
		if err != nil {
			return row, fmt.Errorf("%s workers=%d: message without %s stamp", service, workers, parSeqHeader)
		}
		if seq <= last {
			row.Reorders++
		}
		last = seq
	}
	row.Elapsed = time.Since(start)
	if err := <-sendErr; err != nil {
		return row, err
	}
	row.Sent = cfg.Messages
	row.MsgsPerSec = float64(row.Delivered) / row.Elapsed.Seconds()
	row.ReseqPeak = st.Streamlet("t").ResequencerPeak()
	return row, nil
}

// Parallel runs the scaling curve for both CPU-bound chains and the cache
// sweep, returning an error when any invariant the smoke gate relies on is
// broken: lost or duplicated messages, any reorder, a resequencer depth
// above its workers-1 bound, a sub-2x speedup at 4 workers on a ≥4-core
// machine, or a cache hit pass that executed the transform.
func Parallel(cfg ParallelConfig) (*ParallelResult, error) {
	res := &ParallelResult{Cores: runtime.GOMAXPROCS(0)}

	for _, service := range []string{"gif2jpeg", "compress"} {
		msgs := []*mime.Message{chainInput(service, cfg, cfg.Seed)}
		var base float64
		for _, w := range cfg.Workers {
			proc, err := chainProc(service)
			if err != nil {
				return res, err
			}
			row, err := runParallelChain(service, w, proc, msgs, cfg)
			if err != nil {
				return res, err
			}
			if row.Sent != row.Delivered {
				return res, fmt.Errorf("%s workers=%d: sent %d != delivered %d",
					service, w, row.Sent, row.Delivered)
			}
			if row.Reorders != 0 {
				return res, fmt.Errorf("%s workers=%d: %d reorders (FIFO violated)",
					service, w, row.Reorders)
			}
			if w > 1 && row.ReseqPeak > int64(w-1) {
				return res, fmt.Errorf("%s workers=%d: resequencer peak %d exceeds bound %d",
					service, w, row.ReseqPeak, w-1)
			}
			if w == 1 {
				base = row.MsgsPerSec
			}
			if base > 0 {
				row.Speedup = row.MsgsPerSec / base
			}
			res.Rows = append(res.Rows, row)
			// The speedup gate only means something when the hardware can
			// actually run 4 workers at once.
			if w == 4 && res.Cores >= 4 && row.Speedup < 2 {
				return res, fmt.Errorf("%s: %.2fx speedup at 4 workers on %d cores (want >= 2x)",
					service, row.Speedup, res.Cores)
			}
		}
	}

	if err := runCacheSweep(cfg, res); err != nil {
		return res, err
	}
	return res, nil
}

// runCacheSweep measures the content-addressed cache on the gif2jpeg chain:
// a cold pass over Distinct distinct bodies (all misses), then a warm pass
// cycling the same bodies (all hits). The warm pass must execute the
// transform zero times — that is the acceptance counter.
func runCacheSweep(cfg ParallelConfig, res *ParallelResult) error {
	c := cache.New(0)
	proc, err := chainProc("gif2jpeg")
	if err != nil {
		return err
	}
	memo, ok := cache.Wrap(proc, c).(*cache.Memo)
	if !ok {
		return fmt.Errorf("parallel: transcoder did not wrap into a cache memo")
	}
	msgs := make([]*mime.Message, cfg.Distinct)
	for i := range msgs {
		msgs[i] = chainInput("gif2jpeg", cfg, cfg.Seed+int64(i))
	}

	for _, pass := range []string{"cold", "warm"} {
		n := cfg.Messages
		if pass == "cold" {
			n = cfg.Distinct // one miss per distinct body
		}
		passCfg := cfg
		passCfg.Messages = n
		before := c.Stats()
		callsBefore := memo.InnerCalls()
		row, err := runParallelChain("gif2jpeg", 4, memo, msgs, passCfg)
		if err != nil {
			return fmt.Errorf("cache %s pass: %w", pass, err)
		}
		after := c.Stats()
		calls := memo.InnerCalls() - callsBefore
		hits := after.Hits - before.Hits
		lookups := hits + (after.Misses - before.Misses)
		cr := CacheRow{
			Label:          pass,
			Messages:       n,
			MsgsPerSec:     row.MsgsPerSec,
			TransformCalls: calls,
		}
		if lookups > 0 {
			cr.HitRatio = float64(hits) / float64(lookups)
		}
		res.CacheRows = append(res.CacheRows, cr)
		if pass == "warm" {
			if calls != 0 {
				return fmt.Errorf("cache warm pass: transform ran %d times (want 0)", calls)
			}
			if cr.HitRatio < 1 {
				return fmt.Errorf("cache warm pass: hit ratio %.2f (want 1.00)", cr.HitRatio)
			}
		}
	}
	return nil
}
