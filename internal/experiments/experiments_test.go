package experiments

import (
	"testing"
	"time"
)

func TestFig72ShapeLinear(t *testing.T) {
	rows, err := Fig72([]int{1, 10, 30}, 10*1024, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Delay must grow with the chain length once the per-streamlet work
	// dominates the fixed per-message cost (1 vs 30 is unambiguous).
	if rows[2].PerMessage <= rows[0].PerMessage {
		t.Errorf("delay not increasing: %v %v %v",
			rows[0].PerMessage, rows[1].PerMessage, rows[2].PerMessage)
	}
	// Roughly linear: tripling 10 -> 30 must stay well under quadratic.
	ratio := float64(rows[2].PerMessage) / float64(rows[1].PerMessage)
	if ratio > 6 {
		t.Errorf("3x chain length multiplied delay by %.1f", ratio)
	}
	for _, r := range rows {
		if r.PerStreamlet <= 0 {
			t.Errorf("per-streamlet delay %v", r.PerStreamlet)
		}
	}
}

func TestFig73ByReferenceWins(t *testing.T) {
	// 40 samples per mode: the median latency discriminates the per-hop copy
	// cost from scheduler jitter now that the coordination plane itself is
	// cheap; 8 samples was enough only when queue overhead dwarfed both.
	rows, err := Fig73([]int{10 * 1024, 400 * 1024}, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ByReference >= r.ByValue {
			t.Errorf("size %d: by-ref %v not faster than by-value %v",
				r.MessageBytes, r.ByReference, r.ByValue)
		}
	}
	// The gap must widen with message size (the paper's >200 KB knee).
	gapSmall := rows[0].ByValue - rows[0].ByReference
	gapLarge := rows[1].ByValue - rows[1].ByReference
	if gapLarge <= gapSmall {
		t.Errorf("gap did not widen: %v -> %v", gapSmall, gapLarge)
	}
}

func TestFig76ShapeAndBounds(t *testing.T) {
	rows, err := Fig76([]int{1, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].Total < rows[2].Total) {
		t.Errorf("reconfig time not increasing: %v vs %v", rows[0].Total, rows[2].Total)
	}
	// The paper bounds 10 insertions under 20 ms on 2004 hardware; modern
	// hardware must stay well under that.
	if rows[1].Total > 20*time.Millisecond {
		t.Errorf("10 insertions took %v", rows[1].Total)
	}
	for _, r := range rows {
		if r.Timing.Suspend+r.Timing.Channels+r.Timing.Activate <= 0 {
			t.Errorf("timing decomposition empty for n=%d", r.Inserted)
		}
	}
}

func TestEq71Decomposition(t *testing.T) {
	rows, err := Eq71([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Suspend <= 0 || r.Channels <= 0 || r.Activate <= 0 {
		t.Errorf("decomposition = %+v", r)
	}
}

func TestFig77PointLowBandwidth(t *testing.T) {
	cfg := Fig77Config{
		BandwidthsBps: []int64{50_000},
		Delays:        []time.Duration{time.Millisecond},
		Messages:      12,
		ImageRatio:    0.5,
		Seed:          7,
	}
	rows, err := Fig77(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !r.Reconfigured {
		t.Error("compressor not inserted below threshold")
	}
	if r.ReductionRatio <= 1.5 {
		t.Errorf("reduction ratio = %.2f", r.ReductionRatio)
	}
	// At 50 Kb/s MobiGATE must beat direct transfer decisively.
	if r.WithBps <= r.WithoutBps {
		t.Errorf("MobiGATE %.0f bps did not beat direct %.0f bps", r.WithBps, r.WithoutBps)
	}
	if r.WithCalibratedBps <= r.WithoutBps {
		t.Errorf("calibrated MobiGATE %.0f bps did not beat direct %.0f bps at low bandwidth",
			r.WithCalibratedBps, r.WithoutBps)
	}
}

func TestFig77ConvergenceCalibrated(t *testing.T) {
	cfg := Fig77Config{
		BandwidthsBps: []int64{20_000, 2_000_000},
		Delays:        []time.Duration{time.Millisecond},
		Messages:      12,
		ImageRatio:    0.5,
		Seed:          7,
	}
	rows, err := Fig77(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, high := rows[0], rows[1]
	if low.Reconfigured == false || high.Reconfigured {
		t.Errorf("reconfiguration flags: low=%v high=%v", low.Reconfigured, high.Reconfigured)
	}
	// The calibrated advantage ratio must shrink as bandwidth grows
	// (the paper's convergence at 2 Mb/s).
	advLow := low.WithCalibratedBps / low.WithoutBps
	advHigh := high.WithCalibratedBps / high.WithoutBps
	if advHigh >= advLow {
		t.Errorf("advantage did not shrink: %.2fx at 20Kb/s vs %.2fx at 2Mb/s", advLow, advHigh)
	}
}

func TestFig77DelaySensitivity(t *testing.T) {
	cfg := Fig77Config{
		BandwidthsBps: []int64{200_000},
		Delays:        []time.Duration{time.Millisecond, 100 * time.Millisecond},
		Messages:      10,
		ImageRatio:    0.5,
		Seed:          7,
	}
	rows, err := Fig77(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Higher delay lowers throughput on both schemes (per-message ack).
	if rows[1].WithoutBps >= rows[0].WithoutBps {
		t.Errorf("direct throughput insensitive to delay: %.0f vs %.0f",
			rows[0].WithoutBps, rows[1].WithoutBps)
	}
	if rows[1].WithBps >= rows[0].WithBps {
		t.Errorf("MobiGATE throughput insensitive to delay: %.0f vs %.0f",
			rows[0].WithBps, rows[1].WithBps)
	}
}

func TestWebAccelScriptCompiles(t *testing.T) {
	// The embedded MCL must stay compilable and carry both reactions.
	rows, err := Fig77(Fig77Config{
		BandwidthsBps: []int64{500_000},
		Delays:        []time.Duration{time.Millisecond},
		Messages:      4,
		ImageRatio:    1.0, // image-only flow exercises the image branch
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ReductionRatio <= 2 {
		t.Errorf("image pipeline reduction = %.2f", rows[0].ReductionRatio)
	}
}

func TestFig77LossSlowsBothSchemes(t *testing.T) {
	base := Fig77Config{
		BandwidthsBps: []int64{200_000},
		Delays:        []time.Duration{time.Millisecond},
		Messages:      8,
		ImageRatio:    0.5,
		Seed:          7,
	}
	clean, err := Fig77(base)
	if err != nil {
		t.Fatal(err)
	}
	lossy := base
	lossy.LossRate = 0.3
	noisy, err := Fig77(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if noisy[0].WithoutBps >= clean[0].WithoutBps {
		t.Errorf("loss did not slow direct transfer: %.0f vs %.0f",
			clean[0].WithoutBps, noisy[0].WithoutBps)
	}
	if noisy[0].WithBps >= clean[0].WithBps {
		t.Errorf("loss did not slow MobiGATE: %.0f vs %.0f",
			clean[0].WithBps, noisy[0].WithBps)
	}
	// MobiGATE still wins under loss.
	if noisy[0].WithBps <= noisy[0].WithoutBps {
		t.Error("MobiGATE lost its advantage under loss")
	}
}
