package experiments

// The health-model experiment behind `mobibench -exp health` and
// `make health-smoke`: it drives a shared-plane session table into
// overload, then asserts the whole observability loop the health model
// closes —
//
//   - the sheds degrade the "planes" component: /healthz flips to 503 with
//     the component named, a HEALTH_DEGRADED flight entry and context
//     event fire (edge-triggered, exactly once per transition);
//   - the autopilot can act on it: a when-policy over the new
//     health_degraded signal fires on the next tick;
//   - after the overload drains, three clean evaluations recover the
//     component: /healthz returns to 200 and HEALTH_RECOVERED fires;
//   - the live surfaces work end to end: /watch's first SSE frame carries
//     the registry (including the runtime collector's go_* series) and
//     /sessions decodes with the overloaded session in its heavy-hitter
//     lists.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mobigate/internal/adapt"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
	"mobigate/internal/server"
	"mobigate/internal/session"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"

	"mobigate/internal/services"
)

// healthScript is the adaptation target: the AdaptScript pipeline with one
// policy over the health_degraded signal instead of bandwidth.
const healthScript = `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet text_compress {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream guarded {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);

	when (health_degraded > 0) -> insert text_compress between hd and cm;
}
`

// HealthConfig parameterizes the experiment.
type HealthConfig struct {
	// Sessions is the connected population (big enough that the
	// deterministic 1/64 sampler selects a few).
	Sessions int
	// MessageBytes is the accounted size per overload message.
	MessageBytes int
	// ShedBytes is the plane saturation bound — kept tiny so overload is
	// cheap to reach.
	ShedBytes int
	// Timeout bounds every wait.
	Timeout time.Duration
}

// DefaultHealthConfig returns the smoke-scale run.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		Sessions:     512,
		MessageBytes: 256,
		ShedBytes:    4 << 10,
		Timeout:      30 * time.Second,
	}
}

// HealthResult is everything the experiment measured and asserted.
type HealthResult struct {
	Sessions        int
	LoadSheds       uint64
	DegradedStatus  int // /healthz status while degraded (must be 503)
	RecoveredStatus int // /healthz status after recovery (must be 200)
	PolicyActions   uint64
	HealthEvents    uint64 // HEALTH_* context events delivered
	FlightDegraded  int
	FlightRecovered int
	SampledSessions int
	HeapBytes       int64 // go_heap_bytes after one runtime collection
	Elapsed         time.Duration
}

// String renders the result.
func (r HealthResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health: %d sessions, %d load sheds (%v)\n",
		r.Sessions, r.LoadSheds, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  /healthz degraded   %d\n", r.DegradedStatus)
	fmt.Fprintf(&b, "  /healthz recovered  %d\n", r.RecoveredStatus)
	fmt.Fprintf(&b, "  policy actions      %d (when health_degraded > 0)\n", r.PolicyActions)
	fmt.Fprintf(&b, "  health events       %d (context events)\n", r.HealthEvents)
	fmt.Fprintf(&b, "  flight entries      %d degraded / %d recovered\n", r.FlightDegraded, r.FlightRecovered)
	fmt.Fprintf(&b, "  sampled sessions    %d (1/%d deterministic)\n", r.SampledSessions, obs.SessionStats().SampleRate())
	fmt.Fprintf(&b, "  go_heap_bytes       %d\n", r.HeapBytes)
	return b.String()
}

// healthEventProbe counts delivered HEALTH_* context events.
type healthEventProbe struct{ n atomic.Uint64 }

func (p *healthEventProbe) SubscriberName() string { return "health-probe" }
func (p *healthEventProbe) OnEvent(ev event.ContextEvent) {
	if ev.EventID == event.HEALTH_DEGRADED || ev.EventID == event.HEALTH_RECOVERED {
		p.n.Add(1)
	}
}

// Health runs the experiment and returns an error on any violated assert.
func Health(cfg HealthConfig) (HealthResult, error) {
	start := time.Now()
	var res HealthResult
	if cfg.Sessions <= 0 {
		cfg = DefaultHealthConfig()
	}
	res.Sessions = cfg.Sessions

	// Context-event wiring: health transitions become HEALTH_* events, the
	// same wiring mobigate-server performs at startup.
	em := event.NewManager(nil)
	defer em.Close()
	probe := &healthEventProbe{}
	em.Subscribe(event.ExecutionFault, probe)
	obs.Health().SetOnTransition(func(name string, healthy bool, reason string) {
		id := event.HEALTH_DEGRADED
		if healthy {
			id = event.HEALTH_RECOVERED
		}
		em.Post(event.ContextEvent{EventID: id, Category: event.ExecutionFault})
	})
	defer obs.Health().SetOnTransition(nil)

	// Baseline: the first Eval only primes the counter deltas, so sheds
	// from earlier work in this process are not charged to the model.
	obs.Health().Eval()
	seq0 := obs.Flight().Events()

	// The observability endpoint under test, on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	httpSrv := &http.Server{Handler: server.NewMetricsHandler(nil)}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// The adaptation target: a stream guarded by the health_degraded
	// policy, ticked manually like the production background ticker.
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	compiled, err := mcl.Compile(healthScript, nil)
	if err != nil {
		return res, err
	}
	st, err := stream.FromConfig(compiled, "guarded", nil, dir)
	if err != nil {
		return res, err
	}
	defer st.End()
	st.Start()
	eng := adapt.New(adapt.Config{Events: em})
	eng.Attach("guarded", st, compiled.Stream("guarded").Policies)
	defer eng.Close()

	// Overload: a session population posting into one tiny shared plane
	// with no consumer, so the queue saturates and the load-shedder fires.
	plane := session.NewPlane("health-plane",
		queue.New("health-q", queue.Options{CapacityBytes: 1 << 20}))
	tbl, err := session.NewTable(session.Config{
		ShedBytes: cfg.ShedBytes,
		Shards:    64,
	}, plane)
	if err != nil {
		return res, err
	}
	defer tbl.Close()

	sessions := make([]*session.Session, cfg.Sessions)
	for i := range sessions {
		s, err := tbl.Connect("health-" + strconv.Itoa(i))
		if err != nil {
			return res, fmt.Errorf("health: connect %d: %w", i, err)
		}
		sessions[i] = s
	}

	posted := 0
	for i := 0; tbl.Stats().LoadShed == 0; i++ {
		if i >= cfg.Sessions*64 {
			return res, fmt.Errorf("health: overload never shed after %d posts", i)
		}
		s := sessions[i%cfg.Sessions]
		id := strconv.Itoa(i%cfg.Sessions) + "/" + strconv.Itoa(i)
		if err := s.Post(id, cfg.MessageBytes, nil); err == nil {
			posted++
		}
	}
	res.LoadSheds = tbl.Stats().LoadShed

	// Degrade: the next evaluation must flip the planes component.
	snap := obs.Health().Eval()
	if snap.Healthy {
		return res, fmt.Errorf("health: model still healthy after %d load sheds", res.LoadSheds)
	}
	planesDegraded := false
	for _, c := range snap.Components {
		if c.Name == "planes" && !c.Healthy {
			planesDegraded = true
		}
	}
	if !planesDegraded {
		return res, fmt.Errorf("health: planes component not degraded: %+v", snap.Components)
	}
	if obs.DefaultIntGauge(obs.MHealthDegraded).Value() == 0 {
		return res, fmt.Errorf("health: %s gauge is zero while degraded", obs.MHealthDegraded)
	}
	res.DegradedStatus, err = healthzStatus(base, cfg.Timeout)
	if err != nil {
		return res, err
	}
	if res.DegradedStatus != http.StatusServiceUnavailable {
		return res, fmt.Errorf("health: /healthz while degraded: %d, want 503", res.DegradedStatus)
	}

	// The autopilot reacts: one tick of the health_degraded policy.
	eng.Tick()
	res.PolicyActions = eng.Actions()
	if res.PolicyActions < 1 {
		return res, fmt.Errorf("health: health_degraded policy never fired")
	}

	// Recover: drain the plane (the releases conserve the accounting),
	// then three clean evaluations flip the component back. The /healthz
	// probes below each re-evaluate, so poll until the hysteresis clears.
	q := plane.Queue()
	buf := make([]queue.Item, 256)
	for {
		n := q.TryFetchN(buf)
		if n == 0 {
			break
		}
		for _, it := range buf[:n] {
			idx, _ := strconv.Atoi(it.MsgID[:strings.IndexByte(it.MsgID, '/')])
			sessions[idx].Release(it.Size, int64(time.Millisecond))
		}
	}
	deadline := time.Now().Add(cfg.Timeout)
	for {
		res.RecoveredStatus, err = healthzStatus(base, cfg.Timeout)
		if err != nil {
			return res, err
		}
		if res.RecoveredStatus == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("health: /healthz stuck at %d after drain", res.RecoveredStatus)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Edge-triggering: exactly the transitions, journaled and posted.
	for _, e := range obs.Flight().Snapshot(0).Events {
		if e.Seq <= seq0 {
			continue
		}
		switch e.Code {
		case obs.FlightHealthDegraded:
			res.FlightDegraded++
		case obs.FlightHealthRecovered:
			res.FlightRecovered++
		}
	}
	if res.FlightDegraded == 0 || res.FlightRecovered == 0 {
		return res, fmt.Errorf("health: flight journal: %d degraded / %d recovered entries, want both >= 1",
			res.FlightDegraded, res.FlightRecovered)
	}
	evDeadline := time.Now().Add(2 * time.Second)
	for probe.n.Load() < 2 && time.Now().Before(evDeadline) {
		time.Sleep(time.Millisecond)
	}
	res.HealthEvents = probe.n.Load()
	if res.HealthEvents < 2 {
		return res, fmt.Errorf("health: %d HEALTH_* context events, want >= 2 (degraded + recovered)", res.HealthEvents)
	}

	// Live surfaces: /sessions decodes with the sampler and heavy hitters
	// populated, /watch's first SSE frame carries the registry.
	var sessSnap obs.SessionStatsSnapshot
	if err := getJSON(base+"/sessions", cfg.Timeout, &sessSnap); err != nil {
		return res, fmt.Errorf("health: /sessions: %w", err)
	}
	res.SampledSessions = sessSnap.Sampled
	if res.SampledSessions == 0 {
		return res, fmt.Errorf("health: sampler selected 0 of %d sessions", cfg.Sessions)
	}
	if len(sessSnap.TopBytes) == 0 {
		return res, fmt.Errorf("health: /sessions heavy-hitter topBytes empty after %d deliveries", posted)
	}
	obs.Runtime().Collect()
	res.HeapBytes = obs.DefaultIntGauge(obs.MGoHeapBytes).Value()
	if res.HeapBytes <= 0 {
		return res, fmt.Errorf("health: runtime collector left %s at %d", obs.MGoHeapBytes, res.HeapBytes)
	}
	frame, err := watchFirstFrame(base, cfg.Timeout)
	if err != nil {
		return res, fmt.Errorf("health: /watch: %w", err)
	}
	for _, want := range []string{obs.MGoHeapBytes, obs.MSessionLive, "\"health\""} {
		if !strings.Contains(frame, want) {
			return res, fmt.Errorf("health: /watch first frame missing %q", want)
		}
	}

	res.Elapsed = time.Since(start)
	return res, nil
}

// healthzStatus GETs /healthz and returns the status code.
func healthzStatus(base string, timeout time.Duration) (int, error) {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap obs.HealthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, fmt.Errorf("/healthz body: %w", err)
	}
	return resp.StatusCode, nil
}

// getJSON GETs a URL and decodes the JSON body.
func getJSON(url string, timeout time.Duration, v any) error {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// watchFirstFrame subscribes to /watch and returns the first SSE event
// (header line plus data payload) as text.
func watchFirstFrame(base string, timeout time.Duration) (string, error) {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(base + "/watch?interval=100ms")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/watch: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return "", fmt.Errorf("/watch content-type %q", ct)
	}
	var b strings.Builder
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		b.WriteString(line)
		if line == "\n" && b.Len() > 1 {
			return b.String(), nil
		}
		if err != nil {
			return b.String(), err
		}
	}
}
