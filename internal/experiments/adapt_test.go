package experiments

import "testing"

// TestAdapt runs a reduced schedule end to end: the function itself
// asserts the autopilot's win, the exact adaptation count, the
// observability triple and zero loss — a returned error is the failure.
func TestAdapt(t *testing.T) {
	cfg := DefaultAdaptConfig()
	for i := range cfg.Phases {
		cfg.Phases[i].Messages = 8
	}
	res, err := Adapt(cfg)
	if err != nil {
		t.Fatalf("Adapt: %v\n%s", err, res)
	}
	if got := len(res.Rows); got != 3 {
		t.Fatalf("rows = %d, want 3", got)
	}
	auto := res.Row("autopilot")
	if auto == nil || auto.Adaptations != 2 {
		t.Fatalf("autopilot row missing or wrong adaptation count: %+v", auto)
	}
}

func TestExpectedAdaptations(t *testing.T) {
	cases := []struct {
		bws  []int64
		want uint64
	}{
		{[]int64{12_000_000, 32_000, 12_000_000}, 2},
		{[]int64{32_000, 12_000_000}, 2},
		{[]int64{12_000_000, 12_000_000}, 0},
		{[]int64{32_000, 48_000, 12_000_000}, 2},
	}
	for _, c := range cases {
		cfg := AdaptConfig{}
		for _, bw := range c.bws {
			cfg.Phases = append(cfg.Phases, AdaptPhase{BandwidthBps: bw, Messages: 1})
		}
		if got := expectedAdaptations(cfg); got != c.want {
			t.Errorf("expectedAdaptations(%v) = %d, want %d", c.bws, got, c.want)
		}
	}
}
