// Package experiments regenerates every figure of the thesis's Chapter 7
// evaluation on the Go reproduction:
//
//	Figure 7-2 — streamlet overhead vs chain length (redirectors)
//	Figure 7-3 — passing by reference vs passing by value
//	Figure 7-6 — reconfiguration time vs number of inserted streamlets
//	Figure 7-7 — end-to-end throughput with/without MobiGATE
//	Equation 7-1 — decomposition of reconfiguration time
//
// Absolute numbers differ from the 2004 Java testbed (this runtime is three
// orders of magnitude faster); the shapes — linear overhead growth, the
// by-reference win that widens with message size, linear reconfiguration
// cost, and the MobiGATE throughput win that grows as bandwidth shrinks —
// are the reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/services"
	"mobigate/internal/stream"
)

// buildRedirectorChain composes entry → r1 → … → rk → exit over the given
// pool mode and returns the stream with its endpoints.
func buildRedirectorChain(k int, mode msgpool.Mode) (*stream.Stream, *stream.Inlet, *stream.Outlet, error) {
	pool := msgpool.New(mode)
	st := stream.New(fmt.Sprintf("chain-%d", k), pool, nil)
	var prev string
	for i := 0; i < k; i++ {
		id := fmt.Sprintf("r%d", i)
		if _, err := st.AddStreamlet(id, nil, services.Redirector{}); err != nil {
			return nil, nil, nil, err
		}
		if prev != "" {
			from := mcl.PortRef{Inst: prev, Port: "po"}
			to := mcl.PortRef{Inst: id, Port: "pi"}
			if err := st.Connect(from, to, nil); err != nil {
				return nil, nil, nil, err
			}
		}
		prev = id
	}
	in, err := st.OpenInlet(mcl.PortRef{Inst: "r0", Port: "pi"}, 1<<22)
	if err != nil {
		return nil, nil, nil, err
	}
	out, err := st.OpenOutlet(mcl.PortRef{Inst: prev, Port: "po"})
	if err != nil {
		return nil, nil, nil, err
	}
	st.Start()
	return st, in, out, nil
}

// Fig72Row is one point of Figure 7-2.
type Fig72Row struct {
	Streamlets   int
	PerMessage   time.Duration // mean end-to-end latency through the chain
	PerStreamlet time.Duration // PerMessage / Streamlets
}

// Fig72 measures per-message delay through chains of redirector streamlets
// (§7.2): msgs messages of msgSize bytes traverse each chain length in
// counts; the delay should grow linearly with the chain length.
func Fig72(counts []int, msgSize, msgs int) ([]Fig72Row, error) {
	rows := make([]Fig72Row, 0, len(counts))
	for _, k := range counts {
		st, in, out, err := buildRedirectorChain(k, msgpool.ByReference)
		if err != nil {
			return nil, err
		}
		perMsg, err := measureLatency(in, out, msgSize, msgs)
		st.End()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig72Row{
			Streamlets:   k,
			PerMessage:   perMsg,
			PerStreamlet: perMsg / time.Duration(k),
		})
	}
	return rows, nil
}

// measureLatency sends msgs messages one at a time (latency, not pipelined
// throughput — matching the §7.2 methodology) and returns the median
// per-message delay. The median, not the mean, is reported because a single
// scheduler preemption or GC pause inside one round trip would otherwise
// dominate a small sample.
func measureLatency(in *stream.Inlet, out *stream.Outlet, msgSize, msgs int) (time.Duration, error) {
	// Warm-up messages prime pools, buffer recycling, and the scheduler.
	for i := 0; i < 2; i++ {
		if err := roundTrip(in, out, msgSize, 0); err != nil {
			return 0, err
		}
	}
	samples := make([]time.Duration, msgs)
	for i := 0; i < msgs; i++ {
		start := time.Now()
		if err := roundTrip(in, out, msgSize, int64(i+1)); err != nil {
			return 0, err
		}
		samples[i] = time.Since(start)
	}
	return median(samples), nil
}

func roundTrip(in *stream.Inlet, out *stream.Outlet, msgSize int, seed int64) error {
	m := mime.NewMessage(services.TypePlainText, services.GenText(msgSize, seed))
	if err := in.Send(m); err != nil {
		return err
	}
	_, err := out.Receive(30 * time.Second)
	return err
}

// Fig73Row is one point of Figure 7-3.
type Fig73Row struct {
	MessageBytes int
	ByReference  time.Duration
	ByValue      time.Duration
}

// Fig73 compares the two buffer-management schemes (§7.3): messages of each
// size traverse a chain of `redirectors` streamlets under pass-by-reference
// and pass-by-value pools. Both chains are built up front and the round
// trips interleaved (ref, value, ref, value, …) so neither mode is measured
// against a colder process than the other — measuring the modes back to
// back systematically favors whichever runs second once the copy cost is
// within the run-to-run warm-up drift.
func Fig73(sizes []int, redirectors, msgs int) ([]Fig73Row, error) {
	rows := make([]Fig73Row, 0, len(sizes))
	for _, size := range sizes {
		stRef, inRef, outRef, err := buildRedirectorChain(redirectors, msgpool.ByReference)
		if err != nil {
			return nil, err
		}
		stVal, inVal, outVal, err := buildRedirectorChain(redirectors, msgpool.ByValue)
		if err != nil {
			stRef.End()
			return nil, err
		}
		refSamples := make([]time.Duration, 0, msgs)
		valSamples := make([]time.Duration, 0, msgs)
		for i := 0; i < 2; i++ { // warm both chains
			if err == nil {
				err = roundTrip(inRef, outRef, size, 0)
			}
			if err == nil {
				err = roundTrip(inVal, outVal, size, 0)
			}
		}
		for i := 0; err == nil && i < msgs; i++ {
			// Collect before each timed trip: the by-value chain leaves far
			// more garbage per trip than the by-reference one, and without
			// this the concurrent collector pays that debt inside the next
			// (by-reference) window, inverting the comparison.
			runtime.GC()
			start := time.Now()
			if err = roundTrip(inRef, outRef, size, int64(i+1)); err != nil {
				break
			}
			refSamples = append(refSamples, time.Since(start))
			runtime.GC()
			start = time.Now()
			if err = roundTrip(inVal, outVal, size, int64(i+1)); err != nil {
				break
			}
			valSamples = append(valSamples, time.Since(start))
		}
		stRef.End()
		stVal.End()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig73Row{
			MessageBytes: size,
			ByReference:  median(refSamples),
			ByValue:      median(valSamples),
		})
	}
	return rows, nil
}

func median(samples []time.Duration) time.Duration {
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	return samples[len(samples)/2]
}

// Fig76Row is one point of Figure 7-6.
type Fig76Row struct {
	Inserted int
	Total    time.Duration
	Timing   stream.ReconfigTiming
}

// Fig76 measures reconfiguration time (§7.4): the ReconfigExp reaction
// inserts n redirector streamlets into a running two-streamlet stream and
// records Te − Ts. The insertion point follows Figure 7-4's protocol for
// every streamlet added.
func Fig76(inserts []int) ([]Fig76Row, error) {
	rows := make([]Fig76Row, 0, len(inserts))
	for _, n := range inserts {
		st, _, _, err := buildRedirectorChain(2, msgpool.ByReference)
		if err != nil {
			return nil, err
		}
		// Pre-create the instances; the measured reaction is the
		// reconfiguration itself (suspend/rewire/activate), as in Fig 7-5
		// where ReconfigExp only times the insert loop.
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = fmt.Sprintf("ins%d", i)
			if _, err := st.AddStreamlet(ids[i], nil, services.Redirector{}); err != nil {
				st.End()
				return nil, err
			}
		}
		var agg stream.ReconfigTiming
		prev := "r0"
		ts := time.Now()
		for i := 0; i < n; i++ {
			if err := st.Insert(prev, "r1", ids[i], "pi", "po"); err != nil {
				st.End()
				return nil, err
			}
			t := st.LastReconfigTiming()
			agg.Suspend += t.Suspend
			agg.Channels += t.Channels
			agg.Activate += t.Activate
			prev = ids[i]
		}
		total := time.Since(ts)
		st.End()
		rows = append(rows, Fig76Row{Inserted: n, Total: total, Timing: agg})
	}
	return rows, nil
}

// Eq71Row decomposes one reconfiguration per Equation 7-1.
type Eq71Row struct {
	Inserted int
	Suspend  time.Duration // Σ s_i
	Channels time.Duration // n·c
	Activate time.Duration // Σ a_i
}

// Eq71 reports the suspend / channel-creation / activation terms of the
// reconfiguration-time equation for each insertion count.
func Eq71(inserts []int) ([]Eq71Row, error) {
	fig, err := Fig76(inserts)
	if err != nil {
		return nil, err
	}
	rows := make([]Eq71Row, len(fig))
	for i, r := range fig {
		rows[i] = Eq71Row{
			Inserted: r.Inserted,
			Suspend:  r.Timing.Suspend,
			Channels: r.Timing.Channels,
			Activate: r.Timing.Activate,
		}
	}
	return rows, nil
}
