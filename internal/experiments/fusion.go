package experiments

// The chain-fusion experiment behind `mobibench -exp fusion` and
// `make fusion-smoke`: the same stateless tagger chain run per-hop and
// fused, with byte-exact output, exact-delivery, and zero-reorder
// assertions — the end-to-end proof that fusion is purely a performance
// transformation — followed by a mid-run Insert into the fused segment
// that must de-fuse, apply under the Figure 7-4 drain protocol, and
// re-fuse around the spliced member with zero loss and the defuse/fuse
// pair journaled in the flight recorder.

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// fusionSeqHeader carries the send-order stamp the receiver checks FIFO with.
const fusionSeqHeader = "X-Fusion-Seq"

// FusionConfig parameterizes the experiment.
type FusionConfig struct {
	// Streamlets is the stateless-chain depth.
	Streamlets int
	// Messages is how many messages the fused-vs-unfused comparison pushes
	// through each mode.
	Messages int
	// InsertMessages is how many messages are in flight around the mid-run
	// Insert of the reconfiguration phase.
	InsertMessages int
	// TextBytes is the payload size per message.
	TextBytes int
	// Seed makes the generated payload reproducible.
	Seed int64
	// ReceiveTimeout bounds each outlet receive.
	ReceiveTimeout time.Duration
}

// DefaultFusionConfig returns the configuration the smoke gate runs.
func DefaultFusionConfig() FusionConfig {
	return FusionConfig{
		Streamlets:     5,
		Messages:       2000,
		InsertMessages: 400,
		TextBytes:      4 << 10,
		Seed:           17,
		ReceiveTimeout: 10 * time.Second,
	}
}

// FusionRow is one mode of the fused-vs-unfused comparison.
type FusionRow struct {
	Mode       string
	Segments   int
	Elapsed    time.Duration
	MsgsPerSec float64
	Sent       int
	Delivered  int
	Reorders   int
	// Digest hashes every delivered body in delivery order; equal digests
	// across modes mean byte-identical output in identical order.
	Digest uint64
}

// FusionResult is everything the experiment measured.
type FusionResult struct {
	Streamlets int
	Rows       []FusionRow
	// Speedup is fused msgs/s over unfused msgs/s.
	Speedup float64

	// The mid-run Insert phase.
	InsertSent      int
	InsertDelivered int
	InsertReorders  int
	// SegmentsAfterInsert renders the re-fused segment (must include the
	// spliced member).
	SegmentsAfterInsert string
	// DefuseJournaled / RefuseJournaled report the span-gated flight-
	// recorder pair around the reconfiguration.
	DefuseJournaled bool
	RefuseJournaled bool
}

// String renders the result tables.
func (r *FusionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stateless tagger chain, %d streamlets\n", r.Streamlets)
	b.WriteString("\n    mode  segments   msgs/s   sent  delivered  reorders            digest\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8s  %8d  %7.0f  %5d  %9d  %8d  %16x\n",
			row.Mode, row.Segments, row.MsgsPerSec,
			row.Sent, row.Delivered, row.Reorders, row.Digest)
	}
	fmt.Fprintf(&b, "\nfused speedup: %.2fx\n", r.Speedup)
	fmt.Fprintf(&b, "mid-run insert: %d sent, %d delivered, %d reorders; segments after: %s\n",
		r.InsertSent, r.InsertDelivered, r.InsertReorders, r.SegmentsAfterInsert)
	fmt.Fprintf(&b, "flight journal: defuse(insert)=%v refuse=%v\n",
		r.DefuseJournaled, r.RefuseJournaled)
	return b.String()
}

// fusionDecl is the eligibility ticket: only declared-STATELESS instances
// fuse.
func fusionDecl() *mcl.StreamletDecl { return &mcl.StreamletDecl{Kind: mcl.Stateless} }

// fusionTagger appends its id to the body, making the traversal path part
// of the byte-exactness comparison.
func fusionTagger(id string) streamlet.Processor {
	tag := []byte("|" + id)
	return streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		in.Msg.SetBody(append(in.Msg.Body(), tag...))
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})
}

// buildFusionChain constructs in -> g0 -> ... -> g<k-1> -> out, unstarted.
func buildFusionChain(name string, k int) (*stream.Stream, *stream.Inlet, *stream.Outlet, error) {
	st := stream.New(name, msgpool.New(msgpool.ByReference), nil)
	prev := ""
	for i := 0; i < k; i++ {
		id := fmt.Sprintf("g%d", i)
		if _, err := st.AddStreamlet(id, fusionDecl(), fusionTagger(id)); err != nil {
			return nil, nil, nil, err
		}
		if prev != "" {
			if err := st.Connect(mcl.PortRef{Inst: prev, Port: "po"}, mcl.PortRef{Inst: id, Port: "pi"}, nil); err != nil {
				return nil, nil, nil, err
			}
		}
		prev = id
	}
	in, err := st.OpenInlet(mcl.PortRef{Inst: "g0", Port: "pi"}, 1<<24)
	if err != nil {
		return nil, nil, nil, err
	}
	out, err := st.OpenOutlet(mcl.PortRef{Inst: prev, Port: "po"})
	if err != nil {
		return nil, nil, nil, err
	}
	return st, in, out, nil
}

// runFusionMode pushes cfg.Messages through the chain in one mode and
// checks conservation and FIFO at the outlet.
func runFusionMode(fused bool, cfg FusionConfig) (FusionRow, error) {
	row := FusionRow{Mode: "unfused"}
	if fused {
		row.Mode = "fused"
	}
	st, in, out, err := buildFusionChain("fusion-"+row.Mode, cfg.Streamlets)
	if err != nil {
		return row, err
	}
	if !fused {
		if err := st.SetFusion(false); err != nil {
			return row, err
		}
	}
	st.Start()
	defer st.End()
	row.Segments = len(st.FusedSegments())

	body := services.GenText(cfg.TextBytes, cfg.Seed)
	sendErr := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < cfg.Messages; i++ {
			m := mime.NewMessage(services.TypePlainText, body)
			m.SetHeader(fusionSeqHeader, strconv.Itoa(i))
			if err := in.Send(m); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		sendErr <- nil
	}()

	digest := fnv.New64a()
	last := -1
	for i := 0; i < cfg.Messages; i++ {
		m, err := out.Receive(cfg.ReceiveTimeout)
		if err != nil {
			return row, fmt.Errorf("%s: delivered %d of %d: %w",
				row.Mode, row.Delivered, cfg.Messages, err)
		}
		row.Delivered++
		digest.Write(m.Body())
		seq, err := strconv.Atoi(m.Header(fusionSeqHeader))
		if err != nil {
			return row, fmt.Errorf("%s: message without %s stamp", row.Mode, fusionSeqHeader)
		}
		if seq <= last {
			row.Reorders++
		}
		last = seq
	}
	row.Elapsed = time.Since(start)
	if err := <-sendErr; err != nil {
		return row, err
	}
	row.Sent = cfg.Messages
	row.MsgsPerSec = float64(row.Delivered) / row.Elapsed.Seconds()
	row.Digest = digest.Sum64()
	return row, nil
}

// runFusionInsert drives traffic through a fused chain while splicing a new
// member into the middle of the segment, then verifies conservation, FIFO,
// post-insert traversal, the re-fused shape, and the journaled defuse/fuse
// pair. Spans are enabled for the phase so the span-gated flight codes
// record.
func runFusionInsert(cfg FusionConfig, res *FusionResult) error {
	obs.SetSpansEnabled(true)
	defer obs.SetSpansEnabled(false)

	st, in, out, err := buildFusionChain("fusion-insert", cfg.Streamlets)
	if err != nil {
		return err
	}
	st.Start()
	defer st.End()
	if segs := st.FusedSegments(); len(segs) != 1 {
		return fmt.Errorf("insert phase: fused segments = %v, want one", segs)
	}

	body := services.GenText(cfg.TextBytes, cfg.Seed)
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < cfg.InsertMessages; i++ {
			m := mime.NewMessage(services.TypePlainText, body)
			m.SetHeader(fusionSeqHeader, strconv.Itoa(i))
			if err := in.Send(m); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		sendErr <- nil
	}()

	// Mid-run splice: g1 -> gx -> g2 inside the fused segment. The wrapper
	// de-fuses the segment, applies the Figure 7-4 insert protocol, and
	// re-fuses around the new member.
	inserted := make(chan error, 1)
	go func() {
		time.Sleep(2 * time.Millisecond)
		if _, err := st.AddStreamlet("gx", fusionDecl(), fusionTagger("gx")); err != nil {
			inserted <- err
			return
		}
		inserted <- st.Insert("g1", "g2", "gx", "pi", "po")
	}()

	last := -1
	for i := 0; i < cfg.InsertMessages; i++ {
		m, err := out.Receive(cfg.ReceiveTimeout)
		if err != nil {
			return fmt.Errorf("insert phase: delivered %d of %d: %w",
				res.InsertDelivered, cfg.InsertMessages, err)
		}
		res.InsertDelivered++
		seq, err := strconv.Atoi(m.Header(fusionSeqHeader))
		if err != nil {
			return fmt.Errorf("insert phase: message without %s stamp", fusionSeqHeader)
		}
		if seq <= last {
			res.InsertReorders++
		}
		last = seq
	}
	if err := <-sendErr; err != nil {
		return err
	}
	res.InsertSent = cfg.InsertMessages
	if err := <-inserted; err != nil {
		return fmt.Errorf("insert phase: %w", err)
	}

	// Post-insert traffic must traverse the spliced member.
	probe := mime.NewMessage(services.TypePlainText, []byte("probe"))
	if err := in.Send(probe); err != nil {
		return err
	}
	m, err := out.Receive(cfg.ReceiveTimeout)
	if err != nil {
		return fmt.Errorf("insert phase: post-insert probe lost: %w", err)
	}
	if got := string(m.Body()); !strings.Contains(got, "|gx") {
		return fmt.Errorf("insert phase: probe body %q never traversed gx", got)
	}

	var shapes []string
	for _, seg := range st.FusedSegments() {
		shapes = append(shapes, strings.Join(seg, ">"))
	}
	res.SegmentsAfterInsert = strings.Join(shapes, " ")
	if !strings.Contains(res.SegmentsAfterInsert, "gx") {
		return fmt.Errorf("insert phase: segments %q never re-fused around gx", res.SegmentsAfterInsert)
	}

	for _, e := range obs.Flight().Snapshot(0).Events {
		if e.Subject != st.Name() {
			continue
		}
		switch e.Code {
		case obs.FlightDefuse:
			if strings.HasPrefix(e.Detail, "insert ") {
				res.DefuseJournaled = true
			}
		case obs.FlightFuse:
			if strings.Contains(e.Detail, "gx") {
				res.RefuseJournaled = true
			}
		}
	}
	if !res.DefuseJournaled || !res.RefuseJournaled {
		return fmt.Errorf("insert phase: flight journal defuse(insert)=%v refuse=%v, want both",
			res.DefuseJournaled, res.RefuseJournaled)
	}
	return nil
}

// Fusion runs the comparison and the mid-run insert, returning an error
// when any invariant the smoke gate relies on is broken: lost or reordered
// messages, output bytes differing between modes, a fused run that is not
// faster, a chain that failed to fuse (or to stay per-hop when disabled),
// or a reconfiguration that did not de-fuse, apply, and re-fuse with the
// journaled flight pair.
func Fusion(cfg FusionConfig) (*FusionResult, error) {
	res := &FusionResult{Streamlets: cfg.Streamlets}
	var rows [2]FusionRow
	for i, fused := range []bool{false, true} {
		row, err := runFusionMode(fused, cfg)
		if err != nil {
			return res, err
		}
		if row.Sent != row.Delivered {
			return res, fmt.Errorf("%s: sent %d != delivered %d", row.Mode, row.Sent, row.Delivered)
		}
		if row.Reorders != 0 {
			return res, fmt.Errorf("%s: %d reorders (FIFO violated)", row.Mode, row.Reorders)
		}
		rows[i] = row
		res.Rows = append(res.Rows, row)
	}
	if rows[0].Segments != 0 {
		return res, fmt.Errorf("unfused: %d fused segments with fusion disabled", rows[0].Segments)
	}
	if rows[1].Segments != 1 {
		return res, fmt.Errorf("fused: %d fused segments, want the whole chain in one", rows[1].Segments)
	}
	if rows[0].Digest != rows[1].Digest {
		return res, fmt.Errorf("output diverged: unfused digest %x != fused digest %x",
			rows[0].Digest, rows[1].Digest)
	}
	res.Speedup = rows[1].MsgsPerSec / rows[0].MsgsPerSec
	if res.Speedup <= 1.0 {
		return res, fmt.Errorf("fused run not faster: %.2fx", res.Speedup)
	}
	if err := runFusionInsert(cfg, res); err != nil {
		return res, err
	}
	if res.InsertSent != res.InsertDelivered {
		return res, fmt.Errorf("insert phase: sent %d != delivered %d", res.InsertSent, res.InsertDelivered)
	}
	if res.InsertReorders != 0 {
		return res, fmt.Errorf("insert phase: %d reorders across the defuse/refuse", res.InsertReorders)
	}
	return res, nil
}
