package experiments

// The batched-handoff experiment behind `mobibench -exp batch` and
// `make batch-smoke`: the same redirector chain swept across handoff batch
// sizes, with exact-delivery and zero-reorder assertions at every point.
// The sweep is the end-to-end proof that `batch = N` is purely a
// performance knob — batching amortizes the per-handoff lock, broadcast,
// and clock costs but must never lose, duplicate, or reorder a message.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/stream"
)

// batchSeqHeader carries the send-order stamp the receiver checks FIFO with.
const batchSeqHeader = "X-Batch-Seq"

// BatchConfig parameterizes the experiment.
type BatchConfig struct {
	// Batches are the handoff batch sizes of the sweep.
	Batches []int
	// Streamlets is the redirector-chain depth.
	Streamlets int
	// Messages is how many messages each point pushes through the chain.
	Messages int
	// TextBytes is the payload size per message.
	TextBytes int
	// Seed makes the generated payload reproducible.
	Seed int64
	// ReceiveTimeout bounds each outlet receive.
	ReceiveTimeout time.Duration
}

// DefaultBatchConfig returns the configuration the smoke gate runs.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{
		Batches:        []int{1, 8, 32, 64},
		Streamlets:     4,
		Messages:       400,
		TextBytes:      4 << 10,
		Seed:           11,
		ReceiveTimeout: 10 * time.Second,
	}
}

// BatchRow is one point of the batch sweep.
type BatchRow struct {
	Batch      int
	Elapsed    time.Duration
	MsgsPerSec float64
	Sent       int
	Delivered  int
	Reorders   int
	// Flushes is how many batched PostN flushes the point performed
	// (gateway-wide delta; 0 at batch = 1, which uses the classic
	// per-message Post).
	Flushes uint64
	// MeanDrain is the mean FetchN drain size during the point — the
	// amortization actually achieved, as opposed to the configured ceiling.
	MeanDrain float64
	// Speedup is MsgsPerSec relative to the batch = 1 row.
	Speedup float64
}

// BatchResult is everything the experiment measured.
type BatchResult struct {
	Streamlets int
	Rows       []BatchRow
}

// String renders the result table.
func (r *BatchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "redirector chain, %d streamlets\n", r.Streamlets)
	b.WriteString("\n batch   msgs/s   speedup   sent  delivered  reorders  flushes  mean-drain\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d  %7.0f  %7.2fx  %5d  %9d  %8d  %7d  %10.1f\n",
			row.Batch, row.MsgsPerSec, row.Speedup,
			row.Sent, row.Delivered, row.Reorders, row.Flushes, row.MeanDrain)
	}
	return b.String()
}

// runBatchChain pushes cfg.Messages through a redirector chain whose every
// streamlet drains and emits in batches of n, and checks conservation and
// FIFO at the outlet.
func runBatchChain(n int, cfg BatchConfig) (BatchRow, error) {
	row := BatchRow{Batch: n}
	pool := msgpool.New(msgpool.ByReference)
	st := stream.New(fmt.Sprintf("batch-%d", n), pool, nil)
	prev := ""
	for i := 0; i < cfg.Streamlets; i++ {
		id := fmt.Sprintf("r%d", i)
		if _, err := st.AddStreamlet(id, nil, services.Redirector{}); err != nil {
			return row, err
		}
		if err := st.Streamlet(id).SetBatch(n); err != nil {
			return row, err
		}
		if prev != "" {
			if err := st.Connect(mcl.PortRef{Inst: prev, Port: "po"}, mcl.PortRef{Inst: id, Port: "pi"}, nil); err != nil {
				return row, err
			}
		}
		prev = id
	}
	in, err := st.OpenInlet(mcl.PortRef{Inst: "r0", Port: "pi"}, 1<<24)
	if err != nil {
		return row, err
	}
	out, err := st.OpenOutlet(mcl.PortRef{Inst: prev, Port: "po"})
	if err != nil {
		return row, err
	}
	st.Start()
	defer st.End()

	flushes := obs.DefaultCounter(obs.MBatchFlushesTotal)
	drains := obs.DefaultHistogram(obs.MBatchFetchSize, nil)
	flushes0 := flushes.Value()
	drains0 := drains.Snapshot()

	body := services.GenText(cfg.TextBytes, cfg.Seed)
	sendErr := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < cfg.Messages; i++ {
			m := mime.NewMessage(services.TypePlainText, body)
			m.SetHeader(batchSeqHeader, strconv.Itoa(i))
			if err := in.Send(m); err != nil {
				sendErr <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		sendErr <- nil
	}()

	last := -1
	for i := 0; i < cfg.Messages; i++ {
		m, err := out.Receive(cfg.ReceiveTimeout)
		if err != nil {
			return row, fmt.Errorf("batch=%d: delivered %d of %d: %w",
				n, row.Delivered, cfg.Messages, err)
		}
		row.Delivered++
		seq, err := strconv.Atoi(m.Header(batchSeqHeader))
		if err != nil {
			return row, fmt.Errorf("batch=%d: message without %s stamp", n, batchSeqHeader)
		}
		if seq <= last {
			row.Reorders++
		}
		last = seq
	}
	row.Elapsed = time.Since(start)
	if err := <-sendErr; err != nil {
		return row, err
	}
	row.Sent = cfg.Messages
	row.MsgsPerSec = float64(row.Delivered) / row.Elapsed.Seconds()
	row.Flushes = flushes.Value() - flushes0
	if d := drains.Snapshot(); d.Count > drains0.Count {
		row.MeanDrain = (d.Sum - drains0.Sum) / float64(d.Count-drains0.Count)
	}
	return row, nil
}

// Batch runs the sweep and returns an error when any invariant the smoke
// gate relies on is broken: lost or duplicated messages, or any reorder.
// Throughput is reported but not gated — the win depends on load and
// hardware; delivery and order must not.
func Batch(cfg BatchConfig) (*BatchResult, error) {
	res := &BatchResult{Streamlets: cfg.Streamlets}
	var base float64
	for _, n := range cfg.Batches {
		row, err := runBatchChain(n, cfg)
		if err != nil {
			return res, err
		}
		if row.Sent != row.Delivered {
			return res, fmt.Errorf("batch=%d: sent %d != delivered %d", n, row.Sent, row.Delivered)
		}
		if row.Reorders != 0 {
			return res, fmt.Errorf("batch=%d: %d reorders (FIFO violated)", n, row.Reorders)
		}
		if base == 0 {
			base = row.MsgsPerSec
		}
		if base > 0 {
			row.Speedup = row.MsgsPerSec / base
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
