// Package session maps many logical client sessions onto a small number of
// shared data planes — the inverse of the front-end's per-connection
// DeployInstance model, where every client pays for its own streamlet
// chain. Here one deployed chain (or a pool of them) serves thousands of
// sessions: a Session is pure accounting — an identifier, a byte/message
// quota, and a lifecycle — while the messages themselves flow through the
// shared plane's ordinary gated queues.
//
// Three protection layers keep a shared plane fair and bounded:
//
//   - per-session quotas (bytes and messages outstanding), enforced at
//     Post/PostN before the message reaches the shared queue, so one
//     runaway session cannot occupy the plane's whole buffer (the §4.2.2
//     buffer-occupancy bound applied per session instead of per queue);
//   - a load-shedder: once the plane's queue occupancy crosses the
//     configured high-water mark, posts from admitted sessions are shed
//     (fail fast) instead of entering the §6.2 wait-then-drop grace path,
//     which would stall every session behind the saturated buffer;
//   - an admission controller: new sessions are refused outright when the
//     table is at capacity or the target plane is already shedding, so
//     connect storms degrade by rejecting newcomers rather than by
//     dragging down sessions already in flight.
//
// Both shedding layers feed the mobigate_session_* counters; deliveries
// feed the per-plane SLO tracker in internal/obs when a budget is
// configured. The steady-state hot path (Admit/Post/Release) performs only
// atomic arithmetic plus the underlying queue operation — no allocation,
// no map access, no time.Now.
package session

import (
	"errors"
	"fmt"
	"sync/atomic"

	"mobigate/internal/obs"
	"mobigate/internal/queue"
)

// Shedding and lifecycle errors. All are terminal for the message (or the
// connect attempt), never for the session.
var (
	// ErrAdmission is returned by Connect when the admission controller
	// refuses a new session (table full or target plane saturated).
	ErrAdmission = errors.New("session: admission refused")
	// ErrQuota is returned by Post/PostN when the message would exceed the
	// session's outstanding byte or message quota.
	ErrQuota = errors.New("session: quota exhausted")
	// ErrShed is returned by Post/PostN when the shared plane is above its
	// high-water mark and the load-shedder dropped the message.
	ErrShed = errors.New("session: plane saturated, message shed")
	// ErrClosed is returned by Post/PostN on a draining or closed session.
	ErrClosed = errors.New("session: closed")
	// ErrDuplicate is returned by Connect when the id is already live.
	ErrDuplicate = errors.New("session: id already connected")
)

// State is a session lifecycle stage. Transitions only move forward
// (Active ⇄ Idle excepted): Connect → Active ⇄ Idle → Draining → Closed.
type State int32

const (
	// StateActive: admitted and recently posting.
	StateActive State = iota + 1
	// StateIdle: admitted but quiet past the sweep threshold; the first
	// Post promotes it back to Active.
	StateIdle
	// StateDraining: disconnected with messages still in flight on the
	// plane; posts are refused, releases still accounted.
	StateDraining
	// StateClosed: fully drained and removed. Terminal.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateIdle:
		return "idle"
	case StateDraining:
		return "draining"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state-%d", int32(s))
}

var (
	mSessConnects    = obs.DefaultCounter(obs.MSessionConnectsTotal)
	mSessDisconnects = obs.DefaultCounter(obs.MSessionDisconnectsTotal)
	mSessAdmitShed   = obs.DefaultCounter(obs.MSessionAdmitShedTotal)
	mSessLoadShed    = obs.DefaultCounter(obs.MSessionLoadShedTotal)
	mSessQuotaShed   = obs.DefaultCounter(obs.MSessionQuotaShedTotal)
	mSessSLOViol     = obs.DefaultCounter(obs.MSessionSLOViolationsTotal)
	mSessLive        = obs.DefaultIntGauge(obs.MSessionLive)
	mSessDraining    = obs.DefaultIntGauge(obs.MSessionDraining)
	mSessQueued      = obs.DefaultIntGauge(obs.MSessionQueuedBytes)
)

// Session is one logical client session multiplexed onto a shared plane.
// All methods are safe for concurrent use. The struct is a fixed ~160
// bytes regardless of traffic — session state is accounting, never
// buffered messages (those live in the plane's queue and the message
// pool) — which is what keeps per-session memory flat at high counts.
type Session struct {
	id    string
	table *Table
	plane *Plane

	// hash is the table's FNV-1a of the id, reused for the heavy-hitter
	// shard pick; slot is the per-session SLO window, non-nil only for the
	// ~1/rate of sessions the deterministic sampler selects. Both are
	// written before the session is published and never after.
	hash uint32
	slot *obs.SessionSlot

	state atomic.Int32

	// Outstanding-quota accounting: reserved at Admit, returned at Release
	// (delivery) or rollback (failed post).
	queuedBytes atomic.Int64
	queuedMsgs  atomic.Int64

	// lastActive is the obs monotonic stamp of the most recent admit; the
	// idle sweep compares against it.
	lastActive atomic.Int64

	posted    atomic.Uint64
	delivered atomic.Uint64
	shed      atomic.Uint64
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Plane returns the shared plane this session is mapped onto.
func (s *Session) Plane() *Plane { return s.plane }

// State returns the current lifecycle stage.
func (s *Session) State() State { return State(s.state.Load()) }

// Sampled reports whether the deterministic SLO sampler selected this
// session (its delivery latencies feed a per-session quantile window on
// /sessions).
func (s *Session) Sampled() bool { return s.slot != nil }

// Outstanding returns the messages admitted but not yet released.
func (s *Session) Outstanding() int64 { return s.queuedMsgs.Load() }

// OutstandingBytes returns the bytes admitted but not yet released.
func (s *Session) OutstandingBytes() int64 { return s.queuedBytes.Load() }

// Stats returns the session's lifetime message counts. Conservation holds
// at quiescence: posted == delivered + (rolled-back posts); shed counts
// messages refused before reaching the plane (quota or load shed).
func (s *Session) Stats() (posted, delivered, shed uint64) {
	return s.posted.Load(), s.delivered.Load(), s.shed.Load()
}

// Admit reserves quota for one message of the given size: it promotes an
// idle session, applies the load-shedder, and charges the byte and message
// quotas. Callers that admit successfully must either post the message to
// the plane and eventually Release it, or roll the reservation back with
// Unadmit. Post/PostN do all of this; Admit is exported for callers that
// drive the plane queue themselves (the server front-end posts through a
// stream inlet, not through Session.Post).
func (s *Session) Admit(size int) error {
	for {
		st := State(s.state.Load())
		if st == StateActive {
			break
		}
		if st == StateIdle {
			if s.state.CompareAndSwap(int32(StateIdle), int32(StateActive)) {
				break
			}
			continue
		}
		return ErrClosed
	}
	t := s.table
	if s.plane.queuedBytes() >= t.cfg.ShedBytes {
		s.shed.Add(1)
		t.loadShed.Add(1)
		mSessLoadShed.Inc()
		obs.SessionStats().ObserveShed(s.hash, s.id)
		return ErrShed
	}
	if s.queuedMsgs.Add(1) > t.cfg.QuotaMessages {
		s.queuedMsgs.Add(-1)
		s.shed.Add(1)
		t.quotaShed.Add(1)
		mSessQuotaShed.Inc()
		obs.SessionStats().ObserveShed(s.hash, s.id)
		return ErrQuota
	}
	if s.queuedBytes.Add(int64(size)) > t.cfg.QuotaBytes {
		s.queuedBytes.Add(int64(-size))
		s.queuedMsgs.Add(-1)
		s.shed.Add(1)
		t.quotaShed.Add(1)
		mSessQuotaShed.Inc()
		obs.SessionStats().ObserveShed(s.hash, s.id)
		return ErrQuota
	}
	mSessQueued.Add(int64(size))
	s.lastActive.Store(obs.MonoNow())
	return nil
}

// MarkPosted counts a message the caller posted to the plane itself after
// a successful Admit — the path for callers that post through a stream
// inlet (which pools the message body) rather than Session.Post.
func (s *Session) MarkPosted() {
	s.posted.Add(1)
	s.table.posted.Add(1)
}

// Unadmit rolls back a reservation whose message never reached the plane
// (the post failed or was abandoned). Not a delivery: the message neither
// counts as posted nor as delivered.
func (s *Session) Unadmit(size int) { s.release(size, false, 0) }

// Release returns one delivered message's reservation. latencyNs, when
// positive, is the message's end-to-end plane latency and feeds the
// plane's SLO chain. The final Release of a draining session completes its
// close.
func (s *Session) Release(size int, latencyNs int64) { s.release(size, true, latencyNs) }

func (s *Session) release(size int, delivered bool, latencyNs int64) {
	// All per-session observation happens BEFORE the outstanding-message
	// decrement: the final decrement is what lets finishClose return the
	// sampler slot to the pool, so observing first makes every Observe
	// happen-before the slot can be reused by another session.
	if delivered {
		s.delivered.Add(1)
		s.table.delivered.Add(1)
		obs.SessionStats().ObserveRelease(s.hash, s.id, int64(size))
		if latencyNs > 0 {
			if s.table.cfg.SLOBudget > 0 {
				obs.SLO().Observe(s.plane.name, latencyNs)
			}
			if s.slot != nil && s.slot.Observe(latencyNs, int64(s.table.cfg.SLOBudget)) {
				mSessSLOViol.Inc()
				obs.SessionStats().ObserveViolation(s.hash, s.id)
			}
		}
	}
	s.queuedBytes.Add(int64(-size))
	left := s.queuedMsgs.Add(-1)
	mSessQueued.Add(int64(-size))
	if left == 0 && State(s.state.Load()) == StateDraining {
		s.finishClose("drained")
	}
}

// Post admits one message against the session's quota and posts it to the
// shared plane's queue. The reservation is rolled back when the queue
// refuses the message (closed, canceled, or dropped after the §6.2 grace).
func (s *Session) Post(msgID string, size int, stop <-chan struct{}) error {
	if err := s.Admit(size); err != nil {
		return err
	}
	if err := s.plane.q.Post(msgID, size, stop); err != nil {
		s.Unadmit(size)
		return err
	}
	s.posted.Add(1)
	s.table.posted.Add(1)
	return nil
}

// PostN admits and posts a batch. Entries that fail admission (quota or
// load shed) are skipped, not retried; entries the queue refuses are
// rolled back. It returns how many entries reached the plane and how many
// were shed by this layer; err reports a queue-level failure (the batch
// may be partially posted).
func (s *Session) PostN(entries []queue.Entry, stop <-chan struct{}) (posted, shed int, err error) {
	// Admit the longest prefix that fits, then hand it to the queue as one
	// batched post; the rest of the batch is shed under the same class as
	// the entry that broke the prefix (a saturated plane or an exhausted
	// quota does not recover within one batch).
	fit := 0
	var admitErr error
	for _, e := range entries {
		if admitErr = s.Admit(e.Size); admitErr != nil {
			if admitErr == ErrClosed {
				return 0, 0, admitErr
			}
			break
		}
		fit++
	}
	shed = len(entries) - fit
	for i := fit + 1; i < len(entries); i++ {
		// The entry that failed admission was counted inside Admit; count
		// the tail it doomed without re-running admission per entry.
		s.shed.Add(1)
		obs.SessionStats().ObserveShed(s.hash, s.id)
		if admitErr == ErrShed {
			s.table.loadShed.Add(1)
			mSessLoadShed.Inc()
		} else {
			s.table.quotaShed.Add(1)
			mSessQuotaShed.Inc()
		}
	}
	if fit == 0 {
		return 0, shed, nil
	}
	// The queue guarantees n + len(failed) == fit, so rolling back exactly
	// the failed indices keeps the reservation accounting conserved.
	n, failed, qerr := s.plane.q.PostN(entries[:fit], stop)
	for _, i := range failed {
		s.Unadmit(entries[i].Size)
	}
	s.posted.Add(uint64(n))
	s.table.posted.Add(uint64(n))
	return n, shed, qerr
}

// beginDisconnect moves the session out of the admitted states. The caller
// has already removed it from the table.
func (s *Session) beginDisconnect() {
	for {
		st := State(s.state.Load())
		if st == StateDraining || st == StateClosed {
			return
		}
		if s.state.CompareAndSwap(int32(st), int32(StateDraining)) {
			break
		}
	}
	s.table.live.Add(-1)
	mSessLive.Add(-1)
	s.table.draining.Add(1)
	mSessDraining.Add(1)
	if s.queuedMsgs.Load() == 0 {
		s.finishClose("drained")
	}
}

// Abort force-completes a draining session whose remaining in-flight
// messages will never be released (the plane dropped them, or the consumer
// routing this session is gone). Only the disconnecting owner may call it,
// after no further Release calls can occur; outstanding reservations are
// reconciled so the table-wide gauges stay exact.
func (s *Session) Abort() {
	if State(s.state.Load()) != StateDraining {
		return
	}
	if b := s.queuedBytes.Swap(0); b != 0 {
		mSessQueued.Add(-b)
	}
	s.queuedMsgs.Store(0)
	s.finishClose("forced")
}

// finishClose performs the Draining → Closed transition exactly once.
func (s *Session) finishClose(how string) {
	if !s.state.CompareAndSwap(int32(StateDraining), int32(StateClosed)) {
		return
	}
	s.table.draining.Add(-1)
	mSessDraining.Add(-1)
	s.table.disconnects.Add(1)
	mSessDisconnects.Inc()
	// Safe to recycle: the closing path runs only after the final
	// outstanding-message decrement, and every slot Observe precedes its
	// own decrement (see release).
	obs.SessionStats().FreeSlot(s.slot)
	if obs.SpansEnabled() {
		// Lifecycle journaling follows the data-plane rule (see the flight
		// recorder's package comment): at session-churn rates an always-on
		// record would overwrite the control-plane history it contextualizes.
		obs.FlightRecord(obs.FlightSessionDisconnect, s.id, how, int64(s.delivered.Load()))
	}
}
