package session

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mobigate/internal/obs"
	"mobigate/internal/queue"
)

func newTable(t *testing.T, cfg Config, planes int) (*Table, []*Plane) {
	t.Helper()
	ps := make([]*Plane, planes)
	for i := range ps {
		ps[i] = NewPlane(fmt.Sprintf("plane-%d", i), queue.New(fmt.Sprintf("plane-q-%d", i), queue.Options{CapacityBytes: 1 << 24}))
	}
	tbl, err := NewTable(cfg, ps...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tbl.Close)
	return tbl, ps
}

func TestSessionLifecycle(t *testing.T) {
	tbl, _ := newTable(t, Config{}, 1)
	s, err := tbl.Connect("alice")
	if err != nil {
		t.Fatal(err)
	}
	if s.State() != StateActive || tbl.Len() != 1 {
		t.Fatalf("state=%v live=%d after connect", s.State(), tbl.Len())
	}
	if _, err := tbl.Connect("alice"); err != ErrDuplicate {
		t.Fatalf("duplicate connect: %v", err)
	}
	if got := tbl.Get("alice"); got != s {
		t.Fatal("Get did not return the live session")
	}

	if err := s.Post("m1", 100, nil); err != nil {
		t.Fatal(err)
	}
	if s.Outstanding() != 1 || s.OutstandingBytes() != 100 {
		t.Fatalf("outstanding = %d msgs / %d bytes", s.Outstanding(), s.OutstandingBytes())
	}

	// Disconnect with one message in flight: draining, not closed.
	if !tbl.Disconnect("alice") {
		t.Fatal("disconnect reported unknown id")
	}
	if s.State() != StateDraining || tbl.Draining() != 1 || tbl.Len() != 0 {
		t.Fatalf("state=%v draining=%d live=%d after disconnect", s.State(), tbl.Draining(), tbl.Len())
	}
	if err := s.Post("m2", 1, nil); err != ErrClosed {
		t.Fatalf("post on draining session: %v", err)
	}
	if tbl.Get("alice") != nil {
		t.Fatal("draining session still resolvable")
	}

	// The final release completes the close.
	s.Release(100, 0)
	if s.State() != StateClosed || tbl.Draining() != 0 {
		t.Fatalf("state=%v draining=%d after final release", s.State(), tbl.Draining())
	}
	st := tbl.Stats()
	if st.Posted != 1 || st.Delivered != 1 || st.Connects != 1 || st.Disconnects != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDisconnectWithoutTrafficClosesImmediately(t *testing.T) {
	tbl, _ := newTable(t, Config{}, 1)
	s, err := tbl.Connect("bob")
	if err != nil {
		t.Fatal(err)
	}
	tbl.Disconnect("bob")
	if s.State() != StateClosed || tbl.Draining() != 0 {
		t.Fatalf("state=%v draining=%d", s.State(), tbl.Draining())
	}
}

func TestQuotaShedding(t *testing.T) {
	tbl, ps := newTable(t, Config{QuotaBytes: 1000, QuotaMessages: 3}, 1)
	s, err := tbl.Connect("carol")
	if err != nil {
		t.Fatal(err)
	}
	// Byte quota: the fourth hundred-byte post fits the message quota but
	// an 800-byte one blows the byte quota.
	for i := 0; i < 2; i++ {
		if err := s.Post(fmt.Sprintf("m%d", i), 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Post("big", 801, nil); err != ErrQuota {
		t.Fatalf("byte-quota post: %v", err)
	}
	if err := s.Post("m3", 100, nil); err != nil {
		t.Fatalf("post within quota after shed: %v", err)
	}
	// Message quota: a fourth outstanding message is refused regardless of
	// size.
	if err := s.Post("m4", 1, nil); err != ErrQuota {
		t.Fatalf("message-quota post: %v", err)
	}
	if st := tbl.Stats(); st.QuotaShed != 2 || st.Posted != 3 {
		t.Fatalf("stats: %+v", st)
	}
	// Releasing restores headroom.
	s.Release(100, 0)
	if err := s.Post("m5", 100, nil); err != nil {
		t.Fatalf("post after release: %v", err)
	}
	// Drain everything so Close has nothing to force.
	for i := 0; i < 3; i++ {
		s.Release(100, 0)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", s.Outstanding())
	}
	_ = ps
}

func TestPostNQuotaPrefix(t *testing.T) {
	tbl, ps := newTable(t, Config{QuotaBytes: 1 << 20, QuotaMessages: 4}, 1)
	s, err := tbl.Connect("dave")
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]queue.Entry, 8)
	for i := range entries {
		entries[i] = queue.Entry{MsgID: fmt.Sprintf("b%d", i), Size: 10}
	}
	posted, shed, err := s.PostN(entries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if posted != 4 || shed != 4 {
		t.Fatalf("posted=%d shed=%d, want 4/4", posted, shed)
	}
	if got := ps[0].Queue().Len(); got != 4 {
		t.Fatalf("plane holds %d messages, want 4", got)
	}
	if st := tbl.Stats(); st.QuotaShed != 4 || st.Posted != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLoadShedAndAdmission(t *testing.T) {
	// Tiny thresholds: 100 bytes of plane occupancy sheds posts, 50 bytes
	// refuses new sessions.
	tbl, ps := newTable(t, Config{ShedBytes: 100, AdmitBytes: 50}, 1)
	s, err := tbl.Connect("erin")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Post("fill", 120, nil); err != nil {
		t.Fatal(err)
	}
	// The plane now holds 120 queued bytes: above both waters.
	if err := s.Post("shed-me", 10, nil); err != ErrShed {
		t.Fatalf("post above high water: %v", err)
	}
	if _, err := tbl.Connect("frank"); err != ErrAdmission {
		t.Fatalf("connect above admit water: %v", err)
	}
	st := tbl.Stats()
	if st.LoadShed != 1 || st.AdmissionShed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Draining the plane reopens both gates.
	if n := ps[0].Queue().TryFetchN(make([]queue.Item, 4)); n != 1 {
		t.Fatalf("drained %d items", n)
	}
	s.Release(120, 0)
	if err := s.Post("ok", 10, nil); err != nil {
		t.Fatalf("post after drain: %v", err)
	}
	if _, err := tbl.Connect("frank"); err != nil {
		t.Fatalf("connect after drain: %v", err)
	}
}

func TestMaxSessionsAdmission(t *testing.T) {
	tbl, _ := newTable(t, Config{MaxSessions: 2}, 1)
	for i := 0; i < 2; i++ {
		if _, err := tbl.Connect(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Connect("overflow"); err != ErrAdmission {
		t.Fatalf("connect over cap: %v", err)
	}
	// Disconnecting frees a slot.
	tbl.Disconnect("s0")
	if _, err := tbl.Connect("overflow"); err != nil {
		t.Fatalf("connect after free: %v", err)
	}
}

func TestSweepIdlePromoteOnPost(t *testing.T) {
	tbl, _ := newTable(t, Config{}, 1)
	s, err := tbl.Connect("grace")
	if err != nil {
		t.Fatal(err)
	}
	if n := tbl.Sweep(0); n != 1 {
		t.Fatalf("sweep demoted %d sessions, want 1", n)
	}
	if s.State() != StateIdle {
		t.Fatalf("state = %v after sweep", s.State())
	}
	if err := s.Post("wake", 1, nil); err != nil {
		t.Fatal(err)
	}
	if s.State() != StateActive {
		t.Fatalf("state = %v after post", s.State())
	}
	// A long threshold demotes nothing.
	if n := tbl.Sweep(time.Hour); n != 0 {
		t.Fatalf("hour sweep demoted %d sessions", n)
	}
}

// TestSessionConservationRace pushes many sessions' traffic through one
// shared plane from concurrent producers while a consumer pump drains and
// releases; every counter must conserve. Run with -race.
func TestSessionConservationRace(t *testing.T) {
	tbl, ps := newTable(t, Config{QuotaBytes: 1 << 20, QuotaMessages: 1 << 20}, 2)
	const (
		producers = 4
		sessions  = 32
		perProd   = 500
	)
	queued0 := obs.Default().IntGauge(obs.MSessionQueuedBytes, "", nil).Value()

	sess := make([]*Session, sessions)
	for i := range sess {
		s, err := tbl.Connect(fmt.Sprintf("sess-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sess[i] = s
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				s := sess[(p*perProd+i)%sessions]
				// MsgID carries the session id so the pump can route the
				// release.
				_ = s.Post(fmt.Sprintf("%s/m%d-%d", s.ID(), p, i), 10, nil)
			}
		}(p)
	}

	// One pump per plane: fetch, resolve the session from the id, release.
	stopPump := make(chan struct{})
	for _, p := range ps {
		go func(p *Plane) {
			buf := make([]queue.Item, 64)
			for {
				n := p.Queue().FetchN(buf, stopPump)
				if n == 0 {
					select {
					case <-stopPump:
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				for _, it := range buf[:n] {
					id := it.MsgID[:strings.IndexByte(it.MsgID, '/')]
					tbl.Get(id).Release(it.Size, 1)
				}
			}
		}(p)
	}
	wg.Wait()
	// Wait for the pumps to drain everything that was admitted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tbl.Stats()
		if st.Delivered == st.Posted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump stalled: %+v", st)
		}
		runtime.Gosched()
	}
	close(stopPump)

	st := tbl.Stats()
	if st.Posted+st.LoadShed+st.QuotaShed != producers*perProd {
		t.Fatalf("message conservation broken: %+v (want posted+shed = %d)", st, producers*perProd)
	}
	var outstanding int64
	for _, s := range sess {
		p, d, sh := s.Stats()
		if p != d {
			t.Fatalf("session %s: posted %d != delivered %d (shed %d)", s.ID(), p, d, sh)
		}
		outstanding += s.Outstanding()
	}
	if outstanding != 0 {
		t.Fatalf("outstanding = %d after drain", outstanding)
	}
	if got := obs.Default().IntGauge(obs.MSessionQueuedBytes, "", nil).Value(); got != queued0 {
		t.Fatalf("queued-bytes gauge leaked: %d != baseline %d", got, queued0)
	}
}

// TestAbortReconcilesGauges force-closes a draining session and requires
// the queued-bytes gauge to return to baseline.
func TestAbortReconcilesGauges(t *testing.T) {
	queued0 := obs.Default().IntGauge(obs.MSessionQueuedBytes, "", nil).Value()
	tbl, _ := newTable(t, Config{}, 1)
	s, err := tbl.Connect("henry")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Post(fmt.Sprintf("m%d", i), 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Disconnect("henry")
	if s.State() != StateDraining {
		t.Fatalf("state = %v", s.State())
	}
	s.Abort()
	if s.State() != StateClosed {
		t.Fatalf("state = %v after abort", s.State())
	}
	if got := obs.Default().IntGauge(obs.MSessionQueuedBytes, "", nil).Value(); got != queued0 {
		t.Fatalf("queued-bytes gauge = %d, want baseline %d", got, queued0)
	}
}
