package session

import (
	"fmt"
	"time"

	"sync"
	"sync/atomic"

	"mobigate/internal/obs"
	"mobigate/internal/queue"
)

// Config parameterizes a Table. The zero value is usable: Defaults fills
// every unset field.
type Config struct {
	// Shards is the session-table shard count (rounded up to a power of
	// two). Default 64.
	Shards int
	// QuotaBytes bounds one session's outstanding bytes. Default 64 KiB.
	QuotaBytes int64
	// QuotaMessages bounds one session's outstanding messages. Default 256.
	QuotaMessages int64
	// MaxSessions is the admission controller's hard cap on live sessions
	// (0 = unlimited).
	MaxSessions int64
	// ShedBytes is the plane occupancy (queued bytes) above which the
	// load-shedder refuses posts from admitted sessions. Default 1 MiB.
	ShedBytes int
	// AdmitBytes is the plane occupancy above which the admission
	// controller refuses NEW sessions; it defaults to half of ShedBytes so
	// admission tightens before existing traffic starts shedding.
	AdmitBytes int
	// SLOBudget, when positive, configures a per-plane delivery-latency
	// budget on the shared obs SLO tracker; Release observations feed it.
	SLOBudget time.Duration
	// OnSLOViolation receives edge-triggered budget violations (nil for
	// counter-only tracking). Runs on the releasing goroutine.
	OnSLOViolation func(obs.SLOViolation)
}

// Defaults returns cfg with every unset field filled in.
func (cfg Config) Defaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	for cfg.Shards&(cfg.Shards-1) != 0 {
		cfg.Shards++
	}
	if cfg.QuotaBytes <= 0 {
		cfg.QuotaBytes = 64 << 10
	}
	if cfg.QuotaMessages <= 0 {
		cfg.QuotaMessages = 256
	}
	if cfg.ShedBytes <= 0 {
		cfg.ShedBytes = 1 << 20
	}
	if cfg.AdmitBytes <= 0 {
		cfg.AdmitBytes = cfg.ShedBytes / 2
	}
	return cfg
}

// Plane is one shared data plane — typically the inlet queue of one
// deployed streamlet chain out of the instance pool the table spreads
// sessions across. Its occupancy is the saturation signal for both
// shedding layers.
type Plane struct {
	name string
	q    *queue.Queue
}

// NewPlane wraps a shared queue as a plane.
func NewPlane(name string, q *queue.Queue) *Plane { return &Plane{name: name, q: q} }

// Name returns the plane's name (also its SLO chain id).
func (p *Plane) Name() string { return p.name }

// Queue returns the underlying shared queue.
func (p *Plane) Queue() *queue.Queue { return p.q }

func (p *Plane) queuedBytes() int { return p.q.QueuedBytes() }

type tableShard struct {
	mu sync.RWMutex
	m  map[string]*Session
}

// Table owns every live session, sharded by session-id hash so connect and
// lookup scale across cores. One Table serves one stream's instance pool;
// sessions are pinned to a plane by the same hash.
type Table struct {
	cfg    Config
	planes []*Plane
	shards []tableShard
	mask   uint32

	live     atomic.Int64
	draining atomic.Int64

	connects    atomic.Uint64
	disconnects atomic.Uint64
	admitShed   atomic.Uint64
	loadShed    atomic.Uint64
	quotaShed   atomic.Uint64
	posted      atomic.Uint64
	delivered   atomic.Uint64
}

// NewTable creates a table over the given plane pool (at least one).
func NewTable(cfg Config, planes ...*Plane) (*Table, error) {
	if len(planes) == 0 {
		return nil, fmt.Errorf("session: table needs at least one plane")
	}
	cfg = cfg.Defaults()
	t := &Table{cfg: cfg, planes: planes, shards: make([]tableShard, cfg.Shards), mask: uint32(cfg.Shards - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*Session)
	}
	if cfg.SLOBudget > 0 {
		for _, p := range planes {
			obs.SLO().SetBudget(p.name, cfg.SLOBudget, cfg.OnSLOViolation)
		}
	}
	return t, nil
}

// Config returns the table's effective (default-filled) configuration.
func (t *Table) Config() Config { return t.cfg }

// fnv1a is the shard/plane hash — allocation-free on the connect path.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Connect admits a new session or sheds it. Admission is refused — without
// allocating any session state — when the table is at MaxSessions or the
// id's plane is already above AdmitBytes; both paths count into
// mobigate_session_admission_shed_total and journal a session-shed flight
// event (admission refusals are rare control-plane events, unlike
// per-message sheds).
func (t *Table) Connect(id string) (*Session, error) {
	h := fnv1a(id)
	plane := t.planes[int(h)%len(t.planes)]
	if t.cfg.MaxSessions > 0 {
		if t.live.Add(1) > t.cfg.MaxSessions {
			t.live.Add(-1)
			t.shedAdmission(id, "table-full")
			return nil, ErrAdmission
		}
	} else {
		t.live.Add(1)
	}
	if plane.queuedBytes() >= t.cfg.AdmitBytes {
		t.live.Add(-1)
		t.shedAdmission(id, "plane-saturated")
		return nil, ErrAdmission
	}
	s := &Session{id: id, table: t, plane: plane, hash: h}
	s.state.Store(int32(StateActive))
	s.lastActive.Store(obs.MonoNow())
	// Sampler selection is by the same hash the table shards by, so it is
	// deterministic per id and costs nothing extra here. The slot is
	// attached before the session is published to the shard map.
	s.slot = obs.SessionStats().AcquireSlot(h, id)
	sh := &t.shards[h&t.mask]
	sh.mu.Lock()
	if _, dup := sh.m[id]; dup {
		sh.mu.Unlock()
		t.live.Add(-1)
		obs.SessionStats().FreeSlot(s.slot)
		return nil, ErrDuplicate
	}
	sh.m[id] = s
	sh.mu.Unlock()
	t.connects.Add(1)
	mSessConnects.Inc()
	mSessLive.Add(1)
	if obs.SpansEnabled() {
		obs.FlightRecord(obs.FlightSessionConnect, id, plane.name, 0)
	}
	return s, nil
}

func (t *Table) shedAdmission(id, why string) {
	t.admitShed.Add(1)
	mSessAdmitShed.Inc()
	obs.SessionStats().ObserveShed(fnv1a(id), id)
	obs.FlightRecord(obs.FlightSessionShed, id, why, t.live.Load())
}

// Get returns the live session with the given id (nil when unknown or
// already disconnected).
func (t *Table) Get(id string) *Session {
	sh := &t.shards[fnv1a(id)&t.mask]
	sh.mu.RLock()
	s := sh.m[id]
	sh.mu.RUnlock()
	return s
}

// Disconnect removes the session from the table and starts its drain: no
// further posts are admitted, and the session closes when its last
// outstanding message is released (immediately when none are). Reports
// whether the id was live.
func (t *Table) Disconnect(id string) bool {
	sh := &t.shards[fnv1a(id)&t.mask]
	sh.mu.Lock()
	s := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if s == nil {
		return false
	}
	s.beginDisconnect()
	return true
}

// Sweep demotes sessions quiet for longer than idleAfter from Active to
// Idle and returns how many it demoted. Idle is bookkeeping, not a
// barrier — the next Post promotes the session back — but it lets an
// operator (or the autopilot) distinguish a full table from a busy one.
func (t *Table) Sweep(idleAfter time.Duration) int {
	cut := obs.MonoNow() - int64(idleAfter)
	idled := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, s := range sh.m {
			if s.lastActive.Load() < cut &&
				s.state.CompareAndSwap(int32(StateActive), int32(StateIdle)) {
				idled++
			}
		}
		sh.mu.RUnlock()
	}
	return idled
}

// Len returns the number of live (active or idle) sessions.
func (t *Table) Len() int { return int(t.live.Load()) }

// Draining returns the number of sessions still draining after disconnect.
func (t *Table) Draining() int { return int(t.draining.Load()) }

// Stats is a consistent-enough snapshot of the table's lifetime counters;
// at quiescence Posted == Delivered and Live == Connects - Disconnects -
// (sessions still draining).
type Stats struct {
	Live, Draining        int64
	Connects, Disconnects uint64
	AdmissionShed         uint64
	LoadShed, QuotaShed   uint64
	Posted, Delivered     uint64
}

// Stats returns the table-wide counters.
func (t *Table) Stats() Stats {
	return Stats{
		Live:          t.live.Load(),
		Draining:      t.draining.Load(),
		Connects:      t.connects.Load(),
		Disconnects:   t.disconnects.Load(),
		AdmissionShed: t.admitShed.Load(),
		LoadShed:      t.loadShed.Load(),
		QuotaShed:     t.quotaShed.Load(),
		Posted:        t.posted.Load(),
		Delivered:     t.delivered.Load(),
	}
}

// Close disconnects every live session (draining ones finish on their own
// releases) and removes the planes' SLO budgets.
func (t *Table) Close() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		ids := make([]*Session, 0, len(sh.m))
		for _, s := range sh.m {
			ids = append(ids, s)
		}
		sh.m = make(map[string]*Session)
		sh.mu.Unlock()
		for _, s := range ids {
			s.beginDisconnect()
		}
	}
	if t.cfg.SLOBudget > 0 {
		for _, p := range t.planes {
			obs.SLO().Remove(p.name)
		}
	}
}
