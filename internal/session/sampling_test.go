package session

import (
	"strconv"
	"testing"
	"time"

	"mobigate/internal/obs"
)

// connectSampled connects ids until the shared sampler selects one.
func connectSampled(t *testing.T, tbl *Table, prefix string) *Session {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		s, err := tbl.Connect(prefix + strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		if s.Sampled() {
			return s
		}
		tbl.Disconnect(s.ID())
	}
	t.Fatal("sampler selected none of 10k candidate ids")
	return nil
}

// TestSampledSessionSLO: a sampled session's delivery latencies surface on
// the /sessions snapshot with per-session quantiles and edge-triggered
// violations.
func TestSampledSessionSLO(t *testing.T) {
	tbl, ps := newTable(t, Config{SLOBudget: time.Millisecond}, 1)
	s := connectSampled(t, tbl, "slo-")
	q := ps[0].Queue()

	pump := func(latency int64) {
		if err := s.Post("m", 64, nil); err != nil {
			t.Fatal(err)
		}
		_, ok := q.TryFetch()
		if !ok {
			t.Fatal("posted message not in plane queue")
		}
		q.Ack()
		s.Release(64, latency)
	}

	before := obs.DefaultCounter(obs.MSessionSLOViolationsTotal).Value()
	for i := 0; i < 50; i++ {
		pump(int64(100_000)) // 100µs: within the 1ms budget
	}
	pump(int64(5 * time.Millisecond)) // over budget: one edge violation
	pump(int64(5 * time.Millisecond)) // still over: no new edge
	if got := obs.DefaultCounter(obs.MSessionSLOViolationsTotal).Value() - before; got != 1 {
		t.Fatalf("session SLO violations: %d, want 1 (edge-triggered)", got)
	}

	snap := obs.SessionStats().Snapshot(0)
	var sample *obs.SessionSLOSample
	for i := range snap.Samples {
		if snap.Samples[i].ID == s.ID() {
			sample = &snap.Samples[i]
		}
	}
	if sample == nil {
		t.Fatalf("sampled session %s missing from snapshot", s.ID())
	}
	if sample.Count != 52 || sample.P50Ns != 100_000 || sample.Violations != 1 || !sample.InViolation {
		t.Fatalf("sample: %+v", sample)
	}

	// The violating session also shows in the heavy-hitter violation list.
	found := false
	for _, h := range snap.TopViolations {
		if h.ID == s.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("session missing from topViolations: %+v", snap.TopViolations)
	}
}

// TestSamplerSlotFreedOnClose: closing a sampled session returns its slot
// (the sampled gauge drops back).
func TestSamplerSlotFreedOnClose(t *testing.T) {
	tbl, _ := newTable(t, Config{}, 1)
	g := obs.DefaultIntGauge(obs.MSessionSampled)
	before := g.Value()
	s := connectSampled(t, tbl, "free-")
	if g.Value() != before+1 {
		t.Fatalf("sampled gauge %d, want %d", g.Value(), before+1)
	}
	tbl.Disconnect(s.ID())
	if s.State() != StateClosed {
		t.Fatalf("state %v after idle disconnect", s.State())
	}
	if g.Value() != before {
		t.Fatalf("sampled gauge %d after close, want %d", g.Value(), before)
	}
}

// TestSampledPostReleaseZeroAlloc is the hot-path gate: a sampled
// session's post → fetch → release cycle must not allocate. (The
// benchmark BenchmarkSessionSLOSample gates the same property in the
// benchdiff zero-alloc regex; this keeps it enforced by plain `go test`.)
func TestSampledPostReleaseZeroAlloc(t *testing.T) {
	tbl, ps := newTable(t, Config{SLOBudget: time.Millisecond}, 1)
	s := connectSampled(t, tbl, "alloc-")
	q := ps[0].Queue()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.Post("m", 64, nil); err != nil {
			t.Fatal(err)
		}
		_, ok := q.TryFetch()
		if !ok {
			t.Fatal("empty plane queue")
		}
		q.Ack()
		s.Release(64, int64(50_000))
	})
	if allocs != 0 {
		t.Fatalf("sampled post/release allocates %.1f/op, want 0", allocs)
	}
}

// TestUnsampledSessionsStillTracked: every session (sampled or not) feeds
// the heavy-hitter sketch.
func TestUnsampledSessionsStillTracked(t *testing.T) {
	tbl, ps := newTable(t, Config{}, 1)
	var s *Session
	for i := 0; ; i++ {
		c, err := tbl.Connect("hh-" + strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		if !c.Sampled() {
			s = c
			break
		}
		tbl.Disconnect(c.ID())
	}
	q := ps[0].Queue()
	for i := 0; i < 10; i++ {
		if err := s.Post("m", 1<<10, nil); err != nil {
			t.Fatal(err)
		}
		_, _ = q.TryFetch()
		q.Ack()
		s.Release(1<<10, 0)
	}
	snap := obs.SessionStats().Snapshot(0)
	for _, h := range snap.TopBytes {
		if h.ID == s.ID() && h.Bytes == 10<<10 && h.Msgs == 10 {
			return
		}
	}
	t.Fatalf("unsampled session missing from topBytes: %+v", snap.TopBytes)
}
