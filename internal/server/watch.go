package server

// The /watch endpoint: a server-sent-events stream of registry state for
// live consoles (cmd/mobigate-top). The first frame is a full snapshot of
// every series; subsequent frames carry only the series whose values
// changed since the previous frame, plus the (small) health and session
// snapshots, so an idle gateway streams near-empty deltas instead of
// re-serializing the whole registry every tick. SSE keeps the consumer
// trivially implementable — one GET, newline-framed events — with no
// websocket dependency.

import (
	"encoding/json"
	"net/http"
	"time"

	"mobigate/internal/obs"
)

// watchFrame is one /watch event payload.
type watchFrame struct {
	// TsNs is the obs monotonic stamp of the frame.
	TsNs int64 `json:"tsNs"`
	// Series maps Prometheus series names to values — every series in a
	// "full" frame, only the changed ones in a "delta" frame.
	Series map[string]float64 `json:"series"`
	// Health is the component-health verdict (re-evaluated per frame).
	Health obs.HealthSnapshot `json:"health"`
	// Sessions is the sampled-SLO / heavy-hitter snapshot.
	Sessions obs.SessionStatsSnapshot `json:"sessions"`
}

const (
	watchDefaultInterval = time.Second
	watchMinInterval     = 50 * time.Millisecond
)

var (
	mWatchClients = obs.DefaultIntGauge(obs.MWatchClients)
	mWatchEvents  = obs.DefaultCounter(obs.MWatchEventsTotal)
)

func serveWatch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := watchDefaultInterval
	if s := r.URL.Query().Get("interval"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			http.Error(w, "interval must be a positive duration", http.StatusBadRequest)
			return
		}
		if d < watchMinInterval {
			d = watchMinInterval
		}
		interval = d
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	mWatchClients.Add(1)
	defer mWatchClients.Add(-1)

	send := func(event string, frame watchFrame) bool {
		payload, err := json.Marshal(frame)
		if err != nil {
			return false
		}
		if _, err := w.Write([]byte("event: " + event + "\ndata: ")); err != nil {
			return false
		}
		if _, err := w.Write(payload); err != nil {
			return false
		}
		if _, err := w.Write([]byte("\n\n")); err != nil {
			return false
		}
		flusher.Flush()
		mWatchEvents.Inc()
		return true
	}

	prev := obs.Default().SnapshotValues()
	if !send("full", watchFrame{
		TsNs:     obs.MonoNow(),
		Series:   prev,
		Health:   obs.Health().Eval(),
		Sessions: obs.SessionStats().Snapshot(0),
	}) {
		return
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
		cur := obs.Default().SnapshotValues()
		delta := make(map[string]float64)
		for name, v := range cur {
			if pv, ok := prev[name]; !ok || pv != v {
				delta[name] = v
			}
		}
		prev = cur
		if !send("delta", watchFrame{
			TsNs:     obs.MonoNow(),
			Series:   delta,
			Health:   obs.Health().Eval(),
			Sessions: obs.SessionStats().Snapshot(0),
		}) {
			return
		}
	}
}
