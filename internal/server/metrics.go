package server

import (
	"encoding/json"
	"net"
	"net/http"
	"strings"

	"mobigate/internal/obs"
)

// NewMetricsHandler builds the gateway's observability endpoint:
//
//	GET /metrics          Prometheus text exposition (format 0.0.4)
//	GET /metrics.json     the same registry as a JSON document
//	GET /trace            JSON list of sessions with recorded traces
//	GET /trace/<session>  JSON per-hop trace records for one session
//	GET /streams          JSON stats snapshots of the deployed streams
//
// The handler reads the process-wide obs registry and trace store; srv
// supplies the per-stream snapshots (srv may be nil, which disables
// /streams).
func NewMetricsHandler(srv *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		obs.Default().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"sessions": obs.Traces().Sessions()})
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		session := strings.TrimPrefix(r.URL.Path, "/trace/")
		if session == "" {
			writeJSON(w, map[string]any{"sessions": obs.Traces().Sessions()})
			return
		}
		recs := obs.Traces().Session(session)
		if recs == nil {
			http.Error(w, "no trace records for session "+session, http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"session": session, "messages": recs})
	})
	if srv != nil {
		mux.HandleFunc("/streams", func(w http.ResponseWriter, r *http.Request) {
			out := map[string]any{}
			for _, alias := range srv.Deployed() {
				if st := srv.Stream(alias); st != nil {
					out[alias] = st.StatsSnapshot()
				}
			}
			writeJSON(w, out)
		})
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ServeMetrics starts the observability endpoint on addr (":0" picks a free
// port) and returns the bound address. The endpoint runs until the
// front-end is closed.
func (f *Frontend) ServeMetrics(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	f.metricsMu.Lock()
	f.metricsLn = ln
	f.metricsMu.Unlock()
	srv := &http.Server{Handler: NewMetricsHandler(f.srv)}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		_ = srv.Serve(ln) // returns when the listener closes
	}()
	return ln.Addr(), nil
}
