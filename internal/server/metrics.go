package server

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"mobigate/internal/obs"
)

// NewMetricsHandler builds the gateway's observability endpoint:
//
//	GET /metrics          Prometheus text exposition (format 0.0.4)
//	GET /metrics.json     the same registry as a JSON document
//	GET /trace            JSON list of sessions with recorded traces
//	GET /trace/<session>  JSON per-hop trace records for one session
//	GET /streams          JSON stats snapshots of the deployed streams
//	GET /slo              JSON latency-budget snapshots per tracked chain
//	GET /sessions         JSON session observability: sampled per-session
//	                      SLO windows plus heavy-hitter top-K lists
//	                      (?k=N bounds the lists, default 10)
//	GET /healthz          component health; 200 while every subsystem is
//	                      healthy, 503 with the same JSON breakdown while
//	                      any is degraded (each GET re-evaluates)
//	GET /watch            server-sent-events stream: one full registry
//	                      frame, then periodic deltas of changed series
//	                      (?interval=dur, default 1s; mobigate-top's feed)
//
// The handler reads the process-wide obs registry and trace store; srv
// supplies the per-stream snapshots (srv may be nil, which disables
// /streams).
func NewMetricsHandler(srv *Server) http.Handler {
	return newMetricsMux(srv, false)
}

// NewDebugHandler is NewMetricsHandler plus the debug surface:
//
//	GET /debug/flight           JSON flight-recorder dump (?limit=N bounds
//	                            it; the default keeps the newest 4096 and
//	                            marks the dump truncated; ?last=1 returns
//	                            the last automatic ExecutionFault dump)
//	GET /debug/pprof/...        the standard runtime profiles
//
// The debug surface exposes process internals, so servers gate it behind
// an explicit flag (mobigate-server -debug).
func NewDebugHandler(srv *Server) http.Handler {
	return newMetricsMux(srv, true)
}

func newMetricsMux(srv *Server, debug bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		obs.Default().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"sessions": obs.Traces().Sessions()})
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		session := strings.TrimPrefix(r.URL.Path, "/trace/")
		if session == "" {
			writeJSON(w, map[string]any{"sessions": obs.Traces().Sessions()})
			return
		}
		recs := obs.Traces().Session(session)
		if recs == nil {
			http.Error(w, "no trace records for session "+session, http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"session": session, "messages": recs})
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"chains": obs.SLO().Chains()})
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		k := 0 // 0 selects the default top-K
		if s := r.URL.Query().Get("k"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				http.Error(w, "k must be a positive integer", http.StatusBadRequest)
				return
			}
			k = n
		}
		writeJSON(w, obs.SessionStats().Snapshot(k))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := obs.Health().Eval()
		w.Header().Set("Content-Type", "application/json")
		if !snap.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/watch", serveWatch)
	if srv != nil {
		mux.HandleFunc("/streams", func(w http.ResponseWriter, r *http.Request) {
			out := map[string]any{}
			for _, alias := range srv.Deployed() {
				if st := srv.Stream(alias); st != nil {
					out[alias] = st.StatsSnapshot()
				}
			}
			writeJSON(w, out)
		})
	}
	if debug {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("last") != "" {
				dump, ok := obs.Flight().LastDump()
				if !ok {
					http.Error(w, "no automatic flight dump captured", http.StatusNotFound)
					return
				}
				writeJSON(w, dump)
				return
			}
			limit := 0 // 0 selects DefaultFlightDumpLimit
			if s := r.URL.Query().Get("limit"); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil || n <= 0 {
					http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
					return
				}
				limit = n
			}
			writeJSON(w, obs.Flight().Snapshot(limit))
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ServeMetrics starts the observability endpoint on addr (":0" picks a free
// port) and returns the bound address. The endpoint runs until the
// front-end is closed.
func (f *Frontend) ServeMetrics(addr string) (net.Addr, error) {
	return f.serveMetrics(addr, false)
}

// ServeMetricsDebug is ServeMetrics with the debug surface (/debug/flight,
// /debug/pprof) mounted; servers expose it only behind an explicit flag.
func (f *Frontend) ServeMetricsDebug(addr string) (net.Addr, error) {
	return f.serveMetrics(addr, true)
}

func (f *Frontend) serveMetrics(addr string, debug bool) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	f.metricsMu.Lock()
	f.metricsLn = ln
	f.metricsMu.Unlock()
	srv := &http.Server{Handler: newMetricsMux(f.srv, debug)}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		_ = srv.Serve(ln) // returns when the listener closes
	}()
	return ln.Addr(), nil
}
