// Package server implements the MobiGATE server of thesis §3.3: the
// Coordination Manager that turns compiled MCL configuration tables into
// running streams, the Streamlet Manager with its stateless-instance
// pooling, the Event Manager wiring, and a TCP front-end through which
// mobile clients receive the adapted flow.
package server

import (
	"fmt"
	"sort"
	"sync"

	"mobigate/internal/adapt"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/semantics"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

// Gateway lifecycle metrics (aggregated across servers).
var (
	mStreamsDeployed = obs.DefaultCounter(obs.MStreamsDeployedTotal)
	mStreamsActive   = obs.DefaultGauge(obs.MStreamsActive)
	mSessionsTotal   = obs.DefaultCounter(obs.MSessionsTotal)
	mSessionsActive  = obs.DefaultGauge(obs.MSessionsActive)
)

// Options configure a Server.
type Options struct {
	// Directory supplies streamlet implementations; nil creates an empty
	// one (register services before deploying).
	Directory *streamlet.Directory
	// Events supplies the event manager; nil creates one.
	Events *event.Manager
	// PoolMode selects pass-by-reference (default) or pass-by-value buffer
	// management (§7.3).
	PoolMode msgpool.Mode
	// Strict makes Deploy fail when the semantic analyzer finds violations
	// (feedback loops are always fatal).
	Strict bool
	// Rules are the application-level relations the analyzer verifies.
	Rules semantics.Rules
	// ErrorHandler receives asynchronous stream errors.
	ErrorHandler func(error)
}

// Server is the MobiGATE gateway: it compiles MCL scripts, validates them
// against the semantic model, and manages running stream instances.
type Server struct {
	opts   Options
	dir    *streamlet.Directory
	events *event.Manager
	pool   *msgpool.Pool

	mu      sync.Mutex
	cfg     *mcl.Config
	streams map[string]*stream.Stream
	// names maps deployment alias → stream name (aliased deploys share a
	// stream declaration); reload and the autopilot need the reverse step.
	names   map[string]string
	reports map[string]*semantics.Report
	// autopilot, when set (SetAutopilot), receives each deployed stream's
	// compiled when-policies.
	autopilot *adapt.Engine
	closed    bool
}

// New creates a server.
func New(opts Options) *Server {
	dir := opts.Directory
	if dir == nil {
		dir = streamlet.NewDirectory()
	}
	ev := opts.Events
	if ev == nil {
		ev = event.NewManager(nil)
	}
	return &Server{
		opts:    opts,
		dir:     dir,
		events:  ev,
		pool:    msgpool.New(opts.PoolMode),
		streams: make(map[string]*stream.Stream),
		names:   make(map[string]string),
		reports: make(map[string]*semantics.Report),
	}
}

// Directory returns the server's streamlet directory.
func (s *Server) Directory() *streamlet.Directory { return s.dir }

// Events returns the server's event manager.
func (s *Server) Events() *event.Manager { return s.events }

// Pool returns the central message pool.
func (s *Server) Pool() *msgpool.Pool { return s.pool }

// LoadScript compiles an MCL script and runs the semantic analyses on every
// stream it declares. Compilation errors are fatal; analysis reports are
// retained and consulted at Deploy time.
func (s *Server) LoadScript(src string) error {
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		return err
	}
	return s.install(cfg)
}

// LoadScripts compiles several named sources — e.g. a streamlet-library
// file plus an application script — as one compilation unit.
func (s *Server) LoadScripts(sources map[string]string) error {
	cfg, err := mcl.CompileSources(sources, nil)
	if err != nil {
		return err
	}
	return s.install(cfg)
}

func (s *Server) install(cfg *mcl.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = cfg
	for name, sc := range cfg.Streams {
		rules := s.opts.Rules
		// A stream's derived external ports are its sanctioned open ends.
		rules.AllowedOpenPorts = append(append([]string(nil), rules.AllowedOpenPorts...),
			semantics.OpenPorts(sc)...)
		s.reports[name] = semantics.Analyze(sc, rules)
	}
	return nil
}

// Config returns the loaded configuration (nil before LoadScript).
func (s *Server) Config() *mcl.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// Report returns the semantic analysis report for a stream.
func (s *Server) Report(name string) *semantics.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reports[name]
}

// Deploy instantiates and starts a stream from the loaded script, wiring
// its when-blocks into the event system. Deploying an already-deployed
// stream is an error (each name runs at most one shared instance; use
// DeployInstance for per-session copies).
func (s *Server) Deploy(name string) (*stream.Stream, error) {
	return s.deploy(name, name)
}

// DeployInstance deploys an independent copy of a stream under an instance
// alias, supporting one adaptation pipeline per client session.
func (s *Server) DeployInstance(name, alias string) (*stream.Stream, error) {
	return s.deploy(name, alias)
}

func (s *Server) deploy(name, alias string) (*stream.Stream, error) {
	s.mu.Lock()
	cfg := s.cfg
	closed := s.closed
	if _, dup := s.streams[alias]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: stream %q already deployed", alias)
	}
	rep := s.reports[name]
	s.mu.Unlock()

	if closed {
		return nil, fmt.Errorf("server: closed")
	}
	if cfg == nil {
		return nil, fmt.Errorf("server: no script loaded")
	}
	if rep != nil && !rep.OK() {
		fatal := s.opts.Strict
		for _, v := range rep.Violations {
			if v.Kind == "feedback-loop" {
				fatal = true
			}
		}
		if fatal {
			return nil, fmt.Errorf("server: stream %q rejected by semantic analysis: %v", name, rep.Violations)
		}
	}

	st, err := stream.FromConfig(cfg, name, s.pool, s.dir)
	if err != nil {
		return nil, err
	}
	st.ErrorHandler = s.opts.ErrorHandler
	// Fault supervision raises ExecutionFault context events through the
	// gateway's event loop, where when-blocks (and monitoring clients) can
	// react to them like any other context variation.
	st.SetEventSink(s.events)

	// Subscribe the stream to the categories of the events it reacts to,
	// so the Coordination Manager's event filtering (§3.3.1) never wakes a
	// stream for an irrelevant category.
	catalog := s.events.Catalog()
	seen := map[event.Category]bool{}
	for _, ev := range st.Whens() {
		cat, ok := catalog.CategoryOf(ev)
		if !ok {
			// Unknown event identifiers are registered dynamically under
			// Software Variation (§8.2.1's dynamic inclusion).
			cat = event.SoftwareVariation
			if err := catalog.Register(ev, cat); err != nil {
				return nil, err
			}
		}
		if !seen[cat] {
			seen[cat] = true
			s.events.Subscribe(cat, st)
		}
	}
	s.events.Subscribe(event.SystemCommand, st)

	s.mu.Lock()
	if _, dup := s.streams[alias]; dup {
		s.mu.Unlock()
		st.End()
		return nil, fmt.Errorf("server: stream %q already deployed", alias)
	}
	s.streams[alias] = st
	s.names[alias] = name
	autopilot := s.autopilot
	s.mu.Unlock()
	mStreamsDeployed.Inc()
	mStreamsActive.Add(1)

	if sc := cfg.Stream(name); autopilot != nil && sc != nil && len(sc.Policies) > 0 {
		autopilot.Attach(alias, st, sc.Policies)
	}
	st.Start()
	return st, nil
}

// Stream returns a deployed stream by alias (nil when absent).
func (s *Server) Stream(alias string) *stream.Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[alias]
}

// Deployed lists deployed stream aliases, sorted.
func (s *Server) Deployed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.streams))
	for n := range s.streams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Undeploy stops and removes a stream instance.
func (s *Server) Undeploy(alias string) error {
	s.mu.Lock()
	st, ok := s.streams[alias]
	if ok {
		delete(s.streams, alias)
		delete(s.names, alias)
	}
	autopilot := s.autopilot
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: stream %q not deployed", alias)
	}
	if autopilot != nil {
		autopilot.Detach(alias)
	}
	mStreamsActive.Add(-1)
	for _, cat := range allCategories(s.events.Catalog(), st) {
		s.events.Unsubscribe(cat, st)
	}
	st.End()
	return nil
}

func allCategories(catalog *event.Catalog, st *stream.Stream) []event.Category {
	seen := map[event.Category]bool{event.SystemCommand: true}
	out := []event.Category{event.SystemCommand}
	for _, ev := range st.Whens() {
		if cat, ok := catalog.CategoryOf(ev); ok && !seen[cat] {
			seen[cat] = true
			out = append(out, cat)
		}
	}
	return out
}

// Raise injects a context event (e.g. from the netem bandwidth monitor or
// an operator command) into the event system.
func (s *Server) Raise(eventID, source string) error {
	return s.events.Raise(eventID, source)
}

// Close undeploys every stream and stops the event manager.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	streams := make([]*stream.Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	autopilot := s.autopilot
	aliases := make([]string, 0, len(s.names))
	for a := range s.names {
		aliases = append(aliases, a)
	}
	s.streams = make(map[string]*stream.Stream)
	s.names = make(map[string]string)
	s.mu.Unlock()
	if autopilot != nil {
		for _, a := range aliases {
			autopilot.Detach(a)
		}
	}
	mStreamsActive.Add(-float64(len(streams)))
	for _, st := range streams {
		st.End()
	}
	if s.opts.Events == nil {
		// We own the manager.
		s.events.Close()
	}
}
