package server

// Regression tests for reload atomicity: a rejected reload must leave the
// server fully on the old configuration — old whens, old policies, and the
// autopilot still attached and adapting — and the apply phase must be
// infallible so no reject path can exist after the swap commits.
//
// The bug these lock in: reload registered unknown when-events inside the
// apply loop and returned the Register error, so a reload "rejected" by a
// concurrent §8.2.1 registration under a conflicting category had already
// committed the new config, swapped some streams' whens, and detached
// earlier streams from the autopilot — the engine stopped adapting a
// stream that was still live. The fix resolves categories atomically
// (Catalog.ResolveAll) before the commit point.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"mobigate/internal/adapt"
	"mobigate/internal/mcl"
)

// TestReloadRejectThenTickStillAdapts: after any rejected reload the engine
// must still be attached with the OLD policies and a tick must still drive
// them against the live stream.
func TestReloadRejectThenTickStillAdapts(t *testing.T) {
	s := newTestServer(t)
	var qd atomic.Int64
	eng := adapt.New(adapt.Config{
		Sampler: func() adapt.Reading { return adapt.Reading{QueueDepth: qd.Load()} },
	})
	s.SetAutopilot(eng)
	if err := s.LoadScript(reloadScriptV1); err != nil {
		t.Fatal(err)
	}
	st, err := s.Deploy("flow")
	if err != nil {
		t.Fatal(err)
	}

	// Reject path 1: the new script no longer declares the deployed stream.
	missing := strings.ReplaceAll(reloadScriptV2, "stream flow", "stream renamed")
	if err := s.ReloadScript(missing); err == nil {
		t.Fatal("reload of a script missing the deployed stream must be rejected")
	}

	// Reject path 2: feedback-loop violations are always fatal. The script
	// keeps stream flow but wires its chain into a cycle.
	cyclic := strings.ReplaceAll(reloadScriptV2,
		"connect (hd.po, cm.pi);", "connect (hd.po, cm.pi);\n\tconnect (cm.po, hd.pi);")
	if err := s.ReloadScript(cyclic); err == nil {
		t.Fatal("reload introducing a feedback loop must be rejected")
	}

	// All-or-nothing: old config, old whens, still attached.
	if sc := s.Config().Stream("flow"); sc == nil || len(sc.Policies) != 1 || sc.Policies[0].Rule.Cond.Value != 100 {
		t.Fatalf("rejected reload disturbed the stored config: %+v", s.Config().Stream("flow"))
	}
	if got := st.Whens(); len(got) != 1 || got[0] != "LOW_BANDWIDTH" {
		t.Fatalf("rejected reload disturbed the live whens: %v", got)
	}
	if !eng.Attached("flow") {
		t.Fatal("rejected reload detached the stream from the autopilot")
	}

	// The old insert policy (threshold 100) must still fire on a tick.
	qd.Store(200)
	eng.Tick()
	if st.Streamlet("tc_def") == nil {
		t.Fatal("autopilot no longer adapts after a rejected reload")
	}
}

// TestReloadConcurrentDynamicRegistration races reloads whose scripts carry
// catalog-unknown when-events against a client performing §8.2.1 dynamic
// registration of the same identifiers under a custom category. The apply
// phase is infallible post-fix, so the reload must NEVER fail, and every
// round must end fully swapped: new config stored, new whens live, engine
// attached and driving the new policies. Run with -race.
func TestReloadConcurrentDynamicRegistration(t *testing.T) {
	const events = 64
	var whens strings.Builder
	for i := 0; i < events; i++ {
		fmt.Fprintf(&whens, "\twhen (CUSTOM_EV_%d) { disconnect (hd.po, cm.pi); }\n", i)
	}
	v3 := strings.ReplaceAll(reloadScriptV1, "when (queue_depth > 100)", "when (queue_depth > 5)")
	v3 = strings.ReplaceAll(v3,
		"\twhen (LOW_BANDWIDTH) {\n\t\tdisconnect (hd.po, cm.pi);\n\t}\n", whens.String())
	cfgV3, err := mcl.Compile(v3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		s := newTestServer(t)
		var qd atomic.Int64
		eng := adapt.New(adapt.Config{
			Sampler: func() adapt.Reading { return adapt.Reading{QueueDepth: qd.Load()} },
		})
		s.SetAutopilot(eng)
		if err := s.LoadScript(reloadScriptV1); err != nil {
			t.Fatal(err)
		}
		st, err := s.Deploy("flow")
		if err != nil {
			t.Fatal(err)
		}
		cat := s.Events().Catalog()
		done := make(chan struct{})
		go func() {
			defer close(done)
			c := cat.RegisterCategory()
			for i := events - 1; i >= 0; i-- {
				// Half of these land before the reload resolves the id (the
				// reload subscribes under the custom category), half after
				// (this Register gets the already-registered error). Neither
				// may fail the reload.
				cat.Register(fmt.Sprintf("CUSTOM_EV_%d", i), c)
			}
		}()
		rerr := s.reload(cfgV3)
		<-done
		if rerr != nil {
			t.Fatalf("round %d: reload failed mid-apply: %v", round, rerr)
		}
		if sc := s.Config().Stream("flow"); sc.Policies[0].Rule.Cond.Value != 5 {
			t.Fatalf("round %d: new config not committed", round)
		}
		if got := st.Whens(); len(got) != events {
			t.Fatalf("round %d: whens = %d, want %d", round, len(got), events)
		}
		if !eng.Attached("flow") {
			t.Fatalf("round %d: stream detached after successful reload", round)
		}
		qd.Store(10)
		eng.Tick()
		if st.Streamlet("tc_def") == nil {
			t.Fatalf("round %d: reloaded policy did not drive after concurrent registration", round)
		}
		s.Close()
	}
}
