package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/client"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/services"
	"mobigate/internal/session"
	"mobigate/internal/streamlet"
)

// sessionScript is a plain relay chain: shared-plane tests need a stream
// with no cross-session stateful behavior, so every message comes out
// exactly once with its session stamp intact.
const sessionScript = `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
main stream shared {
	streamlet a = new-streamlet (relay);
	streamlet b = new-streamlet (relay);
	connect (a.po, b.pi);
}
`

func newSessionServer(t *testing.T) *Server {
	t.Helper()
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	srv := New(Options{Directory: dir, ErrorHandler: func(err error) { t.Logf("server error: %v", err) }})
	t.Cleanup(srv.Close)
	if err := srv.LoadScript(sessionScript); err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestSessionGatewayDemux drives three logical sessions through one shared
// two-instance pool and requires exact per-session delivery: every message
// comes back on its own session's channel, none cross over.
func TestSessionGatewayDemux(t *testing.T) {
	srv := newSessionServer(t)
	gw, err := srv.OpenSessionGateway("shared", SessionGatewayConfig{Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if got := len(srv.Deployed()); got != 2 {
		t.Fatalf("pool deployed %d instances, want 2", got)
	}

	const sessions, perSession = 3, 20
	type sub struct {
		sess *session.Session
		ch   <-chan *mime.Message
	}
	subs := make([]sub, sessions)
	for i := range subs {
		s, ch, err := gw.Connect(fmt.Sprintf("client-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub{sess: s, ch: ch}
	}
	for i, sb := range subs {
		for j := 0; j < perSession; j++ {
			m := mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("s%d-m%d", i, j)))
			if err := gw.Send(sb.sess, m); err != nil {
				t.Fatalf("session %d message %d: %v", i, j, err)
			}
		}
	}
	for i, sb := range subs {
		for j := 0; j < perSession; j++ {
			select {
			case m := <-sb.ch:
				if want := fmt.Sprintf("s%d-", i); !strings.HasPrefix(string(m.Body()), want) {
					t.Fatalf("session %d received %q: cross-session delivery", i, m.Body())
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("session %d: delivery %d never arrived", i, j)
			}
		}
	}
	st := gw.Table().Stats()
	if st.Posted != sessions*perSession || st.Delivered != sessions*perSession {
		t.Fatalf("conservation: %+v", st)
	}
	for i := range subs {
		gw.Disconnect(fmt.Sprintf("client-%d", i))
	}
	if gw.Table().Len() != 0 || gw.Table().Draining() != 0 {
		t.Fatalf("table not empty after disconnects: live=%d draining=%d",
			gw.Table().Len(), gw.Table().Draining())
	}
}

// TestSharedSessionsTCP runs concurrent TCP clients against a front-end in
// shared-plane mode: every client gets its own flow back, while the server
// deploys only the fixed pool, not one chain per connection.
func TestSharedSessionsTCP(t *testing.T) {
	srv := newSessionServer(t)
	bodies := [][]byte{services.GenText(512, 1), services.GenText(768, 2), services.GenText(300, 3)}
	fe := NewFrontend(srv, sourceOf(bodies))
	fe.EnableSharedSessions(SessionGatewayConfig{Instances: 2})
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			req := mime.NewMessage(mime.Wildcard, nil)
			req.SetHeader(HeaderRequestStream, "shared")
			if _, err := req.WriteTo(conn); err != nil {
				t.Error(err)
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
			peers := streamlet.NewDirectory()
			services.RegisterClientPeers(peers)
			var count atomic.Int64
			mc := client.New(client.Options{Peers: peers}, func(*mime.Message) { count.Add(1) })
			if err := mc.ServeConn(conn); err != nil {
				t.Error(err)
				return
			}
			if int(count.Load()) != len(bodies) {
				t.Errorf("session got %d messages, want %d", count.Load(), len(bodies))
			}
		}()
	}
	wg.Wait()

	// The pool is the only deployment: connections did not deploy chains.
	deployed := srv.Deployed()
	if len(deployed) != 2 {
		t.Fatalf("deployed = %v, want exactly the 2-instance pool", deployed)
	}
	for _, alias := range deployed {
		if !strings.Contains(alias, "~shared") {
			t.Fatalf("unexpected per-connection deployment %q", alias)
		}
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Deployed(); len(got) != 0 {
		t.Fatalf("pool leaked after close: %v", got)
	}
}

// TestSharedSessionsAdmissionCap: with MaxSessions 1, a second concurrent
// connection is refused by the admission controller instead of degrading
// the first one.
func TestSharedSessionsAdmissionCap(t *testing.T) {
	srv := newSessionServer(t)
	// A slow source keeps the first session occupying the table while the
	// second connects.
	release := make(chan struct{})
	src := func(req *mime.Message) <-chan *mime.Message {
		ch := make(chan *mime.Message)
		go func() {
			defer close(ch)
			ch <- mime.NewMessage(services.TypePlainText, []byte("first"))
			<-release
		}()
		return ch
	}
	fe := NewFrontend(srv, src)
	fe.EnableSharedSessions(SessionGatewayConfig{
		Instances: 1,
		Session:   session.Config{MaxSessions: 1},
	})
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	defer close(release)

	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			return nil, err
		}
		req := mime.NewMessage(mime.Wildcard, nil)
		req.SetHeader(HeaderRequestStream, "shared")
		if _, err := req.WriteTo(conn); err != nil {
			conn.Close()
			return nil, err
		}
		return conn, nil
	}
	first, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Wait until the first session holds the only table slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g, _ := fe.gateway("shared"); g != nil && g.Table().Len() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first session never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	second, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	// The refused connection is closed by the server without any delivery.
	buf := make([]byte, 1)
	_ = second.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, _ := second.Read(buf); n != 0 {
		t.Fatalf("shed session received %d bytes", n)
	}
	g, _ := fe.gateway("shared")
	if st := g.Table().Stats(); st.AdmissionShed == 0 {
		t.Fatalf("admission shed not counted: %+v", st)
	}
}

// TestSessionSafe exercises the session-transparency analysis: a stream is
// shareable only when every streamlet — including those reached through
// composite instances — is STATELESS. A STATEFUL streamlet (cache, merge)
// correlates messages across its inputs and would pair different sessions'
// traffic on a shared plane.
func TestSessionSafe(t *testing.T) {
	const script = `
streamlet relay {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet keeper {
	port { in pi : text; out po : text; }
	attribute { type = STATEFUL; library = "general/cache"; }
}
stream innerOK {
	streamlet x = new-streamlet (relay);
	streamlet y = new-streamlet (relay);
	connect (x.po, y.pi);
}
stream innerBad {
	streamlet k = new-streamlet (keeper);
	streamlet c = new-streamlet (relay);
	connect (k.po, c.pi);
}
stream viaOK {
	streamlet u = new-streamlet (relay);
	streamlet v = new-streamlet (innerOK);
	connect (u.po, v.x_pi);
}
main stream viaBad {
	streamlet u = new-streamlet (relay);
	streamlet v = new-streamlet (innerBad);
	connect (u.po, v.k_pi);
}
`
	cfg, err := mcl.Compile(script, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]bool{
		"innerOK":  true,
		"innerBad": false,
		"viaOK":    true, // composite judged by its backing stream, not its synthesized stateful decl
		"viaBad":   false,
		"missing":  false,
	} {
		if got := SessionSafe(cfg, name); got != want {
			t.Errorf("SessionSafe(%s) = %v, want %v", name, got, want)
		}
	}
	if SessionSafe(nil, "innerOK") {
		t.Error("SessionSafe(nil config) = true")
	}
}

// TestSharedSessionsStatefulFallback enables shared-plane mode on a stream
// whose chain contains a STATEFUL cache. The gateway must refuse to share
// it (sharing would mix sessions through the cache) and the front-end must
// fall back to per-connection deployment — the client still receives the
// complete flow.
func TestSharedSessionsStatefulFallback(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	var fellBack atomic.Bool
	srv := New(Options{Directory: dir, ErrorHandler: func(err error) {
		if strings.Contains(err.Error(), "not session-safe") {
			fellBack.Store(true)
		}
		t.Logf("server error: %v", err)
	}})
	t.Cleanup(srv.Close)
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}

	if _, err := srv.OpenSessionGateway("webflow", SessionGatewayConfig{Instances: 2}); err == nil {
		t.Fatal("OpenSessionGateway accepted a stream with a STATEFUL streamlet")
	} else if !strings.Contains(err.Error(), "not session-safe") {
		t.Fatalf("unexpected refusal: %v", err)
	}

	const n = 12
	var bodies [][]byte
	for i := 0; i < n; i++ {
		bodies = append(bodies, services.GenText(600+31*i, int64(i)))
	}
	fe := NewFrontend(srv, sourceOf(bodies))
	fe.EnableSharedSessions(SessionGatewayConfig{Instances: 2})
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := mime.NewMessage(mime.Wildcard, nil)
	req.SetHeader(HeaderRequestStream, "webflow")
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}

	peers := streamlet.NewDirectory()
	services.RegisterClientPeers(peers)
	var got atomic.Int64
	mc := client.New(client.Options{Peers: peers}, func(m *mime.Message) { got.Add(1) })
	if err := mc.ServeConn(conn); err != nil {
		t.Fatal(err)
	}
	if got.Load() != n {
		t.Fatalf("client received %d messages, want %d", got.Load(), n)
	}
	if !fellBack.Load() {
		t.Error("fallback was never reported through the error handler")
	}
	// Per-connection fallback deploys no shared aliases, and the session's
	// own instance is undeployed once the connection ends.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Deployed()) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for _, alias := range srv.Deployed() {
		if strings.Contains(alias, "~shared") {
			t.Fatalf("shared instance deployed for stateful stream: %s", alias)
		}
	}
	if got := srv.Deployed(); len(got) != 0 {
		t.Errorf("sessions leaked: %v", got)
	}
}

// TestSharedSessionsQuotaBackpressure: a flow far larger than the
// per-session quota must still arrive in full. The feeder's SendWait
// turns quota exhaustion into backpressure — it stalls until deliveries
// release reservations — so a cooperative client loses nothing and the
// quota-shed counter never moves.
func TestSharedSessionsQuotaBackpressure(t *testing.T) {
	srv := newSessionServer(t)
	const n = 30
	var bodies [][]byte
	for i := 0; i < n; i++ {
		bodies = append(bodies, services.GenText(1024, int64(i)))
	}
	fe := NewFrontend(srv, sourceOf(bodies))
	// Quota admits at most 4 messages / 4 KiB outstanding: the 30 KiB flow
	// must be paced by releases, not shed.
	fe.EnableSharedSessions(SessionGatewayConfig{
		Instances: 1,
		Session:   session.Config{QuotaBytes: 4 << 10, QuotaMessages: 4},
	})
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := mime.NewMessage(mime.Wildcard, nil)
	req.SetHeader(HeaderRequestStream, "shared")
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	peers := streamlet.NewDirectory()
	services.RegisterClientPeers(peers)
	var count atomic.Int64
	mc := client.New(client.Options{Peers: peers}, func(*mime.Message) { count.Add(1) })
	if err := mc.ServeConn(conn); err != nil {
		t.Fatal(err)
	}
	if int(count.Load()) != n {
		t.Fatalf("client received %d messages, want %d", count.Load(), n)
	}
	g, err := fe.gateway("shared")
	if err != nil || g == nil {
		t.Fatalf("gateway: %v", err)
	}
	st := g.Table().Stats()
	if st.QuotaShed != 0 || st.LoadShed != 0 {
		t.Fatalf("cooperative session was shed: %+v", st)
	}
	if st.Posted != n || st.Delivered != n {
		t.Fatalf("conservation: %+v", st)
	}
}
