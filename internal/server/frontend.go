package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/semantics"
	"mobigate/internal/session"
)

// Source produces the origin data flow for one client session (the fixed
// sender S of Figure 3-1). The channel is drained until closed.
type Source func(request *mime.Message) <-chan *mime.Message

// Request headers of the front-end wire protocol.
const (
	// HeaderRequestStream names the MCL stream the client wants deployed.
	HeaderRequestStream = "X-Request-Stream"
	// HeaderSeq carries the per-session delivery sequence number the
	// client's distributor uses to restore order after multi-threaded
	// reverse processing.
	HeaderSeq = "X-Seq"
)

// Frontend is the TCP face of the gateway: each client connection gets its
// own deployed instance of the requested stream; origin messages flow in
// through the stream's entry port and adapted messages flow out to the
// client in MIME wire format.
type Frontend struct {
	srv    *Server
	source Source

	ln     net.Listener
	wg     sync.WaitGroup
	connID atomic.Uint64
	closed atomic.Bool

	// metricsLn is the observability endpoint's listener (nil unless
	// ServeMetrics was called); Close shuts it down with the front-end.
	metricsMu sync.Mutex
	metricsLn net.Listener

	// Shared-plane mode (EnableSharedSessions): connections become logical
	// sessions multiplexed onto per-stream gateway instance pools instead
	// of deploying one chain each.
	gwMu   sync.Mutex
	gwCfg  *SessionGatewayConfig
	gwPool map[string]*SessionGateway
}

// NewFrontend wraps a server with a TCP front-end.
func NewFrontend(srv *Server, source Source) *Frontend {
	return &Frontend{srv: srv, source: source}
}

// Listen binds the front-end and starts accepting; it returns the bound
// address (use ":0" to pick a free port).
func (f *Frontend) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	f.ln = ln
	f.wg.Add(1)
	go f.acceptLoop()
	return ln.Addr(), nil
}

func (f *Frontend) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			if err := f.handleConn(conn); err != nil && !f.closed.Load() {
				if h := f.srv.opts.ErrorHandler; h != nil {
					h(fmt.Errorf("frontend: %w", err))
				}
			}
		}()
	}
}

// EntryExit derives the entry (unfed input) and exit (open output) ports of
// a compiled stream, the points where the front-end attaches the origin
// source and the client connection. Ports on instances that participate in
// the initial topology are preferred over ports of optional streamlets that
// only when-blocks wire in (like Figure 4-6's dashed entities).
func EntryExit(sc *mcl.StreamConfig) (entry, exit mcl.PortRef, err error) {
	connected := map[string]bool{}
	for _, c := range sc.Connections {
		connected[c.From.Inst] = true
		connected[c.To.Inst] = true
	}
	pick := func(refs []string) (mcl.PortRef, bool) {
		for _, r := range refs {
			if ref := splitRef(r); connected[ref.Inst] {
				return ref, true
			}
		}
		if len(refs) > 0 {
			return splitRef(refs[0]), true
		}
		return mcl.PortRef{}, false
	}
	in, ok := pick(semantics.UnfedInputs(sc))
	if !ok {
		return entry, exit, fmt.Errorf("server: stream %s has no unfed input port", sc.Name)
	}
	out, ok := pick(semantics.OpenPorts(sc))
	if !ok {
		return entry, exit, fmt.Errorf("server: stream %s has no open output port", sc.Name)
	}
	return in, out, nil
}

func splitRef(s string) mcl.PortRef {
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return mcl.PortRef{Inst: s}
	}
	return mcl.PortRef{Inst: s[:i], Port: s[i+1:]}
}

// EnableSharedSessions switches the front-end to shared-plane mode: the
// first connection requesting a stream opens a SessionGateway for it (a
// fixed instance pool), and every connection becomes a logical session on
// the pool, subject to the table's quotas and admission control. Call
// before Listen.
func (f *Frontend) EnableSharedSessions(cfg SessionGatewayConfig) {
	f.gwMu.Lock()
	f.gwCfg = &cfg
	f.gwPool = make(map[string]*SessionGateway)
	f.gwMu.Unlock()
}

// gateway lazily opens (or returns) the shared gateway for a stream; nil
// when shared-plane mode is off — or when the stream is not SessionSafe
// (a STATEFUL streamlet would correlate messages across sessions on a
// shared plane), in which case the connection falls back to the classic
// per-connection deployment. The fallback is cached as a nil entry and
// reported once through the server's error handler.
func (f *Frontend) gateway(name string) (*SessionGateway, error) {
	f.gwMu.Lock()
	defer f.gwMu.Unlock()
	if f.gwCfg == nil {
		return nil, nil
	}
	if g, ok := f.gwPool[name]; ok {
		return g, nil
	}
	if !SessionSafe(f.srv.Config(), name) {
		f.gwPool[name] = nil
		if h := f.srv.opts.ErrorHandler; h != nil {
			h(fmt.Errorf("shared sessions: stream %q has a STATEFUL streamlet and is not session-safe; falling back to per-connection deployment", name))
		}
		return nil, nil
	}
	g, err := f.srv.OpenSessionGateway(name, *f.gwCfg)
	if err != nil {
		return nil, err
	}
	f.gwPool[name] = g
	return g, nil
}

func (f *Frontend) handleConn(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReader(conn)
	req, err := mime.ReadMessage(br)
	if err != nil {
		return fmt.Errorf("reading request: %w", err)
	}
	name := req.Header(HeaderRequestStream)
	if name == "" {
		return fmt.Errorf("request lacks %s header", HeaderRequestStream)
	}
	cfg := f.srv.Config()
	if cfg == nil || cfg.Stream(name) == nil {
		return fmt.Errorf("unknown stream %q", name)
	}
	if gw, err := f.gateway(name); err != nil {
		return err
	} else if gw != nil {
		return f.handleSharedConn(conn, req, gw, name)
	}
	entry, exit, err := EntryExit(cfg.Stream(name))
	if err != nil {
		return err
	}

	alias := fmt.Sprintf("%s#%d", name, f.connID.Add(1))
	st, err := f.srv.DeployInstance(name, alias)
	if err != nil {
		return err
	}
	defer func() { _ = f.srv.Undeploy(alias) }()
	mSessionsTotal.Inc()
	mSessionsActive.Add(1)
	defer mSessionsActive.Add(-1)

	inlet, err := st.OpenInlet(entry, 0)
	if err != nil {
		return err
	}
	outlet, err := st.OpenOutlet(exit)
	if err != nil {
		return err
	}

	// Feed the origin flow.
	feedDone := make(chan struct{})
	var fed atomic.Int64
	go func() {
		defer close(feedDone)
		for m := range f.source(req) {
			if err := inlet.Send(m); err != nil {
				return
			}
			fed.Add(1)
		}
	}()

	// Relay adapted messages to the client until the feed completes and
	// everything fed has come out (or errored away).
	bw := bufio.NewWriter(conn)
	var sent int64
	feedClosed := false
	for {
		m, err := outlet.TryReceive()
		if err != nil {
			return err
		}
		if m == nil {
			// Fed messages may legitimately shrink in count (drops,
			// merges); the session ends when everything fed has come out
			// or the pipeline is fully drained. A final sweep catches
			// emissions racing the drain check.
			if feedClosed && (sent >= fed.Load() || st.CanTerminate()) {
				for {
					m, err := outlet.TryReceive()
					if err != nil {
						return err
					}
					if m == nil {
						break
					}
					if _, err := m.WriteToV(bw); err != nil {
						return err
					}
					sent++
				}
				break
			}
			select {
			case <-feedDone:
				feedClosed = true
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		m.SetHeader(HeaderSeq, strconv.FormatInt(sent, 10))
		if _, err := m.WriteToV(bw); err != nil {
			return err
		}
		sent++
	}
	return bw.Flush()
}

// handleSharedConn serves one connection as a logical session on the
// stream's shared gateway. The feeder posts through SendWait, so the
// session's own quota acts as backpressure (the feed stalls until earlier
// deliveries release their reservations) rather than loss; plane-wide
// load sheds and oversized messages drop the message but keep the session
// alive. The connection ends when the feed completes and every admitted
// message was delivered — or, when the chain consumed some (drops,
// merges), after a short drain grace, with the session's remaining
// reservations reconciled by Abort.
func (f *Frontend) handleSharedConn(conn net.Conn, req *mime.Message, gw *SessionGateway, name string) error {
	sessID := fmt.Sprintf("%s#%d", name, f.connID.Add(1))
	sess, deliveries, err := gw.Connect(sessID)
	if err != nil {
		return fmt.Errorf("session %s: %w", sessID, err)
	}
	mSessionsTotal.Inc()
	mSessionsActive.Add(1)
	defer mSessionsActive.Add(-1)

	feedDone := make(chan struct{})
	go func() {
		defer close(feedDone)
		for m := range f.source(req) {
			if err := gw.SendWait(sess, m); err != nil &&
				err != session.ErrQuota && err != session.ErrShed {
				return
			}
		}
	}()

	bw := bufio.NewWriter(conn)
	var sent int64
	write := func(m *mime.Message) error {
		m.SetHeader(HeaderSeq, strconv.FormatInt(sent, 10))
		if _, err := m.WriteToV(bw); err != nil {
			return err
		}
		sent++
		return nil
	}
	var werr error
	feedClosed := false
	var quiet time.Time
relay:
	for {
		select {
		case m := <-deliveries:
			if werr = write(m); werr != nil {
				break relay
			}
			quiet = time.Time{}
		case <-feedDone:
			feedClosed = true
			feedDone = nil // receive once; the timeout arm drives the exit
		case <-time.After(200 * time.Microsecond):
			if !feedClosed {
				continue
			}
			if sess.Outstanding() == 0 && len(deliveries) == 0 {
				break relay
			}
			// The chain may have consumed admitted messages (drops,
			// merges): give the drain a grace window, then reconcile.
			if quiet.IsZero() {
				quiet = time.Now()
			} else if time.Since(quiet) > 2*time.Second {
				break relay
			}
		}
	}
	// Disconnect barriers the relay's in-flight handoff (its write lock
	// waits out the read-locked Release+send), so one final sweep of the
	// buffered channel observes everything that was ever routed.
	gw.Disconnect(sessID)
	for {
		select {
		case m := <-deliveries:
			if werr == nil {
				werr = write(m)
			}
			continue
		default:
		}
		break
	}
	if sess.State() == session.StateDraining {
		sess.Abort()
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// Close stops accepting and waits for in-flight connections. The metrics
// endpoint, when serving, is shut down as well.
func (f *Frontend) Close() error {
	f.closed.Store(true)
	var err error
	if f.ln != nil {
		err = f.ln.Close()
	}
	f.metricsMu.Lock()
	mln := f.metricsLn
	f.metricsLn = nil
	f.metricsMu.Unlock()
	if mln != nil {
		_ = mln.Close()
	}
	f.wg.Wait()
	f.gwMu.Lock()
	pool := f.gwPool
	f.gwPool = nil
	f.gwMu.Unlock()
	for _, g := range pool {
		if g != nil {
			g.Close()
		}
	}
	return err
}

// ServeRequest runs one in-process session without TCP: origin messages
// from src flow through a fresh instance of the named stream, and adapted
// messages are written to w in wire format. Used by tests and the CLI's
// one-shot mode.
func (f *Frontend) ServeRequest(name string, src <-chan *mime.Message, w io.Writer) error {
	cfg := f.srv.Config()
	if cfg == nil || cfg.Stream(name) == nil {
		return fmt.Errorf("unknown stream %q", name)
	}
	entry, exit, err := EntryExit(cfg.Stream(name))
	if err != nil {
		return err
	}
	alias := fmt.Sprintf("%s#req%d", name, f.connID.Add(1))
	st, err := f.srv.DeployInstance(name, alias)
	if err != nil {
		return err
	}
	defer func() { _ = f.srv.Undeploy(alias) }()
	mSessionsTotal.Inc()
	mSessionsActive.Add(1)
	defer mSessionsActive.Add(-1)

	inlet, err := st.OpenInlet(entry, 0)
	if err != nil {
		return err
	}
	outlet, err := st.OpenOutlet(exit)
	if err != nil {
		return err
	}
	var fed int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range src {
			if err := inlet.Send(m); err != nil {
				return
			}
			atomic.AddInt64(&fed, 1)
		}
	}()
	var sent int64
	finished := false
	for {
		m, err := outlet.TryReceive()
		if err != nil {
			return err
		}
		if m == nil {
			if finished && (sent >= atomic.LoadInt64(&fed) || st.CanTerminate()) {
				for {
					m, err := outlet.TryReceive()
					if err != nil {
						return err
					}
					if m == nil {
						return nil
					}
					m.SetHeader(HeaderSeq, strconv.FormatInt(sent, 10))
					if _, err := m.WriteToV(w); err != nil {
						return err
					}
					sent++
				}
			}
			select {
			case <-done:
				finished = true
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		m.SetHeader(HeaderSeq, strconv.FormatInt(sent, 10))
		if _, err := m.WriteToV(w); err != nil {
			return err
		}
		sent++
	}
}
