package server

import (
	"strings"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mcl"

	"mobigate/internal/semantics"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

const gatewayScript = `
streamlet src2sink {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream webflow {
	streamlet c = new-streamlet (src2sink);
}
`

const loopScript = `
streamlet f { port { in pi : text; out po : text; } attribute { library = "text/compress"; } }
stream bad {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (f);
	connect (a.po, b.pi);
	connect (b.po, a.pi);
}
`

func newTestServer(t *testing.T) *Server {
	t.Helper()
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	s := New(Options{Directory: dir})
	t.Cleanup(s.Close)
	return s
}

func TestLoadScriptAndReport(t *testing.T) {
	s := newTestServer(t)
	if err := s.LoadScript(gatewayScript); err != nil {
		t.Fatal(err)
	}
	if s.Config() == nil {
		t.Fatal("config nil")
	}
	rep := s.Report("webflow")
	if rep == nil || !rep.OK() {
		t.Errorf("report = %+v", rep)
	}
	if err := s.LoadScript("not mcl"); err == nil {
		t.Error("garbage script accepted")
	}
}

func TestDeployUndeploy(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Deploy("webflow"); err == nil {
		t.Error("deploy before load succeeded")
	}
	if err := s.LoadScript(gatewayScript); err != nil {
		t.Fatal(err)
	}
	st, err := s.Deploy("webflow")
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || s.Stream("webflow") != st {
		t.Error("deployed stream not tracked")
	}
	if _, err := s.Deploy("webflow"); err == nil {
		t.Error("double deploy succeeded")
	}
	if got := s.Deployed(); len(got) != 1 || got[0] != "webflow" {
		t.Errorf("Deployed = %v", got)
	}
	if err := s.Undeploy("webflow"); err != nil {
		t.Fatal(err)
	}
	if err := s.Undeploy("webflow"); err == nil {
		t.Error("double undeploy succeeded")
	}
	// Instances deploy under aliases.
	a, err := s.DeployInstance("webflow", "webflow#1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.DeployInstance("webflow", "webflow#2")
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a.SessionID() == b.SessionID() {
		t.Error("instances share identity")
	}
}

func TestDeployRejectsFeedbackLoop(t *testing.T) {
	s := newTestServer(t)
	if err := s.LoadScript(loopScript); err != nil {
		t.Fatal(err)
	}
	rep := s.Report("bad")
	if rep.OK() {
		t.Fatal("loop not detected at load")
	}
	if _, err := s.Deploy("bad"); err == nil || !strings.Contains(err.Error(), "semantic analysis") {
		t.Errorf("loop deploy error = %v", err)
	}
}

func TestStrictModeRejectsAnyViolation(t *testing.T) {
	// Open circuit only (no loop): non-strict deploys, strict refuses.
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "text/compress"; } }
streamlet g { port { in pi : text; out po : text; } attribute { library = "text/compress"; } }
stream app {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (g);
	connect (a.po, b.pi);
}
`
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)

	// Rules that flag a dependency violation (f requires missing defs).
	rules := semantics.Rules{Dependencies: map[string][]string{"f": {"missing"}}}
	lax := New(Options{Directory: dir, Rules: rules})
	defer lax.Close()
	if err := lax.LoadScript(src); err != nil {
		t.Fatal(err)
	}
	if _, err := lax.Deploy("app"); err != nil {
		t.Errorf("lax deploy failed: %v", err)
	}
	strict := New(Options{Directory: dir, Rules: rules, Strict: true})
	defer strict.Close()
	if err := strict.LoadScript(src); err != nil {
		t.Fatal(err)
	}
	if _, err := strict.Deploy("app"); err == nil {
		t.Error("strict deploy succeeded despite violations")
	}
}

func TestEventRoutingToDeployedStream(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "text/compress"; } }
streamlet g { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "text/decompress"; } }
main stream app {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (g);
	when (LOW_BANDWIDTH) {
		connect (a.po, b.pi);
	}
}
`
	s := newTestServer(t)
	if err := s.LoadScript(src); err != nil {
		t.Fatal(err)
	}
	st, err := s.Deploy("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Raise(event.LOW_BANDWIDTH, ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Reconfigurations() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Reconfigurations() != 1 {
		t.Errorf("reconfigurations = %d", st.Reconfigurations())
	}
	// Events of non-subscribed categories do not reach the stream.
	if err := s.Raise(event.LOW_ENERGY, ""); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if st.Reconfigurations() != 1 {
		t.Error("unsubscribed category delivered")
	}
}

func TestDeployRegistersUnknownEvents(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "text/compress"; } }
main stream app {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (f);
	when (MY_CUSTOM_EVENT) {
		connect (a.po, b.pi);
	}
}
`
	s := newTestServer(t)
	if err := s.LoadScript(src); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy("app"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Events().Catalog().CategoryOf("MY_CUSTOM_EVENT"); !ok {
		t.Error("custom event not registered")
	}
	if err := s.Raise("MY_CUSTOM_EVENT", ""); err != nil {
		t.Errorf("raise custom: %v", err)
	}
}

func TestCloseIsTerminal(t *testing.T) {
	s := newTestServer(t)
	if err := s.LoadScript(gatewayScript); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy("webflow"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if got := s.Deployed(); len(got) != 0 {
		t.Errorf("streams survive close: %v", got)
	}
	if _, err := s.Deploy("webflow"); err == nil {
		t.Error("deploy after close succeeded")
	}
}

func TestStreamletManagerPooling(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	m := NewStreamletManager(dir)

	stateless := &mcl.StreamletDecl{Name: "c", Kind: mcl.Stateless, Library: services.LibTextCompress}
	stateful := &mcl.StreamletDecl{Name: "m", Kind: mcl.Stateful, Library: services.LibMerge}

	p1, err := m.Acquire(stateless)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(stateless, p1)
	p2, err := m.Acquire(stateless)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("stateless instance not pooled")
	}

	s1, err := m.Acquire(stateful)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(stateful, s1)
	s2, err := m.Acquire(stateful)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Error("stateful instance reused")
	}

	acquired, released, created, reused := m.Stats()
	if acquired != 4 || released != 2 {
		t.Errorf("acquired/released = %d/%d", acquired, released)
	}
	if created == 0 || reused != 1 {
		t.Errorf("created/reused = %d/%d", created, reused)
	}

	if _, err := m.Acquire(nil); err == nil {
		t.Error("nil decl accepted")
	}
	if _, err := m.Acquire(&mcl.StreamletDecl{Library: "ghost"}); err == nil {
		t.Error("unknown library accepted")
	}
	m.Release(nil, nil) // no panic
}

func TestStreamletManagerPoolingDisabled(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	m := NewStreamletManager(dir)
	m.DisablePooling = true
	decl := &mcl.StreamletDecl{Name: "c", Kind: mcl.Stateless, Library: services.LibTextCompress}
	p1, _ := m.Acquire(decl)
	m.Release(decl, p1)
	p2, _ := m.Acquire(decl)
	if p1 == p2 {
		t.Error("pooling disabled but instance reused")
	}
}

func TestEntryExit(t *testing.T) {
	cfg, err := mcl.Compile(gatewayScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	entry, exit, err := EntryExit(cfg.Stream("webflow"))
	if err != nil {
		t.Fatal(err)
	}
	if entry.String() != "c.pi" || exit.String() != "c.po" {
		t.Errorf("entry=%s exit=%s", entry, exit)
	}
	// A stream with no open ends fails.
	closed := `
streamlet f { port { out po : text; } attribute { library = "text/compress"; } }
streamlet g { port { in pi : text; } attribute { library = "text/compress"; } }
stream sealed {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (g);
	connect (a.po, b.pi);
}
`
	cfg2, err := mcl.Compile(closed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := EntryExit(cfg2.Stream("sealed")); err == nil {
		t.Error("sealed stream produced entry/exit")
	}
}

func TestEntryExitPrefersConnectedInstances(t *testing.T) {
	// tc is an optional streamlet only wired by a when-block; its dangling
	// ports must not be chosen as the session entry/exit.
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "text/compress"; } }
main stream app {
	streamlet tc = new-streamlet (f);
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (f);
	connect (a.po, b.pi);
	when (LOW_BANDWIDTH) {
		disconnect (a.po, b.pi);
		connect (a.po, tc.pi);
		connect (tc.po, b.pi);
	}
}
`
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	entry, exit, err := EntryExit(cfg.Stream("app"))
	if err != nil {
		t.Fatal(err)
	}
	if entry.String() != "a.pi" || exit.String() != "b.po" {
		t.Errorf("entry=%s exit=%s, want a.pi/b.po", entry, exit)
	}
}

func TestLoadScriptsUnit(t *testing.T) {
	s := newTestServer(t)
	lib := `
streamlet libc { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "text/compress"; } }
`
	app := `
main stream unitApp {
	streamlet c = new-streamlet (libc);
}
`
	if err := s.LoadScripts(map[string]string{"lib.mcl": lib, "app.mcl": app}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy("unitApp"); err != nil {
		t.Fatal(err)
	}
	// A bad member names its file.
	err := s.LoadScripts(map[string]string{"oops.mcl": "garbage"})
	if err == nil || !strings.Contains(err.Error(), "oops.mcl") {
		t.Errorf("error = %v", err)
	}
}
