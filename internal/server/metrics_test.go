package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mobigate/internal/mime"
	"mobigate/internal/netem"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	srv := New(Options{Directory: dir})
	defer srv.Close()
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(srv, nil)
	maddr, err := fe.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	base := "http://" + maddr.String()

	// Touch a link so the netem gauges reflect a configuration.
	link := netem.MustNew(netem.Config{BandwidthBps: 123_000})
	link.Close()

	// Run one in-process session to generate traffic.
	src := make(chan *mime.Message, 4)
	for i := 0; i < 4; i++ {
		src <- mime.NewMessage(services.TypePlainText, services.GenText(512, int64(i)))
	}
	close(src)
	var sink bytes.Buffer
	if err := fe.ServeRequest("webflow", src, &sink); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	// Every instrumented subsystem must be present in one exposition:
	// queues, pool, streams, link, events, sessions.
	for _, name := range []string{
		obs.MQueuePostTotal, obs.MQueueFetchTotal,
		obs.MPoolPutTotal,
		obs.MStreamProcessedTotal, obs.MStreamletProcessSeconds,
		obs.MLinkBandwidthBps,
		obs.MEventsDeliveredTotal,
		obs.MSessionsTotal, obs.MStreamsDeployedTotal,
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(body, obs.MLinkBandwidthBps+" 123000") {
		t.Errorf("/metrics bandwidth gauge not set:\n%s", grepLines(body, obs.MLinkBandwidthBps))
	}

	code, body = httpGet(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json = %d", code)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}
	if _, ok := parsed[obs.MQueuePostTotal]; !ok {
		t.Errorf("/metrics.json missing %s", obs.MQueuePostTotal)
	}
}

func TestTraceEndpoint(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	srv := New(Options{Directory: dir})
	defer srv.Close()
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(srv, nil)
	maddr, err := fe.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	base := "http://" + maddr.String()

	src := make(chan *mime.Message, 2)
	src <- mime.NewMessage(services.TypePlainText, services.GenText(256, 1))
	close(src)
	var sink bytes.Buffer
	if err := fe.ServeRequest("webflow", src, &sink); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d", code)
	}
	var listing struct {
		Sessions []string `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) == 0 {
		t.Fatal("/trace lists no sessions after a session ran")
	}

	// Find a session that belongs to this test's run (webflow prefix).
	var session string
	for _, s := range listing.Sessions {
		if strings.Contains(s, "webflow") {
			session = s
		}
	}
	if session == "" {
		t.Fatalf("no webflow session in %v", listing.Sessions)
	}
	code, body = httpGet(t, base+"/trace/"+session)
	if code != http.StatusOK {
		t.Fatalf("GET /trace/%s = %d", session, code)
	}
	var rec struct {
		Session  string            `json:"session"`
		Messages []obs.TraceRecord `json:"messages"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Messages) == 0 || len(rec.Messages[0].Hops) == 0 {
		t.Fatalf("trace for %s has no hop records: %s", session, body)
	}

	code, _ = httpGet(t, base+"/trace/no-such-session")
	if code != http.StatusNotFound {
		t.Errorf("GET /trace/no-such-session = %d, want 404", code)
	}

	code, body = httpGet(t, base+"/streams")
	if code != http.StatusOK {
		t.Fatalf("GET /streams = %d", code)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/streams not a JSON object: %s", body)
	}
}

// httpGetFull also returns the Content-Type header.
func httpGetFull(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestMetricsContentTypes(t *testing.T) {
	fe := NewFrontend(New(Options{}), nil)
	defer fe.Close()
	maddr, err := fe.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + maddr.String()

	code, _, ct := httpGetFull(t, base+"/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics = %d %q, want 200 Prometheus text 0.0.4", code, ct)
	}
	for _, path := range []string{"/metrics.json", "/trace", "/slo", "/streams"} {
		code, body, ct := httpGetFull(t, base+path)
		if code != http.StatusOK || ct != "application/json" {
			t.Errorf("%s = %d %q, want 200 application/json", path, code, ct)
		}
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Errorf("%s not valid JSON: %v", path, err)
		}
	}
}

func TestDebugSurfaceGated(t *testing.T) {
	fe := NewFrontend(New(Options{}), nil)
	defer fe.Close()
	maddr, err := fe.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + maddr.String()
	for _, path := range []string{"/debug/flight", "/debug/pprof/"} {
		if code, _ := httpGet(t, base+path); code != http.StatusNotFound {
			t.Errorf("GET %s on plain metrics handler = %d, want 404", path, code)
		}
	}
}

func TestDebugFlightEndpoint(t *testing.T) {
	fe := NewFrontend(New(Options{}), nil)
	defer fe.Close()
	maddr, err := fe.ServeMetricsDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + maddr.String()

	// The shared journal always has control-plane traffic by this point in
	// the test binary, but record explicitly so the test stands alone.
	for i := 0; i < 8; i++ {
		obs.FlightRecord(obs.FlightEvent, "metrics-test", "", int64(i))
	}

	code, body, ct := httpGetFull(t, base+"/debug/flight")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("/debug/flight = %d %q", code, ct)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) == 0 {
		t.Fatal("/debug/flight returned an empty journal")
	}

	// ?limit truncates an oversized dump, keeping the newest entries.
	code, body = httpGet(t, base+"/debug/flight?limit=3")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight?limit=3 = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 3 || !dump.Truncated || dump.Total <= 3 {
		t.Errorf("limit=3 dump: %d events, truncated=%v, total=%d", len(dump.Events), dump.Truncated, dump.Total)
	}

	for _, bad := range []string{"0", "-5", "abc"} {
		if code, _ := httpGet(t, base+"/debug/flight?limit="+bad); code != http.StatusBadRequest {
			t.Errorf("limit=%s = %d, want 400", bad, code)
		}
	}

	// ?last returns the most recent auto-dump once one exists. (The shared
	// recorder may already hold one from earlier tests, so assert on the
	// reason of a fresh dump rather than on 404-before.)
	obs.FlightAutoDump("metrics-test-dump")
	code, body = httpGet(t, base+"/debug/flight?last=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight?last=1 = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Reason != "metrics-test-dump" {
		t.Errorf("last dump reason = %q", dump.Reason)
	}
}

func TestMetricsConcurrentScrape(t *testing.T) {
	fe := NewFrontend(New(Options{}), nil)
	defer fe.Close()
	maddr, err := fe.ServeMetricsDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + maddr.String()
	paths := []string{"/metrics", "/metrics.json", "/trace", "/slo", "/debug/flight"}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				// Writers churn the stores the scrapes read.
				obs.FlightRecord(obs.FlightEvent, "scrape-test", "", int64(i))
				obs.DefaultCounter("scrape_test_total").Inc()
				code, _ := httpGet(t, base+paths[(g+i)%len(paths)])
				if code != http.StatusOK {
					t.Errorf("concurrent GET %s = %d", paths[(g+i)%len(paths)], code)
				}
			}
		}(g)
	}
	wg.Wait()
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return fmt.Sprint(out)
}
