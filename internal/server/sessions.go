package server

// Shared-plane session multiplexing: instead of deploying one streamlet
// chain per client connection (handleConn's historical model — simple, but
// N clients cost N chains), a SessionGateway deploys a small fixed pool of
// shared instances of the requested stream and maps every client onto the
// pool through internal/session. A connection becomes a logical session:
// its messages are stamped with a session id, posted into its plane's
// shared inlet under the session's quota, processed by the shared chain,
// and demultiplexed back to the owning connection by the gateway's relay.
// Admission control and load shedding come with the session table: connect
// storms are refused at accept time, and a saturated plane sheds per-
// message instead of stalling every client behind the §6.2 grace wait.

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/obs"
	"mobigate/internal/session"
	"mobigate/internal/stream"
)

// Session-demux headers stamped by the gateway.
const (
	// HeaderSessionID names the logical session a message belongs to; the
	// relay routes deliveries by it.
	HeaderSessionID = "X-Session-Id"
	// HeaderSessionSize carries the size charged against the session quota
	// at admit time, so the release returns exactly what was reserved even
	// when the chain transforms the body.
	HeaderSessionSize = "X-Session-Admitted"
	// HeaderSessionT0 carries the admit-time monotonic stamp feeding the
	// plane's SLO chain (set only when a budget is configured).
	HeaderSessionT0 = "X-Session-T0"
)

// SessionGatewayConfig parameterizes a shared-plane gateway.
type SessionGatewayConfig struct {
	// Instances is the shared instance-pool size (default 2).
	Instances int
	// Session configures the table: quotas, admission, shedding, SLO.
	Session session.Config
	// DeliveryBuffer is the per-session delivery channel depth (default
	// 256). A session whose client stops reading sheds its deliveries once
	// the buffer fills, instead of stalling the relay for every session on
	// the same instance.
	DeliveryBuffer int
}

type gwInstance struct {
	alias string
	st    *stream.Stream
	in    *stream.Inlet
	out   *stream.Outlet
}

type gwRoute struct {
	sess *session.Session
	ch   chan *mime.Message
}

// SessionGateway multiplexes logical sessions onto a pool of shared
// deployed instances of one stream.
type SessionGateway struct {
	srv   *Server
	name  string
	cfg   SessionGatewayConfig
	tbl   *session.Table
	insts map[*session.Plane]*gwInstance

	// routes is written by Connect/Disconnect and read (under RLock, held
	// across the Release) by the relays; Disconnect's write lock therefore
	// barriers any in-flight release before the caller may Abort.
	routeMu sync.RWMutex
	routes  map[string]*gwRoute

	stop    chan struct{}
	wg      sync.WaitGroup
	closing sync.Once
}

// SessionSafe reports whether the named stream may run in shared-plane
// session mode. A shared chain interleaves many sessions' messages, so
// every streamlet must be session-transparent — STATELESS, processing each
// message independently. A STATEFUL streamlet correlates messages across
// its inputs (a two-input merge pairs an image with a caption; a cache
// keys on prior traffic), and on a shared plane it would correlate
// messages belonging to *different* sessions. Composite instances are
// judged by their backing stream, not their synthesized declaration
// (which is always marked stateful for per-stream state).
func SessionSafe(c *mcl.Config, name string) bool {
	return sessionSafe(c, name, make(map[string]bool))
}

func sessionSafe(c *mcl.Config, name string, seen map[string]bool) bool {
	if c == nil || seen[name] {
		return false
	}
	seen[name] = true
	sc := c.Stream(name)
	if sc == nil {
		return false
	}
	for _, inst := range sc.Instances {
		if inst.Kind == mcl.KindComposite {
			if !sessionSafe(c, inst.Stream, seen) {
				return false
			}
			continue
		}
		if inst.Decl == nil || inst.Decl.Kind == mcl.Stateful {
			return false
		}
	}
	return true
}

// OpenSessionGateway deploys the shared instance pool for the named stream
// and returns the gateway that multiplexes sessions onto it. Streams that
// are not SessionSafe are refused: sharing their chain would mix sessions.
func (s *Server) OpenSessionGateway(name string, cfg SessionGatewayConfig) (*SessionGateway, error) {
	if cfg.Instances <= 0 {
		cfg.Instances = 2
	}
	if cfg.DeliveryBuffer <= 0 {
		cfg.DeliveryBuffer = 256
	}
	c := s.Config()
	if c == nil || c.Stream(name) == nil {
		return nil, fmt.Errorf("server: unknown stream %q", name)
	}
	if !SessionSafe(c, name) {
		return nil, fmt.Errorf("server: stream %q is not session-safe: a STATEFUL streamlet correlates messages across sessions on a shared plane; deploy per-connection instead", name)
	}
	entry, exit, err := EntryExit(c.Stream(name))
	if err != nil {
		return nil, err
	}
	g := &SessionGateway{
		srv:    s,
		name:   name,
		cfg:    cfg,
		insts:  make(map[*session.Plane]*gwInstance, cfg.Instances),
		routes: make(map[string]*gwRoute),
		stop:   make(chan struct{}),
	}
	sessCfg := cfg.Session.Defaults()
	planes := make([]*session.Plane, 0, cfg.Instances)
	for i := 0; i < cfg.Instances; i++ {
		alias := fmt.Sprintf("%s~shared%d", name, i)
		st, err := s.DeployInstance(name, alias)
		if err != nil {
			g.teardownInstances()
			return nil, err
		}
		// The shared inlet gets headroom past the shed threshold so the
		// load-shedder, not the queue's blocking grace, is what saturation
		// hits first.
		in, err := st.OpenInlet(entry, 2*sessCfg.ShedBytes)
		if err != nil {
			g.teardownInstances()
			_ = s.Undeploy(alias)
			return nil, err
		}
		out, err := st.OpenOutlet(exit)
		if err != nil {
			g.teardownInstances()
			_ = s.Undeploy(alias)
			return nil, err
		}
		p := session.NewPlane(alias, in.Queue())
		planes = append(planes, p)
		g.insts[p] = &gwInstance{alias: alias, st: st, in: in, out: out}
	}
	tbl, err := session.NewTable(sessCfg, planes...)
	if err != nil {
		g.teardownInstances()
		return nil, err
	}
	g.tbl = tbl
	for _, inst := range g.insts {
		g.wg.Add(1)
		go g.relay(inst)
	}
	return g, nil
}

func (g *SessionGateway) teardownInstances() {
	for _, inst := range g.insts {
		_ = g.srv.Undeploy(inst.alias)
	}
}

// Table exposes the session table (stats, sweeps).
func (g *SessionGateway) Table() *session.Table { return g.tbl }

// Connect admits a session and returns it with its delivery channel.
func (g *SessionGateway) Connect(id string) (*session.Session, <-chan *mime.Message, error) {
	sess, err := g.tbl.Connect(id)
	if err != nil {
		return nil, nil, err
	}
	r := &gwRoute{sess: sess, ch: make(chan *mime.Message, g.cfg.DeliveryBuffer)}
	g.routeMu.Lock()
	g.routes[id] = r
	g.routeMu.Unlock()
	return sess, r.ch, nil
}

// Disconnect unroutes the session and starts its drain. On return no
// further deliveries or releases can reach it, so a caller finding the
// session still draining (in-flight messages were transformed away or
// dropped inside the chain) may reconcile with Abort.
func (g *SessionGateway) Disconnect(id string) {
	g.routeMu.Lock()
	delete(g.routes, id)
	g.routeMu.Unlock()
	g.tbl.Disconnect(id)
}

// Send admits m against the session's quota and posts it into the
// session's shared plane. Shed messages return ErrQuota/ErrShed from the
// session layer; the caller decides whether that ends the connection.
func (g *SessionGateway) Send(sess *session.Session, m *mime.Message) error {
	m.SetHeader(HeaderSessionID, sess.ID())
	size := m.Len()
	m.SetHeader(HeaderSessionSize, strconv.Itoa(size))
	if g.tbl.Config().SLOBudget > 0 {
		m.SetHeader(HeaderSessionT0, strconv.FormatInt(obs.MonoNow(), 10))
	}
	if err := sess.Admit(size); err != nil {
		return err
	}
	inst := g.insts[sess.Plane()]
	if err := inst.in.Send(m); err != nil {
		sess.Unadmit(size)
		return err
	}
	sess.MarkPosted()
	return nil
}

// SendWait posts like Send but treats the session's *own* quota as
// backpressure instead of overload: when the message would not fit the
// outstanding bound, it waits for earlier deliveries to release their
// reservations and retries. A session has exactly one feeder, so
// outstanding only shrinks underneath the wait and the eventual Admit is
// exact — a cooperative client that reads its deliveries never takes a
// quota shed. Plane-wide saturation (ErrShed) still fails fast: that
// pressure comes from other sessions, and it is their deliveries — not
// this session's — that would have to clear it. Returns ErrClosed when
// the session drains or closes while waiting, and gives up with ErrQuota
// if a single message can never fit the quota at all.
func (g *SessionGateway) SendWait(sess *session.Session, m *mime.Message) error {
	cfg := g.tbl.Config()
	size := int64(m.Len())
	if size > cfg.QuotaBytes {
		return g.Send(sess, m) // oversized: let Admit count the shed
	}
	for {
		if sess.Outstanding() < cfg.QuotaMessages &&
			sess.OutstandingBytes()+size <= cfg.QuotaBytes {
			if err := g.Send(sess, m); err != session.ErrQuota {
				return err
			}
			// Lost an admit race (shed accounting already rolled back);
			// fall through and wait for headroom again.
		}
		if st := sess.State(); st != session.StateActive && st != session.StateIdle {
			return session.ErrClosed
		}
		select {
		case <-g.stop:
			return session.ErrClosed
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// relay drains one shared instance's outlet and routes every delivery to
// its session's channel, releasing the quota reservation as it goes.
func (g *SessionGateway) relay(inst *gwInstance) {
	defer g.wg.Done()
	for {
		m, err := inst.out.TryReceive()
		if err != nil || m == nil {
			select {
			case <-g.stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		id := m.Header(HeaderSessionID)
		size, _ := strconv.Atoi(m.Header(HeaderSessionSize))
		var latency int64
		if t0 := m.Header(HeaderSessionT0); t0 != "" {
			if ns, err := strconv.ParseInt(t0, 10, 64); err == nil {
				latency = obs.MonoNow() - ns
			}
		}
		g.routeMu.RLock()
		r := g.routes[id]
		if r != nil {
			// Release under the read lock: Disconnect's write lock then
			// guarantees no release is in flight once it returns.
			r.sess.Release(size, latency)
			select {
			case r.ch <- m:
			default:
				// Client not draining its channel: shed the delivery
				// rather than stall every session on this instance.
			}
		}
		g.routeMu.RUnlock()
		// Unrouted deliveries (session disconnected while in flight) are
		// dropped; the disconnect path's Abort reconciled their quota.
	}
}

// Close stops the relays, closes the table, and undeploys the pool.
func (g *SessionGateway) Close() {
	g.closing.Do(func() {
		close(g.stop)
		g.wg.Wait()
		g.tbl.Close()
		g.teardownInstances()
	})
}

// SweepSessions runs one idle sweep across every open shared-plane
// gateway, demoting sessions quiet for longer than idleAfter from Active
// to Idle (session.Table.Sweep), and returns the total demoted. Idle is
// bookkeeping, not a barrier — the next post promotes the session back —
// but it keeps /sessions and the health model distinguishing a full table
// from a busy one.
func (f *Frontend) SweepSessions(idleAfter time.Duration) int {
	f.gwMu.Lock()
	gws := make([]*SessionGateway, 0, len(f.gwPool))
	for _, g := range f.gwPool {
		if g != nil {
			gws = append(gws, g)
		}
	}
	f.gwMu.Unlock()
	idled := 0
	for _, g := range gws {
		idled += g.tbl.Sweep(idleAfter)
	}
	return idled
}

// StartSessionSweeper runs SweepSessions every interval until the returned
// stop function is called (idempotent). Sessions quiet for longer than
// idleAfter demote; the server wires both durations to its -session-sweep
// flag.
func (f *Frontend) StartSessionSweeper(interval, idleAfter time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				f.SweepSessions(idleAfter)
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
