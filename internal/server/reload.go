package server

// MCL hot-reload: swap a running gateway's coordination state — event
// reactions and autopilot policies — for a recompiled script without
// restarting any stream. This is the missing half of the §8.2.1 dynamic-
// inclusion recommendation: the thesis lets scripts register new events at
// runtime; reload lets operators change what the events *do* (and what the
// autopilot watches) while sessions keep flowing. Topology statements in
// the new script do not retrofit onto live streams: a deployed stream keeps
// its current composition and picks up only the new when-blocks and
// policies; newly-declared streams become deployable immediately.

import (
	"fmt"

	"mobigate/internal/adapt"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/obs"
	"mobigate/internal/semantics"
	"mobigate/internal/stream"
)

var mAdaptReloads = obs.DefaultCounter(obs.MAdaptReloadsTotal)

// SetAutopilot attaches an adaptation engine: every deployed stream with
// compiled when-policies is bound to it, as is every future deploy. Pass
// nil to detach (already-attached streams are unbound).
func (s *Server) SetAutopilot(e *adapt.Engine) {
	s.mu.Lock()
	prev := s.autopilot
	s.autopilot = e
	cfg := s.cfg
	type bound struct {
		alias string
		st    *stream.Stream
		sc    *mcl.StreamConfig
	}
	var attach []bound
	var aliases []string
	for alias, st := range s.streams {
		aliases = append(aliases, alias)
		if cfg == nil {
			continue
		}
		if sc := cfg.Stream(s.names[alias]); sc != nil && len(sc.Policies) > 0 {
			attach = append(attach, bound{alias: alias, st: st, sc: sc})
		}
	}
	s.mu.Unlock()
	if prev != nil && prev != e {
		for _, a := range aliases {
			prev.Detach(a)
		}
	}
	if e == nil {
		return
	}
	for _, b := range attach {
		e.Attach(b.alias, b.st, b.sc.Policies)
	}
}

// Autopilot returns the attached adaptation engine (nil when none).
func (s *Server) Autopilot() *adapt.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.autopilot
}

// ReloadScript recompiles src and hot-swaps the coordination state.
func (s *Server) ReloadScript(src string) error {
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		return err
	}
	return s.reload(cfg)
}

// ReloadScripts is ReloadScript over several named sources compiled as one
// unit.
func (s *Server) ReloadScripts(sources map[string]string) error {
	cfg, err := mcl.CompileSources(sources, nil)
	if err != nil {
		return err
	}
	return s.reload(cfg)
}

// reload validates the new configuration against the deployed streams, then
// applies it: the stored config and analysis reports are replaced, each
// live stream's when-blocks are swapped in place, event subscriptions are
// re-derived, and the autopilot's policies are updated. All-or-nothing: any
// failure happens before the swap commits and leaves the server on the old
// configuration, with every stream still attached to the autopilot.
//
// The phases are strictly ordered: everything that can reject — the live-
// stream check, semantic analysis, and §8.2.1 dynamic event registration
// (done atomically via Catalog.ResolveAll, so a concurrent registration
// under a conflicting category can no longer fail the reload mid-apply) —
// runs before s.cfg is replaced, and the apply phase below is infallible.
// The previous shape registered events inside the apply loop and returned
// the error: a reload "rejected" there had already committed the new
// config, swapped some streams' whens but not others', and detached
// earlier streams from the autopilot — the engine stopped adapting a
// stream that was still live on its old policies. The whole function also
// holds s.mu across the apply, so a concurrent Undeploy cannot interleave
// with the re-attach loop and resurrect an engine binding for a stream
// that was just torn down.
func (s *Server) reload(cfg *mcl.Config) error {
	reports := make(map[string]*semantics.Report, len(cfg.Streams))
	for name, sc := range cfg.Streams {
		rules := s.opts.Rules
		rules.AllowedOpenPorts = append(append([]string(nil), rules.AllowedOpenPorts...),
			semantics.OpenPorts(sc)...)
		reports[name] = semantics.Analyze(sc, rules)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("server: closed")
	}
	type live struct {
		alias string
		st    *stream.Stream
		sc    *mcl.StreamConfig
		cats  []event.Category // categories of sc.Whens, resolved pre-commit
	}
	lives := make([]live, 0, len(s.streams))
	for alias, st := range s.streams {
		name := s.names[alias]
		sc := cfg.Stream(name)
		if sc == nil {
			return fmt.Errorf("server: reload rejected: deployed stream %q (alias %q) is missing from the new script", name, alias)
		}
		rep := reports[name]
		if rep != nil && !rep.OK() {
			fatal := s.opts.Strict
			for _, v := range rep.Violations {
				if v.Kind == "feedback-loop" {
					fatal = true
				}
			}
			if fatal {
				return fmt.Errorf("server: reload rejected: stream %q fails semantic analysis: %v", name, rep.Violations)
			}
		}
		lives = append(lives, live{alias: alias, st: st, sc: sc})
	}

	// Resolve (and register) every live stream's new when-events while the
	// old configuration is still authoritative. After this loop nothing in
	// the apply phase can fail.
	catalog := s.events.Catalog()
	for i := range lives {
		ids := make([]string, len(lives[i].sc.Whens))
		for j, w := range lives[i].sc.Whens {
			ids[j] = w.Event
		}
		lives[i].cats = catalog.ResolveAll(ids, event.SoftwareVariation)
	}

	// Commit. From here on the swap must complete for every live stream.
	s.cfg = cfg
	s.reports = reports
	autopilot := s.autopilot

	for _, l := range lives {
		// Old subscriptions are derived from the stream's current whens, so
		// compute them before the swap; SystemCommand always stays.
		oldCats := allCategories(catalog, l.st)
		l.st.ReplaceWhens(l.sc.Whens)
		newSeen := map[event.Category]bool{event.SystemCommand: true}
		for _, cat := range l.cats {
			if !newSeen[cat] {
				newSeen[cat] = true
				s.events.Subscribe(cat, l.st)
			}
		}
		for _, cat := range oldCats {
			if !newSeen[cat] {
				s.events.Unsubscribe(cat, l.st)
			}
		}
		if autopilot != nil {
			switch {
			case len(l.sc.Policies) == 0:
				autopilot.Detach(l.alias)
			case !autopilot.SetPolicies(l.alias, l.sc.Policies):
				autopilot.Attach(l.alias, l.st, l.sc.Policies)
			}
		}
	}
	mAdaptReloads.Inc()
	return nil
}
