package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mobigate/internal/mime"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
	"mobigate/internal/services"
	"mobigate/internal/session"
	"mobigate/internal/streamlet"
)

// settleHealthz polls /healthz until it reports 200 (each GET is one model
// evaluation, so a degraded residue from earlier tests recovers here).
func settleHealthz(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := httpGet(t, base+"/healthz")
		if code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never settled to 200")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthzDegradeRecover: a moving failure counter flips /healthz to
// 503 naming the component; clean evaluations bring it back to 200.
func TestHealthzDegradeRecover(t *testing.T) {
	ts := httptest.NewServer(NewMetricsHandler(nil))
	defer ts.Close()
	settleHealthz(t, ts.URL)

	// One queue drop between evaluations degrades the queues component.
	obs.DefaultCounter(obs.MQueueDropTotal).Inc()
	code, body := httpGet(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz after a queue drop = %d, want 503", code)
	}
	var snap obs.HealthSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/healthz body not JSON: %v", err)
	}
	if snap.Healthy {
		t.Fatalf("503 with healthy=true: %s", body)
	}
	queuesDegraded := false
	for _, c := range snap.Components {
		if c.Name == "queues" && !c.Healthy && c.Reason != "" {
			queuesDegraded = true
		}
	}
	if !queuesDegraded {
		t.Fatalf("queues component not named degraded: %s", body)
	}

	settleHealthz(t, ts.URL)
}

// TestSessionsEndpoint: /sessions serves the sampler snapshot and bounds
// the top lists by ?k.
func TestSessionsEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewMetricsHandler(nil))
	defer ts.Close()
	code, body := httpGet(t, ts.URL+"/sessions?k=3")
	if code != http.StatusOK {
		t.Fatalf("GET /sessions = %d", code)
	}
	var snap obs.SessionStatsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/sessions body not JSON: %v", err)
	}
	if snap.SampleRate <= 0 || snap.SlotCap <= 0 {
		t.Fatalf("bad sampler config in snapshot: %+v", snap)
	}
	if len(snap.TopBytes) > 3 || len(snap.TopSheds) > 3 || len(snap.TopViolations) > 3 {
		t.Fatalf("?k=3 not honored: %d/%d/%d entries",
			len(snap.TopBytes), len(snap.TopSheds), len(snap.TopViolations))
	}
	if code, _ := httpGet(t, ts.URL+"/sessions?k=bogus"); code != http.StatusBadRequest {
		t.Fatalf("GET /sessions?k=bogus = %d, want 400", code)
	}
}

// readSSEFrame reads one "event:"+"data:" frame from an SSE stream.
func readSSEFrame(br *bufio.Reader) (event string, data string, err error) {
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return event, data, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "" && data != "":
			return event, data, nil
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// TestWatchStream: the first frame is a full registry snapshot, later
// frames are deltas restricted to changed series.
func TestWatchStream(t *testing.T) {
	ts := httptest.NewServer(NewMetricsHandler(nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/watch?interval=50ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	event, data, err := readSSEFrame(br)
	if err != nil || event != "full" {
		t.Fatalf("first frame: event=%q err=%v", event, err)
	}
	var full watchFrame
	if err := json.Unmarshal([]byte(data), &full); err != nil {
		t.Fatalf("full frame not JSON: %v", err)
	}
	if len(full.Series) == 0 {
		t.Fatal("full frame carries no series")
	}
	if _, ok := full.Series[obs.MGoHeapBytes]; !ok {
		t.Fatalf("full frame missing %s", obs.MGoHeapBytes)
	}
	if len(full.Health.Components) == 0 {
		t.Fatal("full frame missing health components")
	}

	// Move exactly one counter; it must show up in a delta frame, and deltas
	// must stay smaller than the full frame (changed series only).
	obs.DefaultCounter(obs.MQueuePostTotal).Inc()
	for i := 0; i < 20; i++ {
		event, data, err = readSSEFrame(br)
		if err != nil {
			t.Fatalf("delta frame: %v", err)
		}
		if event != "delta" {
			t.Fatalf("second frame event %q", event)
		}
		var delta watchFrame
		if err := json.Unmarshal([]byte(data), &delta); err != nil {
			t.Fatalf("delta frame not JSON: %v", err)
		}
		if len(delta.Series) >= len(full.Series) {
			t.Fatalf("delta carries %d series, full carried %d", len(delta.Series), len(full.Series))
		}
		if _, ok := delta.Series[obs.MQueuePostTotal]; ok {
			return // the moved counter arrived in a delta
		}
	}
	t.Fatal("moved counter never appeared in a delta frame")
}

// TestWatchHealthzConcurrentChurn (S4): /watch subscribers connecting and
// cancelling, /healthz evaluations, and session churn all run concurrently
// under -race.
func TestWatchHealthzConcurrentChurn(t *testing.T) {
	ts := httptest.NewServer(NewMetricsHandler(nil))
	defer ts.Close()

	plane := session.NewPlane("watch-race-plane",
		queue.New("watch-race-q", queue.Options{CapacityBytes: 1 << 22}))
	tbl, err := session.NewTable(session.Config{}, plane)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Session churn: connect, post/fetch/release, disconnect.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := plane.Queue()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := "churn-" + strconv.Itoa(g) + "-" + strconv.Itoa(i)
				s, err := tbl.Connect(id)
				if err != nil {
					continue
				}
				if err := s.Post("m", 128, nil); err == nil {
					if _, ok := q.TryFetch(); ok {
						q.Ack()
					}
					s.Release(128, int64(time.Microsecond))
				}
				tbl.Disconnect(id)
			}
		}(g)
	}

	// Watch subscribers: subscribe, read a little, cancel.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/watch?interval=50ms", nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					br := bufio.NewReader(resp.Body)
					_, _, _ = readSSEFrame(br)
					resp.Body.Close()
				}
				cancel()
			}
		}()
	}

	// Healthz + sessions scrapers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r1, err := http.Get(ts.URL + "/healthz")
				if err == nil {
					r1.Body.Close()
				}
				r2, err := http.Get(ts.URL + "/sessions")
				if err == nil {
					r2.Body.Close()
				}
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Handlers notice the cancelled contexts asynchronously; give the
	// gauge a moment to drain back to zero.
	g := obs.DefaultIntGauge(obs.MWatchClients)
	deadline := time.Now().Add(5 * time.Second)
	for g.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watch clients gauge %d after all subscribers left", g.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestObservabilityOutputDeterministic (S2): with the gateway quiesced,
// repeated scrapes of /trace, /trace/<session>, and /streams are
// byte-identical — ordering never depends on map iteration.
func TestObservabilityOutputDeterministic(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	srv := New(Options{Directory: dir})
	defer srv.Close()
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(srv, nil)
	maddr, err := fe.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	base := "http://" + maddr.String()

	// Several sessions so the listings have multiple entries to order.
	for i := 0; i < 3; i++ {
		src := make(chan *mime.Message, 2)
		src <- mime.NewMessage(services.TypePlainText, services.GenText(128, int64(i)))
		close(src)
		var sink bytes.Buffer
		if err := fe.ServeRequest("webflow", src, &sink); err != nil {
			t.Fatal(err)
		}
	}

	paths := []string{"/trace", "/streams"}
	var listing struct {
		Sessions []string `json:"sessions"`
	}
	if _, body := httpGet(t, base+"/trace"); true {
		if err := json.Unmarshal([]byte(body), &listing); err != nil {
			t.Fatal(err)
		}
	}
	if len(listing.Sessions) < 3 {
		t.Fatalf("want >= 3 trace sessions, got %v", listing.Sessions)
	}
	paths = append(paths, "/trace/"+listing.Sessions[0])

	for _, p := range paths {
		_, first := httpGet(t, base+p)
		for i := 0; i < 5; i++ {
			_, again := httpGet(t, base+p)
			if again != first {
				t.Fatalf("%s scrape %d differs:\n--- first\n%s\n--- again\n%s", p, i, first, again)
			}
		}
	}
}
