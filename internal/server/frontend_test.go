package server

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/client"
	"mobigate/internal/mime"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

// webScript compresses the flow; the client must transparently decompress.
const webScript = `
streamlet compressor {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
streamlet cache {
	port { in pi : text; out po : text; }
	attribute { type = STATEFUL; library = "general/cache"; }
}
main stream webflow {
	streamlet k = new-streamlet (cache);
	streamlet c = new-streamlet (compressor);
	connect (k.po, c.pi);
}
`

func sourceOf(bodies [][]byte) Source {
	return func(req *mime.Message) <-chan *mime.Message {
		ch := make(chan *mime.Message)
		go func() {
			defer close(ch)
			for _, b := range bodies {
				ch <- mime.NewMessage(services.TypePlainText, append([]byte(nil), b...))
			}
		}()
		return ch
	}
}

func TestEndToEndTCPSession(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	srv := New(Options{Directory: dir, ErrorHandler: func(err error) { t.Log(err) }})
	defer srv.Close()
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}

	const n = 15
	var bodies [][]byte
	for i := 0; i < n; i++ {
		bodies = append(bodies, services.GenText(1024+37*i, int64(i)))
	}
	fe := NewFrontend(srv, sourceOf(bodies))
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := mime.NewMessage(mime.Wildcard, nil)
	req.SetHeader(HeaderRequestStream, "webflow")
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}

	peers := streamlet.NewDirectory()
	services.RegisterClientPeers(peers)
	var mu sync.Mutex
	var got [][]byte
	mc := client.New(client.Options{Peers: peers}, func(m *mime.Message) {
		mu.Lock()
		got = append(got, m.Body())
		mu.Unlock()
	})
	if err := mc.ServeConn(conn); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("client received %d messages, want %d", len(got), n)
	}
	want := map[string]bool{}
	for _, b := range bodies {
		want[string(b)] = true
	}
	for _, b := range got {
		if !want[string(b)] {
			t.Error("client received corrupted body")
		}
	}
	// Session cleaned up.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Deployed()) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.Deployed(); len(got) != 0 {
		t.Errorf("sessions leaked: %v", got)
	}
}

func TestConcurrentTCPSessions(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	srv := New(Options{Directory: dir, ErrorHandler: func(err error) { t.Logf("server error: %v", err) }})
	defer srv.Close()
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}
	bodies := [][]byte{services.GenText(512, 1), services.GenText(768, 2)}
	fe := NewFrontend(srv, sourceOf(bodies))
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			req := mime.NewMessage(mime.Wildcard, nil)
			req.SetHeader(HeaderRequestStream, "webflow")
			if _, err := req.WriteTo(conn); err != nil {
				t.Error(err)
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
			peers := streamlet.NewDirectory()
			services.RegisterClientPeers(peers)
			var count atomic.Int64
			mc := client.New(client.Options{Peers: peers}, func(*mime.Message) { count.Add(1) })
			if err := mc.ServeConn(conn); err != nil {
				t.Error(err)
				return
			}
			if int(count.Load()) != len(bodies) {
				t.Errorf("session got %d messages", count.Load())
			}
		}()
	}
	wg.Wait()
}

func TestServeRequestInProcess(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	srv := New(Options{Directory: dir})
	defer srv.Close()
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(srv, nil)

	src := make(chan *mime.Message, 3)
	for i := 0; i < 3; i++ {
		src <- mime.NewMessage(services.TypePlainText, services.GenText(256, int64(i)))
	}
	close(src)
	var buf bytes.Buffer
	if err := fe.ServeRequest("webflow", src, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	if err := fe.ServeRequest("ghost", nil, &buf); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestHandleConnErrors(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	var mu sync.Mutex
	var errs []error
	srv := New(Options{Directory: dir, ErrorHandler: func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}})
	defer srv.Close()
	if err := srv.LoadScript(webScript); err != nil {
		t.Fatal(err)
	}
	fe := NewFrontend(srv, sourceOf(nil))
	addr, err := fe.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	// Request with an unknown stream name.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	req := mime.NewMessage(mime.Wildcard, nil)
	req.SetHeader(HeaderRequestStream, "nonexistent")
	_, _ = req.WriteTo(conn)
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(errs)
		mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Error("bad request produced no error")
}
