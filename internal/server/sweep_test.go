package server

import (
	"testing"
	"time"

	"mobigate/internal/mime"
	"mobigate/internal/services"
	"mobigate/internal/session"
)

// TestSessionSweeper exercises the idle reaper the server's -session-sweep
// flag arms: quiet sessions demote to Idle on a sweep, a fresh post
// promotes the session back to Active, and the ticker-driven sweeper
// demotes on its own until stopped.
func TestSessionSweeper(t *testing.T) {
	srv := newSessionServer(t)
	fe := NewFrontend(srv, nil)
	fe.EnableSharedSessions(SessionGatewayConfig{Instances: 1})
	t.Cleanup(func() { fe.Close() })
	gw, err := fe.gateway("shared")
	if err != nil || gw == nil {
		t.Fatalf("gateway: %v %v", gw, err)
	}

	s0, ch0, err := gw.Connect("sweep-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := gw.Connect("sweep-1"); err != nil {
		t.Fatal(err)
	}
	go func() { // drain s0's deliveries so the relay never sheds them
		for range ch0 {
		}
	}()

	// Both sessions quiet past the threshold: one sweep demotes both.
	time.Sleep(20 * time.Millisecond)
	if idled := fe.SweepSessions(10 * time.Millisecond); idled != 2 {
		t.Fatalf("SweepSessions demoted %d, want 2", idled)
	}
	if st := s0.State(); st != session.StateIdle {
		t.Fatalf("s0 state after sweep = %v, want Idle", st)
	}

	// Idle is bookkeeping, not a barrier: the next post promotes back.
	if err := gw.Send(s0, mime.NewMessage(services.TypePlainText, []byte("wake"))); err != nil {
		t.Fatal(err)
	}
	if st := s0.State(); st != session.StateActive {
		t.Fatalf("s0 state after post = %v, want Active", st)
	}

	// A sweep with a generous threshold demotes nothing.
	if idled := fe.SweepSessions(time.Hour); idled != 0 {
		t.Fatalf("SweepSessions(1h) demoted %d, want 0", idled)
	}

	// The ticker-driven sweeper demotes the re-activated session on its
	// own; stop is idempotent.
	stop := fe.StartSessionSweeper(5*time.Millisecond, 5*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for s0.State() != session.StateIdle {
		if time.Now().After(deadline) {
			t.Fatal("sweeper never demoted the quiet session")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop()
}
