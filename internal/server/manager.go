package server

import (
	"fmt"
	"sync"

	"mobigate/internal/mcl"
	"mobigate/internal/streamlet"
)

// StreamletManager is the execution-plane manager of §3.3.3: it locates
// streamlet classes in the directory, allocates processor instances, and —
// for Stateless streamlets whose library advertises PoolPreferred —
// recycles instances through per-library pools (§3.3.4's streamlet
// pooling) instead of creating and destroying one per request. Pooling is
// opt-in per library since the AblationStreamletPooling measurement: for
// trivially-constructed processors the pool's bookkeeping costs more than
// the constructor, so only the expensive transcoders advertise the trait.
type StreamletManager struct {
	dir *streamlet.Directory
	// PoolSize bounds each per-library pool (default 8).
	PoolSize int
	// DisablePooling turns pooling off entirely (the ablation baseline).
	DisablePooling bool
	// PoolAll restores the historical pool-every-stateless-library
	// behaviour, ignoring the PoolPreferred trait (the ablation's pooled
	// arm for libraries that opted out).
	PoolAll bool

	mu    sync.Mutex
	pools map[string]*streamlet.ProcessorPool

	acquired uint64
	released uint64
}

// NewStreamletManager creates a manager over a directory.
func NewStreamletManager(dir *streamlet.Directory) *StreamletManager {
	return &StreamletManager{dir: dir, pools: make(map[string]*streamlet.ProcessorPool)}
}

// Acquire returns a processor for the declaration: pooled when the
// declaration is Stateless and its library is pooled (PoolPreferred trait,
// or PoolAll), freshly constructed otherwise.
func (m *StreamletManager) Acquire(decl *mcl.StreamletDecl) (streamlet.Processor, error) {
	if decl == nil {
		return nil, fmt.Errorf("server: nil streamlet declaration")
	}
	factory, err := m.dir.Lookup(decl.Library)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.acquired++
	m.mu.Unlock()
	if !m.pooled(decl) {
		return factory(), nil
	}
	return m.pool(decl.Library, factory).Get(), nil
}

// pooled reports whether instances of the declaration go through a pool.
func (m *StreamletManager) pooled(decl *mcl.StreamletDecl) bool {
	if decl.Kind != mcl.Stateless || m.DisablePooling {
		return false
	}
	return m.PoolAll || m.dir.Traits(decl.Library).PoolPreferred
}

// Release returns a processor to its library pool; non-stateless or
// unpooled processors are simply discarded.
func (m *StreamletManager) Release(decl *mcl.StreamletDecl, proc streamlet.Processor) {
	if decl == nil || proc == nil {
		return
	}
	m.mu.Lock()
	m.released++
	pool := m.pools[decl.Library]
	m.mu.Unlock()
	if m.pooled(decl) && pool != nil {
		pool.Put(proc)
	}
}

func (m *StreamletManager) pool(library string, factory streamlet.Factory) *streamlet.ProcessorPool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[library]
	if !ok {
		size := m.PoolSize
		if size <= 0 {
			size = 8
		}
		p = streamlet.NewProcessorPool(factory, size)
		m.pools[library] = p
	}
	return p
}

// Stats reports lifetime acquire/release counts and per-pool reuse.
func (m *StreamletManager) Stats() (acquired, released, created, reused uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	acquired, released = m.acquired, m.released
	for _, p := range m.pools {
		c, r := p.Stats()
		created += c
		reused += r
	}
	return acquired, released, created, reused
}
