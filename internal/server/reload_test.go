package server

import (
	"strings"
	"sync/atomic"
	"testing"

	"mobigate/internal/adapt"
)

const reloadScriptV1 = `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet tc_def {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream flow {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);

	when (LOW_BANDWIDTH) {
		disconnect (hd.po, cm.pi);
	}
	when (queue_depth > 100) -> insert tc_def between hd and cm;
}
`

const reloadScriptV2 = `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet tc_def {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
main stream flow {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);

	when (LOW_ENERGY) {
		disconnect (hd.po, cm.pi);
	}
	when (queue_depth > 5) sustain 2 -> insert tc_def between hd and cm;
	when (queue_depth <= 5) -> remove tc_def;
}
`

// TestReloadSwapsWhensAndPolicies: a hot reload must swap the deployed
// stream's event reactions and the autopilot's rule set without
// redeploying.
func TestReloadSwapsWhensAndPolicies(t *testing.T) {
	s := newTestServer(t)
	eng := adapt.New(adapt.Config{Sampler: func() adapt.Reading { return adapt.Reading{} }})
	s.SetAutopilot(eng)
	if s.Autopilot() != eng {
		t.Fatal("autopilot not recorded")
	}
	if err := s.LoadScript(reloadScriptV1); err != nil {
		t.Fatal(err)
	}
	st, err := s.Deploy("flow")
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Attached("flow") {
		t.Fatal("deployed stream with policies not attached to autopilot")
	}
	if got := st.Whens(); len(got) != 1 || got[0] != "LOW_BANDWIDTH" {
		t.Fatalf("whens = %v", got)
	}

	if err := s.ReloadScript(reloadScriptV2); err != nil {
		t.Fatalf("ReloadScript: %v", err)
	}
	if got := st.Whens(); len(got) != 1 || got[0] != "LOW_ENERGY" {
		t.Fatalf("whens after reload = %v", got)
	}
	if !eng.Attached("flow") {
		t.Fatal("stream detached by reload")
	}
	sc := s.Config().Stream("flow")
	if len(sc.Policies) != 2 {
		t.Fatalf("policies after reload = %d, want 2", len(sc.Policies))
	}
}

// TestReloadRejectsMissingStream: a new script that no longer declares a
// deployed stream must be rejected wholesale, leaving the old
// configuration live.
func TestReloadRejectsMissingStream(t *testing.T) {
	s := newTestServer(t)
	if err := s.LoadScript(reloadScriptV1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy("flow"); err != nil {
		t.Fatal(err)
	}
	other := strings.ReplaceAll(reloadScriptV1, "stream flow", "stream renamed")
	err := s.ReloadScript(other)
	if err == nil || !strings.Contains(err.Error(), "missing from the new script") {
		t.Fatalf("reload err = %v, want missing-stream rejection", err)
	}
	// Old configuration stays live.
	if s.Config().Stream("flow") == nil {
		t.Fatal("old configuration discarded on rejected reload")
	}
}

// TestReloadRemovingPoliciesDetaches: a reload whose script drops every
// policy must unbind the stream from the autopilot.
func TestReloadRemovingPoliciesDetaches(t *testing.T) {
	s := newTestServer(t)
	eng := adapt.New(adapt.Config{Sampler: func() adapt.Reading { return adapt.Reading{} }})
	s.SetAutopilot(eng)
	if err := s.LoadScript(reloadScriptV1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy("flow"); err != nil {
		t.Fatal(err)
	}
	noPolicies := strings.ReplaceAll(reloadScriptV1,
		"	when (queue_depth > 100) -> insert tc_def between hd and cm;\n", "")
	if err := s.ReloadScript(noPolicies); err != nil {
		t.Fatalf("ReloadScript: %v", err)
	}
	if eng.Attached("flow") {
		t.Fatal("stream still attached after its policies were removed")
	}
}

// TestSetAutopilotAttachesDeployed: installing an engine after deploy must
// bind the already-running streams; installing nil must unbind them.
func TestSetAutopilotAttachesDeployed(t *testing.T) {
	s := newTestServer(t)
	if err := s.LoadScript(reloadScriptV1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy("flow"); err != nil {
		t.Fatal(err)
	}
	eng := adapt.New(adapt.Config{Sampler: func() adapt.Reading { return adapt.Reading{} }})
	s.SetAutopilot(eng)
	if !eng.Attached("flow") {
		t.Fatal("already-deployed stream not attached")
	}
	s.SetAutopilot(nil)
	if eng.Attached("flow") {
		t.Fatal("stream not detached when autopilot removed")
	}
	if err := s.Undeploy("flow"); err != nil {
		t.Fatal(err)
	}
}

// TestReloadedPoliciesDrive: after a reload the autopilot must execute the
// new rules against the live stream.
func TestReloadedPoliciesDrive(t *testing.T) {
	s := newTestServer(t)
	var qd atomic.Int64
	eng := adapt.New(adapt.Config{
		Sampler: func() adapt.Reading { return adapt.Reading{QueueDepth: qd.Load()} },
	})
	s.SetAutopilot(eng)
	if err := s.LoadScript(reloadScriptV1); err != nil {
		t.Fatal(err)
	}
	st, err := s.Deploy("flow")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadScript(reloadScriptV2); err != nil {
		t.Fatal(err)
	}
	// V2's insert threshold is 5 with sustain 2; V1's was 100.
	qd.Store(10)
	eng.Tick()
	eng.Tick()
	if st.Streamlet("tc_def") == nil {
		t.Fatal("reloaded insert policy did not fire")
	}
	qd.Store(0)
	eng.Tick()
	if st.Streamlet("tc_def") != nil {
		t.Fatal("reloaded remove policy did not fire")
	}
}
