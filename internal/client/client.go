// Package client implements the MobiGATE client of thesis §3.4: the thin
// peer of the gateway that reverse-processes incoming messages. There is no
// channel or coordination machinery here — the composition information
// arrives in the message header (the Content-Peers chain of §6.5). The
// multi-threaded Message Distributor parses incoming MIME messages and
// hands each to the matching peer streamlets; the Client Streamlet Pool
// creates and recycles the peer-processor instances.
package client

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"mobigate/internal/mime"
	"mobigate/internal/obs"
	"mobigate/internal/streamlet"
)

// Handler receives fully reverse-processed messages, ready for the
// higher-layer application.
type Handler func(*mime.Message)

// Options configure a Client.
type Options struct {
	// Peers advertises the reverse streamlets, keyed by peer ID. nil
	// creates an empty directory (messages without peers pass through).
	Peers *streamlet.Directory
	// Distributors bounds the concurrent Message Distributor threads
	// (default 4). A new thread services each message when one is free,
	// mirroring the servlet-style threading of §3.4.1.
	Distributors int
	// PoolSize bounds each peer-streamlet pool (default 8).
	PoolSize int
	// ErrorHandler receives per-message processing errors; the failing
	// message is dropped. Defaults to discarding.
	ErrorHandler func(error)
	// Ordered restores gateway delivery order before invoking the handler:
	// the multi-threaded distributor may finish messages out of order, and
	// the X-Seq stamp the front-end adds lets the client re-sequence them.
	// Messages without a sequence stamp are delivered immediately.
	Ordered bool
	// Spans, when set, records one peer span per reversal into this
	// collector — the client's own clock domain. The application drains it
	// (Drain + EncodeSpanBatch) to ship span batches back to the gateway
	// over the control channel. nil disables client-side span recording.
	Spans *obs.SpanCollector
}

// Client is a MobiGATE client.
type Client struct {
	opts    Options
	peers   *streamlet.Directory
	handler Handler

	mu    sync.Mutex
	pools map[string]*streamlet.ProcessorPool

	sem chan struct{}

	seq sequencer

	processed atomic.Uint64
	failed    atomic.Uint64
}

// sequencer is the reorder buffer used when Options.Ordered is set.
type sequencer struct {
	mu      sync.Mutex
	next    uint64
	pending map[uint64]*mime.Message
}

// submit delivers m (stamped with seq) and everything consecutive after it.
// A nil message marks the sequence slot as skipped (a processing failure)
// so later messages are not stalled behind the hole.
func (s *sequencer) submit(seq uint64, m *mime.Message, deliver func(*mime.Message)) {
	s.mu.Lock()
	if s.pending == nil {
		s.pending = make(map[uint64]*mime.Message)
	}
	s.pending[seq] = m
	var ready []*mime.Message
	for {
		n, ok := s.pending[s.next]
		if !ok {
			break
		}
		delete(s.pending, s.next)
		s.next++
		if n != nil {
			ready = append(ready, n)
		}
	}
	s.mu.Unlock()
	for _, n := range ready {
		deliver(n)
	}
}

// New creates a client delivering finished messages to handler.
func New(opts Options, handler Handler) *Client {
	if opts.Peers == nil {
		opts.Peers = streamlet.NewDirectory()
	}
	if opts.Distributors <= 0 {
		opts.Distributors = 4
	}
	if opts.PoolSize <= 0 {
		opts.PoolSize = 8
	}
	if handler == nil {
		handler = func(*mime.Message) {}
	}
	return &Client{
		opts:    opts,
		peers:   opts.Peers,
		handler: handler,
		pools:   make(map[string]*streamlet.ProcessorPool),
		sem:     make(chan struct{}, opts.Distributors),
	}
}

// Peers returns the client's peer-streamlet directory.
func (c *Client) Peers() *streamlet.Directory { return c.peers }

// Stats returns processed and failed message counts.
func (c *Client) Stats() (processed, failed uint64) {
	return c.processed.Load(), c.failed.Load()
}

// Process reverse-processes one message synchronously: the Content-Peers
// chain is popped LIFO and each named peer streamlet applied in turn
// (§6.5). The returned message is the application-ready result. With a
// span collector configured, each reversal is recorded as a peer span
// chained under the span context the message arrived with (the link span,
// after the gateway side re-parented it).
func (c *Client) Process(m *mime.Message) (*mime.Message, error) {
	col := c.opts.Spans
	var sctx obs.SpanContext
	if col != nil {
		sctx = obs.ParseSpanContext(m.Header(mime.HeaderSpanContext))
		if !sctx.Valid() {
			col = nil
		}
	}
	parent := sctx.ParentID
	cur := m
	for {
		peerID, ok := cur.PopPeer()
		if !ok {
			break
		}
		proc, pool, err := c.acquire(peerID)
		if err != nil {
			c.failed.Add(1)
			return nil, fmt.Errorf("client: message %s: %w", m.ID, err)
		}
		var start int64
		if col != nil {
			start = col.Now()
		}
		emissions, err := proc.Process(streamlet.Input{Port: "pi", Msg: cur})
		pool.Put(proc)
		if err != nil {
			c.failed.Add(1)
			return nil, fmt.Errorf("client: peer %s: %w", peerID, err)
		}
		if len(emissions) != 1 || emissions[0].Msg == nil {
			c.failed.Add(1)
			return nil, fmt.Errorf("client: peer %s emitted %d messages, want 1", peerID, len(emissions))
		}
		cur = emissions[0].Msg
		if col != nil {
			id := col.NextID()
			col.Record(obs.Span{
				TraceID: sctx.TraceID, SpanID: id, ParentID: parent,
				Kind: obs.SpanPeer, Name: peerID,
				StartNs: start, DurNs: col.Now() - start, Bytes: cur.Len(),
			})
			parent = id
		}
	}
	c.processed.Add(1)
	return cur, nil
}

// acquire fetches a pooled peer-processor instance (the Client Streamlet
// Pool of §3.4.2).
func (c *Client) acquire(peerID string) (streamlet.Processor, *streamlet.ProcessorPool, error) {
	factory, err := c.peers.Lookup(peerID)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	pool, ok := c.pools[peerID]
	if !ok {
		pool = streamlet.NewProcessorPool(factory, c.opts.PoolSize)
		c.pools[peerID] = pool
	}
	c.mu.Unlock()
	return pool.Get(), pool, nil
}

// Dispatch hands a message to a distributor thread; it blocks only when all
// distributor slots are busy (whereupon the caller effectively waits for a
// free thread, as in §3.4.1). Results go to the client handler.
func (c *Client) Dispatch(m *mime.Message, wg *sync.WaitGroup) {
	c.sem <- struct{}{}
	if wg != nil {
		wg.Add(1)
	}
	go func() {
		defer func() {
			<-c.sem
			if wg != nil {
				wg.Done()
			}
		}()
		seqText := m.Header(headerSeq)
		out, err := c.Process(m)
		if err != nil {
			c.fail(err)
			// Mark the slot skipped so ordered delivery is not stalled
			// behind the failed message.
			if c.opts.Ordered && seqText != "" {
				if n, perr := strconv.ParseUint(seqText, 10, 64); perr == nil {
					c.seq.submit(n, nil, c.handler)
				}
			}
			return
		}
		c.deliver(out)
	}()
}

// ServeConn reads wire-format messages from conn until EOF, dispatching
// each to the distributor threads, and waits for all of them to finish.
func (c *Client) ServeConn(conn io.Reader) error {
	br := bufio.NewReader(conn)
	var wg sync.WaitGroup
	for {
		m, err := mime.ReadMessage(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			wg.Wait()
			return fmt.Errorf("client: reading stream: %w", err)
		}
		c.Dispatch(m, &wg)
	}
	wg.Wait()
	return nil
}

// deliver hands a finished message to the handler, restoring sequence
// order when configured.
func (c *Client) deliver(m *mime.Message) {
	seqText := m.Header(headerSeq)
	if !c.opts.Ordered || seqText == "" {
		m.DelHeader(headerSeq)
		c.handler(m)
		return
	}
	n, err := strconv.ParseUint(seqText, 10, 64)
	if err != nil {
		c.fail(fmt.Errorf("client: message %s has malformed sequence %q", m.ID, seqText))
		m.DelHeader(headerSeq)
		c.handler(m)
		return
	}
	m.DelHeader(headerSeq)
	c.seq.submit(n, m, c.handler)
}

// headerSeq mirrors the front-end's sequence header name (kept local to
// avoid a server dependency).
const headerSeq = "X-Seq"

func (c *Client) fail(err error) {
	if c.opts.ErrorHandler != nil {
		c.opts.ErrorHandler(err)
	}
}
