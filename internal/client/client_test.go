package client

import (
	"bytes"
	"errors"

	"strings"
	"sync"
	"testing"

	"mobigate/internal/mime"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

func peerDir() *streamlet.Directory {
	dir := streamlet.NewDirectory()
	services.RegisterClientPeers(dir)
	return dir
}

func TestProcessNoPeersPassthrough(t *testing.T) {
	c := New(Options{Peers: peerDir()}, nil)
	m := mime.NewMessage(mime.MustParse("text/plain"), []byte("plain"))
	out, err := c.Process(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Body()) != "plain" {
		t.Errorf("body = %q", out.Body())
	}
	processed, failed := c.Stats()
	if processed != 1 || failed != 0 {
		t.Errorf("stats = %d, %d", processed, failed)
	}
}

func TestProcessRecordsPeerSpans(t *testing.T) {
	original := services.GenText(4096, 3)
	m := mime.NewMessage(services.TypePlainText, append([]byte(nil), original...))
	comp := &services.Compressor{}
	ems, err := comp.Process(streamlet.Input{Msg: m})
	if err != nil {
		t.Fatal(err)
	}
	wire := ems[0].Msg
	wire.PushPeer(services.CompressorPeerID)
	// The arriving context's parent is the gateway-side link span.
	sctx := obs.SpanContext{TraceID: 77, ParentID: 42, StartNs: 1}
	wire.SetHeader(mime.HeaderSpanContext, obs.EncodeSpanContext(sctx))

	col := obs.NewSpanCollector(16, obs.MonoNow, obs.SiteClient)
	c := New(Options{Peers: peerDir(), Spans: col}, nil)
	if _, err := c.Process(wire); err != nil {
		t.Fatal(err)
	}
	spans := col.Trace(sctx.TraceID)
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Kind != obs.SpanPeer || sp.Name != services.CompressorPeerID ||
		sp.ParentID != 42 || sp.Site != obs.SiteClient || sp.SpanID <= 1<<32 {
		t.Errorf("peer span = %+v", sp)
	}
}

func TestProcessNoSpansWithoutContext(t *testing.T) {
	original := services.GenText(2048, 5)
	m := mime.NewMessage(services.TypePlainText, append([]byte(nil), original...))
	comp := &services.Compressor{}
	ems, err := comp.Process(streamlet.Input{Msg: m})
	if err != nil {
		t.Fatal(err)
	}
	wire := ems[0].Msg
	wire.PushPeer(services.CompressorPeerID) // no span header

	col := obs.NewSpanCollector(16, obs.MonoNow, obs.SiteClient)
	c := New(Options{Peers: peerDir(), Spans: col}, nil)
	if _, err := c.Process(wire); err != nil {
		t.Fatal(err)
	}
	if batch := col.Drain(); len(batch) != 0 {
		t.Errorf("recorded %d spans for an unstamped message", len(batch))
	}
}

func TestProcessReversesCompression(t *testing.T) {
	original := services.GenText(4096, 3)
	m := mime.NewMessage(services.TypePlainText, append([]byte(nil), original...))
	comp := &services.Compressor{}
	ems, err := comp.Process(streamlet.Input{Msg: m})
	if err != nil {
		t.Fatal(err)
	}
	wire := ems[0].Msg
	wire.PushPeer(services.CompressorPeerID) // what the runtime does server-side

	c := New(Options{Peers: peerDir()}, nil)
	out, err := c.Process(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Body(), original) {
		t.Error("reverse processing did not restore body")
	}
	if len(out.Peers()) != 0 {
		t.Error("peer chain not consumed")
	}
}

func TestProcessReversesStackedTransforms(t *testing.T) {
	// Server side: compress then encrypt → chain [compress, encrypt];
	// client must decrypt first, then decompress (LIFO).
	original := services.GenText(2048, 5)
	m := mime.NewMessage(services.TypePlainText, append([]byte(nil), original...))

	comp := &services.Compressor{}
	ems, err := comp.Process(streamlet.Input{Msg: m})
	if err != nil {
		t.Fatal(err)
	}
	m = ems[0].Msg
	m.PushPeer(services.CompressorPeerID)

	enc := &services.Encryptor{}
	ems, err = enc.Process(streamlet.Input{Msg: m})
	if err != nil {
		t.Fatal(err)
	}
	m = ems[0].Msg
	m.PushPeer(services.EncryptorPeerID)

	c := New(Options{Peers: peerDir()}, nil)
	out, err := c.Process(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Body(), original) {
		t.Error("stacked reverse processing failed")
	}
}

func TestProcessUnknownPeerFails(t *testing.T) {
	c := New(Options{Peers: peerDir()}, nil)
	m := mime.NewMessage(services.TypePlainText, []byte("x"))
	m.PushPeer("ghost/peer")
	if _, err := c.Process(m); err == nil || !strings.Contains(err.Error(), "ghost/peer") {
		t.Errorf("unknown peer error = %v", err)
	}
	_, failed := c.Stats()
	if failed != 1 {
		t.Errorf("failed = %d", failed)
	}
}

func TestProcessPeerErrorPropagates(t *testing.T) {
	dir := streamlet.NewDirectory()
	dir.Register("boom", func() streamlet.Processor {
		return streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
			return nil, errors.New("kaput")
		})
	})
	c := New(Options{Peers: dir}, nil)
	m := mime.NewMessage(services.TypePlainText, []byte("x"))
	m.PushPeer("boom")
	if _, err := c.Process(m); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("peer error = %v", err)
	}
}

func TestServeConnDistributesAll(t *testing.T) {
	// Build a wire stream of 20 compressed messages.
	var wireBuf bytes.Buffer
	var originals [][]byte
	for i := 0; i < 20; i++ {
		body := services.GenText(512+i*13, int64(i))
		originals = append(originals, body)
		m := mime.NewMessage(services.TypePlainText, append([]byte(nil), body...))
		ems, err := (&services.Compressor{}).Process(streamlet.Input{Msg: m})
		if err != nil {
			t.Fatal(err)
		}
		ems[0].Msg.PushPeer(services.CompressorPeerID)
		if _, err := ems[0].Msg.WriteTo(&wireBuf); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var got [][]byte
	c := New(Options{Peers: peerDir(), Distributors: 3}, func(m *mime.Message) {
		mu.Lock()
		got = append(got, m.Body())
		mu.Unlock()
	})
	if err := c.ServeConn(&wireBuf); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d messages", len(got))
	}
	// Multi-threaded distribution may reorder; match as a set.
	want := map[string]bool{}
	for _, b := range originals {
		want[string(b)] = true
	}
	for _, b := range got {
		if !want[string(b)] {
			t.Error("unexpected or corrupted message body")
		}
	}
}

func TestServeConnTruncatedStream(t *testing.T) {
	c := New(Options{Peers: peerDir()}, nil)
	if err := c.ServeConn(strings.NewReader("Content-Length: 100\r\n\r\nshort")); err == nil {
		t.Error("truncated stream accepted")
	}
	if err := c.ServeConn(strings.NewReader("")); err != nil {
		t.Errorf("empty stream: %v", err)
	}
}

func TestDispatchErrorHandler(t *testing.T) {
	var mu sync.Mutex
	var errs []error
	c := New(Options{
		Peers:        peerDir(),
		ErrorHandler: func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() },
	}, nil)
	m := mime.NewMessage(services.TypePlainText, []byte("x"))
	m.PushPeer("ghost")
	var wg sync.WaitGroup
	c.Dispatch(m, &wg)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 1 {
		t.Errorf("errors = %v", errs)
	}
}

func TestClientPoolReuse(t *testing.T) {
	c := New(Options{Peers: peerDir(), PoolSize: 2}, nil)
	for i := 0; i < 5; i++ {
		m := mime.NewMessage(services.TypePlainText, services.GenText(100, int64(i)))
		ems, _ := (&services.Compressor{}).Process(streamlet.Input{Msg: m})
		ems[0].Msg.PushPeer(services.CompressorPeerID)
		if _, err := c.Process(ems[0].Msg); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	pool := c.pools[services.CompressorPeerID]
	c.mu.Unlock()
	if pool == nil {
		t.Fatal("pool not created")
	}
	created, reused := pool.Stats()
	if created == 0 || reused == 0 {
		t.Errorf("created=%d reused=%d", created, reused)
	}
}
