package client

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"mobigate/internal/mime"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

// slowFirst is a peer that delays the message whose body matches `hold`,
// forcing the multi-threaded distributor to finish messages out of order.
type slowFirst struct {
	gate chan struct{}
	hold string
}

func (s *slowFirst) Process(in streamlet.Input) ([]streamlet.Emission, error) {
	if string(in.Msg.Body()) == s.hold {
		<-s.gate
	}
	return []streamlet.Emission{{Msg: in.Msg}}, nil
}

func seqMsg(i int) *mime.Message {
	m := mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("payload-%02d", i)))
	m.SetHeader("X-Seq", strconv.Itoa(i))
	m.PushPeer("slow/first")
	return m
}

func TestOrderedDeliveryRestoresSequence(t *testing.T) {
	sf := &slowFirst{gate: make(chan struct{}), hold: "payload-00"}
	dir := streamlet.NewDirectory()
	dir.Register("slow/first", func() streamlet.Processor { return sf })

	var mu sync.Mutex
	var got []string
	c := New(Options{Peers: dir, Distributors: 4, Ordered: true}, func(m *mime.Message) {
		mu.Lock()
		got = append(got, string(m.Body()))
		mu.Unlock()
		if m.Header("X-Seq") != "" {
			t.Error("sequence header leaked to application")
		}
	})

	var wg sync.WaitGroup
	// Message 0 blocks inside the peer; 1 and 2 finish first.
	c.Dispatch(seqMsg(0), &wg)
	c.Dispatch(seqMsg(1), &wg)
	c.Dispatch(seqMsg(2), &wg)
	// Give 1 and 2 time to complete, then release 0.
	waitProcessed(t, c, 2)
	mu.Lock()
	if len(got) != 0 {
		t.Fatalf("messages delivered before sequence head: %v", got)
	}
	mu.Unlock()
	close(sf.gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	want := []string{"payload-00", "payload-01", "payload-02"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestOrderedDeliverySkipsFailedSlot(t *testing.T) {
	dir := streamlet.NewDirectory()
	services.RegisterClientPeers(dir)

	var mu sync.Mutex
	var got []string
	c := New(Options{Peers: dir, Ordered: true, ErrorHandler: func(error) {}},
		func(m *mime.Message) {
			mu.Lock()
			got = append(got, string(m.Body()))
			mu.Unlock()
		})

	var wg sync.WaitGroup
	// Slot 0 names an unknown peer and fails; 1 and 2 must still deliver.
	bad := mime.NewMessage(services.TypePlainText, []byte("bad"))
	bad.SetHeader("X-Seq", "0")
	bad.PushPeer("ghost/peer")
	c.Dispatch(bad, &wg)
	wg.Wait()
	for i := 1; i <= 2; i++ {
		m := mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("ok-%d", i)))
		m.SetHeader("X-Seq", strconv.Itoa(i))
		c.Dispatch(m, &wg)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "ok-1" || got[1] != "ok-2" {
		t.Errorf("got %v", got)
	}
}

func TestUnstampedMessagesBypassOrdering(t *testing.T) {
	dir := streamlet.NewDirectory()
	var count int
	var mu sync.Mutex
	c := New(Options{Peers: dir, Ordered: true}, func(m *mime.Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	c.Dispatch(mime.NewMessage(services.TypePlainText, []byte("free")), &wg)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Errorf("unstamped message not delivered (count=%d)", count)
	}
}

func waitProcessed(t *testing.T, c *Client, n uint64) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if p, _ := c.Stats(); p >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("processing stalled")
}
