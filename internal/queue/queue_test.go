package queue

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"mobigate/internal/mcl"
)

func asyncQueue(capBytes int) *Queue {
	return New("q", Options{CapacityBytes: capBytes})
}

func TestPostFetchFIFO(t *testing.T) {
	q := asyncQueue(1 << 20)
	for i := 0; i < 10; i++ {
		if err := q.Post(fmt.Sprintf("m%d", i), 10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 10 || q.QueuedBytes() != 100 {
		t.Errorf("Len=%d Bytes=%d", q.Len(), q.QueuedBytes())
	}
	for i := 0; i < 10; i++ {
		it, ok := q.Fetch(nil)
		if !ok || it.MsgID != fmt.Sprintf("m%d", i) {
			t.Fatalf("fetch %d = %v, %v", i, it, ok)
		}
	}
	if !q.Empty() {
		t.Error("queue not empty")
	}
	posted, fetched, dropped := q.Stats()
	if posted != 10 || fetched != 10 || dropped != 0 {
		t.Errorf("stats = %d %d %d", posted, fetched, dropped)
	}
}

func TestTryFetch(t *testing.T) {
	q := asyncQueue(1024)
	if _, ok := q.TryFetch(); ok {
		t.Error("TryFetch on empty succeeded")
	}
	if err := q.Post("a", 1, nil); err != nil {
		t.Fatal(err)
	}
	it, ok := q.TryFetch()
	if !ok || it.MsgID != "a" {
		t.Errorf("TryFetch = %v, %v", it, ok)
	}
}

func TestFetchBlocksUntilPost(t *testing.T) {
	q := asyncQueue(1024)
	got := make(chan Item, 1)
	go func() {
		it, ok := q.Fetch(nil)
		if ok {
			got <- it
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Post("late", 5, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case it := <-got:
		if it.MsgID != "late" {
			t.Errorf("got %v", it)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Fetch never woke")
	}
}

func TestPostDropsWhenFull(t *testing.T) {
	q := New("q", Options{CapacityBytes: 100, DropTimeout: 20 * time.Millisecond})
	if err := q.Post("a", 80, nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := q.Post("b", 80, nil)
	if err != ErrDropped {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("dropped too early: %v", d)
	}
	_, _, dropped := q.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestPostWaitsForSpaceWithinTimeout(t *testing.T) {
	q := New("q", Options{CapacityBytes: 100, DropTimeout: time.Second})
	if err := q.Post("a", 80, nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		q.Fetch(nil)
	}()
	if err := q.Post("b", 80, nil); err != nil {
		t.Errorf("post after drain: %v", err)
	}
}

func TestOversizedMessageEntersEmptyQueue(t *testing.T) {
	q := New("q", Options{CapacityBytes: 10, DropTimeout: 10 * time.Millisecond})
	if err := q.Post("huge", 1000, nil); err != nil {
		t.Errorf("oversized into empty queue: %v", err)
	}
}

func TestPostBlockForeverMode(t *testing.T) {
	q := New("q", Options{CapacityBytes: 10, DropTimeout: -1})
	if err := q.Post("a", 10, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Post("b", 10, nil) }()
	select {
	case err := <-done:
		t.Fatalf("post returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	q.Fetch(nil)
	if err := <-done; err != nil {
		t.Errorf("post after drain: %v", err)
	}
}

func TestPostCanceledByStop(t *testing.T) {
	q := New("q", Options{CapacityBytes: 10, DropTimeout: -1})
	if err := q.Post("a", 10, nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- q.Post("b", 10, stop) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != ErrCanceled {
			t.Errorf("want ErrCanceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post not canceled")
	}
}

func TestFetchCanceledByStop(t *testing.T) {
	q := asyncQueue(100)
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Fetch(stop)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Error("canceled fetch returned ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fetch not canceled")
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	q := asyncQueue(100)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Fetch(nil)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-done; ok {
		t.Error("fetch on closed+empty returned ok")
	}
	if err := q.Post("x", 1, nil); err != ErrClosed {
		t.Errorf("post after close = %v", err)
	}
	if !q.Closed() {
		t.Error("Closed() false")
	}
}

func TestClosePreservesPendingViaTryFetch(t *testing.T) {
	q := asyncQueue(100)
	if err := q.Post("a", 1, nil); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if it, ok := q.TryFetch(); !ok || it.MsgID != "a" {
		t.Error("pending item lost on close")
	}
}

func TestSyncRendezvous(t *testing.T) {
	q := New("q", Options{Mode: mcl.Sync})
	delivered := make(chan Item, 1)
	go func() {
		it, ok := q.Fetch(nil)
		if ok {
			delivered <- it
		}
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	if err := q.Post("r", 4, nil); err != nil {
		t.Fatal(err)
	}
	_ = start
	it := <-delivered
	if it.MsgID != "r" {
		t.Errorf("delivered %v", it)
	}
	if q.Len() != 0 {
		t.Error("sync queue retained item")
	}
}

func TestSyncPostBlocksWithoutConsumer(t *testing.T) {
	q := New("q", Options{Mode: mcl.Sync})
	done := make(chan error, 1)
	go func() { done <- q.Post("r", 1, nil) }()
	select {
	case err := <-done:
		t.Fatalf("sync post without consumer returned: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	go q.Fetch(nil)
	if err := <-done; err != nil {
		t.Errorf("sync post after consumer: %v", err)
	}
}

func TestProducerConsumerCounts(t *testing.T) {
	q := asyncQueue(100)
	q.IncProducer()
	q.IncProducer()
	q.IncConsumer()
	p, c := q.Counts()
	if p != 2 || c != 1 {
		t.Errorf("counts = %d, %d", p, c)
	}
	q.DecProducer()
	q.DecConsumer()
	q.DecConsumer() // below zero clamps
	p, c = q.Counts()
	if p != 1 || c != 0 {
		t.Errorf("counts after dec = %d, %d", p, c)
	}
}

func TestDetachCategories(t *testing.T) {
	mk := func(cat mcl.ChannelCategory) *Queue {
		return New("q", Options{Category: cat})
	}
	// KK: refused on both sides.
	if _, err := mk(mcl.CatKK).Detach(SourceSide); err == nil {
		t.Error("KK source detach allowed")
	}
	if _, err := mk(mcl.CatKK).Detach(SinkSide); err == nil {
		t.Error("KK sink detach allowed")
	}
	// BB: detaching either side requires detaching the other.
	if other, err := mk(mcl.CatBB).Detach(SourceSide); err != nil || !other {
		t.Errorf("BB = %v, %v", other, err)
	}
	// BK/KB: one-sided.
	if other, err := mk(mcl.CatBK).Detach(SourceSide); err != nil || other {
		t.Errorf("BK = %v, %v", other, err)
	}
	if other, err := mk(mcl.CatKB).Detach(SinkSide); err != nil || other {
		t.Errorf("KB = %v, %v", other, err)
	}
	// S: only when empty.
	s := mk(mcl.CatS)
	if _, err := s.Detach(SourceSide); err != nil {
		t.Errorf("empty S detach: %v", err)
	}
	if err := s.Post("a", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Detach(SourceSide); err == nil {
		t.Error("S detach with pending units allowed")
	}
}

func TestFromDecl(t *testing.T) {
	d := &mcl.ChannelDecl{Name: "big", Mode: mcl.Async, Category: mcl.CatKB, BufferKB: 4}
	q := FromDecl("c1", d)
	if q.Name() != "c1" || q.Category() != mcl.CatKB || q.Mode() != mcl.Async {
		t.Errorf("FromDecl: %+v", q)
	}
	// 4 KB capacity: a 5000-byte message on a non-empty queue must drop.
	if err := q.Post("a", 4000, nil); err != nil {
		t.Fatal(err)
	}
	q2 := New("fast", Options{CapacityBytes: 4096, DropTimeout: 5 * time.Millisecond})
	if err := q2.Post("a", 4000, nil); err != nil {
		t.Fatal(err)
	}
	if err := q2.Post("b", 200, nil); err != ErrDropped {
		t.Errorf("capacity not enforced: %v", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New("q", Options{CapacityBytes: 1 << 20})
	const n = 200
	const producers = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := q.Post(fmt.Sprintf("p%d-%d", p, i), 8, nil); err != nil {
					t.Errorf("post: %v", err)
					return
				}
			}
		}(p)
	}
	var got sync.Map
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				it, ok := q.Fetch(nil)
				if !ok {
					return
				}
				if _, dup := got.LoadOrStore(it.MsgID, true); dup {
					t.Errorf("duplicate delivery %s", it.MsgID)
				}
			}
		}()
	}
	wg.Wait()
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	cg.Wait()
	count := 0
	got.Range(func(_, _ any) bool { count++; return true })
	if count != n*producers {
		t.Errorf("delivered %d, want %d", count, n*producers)
	}
}

func TestDetachSideString(t *testing.T) {
	if SourceSide.String() != "source" || SinkSide.String() != "sink" {
		t.Error("DetachSide strings")
	}
}

func TestAckOutstandingInFlight(t *testing.T) {
	q := asyncQueue(1 << 20)
	if q.Outstanding() != 0 || q.InFlight() != 0 {
		t.Fatal("fresh queue has outstanding work")
	}
	for i := 0; i < 3; i++ {
		if err := q.Post(fmt.Sprintf("m%d", i), 4, nil); err != nil {
			t.Fatal(err)
		}
	}
	if q.Outstanding() != 3 || q.InFlight() != 0 {
		t.Errorf("after post: outstanding=%d inflight=%d", q.Outstanding(), q.InFlight())
	}
	if _, ok := q.Fetch(nil); !ok {
		t.Fatal("fetch failed")
	}
	if q.Outstanding() != 3 || q.InFlight() != 1 {
		t.Errorf("after fetch: outstanding=%d inflight=%d", q.Outstanding(), q.InFlight())
	}
	q.Ack()
	if q.Outstanding() != 2 || q.InFlight() != 0 {
		t.Errorf("after ack: outstanding=%d inflight=%d", q.Outstanding(), q.InFlight())
	}
	// Drain and ack the rest: everything balances.
	for i := 0; i < 2; i++ {
		q.Fetch(nil)
		q.Ack()
	}
	if q.Outstanding() != 0 || q.InFlight() != 0 {
		t.Errorf("after drain: outstanding=%d inflight=%d", q.Outstanding(), q.InFlight())
	}
}

// Property: under random post/fetch/ack interleavings, a message is always
// visible: outstanding == queued + fetched-but-unacked, and never negative.
func TestOutstandingInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New("inv", Options{CapacityBytes: 1 << 20})
		unacked := 0
		queued := 0
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0:
				if err := q.Post("m", 1, nil); err == nil {
					queued++
				}
			case 1:
				if _, ok := q.TryFetch(); ok {
					queued--
					unacked++
				}
			case 2:
				if unacked > 0 {
					q.Ack()
					unacked--
				}
			}
			if q.Outstanding() != int64(queued+unacked) {
				return false
			}
			if q.InFlight() != int64(unacked) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// The gateway-wide occupancy gauges must return to their pre-queue values no
// matter how a closed queue's residue is disposed of: drained via TryFetch
// (takeLocked must not subtract a second time) or abandoned outright (Close
// subtracts once).
func TestCloseReconcilesOccupancyGauges(t *testing.T) {
	baseMsgs, baseBytes := mQueuedMsgs.Value(), mQueuedBytes.Value()

	// Drained residue: post 3, close, drain all 3 via TryFetch.
	q := asyncQueue(1 << 20)
	for i := 0; i < 3; i++ {
		if err := q.Post(fmt.Sprintf("d%d", i), 10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d := mQueuedMsgs.Value() - baseMsgs; d != 3 {
		t.Fatalf("gauge after posts = +%d", d)
	}
	q.Close()
	if d := mQueuedMsgs.Value() - baseMsgs; d != 0 {
		t.Errorf("gauge after close = +%d, want +0", d)
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.TryFetch(); !ok {
			t.Fatal("residue lost")
		}
	}
	if d := mQueuedMsgs.Value() - baseMsgs; d != 0 {
		t.Errorf("gauge after drain = +%d (double-subtracted residue)", d)
	}
	if d := mQueuedBytes.Value() - baseBytes; d != 0 {
		t.Errorf("byte gauge after drain = +%d", d)
	}

	// Abandoned residue: post 2, close, never drain.
	q = asyncQueue(1 << 20)
	q.Post("a", 7, nil)
	q.Post("b", 7, nil)
	q.Close()
	if d := mQueuedMsgs.Value() - baseMsgs; d != 0 {
		t.Errorf("gauge after abandoning close = +%d", d)
	}
	if d := mQueuedBytes.Value() - baseBytes; d != 0 {
		t.Errorf("byte gauge after abandoning close = +%d", d)
	}

	// Double close must not subtract twice.
	q.Close()
	if d := mQueuedMsgs.Value() - baseMsgs; d != 0 {
		t.Errorf("gauge after double close = +%d", d)
	}

	// Normal drain before close still balances.
	q = asyncQueue(1 << 20)
	q.Post("x", 5, nil)
	q.Fetch(nil)
	q.Close()
	if d := mQueuedBytes.Value() - baseBytes; d != 0 {
		t.Errorf("byte gauge after fetch+close = +%d", d)
	}
}

// Steady-state forward path: once the ring has grown to the working size,
// Post and Fetch allocate nothing — no per-item node, no wait helper, no
// head-retention reallocation.
func TestPostFetchSteadyStateAllocFree(t *testing.T) {
	q := asyncQueue(1 << 20)
	// Warm the ring past its growth phase.
	for i := 0; i < 64; i++ {
		if err := q.Post("warm", 8, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		q.Fetch(nil)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := q.Post("msg-0000000000000001", 8, nil); err != nil {
			t.Fatal(err)
		}
		if _, ok := q.Fetch(nil); !ok {
			t.Fatal("fetch failed")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Post/Fetch allocates %.1f objects per op, want 0", allocs)
	}
}

// stressCounters aggregates the outcome of every operation in the randomized
// stress run so conservation can be checked afterwards.
type stressCounters struct {
	postedOK atomic.Int64
	dropped  atomic.Int64
	canceled atomic.Int64
	rejected atomic.Int64 // ErrClosed
	fetched  atomic.Int64
}

// TestRandomizedStress drives a queue with a random mix of concurrent Post,
// Fetch, TryFetch, Detach, and Close — with and without stop channels, in
// asynchronous and synchronous mode — and asserts conservation: every
// message the queue accepted is accounted for as fetched or residual, and no
// goroutine outlives the run.
func TestRandomizedStress(t *testing.T) {
	before := runtime.NumGoroutine()
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		for _, mode := range []mcl.ChannelMode{mcl.Async, mcl.Sync} {
			stressRun(t, seed, mode)
		}
	}
	// Allow workers' final returns to unwind before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func stressRun(t *testing.T, seed int64, mode mcl.ChannelMode) {
	t.Helper()
	opts := Options{Mode: mode, Category: mcl.CatBB, DropTimeout: time.Millisecond}
	if mode == mcl.Async {
		opts.CapacityBytes = 256 // small: exercise the full/wait/drop path
	}
	q := New(fmt.Sprintf("stress-%d", seed), opts)
	var c stressCounters
	var wg sync.WaitGroup

	const producers, consumers, opsPerWorker = 4, 3, 150

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*31 + int64(p)))
			for i := 0; i < opsPerWorker; i++ {
				var stop chan struct{}
				if rng.Intn(4) == 0 {
					// A quarter of the posts race against cancellation.
					stop = make(chan struct{})
					time.AfterFunc(time.Duration(rng.Intn(300))*time.Microsecond,
						func() { close(stop) })
				}
				err := q.Post(fmt.Sprintf("s%d-p%d-%d", seed, p, i), 1+rng.Intn(64), stop)
				switch err {
				case nil:
					c.postedOK.Add(1)
				case ErrDropped:
					c.dropped.Add(1)
				case ErrCanceled:
					c.canceled.Add(1)
				case ErrClosed:
					c.rejected.Add(1)
				default:
					t.Errorf("post: %v", err)
				}
				if rng.Intn(8) == 0 {
					q.Detach(SourceSide) // category BB: always permitted
				}
			}
		}(p)
	}

	for cn := 0; cn < consumers; cn++ {
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*37 + int64(cn)))
			for {
				switch rng.Intn(3) {
				case 0:
					if _, ok := q.TryFetch(); ok {
						c.fetched.Add(1)
					} else if q.Closed() {
						return
					}
				case 1:
					stop := make(chan struct{})
					time.AfterFunc(time.Duration(rng.Intn(500))*time.Microsecond,
						func() { close(stop) })
					if _, ok := q.Fetch(stop); ok {
						c.fetched.Add(1)
					} else if q.Closed() && q.Empty() {
						return
					}
				default:
					if _, ok := q.Fetch(nil); ok {
						c.fetched.Add(1)
					} else {
						return // closed and drained
					}
				}
			}
		}(cn)
	}

	// Close mid-run so producers and consumers race the shutdown.
	time.AfterFunc(time.Duration(2+seed)*time.Millisecond, q.Close)
	wg.Wait()

	// Drain whatever survived the shutdown.
	residual := int64(0)
	for {
		if _, ok := q.TryFetch(); !ok {
			break
		}
		residual++
	}

	// Conservation: every message the queue accepted (appended to the ring)
	// is accounted for — fetched by a consumer or drained as residue.
	// Dropped and canceled posts were never accepted; sync posts interrupted
	// between rendezvous enqueue and handoff report an error without
	// retracting the item, which is why the check runs against the queue's
	// accepted count rather than the callers' success count.
	posted, _, _ := q.Stats()
	if int64(posted) != c.fetched.Load()+residual {
		t.Errorf("seed %d %v: conservation broken: accepted %d != fetched %d + residual %d",
			seed, mode, posted, c.fetched.Load(), residual)
	}
	if mode == mcl.Async && c.postedOK.Load() != int64(posted) {
		t.Errorf("seed %d: %d successful posts but %d enqueued",
			seed, c.postedOK.Load(), posted)
	}
	if q.Len() != 0 || q.QueuedBytes() != 0 {
		t.Errorf("seed %d %v: drained queue reports Len=%d Bytes=%d",
			seed, mode, q.Len(), q.QueuedBytes())
	}
}
