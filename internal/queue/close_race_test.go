package queue

// Regression tests for the Close-concurrency conservation audit: closing a
// queue while gated fetches are being retracted must never strand entries
// or break the posted/fetched/gauge accounting.
//
// The bug these lock in: a sync rendezvous post waited on q.count alone, so
// when the gated consumer it was handing off to got retracted (cancellation
// wins) and Close or stop then aborted the wait, the producer reported
// ErrClosed/ErrCanceled — the caller reclaims the message — while the entry
// stayed in the ring, counted as posted and fetchable by a later drain.
// TestSyncPostRetractsOnAbort fails on the pre-fix code in roughly half its
// rounds.

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/obs"
)

func waitingConsumersOf(q *Queue) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waitingConsumers
}

// TestSyncPostRetractsOnAbort drives the rendezvous handoff against a gated
// consumer whose gate fires mid-handoff, then aborts the producer with
// Close. Every round asserts the conservation invariant: exactly one of
// {delivered, failed} per message, and a failed post leaves nothing behind
// (no fetchable residue, Outstanding == 0).
func TestSyncPostRetractsOnAbort(t *testing.T) {
	const rounds = 1500
	strands := 0
	for round := 0; round < rounds; round++ {
		q := New("sync-retract", Options{Mode: mcl.Sync})
		gate := make(chan struct{})
		fetchDone := make(chan bool, 1)
		go func() {
			_, ok := q.FetchGated(nil, gate)
			fetchDone <- ok
		}()
		for i := 0; waitingConsumersOf(q) == 0; i++ {
			if i > 1_000_000 {
				t.Fatal("consumer never parked")
			}
			runtime.Gosched()
		}
		postDone := make(chan error, 1)
		if round%2 == 0 {
			// Ordering A: the gate fires first, racing the producer's
			// admission against the consumer's retraction.
			close(gate)
			go func() { postDone <- q.post("m1", 10, nil) }()
		} else {
			// Ordering B: the producer appends, then the gate races the
			// consumer's wake — the retracted consumer must not count as
			// the rendezvous completing.
			go func() { postDone <- q.post("m1", 10, nil) }()
			for q.Len() == 0 && waitingConsumersOf(q) > 0 {
				runtime.Gosched()
			}
			close(gate)
		}
		ok := <-fetchDone
		var err error
		if ok {
			err = <-postDone // delivered: the post must return promptly
		} else {
			// Retracted: the producer may be parked in the rendezvous wait;
			// Close must release it.
			select {
			case err = <-postDone:
			case <-time.After(2 * time.Millisecond):
				q.Close()
				err = <-postDone
			}
		}
		q.Close()
		if ok == (err != nil) {
			t.Fatalf("round %d: delivered=%v err=%v — want exactly one of {delivered, failed}", round, ok, err)
		}
		if err != nil {
			strands++
			if it, tok := q.TryFetch(); tok {
				t.Fatalf("round %d: stranded item fetchable after failed post: %+v", round, it)
			}
			if o := q.Outstanding(); o != 0 {
				t.Fatalf("round %d: Outstanding = %d after failed post, want 0", round, o)
			}
		}
	}
	if strands == 0 {
		t.Log("warning: the retraction window was never hit this run")
	}
}

// TestSyncPostStopRetracts covers the ErrCanceled abort on an OPEN queue:
// the producer's stop fires mid-rendezvous after the gated consumer was
// retracted. Pre-fix the entry stayed enqueued (Len == 1) and leaked into
// the occupancy gauges until some later Close.
func TestSyncPostStopRetracts(t *testing.T) {
	msgs := obs.DefaultIntGauge(obs.MQueueQueuedMessages)
	bytes := obs.DefaultIntGauge(obs.MQueueQueuedBytes)
	for round := 0; round < 400; round++ {
		m0, b0 := msgs.Value(), bytes.Value()
		q := New("sync-stop", Options{Mode: mcl.Sync})
		gate := make(chan struct{})
		stop := make(chan struct{})
		fetchDone := make(chan bool, 1)
		go func() {
			_, ok := q.FetchGated(nil, gate)
			fetchDone <- ok
		}()
		for i := 0; waitingConsumersOf(q) == 0; i++ {
			if i > 1_000_000 {
				t.Fatal("consumer never parked")
			}
			runtime.Gosched()
		}
		postDone := make(chan error, 1)
		go func() { postDone <- q.post("m1", 10, stop) }()
		for q.Len() == 0 && waitingConsumersOf(q) > 0 {
			runtime.Gosched()
		}
		close(gate)
		ok := <-fetchDone
		var err error
		if ok {
			err = <-postDone
		} else {
			select {
			case err = <-postDone:
			case <-time.After(2 * time.Millisecond):
				close(stop)
				err = <-postDone
			}
		}
		if ok == (err != nil) {
			t.Fatalf("round %d: delivered=%v err=%v", round, ok, err)
		}
		if err != nil {
			if n := q.Len(); n != 0 {
				t.Fatalf("round %d: %d item(s) stranded in open queue after canceled post", round, n)
			}
			if m1, b1 := msgs.Value(), bytes.Value(); m1 != m0 || b1 != b0 {
				t.Fatalf("round %d: gauge leak on open queue: msgs %d->%d bytes %d->%d", round, m0, m1, b0, b1)
			}
		}
		q.Close()
	}
}

// TestCloseFetchNGatedConservation is the async side of the audit: Close
// racing concurrent gated batch fetches (with gates firing mid-fetch, the
// retraction path) and batched producers must conserve every message —
// posted == fetched after the residue drains — and reconcile the
// gateway-wide occupancy gauges to exactly their starting values.
func TestCloseFetchNGatedConservation(t *testing.T) {
	msgs := obs.DefaultIntGauge(obs.MQueueQueuedMessages)
	bytes := obs.DefaultIntGauge(obs.MQueueQueuedBytes)
	for round := 0; round < 200; round++ {
		m0, b0 := msgs.Value(), bytes.Value()
		q := New("close-race", Options{CapacityBytes: 1 << 14})
		var wg sync.WaitGroup
		var consumed atomic.Int64
		stopProd := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				ents := make([]Entry, 8)
				for {
					select {
					case <-stopProd:
						return
					default:
					}
					n := 1 + r.Intn(8)
					for i := 0; i < n; i++ {
						ents[i] = Entry{MsgID: "m", Size: 1 + r.Intn(64)}
					}
					q.PostN(ents[:n], stopProd)
					if q.Closed() {
						return
					}
				}
			}(int64(round*17 + p))
		}
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				dst := make([]Item, 8)
				for {
					gate := make(chan struct{})
					if r.Intn(2) == 0 {
						go close(gate)
					} else {
						close(gate)
					}
					n := q.FetchNGated(dst, nil, gate)
					consumed.Add(int64(n))
					if n == 0 && q.Closed() {
						return
					}
				}
			}(int64(round*31 + c))
		}
		q.Close()
		close(stopProd)
		wg.Wait()
		dst := make([]Item, 16)
		for {
			n := q.TryFetchN(dst)
			if n == 0 {
				break
			}
			consumed.Add(int64(n))
		}
		posted, fetched, dropped := q.Stats()
		if posted != fetched {
			t.Fatalf("round %d: posted %d != fetched %d (dropped %d, consumer-seen %d)",
				round, posted, fetched, dropped, consumed.Load())
		}
		if m1, b1 := msgs.Value(), bytes.Value(); m1 != m0 || b1 != b0 {
			t.Fatalf("round %d: gauge leak: msgs %d->%d bytes %d->%d (posted %d fetched %d)",
				round, m0, m1, b0, b1, posted, fetched)
		}
	}
}
