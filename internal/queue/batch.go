package queue

// Batched queue operations: PostN and FetchN move up to a whole batch of
// message references under ONE lock acquisition and ONE generation
// broadcast, instead of paying lock + broadcast + two gauge atomics per
// message. FIFO order, the posted→acked conservation accounting, and the
// gateway-wide occupancy gauges are preserved exactly; the batch paths
// allocate nothing in steady state (callers own the Entry/Item buffers).
//
// The batch lifecycle is explicit: a producer accumulates Entry values and
// flushes them with one PostN; a consumer drains with one FetchN into a
// reusable Item slice and settles with one AckN. A PostN that fills the
// queue mid-batch behaves exactly like the equivalent sequence of single
// Posts — it wakes consumers for what it has already appended, waits the
// Figure 6-9 grace per blocked entry, drops entries individually on
// timeout, and keeps going (later entries may fit once consumers drain).

import (
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/obs"
)

// Entry is one message reference in a batched post.
type Entry struct {
	MsgID string
	Size  int
}

// PostN inserts a batch of message references in order. In steady state the
// whole batch is appended under one lock acquisition with one broadcast and
// one pair of gauge updates. Returns how many entries were posted; failed
// (nil when everything posted) lists the indices of entries that were not,
// in ascending order. err is ErrDropped when at least one entry timed out
// on a full queue (the rest were still attempted), or ErrClosed/ErrCanceled
// when the batch was cut short; posted + len(failed) == len(entries)
// always.
func (q *Queue) PostN(entries []Entry, stop <-chan struct{}) (posted int, failed []int, err error) {
	if len(entries) == 0 {
		return 0, nil, nil
	}
	var start time.Time
	sampled := q.sampleObs()
	if sampled {
		start = time.Now()
	}
	var dropped int
	posted, dropped, failed, err = q.postN(entries, stop)
	if sampled {
		mPostWait.Observe(time.Since(start).Seconds())
	}
	if posted > 0 {
		mPostTotal.Add(uint64(posted))
	}
	if dropped > 0 {
		mDropTotal.Add(uint64(dropped))
	}
	mBatchPostSize.Observe(float64(posted))
	mBatchFlushes.Inc()
	if obs.SpansEnabled() {
		obs.FlightRecord(obs.FlightBatchFlush, q.name, "", int64(posted))
	}
	return posted, failed, err
}

func (q *Queue) postN(entries []Entry, stop <-chan struct{}) (posted, dropped int, failed []int, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, 0, appendRange(nil, 0, len(entries)), ErrClosed
	}

	if q.opts.Mode == mcl.Sync {
		// Rendezvous admits one unit at a time by construction; run the
		// single-post protocol per entry under the one lock hold.
		for i := range entries {
			if serr := q.postSyncLocked(entries[i].MsgID, entries[i].Size, stop); serr != nil {
				return posted, 0, appendRange(failed, i, len(entries)), serr
			}
			posted++
		}
		return posted, 0, nil, nil
	}

	// Gauge updates and the consumer wakeup are deferred and settled once
	// per batch; flush runs early whenever the batch must block so already-
	// appended items stay visible to the consumers we are waiting on.
	spans := obs.SpansEnabled()
	stamp := spans || obs.TracingEnabled()
	var nowNs int64 // one clock read per batch; re-read after any block
	pendingMsgs, pendingBytes := 0, 0
	flush := func() {
		if pendingMsgs > 0 {
			mQueuedMsgs.Add(int64(pendingMsgs))
			mQueuedBytes.Add(int64(pendingBytes))
			pendingMsgs, pendingBytes = 0, 0
			q.broadcastLocked()
		}
	}
	var timer *time.Timer
	for i := range entries {
		e := entries[i]
		if q.queuedSize+e.Size > q.opts.CapacityBytes && q.count > 0 {
			flush()
			nowNs = 0 // blocking makes the batch timestamp stale
			if q.opts.DropTimeout >= 0 {
				// Each blocked entry gets its own grace period, exactly as a
				// sequence of single Posts would (Figure 6-9).
				if timer == nil {
					timer = acquireTimer(q.opts.DropTimeout)
				} else {
					timer.Reset(q.opts.DropTimeout)
				}
				for q.queuedSize+e.Size > q.opts.CapacityBytes && q.count > 0 && !q.closed {
					stopFired, timedOut := q.waitLocked(stop, nil, timer.C)
					if stopFired || timedOut {
						break
					}
				}
			} else {
				for q.queuedSize+e.Size > q.opts.CapacityBytes && q.count > 0 && !q.closed {
					if stopFired, _ := q.waitLocked(stop, nil, nil); stopFired {
						releaseBatchTimer(timer)
						return posted, dropped, appendRange(failed, i, len(entries)), ErrCanceled
					}
				}
			}
			if q.closed {
				releaseBatchTimer(timer)
				return posted, dropped, appendRange(failed, i, len(entries)), ErrClosed
			}
			if stopped(stop) {
				releaseBatchTimer(timer)
				return posted, dropped, appendRange(failed, i, len(entries)), ErrCanceled
			}
			if q.queuedSize+e.Size > q.opts.CapacityBytes && q.count > 0 {
				// Grace expired: drop this entry and keep going — later
				// entries may fit once consumers drain.
				q.dropped++
				dropped++
				failed = append(failed, i)
				continue
			}
		}
		if stamp && nowNs == 0 {
			nowNs = monoNow()
		}
		q.enqueueFlagsLocked(e.MsgID, e.Size, spans, nowNs)
		posted++
		pendingMsgs++
		pendingBytes += e.Size
	}
	flush()
	releaseBatchTimer(timer)
	if dropped > 0 {
		err = ErrDropped
	}
	return posted, dropped, failed, err
}

func releaseBatchTimer(t *time.Timer) {
	if t != nil {
		releaseTimer(t)
	}
}

// appendRange appends the indices [from, to) to failed.
func appendRange(failed []int, from, to int) []int {
	for i := from; i < to; i++ {
		failed = append(failed, i)
	}
	return failed
}

// FetchN removes up to len(dst) of the oldest message references in FIFO
// order, blocking until at least one is available. The whole drain happens
// under one lock acquisition with one producer broadcast and one pair of
// gauge updates. Returns how many items were written into dst; 0 means the
// queue closed empty or stop fired. The caller owns dst, so a steady-state
// FetchN allocates nothing.
func (q *Queue) FetchN(dst []Item, stop <-chan struct{}) int {
	var start time.Time
	sampled := q.sampleObs()
	if sampled {
		start = time.Now()
	}
	n := q.fetchN(dst, stop, nil, nil)
	if n > 0 && sampled {
		mFetchWait.Observe(time.Since(start).Seconds())
	}
	return n
}

// FetchNGated is FetchN with the pause-gate semantics of FetchGated: when
// the gate fires the fetch is retracted without consuming anything, even
// items that raced in (cancellation wins, as in the single-item path).
func (q *Queue) FetchNGated(dst []Item, stop, gate <-chan struct{}) int {
	return q.fetchN(dst, stop, gate, nil)
}

// TryFetchN removes up to len(dst) items without blocking, returning how
// many were taken.
func (q *Queue) TryFetchN(dst []Item) int {
	if len(dst) == 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return 0
	}
	return q.takeNLocked(dst)
}

func (q *Queue) fetchN(dst []Item, stop, gate <-chan struct{}, timeout <-chan time.Time) int {
	if len(dst) == 0 {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	// Cancellation wins over an available item, for the same reason as in
	// fetch: a suspended or detached consumer must not steal messages
	// destined for its replacement.
	if stopped(stop) || stopped(gate) {
		return 0
	}
	for q.count == 0 {
		if q.closed {
			return 0
		}
		q.waitingConsumers++
		q.broadcastLocked() // wake sync producers waiting for a consumer
		stopFired, timedOut := q.waitLocked(stop, gate, timeout)
		q.waitingConsumers--
		if stopFired || timedOut || stopped(stop) || stopped(gate) {
			return 0
		}
	}
	return q.takeNLocked(dst)
}

// takeNLocked drains min(count, len(dst)) items and settles the batch's
// counters, gauges, and producer wakeup in one step.
func (q *Queue) takeNLocked(dst []Item) int {
	n := q.count
	if n > len(dst) {
		n = len(dst)
	}
	spans := obs.SpansEnabled()
	var nowNs int64 // filled on the first stamped item, shared by the batch
	bytes := 0
	for i := 0; i < n; i++ {
		dst[i] = q.dequeueFlagsLocked(spans, &nowNs)
		bytes += dst[i].Size
	}
	mFetchTotal.Add(uint64(n))
	if !q.closed {
		// Residual items already left the gateway-wide gauges at Close;
		// draining them must not subtract twice (same rule as takeLocked).
		mQueuedMsgs.Add(int64(-n))
		mQueuedBytes.Add(int64(-bytes))
	}
	mBatchFetchSize.Observe(float64(n))
	q.broadcastLocked()
	return n
}

// AckN records n completed messages in one atomic add — the batch worker's
// counterpart of Ack, with identical conservation semantics.
func (q *Queue) AckN(n int) {
	if n > 0 {
		q.acked.Add(uint64(n))
	}
}
