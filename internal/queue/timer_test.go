package queue

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTimerPoolNoStaleExpiry is the regression gate for the releaseTimer
// audit (see the comment there): under the pre-1.23 timer runtime the
// Stop-then-nonblocking-drain pattern could pool a timer whose expiry send
// was still in flight, so the next borrower saw an instant spurious tick —
// a premature Post drop or Fetch timeout. The module now requires the 1.23+
// timer semantics, under which Stop/Reset guarantee no stale delivery.
// This test hammers the fire-vs-release window directly and asserts a
// re-borrowed timer never reports a tick it did not earn. Run with -race.
func TestTimerPoolNoStaleExpiry(t *testing.T) {
	// Direct pool hammering: borrow with an about-to-fire deadline, release
	// right around the firing instant, immediately re-borrow with a far
	// deadline. Gosched widens the window in which the expiry send races
	// the release.
	for i := 0; i < 2000; i++ {
		short := acquireTimer(time.Microsecond)
		runtime.Gosched()
		releaseTimer(short)
		long := acquireTimer(time.Hour)
		runtime.Gosched()
		select {
		case <-long.C:
			t.Fatalf("iteration %d: reused timer delivered a stale expiry", i)
		default:
		}
		releaseTimer(long)
	}

	// End-to-end: the same window through FetchTimeout on an empty queue.
	// A stale tick would make the generous wait return instantly; honest
	// scheduling delays can only make it slower, never faster, so the
	// elapsed-time assertion cannot flake under load.
	q := New("timer-race", Options{})
	const generous = 5 * time.Millisecond
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.FetchTimeout(time.Microsecond) // expire a pooled timer
				start := time.Now()
				if _, ok := q.FetchTimeout(generous); ok {
					t.Error("fetched from an empty queue")
					return
				}
				if d := time.Since(start); d < generous/2 {
					t.Errorf("iteration %d: FetchTimeout(%v) returned after %v — stale pooled tick", i, generous, d)
					return
				}
			}
		}()
	}
	wg.Wait()
}
