package queue

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/mcl"
)

func batchEntries(prefix string, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{MsgID: fmt.Sprintf("%s-%03d", prefix, i), Size: 8}
	}
	return es
}

func TestPostNFetchNFIFO(t *testing.T) {
	q := asyncQueue(1 << 20)
	posted, failed, err := q.PostN(batchEntries("a", 10), nil)
	if err != nil || posted != 10 || len(failed) != 0 {
		t.Fatalf("PostN = (%d, %v, %v)", posted, failed, err)
	}
	dst := make([]Item, 4)
	var got []string
	for len(got) < 10 {
		n := q.FetchN(dst, nil)
		if n == 0 {
			t.Fatal("FetchN returned 0 on a non-empty queue")
		}
		for _, it := range dst[:n] {
			got = append(got, it.MsgID)
		}
		q.AckN(n)
	}
	for i, id := range got {
		if want := fmt.Sprintf("a-%03d", i); id != want {
			t.Errorf("position %d = %s, want %s", i, id, want)
		}
	}
	if q.Len() != 0 || q.QueuedBytes() != 0 {
		t.Errorf("drained queue reports Len=%d Bytes=%d", q.Len(), q.QueuedBytes())
	}
	if q.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after AckN", q.Outstanding())
	}
}

func TestPostNPartialDropWhenFull(t *testing.T) {
	// Capacity admits 3 eight-byte entries; the rest must drop after the
	// grace timeout, reported by index with ErrDropped.
	q := New("partial", Options{CapacityBytes: 24, DropTimeout: 2 * time.Millisecond})
	posted, failed, err := q.PostN(batchEntries("b", 5), nil)
	if err != ErrDropped {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if posted != 3 || len(failed) != 2 {
		t.Fatalf("posted = %d, failed = %v", posted, failed)
	}
	if failed[0] != 3 || failed[1] != 4 {
		t.Errorf("failed indices = %v, want [3 4]", failed)
	}
	// The accepted prefix is intact and in order.
	dst := make([]Item, 8)
	if n := q.TryFetchN(dst); n != 3 || dst[0].MsgID != "b-000" || dst[2].MsgID != "b-002" {
		t.Errorf("residual = %v (n=%d)", dst[:n], n)
	}
}

func TestFetchNBlocksUntilPostN(t *testing.T) {
	q := asyncQueue(1 << 20)
	res := make(chan []Item, 1)
	go func() {
		dst := make([]Item, 8)
		n := q.FetchN(dst, nil)
		res <- append([]Item(nil), dst[:n]...)
	}()
	time.Sleep(5 * time.Millisecond) // let the consumer block
	if _, _, err := q.PostN(batchEntries("c", 3), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case items := <-res:
		// The consumer takes whatever is available when it wakes — at
		// least one, never more than was posted.
		if len(items) == 0 || len(items) > 3 {
			t.Fatalf("woke with %d items", len(items))
		}
		if items[0].MsgID != "c-000" {
			t.Errorf("first item = %s", items[0].MsgID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("FetchN did not wake")
	}
}

func TestFetchNCanceledByStop(t *testing.T) {
	q := asyncQueue(1 << 20)
	stop := make(chan struct{})
	time.AfterFunc(2*time.Millisecond, func() { close(stop) })
	dst := make([]Item, 4)
	if n := q.FetchN(dst, stop); n != 0 {
		t.Fatalf("canceled FetchN returned %d items", n)
	}
}

func TestPostNSyncRendezvous(t *testing.T) {
	q := New("sync", Options{Mode: mcl.Sync, DropTimeout: 50 * time.Millisecond})
	got := make(chan string, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]Item, 4)
		for fetched := 0; fetched < 3; {
			n := q.FetchN(dst, nil)
			for _, it := range dst[:n] {
				got <- it.MsgID
			}
			fetched += n
		}
	}()
	posted, failed, err := q.PostN(batchEntries("s", 3), nil)
	if err != nil || posted != 3 || len(failed) != 0 {
		t.Fatalf("sync PostN = (%d, %v, %v)", posted, failed, err)
	}
	wg.Wait()
	close(got)
	i := 0
	for id := range got {
		if want := fmt.Sprintf("s-%03d", i); id != want {
			t.Errorf("rendezvous position %d = %s, want %s", i, id, want)
		}
		i++
	}
}

func TestPostNClosedQueue(t *testing.T) {
	q := asyncQueue(1 << 20)
	q.Close()
	posted, failed, err := q.PostN(batchEntries("d", 4), nil)
	if err != ErrClosed || posted != 0 || len(failed) != 4 {
		t.Errorf("PostN on closed = (%d, %v, %v), want (0, all, ErrClosed)", posted, failed, err)
	}
}

// TestFetchNSteadyStateAllocFree is the batch analogue of the single-item
// zero-alloc gate: one PostN + FetchN + AckN round trip must not allocate
// once the ring and the caller's buffers are warm.
func TestFetchNSteadyStateAllocFree(t *testing.T) {
	q := asyncQueue(1 << 20)
	const batch = 16
	entries := batchEntries("warm-steady-state-msg", batch)
	dst := make([]Item, batch)
	// Warm the ring past its growth phase.
	for i := 0; i < 8; i++ {
		q.PostN(entries, nil)
		for drained := 0; drained < batch; {
			drained += q.TryFetchN(dst)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		posted, failed, err := q.PostN(entries, nil)
		if err != nil || posted != batch || failed != nil {
			t.Fatalf("PostN = (%d, %v, %v)", posted, failed, err)
		}
		if n := q.FetchN(dst, nil); n != batch {
			t.Fatalf("FetchN = %d", n)
		}
		q.AckN(batch)
	})
	if allocs != 0 {
		t.Errorf("steady-state PostN/FetchN allocates %.1f objects per op, want 0", allocs)
	}
}

// TestBatchedRandomizedStress mixes the batch operations with the
// single-item ones under -race: concurrent Post/PostN producers against
// Fetch/FetchN/TryFetchN consumers, with a mid-run Close, asserting message
// conservation, per-producer FIFO, and goroutine-leak freedom.
func TestBatchedRandomizedStress(t *testing.T) {
	before := runtime.NumGoroutine()
	for seed := int64(0); seed < 4; seed++ {
		for _, mode := range []mcl.ChannelMode{mcl.Async, mcl.Sync} {
			batchStressRun(t, seed, mode)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func batchStressRun(t *testing.T, seed int64, mode mcl.ChannelMode) {
	t.Helper()
	opts := Options{Mode: mode, Category: mcl.CatBB, DropTimeout: time.Millisecond}
	if mode == mcl.Async {
		opts.CapacityBytes = 256 // small: exercise the full/wait/drop path
	}
	q := New(fmt.Sprintf("bstress-%d", seed), opts)

	const producers, consumers, opsPerWorker = 4, 3, 60

	var fetchedCount atomic.Int64
	var mu sync.Mutex
	var order []string // every fetched MsgID, in fetch order
	record := func(items []Item) {
		fetchedCount.Add(int64(len(items)))
		mu.Lock()
		for _, it := range items {
			order = append(order, it.MsgID)
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*31 + int64(p)))
			seqNo := 0
			for i := 0; i < opsPerWorker; i++ {
				var stop chan struct{}
				if rng.Intn(4) == 0 {
					stop = make(chan struct{})
					time.AfterFunc(time.Duration(rng.Intn(300))*time.Microsecond,
						func() { close(stop) })
				}
				if rng.Intn(2) == 0 {
					n := 1 + rng.Intn(8)
					es := make([]Entry, n)
					for j := range es {
						es[j] = Entry{MsgID: fmt.Sprintf("p%d-%06d", p, seqNo+j), Size: 1 + rng.Intn(32)}
					}
					seqNo += n
					q.PostN(es, stop)
				} else {
					q.Post(fmt.Sprintf("p%d-%06d", p, seqNo), 1+rng.Intn(32), stop)
					seqNo++
				}
			}
		}(p)
	}

	for cn := 0; cn < consumers; cn++ {
		wg.Add(1)
		go func(cn int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*37 + int64(cn)))
			dst := make([]Item, 8)
			for {
				switch rng.Intn(4) {
				case 0:
					if n := q.TryFetchN(dst); n > 0 {
						record(dst[:n])
						q.AckN(n)
					} else if q.Closed() {
						return
					}
				case 1:
					stop := make(chan struct{})
					time.AfterFunc(time.Duration(rng.Intn(500))*time.Microsecond,
						func() { close(stop) })
					if n := q.FetchN(dst, stop); n > 0 {
						record(dst[:n])
						q.AckN(n)
					} else if q.Closed() && q.Empty() {
						return
					}
				case 2:
					if it, ok := q.Fetch(nil); ok {
						record([]Item{it})
						q.Ack()
					} else {
						return // closed and drained
					}
				default:
					if n := q.FetchN(dst, nil); n > 0 {
						record(dst[:n])
						q.AckN(n)
					} else {
						return // closed and drained
					}
				}
			}
		}(cn)
	}

	time.AfterFunc(time.Duration(2+seed)*time.Millisecond, q.Close)
	wg.Wait()

	residual := int64(0)
	dst := make([]Item, 16)
	for {
		n := q.TryFetchN(dst)
		if n == 0 {
			break
		}
		residual += int64(n)
	}

	// Conservation: everything the queue accepted is fetched or residual.
	posted, _, _ := q.Stats()
	if int64(posted) != fetchedCount.Load()+residual {
		t.Errorf("seed %d %v: conservation broken: accepted %d != fetched %d + residual %d",
			seed, mode, posted, fetchedCount.Load(), residual)
	}
	if q.Len() != 0 || q.QueuedBytes() != 0 {
		t.Errorf("seed %d %v: drained queue reports Len=%d Bytes=%d", seed, mode, q.Len(), q.QueuedBytes())
	}

	// FIFO: each producer posts strictly increasing sequence numbers from a
	// single goroutine, so the fetch order projected onto one producer must
	// be strictly increasing too (drops may skip numbers, never reorder).
	last := map[string]string{}
	for _, id := range order {
		p := id[:2] // "pN"
		if prev, ok := last[p]; ok && id <= prev {
			t.Fatalf("seed %d %v: producer %s reordered: %s fetched after %s", seed, mode, p, id, prev)
		}
		last[p] = id
	}
}
