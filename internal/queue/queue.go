// Package queue implements the MessageQueue abstraction of thesis §6.2: the
// channel object through which all streamlet communication flows. A queue
// carries message identifiers (the system passes messages by reference
// through a central pool, §6.7) together with their byte sizes so that the
// channel's buffer attribute — expressed in KBytes (§4.2.2) — can be
// enforced.
//
// Asynchronous queues are bounded FIFO buffers whose postMessage waits up
// to a grace period when full and then drops the message (Figure 6-9);
// synchronous queues are zero-length rendezvous buffers that accept a value
// only if it can be delivered immediately. The five channel categories
// (S, BB, BK, KB, KK) govern what happens to pending units on disconnect.
package queue

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/obs"
)

// Gateway-wide queue metrics (aggregated across queues to bound series
// cardinality; per-queue occupancy remains available via Stats/Len).
var (
	mPostTotal   = obs.DefaultCounter(obs.MQueuePostTotal)
	mFetchTotal  = obs.DefaultCounter(obs.MQueueFetchTotal)
	mDropTotal   = obs.DefaultCounter(obs.MQueueDropTotal)
	mPostWait    = obs.DefaultHistogram(obs.MQueuePostWaitSeconds, nil)
	mFetchWait   = obs.DefaultHistogram(obs.MQueueFetchWaitSeconds, nil)
	mQueuedMsgs  = obs.DefaultGauge(obs.MQueueQueuedMessages)
	mQueuedBytes = obs.DefaultGauge(obs.MQueueQueuedBytes)
)

// Errors returned by queue operations.
var (
	// ErrDropped reports that postMessage timed out on a full queue and the
	// message was dropped (the slow-streamlet policy of §6.7).
	ErrDropped = errors.New("queue: full, message dropped")
	// ErrClosed reports an operation on a closed queue.
	ErrClosed = errors.New("queue: closed")
	// ErrDetachRefused reports a detach forbidden by the channel category.
	ErrDetachRefused = errors.New("queue: category forbids disconnecting this side")
	// ErrCanceled reports that the caller's stop channel fired.
	ErrCanceled = errors.New("queue: operation canceled")
)

// DefaultDropTimeout is the grace period T of Figure 6-9 that a producer
// waits on a full queue before dropping the message.
const DefaultDropTimeout = 50 * time.Millisecond

// Item is one queued message reference.
type Item struct {
	MsgID string
	Size  int // body size in bytes, counted against the buffer capacity
	// Wait is how long the item sat in the queue; set when it is fetched.
	// The coordination plane copies it into the message's trace record.
	Wait time.Duration

	enqueued time.Time
}

// Options configure a queue beyond its MCL channel declaration.
type Options struct {
	// Mode selects synchronous (rendezvous) or asynchronous (buffered).
	Mode mcl.ChannelMode
	// Category is the disconnect-semantics category.
	Category mcl.ChannelCategory
	// CapacityBytes bounds the queued bytes of an asynchronous queue.
	// Zero means the default 100 KBytes.
	CapacityBytes int
	// DropTimeout overrides DefaultDropTimeout; negative disables dropping
	// (post blocks indefinitely while full).
	DropTimeout time.Duration
}

// Queue is a MessageQueue. The zero value is not usable; use New.
type Queue struct {
	name string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond

	items      []Item
	queuedSize int

	// Producer/consumer counts (the pCount/cCount of Figure 6-3).
	pCount int
	cCount int

	// waitingConsumers supports synchronous rendezvous: a sync post is
	// admitted only when a consumer is blocked in Fetch.
	waitingConsumers int

	closed  bool
	dropped uint64
	posted  uint64
	fetched uint64
	acked   uint64
}

// New creates a queue named name (the channel instance variable).
func New(name string, opts Options) *Queue {
	if opts.CapacityBytes <= 0 {
		opts.CapacityBytes = mcl.DefaultBufferKB * 1024
	}
	if opts.DropTimeout == 0 {
		opts.DropTimeout = DefaultDropTimeout
	}
	q := &Queue{name: name, opts: opts}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// FromDecl creates a queue from an MCL channel declaration.
func FromDecl(name string, d *mcl.ChannelDecl) *Queue {
	return New(name, Options{
		Mode:          d.Mode,
		Category:      d.Category,
		CapacityBytes: d.BufferKB * 1024,
	})
}

// Name returns the queue's instance name.
func (q *Queue) Name() string { return q.name }

// Mode returns the queue's channel mode.
func (q *Queue) Mode() mcl.ChannelMode { return q.opts.Mode }

// Category returns the queue's disconnect category.
func (q *Queue) Category() mcl.ChannelCategory { return q.opts.Category }

// Post inserts a message reference, implementing postMessage of Figure 6-9:
// if the queue is full the producer waits up to the drop timeout and then
// drops the message, returning ErrDropped. stop aborts the wait early
// (reconfiguration uses this to unblock suspended producers).
func (q *Queue) Post(msgID string, size int, stop <-chan struct{}) error {
	start := time.Now()
	err := q.post(msgID, size, stop)
	mPostWait.Observe(time.Since(start).Seconds())
	switch err {
	case nil:
		mPostTotal.Inc()
	case ErrDropped:
		mDropTotal.Inc()
	}
	return err
}

func (q *Queue) post(msgID string, size int, stop <-chan struct{}) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}

	if q.opts.Mode == mcl.Sync {
		return q.postSyncLocked(msgID, size, stop)
	}

	if q.queuedSize+size > q.opts.CapacityBytes && len(q.items) > 0 {
		// Full: wait T, then drop (Figure 6-9). The timed wait is realized
		// by a timer goroutine broadcasting on the condition variable.
		if q.opts.DropTimeout >= 0 {
			deadline := time.Now().Add(q.opts.DropTimeout)
			for q.queuedSize+size > q.opts.CapacityBytes && len(q.items) > 0 && !q.closed {
				if !q.waitUntilLocked(deadline, stop) {
					break
				}
			}
		} else {
			for q.queuedSize+size > q.opts.CapacityBytes && len(q.items) > 0 && !q.closed {
				if !q.waitLocked(stop) {
					return ErrCanceled
				}
			}
		}
		if q.closed {
			return ErrClosed
		}
		if stopped(stop) {
			return ErrCanceled
		}
		if q.queuedSize+size > q.opts.CapacityBytes && len(q.items) > 0 {
			q.dropped++
			return ErrDropped
		}
	}

	q.appendLocked(msgID, size)
	q.cond.Broadcast()
	return nil
}

// appendLocked enqueues one item and maintains the occupancy accounting
// (per-queue counters plus the gateway-wide occupancy gauges).
func (q *Queue) appendLocked(msgID string, size int) {
	q.items = append(q.items, Item{MsgID: msgID, Size: size, enqueued: time.Now()})
	q.queuedSize += size
	q.posted++
	mQueuedMsgs.Add(1)
	mQueuedBytes.Add(float64(size))
}

// postSyncLocked admits a value only when it can be delivered immediately:
// it waits for a blocked consumer, hands the item over, and returns once
// the consumer has taken it.
func (q *Queue) postSyncLocked(msgID string, size int, stop <-chan struct{}) error {
	for q.waitingConsumers == 0 || len(q.items) > 0 {
		if q.closed {
			return ErrClosed
		}
		if !q.waitLocked(stop) {
			return ErrCanceled
		}
	}
	q.appendLocked(msgID, size)
	q.cond.Broadcast()
	// Wait until the rendezvous completes.
	for len(q.items) > 0 && !q.closed {
		if !q.waitLocked(stop) {
			return ErrCanceled
		}
	}
	if q.closed && len(q.items) > 0 {
		return ErrClosed
	}
	return nil
}

// Fetch removes and returns the oldest message reference, blocking until
// one is available, the queue closes (ok=false), or stop fires (ok=false).
func (q *Queue) Fetch(stop <-chan struct{}) (Item, bool) {
	start := time.Now()
	it, ok := q.fetch(stop)
	if ok {
		mFetchWait.Observe(time.Since(start).Seconds())
	}
	return it, ok
}

func (q *Queue) fetch(stop <-chan struct{}) (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	// A canceled fetch must not consume an item even when one is already
	// available: a consumer detached before its fetch loop was scheduled
	// would otherwise steal messages destined for its replacement.
	if stopped(stop) {
		return Item{}, false
	}
	for len(q.items) == 0 {
		if q.closed {
			return Item{}, false
		}
		q.waitingConsumers++
		q.cond.Broadcast() // wake sync producers waiting for a consumer
		ok := q.waitLocked(stop)
		q.waitingConsumers--
		if !ok {
			return Item{}, false
		}
	}
	return q.takeLocked(), true
}

// TryFetch removes and returns the oldest message reference without
// blocking.
func (q *Queue) TryFetch() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return Item{}, false
	}
	return q.takeLocked(), true
}

func (q *Queue) takeLocked() Item {
	it := q.items[0]
	q.items = q.items[1:]
	q.queuedSize -= it.Size
	q.fetched++
	it.Wait = time.Since(it.enqueued)
	mFetchTotal.Inc()
	mQueuedMsgs.Add(-1)
	mQueuedBytes.Add(float64(-it.Size))
	q.cond.Broadcast()
	return it
}

// waitLocked waits on the condition variable, returning false if stop fired.
// The stop channel is bridged to the condition variable by a helper
// goroutine armed once per call.
func (q *Queue) waitLocked(stop <-chan struct{}) bool {
	if stop == nil {
		q.cond.Wait()
		return true
	}
	if stopped(stop) {
		return false
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-stop:
			q.mu.Lock()
			q.cond.Broadcast()
			q.mu.Unlock()
		case <-done:
		}
	}()
	q.cond.Wait()
	close(done)
	return !stopped(stop)
}

// waitUntilLocked waits until the deadline (false) or a broadcast (true).
func (q *Queue) waitUntilLocked(deadline time.Time, stop <-chan struct{}) bool {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false
	}
	timer := time.AfterFunc(remaining, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer timer.Stop()
	if stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-stop:
				q.mu.Lock()
				q.cond.Broadcast()
				q.mu.Unlock()
			case <-done:
			}
		}()
	}
	q.cond.Wait()
	if stopped(stop) {
		return false
	}
	return time.Now().Before(deadline)
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// QueuedBytes returns the byte total of queued messages.
func (q *Queue) QueuedBytes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queuedSize
}

// Empty reports len == 0; one of the streamlet-termination prerequisites of
// Figure 6-8.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Ack records that a previously fetched message has been fully handled by
// its consumer. The posted→acked lifetime makes a message continuously
// visible to Outstanding — there is no instant where it is in neither the
// queue nor a consumer's accounting, which the Figure 6-8 termination
// check depends on.
func (q *Queue) Ack() {
	q.mu.Lock()
	q.acked++
	q.mu.Unlock()
}

// Outstanding returns posted − acked: messages enqueued but not yet fully
// handled (still queued, in a consumer handoff, or being processed).
func (q *Queue) Outstanding() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int64(q.posted) - int64(q.acked)
}

// InFlight returns fetched − acked: messages taken out of the queue whose
// handling has not completed.
func (q *Queue) InFlight() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int64(q.fetched) - int64(q.acked)
}

// Stats returns lifetime posted/fetched/dropped counters.
func (q *Queue) Stats() (posted, fetched, dropped uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.posted, q.fetched, q.dropped
}

// IncProducer / DecProducer / IncConsumer / DecConsumer maintain the
// pCount/cCount attachment counters of Figure 6-3.
func (q *Queue) IncProducer() { q.mu.Lock(); q.pCount++; q.mu.Unlock() }
func (q *Queue) IncConsumer() { q.mu.Lock(); q.cCount++; q.mu.Unlock() }

func (q *Queue) DecProducer() {
	q.mu.Lock()
	if q.pCount > 0 {
		q.pCount--
	}
	q.mu.Unlock()
}

func (q *Queue) DecConsumer() {
	q.mu.Lock()
	if q.cCount > 0 {
		q.cCount--
	}
	q.mu.Unlock()
}

// Counts returns the current producer and consumer attachment counts.
func (q *Queue) Counts() (producers, consumers int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pCount, q.cCount
}

// Close marks the queue closed and wakes all waiters. Pending items remain
// fetchable via TryFetch.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Closed reports whether Close was called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// DetachSide identifies which end of the channel is being disconnected.
type DetachSide int

const (
	// SourceSide is the producer (writer) end.
	SourceSide DetachSide = iota
	// SinkSide is the consumer (reader) end.
	SinkSide
)

func (s DetachSide) String() string {
	if s == SourceSide {
		return "source"
	}
	return "sink"
}

// Detach applies the category semantics of §4.2.2 when one end of the
// channel is disconnected. It returns whether the *other* end must also be
// disconnected (BB), and an error when the category forbids the detach (KK,
// or S with pending units).
func (q *Queue) Detach(side DetachSide) (detachOther bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	switch q.opts.Category {
	case mcl.CatKK:
		return false, fmt.Errorf("%w: %s end of KK channel %s", ErrDetachRefused, side, q.name)
	case mcl.CatS:
		if len(q.items) > 0 {
			return false, fmt.Errorf("queue %s: S channel has %d pending units; drain before disconnecting",
				q.name, len(q.items))
		}
		return false, nil
	case mcl.CatBB:
		return true, nil
	case mcl.CatBK:
		// Break-keep: disconnecting the source keeps the sink connected so
		// pending units drain; disconnecting the sink releases the source.
		return false, nil
	case mcl.CatKB:
		return false, nil
	}
	return false, nil
}
