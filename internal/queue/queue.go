// Package queue implements the MessageQueue abstraction of thesis §6.2: the
// channel object through which all streamlet communication flows. A queue
// carries message identifiers (the system passes messages by reference
// through a central pool, §6.7) together with their byte sizes so that the
// channel's buffer attribute — expressed in KBytes (§4.2.2) — can be
// enforced.
//
// Asynchronous queues are bounded FIFO buffers whose postMessage waits up
// to a grace period when full and then drops the message (Figure 6-9);
// synchronous queues are zero-length rendezvous buffers that accept a value
// only if it can be delivered immediately. The five channel categories
// (S, BB, BK, KB, KK) govern what happens to pending units on disconnect.
//
// The implementation is built for the steady-state forward path: items live
// in a ring buffer (no head retention, no per-item allocation once the ring
// has grown to the working size), blocking waits select directly on the
// caller's stop channel (no bridge goroutine per wait), timed waits draw
// timers from a shared pool, and wait-time histograms are sampled so an
// uncontended Post/Fetch pays no clock read and no histogram lock.
package queue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/obs"
)

// Gateway-wide queue metrics (aggregated across queues to bound series
// cardinality; per-queue occupancy remains available via Stats/Len).
var (
	mPostTotal   = obs.DefaultCounter(obs.MQueuePostTotal)
	mFetchTotal  = obs.DefaultCounter(obs.MQueueFetchTotal)
	mDropTotal   = obs.DefaultCounter(obs.MQueueDropTotal)
	mPostWait    = obs.DefaultHistogram(obs.MQueuePostWaitSeconds, nil)
	mFetchWait   = obs.DefaultHistogram(obs.MQueueFetchWaitSeconds, nil)
	mQueuedMsgs  = obs.DefaultIntGauge(obs.MQueueQueuedMessages)
	mQueuedBytes = obs.DefaultIntGauge(obs.MQueueQueuedBytes)

	// Batch data-plane metrics: the size histograms record how many items
	// each PostN/FetchN moved per lock acquisition (values are counts, not
	// seconds), and the flush counter tallies batched post flushes.
	mBatchPostSize  = obs.DefaultHistogram(obs.MBatchPostSize, nil)
	mBatchFetchSize = obs.DefaultHistogram(obs.MBatchFetchSize, nil)
	mBatchFlushes   = obs.DefaultCounter(obs.MBatchFlushesTotal)
)

// obsSampleShift controls wait-histogram sampling: 1 in 2^obsSampleShift
// Post/Fetch operations measures its wall-clock wait and records it. The
// quantile window stays representative while the other operations skip both
// time.Now calls and the histogram lock.
const obsSampleShift = 6

// Errors returned by queue operations.
var (
	// ErrDropped reports that postMessage timed out on a full queue and the
	// message was dropped (the slow-streamlet policy of §6.7).
	ErrDropped = errors.New("queue: full, message dropped")
	// ErrClosed reports an operation on a closed queue.
	ErrClosed = errors.New("queue: closed")
	// ErrDetachRefused reports a detach forbidden by the channel category.
	ErrDetachRefused = errors.New("queue: category forbids disconnecting this side")
	// ErrCanceled reports that the caller's stop channel fired.
	ErrCanceled = errors.New("queue: operation canceled")
)

// DefaultDropTimeout is the grace period T of Figure 6-9 that a producer
// waits on a full queue before dropping the message.
const DefaultDropTimeout = 50 * time.Millisecond

// Item is one queued message reference.
type Item struct {
	MsgID string
	Size  int // body size in bytes, counted against the buffer capacity
	// Wait is how long the item sat in the queue; set when it is fetched.
	// The coordination plane copies it into the message's trace record.
	// Only measured while tracing is enabled (it feeds the trace hop).
	Wait time.Duration

	// enqueuedNs is monotonic nanoseconds on the obs clock (0 = not
	// stamped). A raw monotonic offset instead of a time.Time halves the
	// clock cost: reading the wall clock as well would buy nothing for a
	// duration.
	enqueuedNs int64
}

// EnqueuedNs returns the item's enqueue stamp on the obs monotonic clock
// (0 when tracing and spans were both off at enqueue time). Span recording
// uses it as the queue-wait span's start.
func (it Item) EnqueuedNs() int64 { return it.enqueuedNs }

// monoNow stamps on the shared obs monotonic clock so queue stamps subtract
// cleanly against span and flight-recorder stamps from other packages.
func monoNow() int64 { return obs.MonoNow() }

// Options configure a queue beyond its MCL channel declaration.
type Options struct {
	// Mode selects synchronous (rendezvous) or asynchronous (buffered).
	Mode mcl.ChannelMode
	// Category is the disconnect-semantics category.
	Category mcl.ChannelCategory
	// CapacityBytes bounds the queued bytes of an asynchronous queue.
	// Zero means the default 100 KBytes.
	CapacityBytes int
	// DropTimeout overrides DefaultDropTimeout; negative disables dropping
	// (post blocks indefinitely while full).
	DropTimeout time.Duration
}

// Queue is a MessageQueue. The zero value is not usable; use New.
type Queue struct {
	name string
	opts Options

	mu sync.Mutex

	// ring is a circular buffer: items occupy ring[head], ring[head+1], …
	// (mod len(ring)), count of them. Fetched slots are zeroed so the ring
	// never retains message-ID strings, and the backing array is reused
	// forever — steady-state Post/Fetch allocates nothing.
	ring       []Item
	head       int
	count      int
	queuedSize int

	// sig is the broadcast channel: waiters select on the current sig (plus
	// their stop channel and timer); a state change closes it and installs a
	// fresh one — but only when waiters exist, so an uncontended operation
	// never allocates a channel.
	sig     chan struct{}
	waiters int

	// Producer/consumer counts (the pCount/cCount of Figure 6-3).
	pCount int
	cCount int

	// waitingConsumers supports synchronous rendezvous: a sync post is
	// admitted only when a consumer is blocked in Fetch.
	waitingConsumers int

	closed  bool
	dropped uint64
	posted  uint64
	fetched uint64

	// acked is outside the mutex: Ack is on the consumer's per-message hot
	// path and touches no other queue state.
	acked atomic.Uint64

	obsTick atomic.Uint64 // wait-histogram sampling counter
}

// New creates a queue named name (the channel instance variable).
func New(name string, opts Options) *Queue {
	if opts.CapacityBytes <= 0 {
		opts.CapacityBytes = mcl.DefaultBufferKB * 1024
	}
	if opts.DropTimeout == 0 {
		opts.DropTimeout = DefaultDropTimeout
	}
	return &Queue{name: name, opts: opts, sig: make(chan struct{})}
}

// FromDecl creates a queue from an MCL channel declaration.
func FromDecl(name string, d *mcl.ChannelDecl) *Queue {
	return New(name, Options{
		Mode:          d.Mode,
		Category:      d.Category,
		CapacityBytes: d.BufferKB * 1024,
	})
}

// Name returns the queue's instance name.
func (q *Queue) Name() string { return q.name }

// Mode returns the queue's channel mode.
func (q *Queue) Mode() mcl.ChannelMode { return q.opts.Mode }

// Category returns the queue's disconnect category.
func (q *Queue) Category() mcl.ChannelCategory { return q.opts.Category }

// sampleObs reports whether this operation should measure its wait.
func (q *Queue) sampleObs() bool {
	return q.obsTick.Add(1)&(1<<obsSampleShift-1) == 0
}

// timerPool recycles timers across timed waits (the drop grace period and
// FetchTimeout) so a timed wait costs no timer allocation.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// releaseTimer parks a timer for reuse.
//
// Audit note (Stop-vs-drain race): the classic pattern
//
//	if !t.Stop() { select { case <-t.C: default: } }
//
// is racy under the pre-1.23 timer runtime — when the timer fires
// concurrently with release, Stop returns false while the tick's send is
// still in flight, the non-blocking drain finds the channel momentarily
// empty, and the stale tick lands *after* the timer is pooled. The next
// borrower's Reset then delivers an instant spurious expiry (a premature
// Post drop or Fetch timeout). A blocking drain is not a fix either: it
// deadlocks under the 1.23+ semantics, where an unreceived tick is
// discarded rather than buffered. The module therefore requires go >= 1.23
// (see go.mod), under which Stop and Reset guarantee that no stale tick is
// ever delivered, and release needs nothing beyond Stop.
// TestTimerPoolNoStaleExpiry hammers the fire-vs-release window under
// -race as the regression gate.
func releaseTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// broadcastLocked wakes every current waiter by closing the generation
// channel. No-op (and no allocation) when nobody waits.
func (q *Queue) broadcastLocked() {
	if q.waiters > 0 {
		close(q.sig)
		q.sig = make(chan struct{})
	}
}

// waitLocked blocks until the queue is signaled, the caller's stop or gate
// channel fires, or the timer channel fires (nil channels never fire). The
// lock is released while blocked and reacquired before returning. Callers
// loop and re-check their predicate: a signal wake may be spurious for
// them.
func (q *Queue) waitLocked(stop, gate <-chan struct{}, timeout <-chan time.Time) (stopFired, timedOut bool) {
	q.waiters++
	sig := q.sig
	q.mu.Unlock()
	select {
	case <-sig:
	case <-stop:
		stopFired = true
	case <-gate:
		stopFired = true
	case <-timeout:
		timedOut = true
	}
	q.mu.Lock()
	q.waiters--
	return stopFired, timedOut
}

// Post inserts a message reference, implementing postMessage of Figure 6-9:
// if the queue is full the producer waits up to the drop timeout and then
// drops the message, returning ErrDropped. stop aborts the wait early
// (reconfiguration uses this to unblock suspended producers).
func (q *Queue) Post(msgID string, size int, stop <-chan struct{}) error {
	var start time.Time
	sampled := q.sampleObs()
	if sampled {
		start = time.Now()
	}
	err := q.post(msgID, size, stop)
	if sampled {
		mPostWait.Observe(time.Since(start).Seconds())
	}
	switch err {
	case nil:
		mPostTotal.Inc()
	case ErrDropped:
		mDropTotal.Inc()
	}
	return err
}

func (q *Queue) post(msgID string, size int, stop <-chan struct{}) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}

	if q.opts.Mode == mcl.Sync {
		return q.postSyncLocked(msgID, size, stop)
	}

	if q.queuedSize+size > q.opts.CapacityBytes && q.count > 0 {
		// Full: wait T, then drop (Figure 6-9). One pooled timer covers the
		// whole grace period across spurious wakeups.
		if q.opts.DropTimeout >= 0 {
			timer := acquireTimer(q.opts.DropTimeout)
			for q.queuedSize+size > q.opts.CapacityBytes && q.count > 0 && !q.closed {
				stopFired, timedOut := q.waitLocked(stop, nil, timer.C)
				if stopFired || timedOut {
					break
				}
			}
			releaseTimer(timer)
		} else {
			for q.queuedSize+size > q.opts.CapacityBytes && q.count > 0 && !q.closed {
				if stopFired, _ := q.waitLocked(stop, nil, nil); stopFired {
					return ErrCanceled
				}
			}
		}
		if q.closed {
			return ErrClosed
		}
		if stopped(stop) {
			return ErrCanceled
		}
		if q.queuedSize+size > q.opts.CapacityBytes && q.count > 0 {
			q.dropped++
			return ErrDropped
		}
	}

	q.appendLocked(msgID, size)
	q.broadcastLocked()
	return nil
}

// appendLocked enqueues one item and maintains the occupancy accounting
// (per-queue counters plus the gateway-wide occupancy gauges).
func (q *Queue) appendLocked(msgID string, size int) {
	q.enqueueLocked(msgID, size)
	mQueuedMsgs.Add(1)
	mQueuedBytes.Add(int64(size))
}

// enqueueLocked is the gauge-free enqueue core: ring insert, stamps, and
// per-queue counters. PostN batches the gateway-wide gauge updates around
// it so a whole batch costs two gauge atomics instead of 2·n.
func (q *Queue) enqueueLocked(msgID string, size int) {
	spans := obs.SpansEnabled()
	var nowNs int64
	if spans || obs.TracingEnabled() {
		// The enqueue timestamp feeds the trace hop's queue-wait term and
		// the queue span's start; with both consumers off nothing reads it,
		// so skip the clock read.
		nowNs = monoNow()
	}
	q.enqueueFlagsLocked(msgID, size, spans, nowNs)
}

// enqueueFlagsLocked is enqueueLocked with the observability toggles and the
// clock read hoisted to the caller: a batch loop loads the toggles and reads
// the clock once per batch instead of per message (the whole batch arrives
// at one instant, so one timestamp is the honest one). nowNs == 0 means
// tracing and spans are both off and no stamp is wanted.
func (q *Queue) enqueueFlagsLocked(msgID string, size int, spans bool, nowNs int64) {
	if q.count == len(q.ring) {
		q.growLocked()
	}
	i := q.head + q.count
	if i >= len(q.ring) {
		i -= len(q.ring)
	}
	q.ring[i] = Item{MsgID: msgID, Size: size}
	if nowNs != 0 {
		q.ring[i].enqueuedNs = nowNs
	}
	if spans {
		// Data-plane flight events ride the spans toggle: at full message
		// rate they would churn the ring past the control-plane record, and
		// the spans-off hot path stays free of the journaling cost.
		obs.FlightRecord(obs.FlightEnqueue, q.name, msgID, int64(size))
	}
	q.count++
	q.queuedSize += size
	q.posted++
}

// growLocked doubles the ring, unrolling it into FIFO order.
func (q *Queue) growLocked() {
	n := len(q.ring) * 2
	if n == 0 {
		n = 16
	}
	ring := make([]Item, n)
	k := copy(ring, q.ring[q.head:])
	copy(ring[k:], q.ring[:q.head])
	q.ring = ring
	q.head = 0
}

// postSyncLocked admits a value only when it can be delivered immediately:
// it waits for a blocked consumer, hands the item over, and returns once
// the consumer has taken it.
func (q *Queue) postSyncLocked(msgID string, size int, stop <-chan struct{}) error {
	for q.waitingConsumers == 0 || q.count > 0 {
		if q.closed {
			return ErrClosed
		}
		if stopFired, _ := q.waitLocked(stop, nil, nil); stopFired {
			return ErrCanceled
		}
	}
	q.appendLocked(msgID, size)
	q.broadcastLocked()
	// Wait until the rendezvous completes — that is, until THIS producer's
	// item leaves the ring. Checking q.count alone is wrong twice over: the
	// consumer counted by waitingConsumers may be a gated fetch that gets
	// retracted (cancellation wins) before taking the item, and when Close
	// or stop then aborts the wait, the producer reports failure — so the
	// caller reclaims the message — while the entry stays in the ring,
	// counted as posted and fetchable by a later drain. The abort paths must
	// retract the in-hand entry; and conversely a completed handoff must
	// report success even when another producer's item has since been
	// admitted or the queue has closed.
	for q.syncPendingLocked(msgID) {
		if q.closed {
			q.retractHeadLocked()
			return ErrClosed
		}
		if stopFired, _ := q.waitLocked(stop, nil, nil); stopFired {
			if q.syncPendingLocked(msgID) {
				q.retractHeadLocked()
			}
			return ErrCanceled
		}
	}
	return nil
}

// syncPendingLocked reports whether this producer's rendezvous item is still
// in the ring. A sync queue admits one item at a time (the admission loop
// requires count == 0), so the head item is the only candidate; message IDs
// are pool-minted and unique among concurrent posts.
func (q *Queue) syncPendingLocked(msgID string) bool {
	return q.count > 0 && q.ring[q.head].MsgID == msgID
}

// retractHeadLocked takes back the head item without counting it as
// fetched: the producer is withdrawing an entry whose handoff never
// completed, so it must vanish from the posted accounting too (the caller
// is about to report the post as failed). Gauge handling mirrors
// takeLocked's closed-queue rule — Close already removed residual items
// from the gateway-wide gauges.
func (q *Queue) retractHeadLocked() {
	it := q.ring[q.head]
	q.ring[q.head] = Item{} // release the msgID string
	q.head++
	if q.head == len(q.ring) {
		q.head = 0
	}
	q.count--
	q.queuedSize -= it.Size
	q.posted--
	if !q.closed {
		mQueuedMsgs.Add(-1)
		mQueuedBytes.Add(-int64(it.Size))
	}
	q.broadcastLocked()
}

// Fetch removes and returns the oldest message reference, blocking until
// one is available, the queue closes (ok=false), or stop fires (ok=false).
func (q *Queue) Fetch(stop <-chan struct{}) (Item, bool) {
	var start time.Time
	sampled := q.sampleObs()
	if sampled {
		start = time.Now()
	}
	it, ok := q.fetch(stop, nil, nil)
	if ok && sampled {
		mFetchWait.Observe(time.Since(start).Seconds())
	}
	return it, ok
}

// FetchGated is Fetch with a second abort channel, the gate. A consumer
// that can be suspended mid-wait (a paused streamlet's pump) passes its
// pause gate here: when the gate fires the fetch is retracted without
// consuming an item — even one that raced in — so a suspended consumer
// stops pulling work and its upstream queue depth becomes observable to a
// reconfiguration drain. ok=false means stop fired, the gate fired, or the
// queue closed empty; callers tell the cases apart by inspecting their own
// channels.
func (q *Queue) FetchGated(stop, gate <-chan struct{}) (Item, bool) {
	return q.fetch(stop, gate, nil)
}

// FetchTimeout is Fetch with a deadline instead of a stop channel: it waits
// up to d for an item, ok=false on timeout or close. The wait reuses a
// pooled timer, so a timed receive costs no goroutine and no channel
// allocation (Outlet.Receive is built on this).
func (q *Queue) FetchTimeout(d time.Duration) (Item, bool) {
	timer := acquireTimer(d)
	it, ok := q.fetch(nil, nil, timer.C)
	releaseTimer(timer)
	return it, ok
}

func (q *Queue) fetch(stop, gate <-chan struct{}, timeout <-chan time.Time) (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	// A canceled fetch must not consume an item even when one is already
	// available: a consumer detached (or suspended, via the gate) before its
	// fetch loop was scheduled would otherwise steal messages destined for
	// its replacement.
	if stopped(stop) || stopped(gate) {
		return Item{}, false
	}
	for q.count == 0 {
		if q.closed {
			return Item{}, false
		}
		q.waitingConsumers++
		q.broadcastLocked() // wake sync producers waiting for a consumer
		stopFired, timedOut := q.waitLocked(stop, gate, timeout)
		q.waitingConsumers--
		// Re-check the abort channels even on a signal wake: when both race,
		// cancellation wins and the item is left for the replacement
		// consumer (see the entry check above).
		if stopFired || timedOut || stopped(stop) || stopped(gate) {
			return Item{}, false
		}
	}
	return q.takeLocked(), true
}

// TryFetch removes and returns the oldest message reference without
// blocking.
func (q *Queue) TryFetch() (Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return Item{}, false
	}
	return q.takeLocked(), true
}

func (q *Queue) takeLocked() Item {
	it := q.dequeueLocked()
	mFetchTotal.Inc()
	if !q.closed {
		// Residual items were already removed from the gateway-wide gauges
		// when the queue closed; draining them must not subtract twice.
		mQueuedMsgs.Add(-1)
		mQueuedBytes.Add(-int64(it.Size))
	}
	q.broadcastLocked()
	return it
}

// dequeueLocked is the gauge- and broadcast-free dequeue core. FetchN runs
// it per item and settles the counters, gauges, and producer wakeup once
// per batch.
func (q *Queue) dequeueLocked() Item {
	var now int64
	return q.dequeueFlagsLocked(obs.SpansEnabled(), &now)
}

// dequeueFlagsLocked is dequeueLocked with the spans toggle read by the
// caller and the clock read cached across a batch drain: *nowNs is filled
// on the first stamped item and reused for the rest, since the whole batch
// leaves the queue at one instant.
func (q *Queue) dequeueFlagsLocked(spans bool, nowNs *int64) Item {
	it := q.ring[q.head]
	q.ring[q.head] = Item{} // release the msgID string
	q.head++
	if q.head == len(q.ring) {
		q.head = 0
	}
	q.count--
	q.queuedSize -= it.Size
	q.fetched++
	if it.enqueuedNs != 0 {
		if *nowNs == 0 {
			*nowNs = monoNow()
		}
		it.Wait = time.Duration(*nowNs - it.enqueuedNs)
	}
	if spans {
		obs.FlightRecord(obs.FlightDequeue, q.name, it.MsgID, int64(it.Wait))
	}
	return it
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// QueuedBytes returns the byte total of queued messages.
func (q *Queue) QueuedBytes() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queuedSize
}

// Empty reports len == 0; one of the streamlet-termination prerequisites of
// Figure 6-8.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Ack records that a previously fetched message has been fully handled by
// its consumer. The posted→acked lifetime makes a message continuously
// visible to Outstanding — there is no instant where it is in neither the
// queue nor a consumer's accounting, which the Figure 6-8 termination
// check depends on.
func (q *Queue) Ack() {
	q.acked.Add(1)
}

// Outstanding returns posted − acked: messages enqueued but not yet fully
// handled (still queued, in a consumer handoff, or being processed).
func (q *Queue) Outstanding() int64 {
	q.mu.Lock()
	posted := q.posted
	q.mu.Unlock()
	return int64(posted) - int64(q.acked.Load())
}

// InFlight returns fetched − acked: messages taken out of the queue whose
// handling has not completed.
func (q *Queue) InFlight() int64 {
	q.mu.Lock()
	fetched := q.fetched
	q.mu.Unlock()
	return int64(fetched) - int64(q.acked.Load())
}

// Stats returns lifetime posted/fetched/dropped counters.
func (q *Queue) Stats() (posted, fetched, dropped uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.posted, q.fetched, q.dropped
}

// IncProducer / DecProducer / IncConsumer / DecConsumer maintain the
// pCount/cCount attachment counters of Figure 6-3.
func (q *Queue) IncProducer() { q.mu.Lock(); q.pCount++; q.mu.Unlock() }
func (q *Queue) IncConsumer() { q.mu.Lock(); q.cCount++; q.mu.Unlock() }

func (q *Queue) DecProducer() {
	q.mu.Lock()
	if q.pCount > 0 {
		q.pCount--
	}
	q.mu.Unlock()
}

func (q *Queue) DecConsumer() {
	q.mu.Lock()
	if q.cCount > 0 {
		q.cCount--
	}
	q.mu.Unlock()
}

// Counts returns the current producer and consumer attachment counts.
func (q *Queue) Counts() (producers, consumers int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pCount, q.cCount
}

// Close marks the queue closed and wakes all waiters. Pending items remain
// fetchable via TryFetch.
//
// Close also reconciles the gateway-wide occupancy gauges: residual items
// stop counting as queued the moment the queue closes, whether they are
// later drained via TryFetch (takeLocked skips the gauges on a closed
// queue) or abandoned with the queue. Without this, session churn leaks the
// residue into mobigate_queue_queued_{messages,bytes} forever.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		mQueuedMsgs.Add(-int64(q.count))
		mQueuedBytes.Add(-int64(q.queuedSize))
		q.broadcastLocked()
	}
	q.mu.Unlock()
}

// Closed reports whether Close was called.
func (q *Queue) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// DetachSide identifies which end of the channel is being disconnected.
type DetachSide int

const (
	// SourceSide is the producer (writer) end.
	SourceSide DetachSide = iota
	// SinkSide is the consumer (reader) end.
	SinkSide
)

func (s DetachSide) String() string {
	if s == SourceSide {
		return "source"
	}
	return "sink"
}

// Detach applies the category semantics of §4.2.2 when one end of the
// channel is disconnected. It returns whether the *other* end must also be
// disconnected (BB), and an error when the category forbids the detach (KK,
// or S with pending units).
func (q *Queue) Detach(side DetachSide) (detachOther bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	switch q.opts.Category {
	case mcl.CatKK:
		return false, fmt.Errorf("%w: %s end of KK channel %s", ErrDetachRefused, side, q.name)
	case mcl.CatS:
		if q.count > 0 {
			return false, fmt.Errorf("queue %s: S channel has %d pending units; drain before disconnecting",
				q.name, q.count)
		}
		return false, nil
	case mcl.CatBB:
		return true, nil
	case mcl.CatBK:
		// Break-keep: disconnecting the source keeps the sink connected so
		// pending units drain; disconnecting the sink releases the source.
		return false, nil
	case mcl.CatKB:
		return false, nil
	}
	return false, nil
}
