package stream

import (
	"fmt"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
	"mobigate/internal/streamlet"
)

// drainWait bounds how long reconfiguration waits for a reused channel or a
// removed streamlet to drain before proceeding (§6.6).
const drainWait = time.Second

// FromConfig instantiates a compiled stream configuration: every declared
// streamlet (native instances resolved through the directory, composite
// instances built recursively), every channel instance, the initial
// connections, and the when-block reactions. The stream is returned
// un-started; call Start.
func FromConfig(cfg *mcl.Config, name string, pool *msgpool.Pool, dir *streamlet.Directory) (*Stream, error) {
	sc := cfg.Stream(name)
	if sc == nil {
		return nil, fmt.Errorf("stream: no compiled stream %q", name)
	}
	st := New(name, pool, dir)
	st.registry = cfg.Registry
	st.file = cfg.File
	st.cfg = cfg

	for v, ci := range sc.Channels {
		if _, err := st.NewChannel(v, ci.Decl); err != nil {
			return nil, err
		}
	}
	for _, v := range sc.Order {
		inst := sc.Instances[v]
		if inst == nil {
			continue
		}
		switch inst.Kind {
		case mcl.KindStreamlet:
			if err := st.NewStreamlet(v, inst.Decl); err != nil {
				return nil, err
			}
		case mcl.KindComposite:
			inner, err := FromConfig(cfg, inst.Stream, st.pool, dir)
			if err != nil {
				return nil, fmt.Errorf("composite %s: %w", v, err)
			}
			if err := st.AddComposite(v, inner, inst.PortMap); err != nil {
				return nil, err
			}
		}
	}
	for _, conn := range sc.Connections {
		var q *queue.Queue
		if conn.Channel != "" {
			q = st.Queue(conn.Channel)
			if q == nil {
				return nil, fmt.Errorf("stream %s: channel %q not instantiated", name, conn.Channel)
			}
		}
		if err := st.Connect(conn.From, conn.To, q); err != nil {
			return nil, err
		}
	}
	for _, w := range sc.Whens {
		st.SetWhen(w.Event, w.Actions)
	}
	return st, nil
}

// RunWhen executes the reconfiguration actions registered for an event
// identifier; it is a no-op when the stream has no matching when-block.
func (st *Stream) RunWhen(eventID string) error {
	st.mu.Lock()
	actions := st.whens[eventID]
	st.mu.Unlock()
	if len(actions) == 0 {
		return nil
	}
	var timing ReconfigTiming
	for _, a := range actions {
		t, err := st.applyStmt(a)
		if err != nil {
			return err
		}
		timing.Suspend += t.Suspend
		timing.Channels += t.Channels
		timing.Activate += t.Activate
	}
	st.mu.Lock()
	st.recordReconfigLocked(timing)
	st.mu.Unlock()
	st.verifyAfterReconfig()
	return nil
}

// applyStmt executes one composition statement at runtime under the
// Figure 7-4 suspend/modify/reactivate protocol.
func (st *Stream) applyStmt(a mcl.Stmt) (ReconfigTiming, error) {
	var timing ReconfigTiming
	switch s := a.(type) {
	case *mcl.NewStreamletStmt:
		for _, v := range s.Vars {
			st.mu.Lock()
			_, exists := st.nodes[v]
			st.mu.Unlock()
			if exists {
				continue // pre-instantiated by FromConfig
			}
			decl, err := st.resolveDecl(s.Def)
			if err != nil {
				return timing, err
			}
			if err := st.NewStreamlet(v, decl); err != nil {
				return timing, err
			}
			if sl := st.Streamlet(v); sl != nil {
				sl.Start()
			}
		}
	case *mcl.NewChannelStmt:
		for _, v := range s.Vars {
			st.mu.Lock()
			_, exists := st.queues[v]
			st.mu.Unlock()
			if exists {
				continue
			}
			decl, err := st.resolveChannelDecl(s.Def)
			if err != nil {
				return timing, err
			}
			if _, err := st.NewChannel(v, decl); err != nil {
				return timing, err
			}
		}
	case *mcl.ConnectStmt:
		return st.reconfigConnect(s)
	case *mcl.DisconnectStmt:
		t0 := time.Now()
		if err := st.Disconnect(s.From, s.To); err != nil {
			return timing, err
		}
		timing.Channels = time.Since(t0)
	case *mcl.DisconnectAllStmt:
		t0 := time.Now()
		if err := st.DisconnectAll(s.Var); err != nil {
			return timing, err
		}
		timing.Channels = time.Since(t0)
	case *mcl.RemoveStreamletStmt:
		if err := st.Remove(s.Var, drainWait); err != nil {
			return timing, err
		}
		st.mu.Lock()
		timing = st.lastTiming
		st.mu.Unlock()
	case *mcl.RemoveChannelStmt:
		st.mu.Lock()
		if q, ok := st.queues[s.Var]; ok {
			q.Close()
			delete(st.queues, s.Var)
		}
		st.mu.Unlock()
	default:
		return timing, fmt.Errorf("stream %s: unsupported reconfiguration statement %T", st.name, a)
	}
	return timing, nil
}

// reconfigConnect performs a runtime connect with producer suspension and
// reused-channel draining.
func (st *Stream) reconfigConnect(s *mcl.ConnectStmt) (ReconfigTiming, error) {
	var timing ReconfigTiming
	st.mu.Lock()
	producer, err := st.node(s.From.Inst)
	if err != nil {
		st.mu.Unlock()
		return timing, err
	}
	var q *queue.Queue
	if s.Channel != "" {
		q = st.queues[s.Channel]
		if q == nil {
			st.mu.Unlock()
			return timing, fmt.Errorf("stream %s: unknown channel %q", st.name, s.Channel)
		}
	}
	st.mu.Unlock()

	t0 := time.Now()
	producer.pause()
	timing.Suspend = time.Since(t0)

	t1 := time.Now()
	if q != nil {
		st.drainPendingSink(q)
	}
	err = st.Connect(s.From, s.To, q)
	timing.Channels = time.Since(t1)

	t2 := time.Now()
	producer.activate()
	timing.Activate = time.Since(t2)
	if err != nil {
		return timing, err
	}
	return timing, nil
}

// drainPendingSink completes a lazy break-keep detach: if a previous
// disconnect left a sink attached to q to drain pending units, wait for the
// queue to empty (bounded) and detach it before the channel is reused.
func (st *Stream) drainPendingSink(q *queue.Queue) {
	st.mu.Lock()
	ref, pending := st.pendingDetach[q]
	st.mu.Unlock()
	if !pending {
		return
	}
	deadline := time.Now().Add(drainWait)
	for !q.Empty() && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if n, err := st.node(ref.Inst); err == nil {
		n.detachIn(ref.Port)
	}
	delete(st.pendingDetach, q)
}

// resolveDecl finds a streamlet declaration by definition name in the
// compiled file backing this stream.
func (st *Stream) resolveDecl(def string) (*mcl.StreamletDecl, error) {
	if st.file == nil {
		return nil, fmt.Errorf("stream %s: no MCL file context for definition %q", st.name, def)
	}
	d, ok := st.file.Streamlet(def)
	if !ok {
		return nil, fmt.Errorf("stream %s: unknown streamlet definition %q", st.name, def)
	}
	return d, nil
}

func (st *Stream) resolveChannelDecl(def string) (*mcl.ChannelDecl, error) {
	if st.file == nil {
		return nil, fmt.Errorf("stream %s: no MCL file context for channel %q", st.name, def)
	}
	d, ok := st.file.Channel(def)
	if !ok {
		return nil, fmt.Errorf("stream %s: unknown channel definition %q", st.name, def)
	}
	return d, nil
}

// Inlet injects application messages into an unfed input port.
type Inlet struct {
	st  *Stream
	q   *queue.Queue
	ref mcl.PortRef
}

// OpenInlet binds a fresh queue to the given (unfed) input port and returns
// an Inlet the application writes to.
func (st *Stream) OpenInlet(ref mcl.PortRef, capacityBytes int) (*Inlet, error) {
	q := queue.New("inlet-"+ref.String(), queue.Options{CapacityBytes: capacityBytes})
	if err := st.BindInRef(ref, q); err != nil {
		return nil, err
	}
	return &Inlet{st: st, q: q, ref: ref}, nil
}

// Send tags the message with the stream session, pools it, and posts it.
// With span tracing enabled it also opens the trace: the message gets a
// fresh trace id and a root inlet span, and every downstream hop parents
// its spans under it via the X-Mobigate-Span header.
func (in *Inlet) Send(m *mime.Message) error {
	m.SetSession(in.st.sessionID)
	var col *obs.SpanCollector
	var traceID, rootID uint64
	var start int64
	if obs.SpansEnabled() {
		col = obs.Spans()
		traceID, rootID = col.NextID(), col.NextID()
		start = col.Now()
		// The header must be set before the message becomes visible to the
		// consumer side (pool.Put / Post publish it to other goroutines).
		m.SetHeader(mime.HeaderSpanContext, obs.EncodeSpanContext(obs.SpanContext{
			TraceID: traceID, ParentID: rootID, StartNs: start,
		}))
	}
	size := m.Len()
	in.st.pool.Put(m)
	if err := in.q.Post(m.ID, size, nil); err != nil {
		in.st.pool.Remove(m.ID)
		return err
	}
	if col != nil {
		col.Record(obs.Span{
			TraceID: traceID, SpanID: rootID,
			Kind: obs.SpanInlet, Site: col.Site(), Name: in.q.Name(),
			StartNs: start, DurNs: col.Now() - start, Bytes: size,
		})
	}
	return nil
}

// Queue exposes the underlying queue (for tests and advanced callers).
func (in *Inlet) Queue() *queue.Queue { return in.q }

// Close closes the inlet queue.
func (in *Inlet) Close() { in.q.Close() }

// Outlet receives application messages from an unconnected output port.
type Outlet struct {
	st  *Stream
	q   *queue.Queue
	ref mcl.PortRef
}

// OpenOutlet binds a fresh queue to the given output port and returns an
// Outlet the application reads from.
func (st *Stream) OpenOutlet(ref mcl.PortRef) (*Outlet, error) {
	q := queue.New("outlet-"+ref.String(), queue.Options{})
	if err := st.BindOutRef(ref, q); err != nil {
		return nil, err
	}
	return &Outlet{st: st, q: q, ref: ref}, nil
}

// Receive waits up to timeout for the next message; the message is removed
// from the pool (final delivery). The timed wait runs on the queue's pooled
// timer — no goroutine, stop channel, or timer allocation per receive.
func (o *Outlet) Receive(timeout time.Duration) (*mime.Message, error) {
	it, ok := o.q.FetchTimeout(timeout)
	if !ok {
		return nil, fmt.Errorf("stream %s: receive on %s timed out after %v", o.st.name, o.ref, timeout)
	}
	m, err := o.st.pool.Get(it.MsgID)
	if err != nil {
		return nil, err
	}
	o.st.pool.Remove(it.MsgID)
	return m, nil
}

// TryReceive returns the next message without blocking (nil when none).
func (o *Outlet) TryReceive() (*mime.Message, error) {
	it, ok := o.q.TryFetch()
	if !ok {
		return nil, nil
	}
	m, err := o.st.pool.Get(it.MsgID)
	if err != nil {
		return nil, err
	}
	o.st.pool.Remove(it.MsgID)
	return m, nil
}

// Queue exposes the underlying queue.
func (o *Outlet) Queue() *queue.Queue { return o.q }
