// Package stream implements the Stream base abstraction of thesis §6.3: the
// coordinator-side object that manages a composition of streamlets — its
// initial connection setup, the composition primitives (connect, insert,
// remove, replace), and event-driven reconfiguration. The reconfiguration
// protocol follows Figure 7-4: suspend the affected producer, detach and
// re-attach channels, then reactivate, so that no queued message is lost
// (§6.6).
package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mobigate/internal/cache"
	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
	"mobigate/internal/semantics"
	"mobigate/internal/streamlet"
)

// mReconfigSeconds observes every reconfiguration's Equation 7-1 total.
var mReconfigSeconds = obs.DefaultHistogram(obs.MStreamReconfigSeconds, nil)

// mDrainTimeouts counts reconfigurations aborted because draining did not
// finish before the deadline (§6.6: better to abort than to strand queued
// messages by detaching anyway).
var mDrainTimeouts = obs.DefaultCounter(obs.MStreamDrainTimeoutsTotal)

// ErrDrainTimeout reports that a reconfiguration's drain deadline passed
// with messages still queued or in flight. The reconfiguration was aborted
// and the suspended producer reactivated; no message was stranded. Callers
// retry with a longer deadline or escalate.
var ErrDrainTimeout = errors.New("stream: drain deadline exceeded, reconfiguration aborted")

// node is a composition member: a native streamlet or a nested composite
// stream reused as a streamlet (§4.4.2).
type node interface {
	bindIn(port string, q *queue.Queue) error
	bindOut(port string, q *queue.Queue) error
	detachIn(port string)
	detachOut(port string)
	start()
	pause()
	activate()
	end()
	canTerminate() bool
	quiesced() bool
	processed() uint64
	dropped() uint64
	ins() map[string]*queue.Queue
	outs() map[string]*queue.Queue
}

// nativeNode wraps a streamlet instance.
type nativeNode struct{ s *streamlet.Streamlet }

func (n nativeNode) bindIn(port string, q *queue.Queue) error  { n.s.SetIn(port, q); return nil }
func (n nativeNode) bindOut(port string, q *queue.Queue) error { n.s.SetOut(port, q); return nil }
func (n nativeNode) detachIn(port string)                      { n.s.DetachIn(port) }
func (n nativeNode) detachOut(port string)                     { n.s.DetachOut(port) }
func (n nativeNode) start()                                    { n.s.Start() }
func (n nativeNode) pause()                                    { n.s.Pause() }
func (n nativeNode) activate()                                 { n.s.Activate() }
func (n nativeNode) end()                                      { n.s.End() }
func (n nativeNode) canTerminate() bool                        { return n.s.CanTerminate() }
func (n nativeNode) quiesced() bool                            { return n.s.Quiesced() }
func (n nativeNode) processed() uint64                         { return n.s.Processed() }
func (n nativeNode) dropped() uint64                           { return n.s.Dropped() }
func (n nativeNode) ins() map[string]*queue.Queue              { return n.s.Ins() }
func (n nativeNode) outs() map[string]*queue.Queue             { return n.s.Outs() }

// compositeNode wraps an inner stream behind a composite interface.
type compositeNode struct {
	inner   *Stream
	portMap map[string]mcl.PortRef
}

func (c compositeNode) resolve(port string) (mcl.PortRef, error) {
	ref, ok := c.portMap[port]
	if !ok {
		return mcl.PortRef{}, fmt.Errorf("stream: composite %s has no port %q", c.inner.name, port)
	}
	return ref, nil
}

func (c compositeNode) bindIn(port string, q *queue.Queue) error {
	ref, err := c.resolve(port)
	if err != nil {
		return err
	}
	return c.inner.BindInRef(ref, q)
}

func (c compositeNode) bindOut(port string, q *queue.Queue) error {
	ref, err := c.resolve(port)
	if err != nil {
		return err
	}
	return c.inner.BindOutRef(ref, q)
}

func (c compositeNode) detachIn(port string) {
	if ref, err := c.resolve(port); err == nil {
		c.inner.DetachInRef(ref)
	}
}

func (c compositeNode) detachOut(port string) {
	if ref, err := c.resolve(port); err == nil {
		c.inner.DetachOutRef(ref)
	}
}

func (c compositeNode) ins() map[string]*queue.Queue {
	out := make(map[string]*queue.Queue)
	for port, ref := range c.portMap {
		if q := c.inner.boundIn(ref); q != nil {
			out[port] = q
		}
	}
	return out
}

func (c compositeNode) outs() map[string]*queue.Queue {
	out := make(map[string]*queue.Queue)
	for port, ref := range c.portMap {
		if q := c.inner.boundOut(ref); q != nil {
			out[port] = q
		}
	}
	return out
}

func (c compositeNode) start()             { c.inner.Start() }
func (c compositeNode) pause()             { c.inner.PauseAll() }
func (c compositeNode) activate()          { c.inner.ActivateAll() }
func (c compositeNode) end()               { c.inner.End() }
func (c compositeNode) canTerminate() bool { return c.inner.CanTerminate() }
func (c compositeNode) quiesced() bool     { return c.inner.Quiesced() }
func (c compositeNode) processed() uint64  { return c.inner.Processed() }
func (c compositeNode) dropped() uint64    { return c.inner.Dropped() }

// liveConn is one active connection: producer port → queue → consumer port.
type liveConn struct {
	from mcl.PortRef
	to   mcl.PortRef
	q    *queue.Queue
}

// ReconfigTiming decomposes the last reconfiguration per Equation 7-1:
// T = Σ suspends + n·channel-creation + Σ activations.
type ReconfigTiming struct {
	Suspend  time.Duration
	Channels time.Duration
	Activate time.Duration
}

// Total returns the summed reconfiguration time.
func (t ReconfigTiming) Total() time.Duration { return t.Suspend + t.Channels + t.Activate }

// Stream is a running composition instance.
type Stream struct {
	name      string
	sessionID string
	pool      *msgpool.Pool
	dir       *streamlet.Directory
	registry  *mime.Registry

	// ErrorHandler receives asynchronous streamlet errors.
	ErrorHandler func(error)

	file *mcl.File
	cfg  *mcl.Config

	mu     sync.Mutex
	nodes  map[string]node
	decls  map[string]*mcl.StreamletDecl
	queues map[string]*queue.Queue
	conns  []liveConn
	whens  map[string][]mcl.Stmt
	// pendingDetach records break-keep sinks left attached to drain after a
	// disconnect; they are detached before the channel is reused (§4.2.2).
	pendingDetach map[*queue.Queue]mcl.PortRef
	// runtimeTypeCheck applies the §4.1 runtime check to streamlets added
	// after EnableRuntimeTypeCheck.
	runtimeTypeCheck bool
	// cache, when set (EnableTranscodeCache), wraps every subsequently
	// added cacheable processor (cache.Keyer) in the content-addressed
	// memo decorator.
	cache    *cache.Cache
	started  bool
	ended    bool
	implicit int // counter for implicit channel names

	// verifyRules, when set, re-runs the semantic analyses after every
	// event-driven reconfiguration (§8.2.2 runtime assertions).
	verifyRules *semantics.Rules

	// Fault supervision state (supervise.go): the sink ExecutionFault
	// events are posted to, per-instance terminal-fault counts, instances
	// with a heal in flight, and the spare-id sequence.
	events      *event.Manager
	faultCounts map[string]int
	healing     map[string]bool
	spareSeq    int

	lastTiming ReconfigTiming
	reconfigs  atomic.Uint64

	// Fusion state (fuse.go): the live fused segments, the opt-out switch,
	// and the mutex serializing fuse/defuse passes together with the
	// reconfigurations they bracket. fuseMu is taken before st.mu and never
	// while holding it.
	fuseMu    sync.Mutex
	fused     []*fusedSeg
	fusionOff bool
}

var sessionCounter atomic.Uint64

// New creates an empty stream for programmatic composition. pool may be nil
// (a fresh by-reference pool is created); dir may be nil when every
// streamlet is added via AddStreamlet with an explicit processor.
func New(name string, pool *msgpool.Pool, dir *streamlet.Directory) *Stream {
	if pool == nil {
		pool = msgpool.New(msgpool.ByReference)
	}
	return &Stream{
		name:          name,
		sessionID:     fmt.Sprintf("sess-%s-%d", name, sessionCounter.Add(1)),
		pool:          pool,
		dir:           dir,
		registry:      mime.DefaultRegistry(),
		nodes:         make(map[string]node),
		decls:         make(map[string]*mcl.StreamletDecl),
		queues:        make(map[string]*queue.Queue),
		whens:         make(map[string][]mcl.Stmt),
		pendingDetach: make(map[*queue.Queue]mcl.PortRef),
	}
}

// Name returns the stream name.
func (st *Stream) Name() string { return st.name }

// SessionID returns the unique session identifier messages of this stream
// are tagged with (§4.4.3).
func (st *Stream) SessionID() string { return st.sessionID }

// Pool returns the stream's message pool.
func (st *Stream) Pool() *msgpool.Pool { return st.pool }

// SubscriberName implements event.Subscriber.
func (st *Stream) SubscriberName() string { return st.name }

// LastReconfigTiming returns the Equation 7-1 decomposition of the most
// recent reconfiguration.
func (st *Stream) LastReconfigTiming() ReconfigTiming {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastTiming
}

// Reconfigurations returns how many reconfiguration actions have run.
func (st *Stream) Reconfigurations() uint64 { return st.reconfigs.Load() }

// SetLatencyBudget configures (or, with budget <= 0, removes) the
// end-to-end latency budget for this stream's session in the gateway SLO
// tracker. Terminal span hops feed the tracker; when the observed latency
// first exceeds the budget an SLO_VIOLATION context event is raised through
// the stream's event sink (edge-triggered — one event per excursion, not
// per message). Spans must be enabled for observations to flow.
func (st *Stream) SetLatencyBudget(budget time.Duration) {
	if budget <= 0 {
		obs.SLO().Remove(st.sessionID)
		return
	}
	obs.SLO().SetBudget(st.sessionID, budget, func(v obs.SLOViolation) {
		st.mu.Lock()
		mgr := st.events
		st.mu.Unlock()
		if mgr != nil {
			mgr.Post(event.ContextEvent{EventID: event.SLO_VIOLATION, Category: event.ExecutionFault, Source: st.name})
		}
	})
}

// AddStreamlet adds a native streamlet instance with an explicit processor.
func (st *Stream) AddStreamlet(id string, decl *mcl.StreamletDecl, proc streamlet.Processor) (*streamlet.Streamlet, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addStreamletLocked(id, decl, proc)
}

func (st *Stream) addStreamletLocked(id string, decl *mcl.StreamletDecl, proc streamlet.Processor) (*streamlet.Streamlet, error) {
	if _, dup := st.nodes[id]; dup {
		return nil, fmt.Errorf("stream %s: duplicate instance %q", st.name, id)
	}
	if st.cache != nil {
		// Deterministic transforms run behind the content-addressed cache;
		// non-Keyer processors come back unchanged.
		proc = cache.Wrap(proc, st.cache)
	}
	s := streamlet.New(id, decl, proc, st.pool)
	s.ErrorHandler = st.fail
	if st.runtimeTypeCheck {
		s.EnableTypeCheck(st.registry)
	}
	st.nodes[id] = nativeNode{s: s}
	st.decls[id] = decl
	if st.started {
		s.Start()
	}
	return s, nil
}

// AddComposite nests an inner stream as a composite streamlet instance.
func (st *Stream) AddComposite(id string, inner *Stream, portMap map[string]mcl.PortRef) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.nodes[id]; dup {
		return fmt.Errorf("stream %s: duplicate instance %q", st.name, id)
	}
	st.nodes[id] = compositeNode{inner: inner, portMap: portMap}
	if st.started {
		inner.Start()
	}
	return nil
}

// NewStreamlet instantiates a streamlet from the directory by declaration
// (the new-streamlet primitive). Declaration param-* attributes are applied
// through the processor's control interface (§8.2.1).
func (st *Stream) NewStreamlet(id string, decl *mcl.StreamletDecl) error {
	if st.dir == nil {
		return fmt.Errorf("stream %s: no streamlet directory", st.name)
	}
	factory, err := st.dir.Lookup(decl.Library)
	if err != nil {
		return fmt.Errorf("stream %s: instance %s: %w", st.name, id, err)
	}
	if decl.Workers > 1 {
		// The declaration asks for parallel fan-out; the library must have
		// advertised that its Process tolerates it. The MCL layer already
		// rejected STATEFUL declarations; this closes the gap for stateless
		// declarations over libraries that never opted in.
		if decl.Kind != mcl.Stateless {
			return fmt.Errorf("stream %s: instance %s: workers = %d requires a STATELESS streamlet", st.name, id, decl.Workers)
		}
		if !st.dir.Traits(decl.Library).Parallelizable {
			return fmt.Errorf("stream %s: instance %s: library %s is not registered as parallelizable; workers = %d refused",
				st.name, id, decl.Library, decl.Workers)
		}
	}
	proc := factory()
	if err := streamlet.Configure(proc, decl.Params); err != nil {
		return fmt.Errorf("stream %s: instance %s: %w", st.name, id, err)
	}
	_, err = st.AddStreamlet(id, decl, proc)
	return err
}

// SetParam routes a runtime parameter change to a native streamlet's
// control interface — the coordinator-to-streamlet channel of §8.2.1 that
// is distinct from the data ports.
func (st *Stream) SetParam(inst, name, value string) error {
	sl := st.Streamlet(inst)
	if sl == nil {
		return fmt.Errorf("stream %s: no native streamlet %q", st.name, inst)
	}
	return streamlet.Configure(sl.Processor(), map[string]string{name: value})
}

// NewChannel creates a channel instance from a declaration (new-channel).
func (st *Stream) NewChannel(id string, decl *mcl.ChannelDecl) (*queue.Queue, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.queues[id]; dup {
		return nil, fmt.Errorf("stream %s: duplicate channel %q", st.name, id)
	}
	q := queue.FromDecl(id, decl)
	st.queues[id] = q
	return q, nil
}

// Queue returns a channel instance by name (nil if absent).
func (st *Stream) Queue(id string) *queue.Queue {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.queues[id]
}

// Streamlet returns the native streamlet behind an instance id, or nil.
func (st *Stream) Streamlet(id string) *streamlet.Streamlet {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n, ok := st.nodes[id].(nativeNode); ok {
		return n.s
	}
	return nil
}

// Inner returns the nested stream behind a composite instance, or nil.
func (st *Stream) Inner(id string) *Stream {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n, ok := st.nodes[id].(compositeNode); ok {
		return n.inner
	}
	return nil
}

// Instances returns the current instance ids (unordered).
func (st *Stream) Instances() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.nodes))
	for id := range st.nodes {
		out = append(out, id)
	}
	return out
}

func (st *Stream) node(id string) (node, error) {
	n, ok := st.nodes[id]
	if !ok {
		return nil, fmt.Errorf("stream %s: unknown instance %q", st.name, id)
	}
	return n, nil
}

func (st *Stream) connectLocked(from, to mcl.PortRef, q *queue.Queue) error {
	nf, err := st.node(from.Inst)
	if err != nil {
		return err
	}
	nt, err := st.node(to.Inst)
	if err != nil {
		return err
	}
	if q == nil {
		st.implicit++
		q = queue.New(fmt.Sprintf("%s-implicit-%d", st.name, st.implicit), queue.Options{})
	}
	if err := nf.bindOut(from.Port, q); err != nil {
		return err
	}
	if err := nt.bindIn(to.Port, q); err != nil {
		nf.detachOut(from.Port)
		return err
	}
	st.conns = append(st.conns, liveConn{from: from, to: to, q: q})
	return nil
}

func (st *Stream) disconnectLocked(from, to mcl.PortRef) error {
	idx := -1
	for i, c := range st.conns {
		if c.from == from && c.to == to {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Positions differ between compiled refs and runtime refs; compare
		// by instance and port only.
		for i, c := range st.conns {
			if c.from.Inst == from.Inst && c.from.Port == from.Port &&
				c.to.Inst == to.Inst && c.to.Port == to.Port {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return fmt.Errorf("stream %s: no connection %s -> %s", st.name, from, to)
	}
	c := st.conns[idx]

	// Category semantics: ask the queue what detaching the source implies.
	detachSink, err := c.q.Detach(queue.SourceSide)
	if err != nil {
		return err
	}
	if nf, err := st.node(c.from.Inst); err == nil {
		nf.detachOut(c.from.Port)
	}
	if detachSink {
		if nt, err := st.node(c.to.Inst); err == nil {
			nt.detachIn(c.to.Port)
		}
	} else if c.q.Category() == mcl.CatBK {
		// Break-keep: the sink stays attached to drain pending units; it is
		// detached lazily when the channel is reused or the stream ends.
		st.pendingDetach[c.q] = c.to
	} else {
		if nt, err := st.node(c.to.Inst); err == nil {
			nt.detachIn(c.to.Port)
		}
	}
	st.conns = append(st.conns[:idx], st.conns[idx+1:]...)
	return nil
}

// disconnectAll severs every connection touching an instance (body of the
// DisconnectAll wrapper in fuse.go).
func (st *Stream) disconnectAll(inst string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var pairs [][2]mcl.PortRef
	for _, c := range st.conns {
		if c.from.Inst == inst || c.to.Inst == inst {
			pairs = append(pairs, [2]mcl.PortRef{c.from, c.to})
		}
	}
	for _, p := range pairs {
		if err := st.disconnectLocked(p[0], p[1]); err != nil {
			return err
		}
	}
	return nil
}

// BindInRef / BindOutRef / DetachInRef / DetachOutRef expose port binding
// for external I/O (inlets/outlets) and composite nesting.
func (st *Stream) BindInRef(ref mcl.PortRef, q *queue.Queue) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	n, err := st.node(ref.Inst)
	if err != nil {
		return err
	}
	return n.bindIn(ref.Port, q)
}

func (st *Stream) BindOutRef(ref mcl.PortRef, q *queue.Queue) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	n, err := st.node(ref.Inst)
	if err != nil {
		return err
	}
	return n.bindOut(ref.Port, q)
}

func (st *Stream) DetachInRef(ref mcl.PortRef) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n, err := st.node(ref.Inst); err == nil {
		n.detachIn(ref.Port)
	}
}

func (st *Stream) DetachOutRef(ref mcl.PortRef) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n, err := st.node(ref.Inst); err == nil {
		n.detachOut(ref.Port)
	}
}

// insert is the Figure 7-4 splice body behind the Insert wrapper in
// fuse.go, which de-fuses the splice point first.
func (st *Stream) insert(pInst, cInst, newInst, newInPort, newOutPort string) error {
	st.mu.Lock()

	found := false
	for i := range st.conns {
		if st.conns[i].from.Inst == pInst && st.conns[i].to.Inst == cInst {
			found = true
			break
		}
	}
	if !found {
		st.mu.Unlock()
		return fmt.Errorf("stream %s: no connection between %s and %s", st.name, pInst, cInst)
	}
	np, err := st.node(pInst)
	if err != nil {
		st.mu.Unlock()
		return err
	}
	nn, err := st.node(newInst)
	if err != nil {
		st.mu.Unlock()
		return err
	}

	var timing ReconfigTiming
	t0 := time.Now()
	np.pause() // step 2: suspend the producer
	timing.Suspend = time.Since(t0)
	st.mu.Unlock()

	// Message-loss avoidance (§6.6): the suspended producer must finish its
	// in-flight messages before its output port is detached — an emission
	// into the unbound port during the rebind window would be lost.
	if !waitUntil(time.Now().Add(drainWait), np.quiesced) {
		np.activate()
		mDrainTimeouts.Inc()
		obs.FlightRecord(obs.FlightDrain, st.name, "insert "+newInst+" timeout", int64(drainWait))
		return fmt.Errorf("stream %s: insert %s: %w (after %v)", st.name, newInst, ErrDrainTimeout, drainWait)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	// Re-resolve the connection: the routing table may have shifted while
	// the lock was released for the drain.
	var conn *liveConn
	for i := range st.conns {
		if st.conns[i].from.Inst == pInst && st.conns[i].to.Inst == cInst {
			conn = &st.conns[i]
			break
		}
	}
	if conn == nil {
		np.activate()
		return fmt.Errorf("stream %s: connection between %s and %s vanished during drain", st.name, pInst, cInst)
	}

	t1 := time.Now()
	m := conn.q
	np.detachOut(conn.from.Port)                      // step 3: detach p from channel m
	if err := nn.bindOut(newOutPort, m); err != nil { // step 4: attach new to m
		_ = st.connectRebind(np, conn.from.Port, m)
		np.activate()
		return err
	}
	// Step 5: create channel n between p and the new streamlet.
	st.implicit++
	n := queue.New(fmt.Sprintf("%s-ins-%d", st.name, st.implicit), queue.Options{})
	if err := np.bindOut(conn.from.Port, n); err != nil {
		np.activate()
		return err
	}
	if err := nn.bindIn(newInPort, n); err != nil {
		np.activate()
		return err
	}
	timing.Channels = time.Since(t1)

	// Routing table update: p→new via n, new→c via m.
	oldTo := conn.to
	newRef := func(port string) mcl.PortRef { return mcl.PortRef{Inst: newInst, Port: port} }
	conn.to = newRef(newInPort)
	conn.q = n
	st.conns = append(st.conns, liveConn{from: newRef(newOutPort), to: oldTo, q: m})

	t2 := time.Now()
	np.activate() // step 6
	timing.Activate = time.Since(t2)

	st.recordReconfigLocked(timing)
	return nil
}

func (st *Stream) connectRebind(n node, port string, q *queue.Queue) error {
	return n.bindOut(port, q)
}

// remove takes instance t out of a linear position: its upstream producer
// is suspended and allowed to finish its in-flight message, t is drained
// (Figure 6-8 prerequisites), t's downstream channel is drained by its
// consumer, the upstream channel is re-attached to that consumer, and the
// producer is reactivated. t itself is ended and discarded. The drain steps
// are what §6.6's message-loss avoidance requires: without them, messages
// parked between t and its consumer would be stranded by the re-attach.
// Body of the Remove wrapper in fuse.go, which de-fuses around t first.
func (st *Stream) remove(t string, drainTimeout time.Duration) error {
	st.mu.Lock()

	var inConn, outConn liveConn
	var hasIn, hasOut bool
	for i := range st.conns {
		if st.conns[i].to.Inst == t {
			if hasIn {
				st.mu.Unlock()
				return fmt.Errorf("stream %s: %s has multiple inputs; remove manually", st.name, t)
			}
			inConn, hasIn = st.conns[i], true
		}
		if st.conns[i].from.Inst == t {
			if hasOut {
				st.mu.Unlock()
				return fmt.Errorf("stream %s: %s has multiple outputs; remove manually", st.name, t)
			}
			outConn, hasOut = st.conns[i], true
		}
	}
	nt, err := st.node(t)
	if err != nil {
		st.mu.Unlock()
		return err
	}

	var producer node
	if hasIn {
		if p, err := st.node(inConn.from.Inst); err == nil {
			producer = p
		}
	}
	var timing ReconfigTiming
	t0 := time.Now()
	if producer != nil {
		producer.pause()
	}
	timing.Suspend = time.Since(t0)
	st.mu.Unlock()

	// Message-loss avoidance (§6.6): let the suspended producer finish its
	// in-flight message, wait for t to drain, then wait for t's consumer to
	// empty the downstream channel before it is re-attached upstream. If any
	// wait times out, the reconfiguration is aborted — detaching anyway would
	// strand the undrained messages, exactly the silent loss the protocol
	// exists to prevent.
	deadline := time.Now().Add(drainTimeout)
	drained := producer == nil || waitUntil(deadline, producer.quiesced)
	drained = drained && waitUntil(deadline, nt.canTerminate)
	if drained && hasOut {
		drained = waitUntil(deadline, outConn.q.Empty)
	}
	if !drained {
		if producer != nil {
			producer.activate()
		}
		mDrainTimeouts.Inc()
		obs.FlightRecord(obs.FlightDrain, st.name, "remove "+t+" timeout", int64(drainTimeout))
		return fmt.Errorf("stream %s: remove %s: %w (after %v)", st.name, t, ErrDrainTimeout, drainTimeout)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	t1 := time.Now()
	switch {
	case hasIn && hasOut:
		// Bridge: upstream channel m now feeds t's consumer directly.
		m := inConn.q
		downTo := outConn.to
		nt.detachIn(inConn.to.Port)
		nt.detachOut(outConn.from.Port)
		if nd, err := st.node(downTo.Inst); err == nil {
			nd.detachIn(downTo.Port)
			if err := nd.bindIn(downTo.Port, m); err != nil {
				return err
			}
		}
		st.retargetConnLocked(inConn.from, inConn.to, downTo)
		st.removeConnLocked(outConn.from, downTo)
	case hasIn:
		nt.detachIn(inConn.to.Port)
		st.removeConnLocked(inConn.from, inConn.to)
		if np, err := st.node(inConn.from.Inst); err == nil {
			np.detachOut(inConn.from.Port)
		}
	case hasOut:
		nt.detachOut(outConn.from.Port)
		st.removeConnLocked(outConn.from, outConn.to)
	}
	timing.Channels = time.Since(t1)

	nt.end()
	delete(st.nodes, t)
	delete(st.decls, t)

	t2 := time.Now()
	if producer != nil {
		producer.activate()
	}
	timing.Activate = time.Since(t2)
	st.recordReconfigLocked(timing)
	return nil
}

// recordReconfigLocked finalizes one reconfiguration's accounting (timing
// snapshot, lifetime count, registry histogram); the caller holds st.mu.
func (st *Stream) recordReconfigLocked(t ReconfigTiming) {
	st.lastTiming = t
	st.reconfigs.Add(1)
	mReconfigSeconds.Observe(t.Total().Seconds())
	obs.FlightRecord(obs.FlightReconfig, st.name, "", int64(t.Total()))
}

// waitUntil polls cond until it holds or the deadline passes, reporting
// whether cond held.
func waitUntil(deadline time.Time, cond func() bool) bool {
	for !cond() {
		if !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// retargetConnLocked updates the routing-table row (from → oldTo) to point
// at newTo.
func (st *Stream) retargetConnLocked(from, oldTo, newTo mcl.PortRef) {
	for i := range st.conns {
		if st.conns[i].from.Inst == from.Inst && st.conns[i].from.Port == from.Port &&
			st.conns[i].to.Inst == oldTo.Inst && st.conns[i].to.Port == oldTo.Port {
			st.conns[i].to = newTo
			return
		}
	}
}

func (st *Stream) removeConnLocked(from, to mcl.PortRef) {
	for i := range st.conns {
		if st.conns[i].from.Inst == from.Inst && st.conns[i].from.Port == from.Port &&
			st.conns[i].to.Inst == to.Inst && st.conns[i].to.Port == to.Port {
			st.conns = append(st.conns[:i], st.conns[i+1:]...)
			return
		}
	}
}

// replace swaps instance old for instance alt, which must already be added
// and have ports of the same names. Producers feeding old are suspended
// during the swap. Body of the Replace wrapper in fuse.go.
func (st *Stream) replace(old, alt string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	no, err := st.node(old)
	if err != nil {
		return err
	}
	na, err := st.node(alt)
	if err != nil {
		return err
	}

	var producers []node
	for _, c := range st.conns {
		if c.to.Inst == old {
			if p, err := st.node(c.from.Inst); err == nil {
				producers = append(producers, p)
			}
		}
	}
	var timing ReconfigTiming
	t0 := time.Now()
	for _, p := range producers {
		p.pause()
	}
	timing.Suspend = time.Since(t0)

	t1 := time.Now()
	// Transfer every binding — including inlets/outlets not recorded in the
	// routing table — then fix up the routing table rows.
	for port, q := range no.ins() {
		no.detachIn(port)
		if err := na.bindIn(port, q); err != nil {
			return err
		}
	}
	for port, q := range no.outs() {
		no.detachOut(port)
		if err := na.bindOut(port, q); err != nil {
			return err
		}
	}
	for i := range st.conns {
		if st.conns[i].to.Inst == old {
			st.conns[i].to.Inst = alt
		}
		if st.conns[i].from.Inst == old {
			st.conns[i].from.Inst = alt
		}
	}
	timing.Channels = time.Since(t1)

	no.end()
	delete(st.nodes, old)
	delete(st.decls, old)

	t2 := time.Now()
	for _, p := range producers {
		p.activate()
	}
	timing.Activate = time.Since(t2)
	st.recordReconfigLocked(timing)
	return nil
}

// Start activates every member (initConfig deployment), then runs the
// first fusion pass over the now-live composition.
func (st *Stream) Start() {
	st.mu.Lock()
	if st.started {
		st.mu.Unlock()
		return
	}
	st.started = true
	for _, n := range st.nodes {
		n.start()
	}
	st.mu.Unlock()
	st.fuseMu.Lock()
	st.fusePass()
	st.fuseMu.Unlock()
}

// PauseAll suspends every member (the PAUSE system command).
func (st *Stream) PauseAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, n := range st.nodes {
		n.pause()
	}
}

// ActivateAll resumes every member (RESUME).
func (st *Stream) ActivateAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, n := range st.nodes {
		n.activate()
	}
}

// EnableRuntimeTypeCheck turns on the §4.1 runtime message/port type check
// for every current native streamlet, using the stream's type registry.
// EnableTranscodeCache routes every subsequently added deterministic
// transform (a processor implementing cache.Keyer) through the shared
// content-addressed result cache: repeated bodies skip the transform and
// replay the stored result. Call before deploying streamlets; instances
// already added keep running uncached. Passing nil disables wrapping for
// later additions.
func (st *Stream) EnableTranscodeCache(c *cache.Cache) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cache = c
}

func (st *Stream) EnableRuntimeTypeCheck() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.runtimeTypeCheck = true
	for _, n := range st.nodes {
		if nn, ok := n.(nativeNode); ok {
			nn.s.EnableTypeCheck(st.registry)
		}
	}
}

// TypeErrors sums runtime type-check failures across native members.
func (st *Stream) TypeErrors() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total uint64
	for _, n := range st.nodes {
		if nn, ok := n.(nativeNode); ok {
			total += nn.s.TypeErrors()
		}
	}
	return total
}

// Quiesced reports that no member is processing or holding an in-flight
// message.
func (st *Stream) Quiesced() bool {
	st.mu.Lock()
	nodes := make([]node, 0, len(st.nodes))
	for _, n := range st.nodes {
		nodes = append(nodes, n)
	}
	st.mu.Unlock()
	for _, n := range nodes {
		if !n.quiesced() {
			return false
		}
	}
	return true
}

// CanTerminate reports whether every member satisfies the Figure 6-8
// termination prerequisites.
func (st *Stream) CanTerminate() bool {
	st.mu.Lock()
	nodes := make([]node, 0, len(st.nodes))
	for _, n := range st.nodes {
		nodes = append(nodes, n)
	}
	st.mu.Unlock()
	for _, n := range nodes {
		if !n.canTerminate() {
			return false
		}
	}
	return true
}

// Processed sums processed-message counts across members.
func (st *Stream) Processed() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total uint64
	for _, n := range st.nodes {
		total += n.processed()
	}
	return total
}

// Dropped sums messages dropped by full output queues across members
// (the wait-then-drop policy of §6.7).
func (st *Stream) Dropped() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	var total uint64
	for _, n := range st.nodes {
		total += n.dropped()
	}
	return total
}

// End terminates every member and closes every channel (END).
func (st *Stream) End() {
	st.mu.Lock()
	if st.ended {
		st.mu.Unlock()
		return
	}
	st.ended = true
	nodes := make([]node, 0, len(st.nodes))
	for _, n := range st.nodes {
		nodes = append(nodes, n)
	}
	queues := make([]*queue.Queue, 0, len(st.queues))
	for _, q := range st.queues {
		queues = append(queues, q)
	}
	for _, c := range st.conns {
		queues = append(queues, c.q)
	}
	st.mu.Unlock()

	for _, n := range nodes {
		n.end()
	}
	for _, q := range queues {
		q.Close()
	}
	st.dropFusedOnEnd()
	// The session will observe no further latencies; drop its SLO chain.
	obs.SLO().Remove(st.sessionID)
}

// OnEvent implements event.Subscriber: system commands map to lifecycle
// operations, and events named in when-blocks trigger their actions (§6.3).
func (st *Stream) OnEvent(evt event.ContextEvent) {
	switch evt.EventID {
	case event.PAUSE:
		st.PauseAll()
		return
	case event.RESUME:
		st.ActivateAll()
		return
	case event.END:
		st.End()
		return
	}
	if err := st.RunWhen(evt.EventID); err != nil {
		st.fail(fmt.Errorf("stream %s: when(%s): %w", st.name, evt.EventID, err))
	}
}

// Whens lists the event identifiers this stream reacts to.
func (st *Stream) Whens() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.whens))
	for ev := range st.whens {
		out = append(out, ev)
	}
	return out
}

// SetWhen registers reconfiguration actions for an event identifier.
func (st *Stream) SetWhen(eventID string, actions []mcl.Stmt) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.whens[eventID] = actions
}

func (st *Stream) fail(err error) {
	if st.ErrorHandler != nil {
		st.ErrorHandler(err)
	}
}

// boundIn returns the queue currently bound to an inner input port.
func (st *Stream) boundIn(ref mcl.PortRef) *queue.Queue {
	st.mu.Lock()
	defer st.mu.Unlock()
	n, err := st.node(ref.Inst)
	if err != nil {
		return nil
	}
	return n.ins()[ref.Port]
}

// boundOut returns the queue currently bound to an inner output port.
func (st *Stream) boundOut(ref mcl.PortRef) *queue.Queue {
	st.mu.Lock()
	defer st.mu.Unlock()
	n, err := st.node(ref.Inst)
	if err != nil {
		return nil
	}
	return n.outs()[ref.Port]
}
