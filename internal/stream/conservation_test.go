package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/queue"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

// TestMessageConservationUnderReconfiguration is the §6.6 no-loss property
// under stress: while a steady flow of messages traverses a pipeline,
// streamlets are inserted and removed concurrently (the Figure 7-4
// protocol). Every message sent must come out exactly once — no loss, no
// duplication — despite the topology changing underneath it.
func TestMessageConservationUnderReconfiguration(t *testing.T) {
	const total = 400
	const reconfigs = 30

	pool := msgpool.New(msgpool.ByReference)
	st := New("conserve", pool, nil)
	if _, err := st.AddStreamlet("head", nil, forward); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("tail", nil, forward); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("head", "po"), ref("tail", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("head", "pi"), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("tail", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()

	// Sender: a steady trickle so messages are in flight during reconfigs.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			m := mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("m-%04d", i)))
			if err := in.Send(m); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if i%16 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	// Reconfigurer: keeps inserting a redirector after head and removing it
	// again, using the real protocol each time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < reconfigs; i++ {
			id := fmt.Sprintf("mid%d", i)
			if _, err := st.AddStreamlet(id, nil, streamlet.ProcessorFunc(
				func(in streamlet.Input) ([]streamlet.Emission, error) {
					return []streamlet.Emission{{Msg: in.Msg}}, nil
				})); err != nil {
				t.Errorf("add %s: %v", id, err)
				return
			}
			if err := st.Insert("head", "tail", id, "pi", "po"); err != nil {
				t.Errorf("insert %s: %v", id, err)
				return
			}
			time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
			if err := st.Remove(id, 2*time.Second); err != nil {
				t.Errorf("remove %s: %v", id, err)
				return
			}
		}
	}()

	// Receiver: every message exactly once.
	seen := make(map[string]int, total)
	for i := 0; i < total; i++ {
		m, err := out.Receive(20 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v", i, err)
		}
		seen[string(m.Body())]++
	}
	wg.Wait()

	if len(seen) != total {
		t.Errorf("distinct messages = %d, want %d", len(seen), total)
	}
	for body, n := range seen {
		if n != 1 {
			t.Errorf("message %q delivered %d times", body, n)
		}
	}
	// Nothing extra trickles out afterwards.
	time.Sleep(20 * time.Millisecond)
	if m, _ := out.TryReceive(); m != nil {
		t.Errorf("extra message %q after conservation count", m.Body())
	}
}

// TestQueueFIFOPropertySingleConsumer: with one consumer, delivery order
// equals post order for arbitrary message batches.
func TestQueueFIFOPropertySingleConsumer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 25; round++ {
		q := queue.New("fifo", queue.Options{CapacityBytes: 1 << 24})
		n := 1 + rng.Intn(200)
		go func() {
			for i := 0; i < n; i++ {
				_ = q.Post(fmt.Sprintf("r%d-%d", round, i), 1+rng.Intn(64), nil)
			}
		}()
		for i := 0; i < n; i++ {
			it, ok := q.Fetch(nil)
			if !ok {
				t.Fatalf("round %d: queue closed early", round)
			}
			if want := fmt.Sprintf("r%d-%d", round, i); it.MsgID != want {
				t.Fatalf("round %d: got %s, want %s", round, it.MsgID, want)
			}
		}
		q.Close()
	}
}
