package stream

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/semantics"
)

// declFor builds a minimal declaration for live-verification tests (Verify
// uses declared ports to find unbound outputs).
func declFor(name string) *mcl.StreamletDecl {
	return &mcl.StreamletDecl{
		Name: name,
		Ports: []mcl.PortDecl{
			{Dir: mcl.PortIn, Name: "pi"},
			{Dir: mcl.PortOut, Name: "po"},
		},
		Library: "x/" + name,
	}
}

func TestVerifyCleanLiveTopology(t *testing.T) {
	st := New("live", nil, nil)
	defer st.End()
	if _, err := st.AddStreamlet("a", declFor("fa"), forward); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("b", declFor("fb"), forward); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("a", "po"), ref("b", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.OpenOutlet(ref("b", "po")); err != nil {
		t.Fatal(err)
	}
	rep := st.Verify(semantics.Rules{})
	if !rep.OK() {
		t.Errorf("violations = %v", rep.Violations)
	}
}

func TestVerifyDetectsLiveOpenCircuit(t *testing.T) {
	st := New("live", nil, nil)
	defer st.End()
	if _, err := st.AddStreamlet("a", declFor("fa"), forward); err != nil {
		t.Fatal(err)
	}
	// a.po is declared but bound to nothing: messages would be lost.
	rep := st.Verify(semantics.Rules{})
	if rep.OK() {
		t.Fatal("live open circuit not reported")
	}
	if rep.Violations[0].Kind != "open-circuit" || rep.Violations[0].Scenario != "live" {
		t.Errorf("violation = %v", rep.Violations[0])
	}
	// Outlet binding silences it.
	if _, err := st.OpenOutlet(ref("a", "po")); err != nil {
		t.Fatal(err)
	}
	if rep := st.Verify(semantics.Rules{}); !rep.OK() {
		t.Errorf("bound output still flagged: %v", rep.Violations)
	}
}

func TestVerifyDetectsLiveCycle(t *testing.T) {
	st := New("live", nil, nil)
	defer st.End()
	for _, id := range []string{"a", "b"} {
		if _, err := st.AddStreamlet(id, declFor("f"+id), forward); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Connect(ref("a", "po"), ref("b", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("b", "po"), ref("a", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	rep := st.Verify(semantics.Rules{})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "feedback-loop" {
			found = true
		}
	}
	if !found {
		t.Errorf("live cycle not found: %v", rep.Violations)
	}
}

func TestVerifyUsesDefinitionNames(t *testing.T) {
	st := New("live", nil, nil)
	defer st.End()
	if _, err := st.AddStreamlet("x1", declFor("encrypt"), forward); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("x2", declFor("compress"), forward); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("x2", "po"), ref("x1", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.OpenOutlet(ref("x1", "po")); err != nil {
		t.Fatal(err)
	}
	rep := st.Verify(semantics.Rules{
		Preorders: []semantics.Preorder{{Before: "encrypt", After: "compress"}},
	})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "preorder" {
			found = true
		}
	}
	if !found {
		t.Errorf("preorder on live topology not found: %v", rep.Violations)
	}
}

func TestLiveVerificationAfterReconfig(t *testing.T) {
	// A when-block that leaves a dangling output: with live verification
	// enabled, the ErrorHandler receives a VerificationError.
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/a"; } }
main stream app {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	connect (s1.po, s2.pi);
	when (LOW_BANDWIDTH) {
		disconnect (s1.po, s2.pi);
	}
}
`
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromConfig(cfg, "app", nil, testDirectory())
	if err != nil {
		t.Fatal(err)
	}
	defer st.End()
	var mu sync.Mutex
	var errs []error
	st.ErrorHandler = func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() }
	// s2.po is a sanctioned exit; s1.po dangling after the disconnect is not.
	st.EnableLiveVerification(semantics.Rules{AllowedOpenPorts: []string{"s2.po"}})
	st.Start()

	// Pre-reconfig topology is clean except s1.po... s1.po is connected, so
	// only the sanctioned s2.po is open: Verify passes.
	if rep := st.Verify(semantics.Rules{AllowedOpenPorts: []string{"s2.po"}}); !rep.OK() {
		t.Fatalf("pre-reconfig violations: %v", rep.Violations)
	}
	if err := st.RunWhen("LOW_BANDWIDTH"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(errs)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) == 0 {
		t.Fatal("live verification did not fire")
	}
	ve, ok := errs[0].(*VerificationError)
	if !ok {
		t.Fatalf("error type %T: %v", errs[0], errs[0])
	}
	if !strings.Contains(ve.Error(), "open-circuit") && !strings.Contains(ve.Error(), "s1.po") {
		t.Errorf("error = %v", ve)
	}
}
