package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

// collectEvents subscribes a counting collector named after the stream so
// source-directed fault events reach it.
type countingSub struct {
	name   string
	mu     sync.Mutex
	counts map[string]int
}

func (c *countingSub) SubscriberName() string { return c.name }
func (c *countingSub) OnEvent(evt event.ContextEvent) {
	c.mu.Lock()
	c.counts[evt.EventID]++
	c.mu.Unlock()
}

func (c *countingSub) count(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[id]
}

// TestHealReplaceUnderLoad: a permanently broken streamlet under
// PolicyBypass + HealReplace keeps forwarding (bypass) until the supervisor
// swaps in a clean spare via the Figure 7-4 replace protocol — with zero
// message loss and the spare taking over the same queues.
func TestHealReplaceUnderLoad(t *testing.T) {
	const total = 200

	pool := msgpool.New(msgpool.ByReference)
	st := New("heal", pool, nil)
	st.ErrorHandler = func(error) {} // bypass faults report here; expected

	mgr := event.NewManager(nil)
	defer mgr.Close()
	st.SetEventSink(mgr)
	sub := &countingSub{name: "heal", counts: make(map[string]int)}
	mgr.Subscribe(event.ExecutionFault, sub)

	broken := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		return nil, errors.New("permanently broken")
	})
	if _, err := st.AddStreamlet("head", nil, forward); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("flaky", nil, broken); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("tail", nil, forward); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("head", "po"), ref("flaky", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("flaky", "po"), ref("tail", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Supervise("flaky", SupervisionConfig{
		Supervision: streamlet.Supervision{Policy: streamlet.PolicyBypass},
		Heal:        HealReplace,
		Spare:       func() streamlet.Processor { return forward },
	}); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("head", "pi"), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("tail", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()

	go func() {
		for i := 0; i < total; i++ {
			m := mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("m-%04d", i)))
			if err := in.Send(m); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if i%16 == 0 {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	seen := make(map[string]int, total)
	for i := 0; i < total; i++ {
		m, err := out.Receive(20 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v", i, err)
		}
		seen[string(m.Body())]++
	}
	if len(seen) != total {
		t.Errorf("distinct messages = %d, want %d", len(seen), total)
	}
	for body, n := range seen {
		if n != 1 {
			t.Errorf("message %q delivered %d times", body, n)
		}
	}

	// The faulting instance must have been replaced by its spare.
	deadline := time.Now().Add(5 * time.Second)
	for st.Streamlet("flaky~1") == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Streamlet("flaky") != nil {
		t.Error("faulting instance still present after heal")
	}
	if st.Streamlet("flaky~1") == nil {
		t.Fatal("spare instance missing after heal")
	}
	if st.Reconfigurations() == 0 {
		t.Error("no reconfiguration recorded for the heal")
	}

	// The healed event went through the event loop.
	for sub.count(event.STREAMLET_HEALED) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sub.count(event.STREAMLET_HEALED) == 0 {
		t.Error("no STREAMLET_HEALED event observed")
	}
	if sub.count(event.STREAMLET_ERROR) == 0 {
		t.Error("no STREAMLET_ERROR event observed")
	}
}

// TestPanicConservationUnderLoad is the §6.6 no-loss property with faults:
// a processor that panics every 25th call under PolicyRetry must still
// deliver every message exactly once (the retried call runs clean).
func TestPanicConservationUnderLoad(t *testing.T) {
	const total = 400

	var calls atomic.Uint64
	flaky := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		if calls.Add(1)%25 == 0 {
			panic("periodic fault")
		}
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})

	pool := msgpool.New(msgpool.ByReference)
	st := New("conserve-faults", pool, nil)
	if _, err := st.AddStreamlet("head", nil, forward); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("flaky", nil, flaky); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("head", "po"), ref("flaky", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Supervise("flaky", SupervisionConfig{
		Supervision: streamlet.Supervision{
			Policy:       streamlet.PolicyRetry,
			RetryBackoff: 100 * time.Microsecond,
		},
	}); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("head", "pi"), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("flaky", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()

	go func() {
		for i := 0; i < total; i++ {
			m := mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("m-%04d", i)))
			if err := in.Send(m); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()

	seen := make(map[string]int, total)
	for i := 0; i < total; i++ {
		m, err := out.Receive(20 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v", i, err)
		}
		seen[string(m.Body())]++
	}
	for body, n := range seen {
		if n != 1 {
			t.Errorf("message %q delivered %d times", body, n)
		}
	}
	if len(seen) != total {
		t.Errorf("distinct messages = %d, want %d", len(seen), total)
	}
	if f := st.Streamlet("flaky").Faults(); f.Panics == 0 || f.Retries == 0 {
		t.Errorf("Faults() = %+v, want panics and retries > 0", f)
	}
}

// TestRemoveDrainTimeout: Remove must refuse to detach while messages are
// still in flight — returning ErrDrainTimeout, counting it, and leaving the
// producer reactivated so traffic resumes — instead of silently stranding
// the undrained messages.
func TestRemoveDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	blocker := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		<-release
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})

	pool := msgpool.New(msgpool.ByReference)
	st := New("drain", pool, nil)
	if _, err := st.AddStreamlet("head", nil, forward); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("mid", nil, blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("tail", nil, forward); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("head", "po"), ref("mid", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("mid", "po"), ref("tail", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("head", "pi"), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("tail", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()

	before := obs.DefaultCounter(obs.MStreamDrainTimeoutsTotal).Value()

	// Park one message inside mid's Process call.
	if err := in.Send(mime.NewMessage(services.TypePlainText, []byte("parked"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Streamlet("mid").Quiesced() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	err = st.Remove("mid", 50*time.Millisecond)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Remove error = %v, want ErrDrainTimeout", err)
	}
	if got := obs.DefaultCounter(obs.MStreamDrainTimeoutsTotal).Value(); got != before+1 {
		t.Errorf("drain-timeout counter = %d, want %d", got, before+1)
	}
	if st.Streamlet("mid") == nil {
		t.Fatal("mid was removed despite the aborted reconfiguration")
	}

	// Unblock and verify traffic resumes end to end — the producer must
	// have been reactivated by the abort path.
	once.Do(func() { close(release) })
	if err := in.Send(mime.NewMessage(services.TypePlainText, []byte("resumed"))); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parked", "resumed"} {
		m, err := out.Receive(5 * time.Second)
		if err != nil {
			t.Fatalf("waiting for %q: %v", want, err)
		}
		if string(m.Body()) != want {
			t.Errorf("delivered %q, want %q", m.Body(), want)
		}
	}

	// With the pipeline drained, the same Remove now succeeds.
	if err := st.Remove("mid", 2*time.Second); err != nil {
		t.Fatalf("Remove after drain: %v", err)
	}
}

// TestNoGoroutineLeakAfterEnd: a supervised stream that took faults
// (including an abandoned stall) leaves no goroutines behind once ended.
func TestNoGoroutineLeakAfterEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	var calls atomic.Uint64
	flaky := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		switch calls.Add(1) {
		case 2:
			panic("one panic")
		case 4:
			time.Sleep(30 * time.Millisecond) // stall past the deadline
		}
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})

	pool := msgpool.New(msgpool.ByReference)
	st := New("leak", pool, nil)
	st.ErrorHandler = func(error) {}
	if _, err := st.AddStreamlet("flaky", nil, flaky); err != nil {
		t.Fatal(err)
	}
	if err := st.Supervise("flaky", SupervisionConfig{
		Supervision: streamlet.Supervision{
			Policy:         streamlet.PolicyRetry,
			ProcessTimeout: 5 * time.Millisecond,
			RetryBackoff:   100 * time.Microsecond,
		},
	}); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("flaky", "pi"), 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("flaky", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()

	const total = 8
	for i := 0; i < total; i++ {
		if err := in.Send(mime.NewMessage(services.TypePlainText, []byte(fmt.Sprintf("m-%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		if _, err := out.Receive(10 * time.Second); err != nil {
			t.Fatalf("after %d deliveries: %v", i, err)
		}
	}
	st.End()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines = %d after End, want <= %d", n, before)
	}
}
