package stream

// The fusion pass: discovery and lifecycle of fused hops (see
// internal/streamlet/fuse.go for the execution side). After Start and after
// every reconfiguration, the stream scans its routing table for maximal
// runs of fusable edges — an edge fuses when its channel is a private
// asynchronous 1:1 link between two serial STATELESS native streamlets that
// have not opted out with `fuse = off` — and collapses each run into one
// fused hop under the Figure 7-4 protocol: suspend the segment head, wait
// for every member and intermediate channel to drain, swap the head's pump,
// reactivate. Dissolving is the mirror image, and every reconfiguration
// primitive brackets itself with it: de-fuse the segments the operation
// touches, apply the change through the unchanged drain protocol, then
// re-run the pass. The adaptation autopilot and the self-healing supervisor
// therefore work on fused streams unmodified — they call the same public
// primitives, which now de-fuse and re-fuse around them.
//
// Fusion is an optimization pass, not a semantic one: a drain timeout while
// fusing just skips that segment (the stream keeps running unfused), while
// a drain timeout while DE-fusing aborts the surrounding reconfiguration
// with ErrDrainTimeout — the topology must not change under a live fused
// segment.

import (
	"fmt"
	"strings"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/obs"
	"mobigate/internal/queue"
	"mobigate/internal/streamlet"
)

// mFusedSegments gauges how many fused hops are live across the gateway.
var mFusedSegments = obs.DefaultIntGauge(obs.MFusedSegments)

// mFusionDefuses counts dissolutions (reconfiguration, heal, workers
// change, opt-out, stream end).
var mFusionDefuses = obs.DefaultCounter(obs.MFusionDefuseTotal)

// fusedSeg is the stream-side record of one live fused hop. Members are
// indexed by pointer, not id, so instance renames (SetWorkersLive's clone
// takeover) cannot orphan a segment.
type fusedSeg struct {
	seg     *streamlet.FusedSegment
	members map[*streamlet.Streamlet]bool
	ids     []string
}

// fuseCandidate is one maximal fusable run found by discovery.
type fuseCandidate struct {
	members  []*streamlet.Streamlet
	ids      []string
	ports    []string // input port of each member
	interior []*queue.Queue
}

// SetFusion turns the fusion pass on or off for this stream (on is the
// default). Turning it off dissolves every live fused segment; turning it
// back on re-runs the pass immediately. Returns ErrDrainTimeout (wrapped)
// if a dissolve drain did not finish; the remaining segments stay fused.
func (st *Stream) SetFusion(on bool) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	st.mu.Lock()
	st.fusionOff = !on
	st.mu.Unlock()
	if !on {
		return st.defuseAll("disabled")
	}
	st.fusePass()
	return nil
}

// FuseNow runs one fusion pass immediately and reports how many segments
// were newly fused. Normally unnecessary — Start and every reconfiguration
// primitive already run the pass — but useful for tests and benchmarks that
// want fusion to have settled before measuring.
func (st *Stream) FuseNow() int {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	return st.fusePass()
}

// FusedSegments returns the member-id chains of the live fused segments.
func (st *Stream) FusedSegments() [][]string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([][]string, 0, len(st.fused))
	for _, fs := range st.fused {
		out = append(out, append([]string(nil), fs.ids...))
	}
	return out
}

// Reconfiguration wrappers: every public topology primitive de-fuses the
// segments it touches, applies the operation (the unexported body, which is
// the unchanged Figure 7-4 protocol), then re-runs the fusion pass — even
// after a failed operation, so fusion is restored either way. st.fuseMu
// serializes the whole bracket; nested primitives (SetWorkersLive's
// replace, the supervisor's heal) call the unexported bodies directly.

// Insert splices newInst between producer p and consumer c per the
// Figure 7-4 protocol: suspend p, detach p from the shared channel m,
// attach newInst's output to m, create a fresh channel n from p to
// newInst's input, and reactivate p. The new instance must already have
// been added (AddStreamlet / NewStreamlet) and its ports named. A fused
// segment covering the splice point is dissolved first and the pass re-run
// after, so inserting into a fused pipeline de-fuses, applies, re-fuses.
func (st *Stream) Insert(pInst, cInst, newInst, newInPort, newOutPort string) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	if err := st.defuseTouching("insert", pInst, cInst); err != nil {
		return err
	}
	err := st.insert(pInst, cInst, newInst, newInPort, newOutPort)
	st.fusePass()
	return err
}

// Remove takes instance t out of a linear position under the drain
// protocol of the unexported body; fused segments touching t or its
// neighbors dissolve first and the pass re-runs after.
func (st *Stream) Remove(t string, drainTimeout time.Duration) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	if err := st.defuseTouching("remove", t); err != nil {
		return err
	}
	err := st.remove(t, drainTimeout)
	st.fusePass()
	return err
}

// Replace swaps instance old for instance alt (see the unexported body);
// fused segments touching either dissolve first and the pass re-runs after.
func (st *Stream) Replace(old, alt string) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	if err := st.defuseTouching("replace", old, alt); err != nil {
		return err
	}
	err := st.replace(old, alt)
	st.fusePass()
	return err
}

// SetWorkersLive retunes a running native streamlet's parallel fan-out
// width (see the unexported body). A fused segment containing the instance
// dissolves first — a fused hop is serial, so widening it de-fuses it — and
// the pass re-runs after (workers = 1 may re-fuse it).
func (st *Stream) SetWorkersLive(inst string, n int, drainTimeout time.Duration) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	if err := st.defuseTouching("workers", inst); err != nil {
		return err
	}
	err := st.setWorkersLive(inst, n, drainTimeout)
	st.fusePass()
	return err
}

// Connect wires from → to through channel q (nil creates the default
// asynchronous BK channel of 100 KBytes). This is the connect primitive.
// Fused segments touching either endpoint dissolve first: a new edge on an
// interior member would bypass the fused route.
func (st *Stream) Connect(from, to mcl.PortRef, q *queue.Queue) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	if err := st.defuseTouching("connect", from.Inst, to.Inst); err != nil {
		return err
	}
	st.mu.Lock()
	err := st.connectLocked(from, to, q)
	st.mu.Unlock()
	st.fusePass()
	return err
}

// Disconnect severs the from → to connection, honoring the channel
// category's detach semantics (§4.2.2). Fused segments touching either
// endpoint dissolve first.
func (st *Stream) Disconnect(from, to mcl.PortRef) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	if err := st.defuseTouching("disconnect", from.Inst, to.Inst); err != nil {
		return err
	}
	st.mu.Lock()
	err := st.disconnectLocked(from, to)
	st.mu.Unlock()
	st.fusePass()
	return err
}

// DisconnectAll severs every connection touching an instance, dissolving
// any fused segment the instance or its neighbors are part of first.
func (st *Stream) DisconnectAll(inst string) error {
	st.fuseMu.Lock()
	defer st.fuseMu.Unlock()
	if err := st.defuseTouching("disconnect", inst); err != nil {
		return err
	}
	err := st.disconnectAll(inst)
	st.fusePass()
	return err
}

// fusePass discovers and fuses every currently fusable run, returning how
// many segments were newly fused. Caller holds st.fuseMu (never st.mu).
func (st *Stream) fusePass() int {
	st.mu.Lock()
	cands := st.candidatesLocked()
	st.mu.Unlock()
	fused := 0
	for _, c := range cands {
		if st.fuseSegment(c) {
			fused++
		}
	}
	return fused
}

// candidatesLocked scans the routing table for maximal fusable runs.
// Caller holds st.mu.
func (st *Stream) candidatesLocked() []fuseCandidate {
	if !st.started || st.ended || st.fusionOff || len(st.conns) == 0 {
		return nil
	}
	inSeg := make(map[*streamlet.Streamlet]bool)
	for _, fs := range st.fused {
		for m := range fs.members {
			inSeg[m] = true
		}
	}
	native := func(id string) *streamlet.Streamlet {
		if n, ok := st.nodes[id].(nativeNode); ok {
			return n.s
		}
		return nil
	}
	// fusableMember: a native STATELESS serial streamlet that has not opted
	// out and is not already in a segment. Instances with nil declarations
	// (programmatic compositions that never stated their kind) never fuse —
	// fusion is earned by declaring STATELESS, not assumed.
	fusableMember := func(s *streamlet.Streamlet) bool {
		if s == nil || inSeg[s] {
			return false
		}
		d := s.Decl()
		return d != nil && d.Kind == mcl.Stateless && d.Fuse != mcl.FuseOff && s.Workers() <= 1
	}
	// Degree maps over the whole routing table: a fusable edge must be its
	// producer's only output and its consumer's only input.
	outdeg := make(map[string]int)
	indeg := make(map[string]int)
	quse := make(map[*queue.Queue]int)
	for i := range st.conns {
		outdeg[st.conns[i].from.Inst]++
		indeg[st.conns[i].to.Inst]++
		quse[st.conns[i].q]++
	}
	type edge struct {
		to   string
		port string
		q    *queue.Queue
	}
	next := make(map[string]edge)
	hasPrev := make(map[string]bool)
	for i := range st.conns {
		c := st.conns[i]
		f, t := native(c.from.Inst), native(c.to.Inst)
		if f == nil || t == nil || f == t {
			continue
		}
		if !fusableMember(f) || !fusableMember(t) {
			continue
		}
		// The channel must be a private async 1:1 link: one routing row, one
		// producer, one consumer, nothing parked on a pending break-keep
		// detach. A sync channel is a rendezvous the producer can observe;
		// an externally shared one has traffic the fused route would miss.
		if c.q.Mode() != mcl.Async || quse[c.q] != 1 {
			continue
		}
		if p, cn := c.q.Counts(); p != 1 || cn != 1 {
			continue
		}
		if _, pending := st.pendingDetach[c.q]; pending {
			continue
		}
		if outdeg[c.from.Inst] != 1 || len(f.Outs()) != 1 {
			continue
		}
		if indeg[c.to.Inst] != 1 || len(t.Ins()) != 1 {
			continue
		}
		next[c.from.Inst] = edge{to: c.to.Inst, port: c.to.Port, q: c.q}
		hasPrev[c.to.Inst] = true
	}
	var out []fuseCandidate
	for startID := range next {
		if hasPrev[startID] {
			continue // interior of a longer run; the walk from its head covers it
		}
		cand := fuseCandidate{
			members: []*streamlet.Streamlet{native(startID)},
			ids:     []string{startID},
			ports:   []string{""},
		}
		for cur := startID; ; {
			e, ok := next[cur]
			if !ok {
				break
			}
			cand.members = append(cand.members, native(e.to))
			cand.ids = append(cand.ids, e.to)
			cand.ports = append(cand.ports, e.port)
			cand.interior = append(cand.interior, e.q)
			cur = e.to
		}
		// The head's pump owns exactly one input port; a multi-input (or
		// source) head keeps its own hop and the run starts one edge later.
		for len(cand.members) >= 2 {
			hins := cand.members[0].Ins()
			if len(hins) == 1 {
				for port := range hins {
					cand.ports[0] = port
				}
				break
			}
			cand.members = cand.members[1:]
			cand.ids = cand.ids[1:]
			cand.ports = cand.ports[1:]
			cand.interior = cand.interior[1:]
		}
		if len(cand.members) >= 2 && cand.ports[0] != "" {
			out = append(out, cand)
		}
	}
	return out
}

// fuseSegment collapses one candidate run under the Figure 7-4 protocol:
// suspend the head, drain every member and intermediate channel, swap the
// head's pump for the fused pump, reactivate. A drain timeout skips the
// segment (fusion is opportunistic); the stream keeps running unfused.
// Caller holds st.fuseMu.
func (st *Stream) fuseSegment(c fuseCandidate) bool {
	head := c.members[0]
	head.Pause()
	drained := waitUntil(time.Now().Add(drainWait), func() bool {
		for _, m := range c.members {
			if !m.Quiesced() {
				return false
			}
		}
		for _, q := range c.interior {
			if !q.Empty() {
				return false
			}
		}
		return true
	})
	if !drained {
		head.Activate()
		mDrainTimeouts.Inc()
		obs.FlightRecord(obs.FlightDrain, st.name, "fuse "+c.ids[0]+" timeout", int64(drainWait))
		return false
	}
	seg, err := streamlet.NewFusedSegment(c.members, c.ports)
	if err == nil {
		err = head.InstallPump(seg)
	}
	if err != nil {
		head.Activate()
		st.fail(fmt.Errorf("stream %s: fuse %s: %w", st.name, strings.Join(c.ids, ">"), err))
		return false
	}
	head.Activate()
	fs := &fusedSeg{seg: seg, members: make(map[*streamlet.Streamlet]bool, len(c.members)), ids: c.ids}
	for _, m := range c.members {
		fs.members[m] = true
	}
	st.mu.Lock()
	st.fused = append(st.fused, fs)
	st.mu.Unlock()
	mFusedSegments.Add(1)
	if obs.SpansEnabled() {
		obs.FlightRecord(obs.FlightFuse, st.name, strings.Join(c.ids, ">"), int64(len(c.ids)))
	}
	return true
}

// defuseTouching dissolves every fused segment containing any of the named
// instances or their direct graph neighbors. The neighbor expansion is what
// makes the reconfiguration wrappers sound: the primitives pause, drain and
// rebind adjacent instances, and a fused member's own quiesce signal is
// only meaningful at its segment head. Caller holds st.fuseMu.
func (st *Stream) defuseTouching(reason string, ids ...string) error {
	st.mu.Lock()
	if len(st.fused) == 0 {
		st.mu.Unlock()
		return nil
	}
	target := make(map[string]bool, len(ids))
	for _, id := range ids {
		target[id] = true
	}
	for _, c := range st.conns {
		for _, id := range ids {
			if c.from.Inst == id {
				target[c.to.Inst] = true
			}
			if c.to.Inst == id {
				target[c.from.Inst] = true
			}
		}
	}
	targetPtr := make(map[*streamlet.Streamlet]bool, len(target))
	for id := range target {
		if n, ok := st.nodes[id].(nativeNode); ok {
			targetPtr[n.s] = true
		}
	}
	var hit []*fusedSeg
	for _, fs := range st.fused {
		for m := range fs.members {
			if targetPtr[m] {
				hit = append(hit, fs)
				break
			}
		}
	}
	st.mu.Unlock()
	for _, fs := range hit {
		if err := st.defuseSeg(fs, reason); err != nil {
			return err
		}
	}
	return nil
}

// defuseAll dissolves every fused segment. Caller holds st.fuseMu.
func (st *Stream) defuseAll(reason string) error {
	st.mu.Lock()
	hit := append([]*fusedSeg(nil), st.fused...)
	st.mu.Unlock()
	for _, fs := range hit {
		if err := st.defuseSeg(fs, reason); err != nil {
			return err
		}
	}
	return nil
}

// defuseSeg dissolves one fused segment: suspend the head, wait for it to
// quiesce (its inflight covers the fused batch end to end, so head
// quiescence is segment quiescence), restore the normal pump, reactivate.
// The segment stays registered until the drain succeeds — on timeout the
// fused hop keeps running and the caller's reconfiguration aborts.
func (st *Stream) defuseSeg(fs *fusedSeg, reason string) error {
	head := fs.seg.Head()
	head.Pause()
	if !waitUntil(time.Now().Add(drainWait), head.Quiesced) {
		head.Activate()
		mDrainTimeouts.Inc()
		obs.FlightRecord(obs.FlightDrain, st.name, "defuse "+fs.ids[0]+" timeout", int64(drainWait))
		return fmt.Errorf("stream %s: defuse %s: %w (after %v)", st.name, strings.Join(fs.ids, ">"), ErrDrainTimeout, drainWait)
	}
	head.RemovePump(fs.seg)
	head.Activate()
	st.mu.Lock()
	for i := range st.fused {
		if st.fused[i] == fs {
			st.fused = append(st.fused[:i], st.fused[i+1:]...)
			break
		}
	}
	st.mu.Unlock()
	mFusedSegments.Add(-1)
	mFusionDefuses.Inc()
	if obs.SpansEnabled() {
		obs.FlightRecord(obs.FlightDefuse, st.name, reason+" "+strings.Join(fs.ids, ">"), int64(len(fs.ids)))
	}
	return nil
}

// dropFusedOnEnd releases the fusion bookkeeping when the stream ends: no
// drain, no pump surgery — End closes every pump (fused ones included) and
// every channel itself; only the gauge, the counter and the registry need
// settling.
func (st *Stream) dropFusedOnEnd() {
	st.mu.Lock()
	segs := st.fused
	st.fused = nil
	st.mu.Unlock()
	for _, fs := range segs {
		mFusedSegments.Add(-1)
		mFusionDefuses.Inc()
		if obs.SpansEnabled() {
			obs.FlightRecord(obs.FlightDefuse, st.name, "end "+strings.Join(fs.ids, ">"), int64(len(fs.ids)))
		}
	}
}
