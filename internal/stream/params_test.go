package stream

import (
	"strings"
	"testing"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/services"
	"mobigate/internal/streamlet"
)

// paramScript declares a compressor tuned through the §8.2.1 control
// interface: param-level is applied at instantiation.
const paramScript = `
streamlet tunedCompressor {
	port { in pi : text; out po : text; }
	attribute {
		type = STATELESS;
		library = "text/compress";
		param-level = 9;
	}
}
main stream tuned {
	streamlet c = new-streamlet (tunedCompressor);
}
`

func servicesDir() *streamlet.Directory {
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	return dir
}

func TestDeclarationParamsApplied(t *testing.T) {
	cfg, err := mcl.Compile(paramScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	decl, _ := cfg.File.Streamlet("tunedCompressor")
	if decl.Params["level"] != "9" {
		t.Fatalf("params = %v", decl.Params)
	}
	st, err := FromConfig(cfg, "tuned", nil, servicesDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.End()
	comp, ok := st.Streamlet("c").Processor().(*services.Compressor)
	if !ok {
		t.Fatalf("processor is %T", st.Streamlet("c").Processor())
	}
	if comp.Level != 9 {
		t.Errorf("level = %d, want 9", comp.Level)
	}
}

func TestDeclarationParamsInvalid(t *testing.T) {
	src := strings.Replace(paramScript, "param-level = 9;", "param-level = 42;", 1)
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromConfig(cfg, "tuned", nil, servicesDir()); err == nil {
		t.Error("invalid param accepted at instantiation")
	}
}

func TestDeclarationParamsOnUnconfigurable(t *testing.T) {
	src := `
streamlet oddRedirector {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "bench/redirector"; param-x = 1; }
}
main stream s {
	streamlet r = new-streamlet (oddRedirector);
}
`
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromConfig(cfg, "s", nil, servicesDir()); err == nil {
		t.Error("params on unconfigurable processor accepted")
	}
}

func TestRuntimeSetParam(t *testing.T) {
	cfg, err := mcl.Compile(paramScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromConfig(cfg, "tuned", nil, servicesDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.End()
	st.Start()

	if err := st.SetParam("c", "level", "1"); err != nil {
		t.Fatal(err)
	}
	comp := st.Streamlet("c").Processor().(*services.Compressor)
	if comp.Level != 1 {
		t.Errorf("level = %d", comp.Level)
	}
	if err := st.SetParam("c", "level", "banana"); err == nil {
		t.Error("bad runtime param accepted")
	}
	if err := st.SetParam("ghost", "level", "1"); err == nil {
		t.Error("unknown instance accepted")
	}

	// The stream still processes after the parameter change.
	in, err := st.OpenInlet(ref("c", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("c", "po"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Send(textMsg(strings.Repeat("data ", 500))); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Receive(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}
