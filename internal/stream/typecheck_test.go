package stream

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/services"
)

// typedScript declares an image-only pipeline; pushing text through it must
// trip the §4.1 runtime type check when enabled.
const typedScript = `
streamlet imgpass {
	port { in pi : image/*; out po : image/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
main stream typed {
	streamlet s = new-streamlet (imgpass);
}
`

func buildTyped(t *testing.T, check bool) (*Stream, *Inlet, *Outlet, *[]error, *sync.Mutex) {
	t.Helper()
	cfg, err := mcl.Compile(typedScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromConfig(cfg, "typed", nil, servicesDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var errs []error
	st.ErrorHandler = func(err error) { mu.Lock(); errs = append(errs, err); mu.Unlock() }
	if check {
		st.EnableRuntimeTypeCheck()
	}
	in, err := st.OpenInlet(ref("s", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("s", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	t.Cleanup(st.End)
	return st, in, out, &errs, &mu
}

func TestRuntimeTypeCheckDropsMismatched(t *testing.T) {
	st, in, out, errs, mu := buildTyped(t, true)

	// A conforming image message passes.
	if err := in.Send(services.GenImageMessage(8, 8, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Receive(2 * time.Second); err != nil {
		t.Fatalf("image rejected: %v", err)
	}

	// A text message violates pi : image/* and is dropped with an error.
	if err := in.Send(services.GenTextMessage(64, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.TypeErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.TypeErrors() != 1 {
		t.Fatalf("type errors = %d", st.TypeErrors())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*errs) == 0 || !strings.Contains((*errs)[0].Error(), "violates port") {
		t.Errorf("errors = %v", *errs)
	}
	if m, _ := out.TryReceive(); m != nil {
		t.Error("mismatched message delivered")
	}
	if st.Pool().Len() != 0 {
		t.Error("dropped message leaked in pool")
	}
}

func TestRuntimeTypeCheckOffByDefault(t *testing.T) {
	st, in, out, _, _ := buildTyped(t, false)
	if err := in.Send(services.GenTextMessage(64, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Receive(2 * time.Second); err != nil {
		t.Errorf("unchecked stream dropped message: %v", err)
	}
	if st.TypeErrors() != 0 {
		t.Error("type errors counted while disabled")
	}
}

func TestRuntimeTypeCheckAppliesToLateStreamlets(t *testing.T) {
	st, _, _, _, _ := buildTyped(t, true)
	decl := &mcl.StreamletDecl{
		Name:    "late",
		Ports:   []mcl.PortDecl{{Dir: mcl.PortIn, Name: "pi", Type: mime.MustParse("image/*")}},
		Library: services.LibRedirector,
	}
	if err := st.NewStreamlet("late", decl); err != nil {
		t.Fatal(err)
	}
	sl := st.Streamlet("late")
	sl.Start()
	inQ, err := st.OpenInlet(ref("late", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := inQ.Send(services.GenTextMessage(32, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sl.TypeErrors() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sl.TypeErrors() != 1 {
		t.Errorf("late streamlet type errors = %d", sl.TypeErrors())
	}
}
