package stream

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/streamlet"
)

// statelessDecl returns a fresh STATELESS declaration — the eligibility
// ticket the fusion pass requires (nil-decl instances never fuse).
func statelessDecl(fuse mcl.FuseMode) *mcl.StreamletDecl {
	return &mcl.StreamletDecl{Kind: mcl.Stateless, Fuse: fuse}
}

// buildFusedChain constructs in -> s0 -> ... -> s<k-1> -> out with STATELESS
// declarations throughout, returning the stream and endpoints unstarted.
func buildFusedChain(t testing.TB, k int, proc func(i int) streamlet.Processor) (*Stream, *Inlet, *Outlet) {
	t.Helper()
	st := New("fchain", nil, nil)
	prev := ""
	for i := 0; i < k; i++ {
		id := fmt.Sprintf("s%d", i)
		if _, err := st.AddStreamlet(id, statelessDecl(mcl.FuseDefault), proc(i)); err != nil {
			t.Fatal(err)
		}
		if prev != "" {
			if err := st.Connect(ref(prev, "po"), ref(id, "pi"), nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	in, err := st.OpenInlet(ref("s0", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref(prev, "po"))
	if err != nil {
		t.Fatal(err)
	}
	return st, in, out
}

func TestFusionEngagesOnStatelessChain(t *testing.T) {
	const k = 5
	st, in, out := buildFusedChain(t, k, func(i int) streamlet.Processor {
		return tagger(fmt.Sprintf("s%d", i))
	})
	st.Start()
	defer st.End()

	segs := st.FusedSegments()
	if len(segs) != 1 || len(segs[0]) != k {
		t.Fatalf("fused segments = %v, want one segment of %d members", segs, k)
	}

	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			_ = in.Send(textMsg(fmt.Sprintf("m%d", i)))
		}
	}()
	for i := 0; i < n; i++ {
		got, err := out.Receive(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("m%d|s0|s1|s2|s3|s4", i)
		if string(got.Body()) != want {
			t.Fatalf("msg %d body = %q, want %q (fused chain must preserve FIFO and per-stage effects)", i, got.Body(), want)
		}
	}
	// Per-stage counters stay exact inside the fused loop.
	for i := 0; i < k; i++ {
		if p := st.Streamlet(fmt.Sprintf("s%d", i)).Processed(); p != n {
			t.Errorf("s%d processed = %d, want %d", i, p, n)
		}
	}
	// Conservation: the head's pool entries drained with the messages.
	deadline := time.Now().Add(time.Second)
	for st.Pool().Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Pool().Len() != 0 {
		t.Errorf("pool leaked %d entries through the fused path", st.Pool().Len())
	}
}

func TestFusionOptOutSplitsSegment(t *testing.T) {
	st := New("fsplit", nil, nil)
	modes := []mcl.FuseMode{mcl.FuseDefault, mcl.FuseDefault, mcl.FuseOff, mcl.FuseDefault, mcl.FuseDefault}
	prev := ""
	for i, m := range modes {
		id := fmt.Sprintf("s%d", i)
		if _, err := st.AddStreamlet(id, statelessDecl(m), tagger(id)); err != nil {
			t.Fatal(err)
		}
		if prev != "" {
			if err := st.Connect(ref(prev, "po"), ref(id, "pi"), nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if _, err := st.OpenInlet(ref("s0", "pi"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.OpenOutlet(ref("s4", "po")); err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()

	segs := st.FusedSegments()
	if len(segs) != 2 {
		t.Fatalf("fused segments = %v, want the opted-out s2 to split the run in two", segs)
	}
	joined := map[string]bool{}
	for _, s := range segs {
		joined[strings.Join(s, ">")] = true
	}
	if !joined["s0>s1"] || !joined["s3>s4"] {
		t.Errorf("fused segments = %v, want s0>s1 and s3>s4", segs)
	}
}

func TestFusionSkipsWorkersAndStateful(t *testing.T) {
	st := New("fskip", nil, nil)
	decls := []*mcl.StreamletDecl{
		statelessDecl(mcl.FuseDefault),
		{Kind: mcl.Stateless, Workers: 2},
		statelessDecl(mcl.FuseDefault),
		{Kind: mcl.Stateful},
		statelessDecl(mcl.FuseDefault),
	}
	prev := ""
	for i, d := range decls {
		id := fmt.Sprintf("s%d", i)
		if _, err := st.AddStreamlet(id, d, tagger(id)); err != nil {
			t.Fatal(err)
		}
		if d.Workers > 1 {
			if err := st.Streamlet(id).SetWorkers(d.Workers); err != nil {
				t.Fatal(err)
			}
		}
		if prev != "" {
			if err := st.Connect(ref(prev, "po"), ref(id, "pi"), nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if _, err := st.OpenInlet(ref("s0", "pi"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.OpenOutlet(ref("s4", "po")); err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()

	// s1 is parallel and s3 stateful: no adjacent pair of fusable members
	// remains, so nothing fuses.
	if segs := st.FusedSegments(); len(segs) != 0 {
		t.Fatalf("fused segments = %v, want none (workers and stateful members keep their own hops)", segs)
	}
}

func TestSetFusionToggle(t *testing.T) {
	st, in, out := buildFusedChain(t, 3, func(i int) streamlet.Processor {
		return tagger(fmt.Sprintf("s%d", i))
	})
	st.Start()
	defer st.End()
	if segs := st.FusedSegments(); len(segs) != 1 {
		t.Fatalf("fused segments = %v, want 1", segs)
	}
	gaugeBefore := obs.DefaultIntGauge(obs.MFusedSegments).Value()

	if err := st.SetFusion(false); err != nil {
		t.Fatal(err)
	}
	if segs := st.FusedSegments(); len(segs) != 0 {
		t.Fatalf("fused segments after opt-out = %v, want none", segs)
	}
	if d := gaugeBefore - obs.DefaultIntGauge(obs.MFusedSegments).Value(); d != 1 {
		t.Errorf("fused-segments gauge dropped by %d on defuse, want 1", d)
	}
	// The dissolved chain still flows per-hop.
	if err := in.Send(textMsg("x")); err != nil {
		t.Fatal(err)
	}
	if got, err := out.Receive(2 * time.Second); err != nil || string(got.Body()) != "x|s0|s1|s2" {
		t.Fatalf("unfused flow: %v %q", err, got.Body())
	}

	if err := st.SetFusion(true); err != nil {
		t.Fatal(err)
	}
	if segs := st.FusedSegments(); len(segs) != 1 {
		t.Fatalf("fused segments after re-enable = %v, want 1", segs)
	}
	if err := in.Send(textMsg("y")); err != nil {
		t.Fatal(err)
	}
	if got, err := out.Receive(2 * time.Second); err != nil || string(got.Body()) != "y|s0|s1|s2" {
		t.Fatalf("re-fused flow: %v %q", err, got.Body())
	}
}

// TestFusionDefuseOnInsert drives traffic through a fused chain while a
// streamlet is spliced into the middle of the segment: the insert must
// dissolve the fused hop under the Figure 7-4 drain, apply, and re-fuse —
// with zero loss, no reorder, and the fuse/defuse flight codes journaled
// (spans are enabled so the span-gated codes record).
func TestFusionDefuseOnInsert(t *testing.T) {
	obs.SetSpansEnabled(true)
	defer obs.SetSpansEnabled(false)

	st, in, out := buildFusedChain(t, 3, func(i int) streamlet.Processor {
		return tagger(fmt.Sprintf("s%d", i))
	})
	st.Start()
	defer st.End()
	if segs := st.FusedSegments(); len(segs) != 1 || len(segs[0]) != 3 {
		t.Fatalf("fused segments = %v, want one of 3", segs)
	}

	const n = 400
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := in.Send(textMsg(fmt.Sprintf("m%d", i))); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	// Mid-run splice: s1 -> sx -> s2 inside the fused segment.
	inserted := make(chan error, 1)
	go func() {
		time.Sleep(2 * time.Millisecond)
		if _, err := st.AddStreamlet("sx", statelessDecl(mcl.FuseDefault), tagger("sx")); err != nil {
			inserted <- err
			return
		}
		inserted <- st.Insert("s1", "s2", "sx", "pi", "po")
	}()

	for i := 0; i < n; i++ {
		got, err := out.Receive(5 * time.Second)
		if err != nil {
			t.Fatalf("msg %d: %v (fused insert lost messages)", i, err)
		}
		body := string(got.Body())
		if !strings.HasPrefix(body, fmt.Sprintf("m%d|", i)) {
			t.Fatalf("msg %d body = %q: reorder across the defuse/refuse", i, body)
		}
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if err := <-inserted; err != nil {
		t.Fatal(err)
	}
	// Post-insert traffic must traverse the spliced member.
	if err := in.Send(textMsg("after")); err != nil {
		t.Fatal(err)
	}
	if got, err := out.Receive(5 * time.Second); err != nil || string(got.Body()) != "after|s0|s1|sx|s2" {
		t.Fatalf("post-insert flow: %v %q, want traversal through sx", err, got.Body())
	}

	// The re-fused segment must include the insert.
	segs := st.FusedSegments()
	if len(segs) != 1 || strings.Join(segs[0], ">") != "s0>s1>sx>s2" {
		t.Fatalf("fused segments after insert = %v, want s0>s1>sx>s2", segs)
	}

	// Flight record: the defuse (reason "insert") and the re-fuse journaled.
	var sawDefuse, sawRefuse bool
	for _, e := range obs.Flight().Snapshot(0).Events {
		if e.Subject != st.Name() {
			continue
		}
		switch e.Code {
		case obs.FlightDefuse:
			if strings.HasPrefix(e.Detail, "insert ") {
				sawDefuse = true
			}
		case obs.FlightFuse:
			if strings.Contains(e.Detail, "sx") {
				sawRefuse = true
			}
		}
	}
	if !sawDefuse || !sawRefuse {
		t.Errorf("flight journal: defuse(insert)=%v refuse-with-sx=%v, want both", sawDefuse, sawRefuse)
	}
}

// Randomized transparency (the PR's equivalence obligation): arbitrary
// stateless chains — body transforms, identity-changing rewraps, fan-out
// duplicators, and a mid-segment fault injector — must produce byte-
// identical client output, identical per-stage trace hop sequences, and
// identical fault dispositions whether the chain runs fused or per-hop.
func TestFusionTransparencyRandomized(t *testing.T) {
	obs.SetTracingEnabled(true)

	// Deterministic generator: the same chains and inputs on every run.
	rng := rand.New(rand.NewSource(7))

	type result struct {
		bodies []string
		stages []string // per delivered message: trace-hop streamlet sequence
		faults int
	}

	run := func(k, n int, kinds []int, faultAt int, byValue bool, fuse bool) result {
		mode := msgpool.ByReference
		if byValue {
			mode = msgpool.ByValue
		}
		st := New("ftrans", msgpool.New(mode), nil)
		var faultMu sync.Mutex
		faults := 0
		st.ErrorHandler = func(err error) {
			faultMu.Lock()
			faults++
			faultMu.Unlock()
		}
		prev := ""
		for i := 0; i < k; i++ {
			id := fmt.Sprintf("s%d", i)
			var proc streamlet.Processor
			switch {
			case i == faultAt:
				// Injector: errors on marked bodies; the default PolicyFail
				// drops the message and surfaces the error.
				proc = streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
					if strings.Contains(string(in.Msg.Body()), "!boom") {
						return nil, fmt.Errorf("injected")
					}
					in.Msg.SetBody(append(in.Msg.Body(), []byte("|"+id)...))
					return []streamlet.Emission{{Msg: in.Msg}}, nil
				})
			case kinds[i] == 1:
				// Rewrap: identity change — a fresh message replaces the input.
				proc = streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
					m := mime.NewMessage(mime.MustParse("text/plain"), append(in.Msg.Body(), []byte("|"+id+"^")...))
					return []streamlet.Emission{{Msg: m}}, nil
				})
			case kinds[i] == 2:
				// Duplicator: fan-out of two ordered emissions.
				proc = streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
					in.Msg.SetBody(append(in.Msg.Body(), []byte("|"+id)...))
					cp := mime.NewMessage(mime.MustParse("text/plain"), append(append([]byte(nil), in.Msg.Body()...), []byte("+dup")...))
					return []streamlet.Emission{{Msg: in.Msg}, {Msg: cp}}, nil
				})
			default:
				proc = tagger(id)
			}
			if _, err := st.AddStreamlet(id, statelessDecl(mcl.FuseDefault), proc); err != nil {
				t.Fatal(err)
			}
			if prev != "" {
				if err := st.Connect(ref(prev, "po"), ref(id, "pi"), nil); err != nil {
					t.Fatal(err)
				}
			}
			prev = id
		}
		in, err := st.OpenInlet(ref("s0", "pi"), 0)
		if err != nil {
			t.Fatal(err)
		}
		out, err := st.OpenOutlet(ref(prev, "po"))
		if err != nil {
			t.Fatal(err)
		}
		if !fuse {
			if err := st.SetFusion(false); err != nil {
				t.Fatal(err)
			}
		}
		st.Start()
		defer st.End()
		if fused := len(st.FusedSegments()) > 0; fused != fuse {
			t.Fatalf("fused=%v, want %v (k=%d kinds=%v)", fused, fuse, k, kinds)
		}

		for i := 0; i < n; i++ {
			body := fmt.Sprintf("m%d", i)
			if i%5 == 3 {
				body += "!boom"
			}
			if err := in.Send(textMsg(body)); err != nil {
				t.Fatal(err)
			}
		}
		var res result
		// Drain until silence: drops make the delivered count input-dependent.
		for {
			got, err := out.Receive(500 * time.Millisecond)
			if err != nil {
				break
			}
			res.bodies = append(res.bodies, string(got.Body()))
			var stages []string
			for _, hop := range strings.Split(got.Header(obs.TraceHeader), ",") {
				stages = append(stages, strings.SplitN(hop, "~", 2)[0])
			}
			res.stages = append(res.stages, strings.Join(stages, ">"))
		}
		faultMu.Lock()
		res.faults = faults
		faultMu.Unlock()
		return res
	}

	for trial := 0; trial < 4; trial++ {
		k := 2 + rng.Intn(4) // 2..5 stages
		kinds := make([]int, k)
		for i := range kinds {
			kinds[i] = rng.Intn(3)
		}
		faultAt := rng.Intn(k)
		byValue := trial%2 == 1
		const n = 25

		fused := run(k, n, kinds, faultAt, byValue, true)
		plain := run(k, n, kinds, faultAt, byValue, false)

		name := fmt.Sprintf("trial %d (k=%d kinds=%v faultAt=%d byValue=%v)", trial, k, kinds, faultAt, byValue)
		if len(fused.bodies) != len(plain.bodies) {
			t.Fatalf("%s: delivered %d fused vs %d unfused", name, len(fused.bodies), len(plain.bodies))
		}
		for i := range fused.bodies {
			if fused.bodies[i] != plain.bodies[i] {
				t.Fatalf("%s: msg %d fused body %q != unfused %q", name, i, fused.bodies[i], plain.bodies[i])
			}
			if fused.stages[i] != plain.stages[i] {
				t.Fatalf("%s: msg %d fused trace hops %q != unfused %q", name, i, fused.stages[i], plain.stages[i])
			}
		}
		if fused.faults != plain.faults {
			t.Fatalf("%s: fused faults %d != unfused %d", name, fused.faults, plain.faults)
		}
	}
}

// TestFusionFaultAttribution pins the per-member attribution: a fault in a
// fused interior stage must be charged to that member, not the head.
func TestFusionFaultAttribution(t *testing.T) {
	st, in, out := buildFusedChain(t, 3, func(i int) streamlet.Processor {
		id := fmt.Sprintf("s%d", i)
		if i == 1 {
			return streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
				if strings.HasSuffix(string(in.Msg.Body()), "bad|s0") {
					return nil, fmt.Errorf("refused")
				}
				in.Msg.SetBody(append(in.Msg.Body(), []byte("|"+id)...))
				return []streamlet.Emission{{Msg: in.Msg}}, nil
			})
		}
		return tagger(id)
	})
	var mu sync.Mutex
	var errs []string
	st.ErrorHandler = func(err error) {
		mu.Lock()
		errs = append(errs, err.Error())
		mu.Unlock()
	}
	st.Start()
	defer st.End()
	if segs := st.FusedSegments(); len(segs) != 1 {
		t.Fatalf("fused segments = %v, want 1", segs)
	}

	_ = in.Send(textMsg("bad"))
	_ = in.Send(textMsg("ok"))
	if got, err := out.Receive(2 * time.Second); err != nil || string(got.Body()) != "ok|s0|s1|s2" {
		t.Fatalf("survivor: %v %q", err, got.Body())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 1 || !strings.Contains(errs[0], "s1") {
		t.Fatalf("errors = %v, want one attributed to s1", errs)
	}
	if f := st.Streamlet("s1").Processed(); f != 1 {
		t.Errorf("s1 processed = %d, want 1 (the fault must not count as processed)", f)
	}
}
