package stream

import (
	"strings"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/streamlet"
)

// testDirectory registers tagger processors for the libraries used in the
// MCL scripts below.
func testDirectory() *streamlet.Directory {
	dir := streamlet.NewDirectory()
	for _, lib := range []string{"x/a", "x/b", "x/c", "x/extra"} {
		lib := lib
		id := strings.TrimPrefix(lib, "x/")
		dir.Register(lib, func() streamlet.Processor { return tagger(id) })
	}
	return dir
}

const configScript = `
streamlet defA { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/a"; } }
streamlet defB { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/b"; } }
streamlet defC { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/c"; } }
channel bigChan { port { in cin : text; out cout : text; } attribute { type = ASYNC; category = BK; buffer = 64; } }
main stream app {
	streamlet s1 = new-streamlet (defA);
	streamlet s2 = new-streamlet (defB);
	streamlet s3 = new-streamlet (defC);
	channel c1 = new-channel (bigChan);
	connect (s1.po, s2.pi, c1);
	when (LOW_BANDWIDTH) {
		disconnect (s1.po, s2.pi);
		connect (s1.po, s3.pi, c1);
		connect (s3.po, s2.pi);
	}
}
`

func buildConfigApp(t *testing.T) (*Stream, *Inlet, *Outlet) {
	t.Helper()
	cfg, err := mcl.Compile(configScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromConfig(cfg, "app", nil, testDirectory())
	if err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("s1", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("s2", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	t.Cleanup(st.End)
	return st, in, out
}

func TestFromConfigInitialTopology(t *testing.T) {
	st, in, out := buildConfigApp(t)
	if st.Queue("c1") == nil {
		t.Error("declared channel not instantiated")
	}
	if st.Streamlet("s1") == nil || st.Streamlet("s3") == nil {
		t.Error("instances missing")
	}
	_ = in.Send(textMsg("m"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "m|a|b" {
		t.Errorf("body = %q", got.Body())
	}
}

func TestRunWhenRewiresThroughS3(t *testing.T) {
	st, in, out := buildConfigApp(t)
	if err := st.RunWhen("LOW_BANDWIDTH"); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(textMsg("m"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "m|a|c|b" {
		t.Errorf("body after reconfig = %q", got.Body())
	}
	if st.Reconfigurations() == 0 {
		t.Error("reconfiguration not counted")
	}
	if st.LastReconfigTiming().Total() <= 0 {
		t.Error("timing not recorded")
	}
}

func TestRunWhenUnknownEventNoop(t *testing.T) {
	st, _, _ := buildConfigApp(t)
	if err := st.RunWhen("NO_SUCH_EVENT"); err != nil {
		t.Errorf("unknown event errored: %v", err)
	}
	if st.Reconfigurations() != 0 {
		t.Error("noop counted as reconfiguration")
	}
}

func TestRunWhenViaOnEvent(t *testing.T) {
	st, in, out := buildConfigApp(t)
	evs := st.Whens()
	if len(evs) != 1 || evs[0] != "LOW_BANDWIDTH" {
		t.Errorf("Whens = %v", evs)
	}
	st.OnEvent(event.ContextEvent{EventID: "LOW_BANDWIDTH", Category: event.NetworkVariation})
	_ = in.Send(textMsg("m"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "m|a|c|b" {
		t.Errorf("body = %q", got.Body())
	}
}

func TestFromConfigCompositeRuns(t *testing.T) {
	src := `
streamlet defA { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/a"; } }
streamlet defB { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/b"; } }
stream inner {
	streamlet i1 = new-streamlet (defA);
	streamlet i2 = new-streamlet (defB);
	connect (i1.po, i2.pi);
}
streamlet inner { port { in pi : text; out po : text; } attribute { type = STATEFUL; library = "mcl:inner"; } }
main stream outer {
	streamlet o1 = new-streamlet (defA);
	streamlet o2 = new-streamlet (inner);
	connect (o1.po, o2.pi);
}
`
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromConfig(cfg, "outer", nil, testDirectory())
	if err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("o1", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The composite's exit is inner i2.po; open the outlet through the
	// composite port name.
	innerStream := st.Inner("o2")
	if innerStream == nil {
		t.Fatal("inner stream missing")
	}
	out, err := innerStream.OpenOutlet(ref("i2", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()
	_ = in.Send(textMsg("z"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "z|a|a|b" {
		t.Errorf("composite flow = %q", got.Body())
	}
}

func TestFromConfigErrors(t *testing.T) {
	cfg, err := mcl.Compile(configScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromConfig(cfg, "ghost", nil, testDirectory()); err == nil {
		t.Error("unknown stream accepted")
	}
	// Directory missing a library.
	empty := streamlet.NewDirectory()
	if _, err := FromConfig(cfg, "app", nil, empty); err == nil {
		t.Error("missing library accepted")
	}
}

func TestInletOutletErrors(t *testing.T) {
	st, _, _ := buildConfigApp(t)
	if _, err := st.OpenInlet(ref("ghost", "pi"), 0); err == nil {
		t.Error("inlet on unknown instance")
	}
	if _, err := st.OpenOutlet(ref("ghost", "po")); err == nil {
		t.Error("outlet on unknown instance")
	}
}

func TestOutletTryReceive(t *testing.T) {
	_, in, out := buildConfigApp(t)
	if m, err := out.TryReceive(); m != nil || err != nil {
		t.Errorf("empty TryReceive = %v, %v", m, err)
	}
	_ = in.Send(textMsg("m"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m, err := out.TryReceive()
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("TryReceive never produced")
}

func TestNewChannelDecl(t *testing.T) {
	st := New("s", nil, nil)
	defer st.End()
	d := &mcl.ChannelDecl{Name: "ch", Mode: mcl.Async, Category: mcl.CatBK, BufferKB: 1}
	q, err := st.NewChannel("c1", d)
	if err != nil || q == nil {
		t.Fatal(err)
	}
	if _, err := st.NewChannel("c1", d); err == nil {
		t.Error("duplicate channel accepted")
	}
	if st.Queue("c1") != q {
		t.Error("Queue lookup failed")
	}
}
