package stream

// Stream-side primitives for the adaptation autopilot (internal/adapt) and
// the server's MCL hot-reload path: retuning a running streamlet's parallel
// fan-out width, and swapping a stream's event reactions in place. Both
// leave the data plane undisturbed — retuning goes through the Figure 7-4
// drain protocol, and when-swaps only affect the next event delivery.

import (
	"fmt"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/obs"
)

// setWorkersLive retunes a running native streamlet's parallel fan-out
// width. Streamlet.SetWorkers only applies before Start, so the retune
// replaces the instance with an identically-bound clone declared with
// workers = n, under the same suspend → drain → rewire → reactivate
// protocol self-healing uses: producers pause, in-flight messages finish,
// the clone takes over the queues, and the instance keeps its id. Returns
// ErrDrainTimeout (wrapped) without touching the topology when the drain
// deadline passes. Body of the SetWorkersLive wrapper in fuse.go.
func (st *Stream) setWorkersLive(inst string, n int, drainTimeout time.Duration) error {
	if n < 1 {
		return fmt.Errorf("stream %s: workers %s = %d: workers must be >= 1", st.name, inst, n)
	}
	if drainTimeout <= 0 {
		drainTimeout = drainWait
	}
	st.mu.Lock()
	nt, err := st.node(inst)
	if err != nil {
		st.mu.Unlock()
		return err
	}
	decl := st.decls[inst]
	if decl == nil {
		st.mu.Unlock()
		return fmt.Errorf("stream %s: %s is not a native streamlet; cannot retune workers", st.name, inst)
	}
	var producers []node
	for _, c := range st.conns {
		if c.to.Inst == inst {
			if p, err := st.node(c.from.Inst); err == nil {
				producers = append(producers, p)
			}
		}
	}
	st.spareSeq++
	tmpID := fmt.Sprintf("%s~w%d", inst, st.spareSeq)
	st.mu.Unlock()

	if sl := st.Streamlet(inst); sl != nil && sl.Workers() == n {
		return nil
	}
	clone := *decl
	clone.Workers = n
	if err := st.NewStreamlet(tmpID, &clone); err != nil {
		return err
	}

	for _, p := range producers {
		p.pause()
	}
	if !waitUntil(time.Now().Add(drainTimeout), nt.quiesced) {
		for _, p := range producers {
			p.activate()
		}
		st.dropInstance(tmpID)
		mDrainTimeouts.Inc()
		obs.FlightRecord(obs.FlightDrain, st.name, "workers "+inst+" timeout", int64(drainTimeout))
		return fmt.Errorf("stream %s: workers %s: %w (after %v)", st.name, inst, ErrDrainTimeout, drainTimeout)
	}
	if err := st.replace(inst, tmpID); err != nil {
		for _, p := range producers {
			p.activate()
		}
		st.dropInstance(tmpID)
		return err
	}
	// Replace reactivated the producers and freed the original id; give it
	// back to the clone so routing rows, policies and supervision configs
	// keep naming the same logical instance.
	st.mu.Lock()
	st.renameLocked(tmpID, inst)
	st.mu.Unlock()
	return nil
}

// dropInstance removes a never-wired instance added as part of an aborted
// reconfiguration.
func (st *Stream) dropInstance(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if n, err := st.node(id); err == nil {
		n.end()
	}
	delete(st.nodes, id)
	delete(st.decls, id)
}

// renameLocked rekeys an instance and rewrites the routing rows that
// reference it. Caller holds st.mu.
func (st *Stream) renameLocked(old, new string) {
	if n, ok := st.nodes[old]; ok {
		st.nodes[new] = n
		delete(st.nodes, old)
	}
	if d, ok := st.decls[old]; ok {
		st.decls[new] = d
		delete(st.decls, old)
	}
	for i := range st.conns {
		if st.conns[i].from.Inst == old {
			st.conns[i].from.Inst = new
		}
		if st.conns[i].to.Inst == old {
			st.conns[i].to.Inst = new
		}
	}
}

// ReplaceWhens swaps the stream's event reactions wholesale — the MCL
// hot-reload path. Messages in flight are unaffected; the next delivered
// event runs the new actions. Mirrors FromConfig: later blocks for the
// same event win.
func (st *Stream) ReplaceWhens(whens []*mcl.WhenConfig) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.whens = make(map[string][]mcl.Stmt, len(whens))
	for _, w := range whens {
		st.whens[w.Event] = w.Actions
	}
}
