package stream

import (
	"strings"
	"testing"
	"time"

	"mobigate/internal/mcl"
)

func TestStatsSnapshot(t *testing.T) {
	st, in, out := buildLine(t)
	for i := 0; i < 5; i++ {
		_ = in.Send(textMsg("x"))
		if _, err := out.Receive(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.AddStreamlet("c", nil, tagger("c")); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("a", "b", "c", "pi", "po"); err != nil {
		t.Fatal(err)
	}

	snap := st.StatsSnapshot()
	if snap.Name != "line" || snap.SessionID == "" {
		t.Errorf("header = %+v", snap)
	}
	if snap.Reconfigurations != 1 || snap.LastReconfig.Total() <= 0 {
		t.Errorf("reconfig stats = %d %v", snap.Reconfigurations, snap.LastReconfig)
	}
	if len(snap.Instances) != 3 {
		t.Fatalf("instances = %d", len(snap.Instances))
	}
	byID := map[string]InstanceStats{}
	for _, i := range snap.Instances {
		byID[i.ID] = i
	}
	if byID["a"].Processed != 5 || byID["a"].State != "active" {
		t.Errorf("a = %+v", byID["a"])
	}
	if len(snap.Connections) != 2 {
		t.Errorf("connections = %d", len(snap.Connections))
	}
	var totalPosted uint64
	for _, c := range snap.Connections {
		totalPosted += c.Posted
	}
	if totalPosted == 0 {
		t.Error("no channel traffic recorded")
	}

	text := snap.String()
	for _, want := range []string{"stream line", "a", "processed=5", "->"} {
		if !strings.Contains(text, want) {
			t.Errorf("String() lacks %q:\n%s", want, text)
		}
	}
}

func TestStatsSnapshotComposite(t *testing.T) {
	cfg := mustCompileStream(t)
	st, err := FromConfig(cfg, "outer", nil, testDirectory())
	if err != nil {
		t.Fatal(err)
	}
	defer st.End()
	snap := st.StatsSnapshot()
	found := false
	for _, i := range snap.Instances {
		if i.ID == "v" {
			found = true
			if !i.Composite || i.State != "composite" {
				t.Errorf("composite stats = %+v", i)
			}
		}
	}
	if !found {
		t.Error("composite instance missing from snapshot")
	}
}

func mustCompileStream(t *testing.T) *mcl.Config {
	t.Helper()
	src := `
streamlet a { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/a"; } }
stream inner {
	streamlet s1 = new-streamlet (a);
	streamlet s2 = new-streamlet (a);
	connect (s1.po, s2.pi);
}
main stream outer {
	streamlet u = new-streamlet (a);
	streamlet v = new-streamlet (inner);
	connect (u.po, v.s1_pi);
}
`
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
