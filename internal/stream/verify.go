package stream

import (
	"fmt"

	"mobigate/internal/mcl"
	"mobigate/internal/semantics"
)

// Runtime semantic verification — the §8.2.2 recommendation of capturing
// mis-configuration and semantic assertions during runtime, not only at
// compile time. Verify snapshots the live topology (which reconfigurations
// may have evolved arbitrarily far from the compiled script) and re-runs
// the chapter-5 analyses against it.

// Verify analyzes the live topology under the given rules. Output ports
// bound to an outlet or a channel count as connected; declared output ports
// with no binding are open circuits unless allowed by the rules.
func (st *Stream) Verify(rules semantics.Rules) *semantics.Report {
	g, open := st.snapshot()
	return semantics.AnalyzeLive(st.name, g, open, rules)
}

// EnableLiveVerification re-runs Verify after every event-driven
// reconfiguration; violations are reported through the stream's
// ErrorHandler as *VerificationError values.
func (st *Stream) EnableLiveVerification(rules semantics.Rules) {
	st.mu.Lock()
	st.verifyRules = &rules
	st.mu.Unlock()
}

// VerificationError wraps a failed live verification.
type VerificationError struct {
	Report *semantics.Report
}

// Error implements error.
func (e *VerificationError) Error() string {
	return fmt.Sprintf("stream %s: live verification failed: %v", e.Report.Stream, e.Report.Violations)
}

// snapshot builds the live StreamGraph and the list of unbound declared
// output ports.
func (st *Stream) snapshot() (*semantics.Graph, []string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	g := semantics.NewGraph()
	var open []string
	for id, n := range st.nodes {
		def := id
		if d := st.decls[id]; d != nil {
			def = d.Name
		}
		g.AddNode(id, def)
		if d := st.decls[id]; d != nil {
			outs := n.outs()
			for _, p := range d.Ports {
				if p.Dir == mcl.PortOut && outs[p.Name] == nil {
					open = append(open, id+"."+p.Name)
				}
			}
		}
	}
	for _, c := range st.conns {
		g.AddEdge(c.from.Inst, c.to.Inst)
	}
	return g, open
}

// verifyAfterReconfig runs the registered live verification, if any.
func (st *Stream) verifyAfterReconfig() {
	st.mu.Lock()
	rules := st.verifyRules
	st.mu.Unlock()
	if rules == nil {
		return
	}
	if rep := st.Verify(*rules); !rep.OK() {
		st.fail(&VerificationError{Report: rep})
	}
}
