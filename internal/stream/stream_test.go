package stream

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/streamlet"
)

func ref(inst, port string) mcl.PortRef { return mcl.PortRef{Inst: inst, Port: port} }

func textMsg(body string) *mime.Message {
	return mime.NewMessage(mime.MustParse("text/plain"), []byte(body))
}

// tagger appends its id to the body, making the traversal path visible.
func tagger(id string) streamlet.Processor {
	return streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		in.Msg.SetBody(append(in.Msg.Body(), []byte("|"+id)...))
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})
}

var forward = streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
	return []streamlet.Emission{{Msg: in.Msg}}, nil
})

// buildLine constructs in -> a -> b -> out and returns the endpoints.
func buildLine(t *testing.T) (*Stream, *Inlet, *Outlet) {
	t.Helper()
	st := New("line", nil, nil)
	if _, err := st.AddStreamlet("a", nil, tagger("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("b", nil, tagger("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("a", "po"), ref("b", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("a", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("b", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	t.Cleanup(st.End)
	return st, in, out
}

func TestLinearFlow(t *testing.T) {
	st, in, out := buildLine(t)
	if err := in.Send(textMsg("x")); err != nil {
		t.Fatal(err)
	}
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "x|a|b" {
		t.Errorf("body = %q", got.Body())
	}
	if got.Session() != st.SessionID() {
		t.Errorf("session = %q, want %q", got.Session(), st.SessionID())
	}
	if st.Processed() != 2 {
		t.Errorf("processed = %d", st.Processed())
	}
}

func TestManyMessagesNoLeak(t *testing.T) {
	st, in, out := buildLine(t)
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			_ = in.Send(textMsg(fmt.Sprintf("m%d", i)))
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := out.Receive(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(time.Second)
	for st.Pool().Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st.Pool().Len() != 0 {
		t.Errorf("pool leaked %d entries", st.Pool().Len())
	}
}

func TestInsertReconfiguration(t *testing.T) {
	st, in, out := buildLine(t)
	// Verify pre-insert flow.
	_ = in.Send(textMsg("pre"))
	if got, err := out.Receive(2 * time.Second); err != nil || string(got.Body()) != "pre|a|b" {
		t.Fatalf("pre: %v %q", err, got.Body())
	}
	// Figure 7-4: insert c between a and b.
	if _, err := st.AddStreamlet("c", nil, tagger("c")); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("a", "b", "c", "pi", "po"); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(textMsg("post"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "post|a|c|b" {
		t.Errorf("post-insert body = %q", got.Body())
	}
	timing := st.LastReconfigTiming()
	if timing.Total() <= 0 {
		t.Error("reconfig timing not recorded")
	}
	if st.Reconfigurations() != 1 {
		t.Errorf("reconfigs = %d", st.Reconfigurations())
	}
}

func TestInsertNoMessageLoss(t *testing.T) {
	// Messages already queued between a and b must survive the insertion.
	st, in, out := buildLine(t)
	st.Streamlet("b").Pause()
	for i := 0; i < 10; i++ {
		_ = in.Send(textMsg(fmt.Sprintf("q%d", i)))
	}
	// Give the pipeline a moment to park messages in the a→b channel.
	time.Sleep(50 * time.Millisecond)
	if _, err := st.AddStreamlet("c", nil, tagger("c")); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("a", "b", "c", "pi", "po"); err != nil {
		t.Fatal(err)
	}
	st.Streamlet("b").Activate()
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		got, err := out.Receive(2 * time.Second)
		if err != nil {
			t.Fatalf("message %d lost: %v", i, err)
		}
		base := strings.SplitN(string(got.Body()), "|", 2)[0]
		seen[base] = true
	}
	if len(seen) != 10 {
		t.Errorf("got %d distinct messages", len(seen))
	}
}

func TestChainedInserts(t *testing.T) {
	// Repeatedly insert after 'a', as the ReconfigExp experiment does.
	st, in, out := buildLine(t)
	prev := "a"
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("r%d", i)
		if _, err := st.AddStreamlet(id, nil, tagger(id)); err != nil {
			t.Fatal(err)
		}
		var err error
		if i == 0 {
			err = st.Insert("a", "b", id, "pi", "po")
		} else {
			err = st.Insert(prev, "b", id, "pi", "po")
		}
		if err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	_ = in.Send(textMsg("z"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if want := "z|a|r0|r1|r2|r3|r4|b"; string(got.Body()) != want {
		t.Errorf("body = %q, want %q", got.Body(), want)
	}
}

func TestRemoveBridges(t *testing.T) {
	st, in, out := buildLine(t)
	if _, err := st.AddStreamlet("c", nil, tagger("c")); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("a", "b", "c", "pi", "po"); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("c", time.Second); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(textMsg("x"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "x|a|b" {
		t.Errorf("after remove: %q", got.Body())
	}
	if st.Streamlet("c") != nil {
		t.Error("removed instance still present")
	}
}

func TestReplaceSwapsProcessor(t *testing.T) {
	st, in, out := buildLine(t)
	if _, err := st.AddStreamlet("b2", nil, tagger("B2")); err != nil {
		t.Fatal(err)
	}
	st.Streamlet("b2").Start()
	if err := st.Replace("b", "b2"); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(textMsg("x"))
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body()) != "x|a|B2" {
		t.Errorf("after replace: %q", got.Body())
	}
}

func TestDisconnectUnknown(t *testing.T) {
	st, _, _ := buildLine(t)
	if err := st.Disconnect(ref("a", "nope"), ref("b", "pi")); err == nil {
		t.Error("unknown disconnect succeeded")
	}
	if err := st.Connect(ref("ghost", "po"), ref("b", "pi"), nil); err == nil {
		t.Error("connect to unknown instance succeeded")
	}
}

func TestDisconnectAll(t *testing.T) {
	st, _, _ := buildLine(t)
	if err := st.DisconnectAll("a"); err != nil {
		t.Fatal(err)
	}
	if err := st.Disconnect(ref("a", "po"), ref("b", "pi")); err == nil {
		t.Error("connection survived DisconnectAll")
	}
}

func TestDuplicateInstanceRejected(t *testing.T) {
	st := New("dup", nil, nil)
	if _, err := st.AddStreamlet("a", nil, forward); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("a", nil, forward); err == nil {
		t.Error("duplicate accepted")
	}
	defer st.End()
}

func TestPauseResumeEndViaEvents(t *testing.T) {
	st, in, out := buildLine(t)
	st.OnEvent(event.ContextEvent{EventID: event.PAUSE, Category: event.SystemCommand})
	_ = in.Send(textMsg("held"))
	time.Sleep(30 * time.Millisecond)
	if m, _ := out.TryReceive(); m != nil {
		t.Error("paused stream delivered")
	}
	st.OnEvent(event.ContextEvent{EventID: event.RESUME, Category: event.SystemCommand})
	if _, err := out.Receive(2 * time.Second); err != nil {
		t.Errorf("after resume: %v", err)
	}
	st.OnEvent(event.ContextEvent{EventID: event.END, Category: event.SystemCommand})
	if st.Streamlet("a").State() != streamlet.StateEnded {
		t.Error("END did not end members")
	}
}

func TestSessionIDsUnique(t *testing.T) {
	a := New("s", nil, nil)
	b := New("s", nil, nil)
	if a.SessionID() == b.SessionID() {
		t.Error("session ids collide")
	}
}

func TestDisconnectHonorsChannelCategories(t *testing.T) {
	// KK channels refuse disconnection; S channels refuse while non-empty.
	cfg, err := mcl.Compile(`
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x/a"; } }
channel permanent { port { in a : text; out b : text; } attribute { category = KK; } }
channel strict { port { in a : text; out b : text; } attribute { category = S; } }
main stream s {
	streamlet p = new-streamlet (f);
	streamlet q = new-streamlet (f);
	streamlet r = new-streamlet (f);
	channel kk = new-channel (permanent);
	channel ss = new-channel (strict);
	connect (p.po, q.pi, kk);
	connect (q.po, r.pi, ss);
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromConfig(cfg, "s", nil, testDirectory())
	if err != nil {
		t.Fatal(err)
	}
	defer st.End()

	if err := st.Disconnect(ref("p", "po"), ref("q", "pi")); err == nil {
		t.Error("KK channel disconnected")
	}
	// S: empty -> allowed.
	if err := st.Disconnect(ref("q", "po"), ref("r", "pi")); err != nil {
		t.Errorf("empty S channel refused: %v", err)
	}
	// Reconnect with pending units: refused.
	ss := st.Queue("ss")
	if err := st.Connect(ref("q", "po"), ref("r", "pi"), ss); err != nil {
		t.Fatal(err)
	}
	st.Streamlet("r").Pause() // hold consumption so the unit stays pending
	st.Pool().Put(textMsg("pending"))
	// Post directly to simulate a unit parked in the channel.
	if err := ss.Post("pending-id", 7, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Disconnect(ref("q", "po"), ref("r", "pi")); err == nil {
		t.Error("S channel with pending units disconnected")
	}
}
