package stream

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mobigate/internal/obs"
)

// InstanceStats is the runtime state of one composition member.
type InstanceStats struct {
	ID string
	// Def is the streamlet definition name ("" for ad-hoc instances).
	Def string
	// Composite marks nested streams reused as streamlets.
	Composite bool
	// State is the lifecycle state ("active", "paused", …); composites
	// report "composite".
	State string
	// Processed counts processMsg executions (recursive for composites).
	Processed uint64
	// Dropped counts emissions lost to full queues.
	Dropped uint64
	// TypeErrors counts §4.1 runtime type-check failures.
	TypeErrors uint64
	// QueuedIn sums messages waiting on the instance's input queues.
	QueuedIn int
	// Latency is the instance's process-latency distribution in seconds,
	// read from the shared metrics registry (the snapshot is re-expressed
	// on top of the observability plane rather than keeping private
	// timers). The series aggregates across sessions reusing the same
	// instance id.
	Latency obs.HistogramSnapshot
}

// ConnStats is one routing-table row with its channel occupancy.
type ConnStats struct {
	From    string
	To      string
	Channel string
	Queued  int
	Posted  uint64
	Fetched uint64
	Dropped uint64
}

// Stats is a point-in-time snapshot of a running stream, for operators and
// tooling.
type Stats struct {
	Name             string
	SessionID        string
	Reconfigurations uint64
	LastReconfig     ReconfigTiming
	Instances        []InstanceStats
	Connections      []ConnStats
}

// StatsSnapshot captures the stream's current state.
func (st *Stream) StatsSnapshot() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := Stats{
		Name:             st.name,
		SessionID:        st.sessionID,
		Reconfigurations: st.reconfigs.Load(),
		LastReconfig:     st.lastTiming,
	}
	ids := make([]string, 0, len(st.nodes))
	for id := range st.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := st.nodes[id]
		is := InstanceStats{ID: id, Processed: n.processed(), Dropped: n.dropped()}
		if d := st.decls[id]; d != nil {
			is.Def = d.Name
		}
		for _, q := range n.ins() {
			is.QueuedIn += q.Len()
		}
		switch nn := n.(type) {
		case nativeNode:
			is.State = nn.s.State().String()
			is.TypeErrors = nn.s.TypeErrors()
			is.Latency = nn.s.ProcessLatency()
		case compositeNode:
			is.Composite = true
			is.State = "composite"
		}
		out.Instances = append(out.Instances, is)
	}
	for _, c := range st.conns {
		posted, fetched, dropped := c.q.Stats()
		out.Connections = append(out.Connections, ConnStats{
			From:    c.from.String(),
			To:      c.to.String(),
			Channel: c.q.Name(),
			Queued:  c.q.Len(),
			Posted:  posted,
			Fetched: fetched,
			Dropped: dropped,
		})
	}
	return out
}

// String renders the snapshot as an operator-readable table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream %s (session %s): %d reconfigurations", s.Name, s.SessionID, s.Reconfigurations)
	if s.Reconfigurations > 0 {
		fmt.Fprintf(&b, ", last took %v", s.LastReconfig.Total().Round(time.Microsecond))
	}
	b.WriteByte('\n')
	for _, i := range s.Instances {
		def := i.Def
		if def == "" {
			def = "-"
		}
		fmt.Fprintf(&b, "  %-12s %-16s %-9s processed=%-6d dropped=%-3d typeErrs=%-3d queuedIn=%d",
			i.ID, "("+def+")", i.State, i.Processed, i.Dropped, i.TypeErrors, i.QueuedIn)
		if i.Latency.Count > 0 {
			fmt.Fprintf(&b, " p95=%v", time.Duration(i.Latency.P95*float64(time.Second)).Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	for _, c := range s.Connections {
		fmt.Fprintf(&b, "  %s -> %s via %s: queued=%d posted=%d fetched=%d dropped=%d\n",
			c.From, c.To, c.Channel, c.Queued, c.Posted, c.Fetched, c.Dropped)
	}
	return b.String()
}
