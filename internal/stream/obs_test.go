package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mobigate/internal/obs"
)

// TestTraceChainThroughPipeline verifies the coordination plane appends one
// trace hop per streamlet and files the chain in the shared trace store,
// without any cooperation from the Processor implementations (taggers know
// nothing about tracing).
func TestTraceChainThroughPipeline(t *testing.T) {
	st, in, out := buildLine(t)
	if err := in.Send(textMsg("traced")); err != nil {
		t.Fatal(err)
	}
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// The delivered message carries the chain of fully completed hops.
	hops := obs.ParseHops(got.Header(obs.TraceHeader))
	if len(hops) != 2 || hops[0].Streamlet != "a" || hops[1].Streamlet != "b" {
		t.Fatalf("wire trace hops = %+v, want [a b]", hops)
	}
	for i, h := range hops {
		if h.BytesIn <= 0 || h.BytesOut <= 0 {
			t.Errorf("hop %d has no byte accounting: %+v", i, h)
		}
		if h.QueueWait <= 0 {
			t.Errorf("hop %d has no queue wait: %+v", i, h)
		}
	}

	// The store has the same chain under the stream's session.
	recs := obs.Traces().Session(st.SessionID())
	found := false
	for _, r := range recs {
		if r.MsgID == got.ID {
			found = true
			if len(r.Hops) != 2 {
				t.Errorf("stored hops = %+v, want 2", r.Hops)
			}
		}
	}
	if !found {
		t.Errorf("no stored trace for message %s in session %s", got.ID, st.SessionID())
	}
}

// TestTracingDisabledAddsNoHeader checks the toggle removes the trace cost
// path entirely.
func TestTracingDisabledAddsNoHeader(t *testing.T) {
	obs.SetTracingEnabled(false)
	defer obs.SetTracingEnabled(true)
	_, in, out := buildLine(t)
	if err := in.Send(textMsg("dark")); err != nil {
		t.Fatal(err)
	}
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h := got.Header(obs.TraceHeader); h != "" {
		t.Errorf("trace header present with tracing disabled: %q", h)
	}
}

// TestStatsSnapshotRacesTraffic hammers a running stream with concurrent
// traffic, snapshot reads, registry expositions and a mid-flight
// reconfiguration; run under -race this is the observability plane's
// thread-safety proof.
func TestStatsSnapshotRacesTraffic(t *testing.T) {
	st, in, out := buildLine(t)

	const msgs = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := in.Send(textMsg(fmt.Sprintf("m%d", i))); err != nil {
				return
			}
		}
	}()

	// Drain deliveries so the pipeline keeps moving.
	received := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for n < msgs {
			if _, err := out.Receive(5 * time.Second); err != nil {
				break
			}
			n++
		}
		received <- n
	}()

	// Concurrent snapshot + exposition readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.StatsSnapshot()
				_ = snap.String()
				var b discardWriter
				_ = obs.Default().WritePrometheus(&b)
				_ = obs.Traces().Session(st.SessionID())
			}
		}()
	}

	// Mid-flight reconfiguration while traffic and readers are running.
	if _, err := st.AddStreamlet("c", nil, forward); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("a", "b", "c", "pi", "po"); err != nil {
		t.Fatal(err)
	}

	n := <-received
	close(stop)
	wg.Wait()
	if n != msgs {
		t.Fatalf("received %d/%d messages", n, msgs)
	}

	snap := st.StatsSnapshot()
	if snap.Reconfigurations != 1 {
		t.Errorf("reconfigurations = %d, want 1", snap.Reconfigurations)
	}
	for _, inst := range snap.Instances {
		if inst.ID == "a" && inst.Latency.Count == 0 {
			t.Error("instance a has no latency samples in the snapshot")
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
