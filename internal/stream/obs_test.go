package stream

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/obs"
	"mobigate/internal/streamlet"
)

// TestTraceChainThroughPipeline verifies the coordination plane appends one
// trace hop per streamlet and files the chain in the shared trace store,
// without any cooperation from the Processor implementations (taggers know
// nothing about tracing).
func TestTraceChainThroughPipeline(t *testing.T) {
	st, in, out := buildLine(t)
	if err := in.Send(textMsg("traced")); err != nil {
		t.Fatal(err)
	}
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// The delivered message carries the chain of fully completed hops.
	hops := obs.ParseHops(got.Header(obs.TraceHeader))
	if len(hops) != 2 || hops[0].Streamlet != "a" || hops[1].Streamlet != "b" {
		t.Fatalf("wire trace hops = %+v, want [a b]", hops)
	}
	for i, h := range hops {
		if h.BytesIn <= 0 || h.BytesOut <= 0 {
			t.Errorf("hop %d has no byte accounting: %+v", i, h)
		}
		if h.QueueWait <= 0 {
			t.Errorf("hop %d has no queue wait: %+v", i, h)
		}
	}

	// The store has the same chain under the stream's session.
	recs := obs.Traces().Session(st.SessionID())
	found := false
	for _, r := range recs {
		if r.MsgID == got.ID {
			found = true
			if len(r.Hops) != 2 {
				t.Errorf("stored hops = %+v, want 2", r.Hops)
			}
		}
	}
	if !found {
		t.Errorf("no stored trace for message %s in session %s", got.ID, st.SessionID())
	}
}

// TestTracingDisabledAddsNoHeader checks the toggle removes the trace cost
// path entirely.
func TestTracingDisabledAddsNoHeader(t *testing.T) {
	obs.SetTracingEnabled(false)
	defer obs.SetTracingEnabled(true)
	_, in, out := buildLine(t)
	if err := in.Send(textMsg("dark")); err != nil {
		t.Fatal(err)
	}
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h := got.Header(obs.TraceHeader); h != "" {
		t.Errorf("trace header present with tracing disabled: %q", h)
	}
}

// TestStatsSnapshotRacesTraffic hammers a running stream with concurrent
// traffic, snapshot reads, registry expositions and a mid-flight
// reconfiguration; run under -race this is the observability plane's
// thread-safety proof.
func TestStatsSnapshotRacesTraffic(t *testing.T) {
	st, in, out := buildLine(t)

	const msgs = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			if err := in.Send(textMsg(fmt.Sprintf("m%d", i))); err != nil {
				return
			}
		}
	}()

	// Drain deliveries so the pipeline keeps moving.
	received := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for n < msgs {
			if _, err := out.Receive(5 * time.Second); err != nil {
				break
			}
			n++
		}
		received <- n
	}()

	// Concurrent snapshot + exposition readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.StatsSnapshot()
				_ = snap.String()
				var b discardWriter
				_ = obs.Default().WritePrometheus(&b)
				_ = obs.Traces().Session(st.SessionID())
			}
		}()
	}

	// Mid-flight reconfiguration while traffic and readers are running.
	if _, err := st.AddStreamlet("c", nil, forward); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("a", "b", "c", "pi", "po"); err != nil {
		t.Fatal(err)
	}

	n := <-received
	close(stop)
	wg.Wait()
	if n != msgs {
		t.Fatalf("received %d/%d messages", n, msgs)
	}

	snap := st.StatsSnapshot()
	if snap.Reconfigurations != 1 {
		t.Errorf("reconfigurations = %d, want 1", snap.Reconfigurations)
	}
	for _, inst := range snap.Instances {
		if inst.ID == "a" && inst.Latency.Count == 0 {
			t.Error("instance a has no latency samples in the snapshot")
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestSpanChainThroughPipeline: with span tracing on, one message through
// the a→b line grows a connected span tree — inlet root, then a queue,
// process and forward span per streamlet — and the delivered message's
// header carries the live context.
func TestSpanChainThroughPipeline(t *testing.T) {
	obs.SetSpansEnabled(true)
	defer obs.SetSpansEnabled(false)
	_, in, out := buildLine(t)
	if err := in.Send(textMsg("spanned")); err != nil {
		t.Fatal(err)
	}
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sctx := obs.ParseSpanContext(got.Header(mime.HeaderSpanContext))
	if !sctx.Valid() {
		t.Fatalf("delivered message carries no span context: %q", got.Header(mime.HeaderSpanContext))
	}

	// The spans land asynchronously with delivery (the forward span is
	// recorded after the post); poll briefly for the full chain.
	deadline := time.Now().Add(2 * time.Second)
	var spans []obs.Span
	for {
		spans = obs.Spans().Trace(sctx.TraceID)
		// inlet + 2 × (queue, process, forward)
		if len(spans) >= 7 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(spans) != 7 {
		t.Fatalf("trace has %d spans, want 7: %+v", len(spans), spans)
	}
	if !obs.SpanTreeConnected(spans) {
		t.Fatalf("span tree not connected:\n%s", obs.FormatSpanTree(obs.BuildSpanTree(spans)))
	}
	kinds := map[obs.SpanKind]int{}
	for _, sp := range spans {
		kinds[sp.Kind]++
	}
	if kinds[obs.SpanInlet] != 1 || kinds[obs.SpanQueue] != 2 || kinds[obs.SpanProcess] != 2 || kinds[obs.SpanForward] != 2 {
		t.Errorf("span kinds = %v", kinds)
	}
}

// TestSpansDisabledNoHeader: the default (spans off) leaves messages
// unstamped, so the whole span path short-circuits.
func TestSpansDisabledNoHeader(t *testing.T) {
	_, in, out := buildLine(t)
	if err := in.Send(textMsg("unspanned")); err != nil {
		t.Fatal(err)
	}
	got, err := out.Receive(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if h := got.Header(mime.HeaderSpanContext); h != "" {
		t.Errorf("span header present with spans disabled: %q", h)
	}
}

// TestFlightAutoDumpOnPanic: a streamlet panic must leave an automatic
// flight dump behind (LastDump), whether or not an event manager is
// attached — the journal around the incident is the debugging record.
func TestFlightAutoDumpOnPanic(t *testing.T) {
	before := obs.Flight().Dumps()

	var calls atomic.Uint64
	flaky := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		if calls.Add(1) == 1 {
			panic("injected")
		}
		return []streamlet.Emission{{Msg: in.Msg}}, nil
	})
	pool := msgpool.New(msgpool.ByReference)
	st := New("flight-dump", pool, nil)
	if _, err := st.AddStreamlet("flaky", nil, flaky); err != nil {
		t.Fatal(err)
	}
	if err := st.Supervise("flaky", SupervisionConfig{
		Supervision: streamlet.Supervision{
			Policy:       streamlet.PolicyRetry,
			RetryBackoff: 100 * time.Microsecond,
		},
	}); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("flaky", "pi"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("flaky", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()

	if err := in.Send(textMsg("boom")); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Receive(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for obs.Flight().Dumps() == before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if obs.Flight().Dumps() == before {
		t.Fatal("no automatic flight dump after an injected panic")
	}
	dump, ok := obs.Flight().LastDump()
	if !ok || !strings.Contains(dump.Reason, event.STREAMLET_PANIC) {
		t.Fatalf("LastDump = %+v (ok=%v), want reason naming %s", dump.Reason, ok, event.STREAMLET_PANIC)
	}
	if len(dump.Events) == 0 {
		t.Error("automatic dump journaled no events")
	}
}

// TestLatencyBudgetViolationEvent: a configured latency budget turns an
// over-budget end-to-end latency into an SLO_VIOLATION context event on the
// stream's event sink.
func TestLatencyBudgetViolationEvent(t *testing.T) {
	obs.SetSpansEnabled(true)
	defer obs.SetSpansEnabled(false)

	sink := streamlet.ProcessorFunc(func(in streamlet.Input) ([]streamlet.Emission, error) {
		return nil, nil // terminal: consumes the message
	})
	pool := msgpool.New(msgpool.ByReference)
	st := New("slo-stream", pool, nil)
	mgr := event.NewManager(nil)
	defer mgr.Close()
	st.SetEventSink(mgr)
	sub := &countingSub{name: "slo-stream", counts: make(map[string]int)}
	mgr.Subscribe(event.ExecutionFault, sub)

	if _, err := st.AddStreamlet("sink", nil, sink); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("sink", "pi"), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	defer st.End()
	st.SetLatencyBudget(time.Nanosecond) // everything violates

	if err := in.Send(textMsg("slow")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sub.count(event.SLO_VIOLATION) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sub.count(event.SLO_VIOLATION); got == 0 {
		t.Fatal("no SLO_VIOLATION event after an over-budget message")
	}
	snap, ok := obs.SLO().Snapshot(st.SessionID())
	if !ok || snap.Violations == 0 {
		t.Errorf("SLO snapshot = %+v (ok=%v), want a recorded violation", snap, ok)
	}
}
