package stream

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mobigate/internal/cache"
	"mobigate/internal/mcl"
	"mobigate/internal/services"
)

// parallelScript declares a compressor with fan-out through the full MCL →
// directory → stream path.
const parallelScript = `
streamlet comp {
	port { in pi : text/plain; out po : text/plain; }
	attribute { type = STATELESS; library = "text/compress"; workers = 4; }
}
main stream par {
	streamlet c = new-streamlet (comp);
}
`

// TestWorkersFromDeclaration wires workers = 4 end to end: the declaration
// must reach the streamlet instance and messages must flow in order.
func TestWorkersFromDeclaration(t *testing.T) {
	cfg, err := mcl.Compile(parallelScript, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromConfig(cfg, "par", nil, servicesDir())
	if err != nil {
		t.Fatal(err)
	}
	if w := st.Streamlet("c").Workers(); w != 4 {
		t.Fatalf("instance workers = %d, want 4", w)
	}
	in, err := st.OpenInlet(ref("c", "pi"), 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("c", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	t.Cleanup(st.End)

	const n = 40
	go func() {
		for i := 0; i < n; i++ {
			m := services.GenTextMessage(2<<10, int64(i))
			m.SetHeader("X-Seq", fmt.Sprintf("%04d", i))
			_ = in.Send(m)
		}
	}()
	for i := 0; i < n; i++ {
		got, err := out.Receive(5 * time.Second)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if want := fmt.Sprintf("%04d", i); got.Header("X-Seq") != want {
			t.Fatalf("message %d seq = %q, want %q (reordered)", i, got.Header("X-Seq"), want)
		}
	}
}

// TestNewStreamletRefusesUnparallelizable pins the static gate: workers > 1
// over a library that never advertised Parallelizable must be refused.
func TestNewStreamletRefusesUnparallelizable(t *testing.T) {
	src := `
streamlet m {
	port { in pi1 : text; in pi2 : text; out po : multipart/mixed; }
	attribute { type = STATELESS; library = "general/merge"; workers = 2; }
}
main stream s {
	streamlet i = new-streamlet (m);
}
`
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = FromConfig(cfg, "s", nil, servicesDir())
	if err == nil {
		t.Fatal("workers = 2 over general/merge accepted")
	}
	if !strings.Contains(err.Error(), "not registered as parallelizable") {
		t.Errorf("error = %v", err)
	}
}

// TestTranscodeCacheEndToEnd runs the cache through a live stream: the same
// image sent twice must transcode once, and both deliveries must carry the
// transcoded body.
func TestTranscodeCacheEndToEnd(t *testing.T) {
	c := cache.New(0)
	st := New("cachetest", nil, nil)
	st.EnableTranscodeCache(c)
	if _, err := st.AddStreamlet("t", nil, &services.Transcoder{}); err != nil {
		t.Fatal(err)
	}
	memo, ok := st.Streamlet("t").Processor().(*cache.Memo)
	if !ok {
		t.Fatal("transcoder not wrapped by the stream's cache")
	}
	in, err := st.OpenInlet(ref("t", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("t", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	t.Cleanup(st.End)

	img := services.GenImageMessage(32, 32, 5)
	var bodies [2][]byte
	for i := 0; i < 2; i++ {
		if err := in.Send(img.Clone()); err != nil {
			t.Fatal(err)
		}
		got, err := out.Receive(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if ct := got.ContentType().String(); ct == "image/gif" {
			t.Errorf("delivery %d still carries the input content type %s", i, ct)
		}
		bodies[i] = append([]byte(nil), got.Body()...)
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Error("cached delivery differs from transcoded delivery")
	}
	if calls := memo.InnerCalls(); calls != 1 {
		t.Errorf("transform ran %d times for 2 identical sends, want 1", calls)
	}
	if stats := c.Stats(); stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", stats)
	}
}

// TestInsertAcrossParallelHop reconfigures around a workers > 1 streamlet:
// the Figure 7-4 suspend/drain/heal protocol must hold with N in-flight.
func TestInsertAcrossParallelHop(t *testing.T) {
	st := New("parline", nil, nil)
	if _, err := st.AddStreamlet("a", nil, tagger("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddStreamlet("b", nil, tagger("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.Streamlet("a").SetWorkers(4); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("a", "po"), ref("b", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("a", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("b", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	t.Cleanup(st.End)

	const before = 20
	go func() {
		for i := 0; i < before; i++ {
			_ = in.Send(textMsg(fmt.Sprintf("m%02d", i)))
		}
	}()
	// Insert c between the parallel hop and b while traffic flows.
	if _, err := st.AddStreamlet("c", nil, tagger("c")); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("a", "b", "c", "pi", "po"); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(textMsg("post"))

	seen := map[string]bool{}
	lastPre := -1
	for i := 0; i < before+1; i++ {
		got, err := out.Receive(5 * time.Second)
		if err != nil {
			t.Fatalf("message %d lost across reconfiguration: %v", i, err)
		}
		body := string(got.Body())
		base := strings.SplitN(body, "|", 2)[0]
		if seen[base] {
			t.Fatalf("duplicate delivery %q", base)
		}
		seen[base] = true
		if base == "post" {
			if want := "post|a|c|b"; body != want {
				t.Errorf("post-insert path = %q, want %q", body, want)
			}
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(base, "m%d", &seq); err != nil {
			t.Fatalf("unexpected body %q", body)
		}
		if seq <= lastPre {
			t.Fatalf("pre-insert message %d after %d (reordered)", seq, lastPre)
		}
		lastPre = seq
	}
	if len(seen) != before+1 {
		t.Errorf("distinct deliveries = %d, want %d", len(seen), before+1)
	}
}

// TestRemoveParallelStreamlet drains and removes a workers > 1 instance.
func TestRemoveParallelStreamlet(t *testing.T) {
	st := New("parrm", nil, nil)
	for _, id := range []string{"a", "b", "c"} {
		if _, err := st.AddStreamlet(id, nil, tagger(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Streamlet("b").SetWorkers(4); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("a", "po"), ref("b", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(ref("b", "po"), ref("c", "pi"), nil); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(ref("a", "pi"), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.OpenOutlet(ref("c", "po"))
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	t.Cleanup(st.End)

	const n = 12
	go func() {
		for i := 0; i < n; i++ {
			_ = in.Send(textMsg(fmt.Sprintf("m%02d", i)))
		}
	}()
	if err := st.Remove("b", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	_ = in.Send(textMsg("after"))
	got := 0
	for i := 0; i < n+1; i++ {
		m, err := out.Receive(5 * time.Second)
		if err != nil {
			t.Fatalf("delivery %d: %v (got %d)", i, err, got)
		}
		got++
		body := string(m.Body())
		if strings.HasPrefix(body, "after") {
			if want := "after|a|c"; body != want {
				t.Errorf("post-remove path = %q, want %q", body, want)
			}
		}
	}
}
