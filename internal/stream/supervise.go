package stream

// Stream-level fault supervision: the escalation half of the fault
// subsystem. The streamlet supervisor (internal/streamlet/supervisor.go)
// contains panics, deadlines and per-message policies; this file wires its
// terminal FaultRecords into the event system (ExecutionFault context
// events) and, when configured, heals the composition through the same
// Figure 7-4 reconfiguration protocol the paper uses for bandwidth changes:
// replace the faulting instance with a spare, or remove it from a linear
// position. Suspend → drain → modify → reactivate, so no queued message is
// lost (§6.6).

import (
	"fmt"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/obs"
	"mobigate/internal/streamlet"
)

// mFaultHeals counts completed self-healing reconfigurations.
var mFaultHeals = obs.DefaultCounter(obs.MFaultHealsTotal)

// HealAction selects how the stream reconfigures itself once an instance's
// terminal faults reach the threshold.
type HealAction int

const (
	// HealNone raises events but leaves the topology alone.
	HealNone HealAction = iota
	// HealReplace swaps the faulting instance for a spare built by the
	// Spare factory (the Figure 7-4 replace protocol).
	HealReplace
	// HealRemove takes the faulting instance out of its linear position,
	// bridging its upstream channel to its consumer (the remove protocol).
	HealRemove
)

var healNames = [...]string{"none", "replace", "remove"}

func (h HealAction) String() string {
	if int(h) < len(healNames) {
		return healNames[h]
	}
	return fmt.Sprintf("HealAction(%d)", int(h))
}

// SupervisionConfig is the per-instance fault policy at stream level: the
// streamlet-layer Supervision plus the reconfiguration escalation.
type SupervisionConfig struct {
	streamlet.Supervision

	// Heal selects the reconfiguration run after FaultThreshold terminal
	// faults.
	Heal HealAction
	// Spare builds the replacement processor (required for HealReplace).
	// The spare inherits the faulting instance's declaration, bindings,
	// and this supervision config.
	Spare func() streamlet.Processor
	// FaultThreshold is how many terminal faults trigger healing
	// (default 1).
	FaultThreshold int
	// HealDrainTimeout bounds the heal reconfiguration's drain waits
	// (default 1s).
	HealDrainTimeout time.Duration
}

func (c SupervisionConfig) withDefaults() SupervisionConfig {
	if c.FaultThreshold <= 0 {
		c.FaultThreshold = 1
	}
	if c.HealDrainTimeout <= 0 {
		c.HealDrainTimeout = drainWait
	}
	return c
}

// SetEventSink attaches an event manager the stream posts ExecutionFault
// context events to (source-directed at this stream, so a gateway running
// many sessions does not cross-trigger). Events flow through the same
// subscribe/multicast loop as network variations, closing the paper's
// event → reconfigure circle for faults.
func (st *Stream) SetEventSink(mgr *event.Manager) {
	st.mu.Lock()
	st.events = mgr
	st.mu.Unlock()
}

// postFault raises one ExecutionFault context event (non-blocking; the
// event manager sheds on overload). Every genuine fault also freezes the
// flight recorder into an auto-dump before anything reacts, so the journal
// around the fault survives even if recovery churns the rings afterwards —
// and even when no event manager is attached.
func (st *Stream) postFault(id string) {
	if id != event.STREAMLET_HEALED {
		obs.FlightAutoDump("ExecutionFault:" + id + " stream=" + st.name)
	}
	st.mu.Lock()
	mgr := st.events
	st.mu.Unlock()
	if mgr == nil {
		return
	}
	mgr.Post(event.ContextEvent{EventID: id, Category: event.ExecutionFault, Source: st.name})
}

func faultEventID(k streamlet.FaultKind) string {
	switch k {
	case streamlet.FaultPanic:
		return event.STREAMLET_PANIC
	case streamlet.FaultStall:
		return event.STREAMLET_STALL
	default:
		return event.STREAMLET_ERROR
	}
}

// Supervise installs a fault policy on a native streamlet instance:
// streamlet-level containment plus stream-level event raising and healing.
func (st *Stream) Supervise(inst string, cfg SupervisionConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Heal == HealReplace && cfg.Spare == nil {
		return fmt.Errorf("stream %s: supervise %s: HealReplace requires a Spare factory", st.name, inst)
	}
	sl := st.Streamlet(inst)
	if sl == nil {
		return fmt.Errorf("stream %s: no native streamlet %q to supervise", st.name, inst)
	}
	sl.Supervise(cfg.Supervision)
	sl.OnFault(func(rec streamlet.FaultRecord) { st.handleFault(inst, cfg, rec) })
	return nil
}

// handleFault runs on the faulting worker goroutine: it raises the event
// and, at the threshold, spawns the heal (never synchronously — the worker
// must keep draining so the heal's own quiesce wait can succeed).
func (st *Stream) handleFault(inst string, cfg SupervisionConfig, rec streamlet.FaultRecord) {
	obs.FlightRecord(obs.FlightFault, inst, rec.Kind.String()+" "+rec.MsgID, 0)
	st.postFault(faultEventID(rec.Kind))
	if cfg.Heal == HealNone || rec.Recovered {
		// Recovered records surface as events but do not escalate: the
		// message came through, so the topology needs no repair.
		return
	}
	st.mu.Lock()
	if st.ended || st.healing[inst] {
		st.mu.Unlock()
		return
	}
	if st.faultCounts == nil {
		st.faultCounts = make(map[string]int)
	}
	st.faultCounts[inst]++
	if st.faultCounts[inst] < cfg.FaultThreshold {
		st.mu.Unlock()
		return
	}
	if st.healing == nil {
		st.healing = make(map[string]bool)
	}
	st.healing[inst] = true
	st.faultCounts[inst] = 0
	st.mu.Unlock()
	go st.heal(inst, cfg)
}

// heal performs the self-healing reconfiguration for one instance.
func (st *Stream) heal(inst string, cfg SupervisionConfig) {
	defer func() {
		st.mu.Lock()
		delete(st.healing, inst)
		st.mu.Unlock()
	}()
	// The heal bracket mirrors the reconfiguration wrappers in fuse.go: a
	// fused segment around the faulting instance dissolves before the drain
	// (a fused member's own quiesce signal is only meaningful at its segment
	// head), and the pass re-runs once the topology is repaired.
	st.fuseMu.Lock()
	err := st.defuseTouching("heal", inst)
	if err == nil {
		switch cfg.Heal {
		case HealReplace:
			err = st.healReplace(inst, cfg)
		case HealRemove:
			err = st.remove(inst, cfg.HealDrainTimeout)
		}
	}
	st.fusePass()
	st.fuseMu.Unlock()
	if err != nil {
		st.fail(fmt.Errorf("stream %s: heal %s (%s): %w", st.name, inst, cfg.Heal, err))
		return
	}
	mFaultHeals.Inc()
	obs.FlightRecord(obs.FlightHeal, inst, cfg.Heal.String(), 0)
	st.postFault(event.STREAMLET_HEALED)
}

// healReplace drains and swaps the faulting instance for a spare under the
// Figure 7-4 protocol. The spare takes over the old instance's queues (so
// parked messages survive) and inherits its supervision config — a flaky
// replacement heals again.
func (st *Stream) healReplace(inst string, cfg SupervisionConfig) error {
	st.mu.Lock()
	if _, err := st.node(inst); err != nil {
		st.mu.Unlock()
		return err
	}
	// Suspend every producer feeding the instance, then let its in-flight
	// messages finish before the swap: Replace transfers the queues intact,
	// so only the pump→worker handoff could lose a message — draining it
	// first keeps the §6.6 no-loss property.
	var producers []node
	for _, c := range st.conns {
		if c.to.Inst == inst {
			if p, err := st.node(c.from.Inst); err == nil {
				producers = append(producers, p)
			}
		}
	}
	nt, err := st.node(inst)
	if err != nil {
		st.mu.Unlock()
		return err
	}
	decl := st.decls[inst]
	st.spareSeq++
	spareID := fmt.Sprintf("%s~%d", inst, st.spareSeq)
	st.mu.Unlock()

	for _, p := range producers {
		p.pause()
	}
	if !waitUntil(time.Now().Add(cfg.HealDrainTimeout), nt.quiesced) {
		for _, p := range producers {
			p.activate()
		}
		mDrainTimeouts.Inc()
		obs.FlightRecord(obs.FlightDrain, st.name, "heal-replace "+inst+" timeout", int64(cfg.HealDrainTimeout))
		return fmt.Errorf("drain %s: %w", inst, ErrDrainTimeout)
	}

	if _, err := st.AddStreamlet(spareID, decl, cfg.Spare()); err != nil {
		for _, p := range producers {
			p.activate()
		}
		return err
	}
	if err := st.replace(inst, spareID); err != nil {
		for _, p := range producers {
			p.activate()
		}
		return err
	}
	// Replace reactivated the producers; arm the spare with the same policy.
	return st.Supervise(spareID, cfg)
}
