package obs

// Per-stream latency-budget (SLO) tracking. A chain — keyed by the stream
// session id — gets a configured end-to-end budget; the coordination plane
// observes each message's inlet-to-terminal-hop latency (computed from the
// span context's root start stamp, so observation costs one subtraction)
// and the tracker maintains windowed p50/p95/p99 against the budget.
// Violations are edge-triggered: the first over-budget observation after a
// compliant one fires the chain's callback, which the stream layer wires to
// an SLO_VIOLATION context event the adaptation plane can react to — obs
// sits below the event package, so the dependency points upward via the
// callback, never downward.

import (
	"sort"
	"sync"
	"time"
)

// SLOViolation describes one budget violation.
type SLOViolation struct {
	// Chain is the tracked chain (stream session id).
	Chain string
	// LatencyNs is the observation that crossed the budget.
	LatencyNs int64
	// BudgetNs is the configured budget.
	BudgetNs int64
}

// SLOSnapshot is a point-in-time view of one tracked chain.
type SLOSnapshot struct {
	Chain       string `json:"chain"`
	BudgetNs    int64  `json:"budgetNs"`
	Count       uint64 `json:"count"`
	P50Ns       int64  `json:"p50Ns"`
	P95Ns       int64  `json:"p95Ns"`
	P99Ns       int64  `json:"p99Ns"`
	Violations  uint64 `json:"violations"`
	InViolation bool   `json:"inViolation"`
	// Stale marks a chain idle past the registry age-out: its windowed
	// quantiles are reported as 0, not as the last burst's values.
	Stale bool `json:"stale,omitempty"`
}

// sloWindow bounds the per-chain quantile window (matches the registry
// histogram window).
const sloWindow = 1024

type sloChain struct {
	mu          sync.Mutex
	budgetNs    int64
	onViolation func(SLOViolation)
	ring        [sloWindow]int64
	n           int
	next        int
	count       uint64
	violations  uint64
	inViolation bool
	last        int64 // MonoNow stamp of the most recent observation
}

// SLOTracker tracks latency budgets per chain. Only chains with a
// configured budget are tracked — Observe on an unknown chain is one read
// lock and a map miss — so cardinality is bounded by explicit
// configuration, never by traffic.
type SLOTracker struct {
	mu     sync.RWMutex
	chains map[string]*sloChain

	violationsTotal *Counter // nil-safe; default tracker wires the catalog
}

// NewSLOTracker creates an empty tracker.
func NewSLOTracker() *SLOTracker {
	return &SLOTracker{chains: make(map[string]*sloChain)}
}

var defaultSLO = func() *SLOTracker {
	t := NewSLOTracker()
	t.violationsTotal = DefaultCounter(MSLOViolationsTotal)
	return t
}()

// SLO returns the shared gateway-wide tracker.
func SLO() *SLOTracker { return defaultSLO }

// SetBudget configures (or reconfigures) a chain's latency budget and its
// violation callback (nil for none). A non-positive budget removes the
// chain.
func (t *SLOTracker) SetBudget(chain string, budget time.Duration, onViolation func(SLOViolation)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if budget <= 0 {
		delete(t.chains, chain)
		return
	}
	c := t.chains[chain]
	if c == nil {
		c = &sloChain{}
		t.chains[chain] = c
	}
	c.mu.Lock()
	c.budgetNs = int64(budget)
	c.onViolation = onViolation
	c.mu.Unlock()
}

// Remove stops tracking a chain.
func (t *SLOTracker) Remove(chain string) {
	t.mu.Lock()
	delete(t.chains, chain)
	t.mu.Unlock()
}

// Observe records one end-to-end latency for a chain. Untracked chains
// cost a read-locked map miss. Violations are edge-triggered (see package
// comment); the callback runs on the observing goroutine, so it must not
// block.
func (t *SLOTracker) Observe(chain string, latencyNs int64) {
	t.mu.RLock()
	c := t.chains[chain]
	t.mu.RUnlock()
	if c == nil {
		return
	}
	var fire func(SLOViolation)
	var v SLOViolation
	c.mu.Lock()
	c.ring[c.next] = latencyNs
	c.next = (c.next + 1) % sloWindow
	if c.n < sloWindow {
		c.n++
	}
	c.count++
	c.last = MonoNow()
	over := latencyNs > c.budgetNs
	if over && !c.inViolation {
		c.violations++
		fire = c.onViolation
		v = SLOViolation{Chain: chain, LatencyNs: latencyNs, BudgetNs: c.budgetNs}
	}
	c.inViolation = over
	c.mu.Unlock()
	if fire != nil {
		if t.violationsTotal != nil {
			t.violationsTotal.Inc()
		}
		FlightRecord(FlightSLO, chain, "over budget", latencyNs)
		fire(v)
	}
}

// Snapshot returns the state of one chain (ok=false when untracked).
func (t *SLOTracker) Snapshot(chain string) (SLOSnapshot, bool) {
	t.mu.RLock()
	c := t.chains[chain]
	t.mu.RUnlock()
	if c == nil {
		return SLOSnapshot{}, false
	}
	return c.snapshot(chain), true
}

// Chains returns a snapshot of every tracked chain, sorted by chain id.
func (t *SLOTracker) Chains() []SLOSnapshot {
	t.mu.RLock()
	names := make([]string, 0, len(t.chains))
	for n := range t.chains {
		names = append(names, n)
	}
	t.mu.RUnlock()
	sort.Strings(names)
	out := make([]SLOSnapshot, 0, len(names))
	for _, n := range names {
		if s, ok := t.Snapshot(n); ok {
			out = append(out, s)
		}
	}
	return out
}

func (c *sloChain) snapshot(chain string) SLOSnapshot { return c.snapshotAt(chain, MonoNow()) }

// snapshotAt computes the snapshot against an explicit clock reading (the
// age-out regression tests drive it directly). The staleness rule matches
// the registry histograms: an idle window reports the 0 sentinel.
func (c *sloChain) snapshotAt(chain string, now int64) SLOSnapshot {
	c.mu.Lock()
	s := SLOSnapshot{
		Chain:       chain,
		BudgetNs:    c.budgetNs,
		Count:       c.count,
		Violations:  c.violations,
		InViolation: c.inViolation,
	}
	stale := c.n > 0 && now-c.last > quantileStaleNs
	samples := make([]int64, c.n)
	copy(samples, c.ring[:c.n])
	c.mu.Unlock()
	if len(samples) == 0 {
		return s
	}
	if stale {
		s.Stale = true
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	q := func(p float64) int64 { return samples[int(p*float64(len(samples)-1))] }
	s.P50Ns, s.P95Ns, s.P99Ns = q(0.50), q(0.95), q(0.99)
	return s
}
