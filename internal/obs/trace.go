package obs

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the MIME extension field carrying the per-hop trace chain,
// the observability sibling of Content-Peers (§6.5): where the peer chain
// records *which* reverse streamlets to apply, the trace chain records
// *what each hop cost*. The streamlet runtime wrapper — the coordination
// plane, never Processor code — appends one hop per processMsg execution.
const TraceHeader = "X-Mobigate-Trace"

// Hop is one trace-record entry: what one streamlet did to a message.
type Hop struct {
	// Streamlet is the instance id that processed the message.
	Streamlet string `json:"streamlet"`
	// QueueWait is how long the message sat in the input channel queue
	// before being fetched.
	QueueWait time.Duration `json:"queueWaitNs"`
	// Process is the processMsg execution time.
	Process time.Duration `json:"processNs"`
	// BytesIn and BytesOut are the body sizes entering and leaving the hop
	// (summed over emissions); their ratio is the per-hop data reduction.
	BytesIn  int `json:"bytesIn"`
	BytesOut int `json:"bytesOut"`
}

// hopSep separates hops in the encoded chain; fieldSep separates fields
// within a hop. Both are header-safe and cannot occur in MCL instance ids.
const (
	hopSep   = ","
	fieldSep = "~"
)

// FormatHop encodes one hop as
// streamlet~queueWaitNs~processNs~bytesIn~bytesOut.
func FormatHop(h Hop) string {
	var b strings.Builder
	b.Grow(len(h.Streamlet) + 24)
	b.WriteString(h.Streamlet)
	for _, v := range [4]int64{int64(h.QueueWait), int64(h.Process), int64(h.BytesIn), int64(h.BytesOut)} {
		b.WriteString(fieldSep)
		b.WriteString(strconv.FormatInt(v, 10))
	}
	return b.String()
}

// AppendHop appends a hop to an encoded chain ("" starts a new chain).
func AppendHop(chain string, h Hop) string {
	if chain == "" {
		return FormatHop(h)
	}
	return chain + hopSep + FormatHop(h)
}

// ParseHops decodes a chain; malformed entries are skipped.
func ParseHops(chain string) []Hop {
	if chain == "" {
		return nil
	}
	parts := strings.Split(chain, hopSep)
	out := make([]Hop, 0, len(parts))
	for _, p := range parts {
		fields := strings.Split(p, fieldSep)
		if len(fields) != 5 {
			continue
		}
		var vals [4]int64
		ok := true
		for i, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				ok = false
				break
			}
			vals[i] = v
		}
		if !ok {
			continue
		}
		out = append(out, Hop{
			Streamlet: fields[0],
			QueueWait: time.Duration(vals[0]),
			Process:   time.Duration(vals[1]),
			BytesIn:   int(vals[2]),
			BytesOut:  int(vals[3]),
		})
	}
	return out
}

// TraceRecord is the stored trace of one message within a session.
type TraceRecord struct {
	MsgID string `json:"msgId"`
	Hops  []Hop  `json:"hops"`
}

// sessionTraces holds the bounded per-session message ring.
type sessionTraces struct {
	chains map[string]string // msgID -> encoded chain (latest)
	order  []string          // msgID insertion order; stale ids skipped
}

// TraceStore retains the most recent trace chains, bounded per session and
// in session count (oldest sessions evicted first). Records are keyed by
// message id, so later hops of the same message replace earlier partial
// chains and each stored record is that message's longest observed chain.
type TraceStore struct {
	mu          sync.Mutex
	maxSessions int
	maxPerSess  int
	sessions    map[string]*sessionTraces
	order       []string // session insertion order
	// evicted counts trace records displaced by the bounds, so silent
	// eviction is visible (nil-safe; the default store wires the catalog
	// counter). One increment per displaced message record.
	evicted *Counter
}

// NewTraceStore creates a store bounded to maxSessions sessions of
// maxPerSession messages each.
func NewTraceStore(maxSessions, maxPerSession int) *TraceStore {
	if maxSessions <= 0 {
		maxSessions = 1
	}
	if maxPerSession <= 0 {
		maxPerSession = 1
	}
	return &TraceStore{
		maxSessions: maxSessions,
		maxPerSess:  maxPerSession,
		sessions:    make(map[string]*sessionTraces),
	}
}

var defaultTraces = func() *TraceStore {
	ts := NewTraceStore(128, 1024)
	ts.evicted = DefaultCounter(MTraceEvictedTotal)
	return ts
}()

// Traces returns the shared gateway-wide trace store the streamlet runtime
// records into and the /trace exposition endpoint reads from.
func Traces() *TraceStore { return defaultTraces }

var tracingDisabled atomic.Bool

// TracingEnabled reports whether per-message tracing is on (the default).
func TracingEnabled() bool { return !tracingDisabled.Load() }

// SetTracingEnabled toggles per-message tracing; benchmarks measuring raw
// streamlet overhead may turn it off to exclude the trace-append cost.
func SetTracingEnabled(on bool) { tracingDisabled.Store(!on) }

// Record stores (or replaces) the trace chain for one message of a session.
// Empty session ids are ignored: untagged messages have no owner to file
// the trace under.
func (ts *TraceStore) Record(session, msgID, chain string) {
	if session == "" || msgID == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.sessions[session]
	if !ok {
		if len(ts.order) >= ts.maxSessions {
			oldest := ts.order[0]
			ts.order = ts.order[1:]
			if old, ok := ts.sessions[oldest]; ok && ts.evicted != nil {
				// Every record of the displaced session is lost.
				ts.evicted.Add(uint64(len(old.chains)))
			}
			delete(ts.sessions, oldest)
		}
		st = &sessionTraces{chains: make(map[string]string)}
		ts.sessions[session] = st
		ts.order = append(ts.order, session)
	}
	if _, exists := st.chains[msgID]; !exists {
		st.order = append(st.order, msgID)
		for len(st.chains) >= ts.maxPerSess {
			oldest := st.order[0]
			st.order = st.order[1:]
			if _, live := st.chains[oldest]; live && ts.evicted != nil {
				ts.evicted.Inc()
			}
			delete(st.chains, oldest)
		}
	}
	st.chains[msgID] = chain
}

// Forget drops the record for one message (used when a transformation
// changed the message identity mid-chain, so the stale partial chain does
// not double-count in aggregations).
func (ts *TraceStore) Forget(session, msgID string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if st, ok := ts.sessions[session]; ok {
		delete(st.chains, msgID)
	}
}

// Sessions lists the sessions with retained traces, sorted.
func (ts *TraceStore) Sessions() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]string, 0, len(ts.order))
	for _, s := range ts.order {
		if _, ok := ts.sessions[s]; ok {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Session returns the retained trace records of one session in message
// insertion order (nil when the session is unknown).
func (ts *TraceStore) Session(session string) []TraceRecord {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.sessions[session]
	if !ok {
		return nil
	}
	out := make([]TraceRecord, 0, len(st.chains))
	for _, id := range st.order {
		chain, ok := st.chains[id]
		if !ok {
			continue // evicted or forgotten
		}
		out = append(out, TraceRecord{MsgID: id, Hops: ParseHops(chain)})
	}
	return out
}
