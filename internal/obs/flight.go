package obs

// The flight recorder: a fixed-size lock-sharded ring journal of plane
// events — enqueue/dequeue, suspend/activate, drain, heal, fault, blackout,
// reconfiguration, handoff — with nanosecond timestamps. It is always on
// for control-plane events (they are rare and are exactly what an incident
// post-mortem needs); the high-rate data-plane events (enqueue/dequeue) are
// journaled only while span tracing is enabled, both to keep the spans-off
// hot path free of the recording cost and because at full message rate they
// would churn the ring in milliseconds and overwrite the control-plane
// record they are meant to contextualize.
//
// The journal is dumped automatically when a stream raises an
// ExecutionFault context event (stream.postFault calls FlightAutoDump) and
// on demand via the /debug/flight endpoint.

import (
	"encoding/json"
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FlightCode classifies one journal entry.
type FlightCode uint8

const (
	// FlightEnqueue / FlightDequeue are data-plane queue events (journaled
	// only while spans are enabled; see package comment).
	FlightEnqueue FlightCode = iota
	FlightDequeue
	// FlightSuspend / FlightActivate are streamlet lifecycle transitions.
	FlightSuspend
	FlightActivate
	// FlightDrain marks a reconfiguration drain outcome (Detail: "ok" or
	// "timeout").
	FlightDrain
	// FlightHeal is a completed self-healing reconfiguration.
	FlightHeal
	// FlightFault is a streamlet fault surfacing as an ExecutionFault.
	FlightFault
	// FlightBlackout / FlightRestored are link outage transitions.
	FlightBlackout
	FlightRestored
	// FlightReconfig is a completed stream reconfiguration (Value: total
	// nanoseconds).
	FlightReconfig
	// FlightHandoff is a vertical handoff between emulated networks.
	FlightHandoff
	// FlightBandwidth is a link bandwidth change or monitor threshold
	// crossing (Value: bits per second).
	FlightBandwidth
	// FlightEvent is a context event posted to the event manager.
	FlightEvent
	// FlightSLO is a latency-budget violation raised by the SLO tracker.
	FlightSLO
	// FlightCacheHit / FlightCacheMiss are transcode-cache data-plane
	// events (journaled only while spans are enabled, like enqueue).
	FlightCacheHit
	FlightCacheMiss
	// FlightAdapt is a when-policy firing by the adaptation autopilot
	// (Subject: "stream/rule-id"; Detail: condition, trigger reading, and
	// action; Value: the reading that fired the rule).
	FlightAdapt
	// FlightBatchFlush is a batched post flush on a queue (Value: items
	// moved). Data-plane: journaled only while spans are enabled, like
	// enqueue/dequeue.
	FlightBatchFlush
	// FlightSessionConnect / FlightSessionDisconnect are logical-session
	// lifecycle transitions in the session layer (Subject: session id;
	// Detail on disconnect: "drained" or "forced"; Value on disconnect:
	// messages delivered).
	FlightSessionConnect
	FlightSessionDisconnect
	// FlightSessionShed is an admission-controller refusal (Subject: the
	// refused session id; Detail: "table-full" or "plane-saturated").
	// Per-message load and quota sheds are counted, not journaled — at full
	// rate they would churn the ring.
	FlightSessionShed
	// FlightHealthDegraded / FlightHealthRecovered are edge-triggered
	// component-health transitions from the health model (Subject: the
	// component name; Detail: the degradation reason; Value: the reading
	// that crossed).
	FlightHealthDegraded
	FlightHealthRecovered
	// FlightFuse / FlightDefuse are fused-segment transitions: a stateless
	// pipeline segment collapsed into a direct-call fused hop, or dissolved
	// back into per-hop execution (Subject: the stream; Detail: the member
	// chain or the dissolve reason; Value: the member count). Journaled only
	// while spans are enabled, like the other data-plane codes — fusion
	// flips on the hot path, and the defuse counter plus the fused-segments
	// gauge carry the always-on record.
	FlightFuse
	FlightDefuse
)

var flightCodeNames = [...]string{
	"enqueue", "dequeue", "suspend", "activate", "drain", "heal", "fault",
	"blackout", "restored", "reconfig", "handoff", "bandwidth", "event", "slo",
	"cache-hit", "cache-miss", "adapt", "batch-flush",
	"session-connect", "session-disconnect", "session-shed",
	"health-degraded", "health-recovered", "fuse", "defuse",
}

func (c FlightCode) String() string {
	if int(c) < len(flightCodeNames) {
		return flightCodeNames[c]
	}
	return "code-" + strconv.Itoa(int(c))
}

// MarshalJSON renders the code as its name so dumps are self-describing.
func (c FlightCode) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON accepts the name form, so dumps round-trip through tooling.
func (c *FlightCode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range flightCodeNames {
		if name == s {
			*c = FlightCode(i)
			return nil
		}
	}
	if strings.HasPrefix(s, "code-") {
		n, err := strconv.Atoi(s[len("code-"):])
		if err != nil {
			return err
		}
		*c = FlightCode(n)
		return nil
	}
	return errors.New("obs: unknown flight code " + strconv.Quote(s))
}

// FlightEntry is one journal record.
type FlightEntry struct {
	// Seq is the global recording order (monotonically increasing across
	// shards).
	Seq uint64 `json:"seq"`
	// TsNs is the MonoNow stamp at recording.
	TsNs int64 `json:"tsNs"`
	// Code classifies the event.
	Code FlightCode `json:"code"`
	// Subject names the object the event happened to (queue, streamlet,
	// stream, link).
	Subject string `json:"subject"`
	// Detail carries event-specific context (message id, fault kind,
	// bandwidth-schedule step).
	Detail string `json:"detail,omitempty"`
	// Value carries an event-specific number (bytes, nanoseconds, bps).
	Value int64 `json:"value,omitempty"`
}

// flightShards is the lock-sharding fan-out; entries are spread round-robin
// by sequence number so concurrent recorders rarely contend.
const flightShards = 8

// defaultFlightPerShard bounds each shard's ring: the recorder retains the
// most recent flightShards*defaultFlightPerShard events.
const defaultFlightPerShard = 2048

// DefaultFlightDumpLimit caps the entries in one dump; older entries are
// truncated (Truncated reports it) so an auto-dump stays bounded.
const DefaultFlightDumpLimit = 4096

type flightShard struct {
	mu   sync.Mutex
	ring []FlightEntry
	n    uint64 // total entries written; ring index = n % len
}

// FlightRecorder is the journal. One process-wide instance (Flight())
// serves every plane; Record is safe for concurrent use.
type FlightRecorder struct {
	seq    *Counter // doubles as flight_events_total
	dumps  *Counter
	shards [flightShards]flightShard

	dumpMu   sync.Mutex
	lastDump *FlightDump
}

// NewFlightRecorder creates a recorder with perShard ring capacity (<=0
// selects the default).
func NewFlightRecorder(perShard int) *FlightRecorder {
	if perShard <= 0 {
		perShard = defaultFlightPerShard
	}
	f := &FlightRecorder{seq: &Counter{}, dumps: &Counter{}}
	for i := range f.shards {
		f.shards[i].ring = make([]FlightEntry, perShard)
	}
	return f
}

var defaultFlight = func() *FlightRecorder {
	f := NewFlightRecorder(defaultFlightPerShard)
	f.seq = DefaultCounter(MFlightEventsTotal)
	f.dumps = DefaultCounter(MFlightDumpsTotal)
	return f
}()

// Flight returns the shared process-wide flight recorder.
func Flight() *FlightRecorder { return defaultFlight }

// Record journals one event. The sequence counter is the registry's
// flight_events_total, so the journal volume is visible on /metrics at no
// extra atomic.
func (f *FlightRecorder) Record(code FlightCode, subject, detail string, value int64) {
	seq := f.seq.v.Add(1)
	e := FlightEntry{Seq: seq, TsNs: MonoNow(), Code: code, Subject: subject, Detail: detail, Value: value}
	sh := &f.shards[seq&(flightShards-1)]
	sh.mu.Lock()
	sh.ring[sh.n%uint64(len(sh.ring))] = e
	sh.n++
	sh.mu.Unlock()
}

// Events returns the lifetime journal volume.
func (f *FlightRecorder) Events() uint64 { return f.seq.Value() }

// FlightDump is one captured journal snapshot.
type FlightDump struct {
	// Reason says what triggered the dump ("" for on-demand snapshots).
	Reason string `json:"reason,omitempty"`
	// CapturedAt is the wall-clock capture time.
	CapturedAt string `json:"capturedAt"`
	// Total is how many retained entries existed at capture; when it
	// exceeds len(Events) the oldest were truncated.
	Total     int  `json:"totalEvents"`
	Truncated bool `json:"truncated"`
	// Events are the journal entries in sequence order (oldest first).
	Events []FlightEntry `json:"events"`
}

// Snapshot captures the retained journal, keeping at most limit entries
// (<=0 selects DefaultFlightDumpLimit; truncation drops the oldest).
func (f *FlightRecorder) Snapshot(limit int) FlightDump {
	if limit <= 0 {
		limit = DefaultFlightDumpLimit
	}
	var all []FlightEntry
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		filled := sh.n
		if filled > uint64(len(sh.ring)) {
			filled = uint64(len(sh.ring))
		}
		start := sh.n - filled
		for j := uint64(0); j < filled; j++ {
			all = append(all, sh.ring[(start+j)%uint64(len(sh.ring))])
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	d := FlightDump{
		CapturedAt: time.Now().Format(time.RFC3339Nano),
		Total:      len(all),
	}
	if len(all) > limit {
		all = all[len(all)-limit:]
		d.Truncated = true
	}
	d.Events = all
	return d
}

// AutoDump captures a snapshot, stores it as the last dump (retrievable via
// LastDump and /debug/flight) and counts it. Called by the stream layer on
// every ExecutionFault so the journal around an incident survives the churn
// that follows it.
func (f *FlightRecorder) AutoDump(reason string) FlightDump {
	d := f.Snapshot(DefaultFlightDumpLimit)
	d.Reason = reason
	f.dumpMu.Lock()
	f.lastDump = &d
	f.dumpMu.Unlock()
	f.dumps.Inc()
	return d
}

// LastDump returns the most recent auto-dump (ok=false when none yet).
func (f *FlightRecorder) LastDump() (FlightDump, bool) {
	f.dumpMu.Lock()
	defer f.dumpMu.Unlock()
	if f.lastDump == nil {
		return FlightDump{}, false
	}
	return *f.lastDump, true
}

// Dumps returns how many auto-dumps were captured.
func (f *FlightRecorder) Dumps() uint64 { return f.dumps.Value() }

// FlightRecord journals into the shared recorder — the one-liner the
// instrumentation points use.
func FlightRecord(code FlightCode, subject, detail string, value int64) {
	defaultFlight.Record(code, subject, detail, value)
}

// FlightAutoDump captures an incident dump on the shared recorder.
func FlightAutoDump(reason string) FlightDump { return defaultFlight.AutoDump(reason) }
