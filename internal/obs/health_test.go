package obs

import (
	"sync/atomic"
	"testing"
)

// TestHealthModelEdgeTransitions: degrade on a bad delta, hold while
// flapping, recover after healthRecoverTicks clean evals, with exactly one
// flight entry and callback per transition.
func TestHealthModelEdgeTransitions(t *testing.T) {
	var fails atomic.Uint64
	m := NewHealthModel(HealthComponent{
		Name:  "probe",
		Check: counterCheck("probe failures", func() uint64 { return fails.Load() }),
	})
	var transitions []string
	m.SetOnTransition(func(name string, healthy bool, reason string) {
		state := "degraded"
		if healthy {
			state = "recovered"
		}
		transitions = append(transitions, name+":"+state)
	})

	// First eval baselines; pre-existing counts are not charged.
	fails.Store(5)
	if snap := m.Eval(); !snap.Healthy {
		t.Fatalf("baseline eval degraded: %+v", snap)
	}
	if snap := m.Eval(); !snap.Healthy {
		t.Fatalf("steady counter degraded: %+v", snap)
	}

	// A moving counter degrades immediately, once.
	fails.Add(1)
	snap := m.Eval()
	if snap.Healthy || snap.Components[0].Reason != "probe failures" {
		t.Fatalf("did not degrade: %+v", snap)
	}
	fails.Add(1)
	if snap := m.Eval(); snap.Healthy {
		t.Fatal("recovered while still failing")
	}

	// Recovery needs healthRecoverTicks consecutive clean evals; a flap
	// resets the streak.
	for i := 0; i < healthRecoverTicks-1; i++ {
		if snap := m.Eval(); snap.Healthy {
			t.Fatalf("recovered after only %d clean evals", i+1)
		}
	}
	fails.Add(1) // flap: streak resets
	if snap := m.Eval(); snap.Healthy {
		t.Fatal("recovered on a flapping component")
	}
	for i := 0; i < healthRecoverTicks; i++ {
		snap = m.Eval()
	}
	if !snap.Healthy {
		t.Fatalf("did not recover after %d clean evals: %+v", healthRecoverTicks, snap)
	}

	want := []string{"probe:degraded", "probe:recovered"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v (edge-triggered, exactly once each)", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions %v, want %v", transitions, want)
		}
	}
	if snap.Transitions != 0 {
		// The unit model has no catalog counter wired; Transitions stays 0.
		t.Fatalf("unwired model reported %d transitions", snap.Transitions)
	}
}

// TestHealthModelSnapshotWithoutEval: Snapshot reports state without
// running checks.
func TestHealthModelSnapshotWithoutEval(t *testing.T) {
	calls := 0
	m := NewHealthModel(HealthComponent{
		Name:  "lazy",
		Check: func() (bool, string, int64) { calls++; return true, "", 0 },
	})
	snap := m.Snapshot()
	if calls != 0 {
		t.Fatalf("Snapshot ran checks (%d calls)", calls)
	}
	if !snap.Healthy || len(snap.Components) != 1 || snap.Components[0].Name != "lazy" {
		t.Fatalf("bad initial snapshot: %+v", snap)
	}
}

// TestDefaultHealthLinkProbe: the pluggable link probe degrades and
// recovers the default model's link component.
func TestDefaultHealthLinkProbe(t *testing.T) {
	var down atomic.Bool
	SetLinkProbe(func() bool { return down.Load() })
	defer SetLinkProbe(nil)

	Health().Eval() // baseline (and settle any counter deltas from other tests)
	down.Store(true)
	snap := Health().Eval()
	linkHealthy := true
	for _, c := range snap.Components {
		if c.Name == "link" {
			linkHealthy = c.Healthy
			if !c.Healthy && c.Reason != "link down" {
				t.Fatalf("link reason %q", c.Reason)
			}
		}
	}
	if linkHealthy {
		t.Fatalf("link probe down but component healthy: %+v", snap)
	}
	down.Store(false)
	for i := 0; i < healthRecoverTicks; i++ {
		snap = Health().Eval()
	}
	for _, c := range snap.Components {
		if c.Name == "link" && !c.Healthy {
			t.Fatalf("link did not recover: %+v", c)
		}
	}
}
