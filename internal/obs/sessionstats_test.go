package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestSessionSamplerDeterministic: selection depends only on the hash, so
// the same id is selected (or not) across reconnects, and roughly 1/rate
// of a uniform population is selected.
func TestSessionSamplerDeterministic(t *testing.T) {
	c := NewSessionStatsCollector(64, 1024)
	selected := 0
	for i := 0; i < 4096; i++ {
		h := testHash(fmt.Sprintf("sess-%d", i))
		first := c.AcquireSlot(h, "x") != nil
		if first {
			selected++
		}
		// Free and re-acquire: the decision must not change.
		for k := 0; k < 3; k++ {
			sl := c.AcquireSlot(h, "x")
			if (sl != nil) != first {
				t.Fatalf("hash %#x: selection changed across reconnects", h)
			}
			c.FreeSlot(sl)
		}
	}
	if selected < 16 || selected > 256 {
		t.Fatalf("selected %d of 4096 at rate 64, want around 64", selected)
	}
}

// testHash is FNV-1a, matching the session table's shard hash.
func testHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// TestSessionSlotQuantilesAndViolations: the window quantiles order
// correctly and violations are edge-triggered.
func TestSessionSlotQuantilesAndViolations(t *testing.T) {
	c := NewSessionStatsCollector(1, 8) // rate 1: select everything
	sl := c.AcquireSlot(7, "s1")
	if sl == nil {
		t.Fatal("rate-1 sampler skipped a session")
	}
	for i := 1; i <= 100; i++ {
		if sl.Observe(int64(i)*1000, 0) {
			t.Fatal("violation fired with no budget")
		}
	}
	snap := sl.snapshotAt(MonoNow(), nil)
	if snap.Count != 100 || snap.P50Ns == 0 || snap.P99Ns < snap.P50Ns || snap.P95Ns > snap.P99Ns {
		t.Fatalf("bad quantiles: %+v", snap)
	}

	// Edge-triggered budget: a run of over-budget observations is one
	// violation; dipping under re-arms it.
	budget := int64(50)
	if !sl.Observe(100, budget) {
		t.Fatal("first over-budget observation did not fire")
	}
	if sl.Observe(200, budget) {
		t.Fatal("second consecutive over-budget observation fired again")
	}
	sl.Observe(10, budget) // compliant: re-arm
	if !sl.Observe(100, budget) {
		t.Fatal("violation after re-arm did not fire")
	}
	if got := sl.violations.Load(); got != 2 {
		t.Fatalf("violations = %d, want 2", got)
	}
}

// TestSessionSlotStale: an idle slot ages out to the 0 sentinel like the
// registry histograms (the S1 regression, per-session edition).
func TestSessionSlotStale(t *testing.T) {
	c := NewSessionStatsCollector(1, 8)
	sl := c.AcquireSlot(1, "stale")
	sl.Observe(5000, 0)
	fresh := sl.snapshotAt(MonoNow(), nil)
	if fresh.Stale || fresh.P50Ns != 5000 {
		t.Fatalf("fresh snapshot wrong: %+v", fresh)
	}
	old := sl.snapshotAt(MonoNow()+quantileStaleNs+1, nil)
	if !old.Stale || old.P50Ns != 0 || old.P99Ns != 0 {
		t.Fatalf("stale snapshot kept quantiles: %+v", old)
	}
	if old.Count != 1 {
		t.Fatalf("stale snapshot lost the count: %+v", old)
	}
}

// TestSessionSlotPoolExhaustion: selections past the pool return nil and
// freeing recycles slots.
func TestSessionSlotPoolExhaustion(t *testing.T) {
	c := NewSessionStatsCollector(1, 2)
	a := c.AcquireSlot(1, "a")
	b := c.AcquireSlot(2, "b")
	if a == nil || b == nil {
		t.Fatal("pool refused under capacity")
	}
	if c.AcquireSlot(3, "c") != nil {
		t.Fatal("pool over capacity")
	}
	c.FreeSlot(a)
	d := c.AcquireSlot(4, "d")
	if d == nil {
		t.Fatal("freed slot not recycled")
	}
	if d != a {
		t.Fatal("expected the freed slot back")
	}
	if d.writes.Load() != 0 || d.id != "d" {
		t.Fatalf("recycled slot not reset: writes=%d id=%q", d.writes.Load(), d.id)
	}
}

// TestHeavyHitters: the space-saving sketch keeps the heavy sessions under
// churn far past its capacity, and Snapshot's top lists sort
// deterministically.
func TestHeavyHitters(t *testing.T) {
	c := NewSessionStatsCollector(1, 8)
	// Two hot sessions among thousands of light one-shot sessions.
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("hot-%d", i%2)
		c.ObserveRelease(testHash(id), id, 1<<20)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("light-%d", i)
		c.ObserveRelease(testHash(id), id, 64)
	}
	c.ObserveShed(testHash("shedder"), "shedder")
	c.ObserveViolation(testHash("violator"), "violator")

	snap := c.Snapshot(4)
	if len(snap.TopBytes) != 4 {
		t.Fatalf("topBytes len %d, want 4", len(snap.TopBytes))
	}
	// The two hot sessions dominate bytes despite 5000 light insertions.
	if snap.TopBytes[0].ID != "hot-0" && snap.TopBytes[0].ID != "hot-1" {
		t.Fatalf("heavy session evicted: top is %+v", snap.TopBytes[0])
	}
	if len(snap.TopSheds) != 1 || snap.TopSheds[0].ID != "shedder" {
		t.Fatalf("topSheds: %+v", snap.TopSheds)
	}
	if len(snap.TopViolations) != 1 || snap.TopViolations[0].ID != "violator" {
		t.Fatalf("topViolations: %+v", snap.TopViolations)
	}

	// Deterministic: the same state snapshots identically.
	again := c.Snapshot(4)
	for i := range snap.TopBytes {
		if snap.TopBytes[i] != again.TopBytes[i] {
			t.Fatalf("topBytes not deterministic: %+v vs %+v", snap.TopBytes[i], again.TopBytes[i])
		}
	}
}

// TestSessionStatsConcurrent hammers the collector from many goroutines
// (meaningful under -race).
func TestSessionStatsConcurrent(t *testing.T) {
	c := NewSessionStatsCollector(2, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := fmt.Sprintf("g%d-%d", g, i%16)
				h := testHash(id)
				sl := c.AcquireSlot(h, id)
				if sl != nil {
					sl.Observe(int64(i+1), 100)
				}
				c.ObserveRelease(h, id, 128)
				if i%7 == 0 {
					c.ObserveShed(h, id)
				}
				c.FreeSlot(sl)
				if i%50 == 0 {
					c.Snapshot(5)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot(0)
	if snap.Sampled != 0 {
		t.Fatalf("all slots freed but Sampled=%d", snap.Sampled)
	}
}
