package obs

import (
	"testing"
	"time"
)

// The S1 regression: windowed quantiles used to replay the last burst's
// values forever once a series went idle. Idle windows must age out to the
// 0 sentinel with Stale set, and wake back up on the next observation.

func TestHistogramQuantilesAgeOut(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	now := MonoNow()
	fresh := h.snapshotAt(now)
	if fresh.Stale || fresh.P50 == 0 {
		t.Fatalf("fresh snapshot wrong: %+v", fresh)
	}
	stale := h.snapshotAt(now + quantileStaleNs + 1)
	if !stale.Stale {
		t.Fatalf("idle histogram not marked stale: %+v", stale)
	}
	if stale.P50 != 0 || stale.P95 != 0 || stale.P99 != 0 {
		t.Fatalf("idle histogram kept quantiles: %+v", stale)
	}
	if stale.Count != fresh.Count || stale.Sum != fresh.Sum {
		t.Fatalf("staleness clobbered lifetime count/sum: %+v vs %+v", stale, fresh)
	}
	// A new observation revives the window.
	h.Observe(7)
	revived := h.snapshotAt(now + quantileStaleNs + 2)
	if revived.Stale || revived.P50 == 0 {
		t.Fatalf("observation did not revive the window: %+v", revived)
	}
}

func TestSLOChainQuantilesAgeOut(t *testing.T) {
	tr := NewSLOTracker()
	tr.SetBudget("chain", time.Second, nil)
	for i := 0; i < 50; i++ {
		tr.Observe("chain", int64(1000+i))
	}
	tr.mu.RLock()
	c := tr.chains["chain"]
	tr.mu.RUnlock()
	now := MonoNow()
	fresh := c.snapshotAt("chain", now)
	if fresh.Stale || fresh.P50Ns == 0 {
		t.Fatalf("fresh snapshot wrong: %+v", fresh)
	}
	stale := c.snapshotAt("chain", now+quantileStaleNs+1)
	if !stale.Stale || stale.P50Ns != 0 || stale.P99Ns != 0 {
		t.Fatalf("idle chain kept quantiles: %+v", stale)
	}
	if stale.Count != fresh.Count || stale.Violations != fresh.Violations {
		t.Fatalf("staleness clobbered lifetime counters: %+v vs %+v", stale, fresh)
	}
	tr.Observe("chain", 500)
	revived := c.snapshotAt("chain", now+quantileStaleNs+2)
	if revived.Stale || revived.P50Ns == 0 {
		t.Fatalf("observation did not revive the chain: %+v", revived)
	}
}

// TestSnapshotValues: the /watch feed flattens every kind of series to
// Prometheus series names.
func TestSnapshotValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", nil).Add(3)
	r.IntGauge("g", "", nil).Set(7)
	h := r.Histogram("h", "", nil)
	h.Observe(1)
	h.Observe(2)
	vals := r.SnapshotValues()
	if vals["c_total"] != 3 || vals["g"] != 7 {
		t.Fatalf("scalar series wrong: %v", vals)
	}
	if vals[`h_count`] != 2 || vals[`h_sum`] != 3 {
		t.Fatalf("histogram sum/count wrong: %v", vals)
	}
	if _, ok := vals[`h{quantile="0.5"}`]; !ok {
		t.Fatalf("histogram quantile series missing: %v", vals)
	}
}
