package obs

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// TestRuntimeCollectorPublishes: one Collect populates the go_* series
// with sane values.
func TestRuntimeCollectorPublishes(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	runtime.GC() // guarantee at least one completed GC cycle
	c.Collect()
	if v := r.IntGauge(MGoHeapBytes, "", nil).Value(); v <= 0 {
		t.Fatalf("%s = %d, want > 0", MGoHeapBytes, v)
	}
	if v := r.IntGauge(MGoGoroutines, "", nil).Value(); v <= 0 {
		t.Fatalf("%s = %d, want > 0", MGoGoroutines, v)
	}
	if v := r.IntGauge(MGoMaxProcs, "", nil).Value(); v != int64(runtime.GOMAXPROCS(0)) {
		t.Fatalf("%s = %d, want %d", MGoMaxProcs, v, runtime.GOMAXPROCS(0))
	}
	if v := r.Counter(MGoGCCyclesTotal, "", nil).Value(); v == 0 {
		t.Fatalf("%s = 0 after a forced GC", MGoGCCyclesTotal)
	}
}

// TestRuntimeCollectorPauseDeltas: GC-pause quantiles reflect only the
// interval since the previous Collect — a quiet interval reads 0.
func TestRuntimeCollectorPauseDeltas(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	runtime.GC()
	c.Collect()
	// Collect again immediately: no GC between the two reads, so the
	// per-interval pause quantile must drop to the 0 sentinel.
	c.Collect()
	if v := r.Gauge(MGoGCPauseP99Seconds, "", nil).Value(); v != 0 {
		t.Fatalf("%s = %g after a quiet interval, want 0", MGoGCPauseP99Seconds, v)
	}
	runtime.GC()
	c.Collect()
	if v := r.Gauge(MGoGCPauseP99Seconds, "", nil).Value(); v <= 0 {
		t.Fatalf("%s = %g after a forced GC, want > 0", MGoGCPauseP99Seconds, v)
	}
}

// TestHistQuantile pins the bucket-midpoint reduction, including the ±Inf
// edge buckets.
func TestHistQuantile(t *testing.T) {
	buckets := []float64{math.Inf(-1), 1, 2, 4, math.Inf(1)}
	counts := []uint64{1, 10, 10, 1}
	total := uint64(22)
	if got := histQuantile(buckets, counts, total, 0.5); got != 1.5 {
		t.Fatalf("p50 = %g, want 1.5 (midpoint of [1,2))", got)
	}
	if got := histQuantile(buckets, counts, 0, 0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", got)
	}
	// Rank 1 lands in the -Inf edge bucket: clamp to the finite bound.
	if got := histQuantile(buckets, []uint64{5, 0, 0, 0}, 5, 0.5); got != 1 {
		t.Fatalf("-Inf bucket quantile = %g, want 1", got)
	}
	// The +Inf edge bucket clamps to its lower bound.
	if got := histQuantile(buckets, []uint64{0, 0, 0, 3}, 3, 0.99); got != 4 {
		t.Fatalf("+Inf bucket quantile = %g, want 4", got)
	}
}

// TestRuntimeCollectorStartClose: the ticker collects and shuts down
// cleanly (idempotent Close).
func TestRuntimeCollectorStartClose(t *testing.T) {
	r := NewRegistry()
	c := NewRuntimeCollector(r)
	c.Start(time.Millisecond)
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for r.IntGauge(MGoHeapBytes, "", nil).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never collected")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	c.Close() // idempotent
}
