package obs

import (
	"testing"
	"time"
)

func TestSLOUntrackedChainIgnored(t *testing.T) {
	tr := NewSLOTracker()
	tr.Observe("nobody", 1e9)
	if _, ok := tr.Snapshot("nobody"); ok {
		t.Fatal("unconfigured chain grew a snapshot")
	}
	if got := tr.Chains(); len(got) != 0 {
		t.Fatalf("Chains = %v, want empty", got)
	}
}

func TestSLOQuantilesAndBudget(t *testing.T) {
	tr := NewSLOTracker()
	tr.SetBudget("web", 10*time.Millisecond, nil)
	for i := 1; i <= 100; i++ {
		tr.Observe("web", int64(i)*int64(time.Millisecond)/10) // 0.1ms … 10ms
	}
	s, ok := tr.Snapshot("web")
	if !ok {
		t.Fatal("no snapshot for configured chain")
	}
	if s.BudgetNs != int64(10*time.Millisecond) || s.Count != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50Ns <= 0 || s.P95Ns < s.P50Ns || s.P99Ns < s.P95Ns {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d", s.P50Ns, s.P95Ns, s.P99Ns)
	}
	if s.Violations != 0 {
		t.Errorf("violations = %d for all-compliant samples", s.Violations)
	}
}

func TestSLOViolationEdgeTriggered(t *testing.T) {
	tr := NewSLOTracker()
	var fired []SLOViolation
	tr.SetBudget("web", time.Millisecond, func(v SLOViolation) { fired = append(fired, v) })
	over := int64(2 * time.Millisecond)
	under := int64(time.Millisecond / 2)

	tr.Observe("web", over)  // compliant → over: fires
	tr.Observe("web", over)  // still over: no new edge
	tr.Observe("web", under) // recovers
	tr.Observe("web", over)  // second edge: fires again

	if len(fired) != 2 {
		t.Fatalf("callback fired %d times, want 2 (edge-triggered)", len(fired))
	}
	if fired[0].Chain != "web" || fired[0].LatencyNs != over || fired[0].BudgetNs != int64(time.Millisecond) {
		t.Errorf("violation payload = %+v", fired[0])
	}
	s, _ := tr.Snapshot("web")
	if s.Violations != 2 {
		t.Errorf("snapshot violations = %d, want 2", s.Violations)
	}
}

func TestSLORemove(t *testing.T) {
	tr := NewSLOTracker()
	tr.SetBudget("web", time.Millisecond, nil)
	tr.Observe("web", 1)
	tr.Remove("web")
	if _, ok := tr.Snapshot("web"); ok {
		t.Fatal("removed chain still tracked")
	}
	tr.Observe("web", 1) // must not resurrect or panic
	if got := tr.Chains(); len(got) != 0 {
		t.Fatalf("Chains = %v after removal", got)
	}
}

func TestSLOWindowBounded(t *testing.T) {
	tr := NewSLOTracker()
	tr.SetBudget("web", time.Hour, nil)
	for i := 0; i < 5000; i++ {
		tr.Observe("web", int64(i))
	}
	s, _ := tr.Snapshot("web")
	if s.Count != 5000 {
		t.Errorf("Count = %d, want lifetime 5000", s.Count)
	}
	// The window keeps only the newest samples, so the median reflects the
	// tail of the sequence, not the start.
	if s.P50Ns < 3000 {
		t.Errorf("p50 = %d, want from the most recent window", s.P50Ns)
	}
}
