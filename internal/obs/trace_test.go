package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestHopRoundTrip(t *testing.T) {
	hops := []Hop{
		{Streamlet: "sw", QueueWait: 150 * time.Microsecond, Process: 2 * time.Millisecond, BytesIn: 1024, BytesOut: 512},
		{Streamlet: "mg", QueueWait: time.Nanosecond, BytesIn: 512, BytesOut: 512},
		{Streamlet: "cm", Process: 7 * time.Second, BytesIn: 512},
	}
	var chain string
	for _, h := range hops {
		chain = AppendHop(chain, h)
	}
	got := ParseHops(chain)
	if !reflect.DeepEqual(got, hops) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, hops)
	}
}

func TestParseHopsSkipsMalformed(t *testing.T) {
	chain := AppendHop("", Hop{Streamlet: "a", BytesIn: 1})
	chain += hopSep + "garbage" + hopSep + "b~1~2~x~4"
	chain = AppendHop(chain, Hop{Streamlet: "c", BytesOut: 2})
	got := ParseHops(chain)
	if len(got) != 2 || got[0].Streamlet != "a" || got[1].Streamlet != "c" {
		t.Errorf("parse = %+v, want the two well-formed hops", got)
	}
	if ParseHops("") != nil {
		t.Error("empty chain should parse to nil")
	}
}

func TestTraceStoreRecordAndReplace(t *testing.T) {
	ts := NewTraceStore(4, 4)
	ts.Record("s1", "m1", "a~1~2~3~4")
	ts.Record("s1", "m2", "a~1~2~3~4")
	// A longer chain for the same message replaces the partial one.
	ts.Record("s1", "m1", "a~1~2~3~4,b~5~6~7~8")
	recs := ts.Session("s1")
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].MsgID != "m1" || len(recs[0].Hops) != 2 {
		t.Errorf("m1 = %+v, want the replaced 2-hop chain first", recs[0])
	}
	// Untagged messages are not filed.
	ts.Record("", "m9", "x~0~0~0~0")
	ts.Record("s2", "", "x~0~0~0~0")
	if ts.Session("s2") != nil {
		t.Error("record with empty msgID created a session")
	}
}

func TestTraceStoreForget(t *testing.T) {
	ts := NewTraceStore(4, 4)
	ts.Record("s1", "m1", "a~1~2~3~4")
	ts.Record("s1", "m2", "b~1~2~3~4")
	ts.Forget("s1", "m1")
	recs := ts.Session("s1")
	if len(recs) != 1 || recs[0].MsgID != "m2" {
		t.Errorf("after Forget: %+v, want only m2", recs)
	}
	ts.Forget("s1", "unknown") // no-op
	ts.Forget("nosuch", "m1")  // no-op
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2, 2)
	for i := 0; i < 3; i++ {
		ts.Record(fmt.Sprintf("s%d", i), "m", "a~0~0~0~0")
	}
	if got := ts.Sessions(); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Errorf("sessions = %v, want oldest (s0) evicted", got)
	}
	for i := 0; i < 3; i++ {
		ts.Record("s2", fmt.Sprintf("m%d", i), "a~0~0~0~0")
	}
	recs := ts.Session("s2")
	if len(recs) != 2 || recs[0].MsgID != "m1" || recs[1].MsgID != "m2" {
		t.Errorf("per-session ring = %+v, want the two newest messages", recs)
	}
}

func TestTraceStoreEvictionCounter(t *testing.T) {
	ts := NewTraceStore(2, 2)
	ts.evicted = &Counter{}
	// Session eviction: s0's single record displaced when s2 arrives.
	for i := 0; i < 3; i++ {
		ts.Record(fmt.Sprintf("s%d", i), "m", "a~0~0~0~0")
	}
	if got := ts.evicted.Value(); got != 1 {
		t.Errorf("evicted after session displacement = %d, want 1", got)
	}
	// Per-session ring eviction: s2 already holds one record, so three more
	// messages displace two through the 2-slot ring.
	for i := 0; i < 3; i++ {
		ts.Record("s2", fmt.Sprintf("m%d", i), "a~0~0~0~0")
	}
	if got := ts.evicted.Value(); got != 3 {
		t.Errorf("evicted after ring displacement = %d, want 3", got)
	}
}

func TestTracingToggle(t *testing.T) {
	if !TracingEnabled() {
		t.Fatal("tracing should default to enabled")
	}
	SetTracingEnabled(false)
	if TracingEnabled() {
		t.Error("tracing still enabled after disable")
	}
	SetTracingEnabled(true)
	if !TracingEnabled() {
		t.Error("tracing not restored")
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(8, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := fmt.Sprintf("s%d", i%4)
			for j := 0; j < 200; j++ {
				ts.Record(sess, fmt.Sprintf("m%d", j%32), "a~1~2~3~4")
				if j%10 == 0 {
					ts.Forget(sess, "m0")
				}
				_ = ts.Session(sess)
				_ = ts.Sessions()
			}
		}(i)
	}
	wg.Wait()
}
