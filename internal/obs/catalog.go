package obs

// The gateway metric catalog. Every runtime package records into these
// series on the Default registry; pre-registration at startup makes the
// exposition endpoint list the complete catalog (zero-valued until first
// use) even before any traffic flows. docs/OBSERVABILITY.md documents each
// metric's meaning and the paper quantity it corresponds to — keep the two
// lists in sync.
const (
	// Coordination plane: message queues (§6.2 MessageQueue, Figure 6-9).
	MQueuePostTotal        = "mobigate_queue_post_total"
	MQueueFetchTotal       = "mobigate_queue_fetch_total"
	MQueueDropTotal        = "mobigate_queue_drop_total"
	MQueuePostWaitSeconds  = "mobigate_queue_post_wait_seconds"
	MQueueFetchWaitSeconds = "mobigate_queue_fetch_wait_seconds"
	MQueueQueuedMessages   = "mobigate_queue_queued_messages"
	MQueueQueuedBytes      = "mobigate_queue_queued_bytes"

	// Batched data plane (PostN/FetchN and the batch pumps): items moved
	// per batched operation (the size histograms record counts, not
	// seconds) and batched post flushes.
	MBatchPostSize     = "mobigate_batch_post_size"
	MBatchFetchSize    = "mobigate_batch_fetch_size"
	MBatchFlushesTotal = "mobigate_batch_flushes_total"

	// Central message pool (§6.7 pass-by-reference buffer management).
	MPoolPutTotal  = "mobigate_pool_put_total"
	MPoolHitTotal  = "mobigate_pool_hit_total"
	MPoolMissTotal = "mobigate_pool_miss_total"
	MPoolCopyTotal = "mobigate_pool_copy_total"
	MPoolMessages  = "mobigate_pool_messages"
	MPoolBytes     = "mobigate_pool_bytes"

	// Streams and streamlets (§6.1/§6.3; Figure 7-2 per-streamlet cost,
	// Equation 7-1 reconfiguration time).
	MStreamletProcessSeconds = "mobigate_streamlet_process_seconds"
	MStreamProcessedTotal    = "mobigate_stream_processed_total"
	MStreamDroppedTotal      = "mobigate_stream_dropped_total"
	MStreamTypeErrorsTotal   = "mobigate_stream_type_errors_total"
	MStreamReconfigSeconds   = "mobigate_stream_reconfig_seconds"
	// Reconfigurations aborted because a drain deadline passed with
	// messages still in flight (§6.6 message-loss avoidance refused to
	// detach and strand them).
	MStreamDrainTimeoutsTotal = "mobigate_stream_reconfig_drain_timeouts_total"

	// Streamlet chain fusion (internal/stream fuse pass): stateless pipeline
	// segments collapsed into direct-call fused hops, and the dissolutions
	// (reconfiguration, heal, workers change, stream end) that un-collapse
	// them via the Figure 7-4 drain protocol.
	MFusedSegments     = "mobigate_fused_segments"
	MFusionDefuseTotal = "mobigate_fusion_defuse_total"

	// Parallel execution mode (per-streamlet worker fan-out behind a
	// sequence-numbered resequencer) and the content-addressed transcode
	// cache (internal/cache).
	MStreamletWorkersBusy = "mobigate_streamlet_workers_busy"
	MStreamletReseqDepth  = "mobigate_streamlet_resequencer_depth"
	MCacheHitsTotal       = "mobigate_cache_hits_total"
	MCacheMissesTotal     = "mobigate_cache_misses_total"
	MCacheEvictionsTotal  = "mobigate_cache_evictions_total"
	MCacheEntries         = "mobigate_cache_entries"
	MCacheBytes           = "mobigate_cache_bytes"

	// Execution-plane fault supervision (panic containment, processing
	// deadlines, per-streamlet recovery policies) and fault injection.
	MFaultInjectedTotal = "mobigate_fault_injected_total"
	MFaultPanicsTotal   = "mobigate_fault_panics_recovered_total"
	MFaultStallsTotal   = "mobigate_fault_stalls_total"
	MFaultRetriesTotal  = "mobigate_fault_retries_total"
	MFaultDroppedTotal  = "mobigate_fault_dropped_total"
	MFaultBypassedTotal = "mobigate_fault_bypassed_total"
	MFaultHealsTotal    = "mobigate_fault_heals_total"

	// Emulated wireless link (§7.1 testbed; Equation 7-2 transfer term).
	MLinkBandwidthBps    = "mobigate_link_bandwidth_bps"
	MLinkLossRate        = "mobigate_link_loss_rate"
	MLinkMessagesTotal   = "mobigate_link_messages_total"
	MLinkWireBytesTotal  = "mobigate_link_wire_bytes_total"
	MLinkTransferSeconds = "mobigate_link_transfer_seconds"

	// Event system (§6.4 Event Manager).
	MEventsRaisedTotal    = "mobigate_events_raised_total"
	MEventsDeliveredTotal = "mobigate_events_delivered_total"
	MEventsFilteredTotal  = "mobigate_events_filtered_total"
	MEventsDroppedTotal   = "mobigate_events_dropped_total"

	// Gateway server and front-end sessions (§3.3 Coordination Manager).
	MStreamsDeployedTotal = "mobigate_streams_deployed_total"
	MStreamsActive        = "mobigate_streams_active"
	MSessionsTotal        = "mobigate_sessions_total"
	MSessionsActive       = "mobigate_sessions_active"

	// Session layer (internal/session): logical client sessions multiplexed
	// onto shared streamlet instance pools, with per-session quotas, an
	// admission controller, and a load-shedder. Distinct from the front-end
	// TCP session metrics above: one TCP connection (or none — sessions can
	// be driven in-process) carries one logical session.
	MSessionConnectsTotal    = "mobigate_session_connects_total"
	MSessionDisconnectsTotal = "mobigate_session_disconnects_total"
	MSessionAdmitShedTotal   = "mobigate_session_admission_shed_total"
	MSessionLoadShedTotal    = "mobigate_session_load_shed_total"
	MSessionQuotaShedTotal   = "mobigate_session_quota_shed_total"
	MSessionLive             = "mobigate_session_live"
	MSessionDraining         = "mobigate_session_draining"
	MSessionQueuedBytes      = "mobigate_session_queued_bytes"

	// Session-scale observability (sessionstats.go): the deterministic
	// hash-based SLO sampler and the per-session latency-budget violations
	// it detects on sampled sessions.
	MSessionSampled             = "mobigate_session_sampled"
	MSessionSampleOverflowTotal = "mobigate_session_sample_overflow_total"
	MSessionSLOViolationsTotal  = "mobigate_session_slo_violations_total"

	// Component health model (health.go) and the /watch live stream.
	MHealthDegraded         = "mobigate_health_degraded"
	MHealthTransitionsTotal = "mobigate_health_transitions_total"
	MWatchClients           = "mobigate_watch_clients"
	MWatchEventsTotal       = "mobigate_watch_events_total"

	// Runtime self-stats (runtime.go): the Go runtime folded into the
	// registry as go_* series so operators and the autopilot see GC, heap
	// and scheduler headroom next to the gateway's own signals.
	MGoGoroutines         = "go_goroutines"
	MGoMaxProcs           = "go_gomaxprocs"
	MGoHeapBytes          = "go_heap_bytes"
	MGoHeapObjects        = "go_heap_objects"
	MGoGCCyclesTotal      = "go_gc_cycles_total"
	MGoGCPauseP50Seconds  = "go_gc_pause_p50_seconds"
	MGoGCPauseP99Seconds  = "go_gc_pause_p99_seconds"
	MGoSchedLatP99Seconds = "go_sched_latency_p99_seconds"

	// End-to-end span tracing (span.go), the flight recorder (flight.go),
	// the trace store, and latency-budget tracking (slo.go).
	MSpanRecordedTotal  = "mobigate_span_recorded_total"
	MSpanEvictedTotal   = "mobigate_span_evicted_total"
	MSpanBatchesTotal   = "mobigate_span_batches_total"
	MFlightEventsTotal  = "mobigate_flight_events_total"
	MFlightDumpsTotal   = "mobigate_flight_dumps_total"
	MTraceEvictedTotal  = "mobigate_trace_evicted_total"
	MSLOViolationsTotal = "mobigate_slo_violations_total"

	// Adaptive reconfiguration autopilot (internal/adapt): when-policy
	// evaluation ticks, the drain-safe rewrites rules triggered, firings
	// suppressed by cooldown or inapplicability, failed actions, and
	// policy hot-reloads applied by the server.
	MAdaptEvaluationsTotal = "mobigate_adapt_evaluations_total"
	MAdaptActionsTotal     = "mobigate_adapt_actions_total"
	MAdaptSuppressedTotal  = "mobigate_adapt_suppressed_total"
	MAdaptFailuresTotal    = "mobigate_adapt_failures_total"
	MAdaptReloadsTotal     = "mobigate_adapt_reloads_total"
)

// registerCatalog pre-seeds a registry with every catalog metric and its
// help text. Labeled series (the per-streamlet process histogram) appear
// once their first labeled observation arrives.
func registerCatalog(r *Registry) {
	for _, c := range []struct{ name, help string }{
		{MQueuePostTotal, "Messages posted to channel queues."},
		{MQueueFetchTotal, "Messages fetched from channel queues."},
		{MQueueDropTotal, "Messages dropped by full queues after the grace period (Figure 6-9)."},
		{MPoolPutTotal, "Messages stored into the central message pool."},
		{MPoolHitTotal, "Pool lookups that found the message."},
		{MPoolMissTotal, "Pool lookups for unknown message identifiers."},
		{MPoolCopyTotal, "Deep copies made by the pass-by-value pool mode (Figure 7-3 baseline)."},
		{MStreamProcessedTotal, "processMsg executions across all streamlets."},
		{MStreamDroppedTotal, "Messages lost to full output queues (wait-then-drop, paragraph 6.7) or dropped by fault supervision."},
		{MStreamTypeErrorsTotal, "Messages dropped by the paragraph 4.1 runtime port-type check."},
		{MStreamDrainTimeoutsTotal, "Reconfigurations aborted because draining did not finish before the deadline (paragraph 6.6)."},
		{MCacheHitsTotal, "Transcode-cache lookups that skipped the transform entirely."},
		{MCacheMissesTotal, "Transcode-cache lookups that fell through to the transform."},
		{MCacheEvictionsTotal, "Transcode-cache entries evicted to stay under the byte bound."},
		{MFaultInjectedTotal, "Faults injected by the internal/fault injectors (panics, errors, stalls)."},
		{MFaultPanicsTotal, "Processor panics recovered by the streamlet supervisor."},
		{MFaultStallsTotal, "Processor executions abandoned after exceeding the per-message deadline."},
		{MFaultRetriesTotal, "Processor re-executions performed by the retry policy."},
		{MFaultDroppedTotal, "Messages dropped by fault policy after recovery was exhausted."},
		{MFaultBypassedTotal, "Messages forwarded unprocessed by the bypass fault policy."},
		{MFaultHealsTotal, "Self-healing reconfigurations (replace/remove) completed after faults."},
		{MLinkMessagesTotal, "Messages transmitted over emulated links."},
		{MLinkWireBytesTotal, "Wire bytes (body plus framing overhead) transmitted over emulated links."},
		{MEventsRaisedTotal, "Context events posted to the event manager."},
		{MEventsDeliveredTotal, "Event deliveries to subscribed streams."},
		{MEventsFilteredTotal, "Source-directed events withheld from non-matching subscribers."},
		{MEventsDroppedTotal, "Context events shed because the dispatch buffer was full (Post never blocks)."},
		{MStreamsDeployedTotal, "Stream instances deployed since startup."},
		{MSessionsTotal, "Front-end client sessions accepted since startup."},
		{MSessionConnectsTotal, "Logical sessions admitted by the session layer."},
		{MSessionDisconnectsTotal, "Logical sessions fully closed (drained and removed)."},
		{MSessionAdmitShedTotal, "Session connect attempts refused by the admission controller."},
		{MSessionLoadShedTotal, "Messages shed from admitted sessions while the shared plane was saturated."},
		{MSessionQuotaShedTotal, "Messages shed because the session's byte or message quota was exhausted."},
		{MSpanRecordedTotal, "Spans recorded into the span collector."},
		{MSpanEvictedTotal, "Spans overwritten in the collector ring before being read."},
		{MSpanBatchesTotal, "Client span batches merged back into the server collector."},
		{MFlightEventsTotal, "Plane events journaled by the flight recorder."},
		{MFlightDumpsTotal, "Flight-recorder auto-dumps captured on ExecutionFault."},
		{MTraceEvictedTotal, "Trace records evicted from the bounded trace store."},
		{MSLOViolationsTotal, "Latency-budget violations raised by the SLO tracker."},
		{MAdaptEvaluationsTotal, "Autopilot evaluation ticks across all policy engines."},
		{MAdaptActionsTotal, "Adaptations applied by when-policy rules (insert/remove/workers/param)."},
		{MAdaptSuppressedTotal, "Policy firings suppressed by cooldown or because the action was already in effect."},
		{MAdaptFailuresTotal, "Policy actions that failed to apply (e.g. drain timeout)."},
		{MAdaptReloadsTotal, "MCL hot-reloads applied to running servers."},
		{MBatchFlushesTotal, "Batched post flushes (PostN calls) across all channel queues."},
		{MFusionDefuseTotal, "Fused segments dissolved back into per-hop execution (reconfiguration, heal, workers change, or stream end)."},
		{MSessionSampleOverflowTotal, "Sessions selected by the SLO sampler but refused because the slot pool was exhausted."},
		{MSessionSLOViolationsTotal, "Per-session latency-budget violations detected on sampled sessions (edge-triggered per session)."},
		{MHealthTransitionsTotal, "Component health transitions (degraded or recovered) raised by the health model."},
		{MWatchEventsTotal, "Frames emitted to /watch subscribers."},
		{MGoGCCyclesTotal, "Completed Go GC cycles (delta-fed from runtime/metrics)."},
	} {
		r.Counter(c.name, c.help, nil)
	}
	// Hot-path occupancy counts are integer gauges (single atomic add per
	// update); the remaining gauges carry float values and stay Gauge.
	for _, g := range []struct{ name, help string }{
		{MQueueQueuedMessages, "Messages currently queued across all channels."},
		{MQueueQueuedBytes, "Bytes currently queued across all channels (the paragraph 4.2.2 buffer occupancy)."},
		{MPoolMessages, "Messages currently held by the central pool."},
		{MPoolBytes, "Body bytes currently held by the central pool."},
		{MFusedSegments, "Stateless pipeline segments currently running as direct-call fused hops."},
		{MStreamletWorkersBusy, "Parallel streamlet workers currently executing Process."},
		{MStreamletReseqDepth, "Completions parked in resequencers waiting for an earlier sequence number."},
		{MCacheEntries, "Entries currently held by transcode caches."},
		{MCacheBytes, "Body bytes currently held by transcode caches."},
		{MSessionLive, "Logical sessions currently admitted (active or idle)."},
		{MSessionDraining, "Logical sessions disconnected but still draining in-flight messages."},
		{MSessionQueuedBytes, "Bytes admitted against session quotas and not yet released by delivery."},
		{MSessionSampled, "Sessions currently holding an SLO sampler slot."},
		{MHealthDegraded, "Components the health model currently reports degraded."},
		{MWatchClients, "Live /watch subscribers."},
		{MGoGoroutines, "Goroutines currently live in the process."},
		{MGoMaxProcs, "GOMAXPROCS worker-thread limit."},
		{MGoHeapBytes, "Heap bytes occupied by live and dead objects (runtime/metrics heap objects class)."},
		{MGoHeapObjects, "Objects currently live on the Go heap."},
	} {
		r.IntGauge(g.name, g.help, nil)
	}
	for _, g := range []struct{ name, help string }{
		{MLinkBandwidthBps, "Configured bandwidth of the most recently adjusted link (bits/s)."},
		{MLinkLossRate, "Configured loss rate of the most recently adjusted link."},
		{MStreamsActive, "Stream instances currently deployed."},
		{MSessionsActive, "Front-end client sessions currently open."},
		{MGoGCPauseP50Seconds, "Median GC stop-the-world pause over the last collection interval (0 when no pauses)."},
		{MGoGCPauseP99Seconds, "p99 GC stop-the-world pause over the last collection interval (0 when no pauses)."},
		{MGoSchedLatP99Seconds, "p99 goroutine scheduling latency over the last collection interval (0 when idle)."},
	} {
		r.Gauge(g.name, g.help, nil)
	}
	for _, h := range []struct{ name, help string }{
		{MQueuePostWaitSeconds, "Time producers spent in Post, including full-queue waits (sampled: 1 in 64 operations)."},
		{MQueueFetchWaitSeconds, "Time consumers blocked in Fetch, including idle waiting for traffic (sampled: 1 in 64 operations)."},
		{MStreamletProcessSeconds, "Per-streamlet processMsg latency (Figure 7-2 quantity), labeled by streamlet id."},
		{MStreamReconfigSeconds, "Reconfiguration duration (Equation 7-1 total)."},
		{MLinkTransferSeconds, "Modelled per-message link transfer time (Equation 7-2 transfer term)."},
		{MBatchPostSize, "Items posted per batched PostN flush (count per operation, not seconds)."},
		{MBatchFetchSize, "Items drained per batched FetchN operation (count per operation, not seconds)."},
	} {
		r.Histogram(h.name, h.help, nil)
	}
}
