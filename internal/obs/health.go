package obs

// Component health model: a small rule engine that folds the gateway's
// existing failure counters into a per-subsystem healthy/degraded verdict
// and an overall up/down answer for /healthz. Components degrade
// immediately when their failure signal moves between evaluations (one
// shed is one too many — the counters only grow under real pressure) and
// recover only after recoverTicks consecutive clean evaluations, so a
// flapping subsystem reads as degraded rather than oscillating. All
// transitions are edge-triggered: each one lands in the flight recorder
// (FlightHealthDegraded / FlightHealthRecovered), bumps
// mobigate_health_transitions_total, and reaches the optional callback the
// server layer wires to HEALTH_* context events.

import (
	"sync"
)

// healthRecoverTicks is how many consecutive clean evaluations a degraded
// component needs before it reads healthy again.
const healthRecoverTicks = 3

// HealthComponent is one evaluated subsystem. Check runs on every Eval and
// reports healthy, plus a reason and the offending reading when degraded.
// Checks built on cumulative counters keep their own baseline and report
// per-eval deltas (see counterCheck).
type HealthComponent struct {
	Name  string
	Check func() (healthy bool, reason string, value int64)
}

// ComponentHealth is one component's state in a /healthz snapshot.
type ComponentHealth struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// Reason carries the latest degradation cause ("" while healthy).
	Reason string `json:"reason,omitempty"`
	// SinceNs is the MonoNow stamp of the last transition (0 before any).
	SinceNs int64 `json:"sinceNs,omitempty"`
}

// HealthSnapshot is the /healthz document.
type HealthSnapshot struct {
	// Healthy is the conjunction over components: false degrades the
	// endpoint to 503.
	Healthy     bool              `json:"healthy"`
	Components  []ComponentHealth `json:"components"`
	Transitions uint64            `json:"transitions"`
}

type healthState struct {
	comp        HealthComponent
	healthy     bool
	reason      string
	sinceNs     int64
	cleanStreak int
}

// HealthModel evaluates a fixed component set. Eval is cheap (one counter
// read per component) and is driven by whoever needs a fresh verdict —
// the /healthz handler evaluates per scrape, experiments evaluate inline.
type HealthModel struct {
	mu           sync.Mutex
	states       []*healthState
	baselined    bool
	onTransition func(name string, healthy bool, reason string)

	degraded    *IntGauge // nil-safe; the default model wires the catalog
	transitions *Counter
}

// NewHealthModel creates a model over the given components, all initially
// healthy. The first Eval only baselines delta checks.
func NewHealthModel(components ...HealthComponent) *HealthModel {
	m := &HealthModel{}
	for _, c := range components {
		m.states = append(m.states, &healthState{comp: c, healthy: true})
	}
	return m
}

// counterCheck adapts a cumulative failure counter into a health check:
// healthy iff the counter did not move since the previous call. The first
// call baselines and always reads healthy, so counters accrued before the
// model existed are not charged against it.
func counterCheck(reason string, read func() uint64) func() (bool, string, int64) {
	var prev uint64
	var primed bool
	return func() (bool, string, int64) {
		v := read()
		d := v - prev
		prev = v
		if !primed {
			primed = true
			return true, "", 0
		}
		if d > 0 {
			return false, reason, int64(d)
		}
		return true, "", 0
	}
}

// counterValue reads a registry counter lazily so the model can be built
// before the catalog (tests) without racing registration.
func counterValue(name string) func() uint64 {
	return func() uint64 { return DefaultCounter(name).Value() }
}

var defaultHealth = func() *HealthModel {
	m := NewHealthModel(
		HealthComponent{Name: "queues", Check: counterCheck("queue drops",
			counterValue(MQueueDropTotal))},
		HealthComponent{Name: "planes", Check: counterCheck("session load/quota sheds", func() uint64 {
			return DefaultCounter(MSessionLoadShedTotal).Value() + DefaultCounter(MSessionQuotaShedTotal).Value()
		})},
		HealthComponent{Name: "admission", Check: counterCheck("admission sheds",
			counterValue(MSessionAdmitShedTotal))},
		HealthComponent{Name: "autopilot", Check: counterCheck("adaptation action failures",
			counterValue(MAdaptFailuresTotal))},
		HealthComponent{Name: "link", Check: func() (bool, string, int64) {
			if p := linkProbe.Load(); p != nil && (*p)() {
				return false, "link down", 1
			}
			return true, "", 0
		}},
	)
	m.degraded = DefaultIntGauge(MHealthDegraded)
	m.transitions = DefaultCounter(MHealthTransitionsTotal)
	return m
}()

// Health returns the shared gateway-wide model.
func Health() *HealthModel { return defaultHealth }

// linkProbe is the default model's pluggable link-state probe (the server
// layer wires it to the emulated link's Down()).
var linkProbe atomicLinkProbe

type atomicLinkProbe struct {
	mu sync.Mutex
	f  *func() bool
}

func (p *atomicLinkProbe) Load() *func() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.f
}

func (p *atomicLinkProbe) Store(f func() bool) {
	p.mu.Lock()
	p.f = &f
	p.mu.Unlock()
}

// SetLinkProbe wires the default model's link component to a liveness
// probe returning true while the link is down (nil detaches it).
func SetLinkProbe(down func() bool) {
	if down == nil {
		linkProbe.mu.Lock()
		linkProbe.f = nil
		linkProbe.mu.Unlock()
		return
	}
	linkProbe.Store(down)
}

// SetOnTransition registers a callback fired on every edge transition
// (degraded and recovered), on the evaluating goroutine.
func (m *HealthModel) SetOnTransition(f func(name string, healthy bool, reason string)) {
	m.mu.Lock()
	m.onTransition = f
	m.mu.Unlock()
}

// Eval runs every component check once and returns the resulting
// snapshot. The very first Eval baselines counter deltas and cannot
// degrade anything.
func (m *HealthModel) Eval() HealthSnapshot {
	m.mu.Lock()
	firstEval := !m.baselined
	m.baselined = true
	type transition struct {
		name    string
		healthy bool
		reason  string
		value   int64
	}
	var fired []transition
	degradedCount := 0
	for _, st := range m.states {
		healthy, reason, value := st.comp.Check()
		if firstEval {
			healthy, reason = true, ""
		}
		switch {
		case !healthy && st.healthy:
			st.healthy = false
			st.reason = reason
			st.sinceNs = MonoNow()
			st.cleanStreak = 0
			fired = append(fired, transition{st.comp.Name, false, reason, value})
		case !healthy:
			st.reason = reason // refresh the cause while still degraded
			st.cleanStreak = 0
		case healthy && !st.healthy:
			st.cleanStreak++
			if st.cleanStreak >= healthRecoverTicks {
				st.healthy = true
				st.reason = ""
				st.sinceNs = MonoNow()
				fired = append(fired, transition{st.comp.Name, true, "", 0})
			}
		}
		if !st.healthy {
			degradedCount++
		}
	}
	if m.transitions != nil {
		for range fired {
			m.transitions.Inc()
		}
	}
	snap := m.snapshotLocked()
	if m.degraded != nil {
		m.degraded.Set(int64(degradedCount))
	}
	onTransition := m.onTransition
	m.mu.Unlock()

	for _, t := range fired {
		code := FlightHealthRecovered
		if !t.healthy {
			code = FlightHealthDegraded
		}
		FlightRecord(code, t.name, t.reason, t.value)
		if onTransition != nil {
			onTransition(t.name, t.healthy, t.reason)
		}
	}
	return snap
}

// Snapshot returns the current verdict without re-evaluating checks.
func (m *HealthModel) Snapshot() HealthSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

func (m *HealthModel) snapshotLocked() HealthSnapshot {
	snap := HealthSnapshot{Healthy: true}
	for _, st := range m.states {
		snap.Components = append(snap.Components, ComponentHealth{
			Name: st.comp.Name, Healthy: st.healthy, Reason: st.reason, SinceNs: st.sinceNs,
		})
		if !st.healthy {
			snap.Healthy = false
		}
	}
	if m.transitions != nil {
		snap.Transitions = m.transitions.Value()
	}
	return snap
}
