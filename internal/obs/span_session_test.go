package obs

// Regression tests for per-collector span-ID namespacing. The bug these
// lock in: collectors seeded their ID counter at site<<32, so every client
// session's collector minted the same sequence (2^32+1, 2^32+2, …). At
// high session counts — or across one session's reconnect — merged batches
// carried duplicate SpanIDs, and BuildSpanTree (nodes keyed by SpanID)
// cross-wired parent links between unrelated sessions' spans.

import (
	"sync"
	"testing"
)

// TestSpanIDNoCollisionAcrossSessions mints IDs from many concurrently
// created client-session collectors and requires global uniqueness. Run
// with -race. Fails on the pre-fix code at the second collector.
func TestSpanIDNoCollisionAcrossSessions(t *testing.T) {
	const (
		sessions   = 512
		perSession = 64
	)
	var wg sync.WaitGroup
	ids := make([][]uint64, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			col := NewSpanCollector(4, MonoNow, SiteClient)
			out := make([]uint64, perSession)
			for i := range out {
				out[i] = col.NextID()
			}
			ids[s] = out
		}(s)
	}
	wg.Wait()
	seen := make(map[uint64]int, sessions*perSession)
	for s, out := range ids {
		for _, id := range out {
			if prev, dup := seen[id]; dup {
				t.Fatalf("span ID %#x minted by both session %d and session %d", id, prev, s)
			}
			seen[id] = s
		}
	}
}

// TestSpanTreeSurvivesSessionMerge reconstructs one trace whose client
// spans come from two different session collectors. Pre-fix both sessions
// minted the same SpanID, so the merged tree lost one peer span and
// re-parented its child under the other session's span.
func TestSpanTreeSurvivesSessionMerge(t *testing.T) {
	srv := NewSpanCollector(16, MonoNow, SiteServer)
	trace := srv.NextID()
	rootID := srv.NextID()
	srv.Record(Span{TraceID: trace, SpanID: rootID, Kind: SpanProcess, Name: "root", StartNs: 1, DurNs: 10})

	// Two client sessions each contribute a peer span under the root, plus
	// a grandchild under their own peer span.
	var batch []Span
	for s := 0; s < 2; s++ {
		cl := NewSpanCollector(16, MonoNow, SiteClient)
		peer := cl.NextID()
		child := cl.NextID()
		batch = append(batch,
			Span{TraceID: trace, SpanID: peer, ParentID: rootID, Kind: SpanPeer, Name: "peer", StartNs: 2, DurNs: 4},
			Span{TraceID: trace, SpanID: child, ParentID: peer, Kind: SpanPeer, Name: "leaf", StartNs: 3, DurNs: 1},
		)
	}
	srv.MergeBatch(batch, 0)

	var spans []Span
	for _, sp := range srv.Drain() {
		if sp.TraceID == trace {
			spans = append(spans, sp)
		}
	}
	if len(spans) != 5 {
		t.Fatalf("drained %d spans, want 5", len(spans))
	}
	roots := BuildSpanTree(spans)
	if len(roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(roots))
	}
	if got := len(roots[0].Children); got != 2 {
		t.Fatalf("root has %d peer children, want 2 (one per session)", got)
	}
	for _, peer := range roots[0].Children {
		if len(peer.Children) != 1 {
			t.Fatalf("peer span has %d children, want its own leaf", len(peer.Children))
		}
	}
	if !SpanTreeConnected(spans) {
		t.Fatal("merged multi-session trace is not a single connected tree")
	}
}
