package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecordAndSnapshotOrder(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(FlightSuspend, "s1", "", 0)
	f.Record(FlightActivate, "s1", "", 0)
	f.Record(FlightBandwidth, "link", "step 1: 0 -> 9600 bps", 9600)
	d := f.Snapshot(0)
	if d.Total != 3 || len(d.Events) != 3 || d.Truncated {
		t.Fatalf("snapshot = total %d, %d events, truncated %v", d.Total, len(d.Events), d.Truncated)
	}
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].Seq <= d.Events[i-1].Seq {
			t.Fatalf("events out of sequence order: %v", d.Events)
		}
	}
	if d.Events[2].Code != FlightBandwidth || d.Events[2].Value != 9600 {
		t.Errorf("last event = %+v", d.Events[2])
	}
}

func TestFlightSnapshotTruncatesOldest(t *testing.T) {
	f := NewFlightRecorder(32)
	for i := 0; i < 100; i++ {
		f.Record(FlightEvent, "e", "", int64(i))
	}
	d := f.Snapshot(10)
	if !d.Truncated || len(d.Events) != 10 {
		t.Fatalf("truncated=%v events=%d, want true/10", d.Truncated, len(d.Events))
	}
	if d.Total != 100 {
		t.Errorf("Total = %d, want 100 (pre-truncation)", d.Total)
	}
	// The newest entries survive truncation.
	if got := d.Events[len(d.Events)-1].Value; got != 99 {
		t.Errorf("newest surviving value = %d, want 99", got)
	}
}

func TestFlightRingOverwrite(t *testing.T) {
	f := NewFlightRecorder(4) // 8 shards × 4 = retains the newest 32
	for i := 0; i < 200; i++ {
		f.Record(FlightEvent, "e", "", int64(i))
	}
	d := f.Snapshot(0)
	if d.Total != 32 {
		t.Fatalf("retained %d entries, want 32", d.Total)
	}
	for _, e := range d.Events {
		if e.Value < 200-32 {
			t.Errorf("stale entry %d survived ring overwrite", e.Value)
		}
	}
}

func TestFlightAutoDumpAndLastDump(t *testing.T) {
	f := NewFlightRecorder(16)
	if _, ok := f.LastDump(); ok {
		t.Fatal("LastDump reported a dump before any was captured")
	}
	f.Record(FlightFault, "tc#1", "panic m-7", 0)
	d := f.AutoDump("ExecutionFault:STREAMLET_PANIC stream=web")
	if d.Reason == "" || len(d.Events) != 1 {
		t.Fatalf("auto dump = %+v", d)
	}
	got, ok := f.LastDump()
	if !ok || !strings.Contains(got.Reason, "STREAMLET_PANIC") {
		t.Fatalf("LastDump = %+v, %v", got, ok)
	}
	if f.Dumps() != 1 {
		t.Errorf("Dumps = %d, want 1", f.Dumps())
	}
}

func TestFlightCodeNames(t *testing.T) {
	if FlightSLO.String() != "slo" || FlightEnqueue.String() != "enqueue" {
		t.Errorf("code names wrong: %s %s", FlightSLO, FlightEnqueue)
	}
	if got := FlightCode(200).String(); got != "code-200" {
		t.Errorf("out-of-range code = %q", got)
	}
}

func TestFlightEntryJSONRoundTrip(t *testing.T) {
	in := FlightEntry{Seq: 7, TsNs: 123, Code: FlightBlackout, Subject: "link", Detail: "step 2", Value: 9600}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"blackout"`) {
		t.Errorf("code not marshalled by name: %s", data)
	}
	var out FlightEntry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v -> %+v", in, out)
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(FlightEvent, "e", "", 0)
				_ = f.Snapshot(16)
			}
		}()
	}
	wg.Wait()
	if f.Events() != 1600 {
		t.Errorf("Events = %d, want 1600", f.Events())
	}
}
