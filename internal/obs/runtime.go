package obs

// Runtime self-stats: a collector that folds the Go runtime's own metrics
// (runtime/metrics) into the registry as go_* series, so one /metrics
// scrape shows the gateway's application counters and the runtime health
// they ride on — heap growth, GC pause quantiles, goroutine population,
// scheduler latency — without a second exporter process.
//
// Cumulative runtime series (GC cycles) feed registry counters by delta;
// distribution series (GC pauses, scheduler latencies) are reduced to
// point quantiles over the *per-tick* bucket-count deltas, so a quiet
// interval reports 0 rather than replaying the process-lifetime histogram
// forever.

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// runtime/metrics sample names the collector reads.
const (
	rmHeapBytes   = "/memory/classes/heap/objects:bytes"
	rmHeapObjects = "/gc/heap/objects:objects"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmGomaxprocs  = "/sched/gomaxprocs:threads"
	rmGCPauses    = "/gc/pauses:seconds"
	rmSchedLat    = "/sched/latencies:seconds"
)

// RuntimeCollector publishes runtime/metrics readings into a registry.
// Collect is cheap (one metrics.Read over seven samples) and safe to call
// from any goroutine; Start runs it on a ticker.
type RuntimeCollector struct {
	samples []metrics.Sample

	heapBytes   *IntGauge
	heapObjects *IntGauge
	goroutines  *IntGauge
	gomaxprocs  *IntGauge
	gcCycles    *Counter
	gcPauseP50  *Gauge
	gcPauseP99  *Gauge
	schedLatP99 *Gauge

	mu           sync.Mutex
	prevGCCycles uint64
	prevPauses   []uint64
	prevSched    []uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewRuntimeCollector creates a collector publishing into r (nil selects
// the default registry, whose go_* series are catalog-registered).
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	if r == nil {
		r = Default()
	}
	c := &RuntimeCollector{
		samples: []metrics.Sample{
			{Name: rmHeapBytes}, {Name: rmHeapObjects}, {Name: rmGCCycles},
			{Name: rmGoroutines}, {Name: rmGomaxprocs}, {Name: rmGCPauses},
			{Name: rmSchedLat},
		},
		heapBytes:   r.IntGauge(MGoHeapBytes, "", nil),
		heapObjects: r.IntGauge(MGoHeapObjects, "", nil),
		goroutines:  r.IntGauge(MGoGoroutines, "", nil),
		gomaxprocs:  r.IntGauge(MGoMaxProcs, "", nil),
		gcCycles:    r.Counter(MGoGCCyclesTotal, "", nil),
		gcPauseP50:  r.Gauge(MGoGCPauseP50Seconds, "", nil),
		gcPauseP99:  r.Gauge(MGoGCPauseP99Seconds, "", nil),
		schedLatP99: r.Gauge(MGoSchedLatP99Seconds, "", nil),
	}
	return c
}

var defaultRuntime = NewRuntimeCollector(nil)

// Runtime returns the shared collector over the default registry.
func Runtime() *RuntimeCollector { return defaultRuntime }

// Collect reads the runtime and updates the registry once.
func (c *RuntimeCollector) Collect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case rmHeapBytes:
			c.heapBytes.Set(int64(s.Value.Uint64()))
		case rmHeapObjects:
			c.heapObjects.Set(int64(s.Value.Uint64()))
		case rmGoroutines:
			c.goroutines.Set(int64(s.Value.Uint64()))
		case rmGomaxprocs:
			c.gomaxprocs.Set(int64(s.Value.Uint64()))
		case rmGCCycles:
			v := s.Value.Uint64()
			if v > c.prevGCCycles {
				c.gcCycles.Add(v - c.prevGCCycles)
			}
			c.prevGCCycles = v
		case rmGCPauses:
			h := s.Value.Float64Histogram()
			if h != nil {
				c.prevPauses = c.publishHistQuantiles(h, c.prevPauses,
					[]quantileGauge{{0.50, c.gcPauseP50}, {0.99, c.gcPauseP99}})
			}
		case rmSchedLat:
			h := s.Value.Float64Histogram()
			if h != nil {
				c.prevSched = c.publishHistQuantiles(h, c.prevSched,
					[]quantileGauge{{0.99, c.schedLatP99}})
			}
		}
	}
}

type quantileGauge struct {
	q float64
	g *Gauge
}

// publishHistQuantiles reduces a cumulative Float64Histogram to point
// quantiles over the counts accrued since the previous call, sets the
// gauges (0 when the interval saw no samples), and returns the new
// baseline counts.
func (c *RuntimeCollector) publishHistQuantiles(h *metrics.Float64Histogram, prev []uint64, out []quantileGauge) []uint64 {
	cur := make([]uint64, len(h.Counts))
	copy(cur, h.Counts)
	delta := make([]uint64, len(cur))
	total := uint64(0)
	for i, v := range cur {
		d := v
		if i < len(prev) && prev[i] <= v {
			d = v - prev[i]
		}
		delta[i] = d
		total += d
	}
	for _, qg := range out {
		qg.g.Set(histQuantile(h.Buckets, delta, total, qg.q))
	}
	return cur
}

// histQuantile picks the q-th quantile from bucketed counts, returning the
// bucket midpoint (clamping the ±Inf edge buckets to their finite bound).
func histQuantile(buckets []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	seen := uint64(0)
	for i, n := range counts {
		seen += n
		if seen >= rank {
			lo, hi := buckets[i], buckets[i+1]
			switch {
			case math.IsInf(lo, -1):
				return hi
			case math.IsInf(hi, 1):
				return lo
			default:
				return (lo + hi) / 2
			}
		}
	}
	return 0
}

// Start collects now and then every interval (<=0 selects 5s) until Close.
func (c *RuntimeCollector) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	c.Collect()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Collect()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the ticker started by Start (idempotent; a never-started
// collector closes as a no-op).
func (c *RuntimeCollector) Close() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.mu.Unlock()
	if stop == nil {
		return
	}
	c.once.Do(func() { close(stop) })
	<-done
}
