package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestSpanContextCodecRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{TraceID: 1, ParentID: 2, StartNs: 3},
		{TraceID: 0xdeadbeef, ParentID: 1<<32 + 7, StartNs: -42},
		{TraceID: ^uint64(0), ParentID: 0, StartNs: 1<<62 + 1},
	}
	for _, c := range cases {
		got := ParseSpanContext(EncodeSpanContext(c))
		if got != c {
			t.Errorf("round trip %+v -> %+v", c, got)
		}
	}
}

func TestParseSpanContextMalformed(t *testing.T) {
	for _, s := range []string{
		"", "abc", "1~2", "~~", "zz~1~2", "1~zz~2", "1~2~zz", "1~2~", "0~0~0",
	} {
		if c := ParseSpanContext(s); c.Valid() {
			t.Errorf("ParseSpanContext(%q) = %+v, want invalid", s, c)
		}
	}
}

func TestSpanCollectorSiteIDSpaces(t *testing.T) {
	srv := NewSpanCollector(16, MonoNow, SiteServer)
	cl := NewSpanCollector(16, MonoNow, SiteClient)
	if id := srv.NextID(); id>>56 != uint64(SiteServer) {
		t.Errorf("server ID %#x not tagged with the server site", id)
	}
	if id := cl.NextID(); id>>56 != uint64(SiteClient) {
		t.Errorf("client ID %#x not tagged with the client site", id)
	}
	// Every collector — not just every site — mints from its own namespace:
	// two client sessions' collectors must never produce the same ID.
	cl2 := NewSpanCollector(16, MonoNow, SiteClient)
	a, b := cl.NextID(), cl2.NextID()
	if a>>32 == b>>32 {
		t.Errorf("two client collectors share an ID namespace: %#x vs %#x", a, b)
	}
	// The shared default collector is the process's first, so it keeps the
	// low ID range the codec and tests have always seen.
	if id := Spans().NextID(); id>>32 != 0 {
		t.Errorf("default collector ID %#x outside the base namespace", id)
	}
}

func TestSpanCollectorTraceShardingAndOverwrite(t *testing.T) {
	c := NewSpanCollector(4, MonoNow, SiteServer)
	// One trace lives in one shard; 6 spans into a 4-slot ring keeps the
	// newest 4 and counts the 2 evictions.
	for i := 1; i <= 6; i++ {
		c.Record(Span{TraceID: 9, SpanID: uint64(i), Kind: SpanProcess})
	}
	got := c.Trace(9)
	if len(got) != 4 {
		t.Fatalf("Trace retained %d spans, want 4", len(got))
	}
	for _, sp := range got {
		if sp.SpanID <= 2 {
			t.Errorf("oldest span %d survived overwrite", sp.SpanID)
		}
	}
}

func TestSpanCollectorDrainEmptiesRings(t *testing.T) {
	c := NewSpanCollector(8, MonoNow, SiteClient)
	for i := 0; i < 5; i++ {
		c.Record(Span{TraceID: uint64(i + 1), SpanID: c.NextID()})
	}
	batch := c.Drain()
	if len(batch) != 5 {
		t.Fatalf("Drain returned %d spans, want 5", len(batch))
	}
	if rest := c.Drain(); len(rest) != 0 {
		t.Errorf("second Drain returned %d spans, want 0", len(rest))
	}
}

func TestSpanBatchCodecRoundTrip(t *testing.T) {
	in := []Span{
		{TraceID: 7, SpanID: 1<<32 + 1, ParentID: 3, Kind: SpanPeer,
			Site: SiteClient, Name: "text/decompress", StartNs: 123, DurNs: 456, Bytes: 789},
		{TraceID: 7, SpanID: 1<<32 + 2, ParentID: 1<<32 + 1, Kind: SpanPeer,
			Site: SiteClient, Name: "crypt/decrypt", StartNs: -5, DurNs: 0, Bytes: 0},
	}
	out := DecodeSpanBatch(EncodeSpanBatch(in))
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("span %d: %+v != %+v", i, out[i], in[i])
		}
	}
	if got := DecodeSpanBatch(""); len(got) != 0 {
		t.Errorf("empty batch decoded to %d spans", len(got))
	}
}

func TestAlignClocks(t *testing.T) {
	var local int64 = 1000
	localClock := func() int64 { local += 10; return local }
	skew := int64(-3_000_000)
	remoteClock := func() int64 { return local + skew }
	off := AlignClocks(localClock, remoteClock)
	// remote + offset ≈ local, so offset ≈ -skew (within the handshake RTT).
	if diff := off + skew; diff < -100 || diff > 100 {
		t.Errorf("offset %d does not cancel skew %d", off, skew)
	}
}

func TestMergeBatchRebasesClientSpans(t *testing.T) {
	c := NewSpanCollector(16, MonoNow, SiteServer)
	c.MergeBatch([]Span{{TraceID: 5, SpanID: 1 << 32, StartNs: 100, DurNs: 7}}, 900)
	got := c.Trace(5)
	if len(got) != 1 {
		t.Fatalf("merged trace has %d spans, want 1", len(got))
	}
	if got[0].StartNs != 1000 {
		t.Errorf("merged StartNs = %d, want 1000", got[0].StartNs)
	}
}

// treeFixture is a connected three-span tree with a client leaf.
func treeFixture() []Span {
	return []Span{
		{TraceID: 1, SpanID: 1, Kind: SpanInlet, Name: "in", StartNs: 0, DurNs: 100},
		{TraceID: 1, SpanID: 2, ParentID: 1, Kind: SpanLink, Name: "link", StartNs: 50, DurNs: 200},
		{TraceID: 1, SpanID: 3, ParentID: 2, Kind: SpanPeer, Site: SiteClient,
			Name: "peer", StartNs: 260, DurNs: 40},
	}
}

func TestSpanTreeConnected(t *testing.T) {
	if !SpanTreeConnected(treeFixture()) {
		t.Error("fixture tree reported disconnected")
	}
	// Orphaned parent: span 3 points at a missing span.
	broken := treeFixture()
	broken[2].ParentID = 99
	if SpanTreeConnected(broken) {
		t.Error("orphaned span reported connected")
	}
	// Two roots.
	twoRoots := append(treeFixture(), Span{TraceID: 1, SpanID: 4, Kind: SpanInlet})
	if SpanTreeConnected(twoRoots) {
		t.Error("two-root forest reported connected")
	}
	if SpanTreeConnected(nil) {
		t.Error("empty span set reported connected")
	}
}

func TestSpanUnionNs(t *testing.T) {
	// [0,100] ∪ [50,250] ∪ [260,300] = 250 + 40: overlap counted once, the
	// 10ns gap excluded.
	if got := SpanUnionNs(treeFixture()); got != 290 {
		t.Errorf("SpanUnionNs = %d, want 290", got)
	}
	if got := SpanUnionNs(nil); got != 0 {
		t.Errorf("SpanUnionNs(nil) = %d, want 0", got)
	}
}

func TestFormatSpanTree(t *testing.T) {
	out := FormatSpanTree(BuildSpanTree(treeFixture()))
	for _, want := range []string{"inlet:in [gw]", "link:link [gw]", "peer:peer [cl]"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// Child depth: the peer leaf sits two indents under the root.
	if !strings.Contains(out, "    peer:peer") {
		t.Errorf("peer span not indented as a grandchild:\n%s", out)
	}
}

func TestSpanCollectorConcurrent(t *testing.T) {
	c := NewSpanCollector(64, MonoNow, SiteServer)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Record(Span{TraceID: uint64(g + 1), SpanID: c.NextID()})
				_ = c.Trace(uint64(g + 1))
			}
		}(g)
	}
	wg.Wait()
}
