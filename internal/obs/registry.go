// Package obs is the gateway-wide observability plane: a dependency-free
// metrics registry (atomic counters, float gauges, bounded histograms with
// p50/p95/p99) plus the per-message trace records the coordination plane
// appends as a message traverses its streamlet chain (trace.go).
//
// The package sits below every runtime package — queue, msgpool, streamlet,
// stream, netem, event, server — and imports only the standard library, so
// any layer can record into the shared default registry without creating
// import cycles. Instrumentation lives in the coordination plane (queue
// operations, the streamlet runtime wrapper, the stream reconfiguration
// protocol), never in streamlet Processor code: cross-cutting measurement
// belongs to the coordinator, exactly as the protocol-coordination
// literature prescribes.
//
// Metric names follow the Prometheus convention (snake_case, unit-suffixed,
// `_total` counters); the full catalog with the paper quantity each metric
// corresponds to is in docs/OBSERVABILITY.md and catalog.go.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an optional set of series labels. Cardinality discipline is the
// caller's job: the runtime only uses the bounded `streamlet` label (one
// series per instance id in the composition).
type Labels map[string]string

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down, stored atomically.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// IntGauge is an integer-valued gauge updated with a single atomic add.
// Occupancy counts maintained on every queue/pool operation use it instead
// of Gauge: the float Gauge's CAS loop is measurably slower on the hot path
// than one LOCK XADD, and those quantities are integers anyway.
type IntGauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *IntGauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *IntGauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *IntGauge) Value() int64 { return g.v.Load() }

// histogramWindow bounds the per-histogram sample memory: quantiles are
// computed over a sliding window of the most recent observations.
const histogramWindow = 2048

// quantileStaleNs is the idle age-out: once a window has seen no
// observation for this long, its quantiles no longer describe current
// traffic — a snapshot reports them as 0 and marks itself stale instead of
// replaying the last burst's p95/p99 forever. Lifetime count and sum are
// unaffected, and the next observation revives the window.
const quantileStaleNs = int64(60_000_000_000) // 60s

// Histogram records observations (in seconds, by convention) and reports
// count, sum and approximate quantiles over a bounded window of recent
// samples.
type Histogram struct {
	mu    sync.Mutex
	count uint64
	sum   float64
	ring  [histogramWindow]float64
	n     int   // filled slots
	next  int   // next write position
	last  int64 // MonoNow stamp of the most recent observation
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	h.ring[h.next] = v
	h.next = (h.next + 1) % histogramWindow
	if h.n < histogramWindow {
		h.n++
	}
	h.last = MonoNow()
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time view of a histogram. Quantiles are
// computed over the bounded recent-sample window; Count and Sum are
// lifetime totals. All values are in the observation unit (seconds for all
// runtime histograms). Stale marks a window idle past the age-out: its
// quantiles are reported as the 0 sentinel, not as the last burst's values.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Stale bool    `json:"stale,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshotAt(MonoNow()) }

// snapshotAt computes the snapshot against an explicit clock reading (the
// age-out regression tests drive it directly).
func (h *Histogram) snapshotAt(now int64) HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	stale := h.n > 0 && now-h.last > quantileStaleNs
	samples := make([]float64, h.n)
	copy(samples, h.ring[:h.n])
	h.mu.Unlock()
	if len(samples) == 0 {
		return s
	}
	if stale {
		s.Stale = true
		return s
	}
	sort.Float64s(samples)
	q := func(p float64) float64 {
		idx := int(p * float64(len(samples)-1))
		return samples[idx]
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		// Quantile-reporting histograms are Prometheus summaries.
		return "summary"
	}
}

// family groups every series registered under one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]any    // label key -> *Counter | *Gauge | *Histogram
	labels map[string]Labels // label key -> labels, for exposition
}

// Registry holds named metric families. The zero value is unusable; use
// NewRegistry or the shared Default registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var std = func() *Registry {
	r := NewRegistry()
	registerCatalog(r)
	return r
}()

// Default returns the shared gateway-wide registry, pre-seeded with the
// full metric catalog so the exposition endpoint reports every metric from
// startup (zero-valued until first use).
func Default() *Registry { return std }

// labelKey renders labels deterministically for series identity and output.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// seriesName renders the full series identifier (name plus label set).
func seriesName(name, lk string) string {
	if lk == "" {
		return name
	}
	return name + "{" + lk + "}"
}

func (r *Registry) metric(name, help string, kind metricKind, labels Labels, mk func() any) any {
	lk := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if m, ok := f.series[lk]; ok && f.kind == kind {
			r.mu.RUnlock()
			return m
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind,
			series: make(map[string]any), labels: make(map[string]Labels)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	m, ok := f.series[lk]
	if !ok {
		m = mk()
		f.series[lk] = m
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		f.labels[lk] = cp
	}
	return m
}

// Counter returns the counter series for name+labels, creating it on first
// use. help is recorded the first time it is non-empty.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.metric(name, help, counterKind, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name+labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.metric(name, help, gaugeKind, labels, func() any { return &Gauge{} }).(*Gauge)
}

// IntGauge returns the integer gauge series for name+labels. A metric name
// is either a Gauge or an IntGauge for its whole lifetime; both expose as
// the Prometheus gauge type.
func (r *Registry) IntGauge(name, help string, labels Labels) *IntGauge {
	return r.metric(name, help, gaugeKind, labels, func() any { return &IntGauge{} }).(*IntGauge)
}

// Histogram returns the histogram series for name+labels.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.metric(name, help, histogramKind, labels, func() any { return &Histogram{} }).(*Histogram)
}

// DefaultCounter returns an unlabeled counter from the default registry;
// catalog metrics carry their help text from pre-registration.
func DefaultCounter(name string) *Counter { return std.Counter(name, "", nil) }

// DefaultGauge returns an unlabeled gauge from the default registry.
func DefaultGauge(name string) *Gauge { return std.Gauge(name, "", nil) }

// DefaultIntGauge returns an unlabeled integer gauge from the default
// registry.
func DefaultIntGauge(name string) *IntGauge { return std.IntGauge(name, "", nil) }

// DefaultHistogram returns a histogram from the default registry; labels
// may be nil for the unlabeled series.
func DefaultHistogram(name string, labels Labels) *Histogram {
	return std.Histogram(name, "", labels)
}

// sortedFamilies returns the families in name order (snapshot of pointers;
// family contents are read under the registry lock by the callers below).
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns a family's label keys in deterministic order.
func (r *Registry) sortedSeries(f *family) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(f.series))
	for lk := range f.series {
		keys = append(keys, lk)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered as summaries with
// quantile series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, lk := range r.sortedSeries(f) {
			r.mu.RLock()
			m := f.series[lk]
			r.mu.RUnlock()
			var err error
			switch v := m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s %d\n", seriesName(f.name, lk), v.Value())
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s %g\n", seriesName(f.name, lk), v.Value())
			case *IntGauge:
				_, err = fmt.Fprintf(w, "%s %d\n", seriesName(f.name, lk), v.Value())
			case *Histogram:
				s := v.Snapshot()
				for _, qv := range []struct {
					q string
					v float64
				}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
					ql := lk
					if ql != "" {
						ql += ","
					}
					ql += `quantile="` + qv.q + `"`
					if _, err = fmt.Fprintf(w, "%s %g\n", seriesName(f.name, ql), qv.v); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s %g\n", seriesName(f.name+"_sum", lk), s.Sum); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", lk), s.Count)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// SnapshotValues flattens every series to a name → value map using the
// Prometheus series identities (histograms expand to their quantile series
// plus _sum and _count). The /watch streamer diffs consecutive snapshots to
// emit delta frames.
func (r *Registry) SnapshotValues() map[string]float64 {
	out := make(map[string]float64, 128)
	for _, f := range r.sortedFamilies() {
		for _, lk := range r.sortedSeries(f) {
			r.mu.RLock()
			m := f.series[lk]
			r.mu.RUnlock()
			switch v := m.(type) {
			case *Counter:
				out[seriesName(f.name, lk)] = float64(v.Value())
			case *Gauge:
				out[seriesName(f.name, lk)] = v.Value()
			case *IntGauge:
				out[seriesName(f.name, lk)] = float64(v.Value())
			case *Histogram:
				s := v.Snapshot()
				for _, qv := range []struct {
					q string
					v float64
				}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
					ql := lk
					if ql != "" {
						ql += ","
					}
					ql += `quantile="` + qv.q + `"`
					out[seriesName(f.name, ql)] = qv.v
				}
				out[seriesName(f.name+"_sum", lk)] = s.Sum
				out[seriesName(f.name+"_count", lk)] = float64(s.Count)
			}
		}
	}
	return out
}

// jsonMetric is one series in the JSON exposition.
type jsonMetric struct {
	Type      string             `json:"type"`
	Help      string             `json:"help,omitempty"`
	Value     *float64           `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// WriteJSON renders every series as a JSON object keyed by series name.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]jsonMetric)
	for _, f := range r.sortedFamilies() {
		for _, lk := range r.sortedSeries(f) {
			r.mu.RLock()
			m := f.series[lk]
			r.mu.RUnlock()
			jm := jsonMetric{Type: f.kind.String(), Help: f.help}
			switch v := m.(type) {
			case *Counter:
				fv := float64(v.Value())
				jm.Value = &fv
			case *Gauge:
				fv := v.Value()
				jm.Value = &fv
			case *IntGauge:
				fv := float64(v.Value())
				jm.Value = &fv
			case *Histogram:
				s := v.Snapshot()
				jm.Histogram = &s
			}
			out[seriesName(f.name, lk)] = jm
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
