package obs

// Session-scale observability: per-session SLO sampling and a heavy-hitter
// tracker, both sized for a gateway multiplexing 100k+ logical sessions
// onto a handful of shared planes.
//
// Tracking a latency window per session would cost ~2 KB × population —
// megabytes of permanently hot memory for accounting the paper says the
// coordinator should own (§7.3). Instead the sampler selects a
// deterministic ~1/rate subset by session-id hash (the same FNV-1a the
// session table shards by, so selection is free on the connect path and
// stable across reconnects of the same id) and attaches a fixed-pool slot
// only to selected sessions. The slot observe path is atomics-only — a
// sampled session's post/release hot path stays at 0 allocs/op, gated by
// BenchmarkSessionSLOSample.
//
// The heavy-hitter tracker answers the complementary question — which
// sessions are the worst, not which are representative — with a bounded
// space-saving sketch over *every* session's releases and sheds: when a
// shard is full, the entry with the smallest message count is displaced
// and the newcomer inherits that count (the classic space-saving error
// bound on the frequency dimension; byte/shed/violation tallies restart).
// Both surfaces are served as one JSON snapshot on /sessions.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// sessionSlotWindow bounds one sampled session's latency ring (ns samples).
const sessionSlotWindow = 256

// defaultSampleRate selects ~1 in 64 sessions (must be a power of two).
const defaultSampleRate = 64

// defaultSlotPool bounds the sampler's slot pool; selections past the pool
// are counted as overflow and tracked plane-level only.
const defaultSlotPool = 1024

// hhShards is the heavy-hitter lock fan-out.
const hhShards = 16

// defaultHHPerShard bounds each heavy-hitter shard's entry count, so the
// sketch retains at most hhShards*defaultHHPerShard sessions.
const defaultHHPerShard = 64

// SessionSlot is one sampled session's latency window. The owning session
// stores the pointer at connect and observes into it on every delivered
// release: atomics only, no allocation, no lock.
type SessionSlot struct {
	ring [sessionSlotWindow]atomic.Int64
	// writes counts lifetime observations; the write index is writes mod
	// the window. Concurrent releases claim distinct indices with one Add.
	writes      atomic.Uint64
	last        atomic.Int64
	violations  atomic.Uint64
	inViolation atomic.Bool

	id string // owning session id; written under the sampler lock
}

// Observe records one delivered-message latency and applies the budget
// (<=0: no budget). It reports true on an edge-triggered violation — the
// first over-budget observation after a compliant one — so the caller can
// count it without the slot importing the caller's metrics.
func (sl *SessionSlot) Observe(latencyNs, budgetNs int64) bool {
	idx := (sl.writes.Add(1) - 1) % sessionSlotWindow
	sl.ring[idx].Store(latencyNs)
	sl.last.Store(MonoNow())
	if budgetNs <= 0 {
		return false
	}
	if latencyNs > budgetNs {
		if sl.inViolation.CompareAndSwap(false, true) {
			sl.violations.Add(1)
			return true
		}
		return false
	}
	sl.inViolation.Store(false)
	return false
}

// SessionSLOSample is the snapshot of one sampled session.
type SessionSLOSample struct {
	ID          string `json:"id"`
	Count       uint64 `json:"count"`
	P50Ns       int64  `json:"p50Ns"`
	P95Ns       int64  `json:"p95Ns"`
	P99Ns       int64  `json:"p99Ns"`
	Violations  uint64 `json:"violations"`
	InViolation bool   `json:"inViolation"`
	Stale       bool   `json:"stale,omitempty"`
}

// snapshotAt renders the slot; quantiles follow the registry age-out rule.
// The ring is read racily against concurrent observes — each cell is a
// single atomic load, and a torn window only blurs quantiles by one sample.
func (sl *SessionSlot) snapshotAt(now int64, scratch []int64) SessionSLOSample {
	s := SessionSLOSample{
		ID:          sl.id,
		Count:       sl.writes.Load(),
		Violations:  sl.violations.Load(),
		InViolation: sl.inViolation.Load(),
	}
	n := int(s.Count)
	if n > sessionSlotWindow {
		n = sessionSlotWindow
	}
	if n == 0 {
		return s
	}
	if now-sl.last.Load() > quantileStaleNs {
		s.Stale = true
		return s
	}
	scratch = scratch[:0]
	for i := 0; i < n; i++ {
		scratch = append(scratch, sl.ring[i].Load())
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	q := func(p float64) int64 { return scratch[int(p*float64(len(scratch)-1))] }
	s.P50Ns, s.P95Ns, s.P99Ns = q(0.50), q(0.95), q(0.99)
	return s
}

// reset clears a slot for reuse by a new owner (called under the sampler
// lock; the previous owner has already released its last message).
func (sl *SessionSlot) reset(id string) {
	for i := range sl.ring {
		sl.ring[i].Store(0)
	}
	sl.writes.Store(0)
	sl.last.Store(0)
	sl.violations.Store(0)
	sl.inViolation.Store(false)
	sl.id = id
}

// hhEntry is one space-saving sketch entry.
type hhEntry struct {
	id         string
	bytes      int64
	msgs       uint64
	sheds      uint64
	violations uint64
}

type hhShard struct {
	mu  sync.Mutex
	m   map[string]*hhEntry
	cap int
}

// touch finds or creates the entry for id, displacing the minimum-count
// entry when the shard is full, and applies the update in place.
func (sh *hhShard) touch(id string, bytes int64, msgs, sheds, violations uint64) {
	sh.mu.Lock()
	e := sh.m[id]
	if e == nil {
		if len(sh.m) < sh.cap {
			e = &hhEntry{id: id}
		} else {
			var min *hhEntry
			for _, cand := range sh.m {
				if min == nil || cand.msgs+cand.sheds < min.msgs+min.sheds {
					min = cand
				}
			}
			delete(sh.m, min.id)
			// Space-saving: the newcomer inherits the displaced count so
			// the sketch over-estimates, never under-estimates, frequency.
			min.id, min.bytes, min.sheds, min.violations = id, 0, 0, 0
			e = min
		}
		sh.m[id] = e
	}
	e.bytes += bytes
	e.msgs += msgs
	e.sheds += sheds
	e.violations += violations
	sh.mu.Unlock()
}

// HeavyHitter is one tracked session in the /sessions top-K lists.
type HeavyHitter struct {
	ID         string `json:"id"`
	Bytes      int64  `json:"bytes"`
	Msgs       uint64 `json:"msgs"`
	Sheds      uint64 `json:"sheds"`
	Violations uint64 `json:"violations"`
}

// SessionStatsSnapshot is the /sessions document: sampler state, every
// sampled session's windowed SLO, and the heavy-hitter top-K lists.
type SessionStatsSnapshot struct {
	SampleRate int    `json:"sampleRate"`
	Sampled    int    `json:"sampled"`
	SlotCap    int    `json:"slotCap"`
	Overflow   uint64 `json:"overflow"`
	// Samples lists every sampled session, sorted by id.
	Samples []SessionSLOSample `json:"samples"`
	// Top-K heavy hitters (K bounded by the snapshot caller), each sorted
	// descending on its dimension with the session id as tiebreak.
	TopBytes      []HeavyHitter `json:"topBytes"`
	TopSheds      []HeavyHitter `json:"topSheds"`
	TopViolations []HeavyHitter `json:"topViolations"`
}

// SessionStatsCollector owns the sampler slot pool and the heavy-hitter
// sketch. One process-wide instance (SessionStats()) serves every table.
type SessionStatsCollector struct {
	rateMask uint32
	slotCap  int

	mu     sync.Mutex
	free   []*SessionSlot
	active map[*SessionSlot]struct{}
	built  int // slots allocated so far (lazily, up to slotCap)

	shards [hhShards]hhShard

	sampled  *IntGauge // nil-safe; the default collector wires the catalog
	overflow *Counter
}

// NewSessionStatsCollector creates a collector sampling ~1/rate sessions
// (rate rounded up to a power of two, <=0 selects the default) with a pool
// of slotCap slots (<=0 selects the default).
func NewSessionStatsCollector(rate, slotCap int) *SessionStatsCollector {
	if rate <= 0 {
		rate = defaultSampleRate
	}
	for rate&(rate-1) != 0 {
		rate++
	}
	if slotCap <= 0 {
		slotCap = defaultSlotPool
	}
	c := &SessionStatsCollector{
		rateMask: uint32(rate - 1),
		slotCap:  slotCap,
		active:   make(map[*SessionSlot]struct{}),
	}
	for i := range c.shards {
		c.shards[i] = hhShard{m: make(map[string]*hhEntry, defaultHHPerShard), cap: defaultHHPerShard}
	}
	return c
}

var defaultSessionStats = func() *SessionStatsCollector {
	c := NewSessionStatsCollector(defaultSampleRate, defaultSlotPool)
	c.sampled = DefaultIntGauge(MSessionSampled)
	c.overflow = DefaultCounter(MSessionSampleOverflowTotal)
	return c
}()

// SessionStats returns the shared gateway-wide collector.
func SessionStats() *SessionStatsCollector { return defaultSessionStats }

// SampleRate returns the effective 1-in-N selection rate.
func (c *SessionStatsCollector) SampleRate() int { return int(c.rateMask) + 1 }

// AcquireSlot selects-or-skips a connecting session: hash is the session
// table's FNV-1a of the id, so selection is deterministic per id and free
// to compute. Returns nil for unselected sessions and for selections past
// the slot pool (counted as overflow). Control-plane path: may allocate
// (up to slotCap slots, lazily, ~2 KB each).
func (c *SessionStatsCollector) AcquireSlot(hash uint32, id string) *SessionSlot {
	if hash&c.rateMask != 0 {
		return nil
	}
	c.mu.Lock()
	var sl *SessionSlot
	switch {
	case len(c.free) > 0:
		sl = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case c.built < c.slotCap:
		sl = &SessionSlot{}
		c.built++
	default:
		c.mu.Unlock()
		if c.overflow != nil {
			c.overflow.Inc()
		}
		return nil
	}
	sl.reset(id)
	c.active[sl] = struct{}{}
	c.mu.Unlock()
	if c.sampled != nil {
		c.sampled.Add(1)
	}
	return sl
}

// FreeSlot returns a closed session's slot to the pool. The caller must
// guarantee no further Observe can reach the slot (the session layer frees
// only after the final release).
func (c *SessionStatsCollector) FreeSlot(sl *SessionSlot) {
	if sl == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.active[sl]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.active, sl)
	c.free = append(c.free, sl)
	c.mu.Unlock()
	if c.sampled != nil {
		c.sampled.Add(-1)
	}
}

// shardFor picks the heavy-hitter shard by session hash.
func (c *SessionStatsCollector) shardFor(hash uint32) *hhShard {
	return &c.shards[hash&(hhShards-1)]
}

// ObserveRelease feeds one delivered message into the heavy-hitter sketch.
// Hot path for every session: one sharded lock and a map upsert, no
// allocation once the session's entry exists.
func (c *SessionStatsCollector) ObserveRelease(hash uint32, id string, bytes int64) {
	c.shardFor(hash).touch(id, bytes, 1, 0, 0)
}

// ObserveShed feeds one shed (quota or load) into the sketch.
func (c *SessionStatsCollector) ObserveShed(hash uint32, id string) {
	c.shardFor(hash).touch(id, 0, 0, 1, 0)
}

// ObserveViolation feeds one per-session SLO violation into the sketch.
func (c *SessionStatsCollector) ObserveViolation(hash uint32, id string) {
	c.shardFor(hash).touch(id, 0, 0, 0, 1)
}

// Snapshot renders the /sessions document with at most k entries per
// heavy-hitter list (<=0 selects 10).
func (c *SessionStatsCollector) Snapshot(k int) SessionStatsSnapshot {
	if k <= 0 {
		k = 10
	}
	now := MonoNow()
	c.mu.Lock()
	slots := make([]*SessionSlot, 0, len(c.active))
	for sl := range c.active {
		slots = append(slots, sl)
	}
	overflow := uint64(0)
	if c.overflow != nil {
		overflow = c.overflow.Value()
	}
	c.mu.Unlock()

	snap := SessionStatsSnapshot{
		SampleRate: c.SampleRate(),
		Sampled:    len(slots),
		SlotCap:    c.slotCap,
		Overflow:   overflow,
		Samples:    make([]SessionSLOSample, 0, len(slots)),
	}
	scratch := make([]int64, 0, sessionSlotWindow)
	for _, sl := range slots {
		snap.Samples = append(snap.Samples, sl.snapshotAt(now, scratch))
	}
	sort.Slice(snap.Samples, func(i, j int) bool { return snap.Samples[i].ID < snap.Samples[j].ID })

	var all []HeavyHitter
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			all = append(all, HeavyHitter{ID: e.id, Bytes: e.bytes, Msgs: e.msgs, Sheds: e.sheds, Violations: e.violations})
		}
		sh.mu.Unlock()
	}
	snap.TopBytes = topK(all, k, func(h HeavyHitter) uint64 { return uint64(h.Bytes) })
	snap.TopSheds = topK(all, k, func(h HeavyHitter) uint64 { return h.Sheds })
	snap.TopViolations = topK(all, k, func(h HeavyHitter) uint64 { return h.Violations })
	return snap
}

// topK sorts a copy descending by key (session id as the deterministic
// tiebreak), drops zero-key entries, and keeps the first k.
func topK(all []HeavyHitter, k int, key func(HeavyHitter) uint64) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(all))
	for _, h := range all {
		if key(h) > 0 {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := key(out[i]), key(out[j])
		if ki != kj {
			return ki > kj
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
