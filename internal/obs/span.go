package obs

// End-to-end span tracing across planes and the wireless link. Where the
// hop chain (trace.go) records *what each server-side hop cost* as flat
// per-message rows, spans record the same traversal as one causal tree:
// every queue wait, Process execution, msgpool forward, netem link transfer
// and client peer streamlet becomes a timed node parented on the node that
// caused it. The coordination plane — never Processor code — allocates
// span IDs, records spans into a lock-sharded fixed ring, and rewrites the
// compact span-context header each message carries so the next hop knows
// its parent.
//
// Spans are a deep-diagnosis mode and default OFF: with spans disabled the
// hot path pays exactly one atomic load per check (SpansEnabled), and with
// spans enabled a record is one shard lock plus a struct store — the ring
// is preallocated, so steady-state recording allocates nothing.
//
// The client half of a chain runs on a different "device" with its own
// monotonic clock. AlignClocks implements the handshake that measures the
// offset between the two clocks (netem is in-process, so the exchange is a
// pair of function calls bracketing the remote read), and MergeBatch files
// the client's shipped spans into the server collector with their start
// stamps rebased onto the server clock, completing the single end-to-end
// tree per message.

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// monoBase anchors the observability plane's monotonic timestamps; every
// recorder (queues, streamlets, links, the flight recorder) stamps with
// MonoNow so durations across packages subtract cleanly.
var monoBase = time.Now()

// MonoNow returns monotonic nanoseconds since process start (one nanotime
// read; no wall-clock component).
func MonoNow() int64 { return int64(time.Since(monoBase)) }

var spansOn atomic.Bool

// SpansEnabled reports whether span tracing is on (default off: spans are
// the deep-diagnosis mode; the hop chain stays on independently).
func SpansEnabled() bool { return spansOn.Load() }

// SetSpansEnabled toggles span tracing.
func SetSpansEnabled(on bool) { spansOn.Store(on) }

// SpanKind classifies what interval of a message's life a span covers.
type SpanKind uint8

const (
	// SpanInlet is the root: the application handing the message to
	// Inlet.Send (pool put + first post).
	SpanInlet SpanKind = iota
	// SpanQueue is a stay in a channel queue, from enqueue until the
	// consuming worker begins handling (pump handoff included).
	SpanQueue
	// SpanProcess is one Processor execution.
	SpanProcess
	// SpanForward is the msgpool forward of one emission (pool put +
	// Forward + post to the output queue).
	SpanForward
	// SpanLink is the modelled wireless transfer of the netem link.
	SpanLink
	// SpanPeer is one client-side peer-streamlet reversal (§6.5).
	SpanPeer
)

var spanKindNames = [...]string{"inlet", "queue", "process", "forward", "link", "peer"}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "kind-" + strconv.Itoa(int(k))
}

// Span sites: which side of the wireless link recorded the span.
const (
	SiteServer uint8 = iota
	SiteClient
)

// Span is one timed node of a message's end-to-end tree. StartNs is on the
// recording collector's monotonic clock; MergeBatch rebases client spans
// onto the server clock.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 = root
	Kind     SpanKind
	Site     uint8
	Name     string // streamlet/queue/link/peer identifier
	StartNs  int64
	DurNs    int64
	Bytes    int // body bytes at this hop (0 when not meaningful)
}

// SpanContext is the per-message trace context carried in the span header:
// the trace identity, the span the next hop should parent on, and the
// root's start stamp (server clock) so terminal hops can compute the
// end-to-end latency without parsing anything else.
type SpanContext struct {
	TraceID  uint64
	ParentID uint64
	StartNs  int64
}

// Valid reports whether the context carries a live trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// spanCtxSep separates the three span-context fields. The header value is
// traceID~parentID~rootStartNs with the IDs in hex.
const spanCtxSep = '~'

// EncodeSpanContext renders a span context as a header value.
func EncodeSpanContext(c SpanContext) string {
	var b [48]byte
	out := strconv.AppendUint(b[:0], c.TraceID, 16)
	out = append(out, spanCtxSep)
	out = strconv.AppendUint(out, c.ParentID, 16)
	out = append(out, spanCtxSep)
	out = strconv.AppendInt(out, c.StartNs, 10)
	return string(out)
}

// ParseSpanContext decodes a header value; malformed or empty input yields
// the zero (invalid) context.
func ParseSpanContext(s string) SpanContext {
	var c SpanContext
	i := strings.IndexByte(s, spanCtxSep)
	if i < 0 {
		return SpanContext{}
	}
	j := strings.IndexByte(s[i+1:], spanCtxSep)
	if j < 0 {
		return SpanContext{}
	}
	j += i + 1
	var err error
	if c.TraceID, err = strconv.ParseUint(s[:i], 16, 64); err != nil {
		return SpanContext{}
	}
	if c.ParentID, err = strconv.ParseUint(s[i+1:j], 16, 64); err != nil {
		return SpanContext{}
	}
	if c.StartNs, err = strconv.ParseInt(s[j+1:], 10, 64); err != nil {
		return SpanContext{}
	}
	return c
}

// spanShards is the lock-sharding fan-out. Spans shard by trace ID, so one
// trace's spans live in one shard and Trace scans a single ring.
const spanShards = 8

// defaultSpansPerShard bounds each ring; the collector retains the most
// recent spanShards*defaultSpansPerShard spans and overwrites the oldest.
const defaultSpansPerShard = 2048

type spanShard struct {
	mu   sync.Mutex
	ring []Span
	n    uint64 // total spans written; ring index = n % len
}

// SpanCollector records spans into fixed lock-sharded rings. One collector
// per clock domain: the server uses the shared default (Spans()), the thin
// client creates its own with its device clock.
type SpanCollector struct {
	clock func() int64
	site  uint8
	ids   atomic.Uint64

	// recorded/evicted/batches are nil-safe metric hooks; the default
	// collector wires them to the registry catalog.
	recorded *Counter
	evicted  *Counter
	batches  *Counter

	shards [spanShards]spanShard
}

// NewSpanCollector creates a collector with perShard ring capacity
// (<=0 selects the default) stamping with the given clock (nil selects
// MonoNow) and site.
func NewSpanCollector(perShard int, clock func() int64, site uint8) *SpanCollector {
	if perShard <= 0 {
		perShard = defaultSpansPerShard
	}
	if clock == nil {
		clock = MonoNow
	}
	c := &SpanCollector{clock: clock, site: site}
	// Every collector mints IDs from its own disjoint 2^32 namespace: the
	// site in the top byte and a process-global collector sequence in bits
	// 32..55. Site-only namespacing (server from 1, client from 2^32+1) is
	// not enough at gateway scale — each client session creates its own
	// collector, so two sessions (or one session across a reconnect) would
	// mint identical IDs, and merging their batches into the server
	// collector cross-wires parent links in BuildSpanTree, which keys nodes
	// by SpanID. The shared server collector is the first one created (it
	// initializes with the package), so it keeps minting from 1.
	c.ids.Store(spanIDBase(site, collectorSeq.Add(1)-1))
	for i := range c.shards {
		c.shards[i].ring = make([]Span, perShard)
	}
	return c
}

// collectorSeq hands each collector the namespace part of its span-ID
// base. 24 bits of sequence leave 2^32 IDs per collector before one
// namespace would bleed into the next — both far beyond any ring's
// lifetime — and the sequence wraps into reuse only after 16M collectors.
var collectorSeq atomic.Uint64

// spanIDBase composes a collector's ID base: site tag in the top byte,
// collector sequence in bits 32..55, per-span counter in the low 32 bits.
func spanIDBase(site uint8, seq uint64) uint64 {
	return uint64(site)<<56 | (seq&0xffffff)<<32
}

var defaultSpans = func() *SpanCollector {
	c := NewSpanCollector(defaultSpansPerShard, MonoNow, SiteServer)
	c.recorded = DefaultCounter(MSpanRecordedTotal)
	c.evicted = DefaultCounter(MSpanEvictedTotal)
	c.batches = DefaultCounter(MSpanBatchesTotal)
	return c
}()

// Spans returns the shared server-side span collector.
func Spans() *SpanCollector { return defaultSpans }

// Now reads the collector's clock.
func (c *SpanCollector) Now() int64 { return c.clock() }

// Site returns the site stamped onto recorded spans.
func (c *SpanCollector) Site() uint8 { return c.site }

// NextID mints a fresh span identifier (also used for trace IDs: both only
// need process-wide uniqueness). IDs start at 1; 0 means "none".
func (c *SpanCollector) NextID() uint64 { return c.ids.Add(1) }

// Record files one span. The span's Site is overwritten with the
// collector's; the ring overwrite of the oldest span counts as an eviction.
func (c *SpanCollector) Record(sp Span) {
	if sp.TraceID == 0 {
		return
	}
	sp.Site = c.site
	sh := &c.shards[sp.TraceID%spanShards]
	sh.mu.Lock()
	idx := sh.n % uint64(len(sh.ring))
	evict := sh.n >= uint64(len(sh.ring))
	sh.ring[idx] = sp
	sh.n++
	sh.mu.Unlock()
	if c.recorded != nil {
		c.recorded.Inc()
	}
	if evict && c.evicted != nil {
		c.evicted.Inc()
	}
}

// Trace returns every retained span of one trace, in recording order.
func (c *SpanCollector) Trace(traceID uint64) []Span {
	if traceID == 0 {
		return nil
	}
	sh := &c.shards[traceID%spanShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	filled := sh.n
	if filled > uint64(len(sh.ring)) {
		filled = uint64(len(sh.ring))
	}
	var out []Span
	start := sh.n - filled
	for i := uint64(0); i < filled; i++ {
		sp := sh.ring[(start+i)%uint64(len(sh.ring))]
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// Drain removes and returns every retained span — the client side uses it
// to assemble the batch it ships back to the gateway.
func (c *SpanCollector) Drain() []Span {
	var out []Span
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		filled := sh.n
		if filled > uint64(len(sh.ring)) {
			filled = uint64(len(sh.ring))
		}
		start := sh.n - filled
		for j := uint64(0); j < filled; j++ {
			out = append(out, sh.ring[(start+j)%uint64(len(sh.ring))])
		}
		sh.n = 0
		for j := range sh.ring {
			sh.ring[j] = Span{}
		}
		sh.mu.Unlock()
	}
	return out
}

// AlignClocks measures the offset that maps the remote clock onto the
// local one: remote + offset = local. The local clock is read before and
// after the remote read and the midpoint taken, cancelling the (in-process,
// near-zero) exchange latency — the "simple handshake" the cross-link
// merge needs.
func AlignClocks(local, remote func() int64) int64 {
	t0 := local()
	r := remote()
	t1 := local()
	return t0 + (t1-t0)/2 - r
}

// MergeBatch files a batch of spans recorded on another clock domain into
// this collector, rebasing each start stamp by offsetNs (from AlignClocks)
// onto this collector's clock. The spans keep their recorded Site.
func (c *SpanCollector) MergeBatch(batch []Span, offsetNs int64) {
	for _, sp := range batch {
		if sp.TraceID == 0 {
			continue
		}
		sp.StartNs += offsetNs
		sh := &c.shards[sp.TraceID%spanShards]
		sh.mu.Lock()
		idx := sh.n % uint64(len(sh.ring))
		evict := sh.n >= uint64(len(sh.ring))
		sh.ring[idx] = sp
		sh.n++
		sh.mu.Unlock()
		if c.recorded != nil {
			c.recorded.Inc()
		}
		if evict && c.evicted != nil {
			c.evicted.Inc()
		}
	}
	if c.batches != nil {
		c.batches.Inc()
	}
}

// SpanBatch wire codec: spans cross the control channel as one string,
// entries separated by ';', fields by '~' (both header-safe). The format
// mirrors the hop chain's field encoding.

// EncodeSpanBatch renders spans for the control channel.
func EncodeSpanBatch(spans []Span) string {
	var b strings.Builder
	b.Grow(len(spans) * 48)
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.FormatUint(sp.TraceID, 16))
		b.WriteByte('~')
		b.WriteString(strconv.FormatUint(sp.SpanID, 16))
		b.WriteByte('~')
		b.WriteString(strconv.FormatUint(sp.ParentID, 16))
		b.WriteByte('~')
		b.WriteString(strconv.Itoa(int(sp.Kind)))
		b.WriteByte('~')
		b.WriteString(strconv.Itoa(int(sp.Site)))
		b.WriteByte('~')
		b.WriteString(sp.Name)
		b.WriteByte('~')
		b.WriteString(strconv.FormatInt(sp.StartNs, 10))
		b.WriteByte('~')
		b.WriteString(strconv.FormatInt(sp.DurNs, 10))
		b.WriteByte('~')
		b.WriteString(strconv.Itoa(sp.Bytes))
	}
	return b.String()
}

// DecodeSpanBatch parses an encoded batch; malformed entries are skipped.
func DecodeSpanBatch(s string) []Span {
	if s == "" {
		return nil
	}
	entries := strings.Split(s, ";")
	out := make([]Span, 0, len(entries))
	for _, e := range entries {
		f := strings.Split(e, "~")
		if len(f) != 9 {
			continue
		}
		var sp Span
		var err error
		if sp.TraceID, err = strconv.ParseUint(f[0], 16, 64); err != nil {
			continue
		}
		if sp.SpanID, err = strconv.ParseUint(f[1], 16, 64); err != nil {
			continue
		}
		if sp.ParentID, err = strconv.ParseUint(f[2], 16, 64); err != nil {
			continue
		}
		kind, err := strconv.Atoi(f[3])
		if err != nil {
			continue
		}
		sp.Kind = SpanKind(kind)
		site, err := strconv.Atoi(f[4])
		if err != nil {
			continue
		}
		sp.Site = uint8(site)
		sp.Name = f[5]
		if sp.StartNs, err = strconv.ParseInt(f[6], 10, 64); err != nil {
			continue
		}
		if sp.DurNs, err = strconv.ParseInt(f[7], 10, 64); err != nil {
			continue
		}
		if sp.Bytes, err = strconv.Atoi(f[8]); err != nil {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// SpanNode is one node of a reconstructed trace tree.
type SpanNode struct {
	Span     Span
	Children []*SpanNode
}

// BuildSpanTree reconstructs the causal tree of one trace's spans. Roots
// are spans whose parent is 0 or not among the given spans; children are
// ordered by start stamp. The input order is irrelevant.
func BuildSpanTree(spans []Span) []*SpanNode {
	nodes := make(map[uint64]*SpanNode, len(spans))
	for _, sp := range spans {
		nodes[sp.SpanID] = &SpanNode{Span: sp}
	}
	var roots []*SpanNode
	for _, sp := range spans {
		n := nodes[sp.SpanID]
		if p, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortChildren func(n *SpanNode)
	sortChildren = func(n *SpanNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Span.StartNs < n.Children[j].Span.StartNs
		})
		for _, c := range n.Children {
			sortChildren(c)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Span.StartNs < roots[j].Span.StartNs })
	for _, r := range roots {
		sortChildren(r)
	}
	return roots
}

// SpanTreeConnected reports whether the spans form one fully-connected
// tree: exactly one root, every other span reachable from it.
func SpanTreeConnected(spans []Span) bool {
	if len(spans) == 0 {
		return false
	}
	roots := BuildSpanTree(spans)
	if len(roots) != 1 {
		return false
	}
	count := 0
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		count++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(roots[0])
	return count == len(spans)
}

// SpanUnionNs returns the total time covered by the union of the spans'
// intervals — overlapping spans (a process span enclosing the link send it
// performs, say) count once, so the union compares directly against an
// independently measured end-to-end response time.
func SpanUnionNs(spans []Span) int64 {
	if len(spans) == 0 {
		return 0
	}
	type iv struct{ s, e int64 }
	ivs := make([]iv, 0, len(spans))
	for _, sp := range spans {
		ivs = append(ivs, iv{sp.StartNs, sp.StartNs + sp.DurNs})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var total int64
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.s <= cur.e {
			if v.e > cur.e {
				cur.e = v.e
			}
			continue
		}
		total += cur.e - cur.s
		cur = v
	}
	total += cur.e - cur.s
	return total
}

// FormatSpanTree renders a trace tree as an indented text table: one line
// per span with kind, site, name, start offset from the root, and duration.
func FormatSpanTree(roots []*SpanNode) string {
	var b strings.Builder
	var base int64
	if len(roots) > 0 {
		base = roots[0].Span.StartNs
	}
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		sp := n.Span
		site := "gw"
		if sp.Site == SiteClient {
			site = "cl"
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(sp.Kind.String())
		b.WriteByte(':')
		b.WriteString(sp.Name)
		b.WriteString(" [")
		b.WriteString(site)
		b.WriteString("] +")
		b.WriteString(time.Duration(sp.StartNs - base).Round(time.Microsecond).String())
		b.WriteString(" dur=")
		b.WriteString(time.Duration(sp.DurNs).Round(time.Microsecond).String())
		if sp.Bytes > 0 {
			b.WriteString(" bytes=")
			b.WriteString(strconv.Itoa(sp.Bytes))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
