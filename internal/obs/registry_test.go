package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge", nil)
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("c_total", "", nil) != c {
		t.Error("counter identity not stable across lookups")
	}
	// Different labels is a different series of the same family.
	if r.Counter("c_total", "", Labels{"x": "1"}) == c {
		t.Error("labeled series aliased the unlabeled one")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic when re-registering a counter as a gauge")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Errorf("count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Errorf("sum = %v, want 5050", s.Sum)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Errorf("p50 = %v, want ~50", s.P50)
	}
	if s.P95 < 90 || s.P95 > 100 {
		t.Errorf("p95 = %v, want ~95", s.P95)
	}
	if s.P99 < 95 || s.P99 > 100 {
		t.Errorf("p99 = %v, want ~99", s.P99)
	}
}

func TestHistogramWindowBounded(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", nil)
	// Old samples fall out of the quantile window, lifetime count remains.
	for i := 0; i < histogramWindow; i++ {
		h.Observe(1000)
	}
	for i := 0; i < histogramWindow; i++ {
		h.Observe(1)
	}
	s := h.Snapshot()
	if s.Count != 2*histogramWindow {
		t.Errorf("count = %d, want %d", s.Count, 2*histogramWindow)
	}
	if s.P99 != 1 {
		t.Errorf("p99 = %v, want 1 (old window evicted)", s.P99)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_things_total", "things seen", nil).Add(7)
	r.Gauge("app_level", "", Labels{"zone": "a"}).Set(2.5)
	r.Histogram("app_wait_seconds", "wait time", nil).Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP app_things_total things seen",
		"# TYPE app_things_total counter",
		"app_things_total 7",
		`app_level{zone="a"} 2.5`,
		"# TYPE app_wait_seconds summary",
		`app_wait_seconds{quantile="0.5"} 0.25`,
		"app_wait_seconds_sum 0.25",
		"app_wait_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "", nil).Add(3)
	r.Histogram("j_seconds", "", nil).Observe(1)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]struct {
		Type      string             `json:"type"`
		Value     *float64           `json:"value"`
		Histogram *HistogramSnapshot `json:"histogram"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if m := out["j_total"]; m.Type != "counter" || m.Value == nil || *m.Value != 3 {
		t.Errorf("j_total = %+v", m)
	}
	if m := out["j_seconds"]; m.Type != "summary" || m.Histogram == nil || m.Histogram.Count != 1 {
		t.Errorf("j_seconds = %+v", m)
	}
}

func TestDefaultRegistryPreSeeded(t *testing.T) {
	var b strings.Builder
	if err := Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// One representative per instrumented subsystem: all must be present
	// even before any traffic has flowed.
	for _, name := range []string{
		MQueuePostTotal, MPoolPutTotal, MStreamProcessedTotal,
		MLinkBandwidthBps, MEventsDeliveredTotal, MSessionsTotal,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("default registry missing catalog metric %s", name)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("cc_total", "", nil).Inc()
				r.Gauge("cg", "", nil).Add(1)
				r.Histogram("ch_seconds", "", nil).Observe(float64(j))
			}
		}()
	}
	// Readers race the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.WriteJSON(&b)
		}
	}()
	wg.Wait()
	if got := r.Counter("cc_total", "", nil).Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("cg", "", nil).Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("ch_seconds", "", nil).Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
