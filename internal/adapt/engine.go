// Package adapt is the adaptation autopilot: the policy brain that closes
// MobiGATE's active-deployment loop. The thesis adapts streams by hand-
// written event reactions (when (LOW_BANDWIDTH) { ... }); this package adds
// the condition-triggered half recommended by §8.2.1 — declarative MCL
// rules such as
//
//	when (bandwidth < 64000) sustain 2 -> insert tc between hd and cm;
//
// evaluated against sampled context readings (link bandwidth, SLO
// violations, fault counters, worker/queue gauges) and executed through the
// same drain-safe reconfiguration primitives event blocks use: Insert,
// Remove, live worker retuning, and control-interface parameters. Per-rule
// hysteresis (sustain), refractory cooldowns and edge-triggered re-arming
// keep the composition from oscillating when a reading hovers around a
// threshold.
//
// Every firing is observable three ways: an ADAPTATION context event
// (source-directed at the adapted stream), the adapt_* metric counters, and
// a flight-recorder "adapt" entry carrying the rule id, the trigger reading
// and the action taken.
package adapt

import (
	"fmt"
	"sync"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/netem"
	"mobigate/internal/obs"
	"mobigate/internal/stream"
)

var (
	mEvaluations = obs.DefaultCounter(obs.MAdaptEvaluationsTotal)
	mActions     = obs.DefaultCounter(obs.MAdaptActionsTotal)
	mSuppressed  = obs.DefaultCounter(obs.MAdaptSuppressedTotal)
	mFailures    = obs.DefaultCounter(obs.MAdaptFailuresTotal)
)

// Reading is one sampled snapshot of the signals policy conditions test.
// Counter-style fields (SLOViolations, Faults) are cumulative; the engine
// turns them into per-tick deltas before comparing.
type Reading struct {
	// Bandwidth is the link bandwidth in bits/second.
	Bandwidth int64
	// SLOViolations is the cumulative latency-budget violation count.
	SLOViolations uint64
	// Faults is the cumulative streamlet fault count (panics, stalls,
	// retries, drops).
	Faults uint64
	// WorkersBusy is the busy parallel-worker gauge.
	WorkersBusy int64
	// ResequencerDepth is the parked out-of-order emission gauge.
	ResequencerDepth int64
	// QueueDepth is the queued-message gauge.
	QueueDepth int64
	// HeapBytes is the live-heap gauge (go_heap_bytes; fresh only while
	// the obs runtime collector is running).
	HeapBytes int64
	// GCPauseP99Us is the p99 GC pause gauge in microseconds.
	GCPauseP99Us int64
	// SessionsActive is the live logical-session gauge.
	SessionsActive int64
	// SessionSLOViolations is the cumulative sampled per-session SLO
	// violation count.
	SessionSLOViolations uint64
	// HealthDegraded is the degraded health-component gauge.
	HealthDegraded int64
}

// Config parameterizes an Engine.
type Config struct {
	// Link, when set, supplies the bandwidth signal.
	Link *netem.Link
	// Events, when set, receives an ADAPTATION context event per firing.
	Events *event.Manager
	// Sampler overrides the default metric-backed sampler (tests and
	// embedders with their own signal sources).
	Sampler func() Reading
	// Interval is the background evaluation period; zero means no
	// background ticker — the embedder drives Tick explicitly.
	Interval time.Duration
	// Sustain is the default hysteresis width in consecutive true readings
	// for rules that do not declare their own (default 1).
	Sustain int
	// Cooldown is the default refractory period in ticks after a firing
	// for rules that do not declare their own (default 2).
	Cooldown int
	// DrainTimeout bounds each action's reconfiguration drains (default 1s).
	DrainTimeout time.Duration
	// OnError receives action failures (nil: failures only surface as
	// metrics and flight entries).
	OnError func(error)
}

// Engine evaluates when-policy rules against sampled readings and rewrites
// the streams bound to it. One engine serves a whole gateway: streams
// attach with their compiled policies and detach on undeploy.
type Engine struct {
	cfg Config

	mu       sync.Mutex
	bindings map[string]*binding
	prev     Reading
	havePrev bool
	ticker   *time.Ticker
	stop     chan struct{}
	done     chan struct{}
	actions  uint64
}

type binding struct {
	st    *stream.Stream
	rules []*ruleState
}

// ruleState is the per-rule hysteresis ledger.
type ruleState struct {
	pc *mcl.PolicyConfig
	// holds counts consecutive ticks the condition has been true.
	holds int
	// cooldown is the remaining refractory ticks after a firing.
	cooldown int
	// armed is the edge trigger: a fired rule re-arms only after its
	// condition reads false once, so a persistently-true condition cannot
	// refire every cooldown expiry.
	armed bool
}

// New creates an engine. Call Start for background evaluation, or drive
// Tick directly for deterministic stepping.
func New(cfg Config) *Engine {
	if cfg.Sustain < 1 {
		cfg.Sustain = 1
	}
	if cfg.Cooldown < 1 {
		cfg.Cooldown = 2
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = time.Second
	}
	return &Engine{cfg: cfg, bindings: make(map[string]*binding)}
}

// Attach binds a stream and its compiled policies to the engine under id
// (the deployment alias — stream names may repeat across aliased deploys).
// Re-attaching an id replaces its policies, preserving hysteresis state for
// rules whose text is unchanged.
func (e *Engine) Attach(id string, st *stream.Stream, policies []*mcl.PolicyConfig) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.bindings[id]
	b := &binding{st: st}
	for _, pc := range policies {
		rs := &ruleState{pc: pc, armed: true}
		if old != nil {
			for _, prev := range old.rules {
				if prev.pc.Rule.String() == pc.Rule.String() {
					rs.holds, rs.cooldown, rs.armed = prev.holds, prev.cooldown, prev.armed
					break
				}
			}
		}
		b.rules = append(b.rules, rs)
	}
	e.bindings[id] = b
}

// Detach unbinds a stream.
func (e *Engine) Detach(id string) {
	e.mu.Lock()
	delete(e.bindings, id)
	e.mu.Unlock()
}

// SetPolicies replaces the policies of an attached stream (the hot-reload
// path). Returns false when id is not attached.
func (e *Engine) SetPolicies(id string, policies []*mcl.PolicyConfig) bool {
	e.mu.Lock()
	b, ok := e.bindings[id]
	e.mu.Unlock()
	if !ok {
		return false
	}
	e.Attach(id, b.st, policies)
	return true
}

// Attached reports whether id is bound to the engine.
func (e *Engine) Attached(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bindings[id] != nil
}

// Actions returns the number of adaptations this engine has applied.
func (e *Engine) Actions() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.actions
}

// Start launches the background evaluation ticker (no-op when Interval is
// zero or the engine is already running).
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Interval <= 0 || e.stop != nil {
		return
	}
	e.ticker = time.NewTicker(e.cfg.Interval)
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func(tick <-chan time.Time, stop chan struct{}, done chan struct{}) {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-tick:
				e.Tick()
			}
		}
	}(e.ticker.C, e.stop, e.done)
}

// Close stops the background ticker, if any.
func (e *Engine) Close() {
	e.mu.Lock()
	ticker, stop, done := e.ticker, e.stop, e.done
	e.ticker, e.stop, e.done = nil, nil, nil
	e.mu.Unlock()
	if stop == nil {
		return
	}
	ticker.Stop()
	close(stop)
	<-done
}

// sample produces the current reading from the configured sampler, or from
// the default metric catalog plus the attached link.
func (e *Engine) sample() Reading {
	if e.cfg.Sampler != nil {
		return e.cfg.Sampler()
	}
	r := Reading{
		SLOViolations: obs.DefaultCounter(obs.MSLOViolationsTotal).Value(),
		Faults: obs.DefaultCounter(obs.MFaultPanicsTotal).Value() +
			obs.DefaultCounter(obs.MFaultStallsTotal).Value() +
			obs.DefaultCounter(obs.MFaultRetriesTotal).Value() +
			obs.DefaultCounter(obs.MFaultDroppedTotal).Value(),
		WorkersBusy:      obs.DefaultIntGauge(obs.MStreamletWorkersBusy).Value(),
		ResequencerDepth: obs.DefaultIntGauge(obs.MStreamletReseqDepth).Value(),
		QueueDepth:       obs.DefaultIntGauge(obs.MQueueQueuedMessages).Value(),
		HeapBytes:        obs.DefaultIntGauge(obs.MGoHeapBytes).Value(),
		GCPauseP99Us: int64(
			obs.DefaultGauge(obs.MGoGCPauseP99Seconds).Value() * 1e6),
		SessionsActive:       obs.DefaultIntGauge(obs.MSessionLive).Value(),
		SessionSLOViolations: obs.DefaultCounter(obs.MSessionSLOViolationsTotal).Value(),
		HealthDegraded:       obs.DefaultIntGauge(obs.MHealthDegraded).Value(),
	}
	if e.cfg.Link != nil {
		r.Bandwidth = e.cfg.Link.Bandwidth()
	}
	return r
}

// signalValue extracts one signal from the reading pair: gauges read the
// current sample, counters read the delta since the previous tick.
func signalValue(sig string, cur, prev Reading) int64 {
	switch sig {
	case mcl.SignalBandwidth:
		return cur.Bandwidth
	case mcl.SignalSLOViolations:
		return int64(cur.SLOViolations - prev.SLOViolations)
	case mcl.SignalFaults:
		return int64(cur.Faults - prev.Faults)
	case mcl.SignalWorkersBusy:
		return cur.WorkersBusy
	case mcl.SignalResequencerDepth:
		return cur.ResequencerDepth
	case mcl.SignalHeapBytes:
		return cur.HeapBytes
	case mcl.SignalGCPauseP99:
		return cur.GCPauseP99Us
	case mcl.SignalSessionsActive:
		return cur.SessionsActive
	case mcl.SignalSessionSLOViolations:
		return int64(cur.SessionSLOViolations - prev.SessionSLOViolations)
	case mcl.SignalHealthDegraded:
		return cur.HealthDegraded
	default: // mcl.SignalQueueDepth; the parser admits no other signal
		return cur.QueueDepth
	}
}

func (e *Engine) sustainFor(r *mcl.PolicyRule) int {
	if r.Sustain > 0 {
		return r.Sustain
	}
	return e.cfg.Sustain
}

func (e *Engine) cooldownFor(r *mcl.PolicyRule) int {
	if r.Cooldown > 0 {
		return r.Cooldown
	}
	return e.cfg.Cooldown
}

// firing is one rule selected by a tick for execution.
type firing struct {
	id    string
	b     *binding
	rs    *ruleState
	value int64
}

// Tick samples the signals and evaluates every attached rule once. Actions
// run synchronously on the caller's goroutine (outside the engine lock, so
// an action's drain cannot stall other engine operations); the background
// ticker simply calls Tick.
func (e *Engine) Tick() {
	cur := e.sample()
	e.mu.Lock()
	prev := e.prev
	if !e.havePrev {
		prev = cur
	}
	e.prev, e.havePrev = cur, true
	mEvaluations.Inc()
	var firings []firing
	for id, b := range e.bindings {
		for _, rs := range b.rules {
			rule := rs.pc.Rule
			v := signalValue(rule.Cond.Signal, cur, prev)
			if rs.cooldown > 0 {
				rs.cooldown--
			}
			if !rule.Cond.Op.Holds(v, rule.Cond.Value) {
				rs.holds = 0
				rs.armed = true
				continue
			}
			rs.holds++
			if !rs.armed || rs.holds < e.sustainFor(rule) {
				continue
			}
			if rs.cooldown > 0 {
				mSuppressed.Inc()
				continue
			}
			firings = append(firings, firing{id: id, b: b, rs: rs, value: v})
		}
	}
	e.mu.Unlock()
	for _, f := range firings {
		e.fire(f)
	}
}

// fire executes one selected rule: applicability check, the action itself,
// then the observability triple (flight entry, counters, ADAPTATION event).
func (e *Engine) fire(f firing) {
	rule := f.rs.pc.Rule
	subject := f.id + "/" + f.rs.pc.ID
	detail := fmt.Sprintf("%s [%s=%d] -> %s", rule.Cond, rule.Cond.Signal, f.value, rule.Action)
	applied, err := e.apply(f.b.st, f.rs.pc)

	e.mu.Lock()
	f.rs.cooldown = e.cooldownFor(rule)
	if err == nil && applied {
		// Edge trigger: stay quiet until the condition goes false again.
		f.rs.armed = false
		e.actions++
	}
	e.mu.Unlock()

	switch {
	case err != nil:
		mFailures.Inc()
		obs.FlightRecord(obs.FlightAdapt, subject, "FAILED "+detail+": "+err.Error(), f.value)
		if e.cfg.OnError != nil {
			e.cfg.OnError(fmt.Errorf("adapt: %s: %s: %w", subject, rule.Action, err))
		}
	case !applied:
		// Already in effect (insert with the instance present, remove with
		// it absent, workers already at N): count the suppression, skip the
		// event — nothing changed.
		mSuppressed.Inc()
	default:
		mActions.Inc()
		obs.FlightRecord(obs.FlightAdapt, subject, detail, f.value)
		if e.cfg.Events != nil {
			e.cfg.Events.Post(event.ContextEvent{
				EventID:  event.ADAPTATION,
				Category: event.Adaptation,
				Source:   f.b.st.Name(),
			})
		}
	}
}

// apply executes a rule's action against the stream. The boolean reports
// whether the topology actually changed; false with a nil error means the
// action was already in effect.
func (e *Engine) apply(st *stream.Stream, pc *mcl.PolicyConfig) (bool, error) {
	switch a := pc.Rule.Action.(type) {
	case *mcl.InsertAction:
		if st.Streamlet(a.Def) != nil {
			return false, nil
		}
		if err := st.NewStreamlet(a.Def, pc.InsertDecl); err != nil {
			return false, err
		}
		if err := st.Insert(a.Producer, a.Consumer, a.Def, pc.InsertIn, pc.InsertOut); err != nil {
			// Unwind the unbound instance so a later firing can retry.
			_ = st.Remove(a.Def, e.cfg.DrainTimeout)
			return false, err
		}
		return true, nil
	case *mcl.RemoveAction:
		if st.Streamlet(a.Inst) == nil {
			return false, nil
		}
		if err := st.Remove(a.Inst, e.cfg.DrainTimeout); err != nil {
			return false, err
		}
		return true, nil
	case *mcl.WorkersAction:
		sl := st.Streamlet(a.Inst)
		if sl == nil {
			return false, nil
		}
		if sl.Workers() == a.N {
			return false, nil
		}
		if err := st.SetWorkersLive(a.Inst, a.N, e.cfg.DrainTimeout); err != nil {
			return false, err
		}
		return true, nil
	case *mcl.ParamAction:
		if st.Streamlet(a.Inst) == nil {
			return false, nil
		}
		if err := st.SetParam(a.Inst, a.Name, a.Value); err != nil {
			return false, err
		}
		return true, nil
	default:
		return false, fmt.Errorf("unknown policy action %T", pc.Rule.Action)
	}
}
