package adapt

import (
	"sync/atomic"
	"testing"
	"time"

	"mobigate/internal/mcl"
	"mobigate/internal/services"
	"mobigate/internal/stream"
	"mobigate/internal/streamlet"
)

const enginePrelude = `
streamlet relay {
	port { in pi : text/*; out po : text/*; }
	attribute { type = STATELESS; library = "bench/redirector"; }
}
streamlet tc_def {
	port { in pi : text; out po : text; }
	attribute { type = STATELESS; library = "text/compress"; }
}
`

// buildStream compiles prelude+body and runs stream "s" with the standard
// service directory.
func buildStream(t *testing.T, body string) (*stream.Stream, *mcl.Config) {
	t.Helper()
	cfg, err := mcl.Compile(enginePrelude+body, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	dir := streamlet.NewDirectory()
	services.RegisterAll(dir)
	st, err := stream.FromConfig(cfg, "s", nil, dir)
	if err != nil {
		t.Fatalf("FromConfig: %v", err)
	}
	t.Cleanup(st.End)
	st.Start()
	return st, cfg
}

// TestEngineSustainAndRearm drives the insert/remove pair through a full
// hysteresis cycle with a fake sampler: sustain delays the insert, the
// edge trigger prevents refiring while the condition stays true, and the
// rule re-arms after the condition breaks.
func TestEngineSustainAndRearm(t *testing.T) {
	st, cfg := buildStream(t, `
main stream s {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);
	when (queue_depth > 10) sustain 2 -> insert tc_def between hd and cm;
	when (queue_depth <= 10) -> remove tc_def;
}
`)
	var qd atomic.Int64
	eng := New(Config{Sampler: func() Reading { return Reading{QueueDepth: qd.Load()} }})
	eng.Attach("s", st, cfg.Stream("s").Policies)
	if !eng.Attached("s") {
		t.Fatal("not attached")
	}

	// Note: the remove rule fires (inapplicably) on early ticks while the
	// compressor is absent; those are suppressions, not actions.
	qd.Store(20)
	eng.Tick() // holds=1 < sustain 2
	if got := eng.Actions(); got != 0 {
		t.Fatalf("actions after 1 tick = %d, want 0 (sustain 2)", got)
	}
	if st.Streamlet("tc_def") != nil {
		t.Fatal("compressor inserted before sustain was met")
	}
	eng.Tick() // holds=2: fire
	if got := eng.Actions(); got != 1 {
		t.Fatalf("actions = %d, want 1", got)
	}
	if st.Streamlet("tc_def") == nil {
		t.Fatal("compressor not inserted")
	}
	for i := 0; i < 5; i++ {
		eng.Tick() // condition still true: edge trigger must hold it quiet
	}
	if got := eng.Actions(); got != 1 {
		t.Fatalf("rule refired while condition stayed true: actions = %d", got)
	}

	qd.Store(0)
	eng.Tick() // remove fires; insert re-arms
	if got := eng.Actions(); got != 2 {
		t.Fatalf("actions = %d, want 2 (remove)", got)
	}
	if st.Streamlet("tc_def") != nil {
		t.Fatal("compressor not removed")
	}

	qd.Store(20)
	eng.Tick()
	eng.Tick() // re-armed insert fires again after sustain
	if got := eng.Actions(); got != 3 {
		t.Fatalf("actions = %d, want 3 (re-armed insert)", got)
	}
	if st.Streamlet("tc_def") == nil {
		t.Fatal("compressor not re-inserted")
	}

	eng.Detach("s")
	if eng.Attached("s") {
		t.Fatal("still attached after Detach")
	}
}

// TestEngineCounterDelta checks counter-style signals compare per-tick
// deltas, and that a plateau re-arms the rule for the next increment.
func TestEngineCounterDelta(t *testing.T) {
	st, cfg := buildStream(t, `
main stream s {
	streamlet hd = new-streamlet (relay);
	streamlet tc = new-streamlet (tc_def);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, tc.pi);
	connect (tc.po, cm.pi);
	when (slo_violations > 0) -> param tc level = 9;
}
`)
	var slo atomic.Uint64
	eng := New(Config{Sampler: func() Reading { return Reading{SLOViolations: slo.Load()} }})
	eng.Attach("s", st, cfg.Stream("s").Policies)

	slo.Store(7)
	eng.Tick() // first tick: no previous reading, delta is 0
	eng.Tick() // plateau: delta 0
	if got := eng.Actions(); got != 0 {
		t.Fatalf("actions = %d, want 0 (no delta yet)", got)
	}
	slo.Add(1)
	eng.Tick() // delta 1: fire
	if got := eng.Actions(); got != 1 {
		t.Fatalf("actions = %d, want 1", got)
	}
	comp, ok := streamlet.Base(st.Streamlet("tc").Processor()).(*services.Compressor)
	if !ok {
		t.Fatalf("tc processor is %T", st.Streamlet("tc").Processor())
	}
	if comp.Level != 9 {
		t.Fatalf("compressor level = %d, want 9", comp.Level)
	}
	eng.Tick() // plateau: delta 0, re-arm; also drains the cooldown
	eng.Tick()
	slo.Add(3)
	eng.Tick() // delta 3: fire again
	if got := eng.Actions(); got != 2 {
		t.Fatalf("actions = %d, want 2 after second burst", got)
	}
}

// TestEngineAttachPreservesState: re-attaching identical rule text (the
// hot-reload path) must keep hysteresis counters, so a sustain window that
// straddles a reload still fires on time.
func TestEngineAttachPreservesState(t *testing.T) {
	st, cfg := buildStream(t, `
main stream s {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);
	when (queue_depth > 10) sustain 2 -> insert tc_def between hd and cm;
}
`)
	var qd atomic.Int64
	eng := New(Config{Sampler: func() Reading { return Reading{QueueDepth: qd.Load()} }})
	eng.Attach("s", st, cfg.Stream("s").Policies)

	qd.Store(20)
	eng.Tick() // holds=1
	if !eng.SetPolicies("s", cfg.Stream("s").Policies) {
		t.Fatal("SetPolicies on attached id returned false")
	}
	eng.Tick() // holds=2 only if state survived the re-attach
	if got := eng.Actions(); got != 1 {
		t.Fatalf("actions = %d, want 1 (sustain state lost across re-attach)", got)
	}
}

// TestEngineNoLossAcrossReconfigurations is the -race gate: messages flow
// continuously while policies repeatedly splice the compressor in and out;
// every message must come out the far end.
func TestEngineNoLossAcrossReconfigurations(t *testing.T) {
	st, cfg := buildStream(t, `
main stream s {
	streamlet hd = new-streamlet (relay);
	streamlet cm = new-streamlet (relay);
	connect (hd.po, cm.pi);
	when (queue_depth > 10) -> insert tc_def between hd and cm;
	when (queue_depth <= 10) -> remove tc_def;
}
`)
	inlet, err := st.OpenInlet(mcl.PortRef{Inst: "hd", Port: "pi"}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	outlet, err := st.OpenOutlet(mcl.PortRef{Inst: "cm", Port: "po"})
	if err != nil {
		t.Fatal(err)
	}

	var qd atomic.Int64
	eng := New(Config{
		Sampler:      func() Reading { return Reading{QueueDepth: qd.Load()} },
		DrainTimeout: 5 * time.Second,
	})
	eng.Attach("s", st, cfg.Stream("s").Policies)

	const msgs = 200
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < msgs; i++ {
			if err := inlet.Send(services.GenTextMessage(256, int64(i))); err != nil {
				sendErr <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		sendErr <- nil
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if i%2 == 0 {
				qd.Store(20)
			} else {
				qd.Store(0)
			}
			eng.Tick()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	received := 0
	for received < msgs {
		if _, err := outlet.Receive(10 * time.Second); err != nil {
			t.Fatalf("after %d messages: %v", received, err)
		}
		received++
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send: %v", err)
	}
	<-done
	if d := st.Dropped(); d != 0 {
		t.Fatalf("dropped = %d, want 0", d)
	}
	if eng.Actions() < 2 {
		t.Fatalf("actions = %d, want >= 2 (insert and remove both exercised)", eng.Actions())
	}
}
