package mime

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Well-known header fields. Content-Session and Content-Peers are the
// MIME-extension-fields MobiGATE defines: the session field tags every
// message with the stream instance it belongs to (§4.4.3, streamlet
// sharing), and the peers field is the chain of peer-streamlet IDs the
// client's Message Distributor consumes in reverse order (§6.5).
const (
	HeaderContentType    = "Content-Type"
	HeaderContentLength  = "Content-Length"
	HeaderContentSession = "Content-Session"
	HeaderContentPeers   = "Content-Peers"
	HeaderMessageID      = "Message-Id"
	// HeaderSpanContext carries the end-to-end span trace context
	// (traceID~parentSpanID~rootStartNs) a message propagates from the
	// gateway inlet across the wireless link to the client peer streamlets.
	// The codec lives in internal/obs (EncodeSpanContext/ParseSpanContext);
	// the header name is defined here with the other wire-format fields.
	HeaderSpanContext = "X-Mobigate-Span"
)

// Message is a MIME-formatted message flowing through MobiGATE. Headers are
// kept in insertion order so the wire form is stable; the body is opaque
// bytes whose interpretation is given by Content-Type.
type Message struct {
	// ID identifies the message inside the central message pool; streamlets
	// pass IDs by reference rather than copying bodies (§6.7).
	ID string

	keys   []string          // canonical header keys, insertion order
	fields map[string]string // canonical key -> value
	body   []byte
	// pooledBody marks a body drawn from the shared buffer pool (Clone,
	// ReadMessage); only such bodies may be recycled. See Recycle.
	pooledBody bool
	// chain, when non-nil, holds the body as appended segments instead of
	// the contiguous body slice (which is then empty). See chain.go; Body()
	// flattens back to contiguous form on demand.
	chain *BodyChain
}

var msgCounter atomic.Uint64

// NewID mints a fresh fixed-width message identifier: "msg-" followed by 16
// hex digits, 20 bytes total. The fixed width keeps identifier generation
// cheap (no fmt machinery) and gives the message pool a uniform key to
// hash-shard on.
func NewID() string {
	const hexdigits = "0123456789abcdef"
	var b [20]byte
	copy(b[:], "msg-")
	n := msgCounter.Add(1)
	for i := len(b) - 1; i >= 4; i-- {
		b[i] = hexdigits[n&0xf]
		n >>= 4
	}
	return string(b[:])
}

// NewMessage creates a message of the given media type with a fresh unique
// ID. The body slice is retained, not copied.
func NewMessage(t MediaType, body []byte) *Message {
	m := &Message{
		ID:     NewID(),
		fields: make(map[string]string, 4),
	}
	m.SetHeader(HeaderContentType, t.String())
	m.body = body
	return m
}

// CanonicalHeaderKey normalizes a header name the way net/textproto does:
// the first letter and letters following hyphens are upper-cased. Keys that
// are already canonical — the overwhelmingly common case, since the gateway
// parses headers it emitted itself — are returned unchanged without
// allocating.
func CanonicalHeaderKey(k string) string {
	upper := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (upper && 'a' <= c && c <= 'z') || (!upper && 'A' <= c && c <= 'Z') {
			return canonicalizeKey(k)
		}
		upper = c == '-'
	}
	return k
}

func canonicalizeKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		if upper && 'a' <= c && c <= 'z' {
			b[i] = c - ('a' - 'A')
		} else if !upper && 'A' <= c && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// SetHeader sets a header field, replacing any previous value.
func (m *Message) SetHeader(key, value string) {
	if m.fields == nil {
		m.fields = make(map[string]string, 4)
	}
	ck := CanonicalHeaderKey(key)
	if _, ok := m.fields[ck]; !ok {
		m.keys = append(m.keys, ck)
	}
	m.fields[ck] = value
}

// Header returns the value of a header field ("" if absent).
func (m *Message) Header(key string) string {
	return m.fields[CanonicalHeaderKey(key)]
}

// DelHeader removes a header field if present.
func (m *Message) DelHeader(key string) {
	ck := CanonicalHeaderKey(key)
	if _, ok := m.fields[ck]; !ok {
		return
	}
	delete(m.fields, ck)
	for i, k := range m.keys {
		if k == ck {
			m.keys = append(m.keys[:i], m.keys[i+1:]...)
			break
		}
	}
}

// Headers returns the header keys in insertion order (a copy).
func (m *Message) Headers() []string {
	out := make([]string, len(m.keys))
	copy(out, m.keys)
	return out
}

// Body returns the message body without copying. A chained body (see
// chain.go) is flattened into one contiguous pooled buffer first — the lazy
// copy that keeps stateful consumers oblivious to chaining.
func (m *Message) Body() []byte {
	if m.chain != nil {
		m.flattenChain()
	}
	return m.body
}

// SetBody replaces the body (retaining the slice). The previous body —
// including any chain segments — is not recycled (the caller may still
// alias it), and the new body is caller-owned, so it is never eligible for
// recycling.
func (m *Message) SetBody(b []byte) {
	if m.chain != nil {
		releaseChain(m.chain) // drop segment refs; callers may alias them
		m.chain = nil
	}
	m.body = b
	m.pooledBody = false
}

// Len returns the body length in bytes (chain-aware, without flattening).
func (m *Message) Len() int {
	if m.chain != nil {
		return m.chain.n
	}
	return len(m.body)
}

// ContentType parses the Content-Type field; it returns "*/*" when the
// field is absent or malformed, matching the permissive behaviour the
// Message Distributor needs for unknown payloads.
func (m *Message) ContentType() MediaType {
	t, err := ParseMediaType(m.Header(HeaderContentType))
	if err != nil {
		return Wildcard
	}
	return t
}

// SetContentType sets the Content-Type field.
func (m *Message) SetContentType(t MediaType) {
	m.SetHeader(HeaderContentType, t.String())
}

// Session returns the Content-Session stream-instance tag ("" if unset).
func (m *Message) Session() string { return m.Header(HeaderContentSession) }

// SetSession tags the message with the stream instance that owns it.
func (m *Message) SetSession(id string) { m.SetHeader(HeaderContentSession, id) }

// PushPeer appends a peer-streamlet ID to the Content-Peers chain. Server
// streamlets call this before writing to their output port so the client
// knows which reverse streamlets to apply (§6.5).
func (m *Message) PushPeer(peerID string) {
	cur := m.Header(HeaderContentPeers)
	if cur == "" {
		m.SetHeader(HeaderContentPeers, peerID)
		return
	}
	m.SetHeader(HeaderContentPeers, cur+","+peerID)
}

// PopPeer removes and returns the most recently pushed peer ID; ok is false
// when the chain is empty. The client distributor pops peers LIFO so the
// last transformation applied is the first reversed.
func (m *Message) PopPeer() (peerID string, ok bool) {
	cur := m.Header(HeaderContentPeers)
	if cur == "" {
		return "", false
	}
	if i := strings.LastIndexByte(cur, ','); i >= 0 {
		m.SetHeader(HeaderContentPeers, cur[:i])
		return cur[i+1:], true
	}
	m.DelHeader(HeaderContentPeers)
	return cur, true
}

// Peers returns the current peer chain in push order (possibly empty).
func (m *Message) Peers() []string {
	cur := m.Header(HeaderContentPeers)
	if cur == "" {
		return nil
	}
	return strings.Split(cur, ",")
}

// Clone deep-copies the message, including the body. Used by the
// pass-by-value pool mode and by streamlets that must not alias input. The
// body copy is drawn from the shared buffer pool; when the clone's owner
// proves it dead it may hand the buffer back via Recycle.
func (m *Message) Clone() *Message {
	c := &Message{
		ID:         NewID(),
		keys:       make([]string, len(m.keys)),
		fields:     make(map[string]string, len(m.fields)),
		body:       getBodyBuf(m.Len()),
		pooledBody: true,
	}
	copy(c.keys, m.keys)
	for k, v := range m.fields {
		c.fields[k] = v
	}
	if m.chain != nil {
		// The clone is always contiguous; the source stays chained.
		off := 0
		for _, s := range m.chain.segs {
			off += copy(c.body[off:], s)
		}
	} else {
		copy(c.body, m.body)
	}
	return c
}

// String summarizes the message for logs.
func (m *Message) String() string {
	return fmt.Sprintf("Message(%s %s %dB)", m.ID, m.Header(HeaderContentType), m.Len())
}

// parseContentLength reads a Content-Length value; -1 when absent/invalid.
func parseContentLength(v string) int64 {
	if v == "" {
		return -1
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || n < 0 {
		return -1
	}
	return n
}
