package mime

import "sync"

// Body-buffer recycling for the hot copy paths: the pass-by-value pool mode
// clones every message on every hop (§6.7 / Figure 7-3) and the wire codec
// materializes a body per decoded message (§3.4.1). Both draw their buffers
// from a shared sync.Pool here instead of hammering the garbage collector
// with short-lived multi-hundred-KB slices.
//
// Ownership invariant (documented in docs/ARCHITECTURE.md): a pooled body
// belongs to exactly one Message at a time, and only the party that proves
// the message dead — no processor, queue, pool entry, or application can
// still reach it — may call Recycle. In practice that is the coordination
// plane: the streamlet runtime recycles a by-value original once its deep
// copy has been forwarded, and the message pool recycles clones it discards
// before they ever escape. Messages delivered to applications are never
// recycled.

// minPooledBody is the smallest body worth recycling; tiny bodies cost the
// allocator less than the pool round trip.
const minPooledBody = 1 << 10

var bodyPool sync.Pool // of *[]byte

// getBodyBuf returns a length-n byte slice, reusing a pooled buffer when
// one with sufficient capacity is available.
func getBodyBuf(n int) []byte {
	if n >= minPooledBody {
		if p, _ := bodyPool.Get().(*[]byte); p != nil && cap(*p) >= n {
			return (*p)[:n]
		}
		// A too-small pooled buffer is dropped to the GC rather than put
		// back, so the pool converges on the working set's buffer size.
	}
	return make([]byte, n)
}

// putBodyBuf hands a pool-owned buffer back when it is big enough to be
// worth recycling; undersized ones go to the GC.
func putBodyBuf(b []byte) {
	if cap(b) >= minPooledBody {
		b = b[:0]
		bodyPool.Put(&b)
	}
}

// Recycle hands the message's body back to the buffer pool when the body
// was pool-allocated (Clone, ReadMessage) and detaches it either way; for a
// chained body (chain.go) every message-owned segment is recycled. Only
// the owner that proved the message dead may call this; after Recycle the
// message must not be read or written again.
func (m *Message) Recycle() {
	if m.chain != nil {
		for i, s := range m.chain.segs {
			if m.chain.pooled[i] {
				putBodyBuf(s)
			}
			m.chain.segs[i] = nil
		}
		releaseChain(m.chain)
		m.chain = nil
	}
	if m.pooledBody {
		putBodyBuf(m.body)
	}
	m.body = nil
	m.pooledBody = false
}
