// Package mime implements the MIME media-type system that MobiGATE uses as
// the underlying type definition for messages and streamlet ports (thesis
// §4.1), together with the MIME message representation and wire codec that
// streamlets exchange (§6.2, §6.5).
//
// Port and message types form a lattice rooted at "*/*": a bare top-level
// type such as "text" denotes the whole family "text/*", and a full type
// such as "text/richtext" is a subtype of both "text" and "*/*". A Registry
// can extend the lattice with explicit subtype edges (Figure 4-1 allows a
// type to have multiple direct supertypes).
package mime

import (
	"fmt"
	"sort"
	"strings"
)

// MediaType is a parsed MIME media type such as "text/plain; charset=utf-8".
// A Subtype of "*" denotes the whole top-level family; Type "*" (with
// Subtype "*") denotes the universal type.
type MediaType struct {
	// Type is the top-level media type ("text", "image", ... or "*").
	Type string
	// Subtype is the subtype ("plain", "gif", ...) or "*" for the family.
	Subtype string
	// Params holds the optional attribute=value parameters, keys lowercased.
	Params map[string]string
}

// Wildcard is the universal media type "*/*", the top of the lattice.
var Wildcard = MediaType{Type: "*", Subtype: "*"}

// ParseMediaType parses a media-type expression following the simplified
// Content-Type grammar of Figure 4-2:
//
//	type "/" subtype *( ";" attribute "=" value )
//
// A bare top-level type ("text") is accepted and normalized to the family
// form ("text/*"). Both names are lowercased; parameter values keep case.
func ParseMediaType(s string) (MediaType, error) {
	rest := strings.TrimSpace(s)
	if rest == "" {
		return MediaType{}, fmt.Errorf("mime: empty media type")
	}
	var paramPart string
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		rest, paramPart = rest[:i], rest[i+1:]
	}
	rest = strings.TrimSpace(rest)

	mt := MediaType{}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		mt.Type = strings.ToLower(strings.TrimSpace(rest[:i]))
		mt.Subtype = strings.ToLower(strings.TrimSpace(rest[i+1:]))
	} else {
		mt.Type = strings.ToLower(rest)
		mt.Subtype = "*"
	}
	if !validToken(mt.Type) || !validToken(mt.Subtype) {
		return MediaType{}, fmt.Errorf("mime: malformed media type %q", s)
	}

	if paramPart != "" {
		mt.Params = make(map[string]string)
		for _, kv := range strings.Split(paramPart, ";") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			eq := strings.IndexByte(kv, '=')
			if eq <= 0 {
				return MediaType{}, fmt.Errorf("mime: malformed parameter %q in %q", kv, s)
			}
			key := strings.ToLower(strings.TrimSpace(kv[:eq]))
			val := strings.TrimSpace(kv[eq+1:])
			val = strings.Trim(val, `"`)
			if !validToken(key) {
				return MediaType{}, fmt.Errorf("mime: malformed parameter name %q in %q", key, s)
			}
			mt.Params[key] = val
		}
	}
	return mt, nil
}

// MustParse is ParseMediaType that panics on error; for use with constants.
func MustParse(s string) MediaType {
	mt, err := ParseMediaType(s)
	if err != nil {
		panic(err)
	}
	return mt
}

func validToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-' || c == '+' || c == '.' || c == '_' || c == '*':
		default:
			return false
		}
	}
	return true
}

// String renders the media type, including parameters in sorted key order.
func (m MediaType) String() string {
	var b strings.Builder
	b.WriteString(m.Type)
	b.WriteByte('/')
	b.WriteString(m.Subtype)
	if len(m.Params) > 0 {
		keys := make([]string, 0, len(m.Params))
		for k := range m.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "; %s=%s", k, m.Params[k])
		}
	}
	return b.String()
}

// Base returns the media type without parameters.
func (m MediaType) Base() MediaType {
	return MediaType{Type: m.Type, Subtype: m.Subtype}
}

// IsWildcard reports whether m is the universal type "*/*".
func (m MediaType) IsWildcard() bool { return m.Type == "*" && m.Subtype == "*" }

// IsFamily reports whether m denotes a whole top-level family like "text/*".
func (m MediaType) IsFamily() bool { return m.Subtype == "*" && m.Type != "*" }

// Equal reports base-type equality, ignoring parameters.
func (m MediaType) Equal(o MediaType) bool {
	return m.Type == o.Type && m.Subtype == o.Subtype
}

// key is the canonical map key for the base type.
func (m MediaType) key() string { return m.Type + "/" + m.Subtype }

// SubtypeOf reports whether m is equal to or a lattice subtype of o, using
// only the structural rules (no registry edges):
//
//   - everything is a subtype of "*/*";
//   - "t/s" and "t/*" are subtypes of "t/*";
//   - "t/s" is a subtype of "t/s".
//
// This is the compatibility relation of §4.4.1: a source port of type m may
// feed a sink port of type o iff m.SubtypeOf(o).
func (m MediaType) SubtypeOf(o MediaType) bool {
	if o.IsWildcard() {
		return true
	}
	if m.Type != o.Type {
		return false
	}
	return o.Subtype == "*" || m.Subtype == o.Subtype
}
