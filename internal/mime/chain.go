package mime

import "sync"

// Buffer-chain bodies: the zero-copy half of the batched data plane. A
// transform that only adds to a message — an annotation footer, a framing
// trailer, a signature block — should not pay a copy of the (potentially
// multi-hundred-KB) body it leaves untouched. AppendBody/AppendBodyBuf
// convert the message to a chain of segments in place: the original body
// becomes segment 0 (no copy), each appended piece becomes a further
// segment, and the vectored encoder (WriteToV in codec.go) puts the chain
// on the wire without ever materializing it contiguously.
//
// The contiguous path stays primary: Body() flattens a chained message into
// one pooled buffer on first use and caches it, so stateful services (and
// any reader that wants plain []byte) are oblivious to chaining — they just
// pay the copy the moment they actually need contiguity. Len, Clone, Encode,
// WriteTo, and Recycle are all chain-aware, so a chained message is
// indistinguishable from a contiguous one everywhere except cost.
//
// Ownership: segments appended with AppendBody remain caller-owned (like
// SetBody's slice) and are never recycled. Segments minted by AppendBodyBuf
// and a promoted pool-owned body are message-owned and return to the shared
// body pool when the chain is flattened or the message recycled.

// BodyChain holds a message body as an ordered list of segments. It is
// created implicitly by Message.AppendBody/AppendBodyBuf; callers only ever
// see it through Message.Segments.
type BodyChain struct {
	segs   [][]byte
	pooled []bool // per-segment: owned by the body pool (see bufpool.go)
	n      int    // total bytes across segs
}

// Len returns the total body length across all segments.
func (c *BodyChain) Len() int { return c.n }

func (c *BodyChain) append(seg []byte, pooled bool) {
	c.segs = append(c.segs, seg)
	c.pooled = append(c.pooled, pooled)
	c.n += len(seg)
}

// chainPool recycles the chain structs (and their segs/pooled slice
// capacity) so chained hops allocate nothing in steady state.
var chainPool sync.Pool // of *BodyChain

func acquireChain() *BodyChain {
	if c, _ := chainPool.Get().(*BodyChain); c != nil {
		return c
	}
	return &BodyChain{}
}

// releaseChain returns the struct to the pool. Segment references must
// already be cleared or transferred by the caller.
func releaseChain(c *BodyChain) {
	for i := range c.segs {
		c.segs[i] = nil
	}
	c.segs = c.segs[:0]
	c.pooled = c.pooled[:0]
	c.n = 0
	chainPool.Put(c)
}

// AppendBody appends seg to the message body without copying: the slice is
// retained as a new chain segment (converting the message to chain form on
// first use). Like SetBody's slice, the segment stays caller-owned and is
// never recycled. Empty segments are ignored.
func (m *Message) AppendBody(seg []byte) {
	if len(seg) == 0 {
		return
	}
	m.ensureChain().append(seg, false)
}

// AppendBodyBuf appends a fresh message-owned segment of length n, drawn
// from the shared body pool, and returns it for the caller to fill. This is
// the zero-copy emission path for transforms that generate content: write
// the new bytes straight into the chain instead of rebuilding the body.
func (m *Message) AppendBodyBuf(n int) []byte {
	seg := getBodyBuf(n)
	m.ensureChain().append(seg, true)
	return seg
}

// Chained reports whether the body is currently in chain form. Reading
// Body() flattens and clears it.
func (m *Message) Chained() bool { return m.chain != nil }

// Segments returns the body's segments without copying or flattening (nil
// when the body is contiguous — use Body then). The returned slices are
// views into the live message; they must not be retained or mutated.
func (m *Message) Segments() [][]byte {
	if m.chain == nil {
		return nil
	}
	return m.chain.segs
}

// ensureChain converts the message to chain form, promoting any existing
// contiguous body to segment 0 (ownership flag carried over, no copy).
func (m *Message) ensureChain() *BodyChain {
	if m.chain == nil {
		c := acquireChain()
		if len(m.body) > 0 {
			c.append(m.body, m.pooledBody)
		}
		m.body = nil
		m.pooledBody = false
		m.chain = c
	}
	return m.chain
}

// flattenChain materializes a chained body into one pooled contiguous
// buffer and caches it as the plain body, recycling message-owned segments.
// Called by Body(); after it the message is an ordinary contiguous message.
func (m *Message) flattenChain() {
	c := m.chain
	buf := getBodyBuf(c.n)
	off := 0
	for i, s := range c.segs {
		off += copy(buf[off:], s)
		if c.pooled[i] {
			putBodyBuf(s)
		}
		c.segs[i] = nil
	}
	m.chain = nil
	releaseChain(c)
	m.body = buf
	m.pooledBody = true
}
