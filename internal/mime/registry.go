package mime

import (
	"fmt"
	"sync"
)

// Registry is the extensible type lattice of Figure 4-1. Beyond the
// structural wildcard/family rules of MediaType.SubtypeOf, a Registry lets
// streamlet providers declare explicit subtype edges — e.g. that
// "text/richtext" is a direct subtype of "text/enriched" — so the MCL
// compatibility check can traverse a richer hierarchy. A type may have
// multiple direct supertypes and multiple direct subtypes.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	// supers maps a base-type key to its declared direct supertypes.
	supers map[string][]MediaType
}

// NewRegistry returns an empty registry; the structural rules (wildcards,
// top-level families) always apply even with no declared edges.
func NewRegistry() *Registry {
	return &Registry{supers: make(map[string][]MediaType)}
}

// DefaultRegistry carries the handful of well-known relations used in the
// thesis examples: text/richtext ⊂ text/plain family conversions and the
// application/postscript → text/richtext distillation chain.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	// Registered as in Figure 4-1's sample hierarchy: richtext specializes
	// enriched text, and both are (structurally) inside text/*.
	must(r.AddSubtype(MustParse("text/richtext"), MustParse("text/enriched")))
	must(r.AddSubtype(MustParse("image/pgm"), MustParse("image/x-raster")))
	return r
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// AddSubtype declares child to be a direct subtype of parent. It rejects
// self-edges and edges that would create a cycle among declared edges
// (the structural lattice is acyclic by construction).
func (r *Registry) AddSubtype(child, parent MediaType) error {
	child, parent = child.Base(), parent.Base()
	if child.Equal(parent) {
		return fmt.Errorf("mime: self subtype edge %s", child)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reachesLocked(parent, child) {
		return fmt.Errorf("mime: subtype edge %s -> %s would create a cycle", child, parent)
	}
	r.supers[child.key()] = append(r.supers[child.key()], parent)
	return nil
}

// SubtypeOf reports whether from is equal to or a subtype of to, combining
// the structural rules with declared edges transitively. This is the
// relation used by the MCL compiler when validating connect(...) calls.
func (r *Registry) SubtypeOf(from, to MediaType) bool {
	if from.SubtypeOf(to) {
		return true
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.reachesLocked(from, to)
}

// reachesLocked walks declared super edges from `from`, applying the
// structural rule at every step, under the caller's lock.
func (r *Registry) reachesLocked(from, to MediaType) bool {
	seen := map[string]bool{}
	stack := []MediaType{from.Base()}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur.key()] {
			continue
		}
		seen[cur.key()] = true
		if cur.SubtypeOf(to) {
			return true
		}
		stack = append(stack, r.supers[cur.key()]...)
	}
	return false
}

// Supertypes returns the declared direct supertypes of t (not including the
// structural family/wildcard supertypes). The returned slice is a copy.
func (r *Registry) Supertypes(t MediaType) []MediaType {
	r.mu.RLock()
	defer r.mu.RUnlock()
	edges := r.supers[t.Base().key()]
	out := make([]MediaType, len(edges))
	copy(out, edges)
	return out
}
