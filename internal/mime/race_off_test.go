//go:build !race

package mime

const raceEnabled = false
