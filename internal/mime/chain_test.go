package mime

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestAppendBodyZeroCopy(t *testing.T) {
	base := []byte("hello, ")
	m := NewMessage(MustParse("text/plain"), base)
	m.AppendBody([]byte("chained "))
	m.AppendBody([]byte("world"))

	if !m.Chained() {
		t.Fatal("message not chained after AppendBody")
	}
	if m.Len() != len("hello, chained world") {
		t.Errorf("Len = %d", m.Len())
	}
	segs := m.Segments()
	if len(segs) != 3 {
		t.Fatalf("segments = %d, want 3", len(segs))
	}
	// Zero-copy proof: segment 0 is the original slice, not a copy.
	if &segs[0][0] != &base[0] {
		t.Error("promoted body segment was copied")
	}

	// Body() flattens, caches, and leaves an ordinary contiguous message.
	if got := string(m.Body()); got != "hello, chained world" {
		t.Errorf("Body = %q", got)
	}
	if m.Chained() {
		t.Error("still chained after Body()")
	}
	if got := string(m.Body()); got != "hello, chained world" {
		t.Errorf("second Body = %q", got)
	}
}

func TestAppendBodyBufPooledSegment(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), []byte("payload"))
	seg := m.AppendBodyBuf(4)
	copy(seg, "tail")
	if got := string(m.Body()); got != "payloadtail" {
		t.Errorf("Body = %q", got)
	}
	m.Recycle()

	// Recycling a still-chained message must not panic and must drop all
	// segments.
	m2 := NewMessage(MustParse("text/plain"), []byte("abc"))
	copy(m2.AppendBodyBuf(3), "def")
	m2.Recycle()
	if m2.Len() != 0 {
		t.Errorf("recycled Len = %d", m2.Len())
	}
}

func TestSetBodyDropsChain(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), []byte("old"))
	m.AppendBody([]byte("chain"))
	m.SetBody([]byte("new"))
	if m.Chained() || string(m.Body()) != "new" {
		t.Errorf("SetBody left chained=%v body=%q", m.Chained(), m.Body())
	}
}

func TestCloneOfChained(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), []byte("left-"))
	m.AppendBody([]byte("right"))
	c := m.Clone()
	if c.Chained() {
		t.Error("clone is chained; clones must be contiguous")
	}
	if got := string(c.Body()); got != "left-right" {
		t.Errorf("clone body = %q", got)
	}
	if !m.Chained() {
		t.Error("cloning flattened the source")
	}
}

// TestWriteToVWireEquivalence pins the wire format: a chained message must
// serialize byte-for-byte like the equivalent contiguous message, through
// WriteToV, the chain-aware WriteTo, and Encode, and must round-trip
// through ReadMessage with the correct Content-Length.
func TestWriteToVWireEquivalence(t *testing.T) {
	build := func() *Message {
		m := &Message{ID: "msg-0000000000000001", fields: map[string]string{}}
		m.SetContentType(MustParse("text/plain"))
		m.SetBody([]byte("alpha-"))
		m.AppendBody([]byte("beta-"))
		copy(m.AppendBodyBuf(5), "gamma")
		return m
	}
	flat := &Message{ID: "msg-0000000000000001", fields: map[string]string{}}
	flat.SetContentType(MustParse("text/plain"))
	flat.SetBody([]byte("alpha-beta-gamma"))

	var want bytes.Buffer
	if _, err := flat.WriteTo(&want); err != nil {
		t.Fatal(err)
	}

	var viaV, viaWT bytes.Buffer
	if _, err := build().WriteToV(&viaV); err != nil {
		t.Fatal(err)
	}
	if _, err := build().WriteTo(&viaWT); err != nil {
		t.Fatal(err)
	}
	if viaV.String() != want.String() {
		t.Errorf("WriteToV:\n%q\nwant:\n%q", viaV.String(), want.String())
	}
	if viaWT.String() != want.String() {
		t.Errorf("chained WriteTo:\n%q\nwant:\n%q", viaWT.String(), want.String())
	}
	if enc := build().Encode(); string(enc) != want.String() {
		t.Errorf("Encode:\n%q\nwant:\n%q", enc, want.String())
	}

	back, err := ReadMessage(bufio.NewReader(strings.NewReader(viaV.String())))
	if err != nil {
		t.Fatal(err)
	}
	if string(back.Body()) != "alpha-beta-gamma" {
		t.Errorf("round-trip body = %q", back.Body())
	}
}

// TestWriteToVAllocFree is the vectored-encode zero-alloc gate: once the
// header and gather-list scratch pools are warm, serializing a chained
// message allocates nothing.
func TestWriteToVAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector sync.Pool instrumentation allocates")
	}
	m := NewMessage(MustParse("text/plain"), bytes.Repeat([]byte("x"), 2048))
	m.AppendBody(bytes.Repeat([]byte("y"), 2048))
	m.AppendBody([]byte("tail"))
	for i := 0; i < 8; i++ { // warm the pools
		if _, err := m.WriteToV(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := m.WriteToV(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("WriteToV allocates %.1f objects per message, want 0", allocs)
	}
}
