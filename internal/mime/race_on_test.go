//go:build race

package mime

// raceEnabled gates allocation-count assertions: the race detector's
// sync.Pool instrumentation allocates, so zero-alloc gates only hold in
// uninstrumented builds.
const raceEnabled = true
