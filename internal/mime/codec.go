package mime

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Wire format: RFC-822-style header block terminated by an empty line, then
// exactly Content-Length body bytes. Writers always emit Content-Length and
// Message-Id so readers can frame messages on a byte stream; this is the
// format the Communicator streamlet puts on the wireless link and the
// client's Message Distributor parses back (§3.4.1).

const maxHeaderBytes = 64 << 10

// appendHeaders appends the canonical wire header block — every declared
// header, then Message-Id and Content-Length re-emitted canonically, then
// the terminating blank line — to buf.
func (m *Message) appendHeaders(buf []byte) []byte {
	for _, k := range m.keys {
		if k == HeaderContentLength || k == HeaderMessageID {
			continue // re-emitted canonically below
		}
		buf = append(buf, k...)
		buf = append(buf, ": "...)
		buf = append(buf, m.fields[k]...)
		buf = append(buf, "\r\n"...)
	}
	buf = append(buf, HeaderMessageID...)
	buf = append(buf, ": "...)
	buf = append(buf, m.ID...)
	buf = append(buf, "\r\n"...)
	buf = append(buf, HeaderContentLength...)
	buf = append(buf, ": "...)
	buf = strconv.AppendInt(buf, int64(m.Len()), 10)
	buf = append(buf, "\r\n\r\n"...)
	return buf
}

// headerBufPool recycles WriteTo's header scratch buffers so serializing to
// a stream costs no header-block allocation.
var headerBufPool sync.Pool // of *[]byte

// WriteTo serializes the message to w. It returns the number of bytes
// written. The header block goes out in a single Write. Chained bodies
// (chain.go) take the vectored path so the chain is never flattened.
func (m *Message) WriteTo(w io.Writer) (int64, error) {
	if m.chain != nil {
		return m.WriteToV(w)
	}
	bp, _ := headerBufPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	hdr := m.appendHeaders((*bp)[:0])
	n1, err := w.Write(hdr)
	*bp = hdr[:0]
	headerBufPool.Put(bp)
	if err != nil {
		return int64(n1), err
	}
	n2, err := w.Write(m.body)
	return int64(n1 + n2), err
}

// vecPool recycles WriteToV's gather lists so vectored serialization costs
// no per-message allocation.
var vecPool sync.Pool // of *[][]byte

// WriteToV serializes the message to w with a vectored (writev-style)
// gather list: one entry for the header block and one per body segment,
// handed to net.Buffers so a *net.TCPConn (or any buffersWriter) receives
// the whole message in a single writev and other writers get one Write per
// segment. Neither a chained nor a contiguous body is ever copied.
func (m *Message) WriteToV(w io.Writer) (int64, error) {
	bp, _ := headerBufPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	hdr := m.appendHeaders((*bp)[:0])
	vp, _ := vecPool.Get().(*[][]byte)
	if vp == nil {
		vp = new([][]byte)
	}
	vec := append((*vp)[:0], hdr)
	if m.chain != nil {
		for _, s := range m.chain.segs {
			if len(s) > 0 {
				vec = append(vec, s)
			}
		}
	} else if len(m.body) > 0 {
		vec = append(vec, m.body)
	}
	// vp is pooled, so aiming net.Buffers' pointer receiver at it (legal:
	// identical underlying types) keeps the call heap-allocation-free.
	*vp = vec
	n, err := (*net.Buffers)(vp).WriteTo(w)
	// net.Buffers consumed entries in place through vec's backing array;
	// clear any survivors (error paths) before pooling so no body memory is
	// pinned by the scratch.
	for i := range vec {
		vec[i] = nil
	}
	*vp = vec[:0]
	vecPool.Put(vp)
	*bp = hdr[:0]
	headerBufPool.Put(bp)
	return n, err
}

// Encode serializes the message to a byte slice (chain-aware, without
// flattening the source).
func (m *Message) Encode() []byte {
	buf := make([]byte, 0, m.Len()+256)
	buf = m.appendHeaders(buf)
	if m.chain != nil {
		for _, s := range m.chain.segs {
			buf = append(buf, s...)
		}
		return buf
	}
	return append(buf, m.body...)
}

// ReadMessage parses one wire-format message from r. It returns io.EOF when
// the stream ends cleanly before any byte of a new message, and
// io.ErrUnexpectedEOF when a message is truncated.
func ReadMessage(r *bufio.Reader) (*Message, error) {
	m := &Message{fields: make(map[string]string, 8)}
	headerBytes := 0
	first := true
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF && first && line == "" {
				return nil, io.EOF
			}
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		first = false
		headerBytes += len(line)
		if headerBytes > maxHeaderBytes {
			return nil, fmt.Errorf("mime: header block exceeds %d bytes", maxHeaderBytes)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break // end of headers
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("mime: malformed header line %q", line)
		}
		key := strings.TrimSpace(line[:colon])
		val := strings.TrimSpace(line[colon+1:])
		m.SetHeader(key, val)
	}

	n := parseContentLength(m.Header(HeaderContentLength))
	if n < 0 {
		return nil, fmt.Errorf("mime: missing or invalid Content-Length")
	}
	m.ID = m.Header(HeaderMessageID)
	if m.ID == "" {
		m.ID = NewID()
	}
	m.DelHeader(HeaderContentLength)
	m.DelHeader(HeaderMessageID)

	// The body is drawn from the shared buffer pool; the coordination plane
	// may Recycle it once the message is provably dead (see bufpool.go).
	m.body = getBodyBuf(int(n))
	m.pooledBody = true
	if _, err := io.ReadFull(r, m.body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		m.Recycle()
		return nil, err
	}
	return m, nil
}

// readerPool recycles the codec's buffered readers: Decode sits on the
// per-hop path of header-parsing streamlets (the §7.2 redirector probe), and
// a fresh bufio.Reader costs a 4 KB buffer allocation per message.
var readerPool sync.Pool // of *bufio.Reader

// Decode parses a message from a byte slice.
func Decode(data []byte) (*Message, error) {
	br, _ := readerPool.Get().(*bufio.Reader)
	if br == nil {
		br = bufio.NewReader(nil)
	}
	br.Reset(bytes.NewReader(data))
	m, err := ReadMessage(br)
	br.Reset(nil) // drop the reference to data before pooling
	readerPool.Put(br)
	return m, err
}
