package mime

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Wire format: RFC-822-style header block terminated by an empty line, then
// exactly Content-Length body bytes. Writers always emit Content-Length and
// Message-Id so readers can frame messages on a byte stream; this is the
// format the Communicator streamlet puts on the wireless link and the
// client's Message Distributor parses back (§3.4.1).

const maxHeaderBytes = 64 << 10

// WriteTo serializes the message to w. It returns the number of bytes
// written.
func (m *Message) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, k := range m.keys {
		if k == HeaderContentLength || k == HeaderMessageID {
			continue // re-emitted canonically below
		}
		b.WriteString(k)
		b.WriteString(": ")
		b.WriteString(m.fields[k])
		b.WriteString("\r\n")
	}
	b.WriteString(HeaderMessageID)
	b.WriteString(": ")
	b.WriteString(m.ID)
	b.WriteString("\r\n")
	b.WriteString(HeaderContentLength)
	b.WriteString(": ")
	b.WriteString(strconv.Itoa(len(m.body)))
	b.WriteString("\r\n\r\n")

	n1, err := io.WriteString(w, b.String())
	if err != nil {
		return int64(n1), err
	}
	n2, err := w.Write(m.body)
	return int64(n1 + n2), err
}

// Encode serializes the message to a byte slice.
func (m *Message) Encode() []byte {
	var sb strings.Builder
	sb.Grow(len(m.body) + 256)
	if _, err := m.WriteTo(&sb); err != nil {
		panic(err) // strings.Builder never errors
	}
	return []byte(sb.String())
}

// ReadMessage parses one wire-format message from r. It returns io.EOF when
// the stream ends cleanly before any byte of a new message, and
// io.ErrUnexpectedEOF when a message is truncated.
func ReadMessage(r *bufio.Reader) (*Message, error) {
	m := &Message{fields: make(map[string]string, 8)}
	headerBytes := 0
	first := true
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF && first && line == "" {
				return nil, io.EOF
			}
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		first = false
		headerBytes += len(line)
		if headerBytes > maxHeaderBytes {
			return nil, fmt.Errorf("mime: header block exceeds %d bytes", maxHeaderBytes)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break // end of headers
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("mime: malformed header line %q", line)
		}
		key := strings.TrimSpace(line[:colon])
		val := strings.TrimSpace(line[colon+1:])
		m.SetHeader(key, val)
	}

	n := parseContentLength(m.Header(HeaderContentLength))
	if n < 0 {
		return nil, fmt.Errorf("mime: missing or invalid Content-Length")
	}
	m.ID = m.Header(HeaderMessageID)
	if m.ID == "" {
		m.ID = fmt.Sprintf("msg-%d", msgCounter.Add(1))
	}
	m.DelHeader(HeaderContentLength)
	m.DelHeader(HeaderMessageID)

	m.body = make([]byte, n)
	if _, err := io.ReadFull(r, m.body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return m, nil
}

// Decode parses a message from a byte slice.
func Decode(data []byte) (*Message, error) {
	return ReadMessage(bufio.NewReader(strings.NewReader(string(data))))
}
