package mime

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestMessageHeaders(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), []byte("hello"))
	if m.Header("content-type") != "text/plain" {
		t.Errorf("Content-Type = %q", m.Header("content-type"))
	}
	m.SetHeader("X-Custom", "1")
	m.SetHeader("x-custom", "2") // same canonical key replaces
	if got := m.Header("X-CUSTOM"); got != "2" {
		t.Errorf("X-Custom = %q", got)
	}
	hs := m.Headers()
	if len(hs) != 2 {
		t.Errorf("Headers = %v", hs)
	}
	m.DelHeader("x-custom")
	if m.Header("X-Custom") != "" {
		t.Error("DelHeader did not remove")
	}
	if len(m.Headers()) != 1 {
		t.Errorf("Headers after delete = %v", m.Headers())
	}
	m.DelHeader("never-set") // must not panic
}

func TestMessageIDsUnique(t *testing.T) {
	a := NewMessage(Wildcard, nil)
	b := NewMessage(Wildcard, nil)
	if a.ID == b.ID || a.ID == "" {
		t.Errorf("IDs not unique: %q %q", a.ID, b.ID)
	}
}

func TestContentTypeFallback(t *testing.T) {
	m := NewMessage(MustParse("image/gif"), nil)
	if !m.ContentType().Equal(MustParse("image/gif")) {
		t.Error("ContentType mismatch")
	}
	m.SetHeader(HeaderContentType, "garbage//")
	if !m.ContentType().IsWildcard() {
		t.Error("malformed Content-Type should fall back to */*")
	}
	m.DelHeader(HeaderContentType)
	if !m.ContentType().IsWildcard() {
		t.Error("missing Content-Type should fall back to */*")
	}
}

func TestPeerChain(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), nil)
	if _, ok := m.PopPeer(); ok {
		t.Error("PopPeer on empty chain")
	}
	m.PushPeer("compressor")
	m.PushPeer("encryptor")
	if got := m.Peers(); len(got) != 2 || got[0] != "compressor" || got[1] != "encryptor" {
		t.Errorf("Peers = %v", got)
	}
	// LIFO: last pushed reversed first.
	p, ok := m.PopPeer()
	if !ok || p != "encryptor" {
		t.Errorf("PopPeer = %q, %v", p, ok)
	}
	p, ok = m.PopPeer()
	if !ok || p != "compressor" {
		t.Errorf("PopPeer = %q, %v", p, ok)
	}
	if _, ok = m.PopPeer(); ok {
		t.Error("chain should be drained")
	}
	if m.Header(HeaderContentPeers) != "" {
		t.Error("header should be removed once drained")
	}
}

func TestSession(t *testing.T) {
	m := NewMessage(Wildcard, nil)
	if m.Session() != "" {
		t.Error("fresh message has session")
	}
	m.SetSession("sess-42")
	if m.Session() != "sess-42" {
		t.Errorf("Session = %q", m.Session())
	}
}

func TestClone(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), []byte("body"))
	m.SetSession("s1")
	c := m.Clone()
	if c.ID == m.ID {
		t.Error("clone shares ID")
	}
	if string(c.Body()) != "body" || c.Session() != "s1" {
		t.Error("clone lost content")
	}
	c.Body()[0] = 'X'
	if m.Body()[0] == 'X' {
		t.Error("clone aliases body")
	}
	c.SetHeader("X-New", "v")
	if m.Header("X-New") != "" {
		t.Error("clone aliases headers")
	}
}

func TestWireRoundTrip(t *testing.T) {
	m := NewMessage(MustParse("multipart/mixed"), []byte("the payload\r\nwith line breaks\x00and nulls"))
	m.SetSession("sess-7")
	m.PushPeer("a")
	m.PushPeer("b")

	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
	}

	got, err := ReadMessage(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID {
		t.Errorf("ID %q != %q", got.ID, m.ID)
	}
	if !bytes.Equal(got.Body(), m.Body()) {
		t.Error("body corrupted")
	}
	if got.Session() != "sess-7" {
		t.Errorf("session = %q", got.Session())
	}
	if ps := got.Peers(); len(ps) != 2 || ps[1] != "b" {
		t.Errorf("peers = %v", ps)
	}
	if got.Header(HeaderContentLength) != "" {
		t.Error("Content-Length should be stripped after framing")
	}
}

func TestReadMessageStream(t *testing.T) {
	var buf bytes.Buffer
	m1 := NewMessage(MustParse("text/plain"), []byte("one"))
	m2 := NewMessage(MustParse("text/plain"), []byte("two two"))
	if _, err := m1.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	a, err := ReadMessage(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadMessage(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Body()) != "one" || string(b.Body()) != "two two" {
		t.Errorf("framing broke: %q %q", a.Body(), b.Body())
	}
	if _, err := ReadMessage(r); err != io.EOF {
		t.Errorf("want io.EOF at stream end, got %v", err)
	}
}

func TestReadMessageErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no content length", "Content-Type: text/plain\r\n\r\n"},
		{"bad header line", "garbage line\r\nContent-Length: 0\r\n\r\n"},
		{"negative length", "Content-Length: -5\r\n\r\n"},
		{"truncated body", "Content-Length: 10\r\n\r\nabc"},
		{"truncated headers", "Content-Type: text/plain\r\n"},
	}
	for _, c := range cases {
		_, err := ReadMessage(bufio.NewReader(strings.NewReader(c.in)))
		if err == nil || err == io.EOF {
			t.Errorf("%s: want hard error, got %v", c.name, err)
		}
	}
}

func TestReadMessageHeaderCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 10000; i++ {
		sb.WriteString("X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n")
	}
	sb.WriteString("Content-Length: 0\r\n\r\n")
	if _, err := ReadMessage(bufio.NewReader(strings.NewReader(sb.String()))); err == nil {
		t.Error("oversized header block accepted")
	}
}

func TestEncodeDecode(t *testing.T) {
	m := NewMessage(MustParse("image/gif"), bytes.Repeat([]byte{0xAB}, 1024))
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body(), m.Body()) {
		t.Error("Encode/Decode corrupted body")
	}
}

// Property: any body round-trips exactly through the wire codec.
func TestWireRoundTripQuick(t *testing.T) {
	f := func(body []byte, session string) bool {
		m := NewMessage(MustParse("application/octet-stream"), body)
		if !strings.ContainsAny(session, "\r\n:") && session != "" {
			m.SetSession(session)
		}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Body(), body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type failingWriter struct{ after int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > w.after {
		n = w.after
	}
	w.after -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestWriteToPropagatesWriterErrors(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), bytes.Repeat([]byte("x"), 256))
	// Fail during the header block.
	if _, err := m.WriteTo(&failingWriter{after: 4}); err == nil {
		t.Error("header write error swallowed")
	}
	// Fail during the body.
	if _, err := m.WriteTo(&failingWriter{after: 150}); err == nil {
		t.Error("body write error swallowed")
	}
}

func TestReadMessageZeroLengthBody(t *testing.T) {
	m := NewMessage(MustParse("text/plain"), nil)
	got, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestNewIDFixedWidth(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 20 || id[:4] != "msg-" {
			t.Fatalf("id %q not fixed-width", id)
		}
		for _, c := range id[4:] {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("id %q has non-hex digit %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestRecycleOwnership(t *testing.T) {
	// Caller-owned bodies (SetBody / NewMessage) must never enter the pool.
	owned := make([]byte, 4096)
	m := NewMessage(MustParse("text/plain"), owned)
	m.Recycle()
	if m.Body() != nil {
		t.Error("Recycle did not detach body")
	}

	// Clone bodies are pool-allocated and may be recycled; a subsequent
	// clone of sufficient size reuses the returned buffer.
	big := NewMessage(MustParse("text/plain"), make([]byte, 8192))
	c1 := big.Clone()
	buf := c1.Body()
	c1.Recycle()
	c2 := big.Clone()
	if &c2.Body()[0] != &buf[0] {
		t.Log("clone did not reuse recycled buffer (pool may have been scavenged); not fatal")
	}
	if !bytes.Equal(c2.Body(), big.Body()) {
		t.Error("clone body corrupted after recycle round trip")
	}

	// Sub-threshold bodies skip the pool entirely.
	small := NewMessage(MustParse("text/plain"), []byte("tiny"))
	sc := small.Clone()
	sc.Recycle() // must not panic or pool a 4-byte buffer
}
