package mime

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseMediaType(t *testing.T) {
	cases := []struct {
		in      string
		typ     string
		subtype string
		params  map[string]string
		wantErr bool
	}{
		{in: "text/plain", typ: "text", subtype: "plain"},
		{in: "TEXT/PLAIN", typ: "text", subtype: "plain"},
		{in: " image/gif ", typ: "image", subtype: "gif"},
		{in: "text", typ: "text", subtype: "*"},
		{in: "*/*", typ: "*", subtype: "*"},
		{in: "multipart/mixed", typ: "multipart", subtype: "mixed"},
		{in: "text/plain; charset=us-ascii", typ: "text", subtype: "plain", params: map[string]string{"charset": "us-ascii"}},
		{in: `text/plain; charset="utf-8"; format=flowed`, typ: "text", subtype: "plain", params: map[string]string{"charset": "utf-8", "format": "flowed"}},
		{in: "application/x-postscript", typ: "application", subtype: "x-postscript"},
		{in: "", wantErr: true},
		{in: "text/", wantErr: true},
		{in: "/plain", wantErr: true},
		{in: "te xt/plain", wantErr: true},
		{in: "text/plain; =bad", wantErr: true},
		{in: "text/plain; bad", wantErr: true},
	}
	for _, c := range cases {
		mt, err := ParseMediaType(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseMediaType(%q): want error, got %v", c.in, mt)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMediaType(%q): %v", c.in, err)
			continue
		}
		if mt.Type != c.typ || mt.Subtype != c.subtype {
			t.Errorf("ParseMediaType(%q) = %s/%s, want %s/%s", c.in, mt.Type, mt.Subtype, c.typ, c.subtype)
		}
		for k, v := range c.params {
			if mt.Params[k] != v {
				t.Errorf("ParseMediaType(%q) param %q = %q, want %q", c.in, k, mt.Params[k], v)
			}
		}
	}
}

func TestMediaTypeString(t *testing.T) {
	mt := MustParse("text/plain; b=2; a=1")
	if got := mt.String(); got != "text/plain; a=1; b=2" {
		t.Errorf("String() = %q", got)
	}
	if got := mt.Base().String(); got != "text/plain" {
		t.Errorf("Base().String() = %q", got)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, s := range []string{"text/plain", "image/*", "*/*", "text/plain; a=1"} {
		mt := MustParse(s)
		back, err := ParseMediaType(mt.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", s, err)
		}
		if !back.Equal(mt) {
			t.Errorf("round trip %q: got %v", s, back)
		}
	}
}

func TestSubtypeOfStructural(t *testing.T) {
	cases := []struct {
		from, to string
		want     bool
	}{
		{"text/plain", "*/*", true},
		{"text/plain", "text", true},
		{"text/plain", "text/*", true},
		{"text/plain", "text/plain", true},
		{"text/richtext", "text", true},
		{"text/*", "text/*", true},
		{"text/*", "*/*", true},
		{"*/*", "*/*", true},
		{"text", "text/plain", false}, // family is NOT a subtype of a member
		{"*/*", "text", false},
		{"text/plain", "text/richtext", false},
		{"image/gif", "text", false},
		{"multipart/mixed", "multipart/alternative", false},
	}
	for _, c := range cases {
		got := MustParse(c.from).SubtypeOf(MustParse(c.to))
		if got != c.want {
			t.Errorf("SubtypeOf(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// Property: SubtypeOf is reflexive and transitive over the structural rules.
func TestSubtypeOfProperties(t *testing.T) {
	types := []MediaType{
		MustParse("*/*"), MustParse("text/*"), MustParse("text/plain"),
		MustParse("text/richtext"), MustParse("image/*"), MustParse("image/gif"),
		MustParse("application/pdf"),
	}
	for _, a := range types {
		if !a.SubtypeOf(a) {
			t.Errorf("SubtypeOf not reflexive for %s", a)
		}
	}
	for _, a := range types {
		for _, b := range types {
			for _, c := range types {
				if a.SubtypeOf(b) && b.SubtypeOf(c) && !a.SubtypeOf(c) {
					t.Errorf("transitivity violated: %s <= %s <= %s", a, b, c)
				}
			}
		}
	}
	// Antisymmetry on base types.
	for _, a := range types {
		for _, b := range types {
			if a.SubtypeOf(b) && b.SubtypeOf(a) && !a.Equal(b) {
				t.Errorf("antisymmetry violated: %s vs %s", a, b)
			}
		}
	}
}

func TestRegistrySubtypeEdges(t *testing.T) {
	r := NewRegistry()
	rich := MustParse("text/richtext")
	enr := MustParse("text/enriched")
	if r.SubtypeOf(rich, enr) {
		t.Fatal("no edge declared yet")
	}
	if err := r.AddSubtype(rich, enr); err != nil {
		t.Fatal(err)
	}
	if !r.SubtypeOf(rich, enr) {
		t.Error("declared edge not honored")
	}
	// Transitive through a declared edge into the structural lattice.
	if !r.SubtypeOf(rich, MustParse("text")) {
		t.Error("structural rule lost after edges")
	}
	// Cross-family edge: application/x-note is declared under text/plain.
	note := MustParse("application/x-note")
	if err := r.AddSubtype(note, MustParse("text/plain")); err != nil {
		t.Fatal(err)
	}
	if !r.SubtypeOf(note, MustParse("text")) {
		t.Error("cross-family transitivity failed")
	}
	if r.SubtypeOf(MustParse("text/plain"), note) {
		t.Error("edge direction reversed")
	}
}

func TestRegistryRejectsCycles(t *testing.T) {
	r := NewRegistry()
	a, b, c := MustParse("x/a"), MustParse("x/b"), MustParse("x/c")
	if err := r.AddSubtype(a, b); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSubtype(b, c); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSubtype(c, a); err == nil {
		t.Error("cycle accepted")
	}
	if err := r.AddSubtype(a, a); err == nil {
		t.Error("self edge accepted")
	}
}

func TestRegistryMultipleSupertypes(t *testing.T) {
	r := NewRegistry()
	child := MustParse("x/child")
	p1, p2 := MustParse("x/p1"), MustParse("y/p2")
	if err := r.AddSubtype(child, p1); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSubtype(child, p2); err != nil {
		t.Fatal(err)
	}
	if !r.SubtypeOf(child, p1) || !r.SubtypeOf(child, p2) {
		t.Error("multiple supertypes not both reachable")
	}
	sups := r.Supertypes(child)
	if len(sups) != 2 {
		t.Errorf("Supertypes = %v", sups)
	}
}

func TestDefaultRegistry(t *testing.T) {
	r := DefaultRegistry()
	if !r.SubtypeOf(MustParse("text/richtext"), MustParse("text/enriched")) {
		t.Error("default richtext edge missing")
	}
}

// Property-based: parse never panics and accepted inputs round-trip.
func TestParseQuick(t *testing.T) {
	f := func(a, b string) bool {
		mt, err := ParseMediaType(a + "/" + b)
		if err != nil {
			return true
		}
		back, err := ParseMediaType(mt.String())
		return err == nil && back.Equal(mt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalHeaderKey(t *testing.T) {
	cases := map[string]string{
		"content-type":    "Content-Type",
		"CONTENT-LENGTH":  "Content-Length",
		"x-my-header":     "X-My-Header",
		"Content-Session": "Content-Session",
	}
	for in, want := range cases {
		if got := CanonicalHeaderKey(in); got != want {
			t.Errorf("CanonicalHeaderKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMediaTypePredicates(t *testing.T) {
	if !Wildcard.IsWildcard() || Wildcard.IsFamily() {
		t.Error("Wildcard predicates wrong")
	}
	fam := MustParse("text")
	if fam.IsWildcard() || !fam.IsFamily() {
		t.Error("family predicates wrong")
	}
	leaf := MustParse("text/plain")
	if leaf.IsWildcard() || leaf.IsFamily() {
		t.Error("leaf predicates wrong")
	}
	if !strings.Contains(leaf.String(), "/") {
		t.Error("String missing slash")
	}
}
