package semantics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mobigate/internal/mcl"
)

func lineGraph(n int) *Graph {
	g := NewGraph()
	prev := ""
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		g.AddNode(name, name)
		if prev != "" {
			g.AddEdge(prev, name)
		}
		prev = name
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddNode("a", "defA")
	g.AddNode("a", "other") // idempotent
	g.AddEdge("a", "b")     // b auto-added
	if g.Defs["a"] != "defA" {
		t.Errorf("Defs[a] = %q", g.Defs["a"])
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Error("edge wrong")
	}
	if got := g.Succs("a"); len(got) != 1 || got[0] != "b" {
		t.Errorf("Succs = %v", got)
	}
	g.RemoveEdge("a", "b")
	if g.HasEdge("a", "b") {
		t.Error("RemoveEdge failed")
	}
	g.AddEdge("a", "b")
	g.RemoveNode("b")
	if g.HasEdge("a", "b") || len(g.Nodes) != 1 {
		t.Error("RemoveNode failed")
	}
	g.RemoveNode("ghost") // no panic
}

func TestClosureAndReaches(t *testing.T) {
	g := lineGraph(4) // a->b->c->d
	cl := g.Closure()
	if !cl["a"]["d"] || cl["d"]["a"] {
		t.Error("closure wrong on line")
	}
	if cl["a"]["a"] {
		t.Error("acyclic closure contains identity")
	}
	if !g.Reaches("a", "c") || g.Reaches("c", "a") {
		t.Error("Reaches wrong")
	}
	// Self loop: identity appears in closure.
	g.AddEdge("d", "b")
	cl = g.Closure()
	if !cl["b"]["b"] {
		t.Error("cycle member should reach itself")
	}
}

func TestFindCycleLine(t *testing.T) {
	if cyc := lineGraph(5).FindCycle(); cyc != nil {
		t.Errorf("line graph has cycle %v", cyc)
	}
}

func TestFindCycleTriangle(t *testing.T) {
	// The §5.3 example: s1 -> s2 -> s3 -> s1.
	g := NewGraph()
	g.AddEdge("s1", "s2")
	g.AddEdge("s2", "s3")
	g.AddEdge("s3", "s1")
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("triangle cycle not found")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Errorf("cycle not closed: %v", cyc)
	}
	if len(cyc) != 4 {
		t.Errorf("cycle length = %d (%v)", len(cyc), cyc)
	}
	// Every consecutive pair must be a real edge.
	for i := 0; i+1 < len(cyc); i++ {
		if !g.HasEdge(cyc[i], cyc[i+1]) {
			t.Errorf("cycle uses non-edge %s->%s", cyc[i], cyc[i+1])
		}
	}
}

func TestFindCycleSelfLoop(t *testing.T) {
	g := NewGraph()
	g.AddEdge("x", "x")
	if cyc := g.FindCycle(); cyc == nil {
		t.Error("self loop not found")
	}
}

func TestFindCycleInDisconnectedComponent(t *testing.T) {
	g := lineGraph(3)
	g.AddEdge("p", "q")
	g.AddEdge("q", "p")
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("cycle in second component missed")
	}
	s := strings.Join(cyc, "")
	if !strings.Contains(s, "p") || !strings.Contains(s, "q") {
		t.Errorf("wrong cycle %v", cyc)
	}
}

// Property: FindCycle agrees with the closure-based Acyclic definition
// (id ∩ connect⁺ = ∅) on random graphs.
func TestFindCycleMatchesClosureQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), "d")
		}
		for i := 0; i < n*2; i++ {
			from := string(rune('a' + rng.Intn(n)))
			to := string(rune('a' + rng.Intn(n)))
			if from != to || rng.Intn(4) == 0 {
				g.AddEdge(from, to)
			}
		}
		hasCycleViaClosure := false
		for node, reach := range g.Closure() {
			if reach[node] {
				hasCycleViaClosure = true
				break
			}
		}
		cyc := g.FindCycle()
		if hasCycleViaClosure != (cyc != nil) {
			return false
		}
		// Any reported cycle must consist of real edges and be closed.
		if cyc != nil {
			if cyc[0] != cyc[len(cyc)-1] {
				return false
			}
			for i := 0; i+1 < len(cyc); i++ {
				if !g.HasEdge(cyc[i], cyc[i+1]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := lineGraph(3)
	c := g.Clone()
	c.AddEdge("c", "a")
	if g.HasEdge("c", "a") {
		t.Error("clone shares adjacency")
	}
	c.RemoveNode("a")
	if len(g.Nodes) != 3 {
		t.Error("clone shares nodes")
	}
}

func mustCompile(t *testing.T, src string) *mcl.Config {
	t.Helper()
	cfg, err := mcl.Compile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

const pipelineSrc = `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream line {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	streamlet s3 = new-streamlet (f);
	connect (s1.po, s2.pi);
	connect (s2.po, s3.pi);
	when (LOW_BANDWIDTH) {
		disconnect (s2.po, s3.pi);
		connect (s3.po, s1.pi);
	}
}
`

func TestBuildGraph(t *testing.T) {
	cfg := mustCompile(t, pipelineSrc)
	g := BuildGraph(cfg.Stream("line"))
	if len(g.Nodes) != 3 {
		t.Errorf("nodes = %v", g.Nodes)
	}
	if !g.HasEdge("s1", "s2") || !g.HasEdge("s2", "s3") || g.HasEdge("s3", "s1") {
		t.Error("edges wrong")
	}
	if g.Defs["s1"] != "f" {
		t.Errorf("def = %q", g.Defs["s1"])
	}
}

func TestApplyWhen(t *testing.T) {
	cfg := mustCompile(t, pipelineSrc)
	sc := cfg.Stream("line")
	g := BuildGraph(sc)
	wg := ApplyWhen(g, sc.Whens[0].Actions)
	if wg.HasEdge("s2", "s3") {
		t.Error("disconnect not applied")
	}
	if !wg.HasEdge("s3", "s1") {
		t.Error("connect not applied")
	}
	// Original untouched.
	if !g.HasEdge("s2", "s3") || g.HasEdge("s3", "s1") {
		t.Error("ApplyWhen mutated receiver")
	}
}

func TestApplyWhenRemoveAndDisconnectAll(t *testing.T) {
	g := lineGraph(3) // a->b->c
	rm := &mcl.RemoveStreamletStmt{Var: "b"}
	g2 := ApplyWhen(g, []mcl.Stmt{rm})
	if len(g2.Nodes) != 2 || g2.HasEdge("a", "b") {
		t.Error("remove-streamlet not applied")
	}
	da := &mcl.DisconnectAllStmt{Var: "b"}
	g3 := ApplyWhen(g, []mcl.Stmt{da})
	if g3.HasEdge("a", "b") || g3.HasEdge("b", "c") {
		t.Error("disconnectall left edges")
	}
	if len(g3.Nodes) != 3 {
		t.Error("disconnectall should keep node")
	}
	ns := &mcl.NewStreamletStmt{Vars: []string{"z"}, Def: "zz"}
	g4 := ApplyWhen(g, []mcl.Stmt{ns})
	if g4.Defs["z"] != "zz" {
		t.Error("new-streamlet not applied")
	}
}

func TestDOTOutput(t *testing.T) {
	g := NewGraph()
	g.AddNode("s1", "filter")
	g.AddNode("s2", "s2") // def == name: no parenthetical label
	g.AddEdge("s1", "s2")
	dot := g.DOT("app")
	for _, want := range []string{
		`digraph "app"`,
		`"s1" [label="s1\n(filter)"]`,
		`"s2" [label="s2"]`,
		`"s1" -> "s2";`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT lacks %q:\n%s", want, dot)
		}
	}
}
