package semantics

import (
	"strings"
	"testing"
)

// TestAnalyzePolicyDuplicates checks that two rules declaring the same
// condition and action are flagged: the second firing could only fight the
// first, so the duplication is a script bug.
func TestAnalyzePolicyDuplicates(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	connect (s1.po, s2.pi);
	when (bandwidth < 64000) -> remove s1;
	when (bandwidth < 64000) sustain 3 -> remove s1;
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s1.pi", "s2.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "policy" && strings.Contains(v.Detail, "duplicates") &&
			strings.Contains(v.Detail, "rule-1") && strings.Contains(v.Detail, "rule-2") {
			found = true
		}
	}
	if !found {
		t.Errorf("duplicate policy not reported; violations = %v", rep.Violations)
	}
}

// TestAnalyzePolicyDistinctHysteresisNotDuplicate: same condition with a
// different action is legitimate (e.g. escalating responses).
func TestAnalyzePolicyDistinctActions(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	connect (s1.po, s2.pi);
	when (faults > 0) -> param s1 mode = safe;
	when (faults > 2) -> remove s1;
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s1.pi", "s2.po"}})
	for _, v := range rep.Violations {
		if v.Kind == "policy" {
			t.Errorf("unexpected policy violation: %v", v)
		}
	}
}

// TestAnalyzePolicyWorkersStateful checks the STATEFUL gate: a policy that
// would raise a stateful streamlet's fan-out is rejected for the same
// reason the static `workers` attribute is.
func TestAnalyzePolicyWorkersStateful(t *testing.T) {
	src := `
streamlet keeper { port { in pi : text; out po : text; } attribute { type = STATEFUL; library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (keeper);
	streamlet s2 = new-streamlet (keeper);
	connect (s1.po, s2.pi);
	when (workers_busy > 2) -> workers s1 = 4;
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s1.pi", "s2.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "parallelism" && v.Scenario == "policy(rule-1)" &&
			strings.Contains(v.Detail, "STATEFUL") {
			found = true
		}
	}
	if !found {
		t.Errorf("stateful workers policy not reported; violations = %v", rep.Violations)
	}
}

// TestAnalyzePolicyWorkersMultiInput: multi-input streamlets are
// order-sensitive across ports and must stay serial even under a policy.
func TestAnalyzePolicyWorkersMultiInput(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet join { port { in pi1 : text; in pi2 : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (f);
	streamlet j = new-streamlet (join);
	connect (s1.po, j.pi1);
	when (queue_depth > 100) -> workers j = 4;
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s1.pi", "j.pi2", "j.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "parallelism" && v.Scenario == "policy(rule-1)" &&
			strings.Contains(v.Detail, "input ports") {
			found = true
		}
	}
	if !found {
		t.Errorf("multi-input workers policy not reported; violations = %v", rep.Violations)
	}
}

// TestAnalyzePolicyWorkersStatelessOK: raising fan-out on a stateless
// single-input streamlet is fine.
func TestAnalyzePolicyWorkersStatelessOK(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	connect (s1.po, s2.pi);
	when (workers_busy > 2) -> workers s1 = 4;
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s1.pi", "s2.po"}})
	for _, v := range rep.Violations {
		if v.Scenario == "policy(rule-1)" {
			t.Errorf("unexpected violation: %v", v)
		}
	}
}
