package semantics

import (
	"strings"
	"testing"
)

func TestParseRules(t *testing.T) {
	src := `
# security policy
exclude encrypt plain
depend encrypt decrypt
preorder encrypt compress
allow-open s3.po
allow-open s7.po
`
	r, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Exclusions["encrypt"]; len(got) != 1 || got[0] != "plain" {
		t.Errorf("exclusions = %v", r.Exclusions)
	}
	if got := r.Dependencies["encrypt"]; len(got) != 1 || got[0] != "decrypt" {
		t.Errorf("dependencies = %v", r.Dependencies)
	}
	if len(r.Preorders) != 1 || r.Preorders[0] != (Preorder{Before: "encrypt", After: "compress"}) {
		t.Errorf("preorders = %v", r.Preorders)
	}
	if len(r.AllowedOpenPorts) != 2 || r.AllowedOpenPorts[1] != "s7.po" {
		t.Errorf("allowed = %v", r.AllowedOpenPorts)
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, bad := range []string{
		"exclude onlyone",
		"depend a b c",
		"preorder a",
		"allow-open",
		"frobnicate a b",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "rules:1") {
			t.Errorf("ParseRules(%q) error lacks line: %v", bad, err)
		}
	}
}

func TestRulesMerge(t *testing.T) {
	a := Rules{
		Exclusions:       map[string][]string{"x": {"y"}},
		AllowedOpenPorts: []string{"a.po"},
	}
	b := Rules{
		Exclusions:   map[string][]string{"x": {"z"}},
		Dependencies: map[string][]string{"p": {"q"}},
		Preorders:    []Preorder{{Before: "e", After: "c"}},
	}
	m := a.Merge(b)
	if got := m.Exclusions["x"]; len(got) != 2 {
		t.Errorf("merged exclusions = %v", got)
	}
	if len(m.Dependencies["p"]) != 1 || len(m.Preorders) != 1 || len(m.AllowedOpenPorts) != 1 {
		t.Errorf("merge lost entries: %+v", m)
	}
	// Originals untouched.
	if len(a.Exclusions["x"]) != 1 {
		t.Error("merge mutated receiver")
	}
}

func TestParsedRulesDriveAnalysis(t *testing.T) {
	cfg := mustCompile(t, `
streamlet compress { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet encrypt { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet c = new-streamlet (compress);
	streamlet e = new-streamlet (encrypt);
	connect (c.po, e.pi);
}
`)
	rules, err := ParseRules("preorder encrypt compress\nallow-open e.po\n")
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(cfg.Stream("s"), rules)
	if rep.OK() {
		t.Fatal("rules file did not drive the preorder analysis")
	}
	if rep.Violations[0].Kind != "preorder" {
		t.Errorf("kind = %s", rep.Violations[0].Kind)
	}
}
