package semantics

import (
	"fmt"
	"strings"
)

// ParseRules reads the application-level relations of §5.2 from a simple
// line-oriented format, so tooling (mclc -rules) can verify compositions
// against project policies without writing Go:
//
//	# comments and blank lines are ignored
//	exclude   <defA> <defB>     # §5.2.3: never on a common path
//	depend    <defA> <defB>     # §5.2.4: A requires a connected B
//	preorder  <before> <after>  # §5.2.5: before deployed upstream of after
//	allow-open <inst.port>      # sanctioned exit port
//
// Definition names refer to streamlet definitions; allow-open entries refer
// to instance ports.
func ParseRules(src string) (Rules, error) {
	var r Rules
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "exclude":
			if len(fields) != 3 {
				return r, fmt.Errorf("rules:%d: exclude wants two definition names", lineNo+1)
			}
			if r.Exclusions == nil {
				r.Exclusions = make(map[string][]string)
			}
			r.Exclusions[fields[1]] = append(r.Exclusions[fields[1]], fields[2])
		case "depend":
			if len(fields) != 3 {
				return r, fmt.Errorf("rules:%d: depend wants two definition names", lineNo+1)
			}
			if r.Dependencies == nil {
				r.Dependencies = make(map[string][]string)
			}
			r.Dependencies[fields[1]] = append(r.Dependencies[fields[1]], fields[2])
		case "preorder":
			if len(fields) != 3 {
				return r, fmt.Errorf("rules:%d: preorder wants two definition names", lineNo+1)
			}
			r.Preorders = append(r.Preorders, Preorder{Before: fields[1], After: fields[2]})
		case "allow-open":
			if len(fields) != 2 {
				return r, fmt.Errorf("rules:%d: allow-open wants one inst.port", lineNo+1)
			}
			r.AllowedOpenPorts = append(r.AllowedOpenPorts, fields[1])
		default:
			return r, fmt.Errorf("rules:%d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	return r, nil
}

// Merge combines two rule sets (o's entries appended to r's).
func (r Rules) Merge(o Rules) Rules {
	out := Rules{
		Exclusions:       map[string][]string{},
		Dependencies:     map[string][]string{},
		Preorders:        append(append([]Preorder(nil), r.Preorders...), o.Preorders...),
		AllowedOpenPorts: append(append([]string(nil), r.AllowedOpenPorts...), o.AllowedOpenPorts...),
	}
	for k, v := range r.Exclusions {
		out.Exclusions[k] = append(out.Exclusions[k], v...)
	}
	for k, v := range o.Exclusions {
		out.Exclusions[k] = append(out.Exclusions[k], v...)
	}
	for k, v := range r.Dependencies {
		out.Dependencies[k] = append(out.Dependencies[k], v...)
	}
	for k, v := range o.Dependencies {
		out.Dependencies[k] = append(out.Dependencies[k], v...)
	}
	return out
}
