// Package semantics is the executable counterpart of the MCL semantic model
// of thesis chapter 5. The Z schemas (Streamlet, Channel, Stream,
// CompositeStreamlet, StreamGraph) become Go data structures, and the five
// analyses — feedback-loop detection, open-circuit detection, mutual
// exclusion, dependency verification, and preorder verification — become
// decision procedures over the connect relation and its transitive closure.
package semantics

import (
	"fmt"
	"sort"
	"strings"

	"mobigate/internal/mcl"
)

// Graph is the StreamGraph schema of §5.2: streamlet instances are nodes,
// and (s1, s2) ∈ connect iff some channel leads from an output port of s1
// to an input port of s2.
type Graph struct {
	// Nodes in deterministic (declaration) order.
	Nodes []string
	// Defs maps an instance node to its streamlet definition name; the
	// repel/depend/preorder relations are expressed over definition names.
	Defs map[string]string
	// adj is the connect relation.
	adj map[string]map[string]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{Defs: make(map[string]string), adj: make(map[string]map[string]bool)}
}

// AddNode inserts an instance node with its definition name.
func (g *Graph) AddNode(inst, def string) {
	if _, ok := g.Defs[inst]; ok {
		return
	}
	g.Nodes = append(g.Nodes, inst)
	g.Defs[inst] = def
	g.adj[inst] = make(map[string]bool)
}

// RemoveNode deletes a node and all its edges.
func (g *Graph) RemoveNode(inst string) {
	if _, ok := g.Defs[inst]; !ok {
		return
	}
	delete(g.Defs, inst)
	delete(g.adj, inst)
	for _, m := range g.adj {
		delete(m, inst)
	}
	for i, n := range g.Nodes {
		if n == inst {
			g.Nodes = append(g.Nodes[:i], g.Nodes[i+1:]...)
			break
		}
	}
}

// AddEdge inserts (from, to) into the connect relation. Unknown endpoints
// are added as nodes with their own name as definition.
func (g *Graph) AddEdge(from, to string) {
	if _, ok := g.Defs[from]; !ok {
		g.AddNode(from, from)
	}
	if _, ok := g.Defs[to]; !ok {
		g.AddNode(to, to)
	}
	g.adj[from][to] = true
}

// RemoveEdge deletes (from, to) if present.
func (g *Graph) RemoveEdge(from, to string) {
	if m, ok := g.adj[from]; ok {
		delete(m, to)
	}
}

// HasEdge reports (from, to) ∈ connect.
func (g *Graph) HasEdge(from, to string) bool { return g.adj[from][to] }

// Succs returns the successors of a node in sorted order.
func (g *Graph) Succs(n string) []string {
	out := make([]string, 0, len(g.adj[n]))
	for s := range g.adj[n] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for _, n := range g.Nodes {
		c.AddNode(n, g.Defs[n])
	}
	for n, m := range g.adj {
		for s := range m {
			c.AddEdge(n, s)
		}
	}
	return c
}

// Closure computes connect⁺, the strongest transitive relation containing
// connect (the thesis uses it in every §5.2 analysis). The result maps each
// node to the set of nodes reachable in one or more steps.
func (g *Graph) Closure() map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		reach := make(map[string]bool)
		stack := make([]string, 0, 8)
		for s := range g.adj[n] {
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[cur] {
				continue
			}
			reach[cur] = true
			for s := range g.adj[cur] {
				if !reach[s] {
					stack = append(stack, s)
				}
			}
		}
		out[n] = reach
	}
	return out
}

// Reaches reports (from, to) ∈ connect⁺.
func (g *Graph) Reaches(from, to string) bool {
	seen := map[string]bool{}
	stack := []string{}
	for s := range g.adj[from] {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == to {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for s := range g.adj[cur] {
			stack = append(stack, s)
		}
	}
	return false
}

// FindCycle returns one feedback loop as a node sequence (first == last),
// or nil when the graph is acyclic — the Acyclic schema of §5.2.1 holds iff
// FindCycle returns nil (id streamlets ∩ connect⁺ = ∅).
func (g *Graph) FindCycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(g.Nodes))
	parent := make(map[string]string)

	var cycle []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = gray
		for _, s := range g.Succs(n) {
			switch color[s] {
			case white:
				parent[s] = n
				if dfs(s) {
					return true
				}
			case gray:
				// Unwind n back to s to extract the loop.
				cycle = []string{s}
				for cur := n; cur != s; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				cycle = append(cycle, s)
				// Reverse into forward edge order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range g.Nodes {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}

// BuildGraph constructs the StreamGraph of a compiled stream configuration
// from its initial routing table.
func BuildGraph(sc *mcl.StreamConfig) *Graph {
	g := NewGraph()
	for _, v := range sc.Order {
		if inst := sc.Instances[v]; inst != nil {
			g.AddNode(v, inst.Def)
		}
	}
	for _, conn := range sc.Connections {
		g.AddEdge(conn.From.Inst, conn.To.Inst)
	}
	return g
}

// ApplyWhen evolves a graph by the actions of a when-block: connect adds
// edges, disconnect removes them, remove-streamlet removes nodes, and
// disconnectall isolates a node. The receiver is not modified.
func ApplyWhen(g *Graph, actions []mcl.Stmt) *Graph {
	out := g.Clone()
	for _, a := range actions {
		switch s := a.(type) {
		case *mcl.ConnectStmt:
			out.AddEdge(s.From.Inst, s.To.Inst)
		case *mcl.DisconnectStmt:
			out.RemoveEdge(s.From.Inst, s.To.Inst)
		case *mcl.RemoveStreamletStmt:
			out.RemoveNode(s.Var)
		case *mcl.DisconnectAllStmt:
			for _, succ := range out.Succs(s.Var) {
				out.RemoveEdge(s.Var, succ)
			}
			for _, n := range out.Nodes {
				out.RemoveEdge(n, s.Var)
			}
		case *mcl.NewStreamletStmt:
			for _, v := range s.Vars {
				out.AddNode(v, s.Def)
			}
		}
	}
	return out
}

// DOT renders the graph in GraphViz dot syntax, nodes labelled
// "inst\n(def)", for topology visualization (mclc -dot).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("\trankdir=LR;\n\tnode [shape=box];\n")
	for _, n := range g.Nodes {
		label := n
		if d := g.Defs[n]; d != "" && d != n {
			label = n + "\n(" + d + ")"
		}
		fmt.Fprintf(&b, "\t%q [label=%q];\n", n, label)
	}
	for _, n := range g.Nodes {
		for _, s := range g.Succs(n) {
			fmt.Fprintf(&b, "\t%q -> %q;\n", n, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
