package semantics

import (
	"strings"
	"testing"

	"mobigate/internal/mcl"
)

const feedbackSrc = `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream loopy {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	streamlet s3 = new-streamlet (f);
	connect (s1.po, s2.pi);
	connect (s2.po, s3.pi);
	connect (s3.po, s1.pi);
}
`

func TestAnalyzeFeedbackLoop(t *testing.T) {
	// The §5.3 case example: the three-streamlet loop must be detected.
	cfg := mustCompile(t, feedbackSrc)
	rep := Analyze(cfg.Stream("loopy"), Rules{})
	if rep.OK() {
		t.Fatal("feedback loop not reported")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "feedback-loop" && v.Scenario == "initial" {
			found = true
			if !strings.Contains(v.Detail, "->") {
				t.Errorf("cycle detail missing path: %s", v.Detail)
			}
		}
	}
	if !found {
		t.Errorf("violations = %v", rep.Violations)
	}
}

func TestAnalyzeCleanPipeline(t *testing.T) {
	cfg := mustCompile(t, pipelineSrc)
	sc := cfg.Stream("line")
	rep := Analyze(sc, Rules{AllowedOpenPorts: []string{"s3.po"}})
	// The when-block creates s3->s1 after cutting s2->s3: no cycle
	// (s1->s2, s3->s1 is a line), so only open-circuit could fire, and
	// s3.po is allowed... but in when(LOW_BANDWIDTH) s3.po gets connected
	// and s2.po dangles — open circuits are not checked in when scenarios.
	if !rep.OK() {
		t.Errorf("unexpected violations: %v", rep.Violations)
	}
}

func TestAnalyzeWhenScenarioCycle(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	connect (s1.po, s2.pi);
	when (LOW_BANDWIDTH) {
		connect (s2.po, s1.pi);
	}
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s2.po"}})
	if rep.OK() {
		t.Fatal("when-scenario cycle not reported")
	}
	v := rep.Violations[0]
	if v.Kind != "feedback-loop" || v.Scenario != "when(LOW_BANDWIDTH)" {
		t.Errorf("violation = %v", v)
	}
}

func TestAnalyzeOpenCircuit(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet s1 = new-streamlet (f);
	streamlet s2 = new-streamlet (f);
	connect (s1.po, s2.pi);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{})
	if rep.OK() {
		t.Fatal("open circuit not reported")
	}
	if !strings.Contains(rep.Violations[0].Detail, "s2.po") {
		t.Errorf("detail = %s", rep.Violations[0].Detail)
	}
	// Allowing the exit silences it.
	rep = Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s2.po"}})
	if !rep.OK() {
		t.Errorf("allowed port still reported: %v", rep.Violations)
	}
}

const securitySrc = `
streamlet encrypt { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet compress { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet decrypt { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet plain { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet e = new-streamlet (encrypt);
	streamlet c = new-streamlet (compress);
	streamlet p = new-streamlet (plain);
	connect (c.po, e.pi);
	connect (e.po, p.pi);
}
`

func TestAnalyzePreorderViolation(t *testing.T) {
	// §5.2.5: encryption must be deployed before compression; the stream
	// wires compress -> encrypt, i.e. the flow reaches encrypt after
	// compress — a violation.
	cfg := mustCompile(t, securitySrc)
	rep := Analyze(cfg.Stream("s"), Rules{
		Preorders:        []Preorder{{Before: "encrypt", After: "compress"}},
		AllowedOpenPorts: []string{"p.po"},
	})
	if rep.OK() {
		t.Fatal("preorder violation not reported")
	}
	if rep.Violations[0].Kind != "preorder" {
		t.Errorf("kind = %s", rep.Violations[0].Kind)
	}
}

func TestAnalyzePreorderSatisfied(t *testing.T) {
	src := `
streamlet encrypt { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet compress { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet e = new-streamlet (encrypt);
	streamlet c = new-streamlet (compress);
	connect (e.po, c.pi);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{
		Preorders:        []Preorder{{Before: "encrypt", After: "compress"}},
		AllowedOpenPorts: []string{"c.po"},
	})
	if !rep.OK() {
		t.Errorf("violations = %v", rep.Violations)
	}
}

func TestAnalyzeMutualExclusion(t *testing.T) {
	cfg := mustCompile(t, securitySrc)
	// encrypt and plain are exclusive but share the path c -> e -> p.
	rep := Analyze(cfg.Stream("s"), Rules{
		Exclusions:       map[string][]string{"encrypt": {"plain"}},
		AllowedOpenPorts: []string{"p.po"},
	})
	if rep.OK() {
		t.Fatal("mutual exclusion violation not reported")
	}
	if rep.Violations[0].Kind != "mutual-exclusion" {
		t.Errorf("kind = %s", rep.Violations[0].Kind)
	}
}

func TestAnalyzeMutualExclusionDisjointPathsOK(t *testing.T) {
	src := `
streamlet a { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet b { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet x = new-streamlet (a);
	streamlet y = new-streamlet (b);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{
		Exclusions:       map[string][]string{"a": {"b"}},
		AllowedOpenPorts: []string{"x.po", "y.po"},
	})
	if !rep.OK() {
		t.Errorf("disjoint exclusive streamlets flagged: %v", rep.Violations)
	}
}

func TestAnalyzeDependency(t *testing.T) {
	cfg := mustCompile(t, securitySrc)
	// encrypt requires decrypt, which is absent.
	rep := Analyze(cfg.Stream("s"), Rules{
		Dependencies:     map[string][]string{"encrypt": {"decrypt"}},
		AllowedOpenPorts: []string{"p.po"},
	})
	if rep.OK() {
		t.Fatal("dependency violation not reported")
	}
	if rep.Violations[0].Kind != "dependency" {
		t.Errorf("kind = %s", rep.Violations[0].Kind)
	}
}

func TestAnalyzeDependencySatisfied(t *testing.T) {
	src := `
streamlet encrypt { port { in pi : text; out po : text; } attribute { library = "x"; } }
streamlet decrypt { port { in pi : text; out po : text; } attribute { library = "x"; } }
stream s {
	streamlet e = new-streamlet (encrypt);
	streamlet d = new-streamlet (decrypt);
	connect (e.po, d.pi);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{
		Dependencies:     map[string][]string{"encrypt": {"decrypt"}},
		AllowedOpenPorts: []string{"d.po"},
	})
	if !rep.OK() {
		t.Errorf("violations = %v", rep.Violations)
	}
}

func TestOpenPortsAndUnfedInputs(t *testing.T) {
	cfg := mustCompile(t, pipelineSrc)
	sc := cfg.Stream("line")
	if got := OpenPorts(sc); len(got) != 1 || got[0] != "s3.po" {
		t.Errorf("OpenPorts = %v", got)
	}
	if got := UnfedInputs(sc); len(got) != 1 || got[0] != "s1.pi" {
		t.Errorf("UnfedInputs = %v", got)
	}
}

func TestAnalyzeDistillationFixtureClean(t *testing.T) {
	// The thesis's streamApp (with optional streamlets) must be clean once
	// its designated entry/exits and the optional-on-event ports are known.
	cfg := mustCompile(t, distillationForSemantics)
	sc := cfg.Stream("streamApp")
	rep := Analyze(sc, Rules{AllowedOpenPorts: OpenPorts(sc)})
	if !rep.OK() {
		t.Errorf("violations = %v", rep.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "feedback-loop", Scenario: "initial", Detail: "cycle a -> a"}
	s := v.String()
	if !strings.Contains(s, "feedback-loop") || !strings.Contains(s, "initial") {
		t.Errorf("String = %q", s)
	}
}

func TestAnalyzeParallelismMultiInput(t *testing.T) {
	src := `
streamlet join {
	port { in pa : text; in pb : text; out po : text; }
	attribute { type = STATELESS; library = "x"; workers = 4; }
}
stream s {
	streamlet j = new-streamlet (join);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"j.pa", "j.pb", "j.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "parallelism" && strings.Contains(v.Detail, "input ports") {
			found = true
		}
	}
	if !found {
		t.Errorf("multi-input workers > 1 not reported: %v", rep.Violations)
	}
}

func TestAnalyzeParallelismStateful(t *testing.T) {
	// The parser already rejects `type = STATEFUL; workers = 2`, so reach the
	// analyzer's independent check by flipping the kind after compilation —
	// the situation a programmatic configuration could construct.
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x"; workers = 2; } }
stream s {
	streamlet s1 = new-streamlet (f);
}
`
	cfg := mustCompile(t, src)
	sc := cfg.Stream("s")
	sc.Instances["s1"].Decl.Kind = mcl.Stateful
	rep := Analyze(sc, Rules{AllowedOpenPorts: []string{"s1.pi", "s1.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "parallelism" && strings.Contains(v.Detail, "STATEFUL") {
			found = true
		}
	}
	if !found {
		t.Errorf("stateful workers > 1 not reported: %v", rep.Violations)
	}
}

func TestAnalyzeParallelismSerialOK(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x"; workers = 4; } }
stream s {
	streamlet s1 = new-streamlet (f);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s1.pi", "s1.po"}})
	for _, v := range rep.Violations {
		if v.Kind == "parallelism" {
			t.Errorf("single-input stateless workers = 4 flagged: %v", v)
		}
	}
}

func TestAnalyzeBatchingAllSyncInputs(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x"; batch = 8; } }
channel rdv { port { in cin : text; out cout : text; } attribute { type = SYNC; } }
stream s {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (f);
	channel c1 = new-channel (rdv);
	connect (a.po, b.pi, c1);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"a.pi", "b.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "batching" && strings.Contains(v.Detail, "SYNCHRONOUS") {
			found = true
		}
	}
	if !found {
		t.Errorf("batch over all-sync inputs not reported: %v", rep.Violations)
	}
}

func TestAnalyzeBatchingAsyncInputOK(t *testing.T) {
	// An implicit connect creates an ASYNC channel, so batching applies and
	// no violation is raised; STATEFUL batching is likewise legal (the
	// batched pump preserves FIFO, unlike worker fan-out).
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATEFUL; library = "x"; batch = 8; } }
stream s {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (f);
	connect (a.po, b.pi);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"a.pi", "b.po"}})
	for _, v := range rep.Violations {
		if v.Kind == "batching" {
			t.Errorf("spurious batching violation: %v", v)
		}
	}
}

func TestAnalyzeFusionWorkersConflict(t *testing.T) {
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x"; workers = 4; fuse = on; } }
stream s {
	streamlet s1 = new-streamlet (f);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"s1.pi", "s1.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "fusion" && strings.Contains(v.Detail, "workers") {
			found = true
		}
	}
	if !found {
		t.Errorf("fuse = on with workers = 4 not reported: %v", rep.Violations)
	}
}

func TestAnalyzeFusionMultiInput(t *testing.T) {
	src := `
streamlet join {
	port { in pa : text; in pb : text; out po : text; }
	attribute { type = STATELESS; library = "x"; fuse = on; }
}
stream s {
	streamlet j = new-streamlet (join);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"j.pa", "j.pb", "j.po"}})
	found := false
	for _, v := range rep.Violations {
		if v.Kind == "fusion" && strings.Contains(v.Detail, "input ports") {
			found = true
		}
	}
	if !found {
		t.Errorf("fuse = on on a multi-input streamlet not reported: %v", rep.Violations)
	}
}

func TestAnalyzeFusionCleanAndOptOut(t *testing.T) {
	// fuse = on on a serial single-input stateless streamlet is exactly what
	// the runtime fuses; fuse = off is a pure opt-out. Neither violates.
	src := `
streamlet f { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x"; fuse = on; } }
streamlet g { port { in pi : text; out po : text; } attribute { type = STATELESS; library = "x"; fuse = off; } }
stream s {
	streamlet a = new-streamlet (f);
	streamlet b = new-streamlet (g);
	connect (a.po, b.pi);
}
`
	cfg := mustCompile(t, src)
	rep := Analyze(cfg.Stream("s"), Rules{AllowedOpenPorts: []string{"a.pi", "b.po"}})
	for _, v := range rep.Violations {
		if v.Kind == "fusion" {
			t.Errorf("spurious fusion violation: %v", v)
		}
	}
}
