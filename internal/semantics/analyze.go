package semantics

import (
	"fmt"
	"sort"
	"strings"

	"mobigate/internal/mcl"
)

// Rules carries the application-level relations the §5.2 analyses verify.
// All relations are expressed over streamlet *definition* names (e.g.
// "encrypt", "compress"), and checked across every pair of instances.
type Rules struct {
	// Exclusions is the `repel` partial function of §5.2.3: for every
	// x and y ∈ Exclusions[x], no path may contain both ((x,y) and (y,x)
	// both ∉ connect⁺).
	Exclusions map[string][]string
	// Dependencies is the `depend` function of §5.2.4: if an instance of x
	// is deployed, an instance of every y ∈ Dependencies[x] must be
	// deployed and share a path with it.
	Dependencies map[string][]string
	// Preorders of §5.2.5: each pair {Before, After} requires that whenever
	// instances of both are on a common path, the Before instance comes
	// first (an (after, before) ∈ connect⁺ pair is an order violation).
	Preorders []Preorder
	// AllowedOpenPorts lists "inst.port" output ports that are legitimate
	// stream exits and therefore exempt from open-circuit detection.
	AllowedOpenPorts []string
}

// Preorder requires deployment of Before upstream of After (§5.2.5's
// encryption-before-compression example).
type Preorder struct {
	Before string
	After  string
}

// Violation is one finding of the analyzer.
type Violation struct {
	// Kind is one of "feedback-loop", "open-circuit", "mutual-exclusion",
	// "dependency", "preorder", "parallelism", "batching", "fusion",
	// "policy".
	Kind string
	// Scenario is "initial" or "when(EVENT)" — the configuration state the
	// violation occurs in.
	Scenario string
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s]: %s", v.Kind, v.Scenario, v.Detail)
}

// Report is the outcome of analyzing one stream configuration.
type Report struct {
	Stream     string
	Violations []Violation
}

// OK reports whether the configuration passed every analysis.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) add(kind, scenario, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Kind:     kind,
		Scenario: scenario,
		Detail:   fmt.Sprintf(format, args...),
	})
}

// Analyze runs every §5.2 analysis against the initial configuration of sc
// and against the configuration reached by each when-block (each analyzed
// independently from the initial state, as each event arrives on its own).
func Analyze(sc *mcl.StreamConfig, rules Rules) *Report {
	r := &Report{Stream: sc.Name}
	g := BuildGraph(sc)

	analyzeParallelism(r, sc)
	analyzeBatching(r, sc)
	analyzeFusion(r, sc)
	analyzePolicies(r, sc)
	analyzeScenario(r, "initial", g, sc, rules, false)
	for _, w := range sc.Whens {
		wg := ApplyWhen(g, w.Actions)
		// Open-circuit detection is skipped for when-scenarios: a reaction
		// legitimately leaves previously-exported ports dangling until the
		// complementary event restores them.
		analyzeScenario(r, "when("+w.Event+")", wg, sc, rules, true)
	}
	return r
}

// analyzeParallelism statically rejects `workers > 1` on streamlets whose
// semantics cannot tolerate concurrent Process calls: STATEFUL streamlets
// (cross-message state races) and multi-input streamlets (their output
// depends on the arrival interleaving across ports, which fan-out would
// perturb even under per-port resequencing). This is a configuration-level
// property, independent of the routing scenario.
func analyzeParallelism(r *Report, sc *mcl.StreamConfig) {
	for _, v := range sc.Order {
		inst := sc.Instances[v]
		if inst == nil || inst.Decl == nil || inst.Decl.Workers <= 1 {
			continue
		}
		d := inst.Decl
		if d.Kind == mcl.Stateful {
			r.add("parallelism", "initial",
				"instance %s: streamlet %s declares workers = %d but is STATEFUL; concurrent Process calls would race on its state",
				v, d.Name, d.Workers)
			continue
		}
		ins := 0
		for _, p := range d.Ports {
			if p.Dir == mcl.PortIn {
				ins++
			}
		}
		if ins > 1 {
			r.add("parallelism", "initial",
				"instance %s: streamlet %s declares workers = %d but has %d input ports; multi-input streamlets are order-sensitive across ports and must stay serial",
				v, d.Name, d.Workers, ins)
		}
	}
}

// analyzeBatching statically rejects `batch > 1` on instances fed only by
// SYNCHRONOUS channels: a rendezvous channel holds at most one unit by
// construction, so a batched drain can never see more than one message and
// the declaration signals a misunderstanding of the topology. Batching is
// otherwise unrestricted — both drain and flush preserve FIFO order, so
// STATEFUL streamlets may batch (unlike `workers`). Configuration-level,
// independent of the routing scenario, mirroring analyzeParallelism.
func analyzeBatching(r *Report, sc *mcl.StreamConfig) {
	for _, v := range sc.Order {
		inst := sc.Instances[v]
		if inst == nil || inst.Decl == nil || inst.Decl.Batch <= 1 {
			continue
		}
		feeds, allSync := 0, true
		for _, c := range sc.Connections {
			if c.To.Inst != v {
				continue
			}
			feeds++
			ch := sc.Channels[c.Channel]
			if ch == nil || ch.Decl == nil || ch.Decl.Mode != mcl.Sync {
				allSync = false
			}
		}
		if feeds > 0 && allSync {
			r.add("batching", "initial",
				"instance %s: streamlet %s declares batch = %d but every input channel is SYNCHRONOUS; a rendezvous holds at most one unit, so batching cannot apply",
				v, inst.Decl.Name, inst.Decl.Batch)
		}
	}
}

// analyzeFusion statically vets explicit `fuse = on` declarations against
// the runtime fusability rules, so an assertion the runtime would silently
// ignore is surfaced at compile time instead: a fused hop runs Process
// calls back-to-back on one goroutine, which requires the instance to be
// serial (workers <= 1) and single-input (a multi-input join needs its own
// pump to interleave ports). STATEFUL is already rejected by the parser,
// mirroring the `workers` rule. fuse = off never violates anything — it is
// a pure opt-out. Configuration-level, independent of the routing scenario.
func analyzeFusion(r *Report, sc *mcl.StreamConfig) {
	for _, v := range sc.Order {
		inst := sc.Instances[v]
		if inst == nil || inst.Decl == nil || inst.Decl.Fuse != mcl.FuseOn {
			continue
		}
		d := inst.Decl
		if d.Workers > 1 {
			r.add("fusion", "initial",
				"instance %s: streamlet %s declares fuse = on with workers = %d; a fused hop is serial, so parallel instances cannot fuse",
				v, d.Name, d.Workers)
			continue
		}
		ins := 0
		for _, p := range d.Ports {
			if p.Dir == mcl.PortIn {
				ins++
			}
		}
		if ins > 1 {
			r.add("fusion", "initial",
				"instance %s: streamlet %s declares fuse = on but has %d input ports; multi-input streamlets need their own pump to interleave ports and cannot fuse",
				v, d.Name, ins)
		}
	}
}

// analyzePolicies vets the autopilot's when-policy rules: the same workers
// gating analyzeParallelism applies to the declared topology must hold for
// the topology a `workers` action would create, and two rules with the same
// condition and action are almost certainly a script error (one of them can
// never add anything, but both cost an evaluation every tick).
func analyzePolicies(r *Report, sc *mcl.StreamConfig) {
	seen := map[string]string{}
	for _, pc := range sc.Policies {
		rule := pc.Rule
		key := rule.Cond.String() + " -> " + rule.Action.String()
		if prev, dup := seen[key]; dup {
			r.add("policy", "initial",
				"rules %s and %s are duplicates: both declare `%s`", prev, pc.ID, key)
		} else {
			seen[key] = pc.ID
		}
		wa, ok := rule.Action.(*mcl.WorkersAction)
		if !ok || wa.N <= 1 {
			continue
		}
		d := sc.PolicyTargetDecl(wa.Inst)
		if d == nil {
			continue
		}
		if d.Kind == mcl.Stateful {
			r.add("parallelism", "policy("+pc.ID+")",
				"rule %s raises workers on %s (streamlet %s), which is STATEFUL; concurrent Process calls would race on its state",
				pc.ID, wa.Inst, d.Name)
			continue
		}
		ins := 0
		for _, p := range d.Ports {
			if p.Dir == mcl.PortIn {
				ins++
			}
		}
		if ins > 1 {
			r.add("parallelism", "policy("+pc.ID+")",
				"rule %s raises workers on %s (streamlet %s), which has %d input ports; multi-input streamlets are order-sensitive across ports and must stay serial",
				pc.ID, wa.Inst, d.Name, ins)
		}
	}
}

func analyzeScenario(r *Report, scenario string, g *Graph, sc *mcl.StreamConfig, rules Rules, skipOpen bool) {
	var open []string
	if !skipOpen {
		open = OpenPorts(sc)
	}
	analyzeGraph(r, scenario, g, open, rules, skipOpen)
}

// AnalyzeLive runs the same analyses against a live topology snapshot —
// the §8.2.2 recommendation of catching mis-configuration at runtime, after
// reconfigurations have evolved the composition away from its compiled
// form. openPorts lists currently-unbound output ports ("inst.port").
func AnalyzeLive(name string, g *Graph, openPorts []string, rules Rules) *Report {
	r := &Report{Stream: name}
	analyzeGraph(r, "live", g, openPorts, rules, false)
	return r
}

func analyzeGraph(r *Report, scenario string, g *Graph, open []string, rules Rules, skipOpen bool) {
	// §5.2.1 feedback loops.
	if cyc := g.FindCycle(); cyc != nil {
		r.add("feedback-loop", scenario, "cycle %s", strings.Join(cyc, " -> "))
	}

	// §5.2.2 open circuits (initial configuration only).
	if !skipOpen {
		for _, ref := range open {
			allowed := false
			for _, a := range rules.AllowedOpenPorts {
				if a == ref {
					allowed = true
					break
				}
			}
			if !allowed {
				r.add("open-circuit", scenario,
					"output port %s is unconnected; messages reaching it would be lost", ref)
			}
		}
	}

	closure := g.Closure()
	instsOf := instancesByDef(g)
	onCommonPath := func(a, b string) bool {
		return closure[a][b] || closure[b][a]
	}

	// §5.2.3 mutual exclusion.
	for x, ys := range rules.Exclusions {
		for _, y := range ys {
			for _, xi := range instsOf[x] {
				for _, yi := range instsOf[y] {
					if onCommonPath(xi, yi) {
						r.add("mutual-exclusion", scenario,
							"exclusive streamlets %s (%s) and %s (%s) share a path", xi, x, yi, y)
					}
				}
			}
		}
	}

	// §5.2.4 dependency verification.
	for x, ys := range rules.Dependencies {
		for _, xi := range instsOf[x] {
			for _, y := range ys {
				ok := false
				for _, yi := range instsOf[y] {
					if onCommonPath(xi, yi) {
						ok = true
						break
					}
				}
				if !ok {
					r.add("dependency", scenario,
						"streamlet %s (%s) requires a connected instance of %s", xi, x, y)
				}
			}
		}
	}

	// §5.2.5 preorder verification.
	for _, po := range rules.Preorders {
		for _, ai := range instsOf[po.After] {
			for _, bi := range instsOf[po.Before] {
				if closure[ai][bi] {
					r.add("preorder", scenario,
						"%s (%s) must be deployed before %s (%s), but the flow reaches it afterwards",
						bi, po.Before, ai, po.After)
				}
			}
		}
	}
}

func instancesByDef(g *Graph) map[string][]string {
	out := make(map[string][]string)
	for _, n := range g.Nodes {
		d := g.Defs[n]
		out[d] = append(out[d], n)
	}
	for _, insts := range out {
		sort.Strings(insts)
	}
	return out
}

// OpenPorts returns the "inst.port" names of every output port left
// unconnected by the initial configuration (§5.2.2). The caller decides
// which of these are legitimate exits (stream external ports).
func OpenPorts(sc *mcl.StreamConfig) []string {
	connected := make(map[string]bool, len(sc.Connections))
	for _, c := range sc.Connections {
		connected[c.From.String()] = true
	}
	var open []string
	for _, v := range sc.Order {
		inst := sc.Instances[v]
		if inst == nil {
			continue
		}
		for _, p := range inst.Decl.Ports {
			if p.Dir != mcl.PortOut {
				continue
			}
			ref := v + "." + p.Name
			if !connected[ref] {
				open = append(open, ref)
			}
		}
	}
	return open
}

// UnfedInputs returns input ports with no incoming connection; exactly the
// sink-side analogue of OpenPorts, used to identify entry ports.
func UnfedInputs(sc *mcl.StreamConfig) []string {
	connected := make(map[string]bool, len(sc.Connections))
	for _, c := range sc.Connections {
		connected[c.To.String()] = true
	}
	var open []string
	for _, v := range sc.Order {
		inst := sc.Instances[v]
		if inst == nil {
			continue
		}
		for _, p := range inst.Decl.Ports {
			if p.Dir != mcl.PortIn {
				continue
			}
			ref := v + "." + p.Name
			if !connected[ref] {
				open = append(open, ref)
			}
		}
	}
	return open
}
