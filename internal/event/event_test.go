package event

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCatalogBuiltins(t *testing.T) {
	c := NewCatalog()
	cases := map[string]Category{
		PAUSE: SystemCommand, RESUME: SystemCommand, END: SystemCommand,
		LOW_BANDWIDTH: NetworkVariation, HANDOFF: NetworkVariation,
		LOW_ENERGY: HardwareVariation, LOW_GRAYS: HardwareVariation,
		FORMAT_UNSUPPORTED: SoftwareVariation,
	}
	for id, want := range cases {
		got, ok := c.CategoryOf(id)
		if !ok || got != want {
			t.Errorf("CategoryOf(%s) = %v, %v", id, got, ok)
		}
	}
	if _, ok := c.CategoryOf("NOPE"); ok {
		t.Error("unknown event found")
	}
}

func TestCatalogRegister(t *testing.T) {
	c := NewCatalog()
	if err := c.Register("THERMAL_THROTTLE", HardwareVariation); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.CategoryOf("THERMAL_THROTTLE"); !ok || got != HardwareVariation {
		t.Error("registered event missing")
	}
	// Idempotent same-category registration.
	if err := c.Register("THERMAL_THROTTLE", HardwareVariation); err != nil {
		t.Errorf("re-register same: %v", err)
	}
	// Conflicting category rejected.
	if err := c.Register("THERMAL_THROTTLE", NetworkVariation); err == nil {
		t.Error("conflicting re-register accepted")
	}
	// Custom categories are distinct and usable.
	c1 := c.RegisterCategory()
	c2 := c.RegisterCategory()
	if c1 == c2 || c1 < CategoryCount {
		t.Errorf("custom categories %v %v", c1, c2)
	}
	if err := c.Register("MY_EVENT", c1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c1.String(), "Custom") {
		t.Errorf("custom category String = %q", c1.String())
	}
}

func TestCatalogEvent(t *testing.T) {
	c := NewCatalog()
	evt, err := c.Event(LOW_ENERGY, "app1")
	if err != nil {
		t.Fatal(err)
	}
	if evt.Category != HardwareVariation || evt.Source != "app1" {
		t.Errorf("evt = %+v", evt)
	}
	if _, err := c.Event("GHOST", ""); err == nil {
		t.Error("unknown event built")
	}
	if !strings.Contains(evt.String(), "LOW_ENERGY") || !strings.Contains(evt.String(), "app1") {
		t.Errorf("String = %q", evt.String())
	}
	anon := ContextEvent{EventID: END, Category: SystemCommand}
	if strings.Contains(anon.String(), "for") {
		t.Errorf("broadcast String = %q", anon.String())
	}
}

// recorder is a test subscriber.
type recorder struct {
	name string
	mu   sync.Mutex
	got  []ContextEvent
}

func (r *recorder) SubscriberName() string { return r.name }
func (r *recorder) OnEvent(e ContextEvent) {
	r.mu.Lock()
	r.got = append(r.got, e)
	r.mu.Unlock()
}
func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func TestMulticastCategoryFiltering(t *testing.T) {
	m := NewManager(nil)
	defer m.Close()
	netApp := &recorder{name: "netApp"}
	hwApp := &recorder{name: "hwApp"}
	m.Subscribe(NetworkVariation, netApp)
	m.Subscribe(HardwareVariation, hwApp)

	m.Multicast(ContextEvent{EventID: LOW_BANDWIDTH, Category: NetworkVariation})
	if netApp.count() != 1 || hwApp.count() != 0 {
		t.Errorf("counts = %d, %d", netApp.count(), hwApp.count())
	}
	m.Multicast(ContextEvent{EventID: LOW_ENERGY, Category: HardwareVariation})
	if netApp.count() != 1 || hwApp.count() != 1 {
		t.Errorf("counts = %d, %d", netApp.count(), hwApp.count())
	}
}

func TestMulticastSourceDirected(t *testing.T) {
	m := NewManager(nil)
	defer m.Close()
	a := &recorder{name: "a"}
	b := &recorder{name: "b"}
	m.Subscribe(SystemCommand, a)
	m.Subscribe(SystemCommand, b)

	m.Multicast(ContextEvent{EventID: PAUSE, Category: SystemCommand, Source: "a"})
	if a.count() != 1 || b.count() != 0 {
		t.Errorf("directed: a=%d b=%d", a.count(), b.count())
	}
	m.Multicast(ContextEvent{EventID: PAUSE, Category: SystemCommand})
	if a.count() != 2 || b.count() != 1 {
		t.Errorf("broadcast: a=%d b=%d", a.count(), b.count())
	}
	delivered, filtered := m.Stats()
	if delivered != 3 || filtered != 1 {
		t.Errorf("stats = %d, %d", delivered, filtered)
	}
}

func TestSubscribeIdempotentAndUnsubscribe(t *testing.T) {
	m := NewManager(nil)
	defer m.Close()
	a := &recorder{name: "a"}
	m.Subscribe(SystemCommand, a)
	m.Subscribe(SystemCommand, a) // duplicate ignored
	m.Multicast(ContextEvent{EventID: END, Category: SystemCommand})
	if a.count() != 1 {
		t.Errorf("duplicate subscription delivered %d", a.count())
	}
	m.Unsubscribe(SystemCommand, a)
	m.Multicast(ContextEvent{EventID: END, Category: SystemCommand})
	if a.count() != 1 {
		t.Error("unsubscribed app still receives")
	}
	m.Unsubscribe(SystemCommand, a) // second remove is a no-op
}

func TestPostAsyncAndRaise(t *testing.T) {
	m := NewManager(nil)
	a := &recorder{name: "a"}
	m.Subscribe(NetworkVariation, a)
	if err := m.Raise(LOW_BANDWIDTH, ""); err != nil {
		t.Fatal(err)
	}
	if err := m.Raise("GHOST", ""); err == nil {
		t.Error("raise unknown succeeded")
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.count() != 1 {
		t.Errorf("async delivery count = %d", a.count())
	}
	m.Close()
	m.Close()                                                   // idempotent
	m.Post(ContextEvent{EventID: END, Category: SystemCommand}) // discarded, no panic
}

func TestCloseDrainsQueued(t *testing.T) {
	m := NewManager(nil)
	a := &recorder{name: "a"}
	m.Subscribe(SystemCommand, a)
	for i := 0; i < 50; i++ {
		m.Post(ContextEvent{EventID: PAUSE, Category: SystemCommand})
	}
	m.Close()
	if a.count() == 0 {
		t.Error("queued events lost on close")
	}
}

func TestManagerConcurrency(t *testing.T) {
	m := NewManager(nil)
	defer m.Close()
	apps := make([]*recorder, 8)
	for i := range apps {
		apps[i] = &recorder{name: string(rune('a' + i))}
		m.Subscribe(NetworkVariation, apps[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Multicast(ContextEvent{EventID: LOW_BANDWIDTH, Category: NetworkVariation})
			}
		}()
	}
	wg.Wait()
	for _, a := range apps {
		if a.count() != 400 {
			t.Errorf("%s got %d", a.name, a.count())
		}
	}
}
