package event

import (
	"sync"
	"sync/atomic"

	"mobigate/internal/obs"
)

// Gateway-wide event metrics (aggregated across managers).
var (
	mRaised    = obs.DefaultCounter(obs.MEventsRaisedTotal)
	mDelivered = obs.DefaultCounter(obs.MEventsDeliveredTotal)
	mFiltered  = obs.DefaultCounter(obs.MEventsFilteredTotal)
	mDropped   = obs.DefaultCounter(obs.MEventsDroppedTotal)
)

// Subscriber receives multicast events. Stream applications implement this
// (their onEvent method, §6.3).
type Subscriber interface {
	// SubscriberName identifies the application for source-directed events.
	SubscriberName() string
	// OnEvent handles a delivered event. Called from the Manager's
	// dispatch goroutine; implementations should not block for long.
	OnEvent(ContextEvent)
}

// Manager is the Event Manager of §3.3.5/§6.4: it controls subscription,
// triggering and monitoring, and multicasts events among stream
// applications. Applications that did not subscribe to an event's category
// never see it, avoiding the overhead of processing an event flood.
type Manager struct {
	catalog *Catalog

	mu   sync.RWMutex
	subs map[Category][]Subscriber

	dispatch chan ContextEvent
	done     chan struct{}
	wg       sync.WaitGroup

	// postMu orders Post against Close: Close flips closed under the write
	// lock, so any Post that saw closed==false finishes its (non-blocking)
	// send before close(done). The dispatcher's drain loop therefore sees
	// every event that was counted as raised — an event can never win the
	// send after the drain's final pass and vanish undelivered.
	postMu sync.RWMutex
	closed bool

	raised    atomic.Uint64
	dropped   atomic.Uint64
	delivered uint64
	filtered  uint64
}

// NewManager creates a manager over the given catalog (nil for built-ins).
// Call Close when done to stop the asynchronous dispatcher.
func NewManager(catalog *Catalog) *Manager {
	if catalog == nil {
		catalog = NewCatalog()
	}
	m := &Manager{
		catalog:  catalog,
		subs:     make(map[Category][]Subscriber),
		dispatch: make(chan ContextEvent, 256),
		done:     make(chan struct{}),
	}
	m.wg.Add(1)
	go m.run()
	return m
}

// Catalog returns the manager's event catalog.
func (m *Manager) Catalog() *Catalog { return m.catalog }

// Subscribe registers app for all events of a category (subscribeEvt of
// Figure 6-7).
func (m *Manager) Subscribe(cat Category, app Subscriber) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.subs[cat] {
		if s == app {
			return
		}
	}
	m.subs[cat] = append(m.subs[cat], app)
}

// Unsubscribe removes app from a category (unsubscribeEvt).
func (m *Manager) Unsubscribe(cat Category, app Subscriber) {
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.subs[cat]
	for i, s := range list {
		if s == app {
			m.subs[cat] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Multicast synchronously delivers an event to every subscriber of its
// category (multicastEvent of Figure 6-7). Source-directed events are
// delivered only to the named application.
func (m *Manager) Multicast(evt ContextEvent) {
	m.mu.RLock()
	list := make([]Subscriber, len(m.subs[evt.Category]))
	copy(list, m.subs[evt.Category])
	m.mu.RUnlock()
	for _, s := range list {
		if evt.Source != "" && s.SubscriberName() != evt.Source {
			m.mu.Lock()
			m.filtered++
			m.mu.Unlock()
			mFiltered.Inc()
			continue
		}
		s.OnEvent(evt)
		m.mu.Lock()
		m.delivered++
		m.mu.Unlock()
		mDelivered.Inc()
	}
}

// Post queues an event for asynchronous multicast from the manager's
// dispatch goroutine. It never blocks the caller: when the dispatch buffer
// is full the event is dropped and counted in mobigate_events_dropped_total
// (context events are advisory triggers, not data — a flooded manager sheds
// load instead of stalling the coordination plane). Events posted after
// Close are discarded. The return value reports whether the event was
// accepted for dispatch.
func (m *Manager) Post(evt ContextEvent) bool {
	m.postMu.RLock()
	defer m.postMu.RUnlock()
	if m.closed {
		return false
	}
	select {
	case m.dispatch <- evt:
		m.raised.Add(1)
		mRaised.Inc()
		obs.FlightRecord(obs.FlightEvent, evt.EventID, evt.Source, 0)
		return true
	default:
		m.dropped.Add(1)
		mDropped.Inc()
		return false
	}
}

// Raise resolves an event identifier through the catalog and posts it.
func (m *Manager) Raise(id, source string) error {
	evt, err := m.catalog.Event(id, source)
	if err != nil {
		return err
	}
	m.Post(evt)
	return nil
}

// Stats returns delivered and source-filtered event counts.
func (m *Manager) Stats() (delivered, filtered uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.delivered, m.filtered
}

// PostStats returns how many events this manager accepted for dispatch and
// how many it shed on a full dispatch buffer.
func (m *Manager) PostStats() (raised, dropped uint64) {
	return m.raised.Load(), m.dropped.Load()
}

// Close stops the dispatcher after draining queued events. Every event that
// Post accepted before Close is delivered: closed is flipped under the
// write lock, so no Post can slip an event into the buffer after the drain
// loop's final pass.
func (m *Manager) Close() {
	m.postMu.Lock()
	if m.closed {
		m.postMu.Unlock()
		return
	}
	m.closed = true
	m.postMu.Unlock()
	close(m.done)
	m.wg.Wait()
}

func (m *Manager) run() {
	defer m.wg.Done()
	for {
		select {
		case evt := <-m.dispatch:
			m.Multicast(evt)
		case <-m.done:
			// Drain what is already queued, then exit.
			for {
				select {
				case evt := <-m.dispatch:
					m.Multicast(evt)
				default:
					return
				}
			}
		}
	}
}
