package event

import (
	"sync"

	"mobigate/internal/obs"
)

// Gateway-wide event metrics (aggregated across managers).
var (
	mRaised    = obs.DefaultCounter(obs.MEventsRaisedTotal)
	mDelivered = obs.DefaultCounter(obs.MEventsDeliveredTotal)
	mFiltered  = obs.DefaultCounter(obs.MEventsFilteredTotal)
)

// Subscriber receives multicast events. Stream applications implement this
// (their onEvent method, §6.3).
type Subscriber interface {
	// SubscriberName identifies the application for source-directed events.
	SubscriberName() string
	// OnEvent handles a delivered event. Called from the Manager's
	// dispatch goroutine; implementations should not block for long.
	OnEvent(ContextEvent)
}

// Manager is the Event Manager of §3.3.5/§6.4: it controls subscription,
// triggering and monitoring, and multicasts events among stream
// applications. Applications that did not subscribe to an event's category
// never see it, avoiding the overhead of processing an event flood.
type Manager struct {
	catalog *Catalog

	mu   sync.RWMutex
	subs map[Category][]Subscriber

	dispatch chan ContextEvent
	done     chan struct{}
	wg       sync.WaitGroup

	delivered uint64
	filtered  uint64
}

// NewManager creates a manager over the given catalog (nil for built-ins).
// Call Close when done to stop the asynchronous dispatcher.
func NewManager(catalog *Catalog) *Manager {
	if catalog == nil {
		catalog = NewCatalog()
	}
	m := &Manager{
		catalog:  catalog,
		subs:     make(map[Category][]Subscriber),
		dispatch: make(chan ContextEvent, 256),
		done:     make(chan struct{}),
	}
	m.wg.Add(1)
	go m.run()
	return m
}

// Catalog returns the manager's event catalog.
func (m *Manager) Catalog() *Catalog { return m.catalog }

// Subscribe registers app for all events of a category (subscribeEvt of
// Figure 6-7).
func (m *Manager) Subscribe(cat Category, app Subscriber) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.subs[cat] {
		if s == app {
			return
		}
	}
	m.subs[cat] = append(m.subs[cat], app)
}

// Unsubscribe removes app from a category (unsubscribeEvt).
func (m *Manager) Unsubscribe(cat Category, app Subscriber) {
	m.mu.Lock()
	defer m.mu.Unlock()
	list := m.subs[cat]
	for i, s := range list {
		if s == app {
			m.subs[cat] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Multicast synchronously delivers an event to every subscriber of its
// category (multicastEvent of Figure 6-7). Source-directed events are
// delivered only to the named application.
func (m *Manager) Multicast(evt ContextEvent) {
	m.mu.RLock()
	list := make([]Subscriber, len(m.subs[evt.Category]))
	copy(list, m.subs[evt.Category])
	m.mu.RUnlock()
	for _, s := range list {
		if evt.Source != "" && s.SubscriberName() != evt.Source {
			m.mu.Lock()
			m.filtered++
			m.mu.Unlock()
			mFiltered.Inc()
			continue
		}
		s.OnEvent(evt)
		m.mu.Lock()
		m.delivered++
		m.mu.Unlock()
		mDelivered.Inc()
	}
}

// Post queues an event for asynchronous multicast from the manager's
// dispatch goroutine. It never blocks the caller; events posted after
// Close are discarded.
func (m *Manager) Post(evt ContextEvent) {
	select {
	case <-m.done:
	case m.dispatch <- evt:
		mRaised.Inc()
	}
}

// Raise resolves an event identifier through the catalog and posts it.
func (m *Manager) Raise(id, source string) error {
	evt, err := m.catalog.Event(id, source)
	if err != nil {
		return err
	}
	m.Post(evt)
	return nil
}

// Stats returns delivered and source-filtered event counts.
func (m *Manager) Stats() (delivered, filtered uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.delivered, m.filtered
}

// Close stops the dispatcher after draining queued events.
func (m *Manager) Close() {
	select {
	case <-m.done:
		return
	default:
	}
	close(m.done)
	m.wg.Wait()
}

func (m *Manager) run() {
	defer m.wg.Done()
	for {
		select {
		case evt := <-m.dispatch:
			m.Multicast(evt)
		case <-m.done:
			// Drain what is already queued, then exit.
			for {
				select {
				case evt := <-m.dispatch:
					m.Multicast(evt)
				default:
					return
				}
			}
		}
	}
}
