// Package event implements the MobiGATE event system of thesis §6.4: client
// variations and system conditions are modelled as unparameterized context
// events, classified into four categories (Table 6-1), and multicast by an
// Event Manager to the stream applications that subscribed to the relevant
// category. Events carry no data — they exist purely to trigger the
// evolution of coordinated streamlets.
//
// The package also implements the §8.2.1 recommendation of dynamic event
// inclusion: applications may register new event identifiers (and even new
// categories) at runtime via Catalog.Register.
package event

import (
	"fmt"
	"sync"
)

// Category is one axis along which clients may vary (Table 6-1).
type Category int

const (
	// SystemCommand events control application lifecycle.
	SystemCommand Category = iota
	// NetworkVariation events report wireless link changes.
	NetworkVariation
	// HardwareVariation events report device capability changes.
	HardwareVariation
	// SoftwareVariation events report client software changes.
	SoftwareVariation
	// ExecutionFault events report faults on the execution plane — a
	// streamlet panicking, erroring, or stalling past its processing
	// deadline. They close the self-healing loop: the supervisor raises
	// them, and stream applications react with the same Figure 7-4
	// reconfiguration protocol bandwidth changes use.
	ExecutionFault
	// Adaptation events report coordination-plane policy decisions: the
	// autopilot (internal/adapt) rewired a stream through a when-policy
	// rule. They let monitoring clients and sibling streams observe
	// self-adaptation without polling metrics, and give MCL event blocks a
	// hook to compose with policy rules.
	Adaptation
	// CategoryCount is the number of built-in categories.
	CategoryCount
)

var categoryNames = [...]string{
	SystemCommand:     "System Command",
	NetworkVariation:  "Network Variation",
	HardwareVariation: "Hardware Variation",
	SoftwareVariation: "Software Variation",
	ExecutionFault:    "Execution Fault",
	Adaptation:        "Adaptation",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Custom Category %d", int(c))
}

// Built-in event identifiers (Table 6-1 and §4.2.3).
const (
	// System commands.
	PAUSE  = "PAUSE"
	RESUME = "RESUME"
	END    = "END"
	// Network variations.
	LOW_BANDWIDTH  = "LOW_BANDWIDTH"
	HIGH_BANDWIDTH = "HIGH_BANDWIDTH"
	HIGH_LATENCY   = "HIGH_LATENCY"
	HIGH_LOSS      = "HIGH_LOSS"
	HANDOFF        = "HANDOFF"
	LINK_BLACKOUT  = "LINK_BLACKOUT"
	LINK_RESTORED  = "LINK_RESTORED"
	// Hardware variations.
	LOW_ENERGY   = "LOW_ENERGY"
	LOW_GRAYS    = "LOW_GRAYS"
	SMALL_SCREEN = "SMALL_SCREEN"
	LOW_MEMORY   = "LOW_MEMORY"
	// Software variations.
	FORMAT_UNSUPPORTED = "FORMAT_UNSUPPORTED"
	CODEC_MISSING      = "CODEC_MISSING"
	// Execution faults (raised by the streamlet supervisor).
	STREAMLET_PANIC  = "STREAMLET_PANIC"
	STREAMLET_ERROR  = "STREAMLET_ERROR"
	STREAMLET_STALL  = "STREAMLET_STALL"
	STREAMLET_HEALED = "STREAMLET_HEALED"
	// SLO_VIOLATION is raised by the latency-budget tracker when a stream's
	// end-to-end latency first exceeds its configured budget (edge-triggered;
	// see internal/obs/slo.go). Filed under ExecutionFault: it signals the
	// execution plane is degraded, even though no streamlet crashed.
	SLO_VIOLATION = "SLO_VIOLATION"
	// ADAPTATION is raised by the autopilot (internal/adapt) after every
	// when-policy firing, source-directed at the adapted stream.
	ADAPTATION = "ADAPTATION"
	// HEALTH_DEGRADED / HEALTH_RECOVERED are raised by the component
	// health model (internal/obs) on edge transitions of a subsystem's
	// verdict. Filed under ExecutionFault like SLO_VIOLATION: a degraded
	// component means the execution plane is shedding or failing work.
	HEALTH_DEGRADED  = "HEALTH_DEGRADED"
	HEALTH_RECOVERED = "HEALTH_RECOVERED"
)

// ContextEvent is the MobiGATE event object of Figure 6-5.
type ContextEvent struct {
	// EventID identifies the event (e.g. "LOW_BANDWIDTH").
	EventID string
	// Category is the event's classification.
	Category Category
	// Source names the stream application the event belongs to; an empty
	// source means the event concerns every application.
	Source string
}

func (e ContextEvent) String() string {
	if e.Source == "" {
		return fmt.Sprintf("%s [%s]", e.EventID, e.Category)
	}
	return fmt.Sprintf("%s [%s] for %s", e.EventID, e.Category, e.Source)
}

// Catalog maps event identifiers to categories. The zero value is unusable;
// use NewCatalog, which seeds the Table 6-1 events.
type Catalog struct {
	mu         sync.RWMutex
	events     map[string]Category
	nextCustom Category
}

// NewCatalog returns a catalog seeded with the built-in events.
func NewCatalog() *Catalog {
	c := &Catalog{events: make(map[string]Category), nextCustom: CategoryCount}
	for id, cat := range map[string]Category{
		PAUSE: SystemCommand, RESUME: SystemCommand, END: SystemCommand,
		LOW_BANDWIDTH: NetworkVariation, HIGH_BANDWIDTH: NetworkVariation,
		HIGH_LATENCY: NetworkVariation, HIGH_LOSS: NetworkVariation, HANDOFF: NetworkVariation,
		LINK_BLACKOUT: NetworkVariation, LINK_RESTORED: NetworkVariation,
		LOW_ENERGY: HardwareVariation, LOW_GRAYS: HardwareVariation,
		SMALL_SCREEN: HardwareVariation, LOW_MEMORY: HardwareVariation,
		FORMAT_UNSUPPORTED: SoftwareVariation, CODEC_MISSING: SoftwareVariation,
		STREAMLET_PANIC: ExecutionFault, STREAMLET_ERROR: ExecutionFault,
		STREAMLET_STALL: ExecutionFault, STREAMLET_HEALED: ExecutionFault,
		SLO_VIOLATION: ExecutionFault, ADAPTATION: Adaptation,
		HEALTH_DEGRADED: ExecutionFault, HEALTH_RECOVERED: ExecutionFault,
	} {
		c.events[id] = cat
	}
	return c
}

// Register adds a new event identifier under an existing category (§8.2.1
// dynamic event inclusion). Registering an existing identifier with a
// different category is an error.
func (c *Catalog) Register(id string, cat Category) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.events[id]; ok && prev != cat {
		return fmt.Errorf("event: %s already registered under %s", id, prev)
	}
	c.events[id] = cat
	return nil
}

// RegisterCategory allocates a fresh custom category identifier.
func (c *Catalog) RegisterCategory() Category {
	c.mu.Lock()
	defer c.mu.Unlock()
	cat := c.nextCustom
	c.nextCustom++
	return cat
}

// ResolveAll returns the categories of ids in order, registering any
// identifier the catalog does not know under fallback — lookup and §8.2.1
// dynamic registration happen in one atomic step. The two-call sequence
// (CategoryOf, then Register on a miss) has a TOCTOU window: a concurrent
// Register under a different category lands between the calls and the
// second call fails, which is fatal for callers that must not fail
// mid-apply (a hot reload that has already committed). Under one write
// lock there is no window: a concurrent registration is ordered wholly
// before (its category is returned) or wholly after (it gets the
// already-registered error) this resolution, so ResolveAll itself cannot
// fail.
func (c *Catalog) ResolveAll(ids []string, fallback Category) []Category {
	out := make([]Category, len(ids))
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, id := range ids {
		cat, ok := c.events[id]
		if !ok {
			cat = fallback
			c.events[id] = cat
		}
		out[i] = cat
	}
	return out
}

// CategoryOf returns the category of an event identifier.
func (c *Catalog) CategoryOf(id string) (Category, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cat, ok := c.events[id]
	return cat, ok
}

// Event builds a ContextEvent for a known identifier.
func (c *Catalog) Event(id, source string) (ContextEvent, error) {
	cat, ok := c.CategoryOf(id)
	if !ok {
		return ContextEvent{}, fmt.Errorf("event: unknown event %q", id)
	}
	return ContextEvent{EventID: id, Category: cat, Source: source}, nil
}
