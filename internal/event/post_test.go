package event

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type countSub struct {
	name string
	n    atomic.Uint64
}

func (c *countSub) SubscriberName() string { return c.name }
func (c *countSub) OnEvent(ContextEvent)   { c.n.Add(1) }

// blockingSub parks inside OnEvent until released, wedging the dispatcher
// so the dispatch buffer fills up.
type blockingSub struct {
	name    string
	release chan struct{}
	n       atomic.Uint64
}

func (b *blockingSub) SubscriberName() string { return b.name }
func (b *blockingSub) OnEvent(ContextEvent) {
	<-b.release
	b.n.Add(1)
}

// TestPostNeverBlocksWhenFull: with the dispatcher wedged by a blocking
// subscriber, Post must shed excess events (returning false and counting
// them) instead of blocking the monitor thread that raises them.
func TestPostNeverBlocksWhenFull(t *testing.T) {
	m := NewManager(nil)
	sub := &blockingSub{name: "slow", release: make(chan struct{})}
	m.Subscribe(NetworkVariation, sub)

	evt := ContextEvent{EventID: LOW_BANDWIDTH, Category: NetworkVariation}
	const posts = 400 // well past the 256-slot dispatch buffer

	start := time.Now()
	accepted, rejected := 0, 0
	for i := 0; i < posts; i++ {
		if m.Post(evt) {
			accepted++
		} else {
			rejected++
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("posting took %v: Post blocked on a full buffer", elapsed)
	}
	if rejected == 0 {
		t.Fatal("no event was shed despite a wedged dispatcher")
	}
	raised, dropped := m.PostStats()
	if raised != uint64(accepted) || dropped != uint64(rejected) {
		t.Errorf("PostStats = (%d, %d), want (%d, %d)", raised, dropped, accepted, rejected)
	}

	// Unblock: every accepted event must still be delivered.
	close(sub.release)
	m.Close()
	if got := sub.n.Load(); got != uint64(accepted) {
		t.Errorf("delivered %d events, accepted %d", got, accepted)
	}
}

// TestClosePostRace: concurrent Post and Close must neither panic nor lose
// an accepted event — everything Post returned true for is delivered before
// Close returns.
func TestClosePostRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		m := NewManager(nil)
		sub := &countSub{name: "counter"}
		m.Subscribe(NetworkVariation, sub)
		evt := ContextEvent{EventID: HANDOFF, Category: NetworkVariation}

		var accepted atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if m.Post(evt) {
						accepted.Add(1)
					}
				}
			}()
		}
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		m.Close()
		close(stop)
		wg.Wait()

		// Posts that won the race were all delivered; the rest returned
		// false and are not counted anywhere as deliveries.
		if got := sub.n.Load(); got != accepted.Load() {
			t.Fatalf("round %d: delivered %d, accepted %d", round, got, accepted.Load())
		}
	}
}
