package msgpool

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mobigate/internal/mime"
)

func msg(body string) *mime.Message {
	return mime.NewMessage(mime.MustParse("text/plain"), []byte(body))
}

func TestPutGetRemove(t *testing.T) {
	p := New(ByReference)
	m := msg("hello")
	id := p.Put(m)
	if id != m.ID {
		t.Errorf("Put returned %q", id)
	}
	got, err := p.Get(id)
	if err != nil || got != m {
		t.Errorf("Get = %v, %v", got, err)
	}
	if p.Len() != 1 || p.Bytes() != 5 {
		t.Errorf("Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
	p.Remove(id)
	if _, err := p.Get(id); err == nil {
		t.Error("Get after Remove succeeded")
	}
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Errorf("after remove: Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
	p.Remove("ghost") // no panic
}

func TestPutIdempotentAccounting(t *testing.T) {
	p := New(ByReference)
	m := msg("abcd")
	p.Put(m)
	p.Put(m) // same message twice must not double-count
	if p.Bytes() != 4 || p.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d", p.Bytes(), p.Len())
	}
}

func TestForwardByReference(t *testing.T) {
	p := New(ByReference)
	m := msg("shared")
	id := p.Put(m)
	fid, err := p.Forward(id)
	if err != nil || fid != id {
		t.Errorf("Forward = %q, %v", fid, err)
	}
	if p.Len() != 1 {
		t.Errorf("by-ref forward grew pool to %d", p.Len())
	}
}

func TestForwardByValue(t *testing.T) {
	p := New(ByValue)
	m := msg("copy me")
	id := p.Put(m)
	fid, err := p.Forward(id)
	if err != nil {
		t.Fatal(err)
	}
	if fid == id {
		t.Error("by-value forward returned same id")
	}
	c, err := p.Get(fid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Body(), m.Body()) {
		t.Error("copy corrupted")
	}
	c.Body()[0] = 'X'
	if m.Body()[0] == 'X' {
		t.Error("by-value copy aliases original")
	}
	if p.Len() != 2 {
		t.Errorf("pool len = %d", p.Len())
	}
}

func TestForwardUnknown(t *testing.T) {
	p := New(ByValue)
	if _, err := p.Forward("nope"); err == nil {
		t.Error("forward unknown succeeded")
	}
	if _, err := New(ByReference).Get("nope"); err == nil {
		t.Error("get unknown succeeded")
	}
}

func TestReplace(t *testing.T) {
	p := New(ByReference)
	orig := msg("original body")
	id := p.Put(orig)
	smaller := msg("tiny")
	nid := p.Replace(id, smaller)
	if nid != smaller.ID {
		t.Errorf("Replace returned %q", nid)
	}
	if _, err := p.Get(id); err == nil {
		t.Error("old entry survived Replace")
	}
	if p.Bytes() != int64(smaller.Len()) || p.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d", p.Bytes(), p.Len())
	}
	// Replace with itself (transform in place, same ID).
	smaller.SetBody([]byte("tiny-grown"))
	p.Replace(smaller.ID, smaller)
	if p.Bytes() != int64(smaller.Len()) {
		t.Errorf("in-place replace bytes = %d", p.Bytes())
	}
}

func TestModeString(t *testing.T) {
	if ByReference.String() != "by-reference" || ByValue.String() != "by-value" {
		t.Error("mode strings")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(ByValue)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m := msg(fmt.Sprintf("g%d-i%d", g, i))
				id := p.Put(m)
				fid, err := p.Forward(id)
				if err != nil {
					t.Errorf("forward: %v", err)
					return
				}
				p.Remove(fid)
				p.Remove(id)
			}
		}(g)
	}
	wg.Wait()
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Errorf("leaked: Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
}
