package msgpool

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mobigate/internal/mime"
)

func msg(body string) *mime.Message {
	return mime.NewMessage(mime.MustParse("text/plain"), []byte(body))
}

func TestPutGetRemove(t *testing.T) {
	p := New(ByReference)
	m := msg("hello")
	id := p.Put(m)
	if id != m.ID {
		t.Errorf("Put returned %q", id)
	}
	got, err := p.Get(id)
	if err != nil || got != m {
		t.Errorf("Get = %v, %v", got, err)
	}
	if p.Len() != 1 || p.Bytes() != 5 {
		t.Errorf("Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
	p.Remove(id)
	if _, err := p.Get(id); err == nil {
		t.Error("Get after Remove succeeded")
	}
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Errorf("after remove: Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
	p.Remove("ghost") // no panic
}

func TestPutIdempotentAccounting(t *testing.T) {
	p := New(ByReference)
	m := msg("abcd")
	p.Put(m)
	p.Put(m) // same message twice must not double-count
	if p.Bytes() != 4 || p.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d", p.Bytes(), p.Len())
	}
}

func TestForwardByReference(t *testing.T) {
	p := New(ByReference)
	m := msg("shared")
	id := p.Put(m)
	fid, err := p.Forward(id)
	if err != nil || fid != id {
		t.Errorf("Forward = %q, %v", fid, err)
	}
	if p.Len() != 1 {
		t.Errorf("by-ref forward grew pool to %d", p.Len())
	}
}

func TestForwardByValue(t *testing.T) {
	p := New(ByValue)
	m := msg("copy me")
	id := p.Put(m)
	fid, err := p.Forward(id)
	if err != nil {
		t.Fatal(err)
	}
	if fid == id {
		t.Error("by-value forward returned same id")
	}
	c, err := p.Get(fid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Body(), m.Body()) {
		t.Error("copy corrupted")
	}
	c.Body()[0] = 'X'
	if m.Body()[0] == 'X' {
		t.Error("by-value copy aliases original")
	}
	if p.Len() != 2 {
		t.Errorf("pool len = %d", p.Len())
	}
}

func TestForwardUnknown(t *testing.T) {
	p := New(ByValue)
	if _, err := p.Forward("nope"); err == nil {
		t.Error("forward unknown succeeded")
	}
	if _, err := New(ByReference).Get("nope"); err == nil {
		t.Error("get unknown succeeded")
	}
}

func TestReplace(t *testing.T) {
	p := New(ByReference)
	orig := msg("original body")
	id := p.Put(orig)
	smaller := msg("tiny")
	nid := p.Replace(id, smaller)
	if nid != smaller.ID {
		t.Errorf("Replace returned %q", nid)
	}
	if _, err := p.Get(id); err == nil {
		t.Error("old entry survived Replace")
	}
	if p.Bytes() != int64(smaller.Len()) || p.Len() != 1 {
		t.Errorf("Bytes=%d Len=%d", p.Bytes(), p.Len())
	}
	// Replace with itself (transform in place, same ID).
	smaller.SetBody([]byte("tiny-grown"))
	p.Replace(smaller.ID, smaller)
	if p.Bytes() != int64(smaller.Len()) {
		t.Errorf("in-place replace bytes = %d", p.Bytes())
	}
}

func TestModeString(t *testing.T) {
	if ByReference.String() != "by-reference" || ByValue.String() != "by-value" {
		t.Error("mode strings")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(ByValue)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m := msg(fmt.Sprintf("g%d-i%d", g, i))
				id := p.Put(m)
				fid, err := p.Forward(id)
				if err != nil {
					t.Errorf("forward: %v", err)
					return
				}
				p.Remove(fid)
				p.Remove(id)
			}
		}(g)
	}
	wg.Wait()
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Errorf("leaked: Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
}

func TestTake(t *testing.T) {
	p := New(ByReference)
	m := msg("owned")
	id := p.Put(m)
	if got := p.Take(id); got != m {
		t.Errorf("Take = %v", got)
	}
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Errorf("after Take: Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
	if got := p.Take(id); got != nil {
		t.Errorf("second Take = %v", got)
	}
}

// A by-value Forward racing a Remove of its source must be atomic: either
// the Forward loses (error, nothing stored) or it wins (the copy is made
// from the then-live message). The pre-shard implementation could interleave
// its Get and Put around a Remove and resurrect a dead message as a stored
// copy, which this test would catch as a leaked entry.
func TestForwardAtomicWithRemove(t *testing.T) {
	p := New(ByValue)
	for i := 0; i < 2000; i++ {
		m := msg(fmt.Sprintf("race-%d", i))
		id := p.Put(m)
		var fid string
		var ferr error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			fid, ferr = p.Forward(id)
		}()
		go func() {
			defer wg.Done()
			p.Remove(id)
		}()
		wg.Wait()
		if ferr == nil {
			// Forward won: the copy exists and was taken from a live source.
			c, err := p.Get(fid)
			if err != nil {
				t.Fatalf("iter %d: forwarded copy missing: %v", i, err)
			}
			if !bytes.Equal(c.Body(), []byte(fmt.Sprintf("race-%d", i))) {
				t.Fatalf("iter %d: copy body corrupted", i)
			}
			p.Remove(fid)
		}
		p.Remove(id) // no-op when Remove already won
		if n := p.Len(); n != 0 {
			t.Fatalf("iter %d: %d entries leaked (copy of removed message stored?)", i, n)
		}
	}
	if p.Bytes() != 0 {
		t.Errorf("byte accounting drifted: %d", p.Bytes())
	}
}

// Concurrent cross-shard Forwards of the same source exercise the ordered
// two-lock path and its retry loop; accounting must balance afterwards.
func TestForwardConcurrentSameSource(t *testing.T) {
	p := New(ByValue)
	m := msg("fan-out body that is long enough to notice corruption")
	id := p.Put(m)
	const workers = 8
	var wg sync.WaitGroup
	ids := make([][]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fid, err := p.Forward(id)
				if err != nil {
					t.Errorf("forward: %v", err)
					return
				}
				ids[w] = append(ids[w], fid)
			}
		}(w)
	}
	wg.Wait()
	want := workers*200 + 1
	if p.Len() != want {
		t.Errorf("Len = %d, want %d", p.Len(), want)
	}
	for _, batch := range ids {
		for _, fid := range batch {
			c, err := p.Get(fid)
			if err != nil || !bytes.Equal(c.Body(), m.Body()) {
				t.Fatalf("copy %s bad: %v", fid, err)
			}
			p.Remove(fid)
		}
	}
	p.Remove(id)
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Errorf("leaked: Len=%d Bytes=%d", p.Len(), p.Bytes())
	}
}
