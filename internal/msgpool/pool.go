// Package msgpool implements MobiGATE's centralized message storage (§6.7):
// incoming messages are copied into a message pool once, and streamlets
// exchange message identifiers rather than message bodies. Passing by
// reference avoids the copying latency and memory pressure that Figure 7-3
// measures against the naive pass-by-value scheme, which this package also
// implements so the comparison can be reproduced.
//
// The pool is sharded by message-ID hash: every session in the gateway
// funnels its Put/Get/Remove traffic through here, and a single map mutex
// would serialize the whole coordination plane. With power-of-two shards and
// per-shard locks, unrelated messages contend only 1/numShards of the time.
package msgpool

import (
	"fmt"
	"sync"

	"mobigate/internal/mime"
	"mobigate/internal/obs"
)

// Gateway-wide pool metrics (aggregated across pools).
var (
	mPutTotal  = obs.DefaultCounter(obs.MPoolPutTotal)
	mHitTotal  = obs.DefaultCounter(obs.MPoolHitTotal)
	mMissTotal = obs.DefaultCounter(obs.MPoolMissTotal)
	mCopyTotal = obs.DefaultCounter(obs.MPoolCopyTotal)
	mMessages  = obs.DefaultIntGauge(obs.MPoolMessages)
	mBytes     = obs.DefaultIntGauge(obs.MPoolBytes)
)

// Mode selects the buffer-management scheme.
type Mode int

const (
	// ByReference stores each message once; Forward hands the same
	// identifier to the next streamlet (the MobiGATE scheme).
	ByReference Mode = iota
	// ByValue deep-copies the message on every Forward, modelling the
	// per-hop copying cost of value passing (the Figure 7-3 baseline).
	ByValue
)

func (m Mode) String() string {
	if m == ByValue {
		return "by-value"
	}
	return "by-reference"
}

// numShards is the shard count; must be a power of two so shard selection
// is a mask, not a modulo.
const numShards = 16

// shard is one lock domain of the pool.
type shard struct {
	mu   sync.RWMutex
	msgs map[string]*mime.Message
	// sizes records the body length counted for each entry, so accounting
	// stays correct even when a caller mutates a stored message in place
	// and re-registers it via Replace.
	sizes map[string]int
	bytes int64
	_     [24]byte // pad toward a cache line to limit false sharing
}

// Pool is a message pool. It is safe for concurrent use.
type Pool struct {
	mode   Mode
	shards [numShards]shard
}

// New creates an empty pool operating in the given mode.
func New(mode Mode) *Pool {
	p := &Pool{mode: mode}
	for i := range p.shards {
		p.shards[i].msgs = make(map[string]*mime.Message)
		p.shards[i].sizes = make(map[string]int)
	}
	return p
}

// Mode returns the pool's buffer-management scheme.
func (p *Pool) Mode() Mode { return p.mode }

// shardIndex hashes a message identifier (FNV-1a; IDs are short fixed-width
// strings, so this is a handful of multiplies) onto a shard slot.
func shardIndex(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h & (numShards - 1)
}

func (p *Pool) shardFor(id string) *shard { return &p.shards[shardIndex(id)] }

// putLocked stores m in s; the caller holds s.mu.
func (s *shard) putLocked(m *mime.Message) {
	prev, exists := s.sizes[m.ID]
	if exists {
		s.bytes -= int64(prev)
	} else {
		mMessages.Add(1)
	}
	s.msgs[m.ID] = m
	s.sizes[m.ID] = m.Len()
	s.bytes += int64(m.Len())
	mPutTotal.Inc()
	mBytes.Add(int64(m.Len() - prev))
}

// removeLocked deletes id from s if present; the caller holds s.mu.
func (s *shard) removeLocked(id string) (m *mime.Message, ok bool) {
	m, ok = s.msgs[id]
	if ok {
		s.bytes -= int64(s.sizes[id])
		mMessages.Add(-1)
		mBytes.Add(-int64(s.sizes[id]))
		delete(s.msgs, id)
		delete(s.sizes, id)
	}
	return m, ok
}

// Put stores a message and returns its identifier.
func (p *Pool) Put(m *mime.Message) string {
	s := p.shardFor(m.ID)
	s.mu.Lock()
	s.putLocked(m)
	s.mu.Unlock()
	return m.ID
}

// Get returns the message with the given identifier, or an error when the
// identifier is unknown (e.g. the message was dropped by a full queue and
// removed).
func (p *Pool) Get(id string) (*mime.Message, error) {
	s := p.shardFor(id)
	s.mu.RLock()
	m := s.msgs[id]
	s.mu.RUnlock()
	if m == nil {
		mMissTotal.Inc()
		return nil, fmt.Errorf("msgpool: unknown message %q", id)
	}
	mHitTotal.Inc()
	return m, nil
}

// Forward prepares a message for handing to the next streamlet and returns
// the identifier to enqueue. By reference this is the identity; by value
// the message is deep-copied and the copy stored under a fresh identifier.
//
// The clone-and-store is atomic with respect to the source entry: a
// concurrent Remove(id) either happens before (Forward fails, no copy is
// stored) or after (the copy is stored from the then-live message). The old
// Get-then-Put sequence could store a copy of a message that had already
// been removed between the two lock acquisitions.
func (p *Pool) Forward(id string) (string, error) {
	if p.mode == ByReference {
		return id, nil
	}
	src := p.shardFor(id)
	for {
		src.mu.Lock()
		m := src.msgs[id]
		if m == nil {
			src.mu.Unlock()
			mMissTotal.Inc()
			return "", fmt.Errorf("msgpool: unknown message %q", id)
		}
		c := m.Clone()
		dst := p.shardFor(c.ID)
		if dst == src {
			src.putLocked(c)
			src.mu.Unlock()
			mCopyTotal.Inc()
			return c.ID, nil
		}
		if shardIndex(c.ID) > shardIndex(id) {
			// Lock order: ascending shard index, so two concurrent Forwards
			// can never hold each other's shards crosswise.
			dst.mu.Lock()
			dst.putLocked(c)
			dst.mu.Unlock()
			src.mu.Unlock()
			mCopyTotal.Inc()
			return c.ID, nil
		}
		// The destination shard orders before the source: drop the source
		// lock, take both in order, and verify the source entry is still the
		// message we cloned. If it was removed or replaced meanwhile, the
		// speculative clone is discarded (its pooled body recycled) and the
		// operation re-evaluated.
		src.mu.Unlock()
		dst.mu.Lock()
		src.mu.Lock()
		if src.msgs[id] == m {
			dst.putLocked(c)
			src.mu.Unlock()
			dst.mu.Unlock()
			mCopyTotal.Inc()
			return c.ID, nil
		}
		src.mu.Unlock()
		dst.mu.Unlock()
		c.Recycle()
	}
}

// Remove deletes a message from the pool (after final delivery, or when a
// queue dropped it). Unknown identifiers are ignored.
func (p *Pool) Remove(id string) {
	s := p.shardFor(id)
	s.mu.Lock()
	s.removeLocked(id)
	s.mu.Unlock()
}

// Take removes and returns the message stored under id (nil when unknown).
// The coordination plane uses it where it owns the message's afterlife —
// e.g. recycling the body of a by-value original once its copy has been
// forwarded.
func (p *Pool) Take(id string) *mime.Message {
	s := p.shardFor(id)
	s.mu.Lock()
	m, _ := s.removeLocked(id)
	s.mu.Unlock()
	return m
}

// Replace atomically substitutes the stored message for id with m (a
// streamlet that transformed the body in place registers the result). The
// returned identifier is m's (which may differ from id). The old entry is
// removed when the identifiers differ.
func (p *Pool) Replace(id string, m *mime.Message) string {
	si, di := shardIndex(id), shardIndex(m.ID)
	s, d := &p.shards[si], &p.shards[di]
	// Take both shard locks in ascending index order.
	switch {
	case si == di:
		s.mu.Lock()
	case si < di:
		s.mu.Lock()
		d.mu.Lock()
	default:
		d.mu.Lock()
		s.mu.Lock()
	}
	if old, ok := s.msgs[id]; ok && old.ID != m.ID {
		s.removeLocked(id)
	}
	d.putLocked(m)
	s.mu.Unlock()
	if si != di {
		d.mu.Unlock()
	}
	return m.ID
}

// Len returns the number of pooled messages.
func (p *Pool) Len() int {
	n := 0
	for i := range p.shards {
		p.shards[i].mu.RLock()
		n += len(p.shards[i].msgs)
		p.shards[i].mu.RUnlock()
	}
	return n
}

// Bytes returns the total body bytes held by the pool.
func (p *Pool) Bytes() int64 {
	var n int64
	for i := range p.shards {
		p.shards[i].mu.RLock()
		n += p.shards[i].bytes
		p.shards[i].mu.RUnlock()
	}
	return n
}
