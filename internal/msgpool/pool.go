// Package msgpool implements MobiGATE's centralized message storage (§6.7):
// incoming messages are copied into a message pool once, and streamlets
// exchange message identifiers rather than message bodies. Passing by
// reference avoids the copying latency and memory pressure that Figure 7-3
// measures against the naive pass-by-value scheme, which this package also
// implements so the comparison can be reproduced.
package msgpool

import (
	"fmt"
	"sync"

	"mobigate/internal/mime"
	"mobigate/internal/obs"
)

// Gateway-wide pool metrics (aggregated across pools).
var (
	mPutTotal  = obs.DefaultCounter(obs.MPoolPutTotal)
	mHitTotal  = obs.DefaultCounter(obs.MPoolHitTotal)
	mMissTotal = obs.DefaultCounter(obs.MPoolMissTotal)
	mCopyTotal = obs.DefaultCounter(obs.MPoolCopyTotal)
	mMessages  = obs.DefaultGauge(obs.MPoolMessages)
	mBytes     = obs.DefaultGauge(obs.MPoolBytes)
)

// Mode selects the buffer-management scheme.
type Mode int

const (
	// ByReference stores each message once; Forward hands the same
	// identifier to the next streamlet (the MobiGATE scheme).
	ByReference Mode = iota
	// ByValue deep-copies the message on every Forward, modelling the
	// per-hop copying cost of value passing (the Figure 7-3 baseline).
	ByValue
)

func (m Mode) String() string {
	if m == ByValue {
		return "by-value"
	}
	return "by-reference"
}

// Pool is a message pool. It is safe for concurrent use.
type Pool struct {
	mode Mode

	mu   sync.RWMutex
	msgs map[string]*mime.Message
	// sizes records the body length counted for each entry, so accounting
	// stays correct even when a caller mutates a stored message in place
	// and re-registers it via Replace.
	sizes map[string]int
	bytes int64
}

// New creates an empty pool operating in the given mode.
func New(mode Mode) *Pool {
	return &Pool{mode: mode, msgs: make(map[string]*mime.Message), sizes: make(map[string]int)}
}

// Mode returns the pool's buffer-management scheme.
func (p *Pool) Mode() Mode { return p.mode }

// Put stores a message and returns its identifier.
func (p *Pool) Put(m *mime.Message) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	prev, exists := p.sizes[m.ID]
	if exists {
		p.bytes -= int64(prev)
	} else {
		mMessages.Add(1)
	}
	p.msgs[m.ID] = m
	p.sizes[m.ID] = m.Len()
	p.bytes += int64(m.Len())
	mPutTotal.Inc()
	mBytes.Add(float64(m.Len() - prev))
	return m.ID
}

// Get returns the message with the given identifier, or an error when the
// identifier is unknown (e.g. the message was dropped by a full queue and
// removed).
func (p *Pool) Get(id string) (*mime.Message, error) {
	p.mu.RLock()
	m := p.msgs[id]
	p.mu.RUnlock()
	if m == nil {
		mMissTotal.Inc()
		return nil, fmt.Errorf("msgpool: unknown message %q", id)
	}
	mHitTotal.Inc()
	return m, nil
}

// Forward prepares a message for handing to the next streamlet and returns
// the identifier to enqueue. By reference this is the identity; by value
// the message is deep-copied and the copy stored under a fresh identifier.
func (p *Pool) Forward(id string) (string, error) {
	if p.mode == ByReference {
		return id, nil
	}
	m, err := p.Get(id)
	if err != nil {
		return "", err
	}
	c := m.Clone()
	p.Put(c)
	mCopyTotal.Inc()
	return c.ID, nil
}

// Remove deletes a message from the pool (after final delivery, or when a
// queue dropped it). Unknown identifiers are ignored.
func (p *Pool) Remove(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.msgs[id]; ok {
		p.bytes -= int64(p.sizes[id])
		mMessages.Add(-1)
		mBytes.Add(float64(-p.sizes[id]))
		delete(p.msgs, id)
		delete(p.sizes, id)
	}
}

// Replace atomically substitutes the stored message for id with m (a
// streamlet that transformed the body in place registers the result). The
// returned identifier is m's (which may differ from id). The old entry is
// removed when the identifiers differ.
func (p *Pool) Replace(id string, m *mime.Message) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if old, ok := p.msgs[id]; ok && old.ID != m.ID {
		p.bytes -= int64(p.sizes[id])
		mMessages.Add(-1)
		mBytes.Add(float64(-p.sizes[id]))
		delete(p.msgs, id)
		delete(p.sizes, id)
	}
	prev, exists := p.sizes[m.ID]
	if exists {
		p.bytes -= int64(prev)
	} else {
		mMessages.Add(1)
	}
	p.msgs[m.ID] = m
	p.sizes[m.ID] = m.Len()
	p.bytes += int64(m.Len())
	mBytes.Add(float64(m.Len() - prev))
	return m.ID
}

// Len returns the number of pooled messages.
func (p *Pool) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.msgs)
}

// Bytes returns the total body bytes held by the pool.
func (p *Pool) Bytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.bytes
}
