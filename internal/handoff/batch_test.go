package handoff

// Handoff under batched pumps. The data plane's `batch = N` mode drains and
// emits messages in batches, so at any instant up to N messages per
// streamlet sit in a half-flushed batch rather than on the link. A handoff
// that fires in that state must still satisfy the §8.2.1 state-sync
// contract: every message sent before, during, or after the switch arrives
// exactly once and in order. The pre-existing handoff tests only drove the
// Manager directly (effectively batch = 1); these push a batched chain
// through it.

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"mobigate/internal/event"
	"mobigate/internal/mcl"
	"mobigate/internal/mime"
	"mobigate/internal/msgpool"
	"mobigate/internal/netem"
	"mobigate/internal/services"
	"mobigate/internal/stream"
)

const hoSeqHeader = "X-Handoff-Seq"

// batchedSession builds a redirector chain (every streamlet in batch = n
// mode) that terminates in a Communicator sinking onto the Manager's
// current link, and returns the inlet plus the communicator for progress
// polling.
func batchedSession(t *testing.T, n int, m *Manager) (*stream.Stream, *stream.Inlet, *services.Communicator) {
	t.Helper()
	pool := msgpool.New(msgpool.ByReference)
	st := stream.New(fmt.Sprintf("ho-batch-%d", n), pool, nil)
	comm := &services.Communicator{SinkTo: m}
	prev := ""
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("r%d", i)
		if _, err := st.AddStreamlet(id, nil, services.Redirector{}); err != nil {
			t.Fatal(err)
		}
		if err := st.Streamlet(id).SetBatch(n); err != nil {
			t.Fatal(err)
		}
		if prev != "" {
			if err := st.Connect(mcl.PortRef{Inst: prev, Port: "po"}, mcl.PortRef{Inst: id, Port: "pi"}, nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if _, err := st.AddStreamlet("cm", nil, comm); err != nil {
		t.Fatal(err)
	}
	if err := st.Streamlet("cm").SetBatch(n); err != nil {
		t.Fatal(err)
	}
	if err := st.Connect(mcl.PortRef{Inst: prev, Port: "po"}, mcl.PortRef{Inst: "cm", Port: "pi"}, nil); err != nil {
		t.Fatal(err)
	}
	in, err := st.OpenInlet(mcl.PortRef{Inst: "r0", Port: "pi"}, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	return st, in, comm
}

// TestHandoffMidBatchZeroLossZeroReorder migrates the session while the
// batched chain is mid-flight — once with the link backlog entirely
// unconsumed (forcing a replay of whole batches) and once in the middle of
// the client's drain — and requires exact, ordered delivery.
func TestHandoffMidBatchZeroLossZeroReorder(t *testing.T) {
	for _, n := range []int{8, 32} {
		t.Run(fmt.Sprintf("batch=%d", n), func(t *testing.T) {
			const total = 400
			em := event.NewManager(nil)
			defer em.Close()
			link := netem.MustNew(netem.Config{BandwidthBps: 1 << 30})
			m := NewManager(link, "wavelan", netem.Virtual, em, 100_000, "")

			st, in, comm := batchedSession(t, n, m)
			st.Start()
			defer st.End()

			var wg sync.WaitGroup
			sendErr := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < total; i++ {
					msg := mime.NewMessage(services.TypePlainText, []byte("payload"))
					msg.SetHeader(hoSeqHeader, strconv.Itoa(i))
					if err := in.Send(msg); err != nil {
						sendErr <- fmt.Errorf("send %d: %w", i, err)
						return
					}
				}
				sendErr <- nil
			}()

			// First migration: let at least a quarter of the flow cross the
			// old link before any client-side consumption, so the handoff
			// must replay sent-but-unconsumed batches onto the new link.
			deadline := time.Now().Add(10 * time.Second)
			for {
				sent, errs := comm.Stats()
				if errs != 0 {
					t.Fatalf("communicator reported %d send errors", errs)
				}
				if sent >= total/4 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("chain stalled before first handoff: %d sent", sent)
				}
				runtime.Gosched()
			}
			if _, err := m.Handoff(Notification{NetworkID: "gprs", BandwidthBps: 1 << 30}); err != nil {
				t.Fatalf("mid-batch handoff: %v", err)
			}

			last := -1
			reorders := 0
			for i := 0; i < total; i++ {
				// Second migration: mid-drain, while the remaining messages
				// are split between half-flushed batches and the live link.
				if i == total/2 {
					if _, err := m.Handoff(Notification{NetworkID: "wavelan2", BandwidthBps: 1 << 30}); err != nil {
						t.Fatalf("mid-drain handoff: %v", err)
					}
				}
				d, err := m.Receive(10 * time.Second)
				if err != nil {
					t.Fatalf("delivery %d of %d: %v", i, total, err)
				}
				seq, err := strconv.Atoi(d.Msg.Header(hoSeqHeader))
				if err != nil {
					t.Fatalf("delivery %d carries no %s stamp", i, hoSeqHeader)
				}
				if seq <= last {
					reorders++
				}
				last = seq
			}
			if reorders != 0 {
				t.Fatalf("%d reorders across handoffs (FIFO violated)", reorders)
			}
			if last != total-1 {
				t.Fatalf("final sequence %d, want %d", last, total-1)
			}

			wg.Wait()
			if err := <-sendErr; err != nil {
				t.Fatal(err)
			}
			handoffs, replayed := m.Stats()
			if handoffs != 2 {
				t.Fatalf("handoffs = %d, want 2", handoffs)
			}
			// The first migration fired with ≥ total/4 messages sent and none
			// consumed, so whole batches must have been replayed.
			if replayed < total/4 {
				t.Fatalf("replayed = %d, want at least %d (backlog lost?)", replayed, total/4)
			}
		})
	}
}
